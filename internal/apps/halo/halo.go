// Package halo implements a 1D ring halo-exchange stencil benchmark: the
// canonical SPMD/RMA workload whose ranks interact only through one-sided
// Puts into neighbour ghost cells, fenced by barriers.
//
// Unlike the fork-join benchmarks (cilksort, fmm, uts), halo spends its
// entire life in SPMD mode, so under parallel host execution
// (Config.HostProcs > 1) every rank's compute and communication runs on
// its own host shard from the first event to the last — no globally
// serialized phase at all. That makes it both the determinism stress for
// the sharded engine's conservative protocol and the workload on which
// host-speedup is actually measurable.
//
// Each step, every rank applies a three-point smoothing stencil to its
// block of cells (real host floating-point work, charged to virtual time
// per cell), barriers, then writes its two boundary cells into its
// neighbours' ghost slots with one-sided Puts, flushes, and barriers
// again. The extra barrier between the compute phase and the exchange
// phase is what makes the program data-race-free: without it, a rank's
// Put into a neighbour's ghost cell lands in the same barrier epoch as
// the neighbour's stencil read of that cell, and the value observed
// depends on scheduling order. Data-race-freedom is the property the RMA
// layer's eager payload movement (and the sharded engine's round
// isolation) relies on — a racy program is "deterministic" on one shard
// only by accident of the serial interleaving.
package halo

import (
	"fmt"
	"hash/fnv"
	"math"

	"ityr"
	"ityr/internal/netmodel"
	"ityr/internal/profile"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// Config sizes a halo run.
type Config struct {
	// Ranks is the number of simulated processes in the ring.
	Ranks int
	// CoresPerNode groups ranks into nodes for the network model.
	CoresPerNode int
	// CellsPerRank is each rank's block size (cells are float64s).
	CellsPerRank int
	// Steps is the number of stencil iterations.
	Steps int
	// HostProcs shards the engine across host workers (0/1 = serial).
	HostProcs int
	// CellCost is the virtual compute cost charged per cell per step
	// (defaults to 2ns).
	CellCost sim.Time
	// NodesPerRack, when positive, swaps in the three-tier rack topology
	// (netmodel.RackDefault) so the run exercises node/rack/fabric
	// locality attribution.
	NodesPerRack int
	// Profile arms the streaming profile collector (ityr.Config.Profile).
	// Digest-inert: the digest is bit-identical with it on or off.
	Profile bool
	// Observe, when non-nil, is called with the built runtime before the
	// simulation starts — the hook live-telemetry callers use to watch
	// Engine().LiveTime()/LiveEvents() while the run is in flight.
	Observe func(rt *ityr.Runtime)
}

// Result carries a finished run's observables.
type Result struct {
	// Elapsed is the virtual time from the first barrier to the last.
	Elapsed sim.Time
	// Checksum sums every rank's final cells (bit-deterministic: the
	// stencil is fixed-order float64 arithmetic).
	Checksum float64
	// Stats is the RMA traffic of the whole run.
	Stats rma.Stats
	// FinalState is the concatenated per-rank cell state (ghosts
	// excluded), used by the digest.
	FinalState []float64
	// HostShards records how many shards the engine actually used.
	HostShards int
	// Events counts simulation-kernel events popped over the run: the
	// numerator of host events/sec throughput. Host-side observability
	// only — deliberately excluded from Digest, which folds simulated
	// observables alone.
	Events uint64
	// Profile is the streaming-profile snapshot (nil unless
	// Config.Profile). Excluded from Digest by construction — the digest
	// must not change when profiling toggles.
	Profile *profile.Doc
}

// Digest folds every simulated observable into one printable string; two
// runs of the same Config must produce identical digests regardless of
// HostProcs.
func (r Result) Digest() string {
	h := fnv.New64a()
	for _, v := range r.FinalState {
		var b [8]byte
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	fmt.Fprintf(h, "rma=%+v\n", r.Stats)
	return fmt.Sprintf("elapsed=%d checksum=%x fnv=%016x", r.Elapsed, math.Float64bits(r.Checksum), h.Sum64())
}

// Run executes the benchmark.
func Run(cfg Config) (Result, error) {
	if cfg.Ranks < 2 {
		return Result{}, fmt.Errorf("halo: need at least 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.CellsPerRank < 2 {
		return Result{}, fmt.Errorf("halo: need at least 2 cells per rank, got %d", cfg.CellsPerRank)
	}
	if cfg.CellCost == 0 {
		cfg.CellCost = 2 * sim.Nanosecond
	}
	rcfg := ityr.Config{
		Ranks:        cfg.Ranks,
		CoresPerNode: cfg.CoresPerNode,
		HostProcs:    cfg.HostProcs,
		Profile:      cfg.Profile,
	}
	if cfg.NodesPerRack > 0 {
		cores := cfg.CoresPerNode
		if cores == 0 {
			cores = 8 // mirror core.Config.withDefaults
		}
		net := netmodel.RackDefault(cores, cfg.NodesPerRack)
		rcfg.Net = &net
	}
	rt := ityr.NewRuntime(rcfg)
	if cfg.Observe != nil {
		cfg.Observe(rt)
	}
	n := cfg.Ranks
	cells := cfg.CellsPerRank
	// Segment layout per rank, in float64 slots: [ghostL | cells... | ghostR].
	segSlots := cells + 2
	win := rt.Comm().NewUniformWin(segSlots * 8)
	// Deterministic initial condition, written host-side before the run.
	for r := 0; r < n; r++ {
		seg := win.Seg(r)
		x := uint64(r)*0x9E3779B97F4A7C15 + 1
		for i := 0; i < cells; i++ {
			x += 0x9E3779B97F4A7C15
			z := (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			storeF64(seg, i+1, float64(z>>11)/(1<<53))
		}
	}

	var elapsed sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		me := s.Rank()
		r := s.Local().Rank()
		p := r.Proc()
		left := (me + n - 1) % n
		right := (me + 1) % n
		seg := win.Seg(me)
		tmp := make([]float64, cells)

		exchange := func() {
			// My first cell is my left neighbour's right ghost; my last
			// cell is my right neighbour's left ghost.
			win.PutUint64(r, loadBits(seg, 1), left, uint64Off(cells+1))
			win.PutUint64(r, loadBits(seg, cells), right, uint64Off(0))
			r.Flush()
			r.Barrier()
		}

		start := p.Now()
		exchange() // populate ghosts for the first step
		for step := 0; step < cfg.Steps; step++ {
			for i := 0; i < cells; i++ {
				l := loadF64(seg, i)
				c := loadF64(seg, i+1)
				rr := loadF64(seg, i+2)
				tmp[i] = 0.25*l + 0.5*c + 0.25*rr
			}
			for i, v := range tmp {
				storeF64(seg, i+1, v)
			}
			p.Advance(sim.Time(cells) * cfg.CellCost)
			// Fence the compute phase off from the exchange phase: every
			// rank must be done reading its ghosts before any neighbour
			// overwrites them.
			r.Barrier()
			exchange()
		}
		if me == 0 {
			elapsed = p.Now() - start
		}
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Elapsed:    elapsed,
		Stats:      rt.Comm().Stats(),
		HostShards: rt.Engine().Shards(),
		Events:     rt.Engine().Stats().Events,
		FinalState: make([]float64, 0, n*cells),
	}
	if p := rt.Profile(); p != nil {
		res.Profile = p.Snapshot()
	}
	for r := 0; r < n; r++ {
		seg := win.Seg(r)
		for i := 0; i < cells; i++ {
			v := loadF64(seg, i+1)
			res.FinalState = append(res.FinalState, v)
			res.Checksum += v
		}
	}
	return res, nil
}

// uint64Off converts a float64 slot index to a byte offset.
func uint64Off(slot int) int { return slot * 8 }

func loadBits(seg []byte, slot int) uint64 {
	off := slot * 8
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(seg[off+i]) << (8 * i)
	}
	return v
}

func loadF64(seg []byte, slot int) float64 { return math.Float64frombits(loadBits(seg, slot)) }

func storeF64(seg []byte, slot int, v float64) {
	off := slot * 8
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		seg[off+i] = byte(bits >> (8 * i))
	}
}
