package halo

import (
	"strings"
	"testing"
)

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Ranks: 4, CoresPerNode: 2, CellsPerRank: 32, Steps: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Errorf("same config, different digests:\n  %s\n  %s", a.Digest(), b.Digest())
	}
	if a.Elapsed <= 0 {
		t.Errorf("elapsed = %d, want > 0", a.Elapsed)
	}
	if len(a.FinalState) != 4*32 {
		t.Errorf("final state has %d cells, want %d", len(a.FinalState), 4*32)
	}
}

func TestRunConservesMass(t *testing.T) {
	// The stencil weights sum to 1 and the ring is closed, so total mass
	// is conserved up to float rounding.
	cfg := Config{Ranks: 4, CoresPerNode: 2, CellsPerRank: 64, Steps: 1}
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Steps = 20
	many, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := one.Checksum - many.Checksum
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9*one.Checksum {
		t.Errorf("mass not conserved: %v after 1 step vs %v after 20", one.Checksum, many.Checksum)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Ranks: 1, CellsPerRank: 8, Steps: 1}); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Errorf("Ranks=1: err = %v, want ranks error", err)
	}
	if _, err := Run(Config{Ranks: 4, CellsPerRank: 1, Steps: 1}); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("CellsPerRank=1: err = %v, want cells error", err)
	}
}
