package fmmmpi

import (
	"testing"

	"ityr/internal/apps/fmm"
	"ityr/internal/netmodel"
)

var testParams = fmm.Params{N: 5000, Theta: 0.35, NCrit: 32, Seed: 7}

func TestSingleNodeHasNoIdleness(t *testing.T) {
	r := Run(testParams, 1, 8, netmodel.Default(8))
	if r.Idleness != 0 {
		t.Fatalf("idleness on 1 node = %f, want 0", r.Idleness)
	}
	if r.CommTime != 0 {
		t.Fatalf("comm on 1 node = %d, want 0", r.CommTime)
	}
}

func TestIdlenessGrowsWithNodes(t *testing.T) {
	net := netmodel.Default(8)
	var prev float64 = -1
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		r := Run(testParams, nodes, 8, net)
		t.Logf("nodes=%2d idleness=%.3f elapsed=%.2fms", nodes, r.Idleness, float64(r.Elapsed)/1e6)
		if r.Idleness < 0 || r.Idleness >= 1 {
			t.Fatalf("idleness %f out of range", r.Idleness)
		}
		if nodes >= 4 && r.Idleness < prev-0.05 {
			t.Errorf("idleness shrank markedly from %f to %f at %d nodes", prev, r.Idleness, nodes)
		}
		prev = r.Idleness
	}
	if prev < 0.02 {
		t.Errorf("idleness at 16 nodes only %.3f; static partitioning should show imbalance", prev)
	}
}

func TestElapsedDecreasesWithNodes(t *testing.T) {
	net := netmodel.Default(8)
	r1 := Run(testParams, 1, 8, net)
	r8 := Run(testParams, 8, 8, net)
	if r8.Elapsed >= r1.Elapsed {
		t.Fatalf("8 nodes (%d) not faster than 1 node (%d)", r8.Elapsed, r1.Elapsed)
	}
}

func TestBusyConservation(t *testing.T) {
	net := netmodel.Default(8)
	r1 := Run(testParams, 1, 8, net)
	r4 := Run(testParams, 4, 8, net)
	var sum1, sum4 int64
	for _, b := range r1.Busy {
		sum1 += b
	}
	for _, b := range r4.Busy {
		sum4 += b
	}
	if sum1 != sum4 {
		t.Fatalf("total work changed with partitioning: %d vs %d", sum1, sum4)
	}
}

func TestDeterministic(t *testing.T) {
	net := netmodel.Default(8)
	a := Run(testParams, 8, 8, net)
	b := Run(testParams, 8, 8, net)
	if a.Elapsed != b.Elapsed || a.Idleness != b.Idleness {
		t.Fatal("nondeterministic MPI model")
	}
}

func TestIdlenessWorseForClusteredDistributions(t *testing.T) {
	// The paper's idleness comes from static particle-count partitioning
	// mismatching interaction counts. Clustered distributions widen that
	// mismatch, so Plummer idleness must be at least the cube's.
	net := netmodel.Default(8)
	idle := func(d fmm.Dist) float64 {
		p := testParams
		p.Dist = d
		return Run(p, 8, 8, net).Idleness
	}
	cube, plummer := idle(fmm.Cube), idle(fmm.Plummer)
	t.Logf("idleness on 8 nodes: cube %.3f, plummer %.3f", cube, plummer)
	if plummer < cube {
		t.Errorf("plummer idleness %.3f below cube %.3f", plummer, cube)
	}
}
