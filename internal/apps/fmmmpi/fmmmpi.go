// Package fmmmpi models the hand-optimized MPI version of ExaFMM that the
// paper compares against in Fig. 11 and Table 2: particles are statically
// partitioned across nodes by particle count, each node evaluates its own
// targets (with dynamic intra-node scheduling, as the paper's MPI version
// uses MassiveThreads within a node), and the only inter-node load
// balancing is the static partition — so the irregular tree workload
// produces idleness that grows with the node count (Table 2).
//
// The model runs the real dual tree traversal on the host, attributing
// every kernel invocation to the node that owns the target, and derives
// the makespan from per-node busy times plus the particle-exchange
// (allgather) communication cost.
package fmmmpi

import (
	"ityr/internal/apps/fmm"
	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// Result summarizes one modelled MPI execution.
type Result struct {
	// Elapsed is the modelled execution time.
	Elapsed sim.Time
	// Busy is the per-node accumulated kernel time.
	Busy []sim.Time
	// CommTime is the particle/LET exchange cost per step.
	CommTime sim.Time
	// Idleness is 1 − mean(busy)/max(busy): the fraction of the total
	// compute time nodes spend waiting for the slowest node (Table 2).
	Idleness float64
}

// kernel cost constants mirror the task-parallel implementation so the two
// versions are directly comparable.
const (
	costP2PPair = 23 * sim.Nanosecond
	costM2L     = 1100 * sim.Nanosecond
	costM2M     = 400 * sim.Nanosecond
	costL2L     = 400 * sim.Nanosecond
	costP2MBody = 120 * sim.Nanosecond
	costL2PBody = 180 * sim.Nanosecond
	costStep    = 14 * sim.Nanosecond
)

// Run models the MPI ExaFMM on the given problem. The same octree and
// traversal as the task-parallel version are used; only the work placement
// differs (static, by body index).
func Run(p fmm.Params, nodes, coresPerNode int, net netmodel.Params) Result {
	p = p.WithDefaults()
	bodies := fmm.GenBodiesDist(p.N, p.Seed, p.Dist)
	cells := fmm.BuildTree(bodies, p.NCrit)

	busy := make([]sim.Time, nodes)
	nodeOf := func(body int32) int {
		n := int(int64(body) * int64(nodes) / int64(len(bodies)))
		if n >= nodes {
			n = nodes - 1
		}
		return n
	}
	owner := func(ci int) int { return nodeOf(cells[ci].Body) }

	var up func(ci int)
	up = func(ci int) {
		c := &cells[ci]
		if c.Child < 0 {
			busy[owner(ci)] += sim.Time(c.NBody) * costP2MBody
			return
		}
		for k := int32(0); k < c.NChild; k++ {
			up(int(c.Child + k))
			busy[owner(ci)] += costM2M
		}
	}
	var dtt func(a, b int)
	dtt = func(a, b int) {
		ca, cb := &cells[a], &cells[b]
		w := owner(a)
		busy[w] += costStep
		if fmm.MAC(ca, cb, p.Theta) {
			busy[w] += costM2L
			return
		}
		if ca.Child < 0 && cb.Child < 0 {
			busy[w] += sim.Time(ca.NBody) * sim.Time(cb.NBody) * costP2PPair
			return
		}
		if cb.Child < 0 || (ca.Child >= 0 && ca.R >= cb.R) {
			for k := int32(0); k < ca.NChild; k++ {
				dtt(int(ca.Child+k), b)
			}
		} else {
			for k := int32(0); k < cb.NChild; k++ {
				dtt(a, int(cb.Child+k))
			}
		}
	}
	var down func(ci int)
	down = func(ci int) {
		c := &cells[ci]
		if c.Child < 0 {
			busy[owner(ci)] += sim.Time(c.NBody) * costL2PBody
			return
		}
		for k := int32(0); k < c.NChild; k++ {
			busy[owner(ci)] += costL2L
			down(int(c.Child + k))
		}
	}
	up(0)
	dtt(0, 0)
	down(0)

	// Communication: each node gathers the remote particles and cells it
	// needs (modelled as an allgather of the problem state).
	var comm sim.Time
	if nodes > 1 {
		bytes := (len(bodies)*64 + len(cells)*208) * (nodes - 1) / nodes
		steps := 0
		for n := 1; n < nodes; n *= 2 {
			steps++
		}
		comm = sim.Time(steps)*net.Latency + sim.Time(float64(bytes)/net.Bandwidth)
	}

	var max, sum sim.Time
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	idle := 0.0
	if max > 0 && nodes > 1 {
		idle = 1 - float64(sum)/float64(nodes)/float64(max)
	}
	return Result{
		Elapsed:  comm + max/sim.Time(coresPerNode),
		Busy:     busy,
		CommTime: comm,
		Idleness: idle,
	}
}
