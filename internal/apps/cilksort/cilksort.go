// Package cilksort implements the paper's first benchmark (§6.2, Fig. 1):
// Cilk's recursive parallel merge sort ported to global memory with
// checkout/checkin. The array is split in four, the quarters are sorted in
// parallel, merged pairwise into a temporary buffer, and merged back —
// switching to serial quicksort below the cutoff. The parallel merge
// splits by binary search on global memory, which performs the sparse
// single-element accesses whose time the paper reports as "Get" in Fig. 9.
package cilksort

import (
	"slices"
	"sync"

	"ityr"
	"ityr/internal/sim"
)

// Elem is the element type sorted by the benchmark (4-byte integers, as in
// the paper).
type Elem = int32

// Profiler categories matching Fig. 9.
const (
	CatQuicksort = "Serial Quicksort"
	CatMerge     = "Serial Merge"
	CatGet       = "Get"
)

// Analytic serial-compute cost model (A64FX-flavoured).
const (
	quickPerElemLog = 3 * sim.Nanosecond // n·log2(n) coefficient
	mergePerElem    = 4 * sim.Nanosecond
	searchPerProbe  = 6 * sim.Nanosecond
)

// Generate fills the span with uniformly random elements, in parallel,
// using a deterministic per-chunk splitmix64 stream.
func Generate(c *ityr.Ctx, a ityr.GSpan[Elem], seed uint64) {
	c.ParallelFor(0, a.Len, 1<<14, func(c *ityr.Ctx, lo, hi int64) {
		v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
		x := seed ^ uint64(lo)*0x9E3779B97F4A7C15
		for i := range v {
			x += 0x9E3779B97F4A7C15
			z := x
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			v[i] = Elem(z ^ (z >> 31))
		}
		c.Charge(sim.Time(hi-lo) * 2)
		ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
	})
}

// Sort sorts a using b as a temporary buffer (both must have equal length),
// with serial cutoff as in Fig. 1.
func Sort(c *ityr.Ctx, a, b ityr.GSpan[Elem], cutoff int64) {
	if a.Len != b.Len {
		panic("cilksort: buffer length mismatch")
	}
	if cutoff < 4 {
		cutoff = 4
	}
	cilksort(c, a, b, cutoff)
}

func log2(n int64) sim.Time {
	var k sim.Time
	for v := int64(1); v < n; v *= 2 {
		k++
	}
	return k
}

func cilksort(c *ityr.Ctx, a, b ityr.GSpan[Elem], cutoff int64) {
	if a.Len < cutoff {
		// SDC-protected leaf: sorting is replay-stable (re-sorting a
		// sorted leaf commits the same bytes), so the leaf qualifies for
		// selective replication.
		c.Protected(func() uint64 {
			v := ityr.Checkout(c, a, ityr.ReadWrite)
			sortLeaf(v)
			c.ChargeAs(CatQuicksort, sim.Time(a.Len)*quickPerElemLog*log2(a.Len))
			ityr.Checkin(c, a, ityr.ReadWrite)
			return 0
		})
		return
	}
	a12, a34 := a.SplitTwo()
	a1, a2 := a12.SplitTwo()
	a3, a4 := a34.SplitTwo()
	b12, b34 := b.SplitTwo()
	b1, b2 := b12.SplitTwo()
	b3, b4 := b34.SplitTwo()
	c.ParallelInvoke(
		func(c *ityr.Ctx) { cilksort(c, a1, b1, cutoff) },
		func(c *ityr.Ctx) { cilksort(c, a2, b2, cutoff) },
		func(c *ityr.Ctx) { cilksort(c, a3, b3, cutoff) },
		func(c *ityr.Ctx) { cilksort(c, a4, b4, cutoff) },
	)
	c.ParallelInvoke(
		func(c *ityr.Ctx) { cilkmerge(c, a1, a2, b12, cutoff) },
		func(c *ityr.Ctx) { cilkmerge(c, a3, a4, b34, cutoff) },
	)
	cilkmerge(c, b12, b34, a, cutoff)
}

// cilkmerge merges sorted s1 and s2 into d (d.Len == s1.Len + s2.Len).
func cilkmerge(c *ityr.Ctx, s1, s2, d ityr.GSpan[Elem], cutoff int64) {
	if s1.Len < s2.Len {
		s1, s2 = s2, s1 // keep the larger span first, as Cilk does
	}
	if s2.Len == 0 {
		copySpan(c, s1, d)
		return
	}
	if d.Len < cutoff {
		serialMerge(c, s1, s2, d)
		return
	}
	p1 := (s1.Len + 1) / 2
	pivot := getElem(c, s1.At(p1-1))
	p2 := lowerBound(c, s2, pivot)
	s11, s12 := s1.SplitAt(p1)
	s21, s22 := s2.SplitAt(p2)
	d1, d2 := d.SplitAt(p1 + p2)
	c.ParallelInvoke(
		func(c *ityr.Ctx) { cilkmerge(c, s11, s21, d1, cutoff) },
		func(c *ityr.Ctx) { cilkmerge(c, s12, s22, d2, cutoff) },
	)
}

// serialMerge is SDC-protected: it overwrites d from read-only sources,
// so a re-execution commits identical bytes (replay-stable).
func serialMerge(c *ityr.Ctx, s1, s2, d ityr.GSpan[Elem]) {
	c.Protected(func() uint64 {
		v1 := ityr.Checkout(c, s1, ityr.Read)
		v2 := ityr.Checkout(c, s2, ityr.Read)
		vd := ityr.Checkout(c, d, ityr.Write)
		i, j, k := 0, 0, 0
		for i < len(v1) && j < len(v2) {
			if v1[i] <= v2[j] {
				vd[k] = v1[i]
				i++
			} else {
				vd[k] = v2[j]
				j++
			}
			k++
		}
		k += copy(vd[k:], v1[i:])
		copy(vd[k:], v2[j:])
		c.ChargeAs(CatMerge, sim.Time(d.Len)*mergePerElem)
		ityr.Checkin(c, s1, ityr.Read)
		ityr.Checkin(c, s2, ityr.Read)
		ityr.Checkin(c, d, ityr.Write)
		return 0
	})
}

// sortLeaf sorts a sub-cutoff leaf on the host. The simulated cost charged
// for the leaf is the analytic quicksort model above regardless of the host
// algorithm, so this may use the fastest correct host sort: an LSD radix
// sort on the sign-flipped bit pattern (two 11-bit and one 10-bit pass),
// falling back to the standard library for tiny slices where the counting
// passes do not pay for themselves.
func sortLeaf(v []Elem) {
	if len(v) < 128 {
		slices.Sort(v)
		return
	}
	scratch := getScratch(len(v))
	defer putScratch(scratch)
	const r1, r2 = 11, 11 // pass radixes: 11 + 11 + 10 = 32 bits
	var c1 [1 << r1]int32
	var c2 [1 << r2]int32
	var c3 [1 << (32 - r1 - r2)]int32
	for _, x := range v {
		u := uint32(x) ^ 0x80000000 // order-preserving map to uint32
		c1[u&(1<<r1-1)]++
		c2[u>>r1&(1<<r2-1)]++
		c3[u>>(r1+r2)]++
	}
	exclusivePrefixSum(c1[:])
	exclusivePrefixSum(c2[:])
	exclusivePrefixSum(c3[:])
	for _, x := range v {
		u := uint32(x) ^ 0x80000000
		b := &c1[u&(1<<r1-1)]
		scratch[*b] = x
		*b++
	}
	for _, x := range scratch {
		u := uint32(x) ^ 0x80000000
		b := &c2[u>>r1&(1<<r2-1)]
		v[*b] = x
		*b++
	}
	for _, x := range v {
		u := uint32(x) ^ 0x80000000
		b := &c3[u>>(r1+r2)]
		scratch[*b] = x
		*b++
	}
	copy(v, scratch)
}

func exclusivePrefixSum(c []int32) {
	var sum int32
	for i, n := range c {
		c[i] = sum
		sum += n
	}
}

// scratchPool recycles radix-sort scratch buffers across leaves. The pool
// only affects host allocation behaviour, never simulated time.
var scratchPool sync.Pool

func getScratch(n int) []Elem {
	if s, ok := scratchPool.Get().([]Elem); ok && cap(s) >= n {
		return s[:n]
	}
	return make([]Elem, n)
}

func putScratch(s []Elem) { scratchPool.Put(s[:0]) }

// copySpan is SDC-protected for the same reason as serialMerge: a pure
// overwrite from a read-only source.
func copySpan(c *ityr.Ctx, s, d ityr.GSpan[Elem]) {
	c.Protected(func() uint64 {
		vs := ityr.Checkout(c, s, ityr.Read)
		vd := ityr.Checkout(c, d, ityr.Write)
		copy(vd, vs)
		c.ChargeAs(CatMerge, sim.Time(d.Len)*mergePerElem/2)
		ityr.Checkin(c, s, ityr.Read)
		ityr.Checkin(c, d, ityr.Write)
		return 0
	})
}

// getElem loads one element from global memory, attributed to "Get".
func getElem(c *ityr.Ctx, p ityr.GPtr[Elem]) Elem {
	l := c.Local()
	l.ProfCategory = CatGet
	v := ityr.GetVal(c, p)
	l.ProfCategory = ""
	c.Charge(searchPerProbe)
	return v
}

// lowerBound returns the first index i in sorted s with s[i] >= x, probing
// global memory element by element (the sparse access pattern of Fig. 1
// line 37).
func lowerBound(c *ityr.Ctx, s ityr.GSpan[Elem], x Elem) int64 {
	lo, hi := int64(0), s.Len
	for lo < hi {
		mid := (lo + hi) / 2
		if getElem(c, s.At(mid)) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IsSorted verifies sortedness from the root thread in parallel chunks.
func IsSorted(c *ityr.Ctx, a ityr.GSpan[Elem]) bool {
	if a.Len < 2 {
		return true
	}
	ok := true
	c.ParallelFor(0, a.Len-1, 1<<14, func(c *ityr.Ctx, lo, hi int64) {
		// Overlap chunks by one element to check the seams.
		v := ityr.Checkout(c, a.Slice(lo, hi+1), ityr.Read)
		for i := 0; i+1 < len(v); i++ {
			if v[i] > v[i+1] {
				ok = false
			}
		}
		c.Charge(sim.Time(hi - lo))
		ityr.Checkin(c, a.Slice(lo, hi+1), ityr.Read)
	})
	return ok
}

// Checksum computes an order-independent checksum (sum of elements) so
// tests can verify the sort is a permutation.
func Checksum(c *ityr.Ctx, a ityr.GSpan[Elem]) int64 {
	var sum func(c *ityr.Ctx, s ityr.GSpan[Elem]) int64
	sum = func(c *ityr.Ctx, s ityr.GSpan[Elem]) int64 {
		if s.Len <= 1<<14 {
			v := ityr.Checkout(c, s, ityr.Read)
			var t int64
			for _, x := range v {
				t += int64(x)
			}
			c.Charge(sim.Time(s.Len))
			ityr.Checkin(c, s, ityr.Read)
			return t
		}
		l, r := s.SplitTwo()
		var a, b int64
		c.ParallelInvoke(
			func(c *ityr.Ctx) { a = sum(c, l) },
			func(c *ityr.Ctx) { b = sum(c, r) },
		)
		return a + b
	}
	return sum(c, a)
}

// SerialTime returns the modelled serial execution time for sorting n
// elements (the all-runtime-calls-elided baseline used for speedups in
// Fig. 8): quicksort to the cutoff plus the three merge passes per level.
func SerialTime(n int64) sim.Time {
	return sim.Time(n)*quickPerElemLog*log2(n) + sim.Time(n)*mergePerElem
}
