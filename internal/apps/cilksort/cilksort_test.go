package cilksort

import (
	"fmt"
	"testing"

	"ityr"
	"ityr/internal/sim"
)

func cfg(ranks int, pol ityr.Policy) ityr.Config {
	return ityr.Config{
		Ranks:        ranks,
		CoresPerNode: 4,
		Pgas:         ityr.PgasConfig{BlockSize: 16 << 10, SubBlockSize: 2 << 10, CacheSize: 2 << 20, Policy: pol},
		Seed:         3,
	}
}

func TestSortsCorrectlyAllPolicies(t *testing.T) {
	const n = 1 << 14
	for _, pol := range ityr.Policies {
		for _, ranks := range []int{1, 8} {
			pol, ranks := pol, ranks
			t.Run(fmt.Sprintf("%v/%dr", pol, ranks), func(t *testing.T) {
				var sortedOK bool
				var before, after int64
				_, err := ityr.LaunchRoot(cfg(ranks, pol), func(c *ityr.Ctx) {
					a := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
					b := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
					Generate(c, a, 12345)
					before = Checksum(c, a)
					Sort(c, a, b, 512)
					after = Checksum(c, a)
					sortedOK = IsSorted(c, a)
				})
				if err != nil {
					t.Fatal(err)
				}
				if !sortedOK {
					t.Error("array not sorted")
				}
				if before != after {
					t.Errorf("checksum changed: %d -> %d (not a permutation)", before, after)
				}
			})
		}
	}
}

func TestSmallAndEdgeSizes(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 7, 100, 1023} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var ok bool
			_, err := ityr.LaunchRoot(cfg(2, ityr.WriteBackLazy), func(c *ityr.Ctx) {
				a := ityr.AllocArray[Elem](c, n, ityr.BlockDist)
				b := ityr.AllocArray[Elem](c, n, ityr.BlockDist)
				Generate(c, a, uint64(n))
				Sort(c, a, b, 16)
				ok = IsSorted(c, a)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("not sorted")
			}
		})
	}
}

func TestAlreadySortedAndReversed(t *testing.T) {
	const n = 4096
	var ok1, ok2 bool
	_, err := ityr.LaunchRoot(cfg(4, ityr.WriteBack), func(c *ityr.Ctx) {
		a := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
		b := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
		// Ascending input.
		c.ParallelFor(0, n, 1024, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = Elem(lo) + Elem(i)
			}
			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
		})
		Sort(c, a, b, 256)
		ok1 = IsSorted(c, a)
		// Descending input.
		c.ParallelFor(0, n, 1024, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = Elem(n) - Elem(lo) - Elem(i)
			}
			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
		})
		Sort(c, a, b, 256)
		ok2 = IsSorted(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok1 || !ok2 {
		t.Errorf("sorted=%v reversed=%v", ok1, ok2)
	}
}

func TestDuplicateHeavyInput(t *testing.T) {
	const n = 8192
	var ok bool
	var before, after int64
	_, err := ityr.LaunchRoot(cfg(4, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		a := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
		b := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
		c.ParallelFor(0, n, 1024, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = Elem((lo + int64(i)) % 7) // heavy duplication
			}
			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
		})
		before = Checksum(c, a)
		Sort(c, a, b, 128)
		after = Checksum(c, a)
		ok = IsSorted(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || before != after {
		t.Errorf("ok=%v before=%d after=%d", ok, before, after)
	}
}

func TestCachingImprovesFineGrainedSort(t *testing.T) {
	// The Fig. 7 claim in miniature: at a small cutoff, the lazy
	// write-back cache beats the no-cache GET/PUT baseline.
	const n = 1 << 14
	run := func(pol ityr.Policy) sim.Time {
		elapsed, err := ityr.LaunchRoot(cfg(8, pol), func(c *ityr.Ctx) {
			a := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
			b := ityr.AllocArray[Elem](c, n, ityr.BlockCyclicDist)
			Generate(c, a, 99)
			Sort(c, a, b, 128)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	noCache := run(ityr.NoCache)
	lazy := run(ityr.WriteBackLazy)
	if lazy >= noCache {
		t.Errorf("lazy write-back (%v) not faster than no-cache (%v) at fine grain", lazy, noCache)
	} else {
		t.Logf("fine-grained cutoff: no-cache %.2f ms vs lazy %.2f ms (%.1fx)",
			float64(noCache)/1e6, float64(lazy)/1e6, float64(noCache)/float64(lazy))
	}
}
