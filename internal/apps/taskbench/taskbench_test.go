package taskbench

import (
	"fmt"
	"testing"

	"ityr"
)

func smokeParams(sh Shape) Params {
	return Params{Shape: sh, Width: 32, Steps: 6, GrainNs: 1000, EdgeBytes: 64, Seed: 7}
}

func smokeConfig(pol ityr.SchedPolicy) ityr.Config {
	return ityr.Config{
		Ranks: 4, CoresPerNode: 2,
		Pgas: ityr.PgasConfig{
			BlockSize: 4 << 10, SubBlockSize: 512, CacheSize: 1 << 20,
			Policy: ityr.WriteBackLazy,
		},
		Seed:  42,
		Sched: ityr.SchedConfig{Policy: pol},
	}
}

func TestShapeParseRoundTrip(t *testing.T) {
	for _, sh := range Shapes {
		got, err := ParseShape(sh.String())
		if err != nil || got != sh {
			t.Fatalf("ParseShape(%q) = %v, %v", sh.String(), got, err)
		}
	}
	if _, err := ParseShape("nope"); err == nil {
		t.Fatal("ParseShape(nope) succeeded")
	}
}

// TestDepsDeterministic pins generator determinism per shape: the same
// Params produce the same graph on every call (same seed → same graph).
func TestDepsDeterministic(t *testing.T) {
	for _, sh := range Shapes {
		p := smokeParams(sh)
		a := fmt.Sprint(depsAll(p))
		b := fmt.Sprint(depsAll(p))
		if a != b {
			t.Fatalf("%v: graph changed between calls", sh)
		}
	}
	// Random must actually vary with the seed (the others are seed-free).
	p1, p2 := smokeParams(Random), smokeParams(Random)
	p2.Seed = 8
	if fmt.Sprint(depsAll(p1)) == fmt.Sprint(depsAll(p2)) {
		t.Fatal("Random graph identical across different seeds")
	}
}

func depsAll(p Params) [][]int {
	var all [][]int
	for step := 1; step <= p.Steps; step++ {
		for i := 0; i < p.Width; i++ {
			all = append(all, p.Deps(step, i))
		}
	}
	return all
}

// TestDepsShapeProperties checks each shape's structural contract: edge
// counts, bounds, and sortedness/deduplication.
func TestDepsShapeProperties(t *testing.T) {
	p := Params{Width: 16, Steps: 3, Fan: 3, Radius: 2, Seed: 5}
	for _, sh := range Shapes {
		p.Shape = sh
		for step := 1; step <= p.Steps; step++ {
			for i := 0; i < p.Width; i++ {
				deps := p.Deps(step, i)
				for k, d := range deps {
					if d < 0 || d >= p.Width {
						t.Fatalf("%v dep %d out of range", sh, d)
					}
					if k > 0 && deps[k-1] >= d {
						t.Fatalf("%v deps not sorted/deduped: %v", sh, deps)
					}
				}
				switch sh {
				case Trivial:
					if len(deps) != 0 {
						t.Fatalf("trivial task has deps: %v", deps)
					}
				case Stencil:
					want := 3
					if i == 0 || i == p.Width-1 {
						want = 2
					}
					if len(deps) != want {
						t.Fatalf("stencil(%d) deps = %v, want %d", i, deps, want)
					}
				case Nearest:
					if len(deps) != 2*p.Radius+1 {
						t.Fatalf("nearest deps = %v, want %d", deps, 2*p.Radius+1)
					}
				case Spread:
					if len(deps) != p.Fan {
						t.Fatalf("spread deps = %v, want %d", deps, p.Fan)
					}
				case Random:
					if len(deps) == 0 || len(deps) > p.Fan {
						t.Fatalf("random deps = %v, want 1..%d", deps, p.Fan)
					}
				}
			}
		}
	}
}

// TestRunDigestDeterministic: same config, same params → same digest.
func TestRunDigestDeterministic(t *testing.T) {
	for _, sh := range Shapes {
		sh := sh
		t.Run(sh.String(), func(t *testing.T) {
			r1, err := Run(smokeConfig(ityr.ChildFirst), smokeParams(sh))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(smokeConfig(ityr.ChildFirst), smokeParams(sh))
			if err != nil {
				t.Fatal(err)
			}
			if r1.Digest() != r2.Digest() {
				t.Fatalf("digest moved:\n  %s\n  %s", r1.Digest(), r2.Digest())
			}
		})
	}
}

// TestChecksumPolicyInvariant: the checksum is a property of the graph,
// not the schedule — all three scheduling policies must agree on it (the
// cross-policy correctness check).
func TestChecksumPolicyInvariant(t *testing.T) {
	for _, sh := range Shapes {
		sh := sh
		t.Run(sh.String(), func(t *testing.T) {
			var want uint64
			for k, pol := range ityr.SchedPolicies {
				r, err := Run(smokeConfig(pol), smokeParams(sh))
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				if r.Tasks != int64(32*6) {
					t.Fatalf("tasks = %d, want %d", r.Tasks, 32*6)
				}
				if k == 0 {
					want = r.Checksum
				} else if r.Checksum != want {
					t.Fatalf("%v checksum %016x != childfirst %016x", pol, r.Checksum, want)
				}
			}
		})
	}
}

// TestEdgeBytesMovesTraffic: widening cells must move more RMA bytes —
// the communication-intensity knob has to be real, not cosmetic.
func TestEdgeBytesMovesTraffic(t *testing.T) {
	p := smokeParams(Spread)
	thin, err := Run(smokeConfig(ityr.ChildFirst), p)
	if err != nil {
		t.Fatal(err)
	}
	p.EdgeBytes = 1024
	wide, err := Run(smokeConfig(ityr.ChildFirst), p)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stats.GetBytes+wide.Stats.PutBytes <= thin.Stats.GetBytes+thin.Stats.PutBytes {
		t.Fatalf("1024B cells moved %d bytes, 64B cells %d — knob inert",
			wide.Stats.GetBytes+wide.Stats.PutBytes, thin.Stats.GetBytes+thin.Stats.PutBytes)
	}
}

// TestGrainExtendsElapsed: coarser tasks must take longer in virtual time.
func TestGrainExtendsElapsed(t *testing.T) {
	p := smokeParams(Trivial)
	fine, err := Run(smokeConfig(ityr.ChildFirst), p)
	if err != nil {
		t.Fatal(err)
	}
	p.GrainNs = 50000
	coarse, err := Run(smokeConfig(ityr.ChildFirst), p)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Elapsed <= fine.Elapsed {
		t.Fatalf("coarse grain elapsed %d <= fine %d", coarse.Elapsed, fine.Elapsed)
	}
}

// TestHostProcsParity: the digest must not depend on host sharding, under
// every scheduling policy (the sharded-engine contract extended to the new
// policies). The -race CI smoke runs exactly this test.
func TestHostProcsParity(t *testing.T) {
	for _, pol := range ityr.SchedPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			serial := smokeConfig(pol)
			serial.HostProcs = 1
			sharded := smokeConfig(pol)
			sharded.HostProcs = 4
			r1, err := Run(serial, smokeParams(Nearest))
			if err != nil {
				t.Fatal(err)
			}
			r4, err := Run(sharded, smokeParams(Nearest))
			if err != nil {
				t.Fatal(err)
			}
			if r1.Digest() != r4.Digest() {
				t.Fatalf("digest depends on HostProcs:\n  1: %s\n  4: %s", r1.Digest(), r4.Digest())
			}
		})
	}
}
