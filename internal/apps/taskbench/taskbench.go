// Package taskbench is a parameterized dependency-graph benchmark in the
// style of Task Bench (see PAPERS.md: the Itoyori/ItoyoriFBC/HPX/MPI
// study): a W-wide, S-step task graph whose inter-task dependencies follow
// a configurable shape, with controlled task grain (virtual compute per
// task) and communication intensity (bytes moved per dependency edge
// through the PGAS cache).
//
// On a global-view fork-join runtime, dependencies are not scheduler
// edges: each step is a ParallelFor over the W tasks, and a task
// "depends" on its predecessors by checking their output cells out of
// global memory (reads of the previous step's buffer) before writing its
// own cell into the next buffer. The fork-join barrier between steps
// plays the role of Task Bench's per-step synchronization, and the cache
// layer turns each edge into actual wire traffic exactly when the
// dependency crosses ranks — which is what makes shape × scheduler a
// meaningful matrix: the scheduler decides where tasks run, the shape
// decides which cells they touch, and the product decides how many bytes
// move.
//
// Every run is bit-deterministic: the graph derives from Params.Seed via
// splitmix64, task bodies fold dependency bytes with a commutative mixer,
// and the Result digest pins elapsed time, RMA traffic and the final
// buffer contents.
package taskbench

import (
	"fmt"
	"hash/fnv"
	"sort"

	"ityr"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// Shape selects the dependency pattern between consecutive steps.
type Shape int

const (
	// Trivial has no dependencies: W independent tasks per step
	// (embarrassingly parallel; isolates pure scheduling overhead).
	Trivial Shape = iota
	// Stencil depends on {i-1, i, i+1} clamped at the edges — the 1D
	// stencil pattern with purely local communication.
	Stencil
	// Nearest depends on the periodic window of Params.Radius cells on
	// each side of i (2·Radius+1 edges per task).
	Nearest
	// Spread depends on Params.Fan cells strided W/Fan apart and shifted
	// by the step index — long-range edges that defeat spatial locality.
	Spread
	// Random depends on Params.Fan cells drawn per (seed, step, task)
	// from splitmix64 — a different irregular graph every seed, the same
	// graph every run of one seed.
	Random
)

// Shapes lists every graph shape in matrix order.
var Shapes = []Shape{Trivial, Stencil, Nearest, Spread, Random}

// String returns the shape's flag spelling.
func (s Shape) String() string {
	switch s {
	case Trivial:
		return "trivial"
	case Stencil:
		return "stencil"
	case Nearest:
		return "nearest"
	case Spread:
		return "spread"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ParseShape maps a flag spelling to its shape, listing the valid set on
// error.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes {
		if s == sh.String() {
			return sh, nil
		}
	}
	return Trivial, fmt.Errorf("unknown shape %q (valid: %s, %s, %s, %s, %s)",
		s, Trivial, Stencil, Nearest, Spread, Random)
}

// Params sizes one task-graph run.
type Params struct {
	// Shape is the dependency pattern.
	Shape Shape
	// Width is W, the tasks per step.
	Width int
	// Steps is S, the number of dependency-connected steps after the
	// initial (dependency-free) producer step.
	Steps int
	// GrainNs is the virtual compute charged per task — the task grain
	// knob (default 1µs).
	GrainNs sim.Time
	// EdgeBytes is each task's output-cell size, and therefore the bytes
	// a dependency edge moves through the PGAS layer (default 512).
	EdgeBytes int
	// Fan is the dependency count per task for Spread and Random
	// (default 3).
	Fan int
	// Radius is the window half-width for Nearest (default 2).
	Radius int
	// Seed determinizes the Random graph and the initial cell values.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.GrainNs == 0 {
		p.GrainNs = sim.Microsecond
	}
	if p.EdgeBytes == 0 {
		p.EdgeBytes = 512
	}
	if p.Fan == 0 {
		p.Fan = 3
	}
	if p.Radius == 0 {
		p.Radius = 2
	}
	return p
}

// splitmix64 advances the splitmix64 PRNG state and returns the mixed
// output — the repo's standard deterministic value derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Deps returns the (sorted, deduplicated) dependency cells of task i at
// step — the cells of step-1 whose outputs the task reads. It is a pure
// function of (Params, step, i): the whole graph is derivable host-side
// without running the simulator, which is what the generator determinism
// tests pin. step counts from 1 (step 0 is the dependency-free producer).
func (p Params) Deps(step, i int) []int {
	p = p.withDefaults()
	w := p.Width
	var deps []int
	switch p.Shape {
	case Trivial:
		return nil
	case Stencil:
		for _, d := range []int{i - 1, i, i + 1} {
			if d >= 0 && d < w {
				deps = append(deps, d)
			}
		}
	case Nearest:
		for o := -p.Radius; o <= p.Radius; o++ {
			deps = append(deps, ((i+o)%w+w)%w)
		}
	case Spread:
		for k := 0; k < p.Fan; k++ {
			deps = append(deps, (i+step+k*w/p.Fan)%w)
		}
	case Random:
		x := uint64(p.Seed)*0x9E3779B97F4A7C15 ^ uint64(step)<<32 ^ uint64(i)
		for k := 0; k < p.Fan; k++ {
			x = splitmix64(x)
			deps = append(deps, int(x%uint64(w)))
		}
	}
	sort.Ints(deps)
	// Deduplicate: periodic windows wider than W and random draws can
	// repeat a cell, and a task reads each dependency once.
	out := deps[:0]
	for _, d := range deps {
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	return out
}

// CountEdges returns the total dependency-edge count of the graph —
// host-side, without the simulator.
func (p Params) CountEdges() int64 {
	var edges int64
	for step := 1; step <= p.Steps; step++ {
		for i := 0; i < p.Width; i++ {
			edges += int64(len(p.Deps(step, i)))
		}
	}
	return edges
}

// Result carries one finished run's observables.
type Result struct {
	// Elapsed is the virtual time of the timed phase (all Steps rounds;
	// the dependency-free producer step is excluded).
	Elapsed sim.Time
	// Checksum folds the final buffer's cell values; it depends only on
	// Params, never on the schedule, so it cross-checks the scheduling
	// policies against each other.
	Checksum uint64
	// Tasks and Edges count the graph actually executed.
	Tasks, Edges int64
	// Stats is the RMA traffic of the whole run.
	Stats rma.Stats
	// Steals and Migrations summarize the schedule that ran the graph.
	Steals, Migrations uint64
}

// Digest folds every simulated observable into one printable string; two
// runs of the same (Config, Params) must match regardless of HostProcs.
func (r Result) Digest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "checksum=%016x tasks=%d edges=%d\n", r.Checksum, r.Tasks, r.Edges)
	fmt.Fprintf(h, "rma=%+v\n", r.Stats)
	fmt.Fprintf(h, "sched=steals:%d migrations:%d\n", r.Steals, r.Migrations)
	return fmt.Sprintf("elapsed=%d checksum=%016x fnv=%016x", r.Elapsed, r.Checksum, h.Sum64())
}

// cellValue is the value task (step, i) writes into its cell: the mixed
// fold of its dependencies' values plus its own identity. Step 0 is the
// producer row seeded from Params.Seed alone.
func cellValue(seed int64, step, i int, depVals []uint64) uint64 {
	v := splitmix64(uint64(seed) ^ uint64(step)<<40 ^ uint64(i)*0x9E3779B97F4A7C15)
	for _, d := range depVals {
		v += splitmix64(d) // commutative: order of dependency reads is free
	}
	return v
}

// Run executes the task graph under rcfg and returns its observables. The
// two step buffers are block-distributed byte arrays of Width cells ×
// EdgeBytes; each task checks its dependency cells out of the previous
// step's buffer (Read), charges GrainNs of compute, and fills its own
// cell in the next buffer (Write) — so EdgeBytes genuinely controls the
// bytes an off-rank dependency moves, under whatever cache policy rcfg
// selects.
func Run(rcfg ityr.Config, p Params) (Result, error) {
	p = p.withDefaults()
	if p.Width < 1 || p.Steps < 1 {
		return Result{}, fmt.Errorf("taskbench: need Width and Steps >= 1, got %d×%d", p.Width, p.Steps)
	}
	if p.EdgeBytes < 8 {
		return Result{}, fmt.Errorf("taskbench: EdgeBytes must be >= 8, got %d", p.EdgeBytes)
	}
	rt := ityr.NewRuntime(rcfg)
	n := int64(p.Width) * int64(p.EdgeBytes)
	var elapsed sim.Time
	var final []byte
	err := rt.Run(func(s *ityr.SPMD) {
		// Rank 0 drives the collective allocations; the other ranks only
		// need the spans through the RootExec closures below, which all
		// capture rank 0's variables.
		var src, dst ityr.GSpan[byte]
		if s.Rank() == 0 {
			src = ityr.AllocArraySPMD[byte](s, n, ityr.BlockDist)
			dst = ityr.AllocArraySPMD[byte](s, n, ityr.BlockDist)
		}
		s.Barrier()
		// Producer step: fill row 0 outside the timed phase.
		s.RootExec(func(c *ityr.Ctx) {
			c.ParallelFor(0, int64(p.Width), 1, func(c *ityr.Ctx, lo, hi int64) {
				for i := lo; i < hi; i++ {
					writeCell(c, src, p, int(i), cellValue(p.Seed, 0, int(i), nil))
				}
			})
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			for step := 1; step <= p.Steps; step++ {
				step := step
				sFrom, sTo := src, dst
				c.ParallelFor(0, int64(p.Width), 1, func(c *ityr.Ctx, lo, hi int64) {
					for i := lo; i < hi; i++ {
						task(c, sFrom, sTo, p, step, int(i))
					}
				})
				src, dst = dst, src
			}
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
			b, err := ityr.GetSlice(s, src)
			if err != nil {
				panic(err)
			}
			final = b
		}
		s.Barrier()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Elapsed:    elapsed,
		Tasks:      int64(p.Width) * int64(p.Steps),
		Edges:      p.CountEdges(),
		Stats:      rt.Comm().Stats(),
		Steals:     rt.Sched().Stats.Steals,
		Migrations: rt.Sched().Stats.Migrations,
	}
	for i := 0; i < p.Width; i++ {
		res.Checksum += splitmix64(loadCell(final, p, i))
	}
	return res, nil
}

// task runs one graph task: read dependency cells from the previous
// step's buffer, charge the grain, write this task's cell.
func task(c *ityr.Ctx, from, to ityr.GSpan[byte], p Params, step, i int) {
	deps := p.Deps(step, i)
	depVals := make([]uint64, len(deps))
	for k, d := range deps {
		cell := from.Slice(int64(d)*int64(p.EdgeBytes), int64(d+1)*int64(p.EdgeBytes))
		v := ityr.Checkout(c, cell, ityr.Read)
		depVals[k] = leUint64(v)
		ityr.Checkin(c, cell, ityr.Read)
	}
	c.Charge(p.GrainNs)
	writeCell(c, to, p, i, cellValue(p.Seed, step, i, depVals))
}

// writeCell fills task i's whole EdgeBytes-wide cell with bytes derived
// from v (the value itself in the first 8 bytes); filling the full cell
// is what makes EdgeBytes the wire-traffic knob even under write-back
// dirty-interval tracking.
func writeCell(c *ityr.Ctx, buf ityr.GSpan[byte], p Params, i int, v uint64) {
	cell := buf.Slice(int64(i)*int64(p.EdgeBytes), int64(i+1)*int64(p.EdgeBytes))
	out := ityr.Checkout(c, cell, ityr.Write)
	x := v
	for j := 0; j < len(out); j += 8 {
		for b := 0; b < 8 && j+b < len(out); b++ {
			out[j+b] = byte(x >> (8 * b))
		}
		x = splitmix64(x)
	}
	ityr.Checkin(c, cell, ityr.Write)
}

// loadCell reads cell i's value (its first 8 bytes) from a host-side copy
// of a buffer.
func loadCell(buf []byte, p Params, i int) uint64 {
	return leUint64(buf[i*p.EdgeBytes:])
}

// leUint64 decodes a little-endian uint64 from the head of b.
func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
