package fmm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestP2MThenM2PMatchesDirectFarField(t *testing.T) {
	// A clump of sources far from a probe: multipole → local → evaluate
	// must approximate the direct sum well.
	src := []Body{
		{X: 0.1, Y: 0.2, Z: 0.3, Q: 1.5},
		{X: 0.15, Y: 0.1, Z: 0.25, Q: -0.7},
		{X: 0.05, Y: 0.22, Z: 0.33, Q: 0.9},
	}
	var m Expansion
	cx, cy, cz := 0.1, 0.18, 0.29
	P2M(src, cx, cy, cz, &m)
	probe := []Body{{X: 5, Y: 4.5, Z: 5.5}}
	var l Expansion
	M2L(&m, cx, cy, cz, probe[0].X, probe[0].Y, probe[0].Z, &l)
	got := l[0] // local value at its center = potential
	ref := DirectHost(append(append([]Body{}, src...), probe[0]))
	want := ref[3].P
	if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-4 {
		t.Fatalf("far-field potential %g vs direct %g (rel %g)", got, want, rel)
	}
}

func TestM2MPreservesFarField(t *testing.T) {
	// Moments translated to a different center must give the same far
	// potential.
	src := []Body{
		{X: 0.1, Y: 0.2, Z: 0.3, Q: 1.5},
		{X: 0.3, Y: 0.1, Z: 0.2, Q: 2.1},
	}
	var m1, m2 Expansion
	P2M(src, 0.2, 0.15, 0.25, &m1)
	M2M(&m1, 0.2, 0.15, 0.25, 0.5, 0.5, 0.5, &m2)
	var l1, l2 Expansion
	M2L(&m1, 0.2, 0.15, 0.25, 8, 8, 8, &l1)
	M2L(&m2, 0.5, 0.5, 0.5, 8, 8, 8, &l2)
	if rel := math.Abs(l1[0]-l2[0]) / math.Abs(l1[0]); rel > 2e-3 {
		t.Fatalf("M2M changed far potential: %g vs %g", l1[0], l2[0])
	}
}

func TestL2LPreservesEvaluation(t *testing.T) {
	var m Expansion
	P2M([]Body{{X: 0.1, Y: 0, Z: 0, Q: 3}}, 0, 0, 0, &m)
	var lp Expansion
	M2L(&m, 0, 0, 0, 6, 6, 6, &lp)
	var lc Expansion
	L2L(&lp, 6, 6, 6, 6.2, 6.1, 5.9, &lc)
	// Evaluate both at the same point.
	a := []Body{{X: 6.25, Y: 6.15, Z: 5.95}}
	b := []Body{{X: 6.25, Y: 6.15, Z: 5.95}}
	L2P(&lp, 6, 6, 6, a)
	L2P(&lc, 6.2, 6.1, 5.9, b)
	if rel := math.Abs(a[0].P-b[0].P) / math.Abs(a[0].P); rel > 1e-3 {
		t.Fatalf("L2L changed potential: %g vs %g", a[0].P, b[0].P)
	}
}

func TestBuildTreeInvariants(t *testing.T) {
	bodies := GenBodies(2000, 42)
	cells := BuildTree(bodies, 32)
	if cells[0].NBody != 2000 {
		t.Fatalf("root covers %d bodies", cells[0].NBody)
	}
	leafBodies := 0
	for i := range cells {
		c := &cells[i]
		// Bodies inside cell bounds.
		for b := c.Body; b < c.Body+c.NBody; b++ {
			if math.Abs(bodies[b].X-c.CX) > c.R*1.001 ||
				math.Abs(bodies[b].Y-c.CY) > c.R*1.001 ||
				math.Abs(bodies[b].Z-c.CZ) > c.R*1.001 {
				t.Fatalf("body %d outside cell %d", b, i)
			}
		}
		if c.Child < 0 {
			if int(c.NBody) > 32 {
				t.Fatalf("leaf %d has %d > ncrit bodies", i, c.NBody)
			}
			leafBodies += int(c.NBody)
			continue
		}
		// Children partition the parent's body range contiguously.
		sum := int32(0)
		for k := int32(0); k < c.NChild; k++ {
			ch := &cells[c.Child+k]
			if ch.Body != c.Body+sum {
				t.Fatalf("cell %d child %d not contiguous", i, k)
			}
			sum += ch.NBody
		}
		if sum != c.NBody {
			t.Fatalf("cell %d children cover %d of %d bodies", i, sum, c.NBody)
		}
	}
	if leafBodies != 2000 {
		t.Fatalf("leaves cover %d bodies", leafBodies)
	}
}

func TestHostFMMAccuracy(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
		maxP  float64 // max allowed relative RMS potential error
	}{
		{1500, 0.2, 2e-4},
		{1500, 0.35, 2e-3},
		{1500, 0.5, 1e-2},
	} {
		bodies := GenBodies(tc.n, 7)
		cells := BuildTree(bodies, 32)
		EvaluateHost(cells, bodies, tc.theta)
		ref := DirectHost(bodies)
		perr := PotentialError(bodies, ref)
		aerr := AccelError(bodies, ref)
		t.Logf("n=%d θ=%.2f: potential err %.2e, accel err %.2e", tc.n, tc.theta, perr, aerr)
		if perr > tc.maxP {
			t.Errorf("θ=%.2f potential error %.2e > %.2e", tc.theta, perr, tc.maxP)
		}
		if aerr > tc.maxP*40 {
			t.Errorf("θ=%.2f accel error %.2e too large", tc.theta, aerr)
		}
	}
}

func TestQuickP2PSymmetry(t *testing.T) {
	// Newton's third law: total "force" (Σ q_i a_i with our convention)
	// vanishes for pair interactions.
	f := func(x1, y1, z1, x2, y2, z2 float64) bool {
		b := []Body{
			{X: math.Mod(math.Abs(x1), 1), Y: math.Mod(math.Abs(y1), 1), Z: math.Mod(math.Abs(z1), 1), Q: 1},
			{X: math.Mod(math.Abs(x2), 1) + 2, Y: math.Mod(math.Abs(y2), 1), Z: math.Mod(math.Abs(z2), 1), Q: 1},
		}
		out := DirectHost(b)
		sx := out[0].AX + out[1].AX
		sy := out[0].AY + out[1].AY
		sz := out[0].AZ + out[1].AZ
		return math.Abs(sx)+math.Abs(sy)+math.Abs(sz) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
