package fmm

import "math"

// MAC is the multipole acceptance criterion of ExaFMM's dual tree
// traversal: cells A and B interact via M2L when the distance between
// their centers exceeds (R_A + R_B) / θ.
func MAC(a, b *Cell, theta float64) bool {
	dx, dy, dz := a.CX-b.CX, a.CY-b.CY, a.CZ-b.CZ
	d2 := dx*dx + dy*dy + dz*dz
	s := (a.R + b.R) / theta
	return d2 > s*s
}

// EvaluateHost runs the whole FMM serially on the host: upward pass, dual
// tree traversal, downward pass. It verifies the algorithm independently
// of the runtime and provides the reference for the parallel version.
// bodies must be the tree-ordered array BuildTree produced.
func EvaluateHost(cells []Cell, bodies []Body, theta float64) {
	for i := range bodies {
		bodies[i].P, bodies[i].AX, bodies[i].AY, bodies[i].AZ = 0, 0, 0, 0
	}
	upwardHost(cells, bodies, 0)
	dttHost(cells, bodies, 0, 0, theta)
	downwardHost(cells, bodies, 0)
}

func upwardHost(cells []Cell, bodies []Body, ci int) {
	c := &cells[ci]
	c.M = Expansion{}
	c.L = Expansion{}
	if c.Child < 0 {
		P2M(bodies[c.Body:c.Body+c.NBody], c.CX, c.CY, c.CZ, &c.M)
		return
	}
	for k := int32(0); k < c.NChild; k++ {
		child := c.Child + k
		upwardHost(cells, bodies, int(child))
		ch := &cells[child]
		M2M(&ch.M, ch.CX, ch.CY, ch.CZ, c.CX, c.CY, c.CZ, &c.M)
	}
}

// dttHost is the dual tree traversal: targets in cell a, sources in cell b.
func dttHost(cells []Cell, bodies []Body, a, b int, theta float64) {
	ca, cb := &cells[a], &cells[b]
	if MAC(ca, cb, theta) {
		M2L(&cb.M, cb.CX, cb.CY, cb.CZ, ca.CX, ca.CY, ca.CZ, &ca.L)
		return
	}
	if ca.Child < 0 && cb.Child < 0 {
		P2P(bodies[ca.Body:ca.Body+ca.NBody], bodies[cb.Body:cb.Body+cb.NBody], a == b)
		return
	}
	// Split the larger cell (ExaFMM's traversal heuristic).
	if cb.Child < 0 || (ca.Child >= 0 && ca.R >= cb.R) {
		for k := int32(0); k < ca.NChild; k++ {
			dttHost(cells, bodies, int(ca.Child+k), b, theta)
		}
	} else {
		for k := int32(0); k < cb.NChild; k++ {
			dttHost(cells, bodies, a, int(cb.Child+k), theta)
		}
	}
}

func downwardHost(cells []Cell, bodies []Body, ci int) {
	c := &cells[ci]
	if c.Child < 0 {
		L2P(&c.L, c.CX, c.CY, c.CZ, bodies[c.Body:c.Body+c.NBody])
		return
	}
	for k := int32(0); k < c.NChild; k++ {
		child := c.Child + k
		ch := &cells[child]
		L2L(&c.L, c.CX, c.CY, c.CZ, ch.CX, ch.CY, ch.CZ, &ch.L)
		downwardHost(cells, bodies, int(child))
	}
}

// PotentialError returns the relative RMS error of got's potentials
// against the reference ref.
func PotentialError(got, ref []Body) float64 {
	var num, den float64
	for i := range got {
		d := got[i].P - ref[i].P
		num += d * d
		den += ref[i].P * ref[i].P
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// AccelError returns the relative RMS error of accelerations.
func AccelError(got, ref []Body) float64 {
	var num, den float64
	for i := range got {
		dx := got[i].AX - ref[i].AX
		dy := got[i].AY - ref[i].AY
		dz := got[i].AZ - ref[i].AZ
		num += dx*dx + dy*dy + dz*dz
		den += ref[i].AX*ref[i].AX + ref[i].AY*ref[i].AY + ref[i].AZ*ref[i].AZ
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
