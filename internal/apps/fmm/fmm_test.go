package fmm

import (
	"fmt"
	"math"
	"testing"

	"ityr"
	"ityr/internal/sim"
)

func cfg(ranks int, pol ityr.Policy) ityr.Config {
	return ityr.Config{
		Ranks:        ranks,
		CoresPerNode: 4,
		Pgas:         ityr.PgasConfig{BlockSize: 8 << 10, SubBlockSize: 1 << 10, CacheSize: 4 << 20, Policy: pol},
		Seed:         23,
	}
}

// runSim evaluates the FMM in the simulator and returns the resulting
// bodies plus the virtual time of the evaluation phase.
func runSim(t *testing.T, ranks int, pol ityr.Policy, p Params) ([]Body, sim.Time) {
	t.Helper()
	var out []Body
	var elapsed sim.Time
	err := ityr.Launch(cfg(ranks, pol), func(s *ityr.SPMD) {
		var pr Problem
		if s.Rank() == 0 {
			pr = Setup(s, p)
		}
		s.Barrier()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			pr.Evaluate(c)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
			b, err := ityr.GetSlice(s, pr.Bodies)
			if err != nil {
				t.Error(err)
			}
			out = b
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, elapsed
}

func TestParallelMatchesHost(t *testing.T) {
	p := Params{N: 1500, Theta: 0.35, NCrit: 32, NSpawn: 64, Seed: 5}
	// Host reference on the same tree-ordered bodies.
	hostBodies := GenBodies(p.N, p.Seed)
	cells := BuildTree(hostBodies, p.NCrit)
	EvaluateHost(cells, hostBodies, p.Theta)

	for _, ranks := range []int{1, 8} {
		ranks := ranks
		t.Run(fmt.Sprintf("%dr", ranks), func(t *testing.T) {
			got, _ := runSim(t, ranks, ityr.WriteBackLazy, p)
			if len(got) != len(hostBodies) {
				t.Fatalf("got %d bodies", len(got))
			}
			for i := range got {
				if rel := math.Abs(got[i].P-hostBodies[i].P) / (math.Abs(hostBodies[i].P) + 1e-300); rel > 1e-12 {
					t.Fatalf("body %d potential %g vs host %g", i, got[i].P, hostBodies[i].P)
				}
			}
		})
	}
}

func TestAllPoliciesAgree(t *testing.T) {
	p := Params{N: 800, Theta: 0.4, NCrit: 16, NSpawn: 32, Seed: 9}
	var ref []Body
	for i, pol := range ityr.Policies {
		got, _ := runSim(t, 4, pol, p)
		if i == 0 {
			ref = got
			continue
		}
		for j := range got {
			if got[j].P != ref[j].P || got[j].AX != ref[j].AX {
				t.Fatalf("policy %v body %d differs: %g vs %g", pol, j, got[j].P, ref[j].P)
			}
		}
	}
}

func TestSimAccuracyVsDirect(t *testing.T) {
	p := Params{N: 1200, Theta: 0.2, NCrit: 32, NSpawn: 64, Seed: 3}
	got, _ := runSim(t, 8, ityr.WriteBackLazy, p)
	// Direct reference on the tree-ordered bodies (same order as got).
	bodies := GenBodies(p.N, p.Seed)
	BuildTree(bodies, p.NCrit)
	ref := DirectHost(bodies)
	perr := PotentialError(got, ref)
	t.Logf("simulated FMM: potential err %.2e vs direct", perr)
	if perr > 1e-4 {
		t.Fatalf("θ=0.2 potential error %.2e too large", perr)
	}
}

func TestScalingImprovesTime(t *testing.T) {
	p := Params{N: 4000, Theta: 0.4, NCrit: 32, NSpawn: 128, Seed: 7}
	_, t1 := runSim(t, 1, ityr.WriteBackLazy, p)
	_, t16 := runSim(t, 16, ityr.WriteBackLazy, p)
	speedup := float64(t1) / float64(t16)
	t.Logf("16-rank speedup: %.2fx (t1=%.2fms t16=%.2fms)", speedup, float64(t1)/1e6, float64(t16)/1e6)
	if speedup < 3 {
		t.Errorf("16-rank FMM speedup only %.2fx", speedup)
	}
}

func TestCachingHelpsFMM(t *testing.T) {
	p := Params{N: 3000, Theta: 0.4, NCrit: 32, NSpawn: 128, Seed: 11}
	_, noCache := runSim(t, 8, ityr.NoCache, p)
	_, cached := runSim(t, 8, ityr.WriteBackLazy, p)
	t.Logf("FMM: no-cache %.2fms vs cached %.2fms (%.1fx)",
		float64(noCache)/1e6, float64(cached)/1e6, float64(noCache)/float64(cached))
	if cached >= noCache {
		t.Errorf("cached FMM (%d) not faster than no-cache (%d)", cached, noCache)
	}
}

func TestCountKernelsConsistent(t *testing.T) {
	bodies := GenBodies(2000, 13)
	cells := BuildTree(bodies, 32)
	k := CountKernels(cells, 0.35)
	if k.P2MBody != 2000 || k.L2PBody != 2000 {
		t.Errorf("P2M/L2P body counts %d/%d, want 2000", k.P2MBody, k.L2PBody)
	}
	if k.P2PPairs == 0 || k.M2L == 0 {
		t.Error("no near/far interactions counted")
	}
	if k.SerialTime() <= 0 {
		t.Error("non-positive serial time")
	}
	// Tighter θ (more accurate) must increase direct work.
	k2 := CountKernels(cells, 0.2)
	if k2.P2PPairs <= k.P2PPairs {
		t.Errorf("θ=0.2 P2P pairs %d not greater than θ=0.35's %d", k2.P2PPairs, k.P2PPairs)
	}
}
