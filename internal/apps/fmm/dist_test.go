package fmm

import (
	"math"
	"testing"
)

func TestDistributionsStayInUnitCube(t *testing.T) {
	for _, d := range []Dist{Cube, Sphere, Plummer} {
		bodies := GenBodiesDist(3000, 11, d)
		for i, b := range bodies {
			if b.X < 0 || b.X > 1 || b.Y < 0 || b.Y > 1 || b.Z < 0 || b.Z > 1 {
				t.Fatalf("%v body %d outside unit cube: (%g,%g,%g)", d, i, b.X, b.Y, b.Z)
			}
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Plummer concentrates mass near the center; Sphere leaves the center
	// empty; Cube is uniform. Compare the fraction of bodies within 0.15
	// of the center.
	frac := func(d Dist) float64 {
		bodies := GenBodiesDist(5000, 13, d)
		in := 0
		for _, b := range bodies {
			dx, dy, dz := b.X-0.5, b.Y-0.5, b.Z-0.5
			if math.Sqrt(dx*dx+dy*dy+dz*dz) < 0.15 {
				in++
			}
		}
		return float64(in) / 5000
	}
	cube, sphere, plummer := frac(Cube), frac(Sphere), frac(Plummer)
	t.Logf("central fraction: cube %.3f, sphere %.3f, plummer %.3f", cube, sphere, plummer)
	if plummer <= cube {
		t.Error("plummer not centrally concentrated")
	}
	if sphere != 0 {
		t.Error("sphere surface has bodies near the center")
	}
}

func TestFMMAccuracyAcrossDistributions(t *testing.T) {
	for _, d := range []Dist{Sphere, Plummer} {
		bodies := GenBodiesDist(1200, 7, d)
		cells := BuildTree(bodies, 32)
		EvaluateHost(cells, bodies, 0.3)
		ref := DirectHost(bodies)
		perr := PotentialError(bodies, ref)
		t.Logf("%v: potential err %.2e", d, perr)
		if perr > 5e-3 {
			t.Errorf("%v: potential error %.2e too large", d, perr)
		}
	}
}
