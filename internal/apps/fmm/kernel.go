// Package fmm is an ExaFMM-style Fast Multipole Method for the 3-D Laplace
// kernel (§6.4): an adaptive octree over particles in a cube, a Cartesian
// multipole/local expansion (order 2: monopole + dipole + quadrupole), and
// the dual tree traversal with a multipole acceptance criterion θ. The
// fork-join parallelization mirrors the task-parallel ExaFMM port the
// paper evaluates: the upward pass, traversal and downward pass are nested
// fork-join computations over global memory.
//
// The expansion basis differs from ExaFMM's spherical harmonics (order
// P=4); the Cartesian order-2 basis has the same communication and task
// structure with simpler translation operators, and its accuracy against
// direct summation is verified in the tests.
package fmm

import (
	"math"
	"math/rand"
	"sort"
)

// Body is one particle. Position/charge are inputs; potential and
// acceleration are outputs. 64 bytes, pointer-free (global-memory safe).
type Body struct {
	X, Y, Z, Q float64
	P          float64 // potential Σ q_j / |r_ij|
	AX, AY, AZ float64 // acceleration −∇Φ
}

// Expansion holds order-2 Cartesian moments: [0] monopole, [1..3] dipole,
// [4..9] symmetric quadrupole (xx, yy, zz, xy, xz, yz).
type Expansion [10]float64

// Cell is one octree cell in global memory. Children are contiguous in the
// cells array starting at Child. Bodies of a leaf are contiguous in the
// (reordered) bodies array.
type Cell struct {
	CX, CY, CZ float64 // center
	R          float64 // half-width

	Child  int32 // index of first child; -1 for leaves
	NChild int32
	Body   int32 // first body index (leaves; internal cells cover ranges too)
	NBody  int32

	M Expansion // multipole moments about the center
	L Expansion // local expansion about the center
}

// quadIdx maps (i,j) to the packed symmetric index in Expansion[4..9].
var quadIdx = [3][3]int{
	{4, 7, 8},
	{7, 5, 9},
	{8, 9, 6},
}

// P2M accumulates the moments of bodies about center (cx,cy,cz) into m.
func P2M(bodies []Body, cx, cy, cz float64, m *Expansion) {
	for i := range bodies {
		b := &bodies[i]
		ax, ay, az := b.X-cx, b.Y-cy, b.Z-cz
		m[0] += b.Q
		m[1] += b.Q * ax
		m[2] += b.Q * ay
		m[3] += b.Q * az
		m[4] += b.Q * ax * ax
		m[5] += b.Q * ay * ay
		m[6] += b.Q * az * az
		m[7] += b.Q * ax * ay
		m[8] += b.Q * ax * az
		m[9] += b.Q * ay * az
	}
}

// M2M translates a child multipole about (fx,fy,fz) to a parent expansion
// about (tx,ty,tz), accumulating into to.
func M2M(from *Expansion, fx, fy, fz, tx, ty, tz float64, to *Expansion) {
	ox, oy, oz := fx-tx, fy-ty, fz-tz // child positions shift by this offset
	q := from[0]
	dx, dy, dz := from[1], from[2], from[3]
	to[0] += q
	to[1] += dx + q*ox
	to[2] += dy + q*oy
	to[3] += dz + q*oz
	to[4] += from[4] + 2*ox*dx + q*ox*ox
	to[5] += from[5] + 2*oy*dy + q*oy*oy
	to[6] += from[6] + 2*oz*dz + q*oz*oz
	to[7] += from[7] + ox*dy + oy*dx + q*ox*oy
	to[8] += from[8] + ox*dz + oz*dx + q*ox*oz
	to[9] += from[9] + oy*dz + oz*dy + q*oy*oz
}

// derivs computes the derivative tensors of 1/|R| up to order 4 at R.
type derivs struct {
	g0 float64
	g1 [3]float64
	g2 [3][3]float64
	g3 [3][3][3]float64
	g4 [3][3][3][3]float64
}

func kdelta(i, j int) float64 {
	if i == j {
		return 1
	}
	return 0
}

func computeDerivs(rx, ry, rz float64) derivs {
	r := [3]float64{rx, ry, rz}
	r2 := rx*rx + ry*ry + rz*rz
	rn := math.Sqrt(r2)
	inv := 1 / rn
	inv2 := inv * inv
	inv3 := inv * inv2
	inv5 := inv3 * inv2
	inv7 := inv5 * inv2
	inv9 := inv7 * inv2
	var d derivs
	d.g0 = inv
	for i := 0; i < 3; i++ {
		d.g1[i] = -r[i] * inv3
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d.g2[i][j] = 3*r[i]*r[j]*inv5 - kdelta(i, j)*inv3
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				d.g3[i][j][k] = -15*r[i]*r[j]*r[k]*inv7 +
					3*(kdelta(i, j)*r[k]+kdelta(i, k)*r[j]+kdelta(j, k)*r[i])*inv5
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				for l := 0; l < 3; l++ {
					d.g4[i][j][k][l] = 105*r[i]*r[j]*r[k]*r[l]*inv9 -
						15*(kdelta(i, j)*r[k]*r[l]+kdelta(i, k)*r[j]*r[l]+
							kdelta(i, l)*r[j]*r[k]+kdelta(j, k)*r[i]*r[l]+
							kdelta(j, l)*r[i]*r[k]+kdelta(k, l)*r[i]*r[j])*inv7 +
						3*(kdelta(i, j)*kdelta(k, l)+kdelta(i, k)*kdelta(j, l)+
							kdelta(i, l)*kdelta(j, k))*inv5
				}
			}
		}
	}
	return d
}

// expQuad returns the full symmetric quadrupole tensor element (i,j) of m.
func expQuad(m *Expansion, i, j int) float64 { return m[quadIdx[i][j]] }

// M2L converts a multipole about (mx,my,mz) into a local expansion about
// (lx,ly,lz), accumulating into l. The multipole field is
// Φ(x) = q·G0(s) − d_i·G1_i(s) + ½·Q_ij·G2_ij(s) with s = x − zM, and the
// local coefficients are its derivatives at zL.
func M2L(m *Expansion, mx, my, mz, lx, ly, lz float64, l *Expansion) {
	d := computeDerivs(lx-mx, ly-my, lz-mz)
	q := m[0]
	dip := [3]float64{m[1], m[2], m[3]}

	// L0 (potential value at the local center).
	v := q * d.g0
	for i := 0; i < 3; i++ {
		v -= dip[i] * d.g1[i]
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v += 0.5 * expQuad(m, i, j) * d.g2[i][j]
		}
	}
	l[0] += v

	// L1 (gradient).
	for i := 0; i < 3; i++ {
		g := q * d.g1[i]
		for j := 0; j < 3; j++ {
			g -= dip[j] * d.g2[i][j]
		}
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				g += 0.5 * expQuad(m, j, k) * d.g3[i][j][k]
			}
		}
		l[1+i] += g
	}

	// L2 (Hessian), packed symmetric.
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			h := q * d.g2[i][j]
			for k := 0; k < 3; k++ {
				h -= dip[k] * d.g3[i][j][k]
			}
			for k := 0; k < 3; k++ {
				for n := 0; n < 3; n++ {
					h += 0.5 * expQuad(m, k, n) * d.g4[i][j][k][n]
				}
			}
			l[quadIdx[i][j]] += h
		}
	}
}

// L2L translates a parent local expansion about (fx,fy,fz) to a child
// expansion about (tx,ty,tz), accumulating into to. With t = child − parent
// and Φ(b') = L0 + L_i(b'+t)_i + ½L_ij(b'+t)_i(b'+t)_j.
func L2L(from *Expansion, fx, fy, fz, tx, ty, tz float64, to *Expansion) {
	t := [3]float64{tx - fx, ty - fy, tz - fz}
	grad := [3]float64{from[1], from[2], from[3]}
	v := from[0]
	for i := 0; i < 3; i++ {
		v += grad[i] * t[i]
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v += 0.5 * expQuad(from, i, j) * t[i] * t[j]
		}
	}
	to[0] += v
	for i := 0; i < 3; i++ {
		g := grad[i]
		for j := 0; j < 3; j++ {
			g += expQuad(from, i, j) * t[j]
		}
		to[1+i] += g
	}
	for i := 4; i < 10; i++ {
		to[i] += from[i]
	}
}

// L2P evaluates the local expansion about (cx,cy,cz) at each body,
// accumulating potential and acceleration.
func L2P(l *Expansion, cx, cy, cz float64, bodies []Body) {
	for bi := range bodies {
		b := &bodies[bi]
		t := [3]float64{b.X - cx, b.Y - cy, b.Z - cz}
		grad := [3]float64{l[1], l[2], l[3]}
		v := l[0]
		var g [3]float64
		for i := 0; i < 3; i++ {
			v += grad[i] * t[i]
			g[i] = grad[i]
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				v += 0.5 * expQuad(l, i, j) * t[i] * t[j]
				g[i] += expQuad(l, i, j) * t[j]
			}
		}
		// Acceleration is −∇Φ.
		b.P += v
		b.AX -= g[0]
		b.AY -= g[1]
		b.AZ -= g[2]
	}
}

// P2P computes direct pairwise interactions of sources on targets. If
// selfInteraction is true the arrays alias the same bodies (i==j skipped by
// identity of coordinates is unreliable; the caller passes self=true for
// the diagonal case and we skip exact-same-index pairs).
func P2P(targets []Body, sources []Body, self bool) {
	for i := range targets {
		t := &targets[i]
		var p, ax, ay, az float64
		for j := range sources {
			if self && i == j {
				continue
			}
			s := &sources[j]
			dx, dy, dz := t.X-s.X, t.Y-s.Y, t.Z-s.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			// Potential q/r; acceleration −∇Φ = +q·(t−s)/r³.
			p += s.Q * inv
			ax += s.Q * dx * inv3
			ay += s.Q * dy * inv3
			az += s.Q * dz * inv3
		}
		t.P += p
		t.AX += ax
		t.AY += ay
		t.AZ += az
	}
}

// DirectHost computes the exact interactions on the host (O(N²)), for
// accuracy verification.
func DirectHost(bodies []Body) []Body {
	out := make([]Body, len(bodies))
	copy(out, bodies)
	for i := range out {
		out[i].P, out[i].AX, out[i].AY, out[i].AZ = 0, 0, 0, 0
	}
	P2P(out, out, true)
	return out
}

// Dist selects the particle distribution.
type Dist int

const (
	// Cube places particles uniformly in the unit cube (the paper's
	// evaluation setting: "particles distributed in a cube").
	Cube Dist = iota
	// Sphere places particles on a spherical shell — a surface
	// distribution with strongly nonuniform octree occupancy.
	Sphere
	// Plummer samples the Plummer model, the classic clustered
	// astrophysical distribution (most of the mass near the core).
	Plummer
)

func (d Dist) String() string {
	switch d {
	case Cube:
		return "cube"
	case Sphere:
		return "sphere"
	case Plummer:
		return "plummer"
	}
	return "dist?"
}

// GenBodies places n particles uniformly in the unit cube,
// deterministically from seed (the paper's distribution).
func GenBodies(n int, seed int64) []Body {
	return GenBodiesDist(n, seed, Cube)
}

// GenBodiesDist places n particles according to the given distribution,
// normalized into the unit cube.
func GenBodiesDist(n int, seed int64, d Dist) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	for i := range bodies {
		var x, y, z float64
		switch d {
		case Cube:
			x, y, z = rng.Float64(), rng.Float64(), rng.Float64()
		case Sphere:
			// Uniform on the unit sphere surface, scaled into [0,1]³.
			u := 2*rng.Float64() - 1
			phi := 2 * math.Pi * rng.Float64()
			s := math.Sqrt(1 - u*u)
			x = (s*math.Cos(phi) + 1) / 2
			y = (s*math.Sin(phi) + 1) / 2
			z = (u + 1) / 2
		case Plummer:
			// Aarseth/Henon/Wielen sampling, clipped to a finite radius
			// and scaled into [0,1]³.
			var r float64
			for {
				m := rng.Float64()
				r = 1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
				if r < 4 {
					break
				}
			}
			u := 2*rng.Float64() - 1
			phi := 2 * math.Pi * rng.Float64()
			s := math.Sqrt(1 - u*u)
			x = (r*s*math.Cos(phi)/4 + 1) / 2
			y = (r*s*math.Sin(phi)/4 + 1) / 2
			z = (r*u/4 + 1) / 2
		}
		bodies[i] = Body{X: x, Y: y, Z: z, Q: rng.Float64() / float64(n)}
	}
	return bodies
}

// BuildTree constructs an adaptive octree over bodies (reordering them so
// every cell's bodies are contiguous) with at most ncrit bodies per leaf
// (the paper's N_crit). Children of a cell are contiguous in the returned
// cell array. The build runs on the host; the simulation charges its cost
// separately.
func BuildTree(bodies []Body, ncrit int) []Cell {
	if ncrit < 1 {
		ncrit = 1
	}
	// Bounding cube.
	min := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	max := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := range bodies {
		p := [3]float64{bodies[i].X, bodies[i].Y, bodies[i].Z}
		for d := 0; d < 3; d++ {
			min[d] = math.Min(min[d], p[d])
			max[d] = math.Max(max[d], p[d])
		}
	}
	r := 0.0
	var c [3]float64
	for d := 0; d < 3; d++ {
		c[d] = (min[d] + max[d]) / 2
		r = math.Max(r, (max[d]-min[d])/2)
	}
	r *= 1.00001 // keep boundary bodies inside

	cells := []Cell{{
		CX: c[0], CY: c[1], CZ: c[2], R: r,
		Child: -1, Body: 0, NBody: int32(len(bodies)),
	}}
	// Iterative subdivision, BFS so children end up contiguous.
	for ci := 0; ci < len(cells); ci++ {
		cell := cells[ci]
		if int(cell.NBody) <= ncrit {
			continue
		}
		lo, n := int(cell.Body), int(cell.NBody)
		seg := bodies[lo : lo+n]
		// Octant of each body.
		oct := func(b *Body) int {
			o := 0
			if b.X >= cell.CX {
				o |= 1
			}
			if b.Y >= cell.CY {
				o |= 2
			}
			if b.Z >= cell.CZ {
				o |= 4
			}
			return o
		}
		// Stable partition into octants.
		sort.SliceStable(seg, func(i, j int) bool { return oct(&seg[i]) < oct(&seg[j]) })
		var counts [8]int
		for i := range seg {
			counts[oct(&seg[i])]++
		}
		first := int32(len(cells))
		nchild := int32(0)
		off := lo
		for o := 0; o < 8; o++ {
			if counts[o] == 0 {
				continue
			}
			half := cell.R / 2
			cx := cell.CX - half
			if o&1 != 0 {
				cx = cell.CX + half
			}
			cy := cell.CY - half
			if o&2 != 0 {
				cy = cell.CY + half
			}
			cz := cell.CZ - half
			if o&4 != 0 {
				cz = cell.CZ + half
			}
			cells = append(cells, Cell{
				CX: cx, CY: cy, CZ: cz, R: half,
				Child: -1, Body: int32(off), NBody: int32(counts[o]),
			})
			off += counts[o]
			nchild++
		}
		cells[ci].Child = first
		cells[ci].NChild = nchild
	}
	return cells
}
