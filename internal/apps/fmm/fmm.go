package fmm

import (
	"unsafe"

	"ityr"
	"ityr/internal/sim"
)

// Params configures an FMM run (defaults follow §6.4 of the paper).
type Params struct {
	N      int     // number of bodies
	Theta  float64 // multipole acceptance parameter θ (0.2 in the paper)
	NCrit  int     // max bodies per leaf (32 in the paper)
	NSpawn int     // spawn parallel tasks only above this body count (1000)
	Seed   int64
	Dist   Dist // particle distribution (Cube in the paper)
}

// WithDefaults fills zero fields with the paper's parameters.
func (p Params) WithDefaults() Params {
	if p.Theta == 0 {
		p.Theta = 0.2
	}
	if p.NCrit == 0 {
		p.NCrit = 32
	}
	if p.NSpawn == 0 {
		p.NSpawn = 1000
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// Kernel cost model (virtual time). The constants are calibrated to the
// paper's configuration — ExaFMM's spherical-harmonics Laplace kernels at
// expansion order P=4 on a scalar A64FX core — rather than to this
// package's (cheaper) Cartesian order-2 kernels, so that the
// compute-to-communication ratio matches the evaluated system.
const (
	costP2PPair  = 23 * sim.Nanosecond
	costM2L      = 1100 * sim.Nanosecond // O(P⁴) translation
	costM2M      = 400 * sim.Nanosecond
	costL2L      = 400 * sim.Nanosecond
	costP2MBody  = 120 * sim.Nanosecond
	costL2PBody  = 180 * sim.Nanosecond
	costTraverse = 14 * sim.Nanosecond // MAC + recursion step
)

// Profiler categories.
const (
	CatP2P    = "Serial P2P"
	CatKernel = "Serial Kernels"
)

// Layout constants for partial checkouts of Cell fields.
var (
	offM    = uint64(unsafe.Offsetof(Cell{}.M))
	offL    = uint64(unsafe.Offsetof(Cell{}.L))
	expSize = uint64(unsafe.Sizeof(Expansion{}))
	hdrSize = uint64(unsafe.Offsetof(Cell{}.M)) // header = everything before M
)

// cellHdr mirrors the leading fields of Cell for header-only checkouts.
type cellHdr struct {
	CX, CY, CZ float64
	R          float64
	Child      int32
	NChild     int32
	Body       int32
	NBody      int32
}

// Problem is an FMM instance uploaded into global memory.
type Problem struct {
	Params Params
	Cells  ityr.GSpan[Cell]
	Bodies ityr.GSpan[Body]
	NCells int
}

// Setup generates bodies, builds the octree on the host, and uploads both
// into block-cyclic global arrays. Call from rank 0's SPMD context before
// the fork-join region; other ranks must reach a barrier. The host tree
// build stands in for ExaFMM's tree construction phase, whose cost is
// charged to rank 0 (N log N model).
func Setup(s *ityr.SPMD, p Params) Problem {
	p = p.WithDefaults()
	bodies := GenBodiesDist(p.N, p.Seed, p.Dist)
	cells := BuildTree(bodies, p.NCrit)

	gb := ityr.AllocArraySPMD[Body](s, int64(len(bodies)), ityr.BlockCyclicDist)
	gc := ityr.AllocArraySPMD[Cell](s, int64(len(cells)), ityr.BlockCyclicDist)
	if err := ityr.PutSlice(s, bodies, gb); err != nil {
		panic(err)
	}
	if err := ityr.PutSlice(s, cells, gc); err != nil {
		panic(err)
	}
	return Problem{Params: p, Cells: gc, Bodies: gb, NCells: len(cells)}
}

func (pr *Problem) cellAddr(i int32) ityr.Addr {
	return pr.Cells.Ptr.Add(int64(i)).Addr()
}

// readHdr loads a cell header (cached read of 48 bytes).
func (pr *Problem) readHdr(c *ityr.Ctx, i int32) cellHdr {
	addr := pr.cellAddr(i)
	v := c.MustCheckout(addr, hdrSize, ityr.Read)
	h := *(*cellHdr)(unsafe.Pointer(&v[0]))
	c.Checkin(addr, hdrSize, ityr.Read)
	return h
}

// readM loads a cell's multipole expansion.
func (pr *Problem) readM(c *ityr.Ctx, i int32) Expansion {
	addr := pr.cellAddr(i) + ityr.Addr(offM)
	v := c.MustCheckout(addr, expSize, ityr.Read)
	m := *(*Expansion)(unsafe.Pointer(&v[0]))
	c.Checkin(addr, expSize, ityr.Read)
	return m
}

// writeM stores a cell's multipole expansion (write-only).
func (pr *Problem) writeM(c *ityr.Ctx, i int32, m *Expansion) {
	addr := pr.cellAddr(i) + ityr.Addr(offM)
	v := c.MustCheckout(addr, expSize, ityr.Write)
	*(*Expansion)(unsafe.Pointer(&v[0])) = *m
	c.Checkin(addr, expSize, ityr.Write)
}

// addL accumulates into a cell's local expansion (read-modify-write).
func (pr *Problem) addL(c *ityr.Ctx, i int32, delta *Expansion) {
	addr := pr.cellAddr(i) + ityr.Addr(offL)
	v := c.MustCheckout(addr, expSize, ityr.ReadWrite)
	l := (*Expansion)(unsafe.Pointer(&v[0]))
	for k := range l {
		l[k] += delta[k]
	}
	c.Checkin(addr, expSize, ityr.ReadWrite)
}

// readL loads a cell's local expansion.
func (pr *Problem) readL(c *ityr.Ctx, i int32) Expansion {
	addr := pr.cellAddr(i) + ityr.Addr(offL)
	v := c.MustCheckout(addr, expSize, ityr.Read)
	l := *(*Expansion)(unsafe.Pointer(&v[0]))
	c.Checkin(addr, expSize, ityr.Read)
	return l
}

// Evaluate runs the FMM in the fork-join region: upward pass, dual tree
// traversal, downward pass — each a nested fork-join computation over
// global memory, parallel down to NSpawn bodies per task.
func (pr *Problem) Evaluate(c *ityr.Ctx) {
	pr.upward(c, 0)
	pr.dtt(c, 0, 0)
	pr.downward(c, 0)
}

func (pr *Problem) upward(c *ityr.Ctx, ci int32) {
	h := pr.readHdr(c, ci)
	var m Expansion
	if h.Child < 0 {
		// SDC-protected P2M leaf: reads bodies, overwrites this cell's M.
		// Replay-stable — a re-execution from the committed state recomputes
		// the same expansion from the same read-only inputs. (The downward
		// pass's accumulate tasks, addL and L2P, are += read-modify-write
		// and would NOT commit identical bytes on re-execution, so they stay
		// outside the protection domain.)
		c.Protected(func() uint64 {
			m = Expansion{} // P2M accumulates; reset for re-execution
			bspan := pr.Bodies.Slice(int64(h.Body), int64(h.Body+h.NBody))
			v := ityr.Checkout(c, bspan, ityr.Read)
			P2M(v, h.CX, h.CY, h.CZ, &m)
			c.ChargeAs(CatKernel, sim.Time(h.NBody)*costP2MBody)
			ityr.Checkin(c, bspan, ityr.Read)
			pr.writeM(c, ci, &m)
			return 0
		})
		return
	}
	// Children first (parallel above the spawn threshold).
	pr.forChildren(c, &h, func(c *ityr.Ctx, child int32) {
		pr.upward(c, child)
	})
	// SDC-protected M2M fold: reads the children's committed expansions,
	// overwrites this cell's M — replay-stable like the P2M leaf.
	c.Protected(func() uint64 {
		m = Expansion{} // M2M accumulates; reset for re-execution
		for k := int32(0); k < h.NChild; k++ {
			child := h.Child + k
			ch := pr.readHdr(c, child)
			cm := pr.readM(c, child)
			M2M(&cm, ch.CX, ch.CY, ch.CZ, h.CX, h.CY, h.CZ, &m)
			c.ChargeAs(CatKernel, costM2M)
		}
		pr.writeM(c, ci, &m)
		return 0
	})
}

// forChildren runs fn over the children of h, in parallel when the cell is
// big enough (NSpawn, as in the task-parallel ExaFMM).
func (pr *Problem) forChildren(c *ityr.Ctx, h *cellHdr, fn func(c *ityr.Ctx, child int32)) {
	if int(h.NBody) > pr.Params.NSpawn && h.NChild > 1 {
		fns := make([]func(*ityr.Ctx), h.NChild)
		for k := int32(0); k < h.NChild; k++ {
			child := h.Child + k
			fns[k] = func(c *ityr.Ctx) { fn(c, child) }
		}
		c.ParallelInvoke(fns...)
		return
	}
	for k := int32(0); k < h.NChild; k++ {
		fn(c, h.Child+k)
	}
}

// dtt is the dual tree traversal: a is the target cell (this task owns its
// local expansion and bodies), b the source cell. Target-side splits may
// spawn tasks; source-side splits stay serial, so every cell's L and every
// leaf's bodies have a single writer between joins (data-race-freedom).
func (pr *Problem) dtt(c *ityr.Ctx, a, b int32) {
	ha := pr.readHdr(c, a)
	pr.dttH(c, a, &ha, b)
}

func (pr *Problem) dttH(c *ityr.Ctx, a int32, ha *cellHdr, b int32) {
	hb := pr.readHdr(c, b)
	c.Charge(costTraverse)
	ca := Cell{CX: ha.CX, CY: ha.CY, CZ: ha.CZ, R: ha.R}
	cb := Cell{CX: hb.CX, CY: hb.CY, CZ: hb.CZ, R: hb.R}
	if MAC(&ca, &cb, pr.Params.Theta) {
		m := pr.readM(c, b)
		var delta Expansion
		M2L(&m, hb.CX, hb.CY, hb.CZ, ha.CX, ha.CY, ha.CZ, &delta)
		c.ChargeAs(CatKernel, costM2L)
		pr.addL(c, a, &delta)
		return
	}
	if ha.Child < 0 && hb.Child < 0 {
		pr.p2pLeaves(c, ha, &hb, a == b)
		return
	}
	if hb.Child < 0 || (ha.Child >= 0 && ha.R >= hb.R) {
		// Split the target: each child task owns its own subtree.
		pr.forChildren(c, ha, func(c *ityr.Ctx, child int32) {
			pr.dtt(c, child, b)
		})
		return
	}
	// Split the source serially.
	for k := int32(0); k < hb.NChild; k++ {
		pr.dttH(c, a, ha, hb.Child+k)
	}
}

func (pr *Problem) p2pLeaves(c *ityr.Ctx, ha, hb *cellHdr, self bool) {
	tspan := pr.Bodies.Slice(int64(ha.Body), int64(ha.Body+ha.NBody))
	tv := ityr.Checkout(c, tspan, ityr.ReadWrite)
	if self {
		P2P(tv, tv, true)
	} else {
		sspan := pr.Bodies.Slice(int64(hb.Body), int64(hb.Body+hb.NBody))
		sv := ityr.Checkout(c, sspan, ityr.Read)
		P2P(tv, sv, false)
		ityr.Checkin(c, sspan, ityr.Read)
	}
	c.ChargeAs(CatP2P, sim.Time(ha.NBody)*sim.Time(hb.NBody)*costP2PPair)
	ityr.Checkin(c, tspan, ityr.ReadWrite)
}

func (pr *Problem) downward(c *ityr.Ctx, ci int32) {
	h := pr.readHdr(c, ci)
	if h.Child < 0 {
		l := pr.readL(c, ci)
		bspan := pr.Bodies.Slice(int64(h.Body), int64(h.Body+h.NBody))
		v := ityr.Checkout(c, bspan, ityr.ReadWrite)
		L2P(&l, h.CX, h.CY, h.CZ, v)
		c.ChargeAs(CatKernel, sim.Time(h.NBody)*costL2PBody)
		ityr.Checkin(c, bspan, ityr.ReadWrite)
		return
	}
	// Push this cell's L down to the children, then descend in parallel.
	l := pr.readL(c, ci)
	for k := int32(0); k < h.NChild; k++ {
		child := h.Child + k
		ch := pr.readHdr(c, child)
		var delta Expansion
		L2L(&l, h.CX, h.CY, h.CZ, ch.CX, ch.CY, ch.CZ, &delta)
		c.ChargeAs(CatKernel, costL2L)
		pr.addL(c, child, &delta)
	}
	pr.forChildren(c, &h, func(c *ityr.Ctx, child int32) {
		pr.downward(c, child)
	})
}

// Counters tallies kernel invocations for cost models and baselines.
type Counters struct {
	P2PPairs int64
	M2L      int64
	M2M      int64
	L2L      int64
	P2MBody  int64
	L2PBody  int64
	Steps    int64
}

// SerialTime converts kernel counts into the modelled serial execution
// time (the elided-runtime baseline of Fig. 11's speedup lines).
func (k Counters) SerialTime() sim.Time {
	return sim.Time(k.P2PPairs)*costP2PPair +
		sim.Time(k.M2L)*costM2L +
		sim.Time(k.M2M)*costM2M +
		sim.Time(k.L2L)*costL2L +
		sim.Time(k.P2MBody)*costP2MBody +
		sim.Time(k.L2PBody)*costL2PBody +
		sim.Time(k.Steps)*costTraverse
}

// CountKernels performs the traversal on the host, tallying kernel calls.
func CountKernels(cells []Cell, theta float64) Counters {
	var k Counters
	countUp(cells, 0, &k)
	countDTT(cells, 0, 0, theta, &k)
	countDown(cells, 0, &k)
	return k
}

func countUp(cells []Cell, ci int, k *Counters) {
	c := &cells[ci]
	if c.Child < 0 {
		k.P2MBody += int64(c.NBody)
		return
	}
	for i := int32(0); i < c.NChild; i++ {
		countUp(cells, int(c.Child+i), k)
		k.M2M++
	}
}

func countDTT(cells []Cell, a, b int, theta float64, k *Counters) {
	ca, cb := &cells[a], &cells[b]
	k.Steps++
	if MAC(ca, cb, theta) {
		k.M2L++
		return
	}
	if ca.Child < 0 && cb.Child < 0 {
		k.P2PPairs += int64(ca.NBody) * int64(cb.NBody)
		return
	}
	if cb.Child < 0 || (ca.Child >= 0 && ca.R >= cb.R) {
		for i := int32(0); i < ca.NChild; i++ {
			countDTT(cells, int(ca.Child+i), b, theta, k)
		}
	} else {
		for i := int32(0); i < cb.NChild; i++ {
			countDTT(cells, a, int(cb.Child+i), theta, k)
		}
	}
}

func countDown(cells []Cell, ci int, k *Counters) {
	c := &cells[ci]
	if c.Child < 0 {
		k.L2PBody += int64(c.NBody)
		return
	}
	for i := int32(0); i < c.NChild; i++ {
		k.L2L++
		countDown(cells, int(c.Child+i), k)
	}
}
