package uts

import (
	"fmt"
	"testing"

	"ityr"
)

func cfg(ranks int, pol ityr.Policy) ityr.Config {
	return ityr.Config{
		Ranks:        ranks,
		CoresPerNode: 4,
		Pgas:         ityr.PgasConfig{BlockSize: 8 << 10, SubBlockSize: 1 << 10, CacheSize: 4 << 20, Policy: pol},
		Seed:         17,
	}
}

// tiny is a small test tree (deterministic size, see TestPresetSizes).
var tiny = Tree{Name: "tiny", Seed: 5, RootKids: 50, MeanKids: 0.9, MaxDepth: 100}

func TestHostCountDeterministic(t *testing.T) {
	a, b := CountHost(tiny), CountHost(tiny)
	if a != b {
		t.Fatalf("host count nondeterministic: %d vs %d", a, b)
	}
	if a < 51 {
		t.Fatalf("tree suspiciously small: %d nodes", a)
	}
	other := tiny
	other.Seed = 6
	if CountHost(other) == a {
		t.Fatal("different seeds produced identical tree sizes")
	}
}

func TestBuildMatchesHostCount(t *testing.T) {
	want := CountHost(tiny)
	for _, ranks := range []int{1, 4} {
		ranks := ranks
		t.Run(fmt.Sprintf("%dr", ranks), func(t *testing.T) {
			var built int64
			_, err := ityr.LaunchRoot(cfg(ranks, ityr.WriteBackLazy), func(c *ityr.Ctx) {
				_, n := Build(c, tiny)
				built = n
			})
			if err != nil {
				t.Fatal(err)
			}
			if built != want {
				t.Fatalf("built %d nodes, host says %d", built, want)
			}
		})
	}
}

func TestTraverseCountsAllPolicies(t *testing.T) {
	want := CountHost(tiny)
	for _, pol := range ityr.Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			var got int64
			_, err := ityr.LaunchRoot(cfg(4, pol), func(c *ityr.Ctx) {
				root, _ := Build(c, tiny)
				got = Traverse(c, root)
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("traversed %d nodes, want %d", got, want)
			}
		})
	}
}

func TestPresetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("preset size check is slow")
	}
	if n := CountHost(T1LPrime); n != 87716 {
		t.Errorf("T1L' = %d nodes, want 87716", n)
	}
	if n := CountHost(T1XLPrime); n != 867292 {
		t.Errorf("T1XL' = %d nodes, want 867292", n)
	}
}

func TestDepthCutoffProducesLeaves(t *testing.T) {
	shallow := Tree{Name: "shallow", Seed: 3, RootKids: 10, MeanKids: 5, MaxDepth: 2}
	// Supercritical branching, but depth 2 bounds the size: at most
	// 1 + 10 + 10*max children.
	n := CountHost(shallow)
	if n < 11 {
		t.Fatalf("tree too small: %d", n)
	}
	var traversed int64
	_, err := ityr.LaunchRoot(cfg(2, ityr.WriteBack), func(c *ityr.Ctx) {
		root, _ := Build(c, shallow)
		traversed = Traverse(c, root)
	})
	if err != nil {
		t.Fatal(err)
	}
	if traversed != n {
		t.Fatalf("traverse %d != host %d", traversed, n)
	}
}

func TestClassicUTSMatchesMemVersion(t *testing.T) {
	// The original UTS (no memory) and UTS-Mem must agree with the host
	// count, and classic UTS must issue no global-memory fetches.
	want := CountHost(tiny)
	var classic, mem int64
	rt := ityr.NewRuntime(cfg(4, ityr.WriteBackLazy))
	err := rt.Run(func(s *ityr.SPMD) {
		s.RootExec(func(c *ityr.Ctx) {
			classic = CountParallel(c, tiny)
		})
		s.RootExec(func(c *ityr.Ctx) {
			root, _ := Build(c, tiny)
			mem = Traverse(c, root)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if classic != want || mem != want {
		t.Fatalf("classic=%d mem=%d want=%d", classic, mem, want)
	}
}

func TestClassicUTSNoMemoryTraffic(t *testing.T) {
	rt := ityr.NewRuntime(cfg(4, ityr.WriteBackLazy))
	err := rt.Run(func(s *ityr.SPMD) {
		s.RootExec(func(c *ityr.Ctx) {
			CountParallel(c, tiny)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Space().Stats.CheckoutCalls; got != 0 {
		t.Fatalf("classic UTS made %d checkouts, want 0", got)
	}
}

func TestCachingHelpsTraversal(t *testing.T) {
	// Fig. 10's claim in miniature: pointer chasing over remote memory is
	// much faster with the cache (spatial locality within memory blocks).
	mid := Tree{Name: "mid", Seed: 9, RootKids: 200, MeanKids: 0.95, MaxDepth: 200}
	run := func(pol ityr.Policy) (traversalTime int64) {
		var elapsed int64
		err := ityr.Launch(cfg(8, pol), func(s *ityr.SPMD) {
			var root ityr.GPtr[Node]
			s.RootExec(func(c *ityr.Ctx) {
				root, _ = Build(c, mid)
			})
			t0 := s.Now()
			s.RootExec(func(c *ityr.Ctx) {
				Traverse(c, root)
			})
			if s.Rank() == 0 {
				elapsed = s.Now() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	noCache := run(ityr.NoCache)
	cached := run(ityr.WriteBackLazy)
	if cached >= noCache {
		t.Errorf("cached traversal (%d) not faster than no-cache (%d)", cached, noCache)
	} else {
		t.Logf("traversal: no-cache %.2f ms vs cached %.2f ms (%.1fx)",
			float64(noCache)/1e6, float64(cached)/1e6, float64(noCache)/float64(cached))
	}
}
