// Package uts implements UTS-Mem (§6.3): the unbalanced tree search
// benchmark extended to build the tree in global memory and then traverse
// it by chasing global pointers — a dynamic, irregular, fine-grained memory
// access workload.
//
// As in the original UTS, the tree shape is derived deterministically from
// SHA-1 hashes of node descriptors, with a geometric child-count
// distribution and a depth cutoff. Tree nodes are allocated from the
// noncollective global heap by whichever rank executes the construction
// task, so nearby tree nodes tend to live in nearby memory (the spatial
// locality that caching exploits in Fig. 10).
package uts

import (
	"crypto/sha1"
	"encoding/binary"
	"math"

	"ityr"
	"ityr/internal/sim"
)

// Tree describes a UTS tree workload.
type Tree struct {
	// Name labels the workload (e.g. "T1L'").
	Name string
	// Seed determinizes the tree shape.
	Seed uint64
	// RootKids is the root's (fixed) branching factor, UTS's b0.
	RootKids int
	// MeanKids is the geometric mean child count of interior nodes.
	MeanKids float64
	// MaxDepth cuts the tree off (nodes at MaxDepth are leaves).
	MaxDepth int
}

// Presets scaled down from the paper's T1L (102M nodes) and T1XL (1.6G
// nodes) so they fit this simulator; the relative ×16 size gap between the
// two trees is preserved. Exact sizes are pinned by TestPresetSizes.
var (
	// T1LPrime is the smaller tree (87,716 nodes).
	T1LPrime = Tree{Name: "T1L'", Seed: 19, RootKids: 1000, MeanKids: 0.995, MaxDepth: 2000}
	// T1XLPrime is the larger tree (867,292 nodes).
	T1XLPrime = Tree{Name: "T1XL'", Seed: 19, RootKids: 10000, MeanKids: 0.99, MaxDepth: 1000}
)

// Node is a tree node in global memory. Children pointers live in a
// separate per-node array in the noncollective heap.
type Node struct {
	// Digest is the SHA-1 state determining this subtree's shape.
	Digest [20]byte
	// NChild is the number of children.
	NChild int32
	// Depth is the node's depth from the root.
	Depth int32
	// Kids points to an NChild-element array of global child pointers.
	Kids ityr.GSpan[ityr.GPtr[Node]]
}

// Compute cost model: SHA-1 evaluation and node bookkeeping.
const (
	costHashNode  = 220 * sim.Nanosecond
	costVisitNode = 40 * sim.Nanosecond
)

// childDigest derives child i's digest from the parent digest, as UTS
// derives child random streams.
func childDigest(parent *[20]byte, i int32) [20]byte {
	var buf [24]byte
	copy(buf[:20], parent[:])
	binary.LittleEndian.PutUint32(buf[20:], uint32(i))
	return sha1.Sum(buf[:])
}

// numChildren samples the geometric child-count distribution from a
// digest: P(m >= k) = q^k with q = mean/(1+mean), so E[m] = mean.
func (t Tree) numChildren(d *[20]byte, depth int) int32 {
	if depth >= t.MaxDepth {
		return 0
	}
	if depth == 0 {
		return int32(t.RootKids)
	}
	u := float64(binary.LittleEndian.Uint64(d[:8])>>11) / float64(1<<53)
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	q := t.MeanKids / (1 + t.MeanKids)
	m := int32(math.Log(u) / math.Log(q))
	if m < 0 {
		m = 0
	}
	return m
}

// rootDigest returns the digest of the root node.
func (t Tree) rootDigest() [20]byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], t.Seed)
	return sha1.Sum(buf[:])
}

// Build constructs the tree in global memory in parallel and returns the
// root pointer and the number of nodes created.
func Build(c *ityr.Ctx, t Tree) (ityr.GPtr[Node], int64) {
	root := t.rootDigest()
	p, n := buildNode(c, t, root, 0)
	return p, n
}

func buildNode(c *ityr.Ctx, t Tree, digest [20]byte, depth int) (ityr.GPtr[Node], int64) {
	c.Charge(costHashNode)
	nc := t.numChildren(&digest, depth)
	p := ityr.New[Node](c)
	var node Node
	node.Digest = digest
	node.NChild = nc
	node.Depth = int32(depth)
	total := int64(1)
	if nc > 0 {
		node.Kids = ityr.NewArrayLocal[ityr.GPtr[Node]](c, int64(nc))
		kidPtrs := make([]ityr.GPtr[Node], nc)
		counts := make([]int64, nc)
		// Fork one construction task per child, running the last inline
		// (child-first keeps most of them on this rank unless stolen).
		var rec func(c *ityr.Ctx, lo, hi int32)
		rec = func(c *ityr.Ctx, lo, hi int32) {
			if hi-lo == 1 {
				d := childDigest(&digest, lo)
				kidPtrs[lo], counts[lo] = buildNode(c, t, d, depth+1)
				return
			}
			mid := (lo + hi) / 2
			th := c.Fork(func(c *ityr.Ctx) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Join(th)
		}
		rec(c, 0, nc)
		// Publish the children array.
		v := ityr.Checkout(c, node.Kids, ityr.Write)
		copy(v, kidPtrs)
		ityr.Checkin(c, node.Kids, ityr.Write)
		for _, k := range counts {
			total += k
		}
	}
	ityr.PutVal(c, p, node)
	return p, total
}

// Traverse counts the nodes of a tree already built in global memory by
// chasing global pointers in parallel — the measured phase of Fig. 10.
// All accesses are read-only.
func Traverse(c *ityr.Ctx, p ityr.GPtr[Node]) int64 {
	c.Charge(costVisitNode)
	n := ityr.GetVal(c, p)
	if n.NChild == 0 {
		// SDC-protected leaf: the visit commits no writes, so the
		// replication digest covers only the (pure, replay-stable) return
		// value. A bit flip in the count of any leaf shifts the tree total,
		// so every task-result corruption here is output-visible.
		return int64(c.Protected(func() uint64 { return 1 }))
	}
	kids := ityr.Checkout(c, n.Kids, ityr.Read)
	local := make([]ityr.GPtr[Node], len(kids))
	copy(local, kids)
	ityr.Checkin(c, n.Kids, ityr.Read)
	counts := make([]int64, len(local))
	var rec func(c *ityr.Ctx, lo, hi int)
	rec = func(c *ityr.Ctx, lo, hi int) {
		if hi-lo == 1 {
			counts[lo] = Traverse(c, local[lo])
			return
		}
		mid := (lo + hi) / 2
		th := c.Fork(func(c *ityr.Ctx) { rec(c, lo, mid) })
		rec(c, mid, hi)
		c.Join(th)
	}
	rec(c, 0, len(local))
	total := int64(1)
	for _, k := range counts {
		total += k
	}
	return total
}

// SerialTraversalTime models the runtime-free serial traversal time for a
// tree of n nodes, used for speedup baselines.
func SerialTraversalTime(n int64) sim.Time {
	return sim.Time(n) * (costVisitNode + 60*sim.Nanosecond)
}

// CountParallel is the original UTS benchmark (§6.3): count the tree's
// nodes without materializing it — each node's children are derived on the
// fly from SHA-1 hashes, so the workload has dynamic, irregular
// parallelism but no global memory access at all ("the tree is not in
// memory but is dynamically generated from the root in a deterministic
// way"). It serves as the communication-free contrast to UTS-Mem.
func CountParallel(c *ityr.Ctx, t Tree) int64 {
	return countNode(c, t, t.rootDigest(), 0)
}

func countNode(c *ityr.Ctx, t Tree, digest [20]byte, depth int) int64 {
	c.Charge(costHashNode)
	nc := t.numChildren(&digest, depth)
	total := int64(1)
	if nc == 0 {
		return total
	}
	counts := make([]int64, nc)
	var rec func(c *ityr.Ctx, lo, hi int32)
	rec = func(c *ityr.Ctx, lo, hi int32) {
		if hi-lo == 1 {
			counts[lo] = countNode(c, t, childDigest(&digest, lo), depth+1)
			return
		}
		mid := (lo + hi) / 2
		th := c.Fork(func(c *ityr.Ctx) { rec(c, lo, mid) })
		rec(c, mid, hi)
		c.Join(th)
	}
	rec(c, 0, nc)
	for _, k := range counts {
		total += k
	}
	return total
}

// CountHost computes the tree size on the host without the simulator, for
// cross-checking workload generation.
func CountHost(t Tree) int64 {
	var rec func(d [20]byte, depth int) int64
	rec = func(d [20]byte, depth int) int64 {
		nc := t.numChildren(&d, depth)
		total := int64(1)
		for i := int32(0); i < nc; i++ {
			total += rec(childDigest(&d, i), depth+1)
		}
		return total
	}
	return rec(t.rootDigest(), 0)
}
