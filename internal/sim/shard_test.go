package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// miniBarrier is a test-local barrier over the keyed-wake primitive,
// shaped like the rma layer's: arrival slots, an atomic counter, and a
// release time max(arrivals) + latency with rank-keyed wakes.
type miniBarrier struct {
	n       int
	latency Time
	procs   []*Proc
	slots   []atomic.Int64
	count   atomic.Int32
}

func newMiniBarrier(n int, latency Time) *miniBarrier {
	return &miniBarrier{
		n:       n,
		latency: latency,
		procs:   make([]*Proc, n),
		slots:   make([]atomic.Int64, n),
	}
}

func (b *miniBarrier) wait(p *Proc, rank int) {
	if b.n == 1 {
		return
	}
	b.slots[rank].Store(p.Now())
	if int(b.count.Add(1)) == b.n {
		rel := Time(0)
		for i := range b.slots {
			if t := b.slots[i].Load(); t > rel {
				rel = t
			}
		}
		rel += b.latency
		b.count.Store(0)
		for r, q := range b.procs {
			p.ScheduleWake(q, rel, uint64(r))
		}
	}
	p.Park()
}

// runLockstep runs nproc processes for steps rounds of deterministic but
// rank-skewed compute separated by barriers, and returns each process's
// observed time after every barrier.
func runLockstep(t *testing.T, eng *Engine, nproc, steps int, latency Time) [][]Time {
	t.Helper()
	times := make([][]Time, nproc)
	bar := newMiniBarrier(nproc, latency)
	shards := eng.Shards()
	for i := 0; i < nproc; i++ {
		rank := i
		p := eng.SpawnOn(rank*shards/nproc, fmt.Sprintf("p%d", rank), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Advance(Time(100 * (rank + 1) * (s + 1)))
				bar.wait(p, rank)
				times[rank] = append(times[rank], p.Now())
			}
		})
		bar.procs[rank] = p
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return times
}

// TestShardedMatchesSerial checks that the sharded engine produces exactly
// the serial engine's virtual timeline for a barrier-synchronized
// workload, for several shard counts.
func TestShardedMatchesSerial(t *testing.T) {
	const nproc, steps = 8, 5
	const latency = Time(1200)
	want := runLockstep(t, NewEngine(), nproc, steps, latency)
	for _, shards := range []int{2, 4, 8} {
		eng := NewEngineShards(shards, latency)
		if eng.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", eng.Shards(), shards)
		}
		got := runLockstep(t, eng, nproc, steps, latency)
		for r := range want {
			for s := range want[r] {
				if got[r][s] != want[r][s] {
					t.Fatalf("shards=%d rank %d step %d: time %d, want %d", shards, r, s, got[r][s], want[r][s])
				}
			}
		}
		st := eng.Stats()
		if st.Rounds == 0 || st.Splits == 0 {
			t.Fatalf("shards=%d: expected parallel rounds to run, stats %+v", shards, st)
		}
	}
}

// TestShardedPinGlobal checks that pinned sections are globally
// serialized: concurrent-looking increments of an unsynchronized counter
// are safe when bracketed by PinGlobal/UnpinGlobal, and the engine
// returns to parallel rounds after the last unpin.
func TestShardedPinGlobal(t *testing.T) {
	const nproc = 8
	const latency = Time(1000)
	eng := NewEngineShards(4, latency)
	bar := newMiniBarrier(nproc, latency)
	var counter int // deliberately unsynchronized; only pinned sections touch it
	order := make([]int, 0, nproc)
	for i := 0; i < nproc; i++ {
		rank := i
		p := eng.SpawnOn(rank/2, fmt.Sprintf("p%d", rank), func(p *Proc) {
			p.Advance(Time(10 * (rank + 1)))
			p.PinGlobal()
			if got, want := p.Now(), Time(10*(rank+1)); got != want {
				t.Errorf("rank %d pinned at %d, want %d", rank, got, want)
			}
			counter++
			order = append(order, rank)
			p.Advance(5)
			p.UnpinGlobal()
			bar.wait(p, rank)
			p.Advance(Time(100 * (rank + 1)))
		})
		bar.procs[rank] = p
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != nproc {
		t.Fatalf("counter = %d, want %d", counter, nproc)
	}
	// Pin resumes carry (time, shard-banded key) ordering: rank order here.
	for i, r := range order {
		if r != i {
			t.Fatalf("pinned sections ran in order %v, want ranks in order", order)
		}
	}
	if eng.Stats().Splits < 2 {
		t.Fatalf("expected a re-split after the last unpin, stats %+v", eng.Stats())
	}
}

// TestShardedDeadlock checks that a process parked forever is reported
// across shard boundaries.
func TestShardedDeadlock(t *testing.T) {
	eng := NewEngineShards(2, 100)
	eng.SpawnOn(0, "ok", func(p *Proc) { p.Advance(50) })
	eng.SpawnOn(1, "stuck", func(p *Proc) { p.Park() })
	err := eng.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck(parked)" {
		t.Fatalf("Parked = %v", de.Parked)
	}
}

// TestShardedFinalClock checks Engine.Now after Run reflects the furthest
// shard.
func TestShardedFinalClock(t *testing.T) {
	eng := NewEngineShards(2, 100)
	eng.SpawnOn(0, "short", func(p *Proc) { p.Advance(10) })
	eng.SpawnOn(1, "long", func(p *Proc) { p.Advance(12345) })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if eng.Now() != 12345 {
		t.Fatalf("Now = %d, want 12345", eng.Now())
	}
}

// TestNewEngineShardsDegenerate checks that one shard yields a plain
// serial engine.
func TestNewEngineShardsDegenerate(t *testing.T) {
	eng := NewEngineShards(1, 0)
	if eng.sh != nil {
		t.Fatal("NewEngineShards(1) should be a serial engine")
	}
	if eng.Shards() != 1 || eng.Lookahead() != 0 {
		t.Fatalf("Shards=%d Lookahead=%d", eng.Shards(), eng.Lookahead())
	}
	done := false
	p := eng.Spawn("p", func(p *Proc) {
		p.PinGlobal() // no-ops on serial engines
		p.UnpinGlobal()
		p.ScheduleWake(eng.Current(), 10, 0) // self-wake via keyed event
		p.Park()
		done = true
	})
	_ = p
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done || eng.Now() != 10 {
		t.Fatalf("done=%v now=%d", done, eng.Now())
	}
}

// lockstepDigest runs a trivial barrier-paced workload at rank scale and
// folds every rank's post-barrier clock into one FNV-1a digest, so two
// engines can be compared without holding per-rank traces.
func lockstepDigest(t *testing.T, eng *Engine, nproc, steps int, latency Time) uint64 {
	t.Helper()
	digests := make([]uint64, nproc)
	bar := newMiniBarrier(nproc, latency)
	shards := eng.Shards()
	for i := 0; i < nproc; i++ {
		rank := i
		p := eng.SpawnOn(rank*shards/nproc, fmt.Sprintf("p%d", rank), func(p *Proc) {
			h := uint64(14695981039346656037)
			for s := 0; s < steps; s++ {
				p.Advance(Time(7 * (rank%61 + 1) * (s + 1)))
				bar.wait(p, rank)
				h = (h ^ uint64(p.Now())) * 1099511628211
			}
			digests[rank] = h
		})
		bar.procs[rank] = p
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := uint64(14695981039346656037)
	for _, d := range digests {
		h = (h ^ d) * 1099511628211
	}
	return h
}

// TestShardedDigestParity16K is the paper-scale smoke test: at 16,384
// ranks the sharded engine's schedule must stay bit-identical to the
// serial engine's. The rank count is the point — it exercises the event
// tie-break key bands (FIFO counters, per-shard banded counters, keyed
// wakes up to rank 16383) far beyond what the small parity tests reach,
// so a band overflow or a key collision at scale fails here instead of in
// a 16K-rank benchmark run.
func TestShardedDigestParity16K(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-rank parity smoke is not a -short test")
	}
	const nproc, steps = 16384, 3
	const latency = Time(1200)
	want := lockstepDigest(t, NewEngine(), nproc, steps, latency)
	eng := NewEngineShards(4, latency)
	got := lockstepDigest(t, eng, nproc, steps, latency)
	if got != want {
		t.Fatalf("16K-rank digest diverged: shards=4 %016x, serial %016x", got, want)
	}
	if st := eng.Stats(); st.Rounds == 0 {
		t.Fatalf("expected parallel rounds at 16K ranks, stats %+v", st)
	}
}

// TestKeyedWakeOrder checks that keyed wakes at one instant fire in key
// order and after FIFO events of the same instant.
func TestKeyedWakeOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	ps := make([]*Proc, 3)
	for i := range ps {
		name := fmt.Sprintf("w%d", i)
		i := i
		ps[i] = eng.Spawn(name, func(p *Proc) {
			p.Park()
			order = append(order, fmt.Sprintf("wake%d", i))
		})
	}
	eng.Spawn("driver", func(p *Proc) {
		// Schedule keyed wakes in reverse key order; then a FIFO event at
		// the same instant, which must still fire first.
		for i := len(ps) - 1; i >= 0; i-- {
			p.ScheduleWake(ps[i], 100, uint64(i))
		}
		eng.At(100, func() { order = append(order, "fifo") })
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"fifo", "wake0", "wake1", "wake2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
