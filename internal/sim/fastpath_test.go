package sim

import (
	"testing"
)

// The fast-path licence says Advance(d) may skip the queue only when no
// queued event fires at or before now+d. These tests pin the edges of that
// condition.

// TestAdvanceZeroInterleavesWithCallbacks checks that Advance(0) still
// takes the slow path and lets same-instant callbacks scheduled earlier
// run first (FIFO), even when the fast path is available for d > 0.
func TestAdvanceZeroInterleavesWithCallbacks(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", func(p *Proc) {
		e.After(0, func() { order = append(order, "cb") })
		p.Advance(0)
		order = append(order, "proc")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "cb" || order[1] != "proc" {
		t.Fatalf("order = %v, want [cb proc]", order)
	}
}

// TestEventAtExactDeadlineWins checks that an event scheduled at exactly
// now+d fires before Advance(d) returns: it was scheduled first, so FIFO
// tie-breaking puts it ahead of the advancing process.
func TestEventAtExactDeadlineWins(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", func(p *Proc) {
		e.After(100, func() { order = append(order, "cb@100") })
		p.Advance(100)
		order = append(order, "proc@100")
		if p.Now() != 100 {
			t.Errorf("now = %d, want 100", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "cb@100" || order[1] != "proc@100" {
		t.Fatalf("order = %v, want [cb@100 proc@100]", order)
	}
}

// TestFastPathDoesNotSkipLaterEvents checks that a fast-path Advance stops
// exactly at now+d and leaves strictly-later events for their own instants:
// interleaving two processes with different strides must produce the same
// schedule the slow path would.
func TestFastPathDoesNotSkipLaterEvents(t *testing.T) {
	e := NewEngine()
	type tick struct {
		who string
		at  Time
	}
	var ticks []tick
	e.Spawn("fine", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(100)
			ticks = append(ticks, tick{"fine", p.Now()})
		}
	})
	e.Spawn("coarse", func(p *Proc) {
		p.Advance(450)
		ticks = append(ticks, tick{"coarse", p.Now()})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []tick{
		{"fine", 100}, {"fine", 200}, {"fine", 300}, {"fine", 400},
		{"coarse", 450},
		{"fine", 500}, {"fine", 600}, {"fine", 700}, {"fine", 800},
		{"fine", 900}, {"fine", 1000},
	}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks[%d] = %v, want %v (full: %v)", i, ticks[i], want[i], ticks)
		}
	}
}

// TestWakePermitAcrossFastAdvance checks the Wake-permit interaction with
// the coalesced handoff: a Wake delivered while the target is mid-Advance
// (including fast-path segments) must be stored as a permit and consumed by
// the next Park without yielding the clock.
func TestWakePermitAcrossFastAdvance(t *testing.T) {
	e := NewEngine()
	var target *Proc
	var parkReturned Time
	target = e.Spawn("t", func(p *Proc) {
		p.Advance(10) // slow path: waker's resume is queued at 5
		p.Advance(10) // fast path: queue is empty again
		p.Park()      // must consume the permit stored at t=5
		parkReturned = p.Now()
	})
	e.Spawn("w", func(p *Proc) {
		p.Advance(5)
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if parkReturned != 20 {
		t.Fatalf("Park returned at %d, want 20 (permit consumed without yielding)", parkReturned)
	}
}

// TestWakeOrderingWithCoalescedHandoff checks that Wake schedules the
// resume FIFO at the current instant: two processes woken in one instant
// resume in wake order, and the waker continues first (its Advance resume
// was queued before the wakes).
func TestWakeOrderingWithCoalescedHandoff(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string) *Proc {
		return e.Spawn(name, func(p *Proc) {
			p.Park()
			order = append(order, name)
		})
	}
	a := mk("a")
	b := mk("b")
	e.Spawn("w", func(p *Proc) {
		p.Advance(50)
		a.Wake()
		b.Wake()
		p.Advance(0)
		order = append(order, "w")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The Advance(0) resume is queued after both wakes, so a and b run
	// first, in wake order.
	want := []string{"a", "b", "w"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestCurrentDuringFastPath checks that Current tracks the running process
// across fast-path advances and coalesced self-resumes.
func TestCurrentDuringFastPath(t *testing.T) {
	e := NewEngine()
	var sawFast, sawSlow *Proc
	var me *Proc
	me = e.Spawn("p", func(p *Proc) {
		p.Advance(7) // fast path (empty queue)
		sawFast = e.Current()
		e.After(3, func() {
			if e.Current() != nil {
				t.Errorf("Current() = %v inside callback, want nil", e.Current())
			}
		})
		p.Advance(3) // slow path: callback at the same deadline fires first
		sawSlow = e.Current()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawFast != me || sawSlow != me {
		t.Fatalf("Current() = %v / %v, want %v", sawFast, sawSlow, me)
	}
}

// TestSteadyStateDispatchZeroAllocs verifies the pooled-event claim: once
// the engine's heap slice has warmed up, event dispatch — fast-path
// advances, slow-path interleavings and coalesced handoffs alike —
// performs zero heap allocations per event.
func TestSteadyStateDispatchZeroAllocs(t *testing.T) {
	run := func(rounds int) {
		e := NewEngine()
		for pi := 0; pi < 2; pi++ {
			e.Spawn("p", func(p *Proc) {
				for i := 0; i < rounds; i++ {
					p.Advance(10) // both procs stride together: slow path
				}
			})
		}
		e.Spawn("solo", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Advance(1 << 40) // far beyond the others: fast path
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	const extra = 4096
	small := testing.AllocsPerRun(5, func() { run(64) })
	big := testing.AllocsPerRun(5, func() { run(64 + extra) })
	perEvent := (big - small) / (3 * extra)
	if perEvent > 0.001 {
		t.Fatalf("%.4f allocations per event (small run %.1f, big run %.1f), want 0",
			perEvent, small, big)
	}
}
