// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of simulated processes (one goroutine each) under
// a single virtual clock. Exactly one process executes at any instant: the
// engine's dispatch loop is a baton that migrates between goroutines, so
// all engine and process state is accessed by at most one goroutine at a
// time and no locking is required. Given identical inputs, a simulation is
// bit-reproducible.
//
// Time is measured in integer nanoseconds of virtual time. Ties between
// events scheduled for the same instant are broken by scheduling order
// (FIFO), which keeps runs deterministic.
//
// # Host performance
//
// The single-goroutine-at-a-time invariant is also the kernel's fast-path
// licence: whichever goroutine currently runs owns every piece of engine
// state outright, so it may mutate the clock and the event queue directly
// instead of asking an engine goroutine to do it. Three consequences:
//
//   - Zero-handoff Advance: when no queued event fires at or before now+d,
//     Advance(d) simply sets now += d and returns — no channel operation,
//     no event-queue traffic. This is the overwhelmingly common case for
//     the per-operation costs (MsgOverhead, serialization, flush waits)
//     that the RMA and scheduler layers charge.
//   - Coalesced handoffs: when Advance or Park must interleave with queued
//     events, the yielding process runs the dispatch loop inline. Callbacks
//     fire on the spot, and if the next event resumes the very process that
//     yielded, it just keeps running — a handoff costs a channel round-trip
//     only when control genuinely moves to a different process.
//   - Pooled events: the queue is a concrete 4-ary min-heap over event
//     values (no container/heap interface boxing, no per-event pointer), so
//     steady-state dispatch performs zero heap allocations per event.
//
// None of this changes simulated timestamps: the fast paths are taken only
// when the slow path would produce the identical schedule, and the golden
// digest tests in internal/bench pin that equivalence down.
//
// # Parallel host execution
//
// Engines created by NewEngineShards relax the one-goroutine invariant:
// processes are assigned to shards, each with its own event queue and
// clock, and shards drain conservative time windows on separate host
// goroutines (see shard.go for the protocol and its determinism argument).
// The serial engine from NewEngine is unchanged — everything above still
// holds for it — and a sharded engine degenerates to it when asked for one
// shard.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// event is one queue entry, stored by value: either a process resume
// (proc != nil) or an engine-context callback (fire != nil).
//
// key is the tie-break within an instant. Events created in engine or
// process context get the next value of a FIFO counter (scheduling order,
// exactly the pre-parallel kernel's behaviour); events created by
// Proc.ScheduleWake carry a caller-chosen key in a space that sorts after
// all FIFO keys, so their relative order is a property of the workload
// (e.g. rank number), not of which host goroutine created them first. The
// parallel engine's cross-shard merge depends on that location-independence.
type event struct {
	at    Time
	key   uint64
	proc  *Proc
	fire  func()
	shard int32 // owning shard for fire events (sharded engines only)
}

// Key spaces for event.key. FIFO keys count up from zero; each shard's
// parallel-round keys live in a disjoint band above them; keyed wakes sort
// last within an instant in every mode.
const (
	keyShardShift = 40                           // FIFO counters stay below 1<<40
	keyedBase     = uint64(1) << 63              // ScheduleWake keys
	keyedMask     = keyedBase - 1                // caller key must fit below keyedBase
	keyShardMask  = uint64(1)<<keyShardShift - 1 // per-shard FIFO width
)

// EngineStats counts kernel activity for observability. All counters are
// host-side bookkeeping: reading or resetting them never affects virtual
// time.
type EngineStats struct {
	Events       uint64 // events popped from the queue
	FastAdvances uint64 // Advances that bumped the clock with no queue traffic
	Handoffs     uint64 // baton transfers between process goroutines
	Callbacks    uint64 // engine-context callbacks fired
	Spawns       uint64 // processes created
	Rounds       uint64 // parallel rounds completed (sharded engines)
	Splits       uint64 // global→parallel transitions (sharded engines)
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine (serial) or NewEngineShards
// (parallel host execution, see shard.go).
type Engine struct {
	now     Time
	queue   []event // 4-ary min-heap ordered by (at, key)
	seq     uint64
	root    chan struct{} // dispatch returns the baton to Run when the queue drains
	live    procList
	current *Proc
	stats   EngineStats

	// sh is non-nil for engines created by NewEngineShards with more than
	// one shard. All parallel behaviour hangs off it; when nil, every path
	// below is the serial kernel unchanged.
	sh *sharded

	// liveNow/liveEvents are low-frequency snapshots of the clock and the
	// dispatched-event count, published for host-side progress reporting
	// (LiveTime/LiveEvents). They are written by whichever goroutine holds
	// the baton — every few thousand pops on the serial path, at round
	// boundaries on the sharded path — so reading them from a heartbeat
	// goroutine is race-free, cheap, and never perturbs the simulation.
	liveNow    atomic.Int64
	liveEvents atomic.Uint64
}

// liveEvery sets how many serial event pops elapse between live-snapshot
// publications (a power of two; the check is a mask on a counter the pop
// path maintains anyway).
const liveEvery = 4096

// LiveTime returns a recent snapshot of the virtual clock. Unlike Now it
// may be called from any host goroutine while the engine runs; the value
// trails the true clock by at most one publication interval.
func (e *Engine) LiveTime() Time { return e.liveNow.Load() }

// LiveEvents returns a recent snapshot of the total events dispatched,
// with the same concurrency contract as LiveTime.
func (e *Engine) LiveEvents() uint64 { return e.liveEvents.Load() }

// publishLive refreshes the live snapshots from the aggregate stats. Only
// call with the engine quiescent or the baton held.
func (e *Engine) publishLive() {
	now := e.now
	ev := e.stats.Events
	if e.sh != nil {
		for _, shd := range e.sh.shards {
			ev += shd.stats.Events
			if shd.now > now {
				now = shd.now
			}
		}
	}
	e.liveNow.Store(now)
	e.liveEvents.Store(ev)
}

// procList is an intrusive doubly-linked list of live processes, threaded
// through Proc.livePrev/liveNext. It replaces the engine's former
// map[*Proc]struct{} live/parked sets: at 16K+ processes the map buckets
// dominated kernel setup memory, while the intrusive links cost two words
// inside the Proc itself, insert and exit are O(1), and the parked state
// reads straight off the Proc flag the kernel maintains anyway. The list
// is only ever walked for deadlock diagnostics.
type procList struct {
	head *Proc
	n    int
}

func (l *procList) add(p *Proc) {
	p.liveNext = l.head
	if l.head != nil {
		l.head.livePrev = p
	}
	l.head = p
	l.n++
}

func (l *procList) remove(p *Proc) {
	if p.livePrev != nil {
		p.livePrev.liveNext = p.liveNext
	} else {
		l.head = p.liveNext
	}
	if p.liveNext != nil {
		p.liveNext.livePrev = p.livePrev
	}
	p.livePrev, p.liveNext = nil, nil
	l.n--
}

// names returns "name(state)" diagnostics for every live process, for
// deadlock reports.
func (l *procList) names() []string {
	var out []string
	for p := l.head; p != nil; p = p.liveNext {
		state := "running"
		if p.parked {
			state = "parked"
		}
		out = append(out, p.Name+"("+state+")")
	}
	return out
}

// NewEngine returns a new engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{root: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Stats returns the cumulative kernel counters. On a sharded engine the
// per-shard counters are folded in; call it only while the engine is idle
// or in a global phase. Counter values (Handoffs, FastAdvances, ...) are
// host-execution details and may legitimately differ between shard counts
// even though all simulated observables are bit-identical.
func (e *Engine) Stats() EngineStats {
	s := e.stats
	if e.sh != nil {
		s.Rounds = e.sh.rounds
		s.Splits = e.sh.splits
		for _, shd := range e.sh.shards {
			s.Events += shd.stats.Events
			s.FastAdvances += shd.stats.FastAdvances
			s.Handoffs += shd.stats.Handoffs
			s.Callbacks += shd.stats.Callbacks
			s.Spawns += shd.stats.Spawns
		}
	}
	return s
}

// eventLess orders the heap by deadline, then by tie-break key (FIFO
// within an instant for engine- and process-scheduled events).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// heapPush inserts ev into the 4-ary heap held in q and returns the
// (possibly reallocated) slice. Shared by the serial queue and the
// per-shard queues.
func heapPush(q []event, ev event) []event {
	q = append(q, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	return q
}

// heapPop removes and returns the earliest event from the heap in q.
func heapPop(q []event) (event, []event) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop the proc/closure reference for GC
	q = q[:n]
	i := 0
	for {
		min := i
		base := 4*i + 1
		end := base + 4
		if end > n {
			end = n
		}
		for c := base; c < end; c++ {
			if eventLess(&q[c], &q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top, q
}

// push inserts ev into the engine's serial/global queue.
func (e *Engine) push(ev event) { e.queue = heapPush(e.queue, ev) }

// pop removes and returns the earliest event from the serial/global queue.
func (e *Engine) pop() event {
	e.stats.Events++
	if e.stats.Events&(liveEvery-1) == 0 {
		e.publishLive()
	}
	top, q := heapPop(e.queue)
	e.queue = q
	return top
}

// At schedules fn to run in engine context at time t. fn must not block;
// it runs between process executions. Scheduling in the past is an error.
// On a sharded engine, At may only be called before Run or while the
// engine is in its global (serial) phase.
func (e *Engine) At(t Time, fn func()) {
	if e.sh != nil && e.sh.parallel {
		panic("sim: At called during a parallel round; use Proc.ScheduleWake or schedule before Run")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev := event{at: t, key: e.seq, fire: fn}
	if cur := e.current; cur != nil && cur.shd != nil {
		ev.shard = int32(cur.shd.id)
	}
	e.push(ev)
}

// After schedules fn to run in engine context after duration d.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// scheduleResume queues a resume of p at time t on the serial/global queue.
func (e *Engine) scheduleResume(p *Proc, t Time) {
	e.seq++
	e.push(event{at: t, key: e.seq, proc: p})
}

// Spawn creates a new simulated process that will begin executing fn at the
// current virtual time (after already-queued events for this instant).
// The name is used in diagnostics only. On a sharded engine the process
// inherits the spawning process's shard (shard 0 from engine context); use
// SpawnOn to choose a shard explicitly.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	shard := 0
	if e.sh != nil && e.current != nil && e.current.shd != nil {
		shard = e.current.shd.id
	}
	return e.SpawnOn(shard, name, fn)
}

// SpawnOn is Spawn with an explicit shard assignment. The process's events
// run on that shard's host worker during parallel rounds. On a serial
// engine the shard index is ignored. SpawnOn may only be called before Run
// or during a global phase.
func (e *Engine) SpawnOn(shard int, name string, fn func(*Proc)) *Proc {
	if e.sh != nil && e.sh.parallel {
		panic("sim: Spawn during a parallel round")
	}
	p := &Proc{
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
		body:   fn,
	}
	e.stats.Spawns++
	if e.sh != nil {
		p.shd = e.sh.shards[shard]
		p.shd.live.add(p)
	} else {
		e.live.add(p)
	}
	e.scheduleResume(p, e.now)
	return p
}

// transfer hands the baton to q, starting its goroutine on first resume.
// The caller must not touch engine state after transfer returns until it is
// itself resumed (it blocks on its own resume channel, blocks on e.root, or
// exits).
func (e *Engine) transfer(q *Proc) {
	e.stats.Handoffs++
	e.current = q
	if !q.started {
		q.started = true
		go q.run()
		return
	}
	q.resume <- struct{}{}
}

// run is a process goroutine's top-level frame. The exit handling is
// deferred so that a body terminated by runtime.Goexit (e.g. t.Fatal in
// tests) still passes the baton on instead of deadlocking the host.
func (p *Proc) run() {
	defer p.exit()
	p.body(p)
}

// exit retires the process and passes the baton to the next event (or back
// to Run if the queue has drained).
func (p *Proc) exit() {
	e := p.eng
	p.dead = true
	if p.shd != nil {
		p.shd.live.remove(p)
		if e.sh.parallel {
			p.shd.dispatch(nil)
		} else {
			e.globalDispatch(nil)
		}
		return
	}
	e.live.remove(p)
	e.dispatch(nil)
}

// dispatch runs the event loop while this goroutine holds the baton. It
// pops events and fires engine-context callbacks inline until either
//
//   - it pops a resume for self: it returns with the baton still held, so
//     the caller simply continues running (no channel traffic at all), or
//   - it pops a resume for another process: it hands the baton over and,
//     when self expects to run again later, blocks until resumed, or
//   - the queue drains: it returns the baton to Run (deadlock detection
//     happens there).
//
// self is nil when the caller will never run again (process exit).
func (e *Engine) dispatch(self *Proc) {
	for {
		if len(e.queue) == 0 {
			e.current = nil
			e.root <- struct{}{}
			if self != nil {
				// Parked forever: Run has already reported the deadlock;
				// this goroutine can only leak, exactly as a process blocked
				// on a channel the simulation never sends on would.
				<-self.resume
			}
			return
		}
		ev := e.pop()
		e.now = ev.at
		if ev.proc == nil {
			e.current = nil
			e.stats.Callbacks++
			ev.fire()
			continue
		}
		if ev.proc == self {
			e.current = self
			return
		}
		e.transfer(ev.proc)
		if self != nil {
			<-self.resume
		}
		return
	}
}

// Current returns the process currently executing (nil between events).
// Useful for layers that need to know on whose behalf a call is running.
func (e *Engine) Current() *Proc { return e.current }

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked with no pending wakeup.
type DeadlockError struct {
	// Parked lists the names of the stuck processes.
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events: %v", len(d.Parked), d.Parked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if any process is still alive (parked forever) when the queue drains, and
// nil otherwise. Run may be called at most once on a sharded engine.
func (e *Engine) Run() error {
	if e.sh != nil {
		return e.runSharded()
	}
	for len(e.queue) > 0 {
		ev := e.pop()
		e.now = ev.at
		if ev.proc == nil {
			e.current = nil
			e.stats.Callbacks++
			ev.fire()
			continue
		}
		e.transfer(ev.proc)
		// The baton comes back only when the queue has drained; processes
		// hand off among themselves in the meantime.
		<-e.root
	}
	if e.live.n > 0 {
		names := e.live.names()
		sort.Strings(names)
		return &DeadlockError{Parked: names}
	}
	return nil
}

// Proc is a simulated process. Its methods must only be called from the
// goroutine running the process body (with the exception of Wake, which may
// be called from any process or engine-context callback).
type Proc struct {
	// Name identifies the process in diagnostics.
	Name string

	eng     *Engine
	shd     *shard // nil on serial engines
	resume  chan struct{}
	body    func(*Proc)
	started bool
	dead    bool
	parked  bool
	permits int

	// livePrev/liveNext thread the engine's (or shard's) intrusive list
	// of live processes; see procList.
	livePrev, liveNext *Proc

	// scaleNum/scaleDen stretch Advance durations (straggler modelling);
	// scaleNum == 0 means nominal speed.
	scaleNum, scaleDen int64
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time: the process's shard clock during
// parallel rounds, the global clock otherwise.
func (p *Proc) Now() Time {
	if p.shd != nil && p.eng.sh.parallel {
		return p.shd.now
	}
	return p.eng.now
}

// Advance blocks the process for d nanoseconds of virtual time, modelling
// local computation or fixed-cost operations. Advance(0) yields without
// advancing the clock, letting same-instant events interleave
// deterministically.
//
// When no queued event fires at or before now+d, Advance takes the
// zero-handoff fast path: the process would be resumed next in any case, so
// the clock is bumped directly and control never leaves this goroutine. An
// event scheduled at exactly now+d forces the slow path — it carries an
// earlier sequence number than the resume this Advance would enqueue, so
// FIFO tie-breaking says it must run first. Advance(0) always takes the
// slow path: its purpose is to interleave same-instant events.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	if p.scaleNum > 0 {
		d = d * p.scaleNum / p.scaleDen
	}
	e := p.eng
	if p.shd != nil {
		p.advanceSharded(d)
		return
	}
	if d > 0 && (len(e.queue) == 0 || e.queue[0].at > e.now+d) {
		e.now += d
		e.stats.FastAdvances++
		return
	}
	e.scheduleResume(p, e.now+d)
	e.dispatch(p)
}

// SetTimeScale stretches every subsequent Advance duration by num/den,
// modelling a process whose core runs slower than nominal (a straggler:
// 10/1 means ten times slower). SetTimeScale(0, 0) — or any num <= 0 —
// restores nominal speed. The scale applies at Advance time only; it never
// reinterprets durations already charged, so it may be flipped mid-run
// (e.g. from an engine callback at a fault-window boundary). Unlike most
// Proc methods it touches only this process's fields, so it may be called
// from any simulation goroutine or engine callback.
func (p *Proc) SetTimeScale(num, den int64) {
	if num > 0 && den <= 0 {
		panic("sim: SetTimeScale with non-positive denominator")
	}
	p.scaleNum, p.scaleDen = num, den
}

// Park suspends the process until another process (or engine callback)
// calls Wake. If Wake was already called since the last Park, the permit is
// consumed and Park returns immediately without yielding the clock.
func (p *Proc) Park() {
	if p.permits > 0 {
		p.permits--
		return
	}
	p.parked = true
	if p.shd != nil {
		if p.eng.sh.parallel {
			p.shd.dispatch(p)
		} else {
			p.eng.globalDispatch(p)
		}
		return
	}
	p.eng.dispatch(p)
}

// Wake unparks p at the current virtual time. If p is not parked, a permit
// is stored and the next Park returns immediately. Each Wake grants exactly
// one Park.
//
// During a parallel round, Wake may only target a process on the caller's
// own shard; cross-shard wakeups must go through Proc.ScheduleWake, which
// routes them via the window-boundary mailboxes.
func (p *Proc) Wake() {
	e := p.eng
	if !p.parked {
		p.permits++
		return
	}
	p.parked = false
	if p.shd != nil {
		if e.sh.parallel {
			p.shd.scheduleResume(p, p.shd.now)
		} else {
			e.scheduleResume(p, e.now)
		}
		return
	}
	e.scheduleResume(p, e.now)
}
