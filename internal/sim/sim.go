// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of simulated processes (one goroutine each) under
// a single virtual clock. Exactly one process executes at any instant: the
// engine and the processes hand control back and forth over unbuffered
// channels, so all engine and process state is accessed by at most one
// goroutine at a time and no locking is required. Given identical inputs,
// a simulation is bit-reproducible.
//
// Time is measured in integer nanoseconds of virtual time. Ties between
// events scheduled for the same instant are broken by scheduling order
// (FIFO), which keeps runs deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

type event struct {
	at   Time
	seq  uint64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	yield   chan struct{} // a process signals the engine here when it parks or exits
	live    map[*Proc]struct{}
	parked  map[*Proc]struct{}
	current *Proc
}

// NewEngine returns a new engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		live:   make(map[*Proc]struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run in engine context at time t. fn must not block;
// it runs between process executions. Scheduling in the past is an error.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fire: fn})
}

// After schedules fn to run in engine context after duration d.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Spawn creates a new simulated process that will begin executing fn at the
// current virtual time (after already-queued events for this instant).
// The name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	e.After(0, func() {
		go func() {
			<-p.resume
			// The yield is deferred so that a process body terminated by
			// runtime.Goexit (e.g. t.Fatal in tests) still returns control
			// to the engine instead of deadlocking the host.
			defer func() {
				p.dead = true
				e.yield <- struct{}{}
			}()
			fn(p)
		}()
		e.runProc(p)
	})
	return p
}

// runProc transfers control to p and waits until p parks or exits.
func (e *Engine) runProc(p *Proc) {
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = prev
	if p.dead {
		delete(e.live, p)
		delete(e.parked, p)
	}
}

// Current returns the process currently executing (nil between events).
// Useful for layers that need to know on whose behalf a call is running.
func (e *Engine) Current() *Proc { return e.current }

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked with no pending wakeup.
type DeadlockError struct {
	// Parked lists the names of the stuck processes.
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events: %v", len(d.Parked), d.Parked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if any process is still alive (parked forever) when the queue drains, and
// nil otherwise.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fire()
	}
	if len(e.live) > 0 {
		var names []string
		for p := range e.live {
			state := "running"
			if _, ok := e.parked[p]; ok {
				state = "parked"
			}
			names = append(names, p.Name+"("+state+")")
		}
		sort.Strings(names)
		return &DeadlockError{Parked: names}
	}
	return nil
}

// Proc is a simulated process. Its methods must only be called from the
// goroutine running the process body (with the exception of Wake, which may
// be called from any process or engine-context callback).
type Proc struct {
	// Name identifies the process in diagnostics.
	Name string

	eng     *Engine
	resume  chan struct{}
	dead    bool
	parked  bool
	permits int
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Advance blocks the process for d nanoseconds of virtual time, modelling
// local computation or fixed-cost operations. Advance(0) yields without
// advancing the clock, letting same-instant events interleave
// deterministically.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	e := p.eng
	e.After(d, func() { e.runProc(p) })
	p.yield()
}

// Park suspends the process until another process (or engine callback)
// calls Wake. If Wake was already called since the last Park, the permit is
// consumed and Park returns immediately without yielding the clock.
func (p *Proc) Park() {
	if p.permits > 0 {
		p.permits--
		return
	}
	p.parked = true
	p.eng.parked[p] = struct{}{}
	p.yield()
}

// Wake unparks p at the current virtual time. If p is not parked, a permit
// is stored and the next Park returns immediately. Each Wake grants exactly
// one Park.
func (p *Proc) Wake() {
	e := p.eng
	if p.parked {
		p.parked = false
		delete(e.parked, p)
		e.After(0, func() { e.runProc(p) })
		return
	}
	p.permits++
}

// yield returns control to the engine and blocks until the engine resumes
// this process.
func (p *Proc) yield() {
	p.eng.yield <- struct{}{}
	<-p.resume
}
