package sim

import (
	"testing"
)

// BenchmarkSimEngine measures host-side event-kernel throughput. Each
// sub-benchmark drives one dispatch regime; all report events/sec of host
// wall-clock (one "event" = one Advance, Park/Wake pair, or callback).

// advance-fast: a lone process burning virtual time — the zero-handoff
// fast path (no queue traffic, no channel operations).
func BenchmarkSimEngineAdvanceFast(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// advance-self: Advance(0) in a loop — slow path through the event queue,
// but the popped resume belongs to the yielding process, so the handoff
// coalesces to zero channel operations.
func BenchmarkSimEngineAdvanceSelf(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(0)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// ping-pong: two processes striding in lockstep, so every Advance hands
// control to the other goroutine — the unavoidable-handoff worst case.
func BenchmarkSimEnginePingPong(b *testing.B) {
	e := NewEngine()
	for pi := 0; pi < 2; pi++ {
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Advance(10)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// park-wake: a producer/consumer pair exercising Park, Wake and the
// resulting same-instant resume events.
func BenchmarkSimEngineParkWake(b *testing.B) {
	e := NewEngine()
	var consumer *Proc
	consumer = e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			p.Park()
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			p.Advance(5)
			consumer.Wake()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// callbacks: a self-rescheduling engine-context callback — pure queue
// push/pop/fire throughput with no processes at all.
func BenchmarkSimEngineCallbacks(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSimEngineMixed approximates the RMA layer's Advance profile:
// many short advances against a backdrop of occasionally-due events from
// other processes, the workload the fast path is aimed at.
func BenchmarkSimEngineMixed(b *testing.B) {
	e := NewEngine()
	e.Spawn("poller", func(p *Proc) {
		for i := 0; i < b.N/16; i++ {
			p.Advance(1000)
		}
	})
	e.Spawn("issuer", func(p *Proc) {
		for i := 0; i < b.N-b.N/16; i++ {
			p.Advance(50)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
