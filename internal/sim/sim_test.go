package sim

import (
	"testing"
)

func TestClockAdvance(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Advance(100)
		p.Advance(250)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 350 {
		t.Fatalf("got time %d, want 350", at)
	}
	if e.Now() != 350 {
		t.Fatalf("engine now = %d, want 350", e.Now())
	}
}

func TestZeroAdvanceYields(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Spawn("a", func(p *Proc) {
		order = append(order, 1)
		p.Advance(0)
		order = append(order, 3)
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, 2)
		p.Advance(0)
		order = append(order, 4)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, n := range []string{"x", "y", "z"} {
			name := n
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Advance(10)
					trace = append(trace, name)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("trace lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic trace at %d: %v vs %v", i, a, b)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine()
	var consumerDone Time
	var producer *Proc
	consumer := e.Spawn("consumer", func(p *Proc) {
		p.Park() // waits for producer
		consumerDone = p.Now()
	})
	producer = e.Spawn("producer", func(p *Proc) {
		p.Advance(500)
		consumer.Wake()
	})
	_ = producer
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumerDone != 500 {
		t.Fatalf("consumer resumed at %d, want 500", consumerDone)
	}
}

func TestWakeBeforeParkGrantsPermit(t *testing.T) {
	e := NewEngine()
	var done bool
	var target *Proc
	target = e.Spawn("late-parker", func(p *Proc) {
		p.Advance(100) // the wake happens while we are advancing
		p.Park()       // must consume the stored permit, not block
		done = true
	})
	e.Spawn("early-waker", func(p *Proc) {
		p.Advance(10)
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("parker never resumed despite early wake")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) {
		p.Park() // nobody ever wakes us
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("got error %v, want *DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck(parked)" {
		t.Fatalf("parked = %v, want [stuck]", de.Parked)
	}
}

func TestAtCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(50, func() { trace = append(trace, 50) })
	e.At(20, func() { trace = append(trace, 20) })
	e.At(20, func() { trace = append(trace, 21) }) // same instant: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 3 || trace[0] != 20 || trace[1] != 21 || trace[2] != 50 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Advance(30)
		p.Engine().Spawn("child", func(c *Proc) {
			c.Advance(12)
			childTime = c.Now()
		})
		p.Advance(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 42 {
		t.Fatalf("child finished at %d, want 42", childTime)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcs(t *testing.T) {
	e := NewEngine()
	const n = 200
	count := 0
	for i := 0; i < n; i++ {
		d := Time(i % 17)
		e.Spawn("w", func(p *Proc) {
			p.Advance(d)
			count++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestMultipleWakesGrantMultiplePermits(t *testing.T) {
	e := NewEngine()
	var target *Proc
	hits := 0
	target = e.Spawn("t", func(p *Proc) {
		p.Advance(100)
		p.Park()
		hits++
		p.Park()
		hits++
	})
	e.Spawn("w", func(p *Proc) {
		target.Wake()
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

// TestSetTimeScale: a scaled proc's Advance charges num/den times the
// requested duration (straggler modelling), and (0, 0) restores nominal.
func TestSetTimeScale(t *testing.T) {
	e := NewEngine()
	e.Spawn("scaled", func(p *Proc) {
		p.SetTimeScale(10, 1)
		p.Advance(100)
		if p.Now() != 1000 {
			t.Errorf("10x-scaled Advance(100) landed at %d, want 1000", p.Now())
		}
		p.SetTimeScale(3, 2)
		p.Advance(100)
		if p.Now() != 1150 {
			t.Errorf("1.5x-scaled Advance(100) landed at %d, want 1150", p.Now())
		}
		p.SetTimeScale(0, 0)
		p.Advance(100)
		if p.Now() != 1250 {
			t.Errorf("nominal Advance(100) landed at %d, want 1250", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSetTimeScalePanicsOnBadDenominator documents the programmer-error
// contract.
func TestSetTimeScalePanicsOnBadDenominator(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("SetTimeScale(1, 0) did not panic")
			}
		}()
		p.SetTimeScale(1, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
