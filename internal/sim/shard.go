// Parallel host execution: a conservatively synchronized sharded engine.
//
// # Model
//
// NewEngineShards partitions processes across S shards, each with its own
// event queue, clock, and host worker goroutine. Execution alternates
// between two phases:
//
//   - Global phase: the classic serial kernel. One queue, one clock, one
//     goroutine at a time. Used whenever any process holds a global pin
//     (PinGlobal), i.e. during phases whose cross-rank interactions are
//     finer-grained than the lookahead (the fork-join scheduler's steal
//     protocol pokes victim deques directly).
//   - Parallel rounds: each shard's worker drains its own queue to
//     quiescence — a dynamically sized conservative window that ends when
//     every process on the shard has parked, blocked, or exited. Shards
//     share no mutable state during a round; cross-shard communication is
//     deferred into per-shard-pair mailboxes and merged at the round
//     boundary in (time, key) order, each destination shard folding its
//     own mail in on its own worker so merges parallelize too. The
//     coordinator signals only shards that actually have queued events
//     (or mail), so per-round host synchronization scales with active
//     shards, not configured shards.
//
// # Why round-boundary merges are safe (lookahead)
//
// Cross-shard events are only created by Proc.ScheduleWake, whose contract
// requires the wake time to lie at least `lookahead` — the network model's
// minimum link latency — after the sender's clock, and the target process
// to be quiescent (parked) from before the sender observed it until the
// wake time. Under those conditions the destination shard's clock cannot
// pass the wake time before the merge delivers it: the barrier release
// time max(arrivals) + ceil(log2 n)·latency exceeds every shard's
// quiesced clock, because each shard's clock is the maximum arrival time
// of its own ranks. Both directions are asserted: the send side checks
// t ≥ sender.now + lookahead for cross-shard wakes, and the merge panics
// if an event would land in its destination shard's past. A violation is
// therefore a loud bug, never a silent reordering.
//
// # Why digests are bit-identical to the serial engine
//
// Three mechanisms, none of which depend on host scheduling:
//
//  1. Location-independent tie-break keys. Within an instant, events sort
//     by a 64-bit key: FIFO counters (serial behaviour) < per-shard banded
//     counters < caller-chosen keyed wakes. Cross-shard merges therefore
//     land in an order fixed by (time, key) alone.
//  2. Quiescence-defined rounds. A round's contents are a function of the
//     queues at its start, so the round structure itself is deterministic;
//     host goroutines only decide *when* work happens, never *what order*
//     observable interactions commit in. Within a round, shards touch
//     disjoint simulation state (data-race-freedom across shards is the
//     layering contract: conflicting accesses are separated by barriers,
//     which span round boundaries).
//  3. Deterministic phase switches. Parallel→global transitions trigger at
//     round boundaries when a pin is held; global→parallel splits trigger
//     at event boundaries when no pin is held. Both conditions are
//     functions of simulated execution only.
//
// Host-side counters (EngineStats) are exempt: handoff and fast-advance
// counts describe how the host executed the schedule and legitimately
// differ across shard counts.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// sharded holds the parallel-execution extension of an Engine.
type sharded struct {
	shards    []*shard
	lookahead Time
	pins      atomic.Int32 // processes requiring the global phase
	parallel  bool         // written by the coordinator between phases only
	started   bool
	rounds    uint64 // parallel rounds completed
	splits    uint64 // global→parallel transitions

	// active is the coordinator's reusable scratch list of shards selected
	// for the current signal (non-empty queues for a round, non-empty
	// inboxes for a merge), so per-round coordination cost follows the
	// number of shards with actual work, not the shard count.
	active []*shard
}

// shard is one host worker's slice of the simulation: a private event
// queue, clock, and process set. During parallel rounds exactly one
// goroutine (the shard worker or a process it handed the baton to) touches
// a shard's state, so the serial kernel's no-locking argument holds
// per-shard.
type shard struct {
	id      int
	eng     *Engine
	now     Time
	queue   []event
	seq     uint64
	root    chan struct{} // baton back to the shard worker when the queue drains
	runCh   chan struct{} // coordinator → worker: run one round
	mergeCh chan struct{} // coordinator → worker: merge this shard's inbox
	doneCh  chan struct{} // worker → coordinator: round / merge finished
	current *Proc
	live    procList
	inbox   [][]event // mailbox per source shard, merged at round boundaries
	pending []event   // resumes for pin-parked processes, released at the global merge
	stats   EngineStats
}

// key returns the shard-banded tie-break key for the shard's seq-th event.
func (s *shard) key(seq uint64) uint64 {
	return uint64(s.id+1)<<keyShardShift | (seq & keyShardMask)
}

// NewEngineShards returns an engine whose processes are partitioned across
// nshards host workers, synchronized conservatively with the given
// lookahead (the minimum virtual latency of any cross-shard interaction;
// use the network model's MinLatency). NewEngineShards(1, ...) returns a
// plain serial engine, so callers can thread a -procs knob straight
// through. Run may be called at most once on a sharded engine.
func NewEngineShards(nshards int, lookahead Time) *Engine {
	if nshards < 1 {
		panic("sim: NewEngineShards requires at least one shard")
	}
	e := NewEngine()
	if nshards == 1 {
		return e
	}
	if lookahead <= 0 {
		panic("sim: sharded engine requires positive lookahead")
	}
	sh := &sharded{lookahead: lookahead}
	for i := 0; i < nshards; i++ {
		sh.shards = append(sh.shards, &shard{
			id:      i,
			eng:     e,
			root:    make(chan struct{}),
			runCh:   make(chan struct{}),
			mergeCh: make(chan struct{}),
			doneCh:  make(chan struct{}),
			inbox:   make([][]event, nshards),
		})
	}
	sh.active = make([]*shard, 0, nshards)
	e.sh = sh
	return e
}

// Shards returns the number of host shards (1 for a serial engine).
func (e *Engine) Shards() int {
	if e.sh == nil {
		return 1
	}
	return len(e.sh.shards)
}

// Lookahead returns the conservative synchronization bound (0 for a serial
// engine).
func (e *Engine) Lookahead() Time {
	if e.sh == nil {
		return 0
	}
	return e.sh.lookahead
}

// Shard returns the index of the shard this process is assigned to.
func (p *Proc) Shard() int {
	if p.shd == nil {
		return 0
	}
	return p.shd.id
}

// PinGlobal declares that this process needs globally serialized execution
// (e.g. it is entering a fork-join region whose steal protocol interacts
// with other ranks at sub-lookahead granularity). If a parallel round is in
// progress, the process yields and resumes — at its current virtual time —
// once the engine has switched to the global phase. Pins nest; they are
// released with UnpinGlobal. No-op on a serial engine.
func (p *Proc) PinGlobal() {
	e := p.eng
	if e.sh == nil {
		return
	}
	e.sh.pins.Add(1)
	if !e.sh.parallel {
		return
	}
	s := p.shd
	s.seq++
	s.pending = append(s.pending, event{at: s.now, key: s.key(s.seq), proc: p})
	s.dispatch(p)
}

// UnpinGlobal releases a PinGlobal. When the last pin is released the
// engine returns to parallel rounds at the next event boundary. No-op on a
// serial engine.
func (p *Proc) UnpinGlobal() {
	if p.eng.sh == nil {
		return
	}
	if p.eng.sh.pins.Add(-1) < 0 {
		panic("sim: UnpinGlobal without matching PinGlobal")
	}
}

// ScheduleWake schedules a Wake of q at time t, with an explicit
// caller-chosen tie-break key (unique per instant among keyed events; e.g.
// the target's rank number). Keyed wakes fire after all FIFO-scheduled
// events of the same instant, in key order, in every execution mode — the
// order is a property of the workload, not of which host worker scheduled
// first, which is what makes cross-shard wakeups deterministic.
//
// During a parallel round a cross-shard wake must satisfy
// t ≥ caller.Now() + lookahead, and q must already be parked and stay
// parked until t (barrier waiters satisfy both by construction).
func (p *Proc) ScheduleWake(q *Proc, t Time, key uint64) {
	if key&^keyedMask != 0 {
		panic("sim: ScheduleWake key out of range")
	}
	e := p.eng
	ev := event{at: t, key: keyedBase | key, fire: q.Wake}
	if q.shd != nil {
		ev.shard = int32(q.shd.id)
	}
	if e.sh == nil || !e.sh.parallel {
		if t < e.now {
			panic(fmt.Sprintf("sim: wake at %d before now %d", t, e.now))
		}
		e.push(ev)
		return
	}
	s := p.shd
	if q.shd == s {
		if t < s.now {
			panic(fmt.Sprintf("sim: wake at %d before shard clock %d", t, s.now))
		}
		s.queue = heapPush(s.queue, ev)
		return
	}
	if t < s.now+e.sh.lookahead {
		panic(fmt.Sprintf("sim: cross-shard wake at %d violates lookahead (shard %d clock %d + lookahead %d)",
			t, s.id, s.now, e.sh.lookahead))
	}
	q.shd.inbox[s.id] = append(q.shd.inbox[s.id], ev)
}

// runSharded is Run for sharded engines: it alternates global phases with
// parallel rounds until the simulation drains.
func (e *Engine) runSharded() error {
	sh := e.sh
	if sh.started {
		panic("sim: Run called twice on a sharded engine")
	}
	sh.started = true
	for _, s := range sh.shards {
		go s.worker()
	}
	for {
		if done := e.runGlobalPhase(); done {
			break
		}
		// Split: distribute the global queue across the shard queues. The
		// queue pops in (at, key) order and ordered inserts keep each heap
		// valid, so per-shard order is exactly the global order restricted
		// to that shard.
		for len(e.queue) > 0 {
			var ev event
			ev, e.queue = heapPop(e.queue)
			dst := sh.shards[ev.targetShard()]
			dst.queue = heapPush(dst.queue, ev)
		}
		sh.parallel = true
		sh.splits++
		for {
			// Only shards with queued events are signalled: an empty
			// shard's round is a no-op, so skipping its run/done
			// round-trip changes nothing observable while cutting
			// per-round host synchronization from O(shards) to O(active
			// shards) — the dominant cost for barrier-paced workloads
			// whose rounds touch a few shards at a time. Reading queue
			// lengths here is race-free: every worker is quiescent
			// between rounds (the doneCh handshake ordered its last
			// writes before this read).
			run := sh.active[:0]
			for _, s := range sh.shards {
				if len(s.queue) > 0 {
					run = append(run, s)
				}
			}
			for _, s := range run {
				s.runCh <- struct{}{}
			}
			for _, s := range run {
				<-s.doneCh
			}
			sh.rounds++
			// Merge phase: each destination shard with mail folds its own
			// inboxes into its queue on its own worker, concurrently with
			// the other destinations. Shards without mail skip the
			// round-trip entirely; when nothing moved anywhere the window
			// is exhausted.
			merge := sh.active[:0]
			for _, s := range sh.shards {
				for _, box := range s.inbox {
					if len(box) > 0 {
						merge = append(merge, s)
						break
					}
				}
			}
			for _, s := range merge {
				s.mergeCh <- struct{}{}
			}
			for _, s := range merge {
				<-s.doneCh
			}
			// Every worker is quiescent here (the doneCh handshakes above
			// ordered their last writes), so publishing the live progress
			// snapshot from the coordinator is race-free.
			e.publishLive()
			if sh.pins.Load() > 0 || len(merge) == 0 {
				break
			}
		}
		sh.parallel = false
		e.mergeToGlobal()
	}
	for _, s := range sh.shards {
		close(s.runCh)
	}
	for _, s := range sh.shards {
		if s.now > e.now {
			e.now = s.now
		}
	}
	var names []string
	for _, s := range sh.shards {
		names = append(names, s.live.names()...)
	}
	if len(names) > 0 {
		sort.Strings(names)
		return &DeadlockError{Parked: names}
	}
	return nil
}

// targetShard returns the shard an event belongs to when the global queue
// is split.
func (ev *event) targetShard() int {
	if ev.proc != nil && ev.proc.shd != nil {
		return ev.proc.shd.id
	}
	return int(ev.shard)
}

// runGlobalPhase drains the global queue serially (the classic kernel)
// until either the simulation completes (returns true) or no pin holds the
// engine global and pending events should run in parallel rounds instead
// (returns false).
func (e *Engine) runGlobalPhase() (done bool) {
	sh := e.sh
	for {
		if len(e.queue) == 0 {
			return true
		}
		if sh.pins.Load() == 0 {
			return false
		}
		ev := e.pop()
		e.now = ev.at
		if ev.proc == nil {
			e.current = nil
			e.stats.Callbacks++
			ev.fire()
			continue
		}
		e.transfer(ev.proc)
		<-e.root
	}
}

// globalDispatch is dispatch for processes of a sharded engine during the
// global phase. It matches the serial dispatch loop exactly, except that
// when the last pin has been released it returns the baton to the
// coordinator so pending events can run in parallel rounds; self's resume
// is already queued and will be delivered by its shard worker.
func (e *Engine) globalDispatch(self *Proc) {
	sh := e.sh
	for {
		if len(e.queue) == 0 || sh.pins.Load() == 0 {
			e.current = nil
			e.root <- struct{}{}
			if self != nil {
				<-self.resume
			}
			return
		}
		ev := e.pop()
		e.now = ev.at
		if ev.proc == nil {
			e.current = nil
			e.stats.Callbacks++
			ev.fire()
			continue
		}
		if ev.proc == self {
			e.current = self
			return
		}
		e.transfer(ev.proc)
		if self != nil {
			<-self.resume
		}
		return
	}
}

// mergeInbox delivers this shard's round-boundary mailboxes into its own
// queue, asserting conservativeness. It runs on the shard's worker during
// the merge phase, so the per-destination merges proceed concurrently;
// each worker touches only its own queue and clears only its own inboxes,
// and the coordinator's channel handshakes order every source shard's
// mailbox writes before this read.
func (s *shard) mergeInbox() {
	for src, box := range s.inbox {
		for _, ev := range box {
			if ev.at < s.now {
				panic(fmt.Sprintf("sim: conservative violation: event from shard %d at %d is in shard %d's past (clock %d, lookahead %d)",
					src, ev.at, s.id, s.now, s.eng.sh.lookahead))
			}
			s.queue = heapPush(s.queue, ev)
		}
		s.inbox[src] = s.inbox[src][:0]
	}
}

// mergeToGlobal folds every shard queue and pin-park resume into the
// global queue for a global phase. Heap order makes the result pop in
// (at, key) order regardless of shard iteration order.
func (e *Engine) mergeToGlobal() {
	for _, s := range e.sh.shards {
		for len(s.queue) > 0 {
			var ev event
			ev, s.queue = heapPop(s.queue)
			e.push(ev)
		}
		for _, ev := range s.pending {
			e.push(ev)
		}
		s.pending = s.pending[:0]
		s.current = nil
	}
}

// worker is a shard's host goroutine: it runs one quiescence round or one
// inbox merge per coordinator request. The coordinator never signals both
// channels at once, and closes runCh to retire the worker.
func (s *shard) worker() {
	for {
		select {
		case _, ok := <-s.runCh:
			if !ok {
				return
			}
			s.drain()
			s.doneCh <- struct{}{}
		case <-s.mergeCh:
			s.mergeInbox()
			s.doneCh <- struct{}{}
		}
	}
}

// drain runs the shard's queue to quiescence: the round ends when every
// process on the shard has parked, blocked on a future event, or exited.
func (s *shard) drain() {
	for len(s.queue) > 0 {
		var ev event
		ev, s.queue = heapPop(s.queue)
		s.stats.Events++
		s.now = ev.at
		if ev.proc == nil {
			s.current = nil
			s.stats.Callbacks++
			ev.fire()
			continue
		}
		s.transfer(ev.proc)
		<-s.root
	}
	s.current = nil
}

// transfer hands the shard baton to q (see Engine.transfer).
func (s *shard) transfer(q *Proc) {
	s.stats.Handoffs++
	s.current = q
	if !q.started {
		q.started = true
		go q.run()
		return
	}
	q.resume <- struct{}{}
}

// scheduleResume queues a resume of p on its shard at time t with a
// shard-banded key.
func (s *shard) scheduleResume(p *Proc, t Time) {
	s.seq++
	s.queue = heapPush(s.queue, event{at: t, key: s.key(s.seq), proc: p})
}

// dispatch is the shard-local dispatch loop, the parallel-round analogue
// of Engine.dispatch. When the shard quiesces it returns the baton to the
// shard worker; a blocked self resumes in a later round or global phase.
func (s *shard) dispatch(self *Proc) {
	for {
		if len(s.queue) == 0 {
			s.current = nil
			s.root <- struct{}{}
			if self != nil {
				<-self.resume
			}
			return
		}
		var ev event
		ev, s.queue = heapPop(s.queue)
		s.stats.Events++
		s.now = ev.at
		if ev.proc == nil {
			s.current = nil
			s.stats.Callbacks++
			ev.fire()
			continue
		}
		if ev.proc == self {
			s.current = self
			return
		}
		s.transfer(ev.proc)
		if self != nil {
			<-self.resume
		}
		return
	}
}

// advanceSharded is Proc.Advance for processes of a sharded engine, in
// both phases. The fast/slow path split is identical to the serial kernel,
// applied to whichever queue+clock currently governs the process.
func (p *Proc) advanceSharded(d Time) {
	e := p.eng
	if !e.sh.parallel {
		if d > 0 && (len(e.queue) == 0 || e.queue[0].at > e.now+d) {
			e.now += d
			e.stats.FastAdvances++
			return
		}
		e.scheduleResume(p, e.now+d)
		e.globalDispatch(p)
		return
	}
	s := p.shd
	if d > 0 && (len(s.queue) == 0 || s.queue[0].at > s.now+d) {
		s.now += d
		s.stats.FastAdvances++
		return
	}
	s.scheduleResume(p, s.now+d)
	s.dispatch(p)
}
