// Package core assembles the Itoyori runtime: the cached PGAS layer
// (internal/pgas) underneath the child-first distributed work-stealing
// scheduler (internal/uth), with release/acquire fences inserted at
// fork-join points exactly as Fig. 5 of the paper prescribes, and the lazy
// release protocol of Fig. 6 driven from the scheduler's polling points.
//
// This is the paper's primary contribution; the public ityr package at the
// module root re-exports it with typed (generic) helpers.
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"ityr/internal/fault"
	"ityr/internal/metrics"
	"ityr/internal/netmodel"
	"ityr/internal/pgas"
	"ityr/internal/prof"
	"ityr/internal/profile"
	"ityr/internal/rma"
	"ityr/internal/sim"
	"ityr/internal/trace"
	"ityr/internal/uth"
)

// Config assembles the whole simulated machine and runtime.
type Config struct {
	// Ranks is the total number of workers (one process per core).
	Ranks int
	// CoresPerNode groups ranks into nodes (48 in the paper's machine).
	CoresPerNode int
	// Net overrides the network model (defaults to netmodel.Default).
	Net *netmodel.Params
	// Pgas tunes the cache system (block size, cache size, policy...).
	Pgas pgas.Config
	// Sched tunes the work-stealing scheduler.
	Sched uth.Config
	// Seed seeds schedule randomness; same seed ⇒ identical run.
	Seed int64
	// Trace enables event tracing (Runtime.Trace): task segments and
	// fork/join edges, steal and fence spans, and cache events with
	// virtual timestamps.
	Trace bool
	// TraceRing bounds the trace to the most recent TraceRing events per
	// rank (ring buffer); 0 keeps everything.
	TraceRing int
	// Profile enables the constant-memory streaming profile
	// (internal/profile): online per-rank rollups, the locality-tiered
	// communication matrix and the occupancy timeline, all O(1) state per
	// rank. Independent of Trace — at large rank counts it is the layer
	// that still fits when span rings cannot — and digest-inert: recording
	// never advances virtual time, so simulated results are bit-identical
	// with it on or off.
	Profile bool
	// Overlap enables communication-computation overlap (§8 future work):
	// while a checkout's remote fetch is in flight, the rank runs other
	// ready tasks instead of stalling.
	Overlap bool
	// HostProcs shards the simulated ranks across this many host worker
	// goroutines (sim.NewEngineShards): SPMD/RMA phases execute in
	// parallel conservative rounds, while fork-join regions pin the engine
	// to its globally serialized phase (their steal protocol interacts at
	// sub-lookahead granularity). 0 or 1 selects the serial engine. All
	// simulated observables — times, traffic stats, traces, digests — are
	// bit-identical across HostProcs values; only host wall-clock and
	// host-side EngineStats counters vary. Runs with Faults armed force
	// the serial engine: straggler windows are engine-global callbacks.
	HostProcs int
	// Faults, when non-nil, arms the deterministic fault-injection plan:
	// link-degradation windows in the network model, transient RMA
	// failures with retry/backoff, straggler windows scheduled as engine
	// callbacks, and silent-data-corruption streams. Runs with the same
	// plan (same seed) are bit-identical; a nil plan leaves every hot
	// path at a single nil-check.
	Faults *fault.Plan
	// SDC, when non-nil, arms the silent-data-corruption defenses:
	// selective task replication with digest compare on Protected
	// segments (SDC.Replicate of them re-execute on a replica rank) and
	// the RMA layer's end-to-end payload checksum (corrupted bulk
	// transfers retransmit instead of landing silently). Orthogonal to
	// Faults: defenses without a corruption plan measure pure overhead; a
	// corruption plan without defenses is the negative control whose
	// flips reach program output. Nil keeps every hot path at a
	// nil-check, adding zero simulated-time events (digest-pinned).
	SDC *uth.SDCConfig
}

func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 8
	}
	if c.Seed != 0 && c.Sched.Seed == 0 {
		c.Sched.Seed = c.Seed
	}
	if c.HostProcs == 0 {
		c.HostProcs = 1
	}
	return c
}

// Runtime is one simulated Itoyori instance: engine, interconnect, global
// address space and scheduler.
type Runtime struct {
	cfg     Config
	eng     *sim.Engine
	comm    *rma.Comm
	space   *pgas.Space
	sched   *uth.Sched
	prof    *prof.Profiler
	stream  *profile.Profile
	trace   *trace.Log
	metrics *metrics.Registry
	inj     *fault.Injector
	prot    *uth.Protector
}

// NewRuntime builds a runtime from cfg.
func NewRuntime(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	net := netmodel.Default(cfg.CoresPerNode)
	if cfg.Net != nil {
		net = *cfg.Net
		net.CoresPerNode = cfg.CoresPerNode
	}
	shards := cfg.HostProcs
	if shards > cfg.Ranks {
		shards = cfg.Ranks
	}
	if cfg.Faults != nil {
		// Straggler windows run as engine-global callbacks and link
		// perturbations consult a shared plan; keep those runs on the
		// serial engine rather than weaken the shard isolation argument.
		shards = 1
	}
	eng := sim.NewEngineShards(shards, net.MinLatency())
	var inj *fault.Injector
	if cfg.Faults != nil {
		inj = fault.NewInjector(*cfg.Faults, cfg.Ranks)
		net.Perturb = inj // link-degradation windows
	}
	comm := rma.New(eng, cfg.Ranks, net)
	if inj != nil {
		comm.SetFaults(inj) // transient RMA failures
		// Straggler windows: engine callbacks flip each rank's time scale
		// at the window boundaries (scheduled now, at virtual time zero,
		// so they precede all process resumes at the same instants).
		for _, sw := range inj.Plan().Stragglers {
			if sw.Rank < 0 || sw.Rank >= cfg.Ranks {
				continue
			}
			r := comm.Rank(sw.Rank)
			num, den := sw.Num, sw.Den
			eng.At(sw.From, func() { r.SetSlowdown(num, den) })
			if sw.To > sw.From {
				eng.At(sw.To, func() { r.SetSlowdown(0, 0) })
			}
		}
	}
	pr := prof.New(cfg.Ranks)
	space := pgas.New(comm, cfg.Pgas, pr)
	var tl *trace.Log
	if cfg.Trace {
		tl = trace.NewRing(cfg.TraceRing)
		tl.CoresPerNode = cfg.CoresPerNode
		space.TraceLog = tl
		comm.SetTrace(tl)
	}
	reg := metrics.NewRegistry()
	reg.Label("policy", space.Policy().String())
	reg.Gauge("ranks").Set(int64(cfg.Ranks))
	reg.Gauge("cores_per_node").Set(int64(cfg.CoresPerNode))
	space.MetricAcquireNs = reg.Histogram("pgas_acquire_ns", metrics.ExpBuckets(250, 2, 16))
	space.MetricReleaseNs = reg.Histogram("pgas_release_ns", metrics.ExpBuckets(250, 2, 16))
	space.MetricCheckoutBytes = reg.Histogram("pgas_checkout_bytes", metrics.ExpBuckets(64, 4, 12))
	sched := uth.NewSched(comm, cfg.Sched, hooks{space: space, trace: tl, eng: eng})
	sched.SetTrace(tl)
	if cfg.Pgas.Validate {
		// Validator diagnostics name the task segment running on the
		// offending rank; the scheduler knows the thread -> rank binding.
		space.TaskOf = func(rank int) int64 {
			return sched.CurrentTID(comm.Rank(rank).Proc())
		}
	}
	var stream *profile.Profile
	if cfg.Profile {
		stream = profile.New(cfg.Ranks, net)
		comm.SetProfile(stream)
		space.Profile = stream
		sched.Profile = stream
	}
	sched.StealLatency = reg.Histogram("uth_steal_latency_ns", trace.StealLatencyBounds)
	sched.FailedStealLatency = reg.Histogram("uth_failed_steal_latency_ns", trace.StealLatencyBounds)
	// The SDC protector exists whenever defenses are configured OR a plan
	// can corrupt task results: the latter case (defenses off) still needs
	// the protector's escape accounting for the negative control.
	var protector *uth.Protector
	if cfg.SDC != nil || (inj != nil && inj.TaskArmed()) {
		var sc uth.SDCConfig
		if cfg.SDC != nil {
			sc = *cfg.SDC
		}
		if sc.Seed == 0 {
			// Decorrelate selection from the scheduler's victim streams.
			sc.Seed = cfg.Seed + 1
		}
		protector = uth.NewProtector(sched, sc)
		if cfg.SDC != nil {
			// Defenses armed: the wire side gets the end-to-end payload
			// checksum with the same replay bound as task replication.
			comm.SetSDCVerify(protector.Config().MaxReplays)
		}
	}
	if cfg.Overlap {
		space.CommWait = func(l *pgas.Local) {
			until := l.Rank().PendingTime()
			if !sched.CommWait(until) {
				l.Rank().Flush() // SPMD-mode caller: block conventionally
			}
		}
	}
	return &Runtime{cfg: cfg, eng: eng, comm: comm, space: space, sched: sched,
		prof: pr, stream: stream, trace: tl, metrics: reg, inj: inj, prot: protector}
}

// Injector returns the armed fault injector (nil unless Config.Faults).
func (rt *Runtime) Injector() *fault.Injector { return rt.inj }

// Protector returns the SDC task-replication protector (nil unless
// Config.SDC or a task-corrupting fault plan is armed).
func (rt *Runtime) Protector() *uth.Protector { return rt.prot }

// Trace returns the event log (nil unless Config.Trace was set).
func (rt *Runtime) Trace() *trace.Log { return rt.trace }

// Profile returns the streaming profile collector (nil unless
// Config.Profile was set).
func (rt *Runtime) Profile() *profile.Profile { return rt.stream }

// WriteProfile writes the streaming-profile snapshot as indented
// "itoyori-profile/v1" JSON. It fails when profiling was not enabled.
func (rt *Runtime) WriteProfile(w io.Writer) error {
	if rt.stream == nil {
		return fmt.Errorf("core: profiling was not enabled (Config.Profile)")
	}
	return rt.stream.WriteJSON(w)
}

// Metrics returns the runtime's metrics registry (always present).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.metrics }

// MetricsSnapshot mirrors every layer's statistics into the registry and
// returns the combined snapshot ("itoyori-metrics/v1"). The live
// histograms (steal latency, fence costs, checkout sizes) are already in
// the registry; the counters below copy the layers' cheap accumulator
// structs so the hot paths never pay a map lookup.
func (rt *Runtime) MetricsSnapshot() metrics.Snapshot {
	reg := rt.metrics

	es := rt.eng.Stats()
	reg.Counter("sim_events_dispatched").Set(es.Events)
	reg.Counter("sim_fast_advances").Set(es.FastAdvances)
	reg.Counter("sim_handoffs").Set(es.Handoffs)
	reg.Counter("sim_callbacks").Set(es.Callbacks)
	reg.Counter("sim_spawns").Set(es.Spawns)
	// Host-side parallel-execution counters: how many quiesce rounds the
	// sharded engine ran and how many global->parallel splits it took.
	// Zero on a serial (HostProcs=1) run; like sim_handoffs these describe
	// the host's path through the simulation, not simulated behaviour, so
	// they are excluded from determinism digests.
	reg.Counter("sim_parallel_rounds").Set(es.Rounds)
	reg.Counter("sim_parallel_splits").Set(es.Splits)

	cs := rt.comm.Stats()
	reg.Counter("rma_get_ops").Set(cs.GetOps)
	reg.Counter("rma_put_ops").Set(cs.PutOps)
	reg.Counter("rma_atomic_ops").Set(cs.AtomicOps)
	reg.Counter("rma_get_bytes").Set(cs.GetBytes)
	reg.Counter("rma_put_bytes").Set(cs.PutBytes)
	reg.Counter("rma_flush_waits").Set(cs.FlushWaits)
	reg.Counter("rma_barriers").Set(cs.Barriers)
	reg.Counter("rma_retries").Set(cs.Retries)
	reg.Counter("rma_retry_stall_ns").Set(cs.RetryNs)

	ps := rt.space.Stats
	reg.Counter("pgas_checkout_calls").Set(ps.CheckoutCalls)
	reg.Counter("pgas_checkin_calls").Set(ps.CheckinCalls)
	reg.Counter("pgas_fetch_ops").Set(ps.FetchOps)
	reg.Counter("pgas_fetch_bytes").Set(ps.FetchBytes)
	reg.Counter("pgas_hit_bytes").Set(ps.HitBytes)
	reg.Counter("pgas_writeback_ops").Set(ps.WriteBackOps)
	reg.Counter("pgas_writeback_bytes").Set(ps.WriteBackBytes)
	reg.Counter("pgas_invalidations").Set(ps.Invalidations)
	reg.Counter("pgas_mmaps").Set(ps.Mmaps)
	reg.Counter("pgas_evictions").Set(ps.Evictions)
	reg.Counter("pgas_lazy_releases").Set(ps.LazyReleases)

	// Communication-batching counters (all zero unless the
	// CoalesceWriteBack / PrefetchBlocks knobs are on).
	bs := rt.space.Batch
	reg.Counter("pgas_wb_runs_merged").Set(bs.WBRunsMerged)
	reg.Counter("pgas_wb_coalesced_bytes").Set(bs.WBCoalescedBytes)
	reg.Counter("pgas_prefetch_ops").Set(bs.PrefetchOps)
	reg.Counter("pgas_prefetch_blocks").Set(bs.PrefetchedBlocks)
	reg.Counter("pgas_prefetch_bytes").Set(bs.PrefetchBytes)
	reg.Counter("pgas_prefetch_hits").Set(bs.PrefetchHits)
	reg.Counter("pgas_prefetch_misses").Set(bs.PrefetchMisses)

	us := rt.sched.Stats
	reg.Counter("uth_forks").Set(us.Forks)
	reg.Counter("uth_steals").Set(us.Steals)
	reg.Counter("uth_intra_steals").Set(us.IntraSteals)
	reg.Counter("uth_failed_steals").Set(us.FailedSteals)
	reg.Counter("uth_comm_waits").Set(us.CommWaits)
	reg.Counter("uth_migrations").Set(us.Migrations)
	reg.Counter("uth_steal_timeouts").Set(us.StealTimeouts)
	reg.Counter("uth_steal_blacklists").Set(us.Blacklists)
	reg.Counter("uth_blacklist_skips").Set(us.BlacklistSkips)

	// Ring-truncation observability: surfaced only when tracing is on, so
	// trace-free snapshots keep their historical key set.
	if rt.trace != nil {
		reg.Counter("trace_dropped_spans").Set(rt.trace.Dropped())
	}

	// Validator observability: surfaced only when checkout validation is
	// on, so validator-off snapshots keep their historical key set (and
	// stay bit-identical to pre-validator runs).
	if rt.space.Validating() {
		reg.Counter("pgas_validator_violations").Set(uint64(len(rt.space.Violations())))
	}

	// Fault-plan observability: surfaced only when a plan is armed, so
	// fault-free snapshots keep their historical key set.
	if rt.inj != nil {
		fs := rt.inj.Stats()
		reg.Counter("fault_injected_failures").Set(fs.Injected)
		reg.Counter("fault_budget_exhausted_ranks").Set(fs.BudgetExhausted)
		for i, v := range rt.comm.RetriesByRank() {
			reg.Counter(fmt.Sprintf("rma_retries_rank_%02d", i)).Set(v)
		}
	}

	// SDC observability: surfaced only when the protector exists (defenses
	// configured or a task-corrupting plan armed), preserving the key set
	// of every earlier snapshot schema. sdc_detected/sdc_recovered/
	// sdc_escaped combine the task (replication) and wire (checksum)
	// sides; the per-rank injected-vs-detected pairs feed the itytrace
	// resilience table.
	if rt.prot != nil {
		ts := rt.prot.Stats
		ws := rt.comm.SdcWire()
		reg.Counter("sdc_protected_tasks").Set(ts.Protected)
		reg.Counter("replica_tasks").Set(ts.Replicas)
		reg.Counter("sdc_detected").Set(ts.Detected + ws.Detected)
		reg.Counter("sdc_recovered").Set(ts.Recovered + ws.Retrans)
		reg.Counter("sdc_escaped").Set(ts.Escaped + ws.Escapes)
		reg.Counter("sdc_wire_flips").Set(ws.Flips)
		reg.Counter("sdc_wire_retrans").Set(ws.Retrans)
		if rt.inj != nil {
			fs := rt.inj.Stats()
			reg.Counter("sdc_injected_flips").Set(fs.WireFlips + fs.TaskFlips)
			wf := rt.inj.WireFlipsByRank()
			tf := rt.inj.TaskFlipsByRank()
			det := rt.prot.DetectedByRank()
			wdet := rt.comm.SdcWireDetectedByRank()
			esc := rt.prot.EscapedByRank()
			wesc := rt.comm.SdcWireEscapesByRank()
			for i := range wf {
				reg.Counter(fmt.Sprintf("sdc_injected_rank_%02d", i)).Set(wf[i] + tf[i])
				reg.Counter(fmt.Sprintf("sdc_detected_rank_%02d", i)).Set(det[i] + wdet[i])
				reg.Counter(fmt.Sprintf("sdc_escaped_rank_%02d", i)).Set(esc[i] + wesc[i])
			}
		}
	}

	return reg.Snapshot()
}

// WriteMetrics writes the metrics snapshot as indented JSON.
func (rt *Runtime) WriteMetrics(w io.Writer) error {
	return rt.MetricsSnapshot().WriteJSON(w)
}

// WriteTrace serializes the trace as an "itytrace/v1" dump for
// cmd/itytrace, embedding the run's metrics snapshot in the metadata. It
// fails when tracing was not enabled.
func (rt *Runtime) WriteTrace(w io.Writer) error {
	if rt.trace == nil {
		return fmt.Errorf("core: tracing was not enabled (Config.Trace)")
	}
	snap, err := json.Marshal(rt.MetricsSnapshot())
	if err != nil {
		return err
	}
	var profSnap json.RawMessage
	if rt.stream != nil {
		if profSnap, err = json.Marshal(rt.stream.Snapshot()); err != nil {
			return err
		}
	}
	var valSnap json.RawMessage
	if rt.space.Validating() {
		if valSnap, err = trace.MarshalValidator(rt.space.Violations()); err != nil {
			return err
		}
	}
	return rt.trace.WriteDump(w, trace.Meta{
		Ranks:        rt.cfg.Ranks,
		CoresPerNode: rt.cfg.CoresPerNode,
		Policy:       rt.space.Policy().String(),
		Metrics:      snap,
		Profile:      profSnap,
		Validator:    valSnap,
	})
}

// hooks wires the scheduler's synchronization points to the cache
// coherence fences (Fig. 5 placement, Fig. 6 lazy protocol) and, when
// enabled, the event tracer. Fork/steal/join edges themselves are
// recorded by the scheduler (it knows the thread IDs); the hooks record
// the fences as spans so fence cost is visible on the timeline.
type hooks struct {
	space *pgas.Space
	trace *trace.Log
	eng   *sim.Engine
}

// span runs fn and records it as a [t0, now) span of the given kind.
func (h hooks) span(rank int, k trace.Kind, arg int64, fn func()) {
	if h.trace == nil {
		fn()
		return
	}
	t0 := h.eng.Now()
	fn()
	h.trace.RecSpan(t0, h.eng.Now()-t0, rank, k, arg, 0)
}

func (h hooks) Poll(rank int) { h.space.Local(rank).Poll() }
func (h hooks) OnFork(rank int) any {
	return h.space.Local(rank).ReleaseLazy()
}
func (h hooks) OnSteal(rank int, handler any) {
	hd, _ := handler.(pgas.ReleaseHandler)
	h.span(rank, trace.KAcquire, int64(hd.Rank), func() {
		h.space.Local(rank).AcquireWith(hd)
	})
}
func (h hooks) OnSuspend(rank int) {
	h.span(rank, trace.KRelease, 0, func() {
		h.space.Local(rank).ReleaseFence()
	})
}
func (h hooks) OnChildStolenDone(rank int) {
	h.span(rank, trace.KRelease, 1, func() {
		h.space.Local(rank).ReleaseFence()
	})
}
func (h hooks) OnMigrateArrive(rank int) {
	h.span(rank, trace.KMigrate, 0, func() {
		h.space.Local(rank).AcquireFence()
	})
}

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Comm returns the communicator.
func (rt *Runtime) Comm() *rma.Comm { return rt.comm }

// Space returns the global address space.
func (rt *Runtime) Space() *pgas.Space { return rt.space }

// Sched returns the scheduler.
func (rt *Runtime) Sched() *uth.Sched { return rt.sched }

// Profiler returns the profiler.
func (rt *Runtime) Profiler() *prof.Profiler { return rt.prof }

// Config returns the runtime configuration after defaulting.
func (rt *Runtime) Config() Config { return rt.cfg }

// Run executes spmd once per rank (the program's SPMD mode, as launched by
// mpiexec) and drives the simulation to completion.
func (rt *Runtime) Run(spmd func(s *SPMD)) error {
	shards := rt.eng.Shards()
	for i := 0; i < rt.cfg.Ranks; i++ {
		r := rt.comm.Rank(i)
		s := &SPMD{rt: rt, rank: i, local: rt.space.Local(i)}
		// Rank-contiguous block partitioning onto host shards, so shard
		// assignment (and with it the parallel round structure) is a pure
		// function of (Ranks, HostProcs).
		rt.eng.SpawnOn(i*shards/rt.cfg.Ranks, fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			r.Attach(p)
			spmd(s)
		})
	}
	return rt.eng.Run()
}

// RunRoot is the common pattern: enter the fork-join region immediately and
// run body as the root thread. It returns the virtual time the region took.
func (rt *Runtime) RunRoot(body func(c *Ctx)) (sim.Time, error) {
	var elapsed sim.Time
	err := rt.Run(func(s *SPMD) {
		start := s.Now()
		s.RootExec(body)
		if s.Rank() == 0 {
			elapsed = s.Now() - start
		}
	})
	return elapsed, err
}

// SPMD is a rank's handle during the SPMD region.
type SPMD struct {
	rt    *Runtime
	rank  int
	local *pgas.Local
}

// Rank returns the rank number.
func (s *SPMD) Rank() int { return s.rank }

// NRanks returns the total number of ranks.
func (s *SPMD) NRanks() int { return s.rt.cfg.Ranks }

// Now returns the rank's current virtual time (its shard clock under
// parallel host execution).
func (s *SPMD) Now() sim.Time { return s.local.Rank().Proc().Now() }

// Local returns the rank's PGAS handle for SPMD-mode memory access.
func (s *SPMD) Local() *pgas.Local { return s.local }

// Barrier synchronizes all ranks (SPMD mode only).
func (s *SPMD) Barrier() { s.local.Rank().Barrier() }

// AllocCollective allocates distributed global memory; call on rank 0
// (it is modelled as a collective with every rank participating).
func (s *SPMD) AllocCollective(size uint64, d pgas.DistPolicy) pgas.Addr {
	return s.local.AllocCollective(size, d)
}

// RootExec switches from the SPMD region to the fork-join region: rank 0
// runs body as the root thread while every rank participates in work
// stealing. All ranks return when the root completes, with a consistent
// global memory view.
func (s *SPMD) RootExec(body func(c *Ctx)) {
	s.rt.sched.WorkerMain(s.rank, func(tb *uth.TB) {
		body(&Ctx{rt: s.rt, tb: tb})
	})
}

// Ctx is the handle a thread uses inside the fork-join region. It is valid
// only on the thread it was given to; the rank it refers to follows the
// thread across migrations.
type Ctx struct {
	rt *Runtime
	tb *uth.TB
}

// RankID returns the rank currently executing this thread (may change
// across Fork/Join).
func (c *Ctx) RankID() int { return c.tb.RankID() }

// Runtime returns the runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Local returns the executing rank's PGAS handle. Do not cache it across
// Fork/Join calls: the thread may migrate.
func (c *Ctx) Local() *pgas.Local { return c.rt.space.Local(c.tb.RankID()) }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.tb.Proc().Now() }

// Charge advances virtual time by d, modelling local computation.
func (c *Ctx) Charge(d sim.Time) { c.tb.Proc().Advance(d) }

// ChargeAs advances virtual time by d and attributes it to the named
// profiler category (e.g. "Serial Quicksort" in Fig. 9).
func (c *Ctx) ChargeAs(cat string, d sim.Time) {
	c.tb.Proc().Advance(d)
	c.rt.prof.AddName(cat, c.tb.RankID(), d)
}

// Yield lets long-running leaf code service lazy-release polls.
func (c *Ctx) Yield() { c.tb.Yield() }

// Protected executes fn — a fork-free task segment returning a 64-bit
// result — under the silent-data-corruption protocol. With neither
// defenses nor a task-corrupting plan armed it is exactly fn() (zero
// simulated-time events, digest-pinned). Otherwise a seeded fraction of
// calls (Config.SDC.Replicate) re-execute on a replica rank and compare
// a streaming digest over the segment's committed writes and result,
// re-running on mismatch and fail-stopping past MaxReplays; unreplicated
// calls under a corrupting plan may have one bit of their writes (or of
// their result, if they write nothing) flipped — a real escape.
//
// fn must be fork-free and replay-stable: re-executed from the same
// committed state it must produce the same bytes (idempotent overwrites
// and pure results qualify; read-modify-write accumulation does not).
func (c *Ctx) Protected(fn func() uint64) uint64 {
	rt := c.rt
	prot := rt.prot
	if prot == nil {
		return fn()
	}
	rank := c.tb.RankID()
	victim, selected := prot.Pick(rank)
	if !selected {
		// Unreplicated execution: an armed task-corruption stream may
		// corrupt this segment for real. The flip lands in the first view
		// the segment commits, or in the return value if it commits none.
		if rt.inj != nil {
			if sig, ok := rt.inj.CorruptTask(c.Now(), rank); ok {
				l := c.Local()
				l.SdcArmFlip(sig)
				ret := fn()
				if !l.SdcTakeFlip() {
					ret ^= 1 << (sig & 63)
				}
				prot.NoteEscape(rank)
				return ret
			}
		}
		return fn()
	}
	exec := func() (uint64, uint64) {
		l := c.Local()
		var sig uint64
		corrupted := false
		if rt.inj != nil {
			sig, corrupted = rt.inj.CorruptTask(c.Now(), rank)
		}
		l.SdcArmDigest()
		ret := fn()
		dig := (l.SdcTakeDigest() ^ ret) * 0x100000001b3
		if corrupted {
			// Deferred flip: under replication a corrupted execution folds
			// its flip into the digest instead of touching memory, so the
			// mismatch is guaranteed even for segments that read their own
			// output back (e.g. re-sorting an in-place-sorted leaf could
			// otherwise reproduce a survivable flip bit-for-bit), and the
			// accepted clean pair leaves memory exactly right.
			dig ^= sig
		}
		return ret, dig
	}
	return prot.Replicate(c.tb, victim, exec)
}

// Checkout claims [addr, addr+size) in the given mode, returning a view.
func (c *Ctx) Checkout(addr pgas.Addr, size uint64, mode pgas.Mode) ([]byte, error) {
	return c.Local().Checkout(addr, size, mode)
}

// MustCheckout is Checkout that panics on error, for workloads whose
// accesses are statically known to fit the cache.
func (c *Ctx) MustCheckout(addr pgas.Addr, size uint64, mode pgas.Mode) []byte {
	v, err := c.Local().Checkout(addr, size, mode)
	if err != nil {
		panic(fmt.Sprintf("core: checkout(%#x,%d,%v): %v", addr, size, mode, err))
	}
	return v
}

// Checkin completes the matching Checkout.
func (c *Ctx) Checkin(addr pgas.Addr, size uint64, mode pgas.Mode) {
	if err := c.Local().Checkin(addr, size, mode); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
}

// AllocLocal allocates from the executing rank's noncollective heap.
func (c *Ctx) AllocLocal(size uint64) pgas.Addr { return c.Local().AllocLocal(size) }

// FreeLocal frees a noncollective allocation.
func (c *Ctx) FreeLocal(addr pgas.Addr, size uint64) {
	if err := c.Local().FreeLocal(addr, size); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
}

// Thread is a forked child handle.
type Thread = uth.Thread

// Fork spawns fn as a child thread, running it immediately (child-first)
// and exposing this thread's continuation to thieves. Any checkouts must be
// checked in before calling Fork (threads can migrate here).
func (c *Ctx) Fork(fn func(*Ctx)) *Thread {
	c.assertNoCheckouts("Fork")
	rt := c.rt
	return c.tb.Fork(func(tb *uth.TB) {
		fn(&Ctx{rt: rt, tb: tb})
	})
}

// Join waits for a forked child; the thread may resume on another rank.
func (c *Ctx) Join(t *Thread) {
	c.assertNoCheckouts("Join")
	c.tb.Join(t)
}

func (c *Ctx) assertNoCheckouts(op string) {
	if n := c.Local().OutstandingCheckouts(); n != 0 {
		panic(fmt.Sprintf("core: %s with %d outstanding checkout(s); checkouts must not span fork-join points (§3.3)", op, n))
	}
}

// ParallelInvoke forks all closures but the last, runs the last inline, and
// joins — the parallel_invoke() of Fig. 1.
func (c *Ctx) ParallelInvoke(fns ...func(*Ctx)) {
	if len(fns) == 0 {
		return
	}
	ths := make([]*Thread, len(fns)-1)
	for i := 0; i < len(fns)-1; i++ {
		ths[i] = c.Fork(fns[i])
	}
	fns[len(fns)-1](c)
	for _, th := range ths {
		c.Join(th)
	}
}

// ParallelFor recursively splits [lo, hi) until ranges are at most grain
// long, then runs body on each leaf range in parallel. This is the
// range-based high-level pattern of §3.3 that also keeps each leaf's
// checkouts within cache capacity.
func (c *Ctx) ParallelFor(lo, hi, grain int64, body func(c *Ctx, lo, hi int64)) {
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		body(c, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	th := c.Fork(func(c *Ctx) { c.ParallelFor(lo, mid, grain, body) })
	c.ParallelFor(mid, hi, grain, body)
	c.Join(th)
}
