package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ityr/internal/pgas"
)

// TestDAGConsistencyWithExtensions re-runs the central coherence test with
// the node-shared cache and locality-aware stealing enabled, in all
// combinations — the extensions must not weaken SC-for-DRF.
func TestDAGConsistencyWithExtensions(t *testing.T) {
	const depth = 7
	for _, shared := range []bool{false, true} {
		for _, locality := range []bool{false, true} {
			for _, pol := range []pgas.Policy{pgas.WriteThrough, pgas.WriteBackLazy} {
				shared, locality, pol := shared, locality, pol
				t.Run(fmt.Sprintf("shared=%v/loc=%v/%v", shared, locality, pol), func(t *testing.T) {
					cfg := cfgFor(8, pol, 31)
					cfg.CoresPerNode = 4
					cfg.Pgas.SharedCache = shared
					cfg.Sched.LocalityAware = locality
					rt := NewRuntime(cfg)
					var rootVal int64
					nNodes := int64(1<<(depth+1)) - 1
					err := rt.Run(func(s *SPMD) {
						var base pgas.Addr
						if s.Rank() == 0 {
							base = s.AllocCollective(uint64(nNodes*8), pgas.BlockCyclicDist)
						}
						s.Barrier()
						s.RootExec(func(c *Ctx) {
							dagNode(c, base, 0, depth)
							v := c.MustCheckout(base, 8, pgas.Read)
							rootVal = int64(binary.LittleEndian.Uint64(v))
							c.Checkin(base, 8, pgas.Read)
						})
					})
					if err != nil {
						t.Fatal(err)
					}
					if want := int64(1 << depth); rootVal != want {
						t.Fatalf("root = %d, want %d", rootVal, want)
					}
				})
			}
		}
	}
}
