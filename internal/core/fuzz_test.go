package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ityr/internal/pgas"
	"ityr/internal/sim"
)

// TestRandomDAGPrograms generates random data-race-free fork-join programs
// and checks every read against a host-side reference executed with the
// same DAG semantics. Programs are random trees in which every task owns a
// disjoint set of cells it may write, reads its children's cells after
// joining them, and occasionally re-reads cells written by completed
// subtasks — stressing fences, caching, eviction and stealing under many
// schedules and configurations.
func TestRandomDAGPrograms(t *testing.T) {
	configs := []struct {
		ranks  int
		cpn    int
		pol    pgas.Policy
		shared bool
	}{
		{4, 2, pgas.WriteBackLazy, false},
		{8, 4, pgas.WriteBack, false},
		{8, 4, pgas.WriteThrough, false},
		{8, 4, pgas.NoCache, false},
		{8, 4, pgas.WriteBackLazy, true},
	}
	f := func(seed int64) bool {
		for ci, cc := range configs {
			if !runRandomDAG(t, seed, ci, cc.ranks, cc.cpn, cc.pol, cc.shared) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// dagSpec is a random task-tree specification, generated once per seed and
// interpreted both by the simulated runtime and by a host reference.
type dagSpec struct {
	nCells   int64
	children [][]int   // task -> child task ids
	cells    [][]int64 // task -> owned cell ids (disjoint across tasks)
	work     []sim.Time
}

func genDAG(rng *rand.Rand) *dagSpec {
	d := &dagSpec{}
	nTasks := 20 + rng.Intn(40)
	d.children = make([][]int, nTasks)
	d.cells = make([][]int64, nTasks)
	d.work = make([]sim.Time, nTasks)
	// Random tree over task ids 0..nTasks-1 (parent < child).
	for i := 1; i < nTasks; i++ {
		p := rng.Intn(i)
		d.children[p] = append(d.children[p], i)
	}
	// Disjoint cell ownership: a few cells per task.
	next := int64(0)
	for i := 0; i < nTasks; i++ {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			d.cells[i] = append(d.cells[i], next)
			next++
		}
		d.work[i] = sim.Time(rng.Intn(20)) * sim.Microsecond
	}
	d.nCells = next
	return d
}

// hostRun computes the expected final cell values: each task writes
// f(task, sum of its children's first cells) into its own cells.
func (d *dagSpec) hostRun() []uint64 {
	vals := make([]uint64, d.nCells)
	var rec func(task int) uint64
	rec = func(task int) uint64 {
		var childSum uint64
		for _, ch := range d.children[task] {
			childSum += rec(ch)
		}
		v := uint64(task)*2654435761 + childSum + 1
		for _, cell := range d.cells[task] {
			vals[cell] = v
		}
		return v
	}
	rec(0)
	return vals
}

func runRandomDAG(t *testing.T, seed int64, ci, ranks, cpn int, pol pgas.Policy, shared bool) bool {
	return runRandomDAGWith(t, seed, ci, ranks, cpn, pol, shared, false)
}

func runRandomDAGWith(t *testing.T, seed int64, ci, ranks, cpn int, pol pgas.Policy, shared, overlap bool, mut ...func(*Config)) bool {
	rng := rand.New(rand.NewSource(seed))
	d := genDAG(rng)
	want := d.hostRun()

	cfg := Config{
		Ranks:        ranks,
		CoresPerNode: cpn,
		Pgas: pgas.Config{
			BlockSize: 512, SubBlockSize: 64, CacheSize: 8192,
			Policy: pol, SharedCache: shared,
		},
		Seed:    seed ^ int64(ci)<<8,
		Overlap: overlap,
	}
	for _, m := range mut {
		m(&cfg)
	}
	rt := NewRuntime(cfg)
	got := make([]uint64, d.nCells)
	readCell := func(c *Ctx, base pgas.Addr, cell int64) uint64 {
		v := c.MustCheckout(base+pgas.Addr(cell*8), 8, pgas.Read)
		x := binary.LittleEndian.Uint64(v)
		c.Checkin(base+pgas.Addr(cell*8), 8, pgas.Read)
		return x
	}
	writeCell := func(c *Ctx, base pgas.Addr, cell int64, v uint64) {
		w := c.MustCheckout(base+pgas.Addr(cell*8), 8, pgas.Write)
		binary.LittleEndian.PutUint64(w, v)
		c.Checkin(base+pgas.Addr(cell*8), 8, pgas.Write)
	}
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(uint64(d.nCells*8), pgas.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *Ctx) {
			var run func(c *Ctx, task int) uint64
			run = func(c *Ctx, task int) uint64 {
				c.Charge(d.work[task])
				kids := d.children[task]
				sums := make([]uint64, len(kids))
				if len(kids) > 0 {
					fns := make([]func(*Ctx), len(kids))
					for i, ch := range kids {
						i, ch := i, ch
						fns[i] = func(c *Ctx) { sums[i] = run(c, ch) }
					}
					c.ParallelInvoke(fns...)
				}
				var childSum uint64
				for i, ch := range kids {
					// Cross-check via global memory: the child's first
					// cell must hold what the child returned.
					if g := readCell(c, base, d.cells[ch][0]); g != sums[i] {
						panic(fmt.Sprintf("task %d read child %d cell as %d, want %d", task, ch, g, sums[i]))
					}
					childSum += sums[i]
				}
				v := uint64(task)*2654435761 + childSum + 1
				for _, cell := range d.cells[task] {
					writeCell(c, base, cell, v)
				}
				return v
			}
			run(c, 0)
			// Final sweep: read everything back inside the region.
			for cell := int64(0); cell < d.nCells; cell++ {
				got[cell] = readCell(c, base, cell)
			}
		})
	})
	if err != nil {
		t.Logf("seed %d config %d: %v", seed, ci, err)
		return false
	}
	for cell := range want {
		if got[cell] != want[cell] {
			t.Logf("seed %d config %d (pol=%v shared=%v): cell %d = %d, want %d",
				seed, ci, pol, shared, cell, got[cell], want[cell])
			return false
		}
	}
	return true
}
