package core

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ityr/internal/pgas"
	"ityr/internal/sim"
	"ityr/internal/trace"
)

// validateCfg is the machine every validator test runs on: small blocks so
// a few bytes exercise real cache traffic, multiple nodes so continuations
// migrate, and the validator armed.
func validateCfg(hostProcs int) Config {
	return Config{
		Ranks:        4,
		CoresPerNode: 2,
		Pgas: pgas.Config{
			BlockSize: 512, SubBlockSize: 64, CacheSize: 8192,
			Policy: pgas.WriteBackLazy, Validate: true,
		},
		Seed:      7,
		HostProcs: hostProcs,
	}
}

// runOverlapScenario stages the canonical concurrent-checkout violation: a
// forked child checks out [base, base+64) in childMode and holds the view
// for 100 µs of virtual compute, while the parent's stolen continuation
// checks out the overlapping [base+32, base+96) in contMode. It returns
// the recorded violations and the fail-fast error the overlapping checkout
// observed.
func runOverlapScenario(t *testing.T, childMode, contMode pgas.Mode, hostProcs int) ([]trace.ViolationRecord, error) {
	t.Helper()
	rt := NewRuntime(validateCfg(hostProcs))
	var vioErr error
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(4096, pgas.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *Ctx) {
			child := c.Fork(func(c *Ctx) {
				if _, err := c.Checkout(base, 64, childMode); err != nil {
					vioErr = err
					return
				}
				c.Charge(100 * sim.Microsecond)
				c.Checkin(base, 64, childMode)
			})
			if _, err := c.Checkout(base+32, 64, contMode); err != nil {
				vioErr = err
			} else {
				c.Checkin(base+32, 64, contMode)
			}
			c.Join(child)
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt.Space().Violations(), vioErr
}

// checkViolation asserts one recorded violation of the wanted rule whose
// diagnostic names the rule, a resolvable window, a nonempty offset range,
// and both parties' task segments.
func checkViolation(t *testing.T, recs []trace.ViolationRecord, vioErr error, rule string) trace.ViolationRecord {
	t.Helper()
	if vioErr == nil {
		t.Fatalf("expected a fail-fast %s error, checkout succeeded", rule)
	}
	if !errors.Is(vioErr, pgas.ErrViolation) {
		t.Fatalf("error %v does not wrap pgas.ErrViolation", vioErr)
	}
	if !strings.Contains(vioErr.Error(), rule) {
		t.Fatalf("error %q does not name rule %q", vioErr, rule)
	}
	if len(recs) != 1 {
		t.Fatalf("recorded %d violations, want 1: %+v", len(recs), recs)
	}
	v := recs[0]
	if v.Rule != rule {
		t.Fatalf("recorded rule %q, want %q", v.Rule, rule)
	}
	if v.Win < 0 {
		t.Fatalf("violation window unresolved: %+v", v)
	}
	if v.Hi <= v.Lo {
		t.Fatalf("empty violating range: %+v", v)
	}
	if v.Task == 0 || v.OtherTask == 0 {
		t.Fatalf("violation does not name both task segments: %+v", v)
	}
	if !strings.Contains(v.Detail, rule[:0]+"task") {
		t.Fatalf("detail %q does not mention tasks", v.Detail)
	}
	return v
}

func TestValidatorWriteUnderRead(t *testing.T) {
	recs, vioErr := runOverlapScenario(t, pgas.Read, pgas.ReadWrite, 0)
	v := checkViolation(t, recs, vioErr, "write-under-read")
	if v.Rank == v.OtherRank {
		t.Fatalf("expected a cross-rank overlap (stolen continuation), got both on rank %d", v.Rank)
	}
}

func TestValidatorConflictingCheckouts(t *testing.T) {
	recs, vioErr := runOverlapScenario(t, pgas.Write, pgas.Write, 0)
	checkViolation(t, recs, vioErr, "conflicting-checkouts")
}

// TestValidatorReadUnderWrite is the symmetric write-under-read case: the
// reader arrives second.
func TestValidatorReadUnderWrite(t *testing.T) {
	recs, vioErr := runOverlapScenario(t, pgas.ReadWrite, pgas.Read, 0)
	checkViolation(t, recs, vioErr, "write-under-read")
}

func TestValidatorUseAfterCheckin(t *testing.T) {
	rt := NewRuntime(validateCfg(0))
	var vioErr error
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(4096, pgas.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *Ctx) {
			if _, err := c.Checkout(base, 64, pgas.ReadWrite); err != nil {
				t.Errorf("checkout: %v", err)
				return
			}
			c.Checkin(base, 64, pgas.ReadWrite)
			// The discipline break: checking the same rights in again.
			vioErr = c.Local().Checkin(base, 64, pgas.ReadWrite)
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkViolation(t, rt.Space().Violations(), vioErr, "use-after-checkin")
}

func TestValidatorUnreleasedWrite(t *testing.T) {
	rt := NewRuntime(validateCfg(0))
	var vioErr error
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(4096, pgas.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *Ctx) {
			// Block 2 of the block-cyclic allocation homes on rank 2 —
			// on the other *node* from the writer (who runs on rank 0,
			// node 0). Intra-node homes are shared memory, so a checkin
			// there lands home-visible immediately; only a cross-node
			// home keeps the checked-in bytes dirty in the writer's
			// cache, which is what makes the read below unordered.
			cell := base + 1024
			// Writer child: commits a write, then keeps computing so its
			// rank runs no release fence before the reader looks. Under
			// WriteBackLazy the fork-time release is deferred, so nothing
			// homes the write for remote readers.
			a := c.Fork(func(c *Ctx) {
				w, err := c.Checkout(cell, 8, pgas.Write)
				if err != nil {
					t.Errorf("writer checkout: %v", err)
					return
				}
				binary.LittleEndian.PutUint64(w, 42)
				c.Checkin(cell, 8, pgas.Write)
				c.Charge(300 * sim.Microsecond)
			})
			// Reader child: forked by the stolen continuation on another
			// rank; reads the writer's bytes with no intervening
			// release->acquire chain — the lost-update family of races.
			b := c.Fork(func(c *Ctx) {
				c.Charge(50 * sim.Microsecond)
				if _, err := c.Checkout(cell, 8, pgas.Read); err != nil {
					vioErr = err
					return
				}
				c.Checkin(cell, 8, pgas.Read)
			})
			c.Join(b)
			c.Join(a)
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	v := checkViolation(t, rt.Space().Violations(), vioErr, "unreleased-write")
	if v.Rank == v.OtherRank {
		t.Fatalf("unreleased-write between tasks on the same rank %d should not fire (own cache)", v.Rank)
	}
}

// TestValidatorCleanRuns runs properly synchronized random DAG programs
// with the validator armed: every checkout is disciplined and every
// cross-rank read follows a release->acquire chain, so validation must
// stay silent (a violation would fail the checkout, panicking the DAG's
// MustCheckout) and the results must stay correct.
func TestValidatorCleanRuns(t *testing.T) {
	seed := int64(7212503127583136179) // the ROADMAP item 5 regression seed
	validate := func(cfg *Config) { cfg.Pgas.Validate = true }
	cases := []struct {
		name   string
		ci     int
		ranks  int
		cpn    int
		pol    pgas.Policy
		shared bool
	}{
		{"SharedWriteBackLazy", 4, 8, 4, pgas.WriteBackLazy, true},
		{"WriteBackLazy", 0, 4, 2, pgas.WriteBackLazy, false},
		{"WriteBack", 1, 8, 4, pgas.WriteBack, false},
		{"WriteThrough", 2, 8, 4, pgas.WriteThrough, false},
		{"NoCache", 3, 8, 4, pgas.NoCache, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !runRandomDAGWith(t, seed, tc.ci, tc.ranks, tc.cpn, tc.pol, tc.shared, false, validate) {
				t.Fatalf("validated run of seed %d (%v) produced wrong cell values", seed, tc.pol)
			}
		})
	}
}

// TestValidatorShardParity runs the same violating program on the serial
// engine and on four host shards: the violation report (every field of
// every record) must be identical, because fork-join regions execute in
// the globally serialized engine phase regardless of sharding.
func TestValidatorShardParity(t *testing.T) {
	serialRecs, serialErr := runOverlapScenario(t, pgas.Read, pgas.ReadWrite, 1)
	shardRecs, shardErr := runOverlapScenario(t, pgas.Read, pgas.ReadWrite, 4)
	checkViolation(t, serialRecs, serialErr, "write-under-read")
	checkViolation(t, shardRecs, shardErr, "write-under-read")
	if !reflect.DeepEqual(serialRecs, shardRecs) {
		t.Fatalf("violation reports diverge:\nserial:  %+v\nsharded: %+v", serialRecs, shardRecs)
	}
}

// TestValidatorOffZeroAllocs pins the validator-off hot path: a warm
// read-hit checkout/checkin pair allocates nothing on the host, so leaving
// the validator off costs only its nil checks.
func TestValidatorOffZeroAllocs(t *testing.T) {
	cfg := validateCfg(0)
	cfg.Ranks, cfg.CoresPerNode = 2, 1 // two nodes: block 1 is remote to rank 0
	cfg.Pgas.Validate = false
	rt := NewRuntime(cfg)
	var allocs float64
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(4096, pgas.BlockCyclicDist)
		}
		s.Barrier()
		if s.Rank() != 0 {
			return
		}
		// Block 1 of the block-cyclic array is homed on rank 1 — a
		// different node, so rank 0 reaches it through the cache path.
		addr := base + 512
		l := s.Local()
		touch := func() {
			v, err := l.Checkout(addr, 64, pgas.Read)
			if err != nil || len(v) != 64 {
				t.Errorf("checkout: %v (%d bytes)", err, len(v))
			}
			if err := l.Checkin(addr, 64, pgas.Read); err != nil {
				t.Errorf("checkin: %v", err)
			}
		}
		touch() // warm: fetch the sub-block, fill the view/piece pools
		allocs = testing.AllocsPerRun(100, touch)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("validator-off warm checkout/checkin allocates %.1f objects per op, want 0", allocs)
	}
}

// TestSetPolicyRuntimeSwitch exercises per-space runtime reconfiguration:
// switching the write policy between fork-join phases works once the space
// is quiescent, refuses while a checkout is outstanding, and the data
// written under the old policy stays readable under the new one.
func TestSetPolicyRuntimeSwitch(t *testing.T) {
	cfg := validateCfg(0)
	cfg.Pgas.Policy = pgas.WriteBack
	rt := NewRuntime(cfg)
	sp := rt.Space()
	err := rt.Run(func(s *SPMD) {
		var base pgas.Addr
		if s.Rank() == 0 {
			base = s.AllocCollective(4096, pgas.BlockCyclicDist)
		}
		s.Barrier()

		// Not quiescent: rank 1 holds a checkout (of its own noncollective
		// memory — the collective base is only known to rank 0's closure),
		// so reconfiguration must refuse with ErrNotQuiescent.
		if s.Rank() == 1 {
			mine := s.Local().AllocLocal(64)
			if _, err := s.Local().Checkout(mine, 8, pgas.Read); err != nil {
				t.Errorf("checkout: %v", err)
			}
			if err := sp.SetPolicy(pgas.WriteThrough); !errors.Is(err, pgas.ErrNotQuiescent) {
				t.Errorf("SetPolicy under outstanding checkout: got %v, want ErrNotQuiescent", err)
			}
			if err := s.Local().Checkin(mine, 8, pgas.Read); err != nil {
				t.Errorf("checkin: %v", err)
			}
		}
		s.Barrier()

		// Phase 1: write the cells under WriteBack.
		s.RootExec(func(c *Ctx) {
			c.ParallelFor(0, 64, 8, func(c *Ctx, lo, hi int64) {
				w := c.MustCheckout(base+pgas.Addr(lo*8), uint64(hi-lo)*8, pgas.Write)
				for i := lo; i < hi; i++ {
					binary.LittleEndian.PutUint64(w[(i-lo)*8:], uint64(i)*3+1)
				}
				c.Checkin(base+pgas.Addr(lo*8), uint64(hi-lo)*8, pgas.Write)
			})
		})

		// Quiesce: flush every rank's dirty data, then switch policies
		// from one rank while the rest sit at the barrier.
		s.Local().ReleaseFence()
		s.Barrier()
		if s.Rank() == 0 {
			if err := sp.SetPolicy(pgas.WriteBackLazy); err != nil {
				t.Errorf("SetPolicy(WriteBackLazy): %v", err)
			}
			if err := sp.SetPrefetchBlocks(3); err != nil {
				t.Errorf("SetPrefetchBlocks(3): %v", err)
			}
		}
		s.Barrier()

		// Phase 2: read everything back under the new policy.
		s.RootExec(func(c *Ctx) {
			c.ParallelFor(0, 64, 8, func(c *Ctx, lo, hi int64) {
				v := c.MustCheckout(base+pgas.Addr(lo*8), uint64(hi-lo)*8, pgas.Read)
				for i := lo; i < hi; i++ {
					if got := binary.LittleEndian.Uint64(v[(i-lo)*8:]); got != uint64(i)*3+1 {
						t.Errorf("cell %d = %d after policy switch, want %d", i, got, uint64(i)*3+1)
					}
				}
				c.Checkin(base+pgas.Addr(lo*8), uint64(hi-lo)*8, pgas.Read)
			})
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := sp.Policy(); got != pgas.WriteBackLazy {
		t.Fatalf("policy after switch = %v, want WriteBackLazy", got)
	}
	if got := sp.PrefetchBlocks(); got != 3 {
		t.Fatalf("prefetch depth after switch = %d, want 3", got)
	}
}
