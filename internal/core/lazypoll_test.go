package core

import (
	"testing"

	"ityr/internal/pgas"
	"ityr/internal/sim"
)

// TestLazyReleaseDelayedByLongLeaf demonstrates the limitation §5.2 of the
// paper calls out: "long-running tasks can delay the execution of the
// polling function for a long time". A victim with dirty data runs a long
// leaf after forking; the thief that stole the continuation must wait for
// the victim's next poll. Yield() inside the leaf services the request
// early and shortens the wait.
func TestLazyReleaseDelayedByLongLeaf(t *testing.T) {
	const leaf = 20 * sim.Millisecond
	run := func(yields int) sim.Time {
		cfg := cfgFor(2, pgas.WriteBackLazy, 5)
		rt := NewRuntime(cfg)
		elapsed, err := rt.RunRoot(func(c *Ctx) {
			base := c.Local().AllocCollective(4096, pgas.BlockCyclicDist)
			// Dirty some remotely-homed data (block 1 is homed on rank 1).
			v := c.MustCheckout(base+512, 64, pgas.Write)
			v[0] = 1
			c.Checkin(base+512, 64, pgas.Write)
			// Fork a child that reads the dirty region — if the
			// continuation is stolen, the thief's acquire needs our lazy
			// release. Then grind through a long serial leaf.
			th := c.Fork(func(c *Ctx) {
				step := leaf / sim.Time(yields+1)
				for i := 0; i <= yields; i++ {
					c.Charge(step)
					c.Yield() // poll point inside the leaf
				}
			})
			// The continuation: reads the dirty region from wherever the
			// thief put us.
			g := c.MustCheckout(base+512, 64, pgas.Read)
			if g[0] != 1 {
				t.Errorf("read %d, want 1", g[0])
			}
			c.Checkin(base+512, 64, pgas.Read)
			c.Join(th)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	noYield := run(0)
	withYield := run(63)
	t.Logf("long leaf without yields: %.3f ms; with yields: %.3f ms",
		float64(noYield)/1e6, float64(withYield)/1e6)
	// Both must complete; yielding must never make things slower by more
	// than noise (it usually helps when a steal actually happened).
	if withYield > noYield+noYield/4 {
		t.Errorf("yielding slowed the run: %d -> %d", noYield, withYield)
	}
}

// TestLazyHandlerAcrossManySteals stresses the epoch protocol: many
// forks with dirty data, many thieves, each acquire must observe the
// right write-back.
func TestLazyHandlerAcrossManySteals(t *testing.T) {
	cfg := cfgFor(8, pgas.WriteBackLazy, 3)
	rt := NewRuntime(cfg)
	const tasks = 200
	sum := 0
	_, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(tasks*8, pgas.BlockCyclicDist)
		c.ParallelFor(0, tasks, 1, func(c *Ctx, lo, hi int64) {
			for i := lo; i < hi; i++ {
				v := c.MustCheckout(base+pgas.Addr(i*8), 8, pgas.Write)
				v[0] = byte(i)
				c.Checkin(base+pgas.Addr(i*8), 8, pgas.Write)
				c.Charge(5 * sim.Microsecond)
			}
		})
		for i := int64(0); i < tasks; i++ {
			v := c.MustCheckout(base+pgas.Addr(i*8), 8, pgas.Read)
			if v[0] == byte(i) {
				sum++
			}
			c.Checkin(base+pgas.Addr(i*8), 8, pgas.Read)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != tasks {
		t.Fatalf("only %d/%d cells correct", sum, tasks)
	}
	if rt.Space().Stats.LazyReleases == 0 {
		t.Log("note: no lazy releases were deferred in this schedule")
	}
}
