package core

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/pgas"
	"ityr/internal/sim"
)

func TestRunRootElapsed(t *testing.T) {
	rt := NewRuntime(cfgFor(2, pgas.WriteBack, 1))
	elapsed, err := rt.RunRoot(func(c *Ctx) {
		c.Charge(5 * sim.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 5*sim.Millisecond {
		t.Fatalf("elapsed %d below charged work", elapsed)
	}
}

func TestMustCheckoutPanicsOnBadAddr(t *testing.T) {
	rt := NewRuntime(cfgFor(1, pgas.WriteBack, 1))
	panicked := false
	_, err := rt.RunRoot(func(c *Ctx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.MustCheckout(0x42, 8, pgas.Read)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("MustCheckout of garbage address did not panic")
	}
}

func TestUnmatchedCheckinPanics(t *testing.T) {
	rt := NewRuntime(cfgFor(1, pgas.WriteBack, 1))
	panicked := false
	_, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(64, pgas.BlockDist)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.Checkin(base, 64, pgas.Read) // never checked out
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("unmatched checkin did not panic")
	}
}

func TestParallelForDegenerateRanges(t *testing.T) {
	rt := NewRuntime(cfgFor(2, pgas.WriteBackLazy, 1))
	count := 0
	_, err := rt.RunRoot(func(c *Ctx) {
		c.ParallelFor(5, 5, 4, func(c *Ctx, lo, hi int64) { count++ }) // empty
		c.ParallelFor(0, 3, 0, func(c *Ctx, lo, hi int64) {            // grain clamped to 1
			count += int(hi - lo)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Empty range still invokes the body once with an empty interval per
	// the recursive base case; tolerate 0 or 1 invocations but the second
	// loop must cover exactly 3 indices.
	if count != 3 && count != 4 {
		t.Fatalf("count = %d", count)
	}
}

func TestParallelInvokeEmptyAndSingle(t *testing.T) {
	rt := NewRuntime(cfgFor(2, pgas.WriteBack, 1))
	ran := 0
	_, err := rt.RunRoot(func(c *Ctx) {
		c.ParallelInvoke() // no-op
		c.ParallelInvoke(func(c *Ctx) { ran++ })
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestChargeAsAccumulates(t *testing.T) {
	rt := NewRuntime(cfgFor(1, pgas.WriteBack, 1))
	_, err := rt.RunRoot(func(c *Ctx) {
		c.ChargeAs("Phase A", 100*sim.Microsecond)
		c.ChargeAs("Phase A", 50*sim.Microsecond)
		c.ChargeAs("Phase B", 25*sim.Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Profiler().Total("Phase A"); got != 150*sim.Microsecond {
		t.Fatalf("Phase A = %d", got)
	}
	if got := rt.Profiler().Total("Phase B"); got != 25*sim.Microsecond {
		t.Fatalf("Phase B = %d", got)
	}
}

func TestNetOverride(t *testing.T) {
	// A custom (much slower) network must visibly slow a comm-heavy run.
	run := func() sim.Time {
		cfg := cfgFor(4, pgas.NoCache, 2)
		rt := NewRuntime(cfg)
		elapsed, err := rt.RunRoot(func(c *Ctx) {
			base := c.Local().AllocCollective(1<<16, pgas.BlockDist)
			c.ParallelFor(0, 64, 1, func(c *Ctx, lo, hi int64) {
				v := c.MustCheckout(base, 1<<14, pgas.Read)
				_ = v
				c.Checkin(base, 1<<14, pgas.Read)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	fast := run()
	// Slow variant via Net override.
	cfg := cfgFor(4, pgas.NoCache, 2)
	net := netmodel.Default(cfg.CoresPerNode)
	net.Latency *= 50
	net.Bandwidth /= 50
	net.IntraLatency *= 50
	net.IntraBandwidth /= 50
	cfg.Net = &net
	rt := NewRuntime(cfg)
	slow, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(1<<16, pgas.BlockDist)
		c.ParallelFor(0, 64, 1, func(c *Ctx, lo, hi int64) {
			v := c.MustCheckout(base, 1<<14, pgas.Read)
			_ = v
			c.Checkin(base, 1<<14, pgas.Read)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Fatalf("50x slower network did not slow execution: %d vs %d", slow, fast)
	}
}
