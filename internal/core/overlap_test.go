package core

import (
	"encoding/binary"
	"testing"

	"ityr/internal/pgas"
	"ityr/internal/sim"
)

// overlapWorkload: many tasks each fetch a remote region (cache miss) and
// then compute. Without overlap the fetch latency serializes with compute;
// with overlap the rank runs the next task during the fetch.
func overlapWorkload(t *testing.T, overlap bool) (sim.Time, int64) {
	t.Helper()
	cfg := Config{
		Ranks:        2,
		CoresPerNode: 1, // two nodes: every fetch crosses the network
		Pgas: pgas.Config{
			BlockSize: 4096, SubBlockSize: 4096, CacheSize: 1 << 20,
			Policy: pgas.WriteBackLazy,
		},
		Seed:    9,
		Overlap: overlap,
	}
	rt := NewRuntime(cfg)
	const tasks = 64
	var sum int64
	_, err := rt.RunRoot(func(c *Ctx) {
		// One block per task, homed alternately on both ranks.
		base := c.Local().AllocCollective(tasks*4096, pgas.BlockCyclicDist)
		var rec func(c *Ctx, lo, hi int64)
		rec = func(c *Ctx, lo, hi int64) {
			if hi-lo == 1 {
				addr := base + pgas.Addr(lo*4096)
				v := c.MustCheckout(addr, 4096, pgas.ReadWrite) // miss: remote or local
				binary.LittleEndian.PutUint64(v, uint64(lo+1))
				c.ChargeAs("Compute", 2*sim.Microsecond)
				c.Checkin(addr, 4096, pgas.ReadWrite)
				return
			}
			mid := (lo + hi) / 2
			th := c.Fork(func(c *Ctx) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Join(th)
		}
		rec(c, 0, tasks)
		for i := int64(0); i < tasks; i++ {
			v := c.MustCheckout(base+pgas.Addr(i*4096), 8, pgas.Read)
			sum += int64(binary.LittleEndian.Uint64(v))
			c.Checkin(base+pgas.Addr(i*4096), 8, pgas.Read)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt.Engine().Now(), sum
}

func TestOverlapPreservesResults(t *testing.T) {
	_, sumOff := overlapWorkload(t, false)
	_, sumOn := overlapWorkload(t, true)
	want := int64(64 * 65 / 2)
	if sumOff != want || sumOn != want {
		t.Fatalf("sums: off=%d on=%d want=%d", sumOff, sumOn, want)
	}
}

func TestOverlapDoesNotRegressBadly(t *testing.T) {
	off, _ := overlapWorkload(t, false)
	on, _ := overlapWorkload(t, true)
	t.Logf("fetch-heavy workload: blocking %.3f ms vs overlap %.3f ms", float64(off)/1e6, float64(on)/1e6)
	if on > off+off/10 {
		t.Errorf("overlap slowed execution: %d -> %d", off, on)
	}
}

// TestOverlapUnderFuzz re-runs the random-DAG coherence fuzz with overlap
// enabled: interleaving other tasks during a paused checkout must never
// break SC-for-DRF.
func TestOverlapUnderFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rngCfg := []struct {
			pol    pgas.Policy
			shared bool
		}{
			{pgas.WriteBackLazy, false},
			{pgas.WriteBack, false},
			{pgas.WriteBackLazy, true},
		}
		for ci, cc := range rngCfg {
			if !runRandomDAGOverlap(t, seed, ci, cc.pol, cc.shared) {
				t.Fatalf("seed %d config %d failed under overlap", seed, ci)
			}
		}
	}
}

func runRandomDAGOverlap(t *testing.T, seed int64, ci int, pol pgas.Policy, shared bool) bool {
	ok := runRandomDAGWith(t, seed, ci, 8, 4, pol, shared, true)
	return ok
}

func TestOverlapActuallyEngages(t *testing.T) {
	cfg := Config{
		Ranks:        2,
		CoresPerNode: 1,
		Pgas: pgas.Config{
			BlockSize: 4096, SubBlockSize: 4096, CacheSize: 1 << 20,
			Policy: pgas.WriteBackLazy,
		},
		Seed:    9,
		Overlap: true,
	}
	rt := NewRuntime(cfg)
	_, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(64*4096, pgas.BlockCyclicDist)
		c.ParallelFor(0, 64, 1, func(c *Ctx, lo, hi int64) {
			addr := base + pgas.Addr(lo*4096)
			v := c.MustCheckout(addr, 4096, pgas.Read)
			_ = v
			c.Charge(2 * sim.Microsecond)
			c.Checkin(addr, 4096, pgas.Read)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Sched().Stats.CommWaits == 0 {
		t.Fatal("overlap enabled but CommWait never engaged")
	}
	t.Logf("comm waits overlapped: %d", rt.Sched().Stats.CommWaits)
}
