package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ityr/internal/pgas"
	"ityr/internal/sim"
)

func cfgFor(ranks int, pol pgas.Policy, seed int64) Config {
	return Config{
		Ranks:        ranks,
		CoresPerNode: 4,
		Pgas:         pgas.Config{BlockSize: 512, SubBlockSize: 64, CacheSize: 16384, Policy: pol},
		Seed:         seed,
	}
}

func TestParallelSumAllPoliciesAllRanks(t *testing.T) {
	const n = 1024
	for _, pol := range pgas.Policies {
		for _, ranks := range []int{1, 2, 8} {
			pol, ranks := pol, ranks
			t.Run(fmt.Sprintf("%v/%dr", pol, ranks), func(t *testing.T) {
				rt := NewRuntime(cfgFor(ranks, pol, 7))
				var total int64
				err := rt.Run(func(s *SPMD) {
					var base pgas.Addr
					if s.Rank() == 0 {
						base = s.AllocCollective(n*8, pgas.BlockCyclicDist)
						// Initialize from the SPMD region with PUT.
						buf := make([]byte, n*8)
						for i := 0; i < n; i++ {
							binary.LittleEndian.PutUint64(buf[i*8:], uint64(i))
						}
						if err := s.Local().Put(buf, base); err != nil {
							t.Error(err)
						}
					}
					s.Barrier()
					s.RootExec(func(c *Ctx) {
						total = sumRange(c, base, 0, n)
					})
				})
				if err != nil {
					t.Fatal(err)
				}
				want := int64(n * (n - 1) / 2)
				if total != want {
					t.Fatalf("sum = %d, want %d", total, want)
				}
			})
		}
	}
}

// sumRange sums global int64 cells [lo,hi) by parallel divide and conquer.
func sumRange(c *Ctx, base pgas.Addr, lo, hi int64) int64 {
	if hi-lo <= 64 {
		c.Charge(sim.Time(hi-lo) * 20)
		v := c.MustCheckout(base+pgas.Addr(lo*8), uint64((hi-lo)*8), pgas.Read)
		var s int64
		for i := int64(0); i < hi-lo; i++ {
			s += int64(binary.LittleEndian.Uint64(v[i*8:]))
		}
		c.Checkin(base+pgas.Addr(lo*8), uint64((hi-lo)*8), pgas.Read)
		return s
	}
	mid := (lo + hi) / 2
	var a, b int64
	c.ParallelInvoke(
		func(c *Ctx) { a = sumRange(c, base, lo, mid) },
		func(c *Ctx) { b = sumRange(c, base, mid, hi) },
	)
	return a + b
}

// TestDAGConsistency is the central coherence test: a task tree where each
// leaf writes its own global cell and every internal node reads its
// children's cells after joining them. Any missing release/acquire fence or
// stale cache line breaks the root sum. Runs across policies, rank counts
// and seeds (different seeds ⇒ different steal schedules).
func TestDAGConsistency(t *testing.T) {
	const depth = 7 // 128 leaves, 255 nodes
	for _, pol := range pgas.Policies {
		for _, ranks := range []int{2, 8} {
			for seed := int64(1); seed <= 3; seed++ {
				pol, ranks, seed := pol, ranks, seed
				t.Run(fmt.Sprintf("%v/%dr/s%d", pol, ranks, seed), func(t *testing.T) {
					rt := NewRuntime(cfgFor(ranks, pol, seed))
					var rootVal int64
					nNodes := int64(1<<(depth+1)) - 1
					err := rt.Run(func(s *SPMD) {
						var base pgas.Addr
						if s.Rank() == 0 {
							base = s.AllocCollective(uint64(nNodes*8), pgas.BlockCyclicDist)
						}
						s.Barrier()
						s.RootExec(func(c *Ctx) {
							dagNode(c, base, 0, depth)
							v := c.MustCheckout(base, 8, pgas.Read)
							rootVal = int64(binary.LittleEndian.Uint64(v))
							c.Checkin(base, 8, pgas.Read)
						})
					})
					if err != nil {
						t.Fatal(err)
					}
					if want := int64(1 << depth); rootVal != want {
						t.Fatalf("root = %d, want %d (policy %v)", rootVal, want, pol)
					}
					if ranks > 1 && rt.Sched().Stats.Steals == 0 {
						t.Logf("note: no steals occurred for seed %d", seed)
					}
				})
			}
		}
	}
}

// dagNode writes into cell idx: leaves write 1, internal nodes write the
// sum of their children's cells (heap indexing: children of i are 2i+1,
// 2i+2). Mixed compute times make steal schedules diverse.
func dagNode(c *Ctx, base pgas.Addr, idx int64, depth int) {
	if depth == 0 {
		c.Charge(sim.Time(5+idx%7) * sim.Microsecond)
		v := c.MustCheckout(base+pgas.Addr(idx*8), 8, pgas.ReadWrite)
		binary.LittleEndian.PutUint64(v, uint64(1))
		c.Checkin(base+pgas.Addr(idx*8), 8, pgas.ReadWrite)
		return
	}
	l, r := 2*idx+1, 2*idx+2
	c.ParallelInvoke(
		func(c *Ctx) { dagNode(c, base, l, depth-1) },
		func(c *Ctx) { dagNode(c, base, r, depth-1) },
	)
	c.Charge(2 * sim.Microsecond)
	lv := c.MustCheckout(base+pgas.Addr(l*8), 8, pgas.Read)
	a := binary.LittleEndian.Uint64(lv)
	c.Checkin(base+pgas.Addr(l*8), 8, pgas.Read)
	rv := c.MustCheckout(base+pgas.Addr(r*8), 8, pgas.Read)
	b := binary.LittleEndian.Uint64(rv)
	c.Checkin(base+pgas.Addr(r*8), 8, pgas.Read)
	ov := c.MustCheckout(base+pgas.Addr(idx*8), 8, pgas.Write)
	binary.LittleEndian.PutUint64(ov, a+b)
	c.Checkin(base+pgas.Addr(idx*8), 8, pgas.Write)
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	const n = 1000
	rt := NewRuntime(cfgFor(4, pgas.WriteBackLazy, 3))
	hits := make([]int32, n)
	_, err := rt.RunRoot(func(c *Ctx) {
		c.ParallelFor(0, n, 16, func(c *Ctx, lo, hi int64) {
			c.Charge(sim.Time(hi-lo) * 100)
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (sim.Time, uint64) {
		rt := NewRuntime(cfgFor(8, pgas.WriteBackLazy, 99))
		elapsed, err := rt.RunRoot(func(c *Ctx) {
			c.ParallelFor(0, 256, 8, func(c *Ctx, lo, hi int64) {
				c.Charge(sim.Time(hi-lo) * sim.Microsecond)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, rt.Sched().Stats.Steals
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, s1, e2, s2)
	}
}

func TestCheckoutAcrossForkPanics(t *testing.T) {
	rt := NewRuntime(cfgFor(2, pgas.WriteBack, 1))
	panicked := false
	_, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(256, pgas.BlockDist)
		c.MustCheckout(base, 8, pgas.Read)
		func() {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			c.Fork(func(*Ctx) {})
		}()
		c.Checkin(base, 8, pgas.Read)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("fork with outstanding checkout did not panic")
	}
}

func TestCachingBeatsNoCacheOnReuseWorkload(t *testing.T) {
	// Many tasks repeatedly read the same remote region: with caching the
	// fetch happens once per rank; without, every task communicates. This
	// is the paper's core claim in miniature.
	run := func(pol pgas.Policy) sim.Time {
		cfg := cfgFor(8, pol, 5)
		// Paper-like geometry: the whole region is one block, so a
		// cache hit costs one table lookup instead of one RMA.
		cfg.Pgas = pgas.Config{BlockSize: 16 << 10, SubBlockSize: 2 << 10, CacheSize: 128 << 10, Policy: pol}
		rt := NewRuntime(cfg)
		elapsed, err := rt.RunRoot(func(c *Ctx) {
			base := c.Local().AllocCollective(16<<10, pgas.BlockDist) // homed on rank 0
			c.ParallelFor(0, 512, 1, func(c *Ctx, lo, hi int64) {
				v := c.MustCheckout(base, 16<<10, pgas.Read)
				_ = v[0]
				c.Charge(2 * sim.Microsecond)
				c.Checkin(base, 16<<10, pgas.Read)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	noCache := run(pgas.NoCache)
	cached := run(pgas.WriteBackLazy)
	if cached >= noCache {
		t.Fatalf("caching (%d ns) not faster than no-cache (%d ns) on reuse workload", cached, noCache)
	}
	if ratio := float64(noCache) / float64(cached); ratio < 1.3 {
		t.Errorf("cache speedup only %.2fx, expected >= 1.3x", ratio)
	}
}

func TestProfilerCategoriesPopulated(t *testing.T) {
	rt := NewRuntime(cfgFor(4, pgas.WriteBackLazy, 11))
	elapsed, err := rt.RunRoot(func(c *Ctx) {
		base := c.Local().AllocCollective(8192, pgas.BlockCyclicDist)
		c.ParallelFor(0, 1024, 64, func(c *Ctx, lo, hi int64) {
			v := c.MustCheckout(base+pgas.Addr(lo*8), uint64((hi-lo)*8), pgas.ReadWrite)
			for i := range v {
				v[i]++
			}
			c.ChargeAs("Serial Work", sim.Time(hi-lo)*50)
			c.Checkin(base+pgas.Addr(lo*8), uint64((hi-lo)*8), pgas.ReadWrite)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Profiler()
	if p.Total("Checkout") == 0 || p.Total("Checkin") == 0 {
		t.Error("checkout/checkin time not recorded")
	}
	if p.Total("Serial Work") == 0 {
		t.Error("app category not recorded")
	}
	bd := p.Breakdown(elapsed)
	if bd["Others"] < 0 {
		t.Error("negative Others time")
	}
}

func TestAllocFreeInsideTasks(t *testing.T) {
	rt := NewRuntime(cfgFor(4, pgas.WriteBackLazy, 2))
	_, err := rt.RunRoot(func(c *Ctx) {
		c.ParallelFor(0, 64, 1, func(c *Ctx, lo, hi int64) {
			addr := c.AllocLocal(128)
			v := c.MustCheckout(addr, 128, pgas.Write)
			v[0] = byte(lo)
			c.Checkin(addr, 128, pgas.Write)
			g := c.MustCheckout(addr, 128, pgas.Read)
			if g[0] != byte(lo) {
				t.Errorf("task %d read back %d", lo, g[0])
			}
			c.Checkin(addr, 128, pgas.Read)
			c.FreeLocal(addr, 128)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
