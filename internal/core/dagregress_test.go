package core

import (
	"testing"

	"ityr/internal/pgas"
)

// TestRandomDAGRegressions pins previously-failing random-DAG seeds as a
// permanent table: the ROADMAP item 5 shared-cache WriteBackLazy lost-write
// (seed 7212503127583136179) plus the same seed across the other policies,
// so a coherence regression in any policy path trips deterministically
// rather than waiting for testing/quick to rediscover the seed.
func TestRandomDAGRegressions(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		ci     int
		ranks  int
		cpn    int
		pol    pgas.Policy
		shared bool
	}{
		// The ROADMAP item 5 repro: lost write under SharedCache +
		// WriteBackLazy, fixed by the checkout-discipline validator PR.
		{"SharedWriteBackLazy", 7212503127583136179, 4, 8, 4, pgas.WriteBackLazy, true},
		{"WriteBackLazy", 7212503127583136179, 0, 4, 2, pgas.WriteBackLazy, false},
		{"WriteBack", 7212503127583136179, 1, 8, 4, pgas.WriteBack, false},
		{"WriteThrough", 7212503127583136179, 2, 8, 4, pgas.WriteThrough, false},
		{"NoCache", 7212503127583136179, 3, 8, 4, pgas.NoCache, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !runRandomDAG(t, tc.seed, tc.ci, tc.ranks, tc.cpn, tc.pol, tc.shared) {
				t.Fatalf("seed %d (pol=%v shared=%v) produced wrong cell values", tc.seed, tc.pol, tc.shared)
			}
		})
	}
}
