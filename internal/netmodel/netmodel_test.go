package netmodel

import (
	"testing"
	"testing/quick"

	"ityr/internal/sim"
)

func TestTopology(t *testing.T) {
	p := Default(4)
	if p.Node(0) != 0 || p.Node(3) != 0 || p.Node(4) != 1 || p.Node(11) != 2 {
		t.Fatal("node mapping wrong for 4 cores/node")
	}
	if !p.SameNode(0, 3) || p.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	z := Params{} // CoresPerNode 0 → every rank its own node
	if z.Node(7) != 7 {
		t.Fatal("degenerate topology wrong")
	}
}

func TestCostOrdering(t *testing.T) {
	p := Default(4)
	const n = 4096
	local := p.TransferTime(2, 2, n)
	intra := p.TransferTime(0, 2, n)
	inter := p.TransferTime(0, 5, n)
	if !(local < intra && intra < inter) {
		t.Fatalf("cost ordering violated: local=%d intra=%d inter=%d", local, intra, inter)
	}
	if p.AtomicTime(0, 0) >= p.AtomicTime(0, 1) {
		t.Fatal("local atomic should be cheapest")
	}
	if p.AtomicTime(0, 1) >= p.AtomicTime(0, 5) {
		t.Fatal("intra-node atomic should be cheaper than inter-node")
	}
}

func TestTransferMonotonicInSize(t *testing.T) {
	p := Default(2)
	f := func(a, b uint16) bool {
		x, y := int(a)%1000, int(b)%1000
		small, big := x, y
		if small > big {
			small, big = big, small
		}
		return p.TransferTime(0, 3, small) <= p.TransferTime(0, 3, big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationExcludesLatency(t *testing.T) {
	p := Default(1)
	n := 6000
	st := p.SerializationTime(0, 1, n)
	tt := p.TransferTime(0, 1, n)
	if st >= tt {
		t.Fatalf("serialization %d should be below full transfer %d", st, tt)
	}
	if p.SerializationTime(1, 1, n) != 0 {
		t.Fatal("self serialization should be free")
	}
}

// stubPerturber adds fixed extras, recording what base it was handed.
type stubPerturber struct {
	extra    sim.Time
	lastBase sim.Time
}

func (s *stubPerturber) TransferExtra(now sim.Time, a, b, n int, base sim.Time) sim.Time {
	s.lastBase = base
	return s.extra
}

func (s *stubPerturber) AtomicExtra(now sim.Time, a, b int, base sim.Time) sim.Time {
	s.lastBase = base
	return s.extra
}

// TestAtVariantsMatchBaseWithoutPerturber: the time-aware cost variants
// are exactly the base model when no Perturber is set.
func TestAtVariantsMatchBaseWithoutPerturber(t *testing.T) {
	p := Default(4)
	for _, n := range []int{0, 8, 4096} {
		if got, want := p.TransferTimeAt(123, 0, 5, n), p.TransferTime(0, 5, n); got != want {
			t.Errorf("TransferTimeAt(n=%d) = %d, want base %d", n, got, want)
		}
	}
	if got, want := p.AtomicTimeAt(123, 0, 5), p.AtomicTime(0, 5); got != want {
		t.Errorf("AtomicTimeAt = %d, want base %d", got, want)
	}
	if got := p.TransferExtraAt(123, 0, 5, 64, 1000); got != 0 {
		t.Errorf("TransferExtraAt without perturber = %d, want 0", got)
	}
}

// TestAtVariantsApplyPerturber: with a Perturber set the variants add its
// extra for remote pairs and hand it the unperturbed base, but never
// perturb rank-local operations.
func TestAtVariantsApplyPerturber(t *testing.T) {
	p := Default(4)
	stub := &stubPerturber{extra: 777}
	p.Perturb = stub
	base := p.TransferTime(0, 5, 256)
	if got := p.TransferTimeAt(9, 0, 5, 256); got != base+777 {
		t.Errorf("TransferTimeAt = %d, want base %d + 777", got, base)
	}
	if stub.lastBase != base {
		t.Errorf("perturber saw base %d, want %d", stub.lastBase, base)
	}
	abase := p.AtomicTime(0, 5)
	if got := p.AtomicTimeAt(9, 0, 5); got != abase+777 {
		t.Errorf("AtomicTimeAt = %d, want base %d + 777", got, abase)
	}
	if got := p.TransferExtraAt(9, 0, 5, 256, 1000); got != 777 {
		t.Errorf("TransferExtraAt = %d, want 777", got)
	}
	// Local operations bypass the fabric and must stay unperturbed.
	if got, want := p.TransferTimeAt(9, 3, 3, 256), p.TransferTime(3, 3, 256); got != want {
		t.Errorf("local TransferTimeAt = %d, want unperturbed %d", got, want)
	}
	if got := p.TransferExtraAt(9, 3, 3, 256, 1000); got != 0 {
		t.Errorf("local TransferExtraAt = %d, want 0", got)
	}
}

func TestMinLatency(t *testing.T) {
	p := Default(8)
	if got := p.MinLatency(); got != p.IntraLatency {
		t.Errorf("default MinLatency = %d, want intra-node latency %d", got, p.IntraLatency)
	}
	p.IntraLatency = 0 // single-core nodes: no intra-node hops configured
	if got := p.MinLatency(); got != p.Latency {
		t.Errorf("MinLatency with no intra latency = %d, want %d", got, p.Latency)
	}
	p.IntraLatency = p.Latency * 2 // inter-node is the floor
	if got := p.MinLatency(); got != p.Latency {
		t.Errorf("MinLatency = %d, want inter-node latency %d", got, p.Latency)
	}
}

// TestMinLatencyDegenerate: every zero tier is skipped symmetrically, so a
// Params with any single latency configured yields that latency, and the
// all-zero Params yields zero rather than silently picking one tier's zero
// as a "minimum" (the historical bug guarded IntraLatency but not Latency).
func TestMinLatencyDegenerate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want sim.Time
	}{
		{"all zero", Params{}, 0},
		{"fabric only", Params{Latency: 900}, 900},
		{"intra only, zero fabric", Params{IntraLatency: 250}, 250},
		{"rack tier set but inactive (NodesPerRack 0)",
			Params{Latency: 900, RackLatency: 500}, 900},
		{"rack below fabric", Params{CoresPerNode: 4, NodesPerRack: 2,
			Latency: 900, RackLatency: 500}, 500},
		{"rack unset falls back to fabric", Params{CoresPerNode: 4,
			NodesPerRack: 2, Latency: 900}, 900},
		{"intra floor under three tiers", Params{CoresPerNode: 4,
			NodesPerRack: 2, Latency: 900, RackLatency: 500,
			IntraLatency: 250}, 250},
		{"single-node machine, intra only", Params{CoresPerNode: 64,
			IntraLatency: 250}, 250},
		{"single rank, fabric configured", Params{CoresPerNode: 1,
			Latency: 1200}, 1200},
	}
	for _, tc := range cases {
		if got := tc.p.MinLatency(); got != tc.want {
			t.Errorf("%s: MinLatency = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRackTopology: rack indexing and the tier predicate.
func TestRackTopology(t *testing.T) {
	p := Default(4)
	p.NodesPerRack = 2 // ranks 0-7 rack 0, 8-15 rack 1, ...
	if p.Rack(0) != 0 || p.Rack(7) != 0 || p.Rack(8) != 1 || p.Rack(17) != 2 {
		t.Fatal("rack mapping wrong for 4 cores/node, 2 nodes/rack")
	}
	if !p.SameRack(3, 7) || p.SameRack(7, 8) {
		t.Fatal("SameRack wrong")
	}
	// No rack tier: every node is its own rack.
	q := Default(4)
	if q.Rack(5) != q.Node(5) {
		t.Fatal("rackless Rack should equal Node")
	}
	if q.rackTier(0, 5) {
		t.Fatal("rackTier must be off when NodesPerRack <= 0")
	}
	if p.rackTier(0, 2) {
		t.Fatal("same-node pairs never travel the rack tier")
	}
	if !p.rackTier(0, 5) {
		t.Fatal("distinct nodes of one rack travel the rack tier")
	}
	if p.rackTier(0, 9) {
		t.Fatal("cross-rack pairs travel the fabric, not the rack tier")
	}
}

// TestThreeTierCosts: with a rack tier configured the cost functions select
// among three tiers, ordered local < intra-node < intra-rack < fabric, and
// partially specified rack params fall back to the fabric numbers.
func TestThreeTierCosts(t *testing.T) {
	p := Default(4)
	p.NodesPerRack = 2
	p.RackLatency = 600 * sim.Nanosecond
	p.RackBandwidth = 10.0
	p.RackAtomicRTT = 1300 * sim.Nanosecond
	const n = 4096
	local := p.TransferTime(2, 2, n)
	intra := p.TransferTime(0, 2, n)  // same node
	rack := p.TransferTime(0, 5, n)   // same rack, different node
	fabric := p.TransferTime(0, 9, n) // different rack
	if !(local < intra && intra < rack && rack < fabric) {
		t.Fatalf("three-tier ordering violated: local=%d intra=%d rack=%d fabric=%d",
			local, intra, rack, fabric)
	}
	if got, want := rack, p.RackLatency+sim.Time(float64(n)/p.RackBandwidth); got != want {
		t.Errorf("rack TransferTime = %d, want %d", got, want)
	}
	if st := p.SerializationTime(0, 5, n); st != sim.Time(float64(n)/p.RackBandwidth) {
		t.Errorf("rack SerializationTime = %d, want %d", st, sim.Time(float64(n)/p.RackBandwidth))
	}
	if at := p.AtomicTime(0, 5); at != p.RackAtomicRTT {
		t.Errorf("rack AtomicTime = %d, want %d", at, p.RackAtomicRTT)
	}
	if at := p.AtomicTime(0, 9); at != p.AtomicRTT {
		t.Errorf("fabric AtomicTime = %d, want %d", at, p.AtomicRTT)
	}
	// Partial rack tier: unset fields inherit the fabric values, so rack
	// links never undercut the fabric by omission.
	q := Default(4)
	q.NodesPerRack = 2
	if q.TransferTime(0, 5, n) != q.TransferTime(0, 9, n) {
		t.Error("unset rack params should price rack links as fabric")
	}
	if q.AtomicTime(0, 5) != q.AtomicRTT {
		t.Error("unset RackAtomicRTT should fall back to fabric AtomicRTT")
	}
	if q.MinLatency() != Default(4).MinLatency() {
		t.Error("unset rack latency must not change MinLatency")
	}
}

// TestTwoTierDefaultUnchanged: with NodesPerRack at its zero default the
// cost model is bit-identical to the classic two-tier one — the rack fields
// are dead weight. This is the contract that keeps all pre-rack golden
// digests valid.
func TestTwoTierDefaultUnchanged(t *testing.T) {
	p := Default(4)
	r := p
	r.RackLatency = 600 * sim.Nanosecond // set but inert: NodesPerRack == 0
	r.RackBandwidth = 10.0
	r.RackAtomicRTT = 1300 * sim.Nanosecond
	for _, pair := range [][2]int{{0, 0}, {0, 2}, {0, 5}, {0, 13}, {3, 4}} {
		a, b := pair[0], pair[1]
		for _, n := range []int{0, 8, 4096} {
			if p.TransferTime(a, b, n) != r.TransferTime(a, b, n) {
				t.Errorf("TransferTime(%d,%d,%d) changed with inert rack fields", a, b, n)
			}
			if p.SerializationTime(a, b, n) != r.SerializationTime(a, b, n) {
				t.Errorf("SerializationTime(%d,%d,%d) changed with inert rack fields", a, b, n)
			}
		}
		if p.AtomicTime(a, b) != r.AtomicTime(a, b) {
			t.Errorf("AtomicTime(%d,%d) changed with inert rack fields", a, b)
		}
	}
	if p.MinLatency() != r.MinLatency() {
		t.Error("MinLatency changed with inert rack fields")
	}
}

// Tier attribution drives the streaming profile's communication matrix:
// self < node < rack < fabric, with the rack tier appearing only when the
// topology defines one.
func TestTierAttribution(t *testing.T) {
	p := RackDefault(4, 2) // 4 cores/node, 2 nodes/rack => 8 ranks/rack
	cases := []struct{ a, b, want int }{
		{3, 3, TierSelf},
		{0, 3, TierNode},
		{0, 4, TierRack},
		{0, 8, TierFabric},
		{8, 11, TierNode}, // second rack's intra-node pair
		{8, 15, TierRack}, // second rack, across its two nodes
	}
	for _, c := range cases {
		if got := p.Tier(c.a, c.b); got != c.want {
			t.Errorf("Tier(%d,%d) = %s, want %s", c.a, c.b, TierName[got], TierName[c.want])
		}
	}
	// Rack transfers must price between intra-node and fabric.
	const n = 4096
	intra := p.TransferTime(0, 1, n)
	rack := p.TransferTime(0, 4, n)
	fabric := p.TransferTime(0, 8, n)
	if !(intra < rack && rack < fabric) {
		t.Errorf("rack cost ordering violated: intra=%d rack=%d fabric=%d", intra, rack, fabric)
	}
	// The flat default has no rack tier: everything cross-node is fabric.
	flat := Default(4)
	if flat.Tier(0, 4) != TierFabric || flat.Tier(0, 3) != TierNode || flat.Tier(2, 2) != TierSelf {
		t.Error("flat-fabric tier attribution wrong")
	}
	if RackDefault(4, 0) != Default(4) {
		t.Error("RackDefault with 0 nodes/rack should be the flat default")
	}
}
