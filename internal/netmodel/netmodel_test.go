package netmodel

import (
	"testing"
	"testing/quick"

	"ityr/internal/sim"
)

func TestTopology(t *testing.T) {
	p := Default(4)
	if p.Node(0) != 0 || p.Node(3) != 0 || p.Node(4) != 1 || p.Node(11) != 2 {
		t.Fatal("node mapping wrong for 4 cores/node")
	}
	if !p.SameNode(0, 3) || p.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	z := Params{} // CoresPerNode 0 → every rank its own node
	if z.Node(7) != 7 {
		t.Fatal("degenerate topology wrong")
	}
}

func TestCostOrdering(t *testing.T) {
	p := Default(4)
	const n = 4096
	local := p.TransferTime(2, 2, n)
	intra := p.TransferTime(0, 2, n)
	inter := p.TransferTime(0, 5, n)
	if !(local < intra && intra < inter) {
		t.Fatalf("cost ordering violated: local=%d intra=%d inter=%d", local, intra, inter)
	}
	if p.AtomicTime(0, 0) >= p.AtomicTime(0, 1) {
		t.Fatal("local atomic should be cheapest")
	}
	if p.AtomicTime(0, 1) >= p.AtomicTime(0, 5) {
		t.Fatal("intra-node atomic should be cheaper than inter-node")
	}
}

func TestTransferMonotonicInSize(t *testing.T) {
	p := Default(2)
	f := func(a, b uint16) bool {
		x, y := int(a)%1000, int(b)%1000
		small, big := x, y
		if small > big {
			small, big = big, small
		}
		return p.TransferTime(0, 3, small) <= p.TransferTime(0, 3, big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationExcludesLatency(t *testing.T) {
	p := Default(1)
	n := 6000
	st := p.SerializationTime(0, 1, n)
	tt := p.TransferTime(0, 1, n)
	if st >= tt {
		t.Fatalf("serialization %d should be below full transfer %d", st, tt)
	}
	if p.SerializationTime(1, 1, n) != 0 {
		t.Fatal("self serialization should be free")
	}
}

// stubPerturber adds fixed extras, recording what base it was handed.
type stubPerturber struct {
	extra    sim.Time
	lastBase sim.Time
}

func (s *stubPerturber) TransferExtra(now sim.Time, a, b, n int, base sim.Time) sim.Time {
	s.lastBase = base
	return s.extra
}

func (s *stubPerturber) AtomicExtra(now sim.Time, a, b int, base sim.Time) sim.Time {
	s.lastBase = base
	return s.extra
}

// TestAtVariantsMatchBaseWithoutPerturber: the time-aware cost variants
// are exactly the base model when no Perturber is set.
func TestAtVariantsMatchBaseWithoutPerturber(t *testing.T) {
	p := Default(4)
	for _, n := range []int{0, 8, 4096} {
		if got, want := p.TransferTimeAt(123, 0, 5, n), p.TransferTime(0, 5, n); got != want {
			t.Errorf("TransferTimeAt(n=%d) = %d, want base %d", n, got, want)
		}
	}
	if got, want := p.AtomicTimeAt(123, 0, 5), p.AtomicTime(0, 5); got != want {
		t.Errorf("AtomicTimeAt = %d, want base %d", got, want)
	}
	if got := p.TransferExtraAt(123, 0, 5, 64, 1000); got != 0 {
		t.Errorf("TransferExtraAt without perturber = %d, want 0", got)
	}
}

// TestAtVariantsApplyPerturber: with a Perturber set the variants add its
// extra for remote pairs and hand it the unperturbed base, but never
// perturb rank-local operations.
func TestAtVariantsApplyPerturber(t *testing.T) {
	p := Default(4)
	stub := &stubPerturber{extra: 777}
	p.Perturb = stub
	base := p.TransferTime(0, 5, 256)
	if got := p.TransferTimeAt(9, 0, 5, 256); got != base+777 {
		t.Errorf("TransferTimeAt = %d, want base %d + 777", got, base)
	}
	if stub.lastBase != base {
		t.Errorf("perturber saw base %d, want %d", stub.lastBase, base)
	}
	abase := p.AtomicTime(0, 5)
	if got := p.AtomicTimeAt(9, 0, 5); got != abase+777 {
		t.Errorf("AtomicTimeAt = %d, want base %d + 777", got, abase)
	}
	if got := p.TransferExtraAt(9, 0, 5, 256, 1000); got != 777 {
		t.Errorf("TransferExtraAt = %d, want 777", got)
	}
	// Local operations bypass the fabric and must stay unperturbed.
	if got, want := p.TransferTimeAt(9, 3, 3, 256), p.TransferTime(3, 3, 256); got != want {
		t.Errorf("local TransferTimeAt = %d, want unperturbed %d", got, want)
	}
	if got := p.TransferExtraAt(9, 3, 3, 256, 1000); got != 0 {
		t.Errorf("local TransferExtraAt = %d, want 0", got)
	}
}

func TestMinLatency(t *testing.T) {
	p := Default(8)
	if got := p.MinLatency(); got != p.IntraLatency {
		t.Errorf("default MinLatency = %d, want intra-node latency %d", got, p.IntraLatency)
	}
	p.IntraLatency = 0 // single-core nodes: no intra-node hops configured
	if got := p.MinLatency(); got != p.Latency {
		t.Errorf("MinLatency with no intra latency = %d, want %d", got, p.Latency)
	}
	p.IntraLatency = p.Latency * 2 // inter-node is the floor
	if got := p.MinLatency(); got != p.Latency {
		t.Errorf("MinLatency = %d, want inter-node latency %d", got, p.Latency)
	}
}
