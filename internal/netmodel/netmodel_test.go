package netmodel

import (
	"testing"
	"testing/quick"
)

func TestTopology(t *testing.T) {
	p := Default(4)
	if p.Node(0) != 0 || p.Node(3) != 0 || p.Node(4) != 1 || p.Node(11) != 2 {
		t.Fatal("node mapping wrong for 4 cores/node")
	}
	if !p.SameNode(0, 3) || p.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	z := Params{} // CoresPerNode 0 → every rank its own node
	if z.Node(7) != 7 {
		t.Fatal("degenerate topology wrong")
	}
}

func TestCostOrdering(t *testing.T) {
	p := Default(4)
	const n = 4096
	local := p.TransferTime(2, 2, n)
	intra := p.TransferTime(0, 2, n)
	inter := p.TransferTime(0, 5, n)
	if !(local < intra && intra < inter) {
		t.Fatalf("cost ordering violated: local=%d intra=%d inter=%d", local, intra, inter)
	}
	if p.AtomicTime(0, 0) >= p.AtomicTime(0, 1) {
		t.Fatal("local atomic should be cheapest")
	}
	if p.AtomicTime(0, 1) >= p.AtomicTime(0, 5) {
		t.Fatal("intra-node atomic should be cheaper than inter-node")
	}
}

func TestTransferMonotonicInSize(t *testing.T) {
	p := Default(2)
	f := func(a, b uint16) bool {
		x, y := int(a)%1000, int(b)%1000
		small, big := x, y
		if small > big {
			small, big = big, small
		}
		return p.TransferTime(0, 3, small) <= p.TransferTime(0, 3, big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationExcludesLatency(t *testing.T) {
	p := Default(1)
	n := 6000
	st := p.SerializationTime(0, 1, n)
	tt := p.TransferTime(0, 1, n)
	if st >= tt {
		t.Fatalf("serialization %d should be below full transfer %d", st, tt)
	}
	if p.SerializationTime(1, 1, n) != 0 {
		t.Fatal("self serialization should be free")
	}
}
