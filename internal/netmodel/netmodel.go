// Package netmodel defines the interconnect cost model used by the
// simulated communication layer.
//
// The model is deliberately simple — a latency/bandwidth (LogGP-flavoured)
// model with node topology — because the protocols under study (software
// caching, work stealing, epoch-based release) are sensitive to message
// counts, message sizes and round trips, not to fine interconnect detail.
// Defaults approximate one rank's share of a Tofu-D-class RDMA network
// (Table 1 of the paper).
package netmodel

import "ityr/internal/sim"

// Perturber injects time-dependent link faults on top of the base model:
// latency spikes, jitter, bandwidth collapse. Implemented by
// fault.Injector; the interface lives here so the dependency points from
// the fault plan toward the network model, not the other way around. Both
// methods return *extra* time to add to the unperturbed cost `base`; they
// may keep deterministic per-origin counters (the simulation kernel runs
// one goroutine at a time, so calls are serialized and reproducible).
type Perturber interface {
	// TransferExtra perturbs a transfer of n bytes from rank a to b
	// issued at virtual time now, whose unperturbed wire time is base.
	TransferExtra(now sim.Time, a, b, n int, base sim.Time) sim.Time
	// AtomicExtra perturbs a remote atomic from rank a to b.
	AtomicExtra(now sim.Time, a, b int, base sim.Time) sim.Time
}

// Params describes the simulated machine: topology and communication costs.
type Params struct {
	// CoresPerNode gives the number of ranks (one process per core, as in
	// Itoyori) placed on each node. Rank r lives on node r/CoresPerNode.
	CoresPerNode int

	// Latency is the one-way inter-node RDMA latency.
	Latency sim.Time
	// Bandwidth is the per-rank inter-node bandwidth in bytes per
	// nanosecond (1 byte/ns = 1 GB/s).
	Bandwidth float64
	// AtomicRTT is the round-trip cost of a remote atomic operation
	// (compare-and-swap, fetch-and-op).
	AtomicRTT sim.Time

	// IntraLatency and IntraBandwidth apply between ranks on the same node
	// (shared-memory transport).
	IntraLatency   sim.Time
	IntraBandwidth float64
	// IntraAtomicRTT is the cost of an atomic to a rank on the same node.
	IntraAtomicRTT sim.Time

	// MsgOverhead is the origin-side CPU cost of issuing any one-sided
	// operation (descriptor setup, doorbell).
	MsgOverhead sim.Time

	// Perturb, when non-nil, degrades links per the active fault plan.
	// The *At cost variants consult it; the plain variants never do, so
	// existing call sites are untouched when no faults are configured.
	Perturb Perturber
}

// Default returns Tofu-D-flavoured parameters with the given node width.
func Default(coresPerNode int) Params {
	return Params{
		CoresPerNode:   coresPerNode,
		Latency:        1200 * sim.Nanosecond,
		Bandwidth:      6.0, // 6 GB/s per rank
		AtomicRTT:      2600 * sim.Nanosecond,
		IntraLatency:   250 * sim.Nanosecond,
		IntraBandwidth: 16.0,
		IntraAtomicRTT: 400 * sim.Nanosecond,
		MsgOverhead:    120 * sim.Nanosecond,
	}
}

// Node returns the node index hosting rank r.
func (p Params) Node(r int) int {
	if p.CoresPerNode <= 0 {
		return r
	}
	return r / p.CoresPerNode
}

// SameNode reports whether ranks a and b share a node.
func (p Params) SameNode(a, b int) bool { return p.Node(a) == p.Node(b) }

// TransferTime returns the wire time for moving n bytes between ranks a and
// b, excluding the origin-side MsgOverhead. Transfers between distinct
// processes on the same node pay the shared-memory cost; a==b is free.
func (p Params) TransferTime(a, b, n int) sim.Time {
	if a == b {
		return 0
	}
	if p.SameNode(a, b) {
		return p.IntraLatency + sim.Time(float64(n)/p.IntraBandwidth)
	}
	return p.Latency + sim.Time(float64(n)/p.Bandwidth)
}

// SerializationTime returns the time n bytes occupy the origin NIC, used to
// model back-to-back message pipelining.
func (p Params) SerializationTime(a, b, n int) sim.Time {
	if a == b {
		return 0
	}
	if p.SameNode(a, b) {
		return sim.Time(float64(n) / p.IntraBandwidth)
	}
	return sim.Time(float64(n) / p.Bandwidth)
}

// AtomicTime returns the cost of a remote atomic from rank a to rank b.
func (p Params) AtomicTime(a, b int) sim.Time {
	if a == b {
		return 60 * sim.Nanosecond // local CAS through the NIC loopback
	}
	if p.SameNode(a, b) {
		return p.IntraAtomicRTT
	}
	return p.AtomicRTT
}

// MinLatency returns the smallest one-way latency any cross-rank
// interaction can be charged: the minimum of the intra-node and inter-node
// link latencies. This is the lookahead bound for conservative parallel
// host execution (sim.NewEngineShards): no rank can affect another rank's
// simulated state sooner than MinLatency after initiating an operation, so
// events less than MinLatency apart on different shards are causally
// independent. Perturbations (fault plans) only ever add time, so they
// never shrink the bound.
func (p Params) MinLatency() sim.Time {
	min := p.Latency
	if p.IntraLatency > 0 && p.IntraLatency < min {
		min = p.IntraLatency
	}
	return min
}

// TransferTimeAt is TransferTime plus any fault-plan perturbation active
// at virtual time now. With no Perturber (or a == b) it equals
// TransferTime exactly.
func (p Params) TransferTimeAt(now sim.Time, a, b, n int) sim.Time {
	t := p.TransferTime(a, b, n)
	if p.Perturb != nil && a != b {
		t += p.Perturb.TransferExtra(now, a, b, n, t)
	}
	return t
}

// AtomicTimeAt is AtomicTime plus any fault-plan perturbation active at
// virtual time now.
func (p Params) AtomicTimeAt(now sim.Time, a, b int) sim.Time {
	t := p.AtomicTime(a, b)
	if p.Perturb != nil && a != b {
		t += p.Perturb.AtomicExtra(now, a, b, t)
	}
	return t
}

// TransferExtraAt returns only the perturbation a transfer of n bytes from
// a to b would suffer at now, given its unperturbed wire time base. Used
// by callers that assemble the base cost from separate serialization and
// latency terms (the RMA NIC pipeline) yet want the fault plan applied to
// the whole.
func (p Params) TransferExtraAt(now sim.Time, a, b, n int, base sim.Time) sim.Time {
	if p.Perturb == nil || a == b {
		return 0
	}
	return p.Perturb.TransferExtra(now, a, b, n, base)
}
