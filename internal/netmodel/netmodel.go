// Package netmodel defines the interconnect cost model used by the
// simulated communication layer.
//
// The model is deliberately simple — a latency/bandwidth (LogGP-flavoured)
// model with node topology — because the protocols under study (software
// caching, work stealing, epoch-based release) are sensitive to message
// counts, message sizes and round trips, not to fine interconnect detail.
// Defaults approximate one rank's share of a Tofu-D-class RDMA network
// (Table 1 of the paper).
package netmodel

import "ityr/internal/sim"

// Perturber injects time-dependent link faults on top of the base model:
// latency spikes, jitter, bandwidth collapse. Implemented by
// fault.Injector; the interface lives here so the dependency points from
// the fault plan toward the network model, not the other way around. Both
// methods return *extra* time to add to the unperturbed cost `base`; they
// may keep deterministic per-origin counters (the simulation kernel runs
// one goroutine at a time, so calls are serialized and reproducible).
type Perturber interface {
	// TransferExtra perturbs a transfer of n bytes from rank a to b
	// issued at virtual time now, whose unperturbed wire time is base.
	TransferExtra(now sim.Time, a, b, n int, base sim.Time) sim.Time
	// AtomicExtra perturbs a remote atomic from rank a to b.
	AtomicExtra(now sim.Time, a, b int, base sim.Time) sim.Time
}

// Params describes the simulated machine: topology and communication costs.
//
// The model has up to three locality tiers, selected per rank pair by
// topology: intra-node (shared memory), intra-rack (one leaf switch), and
// fabric (the full interconnect). The rack tier is optional — with
// NodesPerRack <= 0 the model is the classic two-tier node/fabric one and
// every cost is bit-identical to the pre-rack schedules (golden-pinned).
// This mirrors the locality-tiered transports of DART-MPI and the MPI-3
// shared-memory PGAS designs, which separate intra-node, intra-rack and
// global costs.
type Params struct {
	// CoresPerNode gives the number of ranks (one process per core, as in
	// Itoyori) placed on each node. Rank r lives on node r/CoresPerNode.
	CoresPerNode int

	// NodesPerRack groups nodes into racks: node m lives in rack
	// m/NodesPerRack. 0 (the default) disables the rack tier entirely:
	// all inter-node traffic pays the fabric cost below.
	NodesPerRack int

	// Latency is the one-way RDMA latency across the fabric (between
	// racks, or between nodes when no rack tier is configured).
	Latency sim.Time
	// Bandwidth is the per-rank fabric bandwidth in bytes per
	// nanosecond (1 byte/ns = 1 GB/s).
	Bandwidth float64
	// AtomicRTT is the round-trip cost of a remote atomic operation
	// (compare-and-swap, fetch-and-op) across the fabric.
	AtomicRTT sim.Time

	// RackLatency / RackBandwidth / RackAtomicRTT apply between ranks on
	// distinct nodes of the same rack (one leaf-switch hop). Only
	// consulted when NodesPerRack > 0; zero values fall back to the
	// fabric numbers, so a partially specified rack tier never makes a
	// link free.
	RackLatency   sim.Time
	RackBandwidth float64
	RackAtomicRTT sim.Time

	// IntraLatency and IntraBandwidth apply between ranks on the same node
	// (shared-memory transport).
	IntraLatency   sim.Time
	IntraBandwidth float64
	// IntraAtomicRTT is the cost of an atomic to a rank on the same node.
	IntraAtomicRTT sim.Time

	// MsgOverhead is the origin-side CPU cost of issuing any one-sided
	// operation (descriptor setup, doorbell).
	MsgOverhead sim.Time

	// Perturb, when non-nil, degrades links per the active fault plan.
	// The *At cost variants consult it; the plain variants never do, so
	// existing call sites are untouched when no faults are configured.
	Perturb Perturber
}

// Default returns Tofu-D-flavoured parameters with the given node width.
func Default(coresPerNode int) Params {
	return Params{
		CoresPerNode:   coresPerNode,
		Latency:        1200 * sim.Nanosecond,
		Bandwidth:      6.0, // 6 GB/s per rank
		AtomicRTT:      2600 * sim.Nanosecond,
		IntraLatency:   250 * sim.Nanosecond,
		IntraBandwidth: 16.0,
		IntraAtomicRTT: 400 * sim.Nanosecond,
		MsgOverhead:    120 * sim.Nanosecond,
	}
}

// RackDefault returns Default with a rack tier of the given width armed:
// node m lives in rack m/nodesPerRack, and traffic between distinct nodes
// of one rack pays a leaf-switch cost between the shared-memory and fabric
// numbers. This is the shipped three-tier experiment preset (itybench
// -racks); nodesPerRack <= 0 degenerates to the two-tier Default.
func RackDefault(coresPerNode, nodesPerRack int) Params {
	p := Default(coresPerNode)
	if nodesPerRack <= 0 {
		return p
	}
	p.NodesPerRack = nodesPerRack
	p.RackLatency = 700 * sim.Nanosecond
	p.RackBandwidth = 10.0
	p.RackAtomicRTT = 1600 * sim.Nanosecond
	return p
}

// Locality tiers returned by Tier, ordered nearest to farthest. The values
// are stable indices (profile accumulators array over them); NumTiers is
// the array length.
const (
	TierSelf   = iota // a == b: no wire traffic at all
	TierNode          // distinct ranks sharing a node (shared-memory transport)
	TierRack          // distinct nodes sharing a rack (one leaf-switch hop)
	TierFabric        // everything else: the full interconnect
	NumTiers          // number of locality tiers
)

// TierName maps a Tier index to its short lowercase name.
var TierName = [NumTiers]string{"self", "node", "rack", "fabric"}

// Tier classifies the locality tier that traffic from rank a to rank b
// travels — the same tier TransferTime and AtomicTime price. Without a
// configured rack tier, TierRack is never returned.
func (p Params) Tier(a, b int) int {
	switch {
	case a == b:
		return TierSelf
	case p.SameNode(a, b):
		return TierNode
	case p.rackTier(a, b):
		return TierRack
	default:
		return TierFabric
	}
}

// Node returns the node index hosting rank r.
func (p Params) Node(r int) int {
	if p.CoresPerNode <= 0 {
		return r
	}
	return r / p.CoresPerNode
}

// SameNode reports whether ranks a and b share a node.
func (p Params) SameNode(a, b int) bool { return p.Node(a) == p.Node(b) }

// Rack returns the rack index hosting rank r. Without a rack tier
// (NodesPerRack <= 0) every node is its own rack.
func (p Params) Rack(r int) int {
	if p.NodesPerRack <= 0 {
		return p.Node(r)
	}
	return p.Node(r) / p.NodesPerRack
}

// SameRack reports whether ranks a and b share a rack. Meaningful only
// when a rack tier is configured; otherwise it degenerates to SameNode.
func (p Params) SameRack(a, b int) bool { return p.Rack(a) == p.Rack(b) }

// rackTier reports whether a-to-b traffic travels the intra-rack tier:
// distinct nodes of one rack, with a rack tier configured.
func (p Params) rackTier(a, b int) bool {
	return p.NodesPerRack > 0 && !p.SameNode(a, b) && p.SameRack(a, b)
}

// rackLatency / rackBandwidth / rackAtomicRTT fall back to the fabric
// numbers when the rack field is unset, so a rack tier never undercuts the
// fabric by omission.
func (p Params) rackLatency() sim.Time {
	if p.RackLatency > 0 {
		return p.RackLatency
	}
	return p.Latency
}

func (p Params) rackBandwidth() float64 {
	if p.RackBandwidth > 0 {
		return p.RackBandwidth
	}
	return p.Bandwidth
}

func (p Params) rackAtomicRTT() sim.Time {
	if p.RackAtomicRTT > 0 {
		return p.RackAtomicRTT
	}
	return p.AtomicRTT
}

// TransferTime returns the wire time for moving n bytes between ranks a and
// b, excluding the origin-side MsgOverhead. Transfers between distinct
// processes on the same node pay the shared-memory cost, nodes sharing a
// rack pay the rack cost (when a rack tier is configured), everything else
// pays the fabric cost; a==b is free.
func (p Params) TransferTime(a, b, n int) sim.Time {
	if a == b {
		return 0
	}
	if p.SameNode(a, b) {
		return p.IntraLatency + sim.Time(float64(n)/p.IntraBandwidth)
	}
	if p.rackTier(a, b) {
		return p.rackLatency() + sim.Time(float64(n)/p.rackBandwidth())
	}
	return p.Latency + sim.Time(float64(n)/p.Bandwidth)
}

// SerializationTime returns the time n bytes occupy the origin NIC, used to
// model back-to-back message pipelining.
func (p Params) SerializationTime(a, b, n int) sim.Time {
	if a == b {
		return 0
	}
	if p.SameNode(a, b) {
		return sim.Time(float64(n) / p.IntraBandwidth)
	}
	if p.rackTier(a, b) {
		return sim.Time(float64(n) / p.rackBandwidth())
	}
	return sim.Time(float64(n) / p.Bandwidth)
}

// AtomicTime returns the cost of a remote atomic from rank a to rank b.
func (p Params) AtomicTime(a, b int) sim.Time {
	if a == b {
		return 60 * sim.Nanosecond // local CAS through the NIC loopback
	}
	if p.SameNode(a, b) {
		return p.IntraAtomicRTT
	}
	if p.rackTier(a, b) {
		return p.rackAtomicRTT()
	}
	return p.AtomicRTT
}

// MinLatency returns the smallest one-way latency any cross-rank
// interaction can be charged: the minimum positive latency over the
// configured tiers (intra-node, intra-rack, fabric). This is the lookahead
// bound for conservative parallel host execution (sim.NewEngineShards): no
// rank can affect another rank's simulated state sooner than MinLatency
// after initiating an operation, so events less than MinLatency apart on
// different shards are causally independent. Perturbations (fault plans)
// only ever add time, so they never shrink the bound.
//
// Zero-valued tiers are skipped symmetrically — a Params with only one
// latency set still yields that latency instead of zero, and the fully
// degenerate all-zero Params yields zero (callers needing a sharded engine
// must then configure a latency, as NewEngineShards rejects a zero
// lookahead).
func (p Params) MinLatency() sim.Time {
	min := sim.Time(0)
	consider := func(t sim.Time) {
		if t > 0 && (min == 0 || t < min) {
			min = t
		}
	}
	consider(p.Latency)
	if p.NodesPerRack > 0 {
		consider(p.rackLatency())
	}
	consider(p.IntraLatency)
	return min
}

// TransferTimeAt is TransferTime plus any fault-plan perturbation active
// at virtual time now. With no Perturber (or a == b) it equals
// TransferTime exactly.
func (p Params) TransferTimeAt(now sim.Time, a, b, n int) sim.Time {
	t := p.TransferTime(a, b, n)
	if p.Perturb != nil && a != b {
		t += p.Perturb.TransferExtra(now, a, b, n, t)
	}
	return t
}

// AtomicTimeAt is AtomicTime plus any fault-plan perturbation active at
// virtual time now.
func (p Params) AtomicTimeAt(now sim.Time, a, b int) sim.Time {
	t := p.AtomicTime(a, b)
	if p.Perturb != nil && a != b {
		t += p.Perturb.AtomicExtra(now, a, b, t)
	}
	return t
}

// TransferExtraAt returns only the perturbation a transfer of n bytes from
// a to b would suffer at now, given its unperturbed wire time base. Used
// by callers that assemble the base cost from separate serialization and
// latency terms (the RMA NIC pipeline) yet want the fault plan applied to
// the whole.
func (p Params) TransferExtraAt(now sim.Time, a, b, n int, base sim.Time) sim.Time {
	if p.Perturb == nil || a == b {
		return 0
	}
	return p.Perturb.TransferExtra(now, a, b, n, base)
}
