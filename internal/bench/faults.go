// Fault-tolerance benchmark: the Fig. 7 cilksort configuration re-run
// under the canned deterministic fault plans (internal/fault), with the
// output verified after every run. The paper's evaluation assumes a
// healthy Omni-Path fabric; this harness quantifies how the runtime's
// resilience machinery (RMA retry/timeout/backoff, steal-victim
// blacklisting, straggler-scaled processors) degrades under adverse
// conditions while still producing correct results.
package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/uts"
	"ityr/internal/fault"
	"ityr/internal/sim"
)

// FaultRun is one row of the report: one application run under one plan
// (and, for the SDC sweep rows, one replication fraction).
type FaultRun struct {
	Plan      string  `json:"plan"` // "clean" or the canned plan name
	App       string  `json:"app"`
	Replicate float64 `json:"replicate"` // task-replication fraction (0 = off)
	TimeNs    int64   `json:"time_ns"`
	CleanNs   int64   `json:"clean_time_ns"` // same app without a plan
	Slowdown  float64 `json:"slowdown"`      // TimeNs / CleanNs
	Verified  bool    `json:"verified"`      // output checked, not just "terminated"

	// OK is the row's verdict: a run with undetected corruption escapes
	// MUST fail verification (the escapes are real silent errors — a
	// verified run despite escapes would mean the injector corrupted
	// nothing observable), and a run without escapes must verify. The
	// negative-control rows (corruption armed, replication off) are
	// therefore OK precisely because they are unverified.
	OK bool `json:"ok"`

	// Resilience activity observed during the run.
	InjectedFailures uint64 `json:"injected_failures"`
	Retries          uint64 `json:"rma_retries"`
	RetryStallNs     uint64 `json:"rma_retry_stall_ns"`
	Steals           uint64 `json:"steals"`
	FailedSteals     uint64 `json:"failed_steals"`
	StealTimeouts    uint64 `json:"steal_timeouts"`
	Blacklists       uint64 `json:"blacklists"`
	BlacklistSkips   uint64 `json:"blacklist_skips"`

	// Silent-data-corruption activity (itoyori-faults/v2).
	SdcInjected  uint64 `json:"sdc_injected"`  // bit flips injected (wire + task)
	SdcDetected  uint64 `json:"sdc_detected"`  // flips caught (digest + checksum)
	SdcRecovered uint64 `json:"sdc_recovered"` // protocols converged after strikes
	SdcEscaped   uint64 `json:"sdc_escaped"`   // flips that reached the output
	ReplicaTasks uint64 `json:"replica_tasks"` // redundant executions performed
}

// FaultReport is the "itoyori-faults/v2" document written by
// `itybench -faults`. v2 adds the silent-data-corruption sweep rows and
// the per-row SDC counters + OK verdict.
type FaultReport struct {
	Schema       string     `json:"schema"`
	Scale        string     `json:"scale"`
	Seed         int64      `json:"seed"`
	Ranks        int        `json:"ranks"`
	CoresPerNode int        `json:"cores_per_node"`
	Runs         []FaultRun `json:"runs"`
}

// WriteJSON serializes the report as indented JSON.
func (rep FaultReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// faultSeed seeds both the runtime and the fault plans, matching the
// Fig. 7 runs so clean times are comparable.
const faultSeed = 11

// faultConfig is runtimeConfig plus an armed plan and, when replicate is
// positive, selective task replication. Victim blacklisting is enabled
// whenever a plan is armed — it is the scheduler-side half of the
// resilience story and off by default only to preserve the fault-free
// golden digest.
func faultConfig(sc Scale, plan *fault.Plan, replicate float64) ityr.Config {
	cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, faultSeed)
	if plan != nil {
		cfg.Faults = plan
		cfg.Sched.VictimBlacklist = true
	}
	if replicate > 0 {
		cfg.SDC = &ityr.SDCConfig{Replicate: replicate}
	}
	return cfg
}

// FaultCilksortRun runs the Fig. 7 cilksort configuration under plan
// (nil = clean) and verifies the result: the array must be sorted and its
// checksum conserved. Returns the sort time, the runtime for counter
// access, and the verification verdict.
func FaultCilksortRun(sc Scale, plan *fault.Plan, replicate float64) (sim.Time, *ityr.Runtime, bool) {
	rt := ityr.NewRuntime(faultConfig(sc, plan, replicate))
	n, cutoff := sc.CilksortN, sc.SortCutoff
	var elapsed sim.Time
	var before, after int64
	sorted := false
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Generate(c, a, faultSeed)
			before = cilksort.Checksum(c, a)
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Sort(c, a, b, cutoff)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
		s.RootExec(func(c *ityr.Ctx) {
			sorted = cilksort.IsSorted(c, a)
			after = cilksort.Checksum(c, a)
		})
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt, sorted && before == after
}

// FaultUTSRun traverses the scale's small tree under plan and verifies
// the traversal count against the host-side count.
func FaultUTSRun(sc Scale, plan *fault.Plan, replicate float64) (sim.Time, *ityr.Runtime, bool) {
	rt := ityr.NewRuntime(faultConfig(sc, plan, replicate))
	tree := sc.UTSSmall
	var elapsed sim.Time
	var nodes, want int64
	err := rt.Run(func(s *ityr.SPMD) {
		var root ityr.GPtr[uts.Node]
		s.RootExec(func(c *ityr.Ctx) {
			root, want = uts.Build(c, tree)
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			nodes = uts.Traverse(c, root)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt, nodes == want && nodes > 0
}

// FaultFMMRun evaluates the scale's small FMM instance under plan and
// verifies the simulated potentials bit-exactly against the host
// evaluation of the same tree — fault injection perturbs timing, never
// arithmetic, so exact equality must hold.
func FaultFMMRun(sc Scale, plan *fault.Plan, replicate float64) (sim.Time, *ityr.Runtime, bool) {
	p := fmm.Params{N: sc.FMMSmallN, Theta: sc.FMMTheta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 21}
	rt := ityr.NewRuntime(faultConfig(sc, plan, replicate))
	var elapsed sim.Time
	var got []fmm.Body
	err := rt.Run(func(s *ityr.SPMD) {
		var pr fmm.Problem
		if s.Rank() == 0 {
			pr = fmm.Setup(s, p)
		}
		s.Barrier()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			pr.Evaluate(c)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
			b, gerr := ityr.GetSlice(s, pr.Bodies)
			if gerr != nil {
				panic(gerr)
			}
			got = b
		}
	})
	if err != nil {
		panic(err)
	}
	p = p.WithDefaults()
	ref := fmm.GenBodiesDist(p.N, p.Seed, p.Dist)
	cells := fmm.BuildTree(ref, p.NCrit)
	fmm.EvaluateHost(cells, ref, p.Theta)
	ok := len(got) == len(ref)
	for i := 0; ok && i < len(got); i++ {
		if got[i].P != ref[i].P || got[i].AX != ref[i].AX ||
			got[i].AY != ref[i].AY || got[i].AZ != ref[i].AZ {
			ok = false
		}
	}
	return elapsed, rt, ok
}

// faultApps maps app names to their verified runners.
var faultApps = []struct {
	Name string
	Run  func(Scale, *fault.Plan, float64) (sim.Time, *ityr.Runtime, bool)
}{
	{"cilksort", FaultCilksortRun},
	{"utsmem", FaultUTSRun},
	{"fmm", FaultFMMRun},
}

// faultRow assembles one report row from a finished run.
func faultRow(plan, app string, replicate float64, t, clean sim.Time, rt *ityr.Runtime, ok bool) FaultRun {
	run := FaultRun{
		Plan: plan, App: app, Replicate: replicate,
		TimeNs: int64(t), CleanNs: int64(clean), Verified: ok,
	}
	if clean > 0 {
		run.Slowdown = float64(t) / float64(clean)
	}
	cs := rt.Comm().Stats()
	run.Retries = cs.Retries
	run.RetryStallNs = cs.RetryNs
	ss := rt.Sched().Stats
	run.Steals = ss.Steals
	run.FailedSteals = ss.FailedSteals
	run.StealTimeouts = ss.StealTimeouts
	run.Blacklists = ss.Blacklists
	run.BlacklistSkips = ss.BlacklistSkips
	if inj := rt.Injector(); inj != nil {
		fs := inj.Stats()
		run.InjectedFailures = fs.Injected
		run.SdcInjected = fs.WireFlips + fs.TaskFlips
	}
	ws := rt.Comm().SdcWire()
	run.SdcDetected = ws.Detected
	run.SdcRecovered = ws.Retrans
	run.SdcEscaped = ws.Escapes
	if p := rt.Protector(); p != nil {
		st := p.Stats
		run.SdcDetected += st.Detected
		run.SdcRecovered += st.Recovered
		run.SdcEscaped += st.Escaped
		run.ReplicaTasks = st.Replicas
	}
	// The verdict: escaped corruptions must be output-visible, everything
	// else must verify.
	if run.SdcEscaped > 0 {
		run.OK = !run.Verified
	} else {
		run.OK = run.Verified
	}
	return run
}

// SdcSweepFractions is the replication-fraction axis of the
// overhead-vs-coverage sweep: 0 is the negative control (corruption armed,
// defenses off — the output must come out wrong), the rest trade replica
// overhead against escape probability.
var SdcSweepFractions = []float64{0, 0.05, 0.10, 0.25, 0.50}

// FaultBench runs every app clean, under each canned fault plan, and then
// through the silent-data-corruption sweep (the sdc-task plan crossed with
// every SdcSweepFractions replication fraction), printing a table to w and
// returning the report. Every row carries the OK verdict; a !OK row is a
// harness bug, surfaced in the table and the report rather than silently
// dropped.
func FaultBench(w io.Writer, sc Scale) FaultReport {
	rep := FaultReport{
		Schema: "itoyori-faults/v2", Scale: sc.Name, Seed: faultSeed,
		Ranks: sc.FixedRanks, CoresPerNode: sc.CoresPerNode,
	}
	plans := fault.CannedPlans(faultSeed)
	sdcPlan := fault.PlanSDC(faultSeed)
	fmt.Fprintf(w, "\n== Fault plans: cilksort/utsmem/fmm on %d ranks (%d/node), seed %d ==\n",
		sc.FixedRanks, sc.CoresPerNode, faultSeed)
	fmt.Fprintf(w, "%-10s %-16s %5s %12s %9s %9s %8s %7s %7s %7s  %s\n",
		"app", "plan", "repl", "time (ms)", "slowdown", "injected", "flips", "detect", "escape", "replica", "verdict")
	for _, app := range faultApps {
		cleanT, cleanRT, cleanOK := app.Run(sc, nil, 0)
		row := faultRow("clean", app.Name, 0, cleanT, cleanT, cleanRT, cleanOK)
		rep.Runs = append(rep.Runs, row)
		printFaultRow(w, row)
		for i := range plans {
			t, rt, ok := app.Run(sc, &plans[i], 0)
			row := faultRow(plans[i].Name, app.Name, 0, t, cleanT, rt, ok)
			rep.Runs = append(rep.Runs, row)
			printFaultRow(w, row)
		}
		for _, frac := range SdcSweepFractions {
			t, rt, ok := app.Run(sc, &sdcPlan, frac)
			row := faultRow(sdcPlan.Name, app.Name, frac, t, cleanT, rt, ok)
			rep.Runs = append(rep.Runs, row)
			printFaultRow(w, row)
		}
	}
	return rep
}

func printFaultRow(w io.Writer, r FaultRun) {
	verdict := "ok"
	switch {
	case !r.OK:
		verdict = "FAILED"
	case !r.Verified:
		verdict = "corrupt" // expected: escapes with defenses down
	}
	fmt.Fprintf(w, "%-10s %-16s %5.2f %12.3f %8.2fx %9d %7d %7d %7d %7d  %s\n",
		r.App, r.Plan, r.Replicate, float64(r.TimeNs)/1e6, r.Slowdown,
		r.InjectedFailures, r.SdcInjected, r.SdcDetected, r.SdcEscaped,
		r.ReplicaTasks, verdict)
}
