// Fault-tolerance benchmark: the Fig. 7 cilksort configuration re-run
// under the canned deterministic fault plans (internal/fault), with the
// output verified after every run. The paper's evaluation assumes a
// healthy Omni-Path fabric; this harness quantifies how the runtime's
// resilience machinery (RMA retry/timeout/backoff, steal-victim
// blacklisting, straggler-scaled processors) degrades under adverse
// conditions while still producing correct results.
package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/uts"
	"ityr/internal/fault"
	"ityr/internal/sim"
)

// FaultRun is one row of the report: one application run under one plan.
type FaultRun struct {
	Plan     string  `json:"plan"` // "clean" or the canned plan name
	App      string  `json:"app"`
	TimeNs   int64   `json:"time_ns"`
	CleanNs  int64   `json:"clean_time_ns"` // same app without a plan
	Slowdown float64 `json:"slowdown"`      // TimeNs / CleanNs
	Verified bool    `json:"verified"`      // output checked, not just "terminated"

	// Resilience activity observed during the run.
	InjectedFailures uint64 `json:"injected_failures"`
	Retries          uint64 `json:"rma_retries"`
	RetryStallNs     uint64 `json:"rma_retry_stall_ns"`
	Steals           uint64 `json:"steals"`
	FailedSteals     uint64 `json:"failed_steals"`
	StealTimeouts    uint64 `json:"steal_timeouts"`
	Blacklists       uint64 `json:"blacklists"`
	BlacklistSkips   uint64 `json:"blacklist_skips"`
}

// FaultReport is the "itoyori-faults/v1" document written by
// `itybench -faults`.
type FaultReport struct {
	Schema       string     `json:"schema"`
	Scale        string     `json:"scale"`
	Seed         int64      `json:"seed"`
	Ranks        int        `json:"ranks"`
	CoresPerNode int        `json:"cores_per_node"`
	Runs         []FaultRun `json:"runs"`
}

// WriteJSON serializes the report as indented JSON.
func (rep FaultReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// faultSeed seeds both the runtime and the fault plans, matching the
// Fig. 7 runs so clean times are comparable.
const faultSeed = 11

// faultConfig is runtimeConfig plus an armed plan. Victim blacklisting is
// enabled whenever a plan is armed — it is the scheduler-side half of the
// resilience story and off by default only to preserve the fault-free
// golden digest.
func faultConfig(sc Scale, plan *fault.Plan) ityr.Config {
	cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, faultSeed)
	if plan != nil {
		cfg.Faults = plan
		cfg.Sched.VictimBlacklist = true
	}
	return cfg
}

// FaultCilksortRun runs the Fig. 7 cilksort configuration under plan
// (nil = clean) and verifies the result: the array must be sorted and its
// checksum conserved. Returns the sort time, the runtime for counter
// access, and the verification verdict.
func FaultCilksortRun(sc Scale, plan *fault.Plan) (sim.Time, *ityr.Runtime, bool) {
	rt := ityr.NewRuntime(faultConfig(sc, plan))
	n, cutoff := sc.CilksortN, sc.SortCutoff
	var elapsed sim.Time
	var before, after int64
	sorted := false
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Generate(c, a, faultSeed)
			before = cilksort.Checksum(c, a)
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Sort(c, a, b, cutoff)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
		s.RootExec(func(c *ityr.Ctx) {
			sorted = cilksort.IsSorted(c, a)
			after = cilksort.Checksum(c, a)
		})
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt, sorted && before == after
}

// FaultUTSRun traverses the scale's small tree under plan and verifies
// the traversal count against the host-side count.
func FaultUTSRun(sc Scale, plan *fault.Plan) (sim.Time, *ityr.Runtime, bool) {
	rt := ityr.NewRuntime(faultConfig(sc, plan))
	tree := sc.UTSSmall
	var elapsed sim.Time
	var nodes, want int64
	err := rt.Run(func(s *ityr.SPMD) {
		var root ityr.GPtr[uts.Node]
		s.RootExec(func(c *ityr.Ctx) {
			root, want = uts.Build(c, tree)
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			nodes = uts.Traverse(c, root)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt, nodes == want && nodes > 0
}

// FaultFMMRun evaluates the scale's small FMM instance under plan and
// verifies the simulated potentials bit-exactly against the host
// evaluation of the same tree — fault injection perturbs timing, never
// arithmetic, so exact equality must hold.
func FaultFMMRun(sc Scale, plan *fault.Plan) (sim.Time, *ityr.Runtime, bool) {
	p := fmm.Params{N: sc.FMMSmallN, Theta: sc.FMMTheta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 21}
	rt := ityr.NewRuntime(faultConfig(sc, plan))
	var elapsed sim.Time
	var got []fmm.Body
	err := rt.Run(func(s *ityr.SPMD) {
		var pr fmm.Problem
		if s.Rank() == 0 {
			pr = fmm.Setup(s, p)
		}
		s.Barrier()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			pr.Evaluate(c)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
			b, gerr := ityr.GetSlice(s, pr.Bodies)
			if gerr != nil {
				panic(gerr)
			}
			got = b
		}
	})
	if err != nil {
		panic(err)
	}
	p = p.WithDefaults()
	ref := fmm.GenBodiesDist(p.N, p.Seed, p.Dist)
	cells := fmm.BuildTree(ref, p.NCrit)
	fmm.EvaluateHost(cells, ref, p.Theta)
	ok := len(got) == len(ref)
	for i := 0; ok && i < len(got); i++ {
		if got[i].P != ref[i].P || got[i].AX != ref[i].AX ||
			got[i].AY != ref[i].AY || got[i].AZ != ref[i].AZ {
			ok = false
		}
	}
	return elapsed, rt, ok
}

// faultApps maps app names to their verified runners.
var faultApps = []struct {
	Name string
	Run  func(Scale, *fault.Plan) (sim.Time, *ityr.Runtime, bool)
}{
	{"cilksort", FaultCilksortRun},
	{"utsmem", FaultUTSRun},
	{"fmm", FaultFMMRun},
}

// faultRow assembles one report row from a finished run.
func faultRow(plan, app string, t, clean sim.Time, rt *ityr.Runtime, ok bool) FaultRun {
	run := FaultRun{
		Plan: plan, App: app,
		TimeNs: int64(t), CleanNs: int64(clean), Verified: ok,
	}
	if clean > 0 {
		run.Slowdown = float64(t) / float64(clean)
	}
	cs := rt.Comm().Stats()
	run.Retries = cs.Retries
	run.RetryStallNs = cs.RetryNs
	ss := rt.Sched().Stats
	run.Steals = ss.Steals
	run.FailedSteals = ss.FailedSteals
	run.StealTimeouts = ss.StealTimeouts
	run.Blacklists = ss.Blacklists
	run.BlacklistSkips = ss.BlacklistSkips
	if inj := rt.Injector(); inj != nil {
		run.InjectedFailures = inj.Stats().Injected
	}
	return run
}

// FaultBench runs every app clean and then under each canned fault plan,
// printing a table to w and returning the report. Every run's output is
// verified; an unverified run is a harness bug, surfaced in the table
// and the report rather than silently dropped.
func FaultBench(w io.Writer, sc Scale) FaultReport {
	rep := FaultReport{
		Schema: "itoyori-faults/v1", Scale: sc.Name, Seed: faultSeed,
		Ranks: sc.FixedRanks, CoresPerNode: sc.CoresPerNode,
	}
	plans := fault.CannedPlans(faultSeed)
	fmt.Fprintf(w, "\n== Fault plans: cilksort/utsmem/fmm on %d ranks (%d/node), seed %d ==\n",
		sc.FixedRanks, sc.CoresPerNode, faultSeed)
	fmt.Fprintf(w, "%-10s %-16s %12s %9s %9s %8s %8s %6s  %s\n",
		"app", "plan", "time (ms)", "slowdown", "injected", "retries", "stall ms", "blist", "verified")
	for _, app := range faultApps {
		cleanT, cleanRT, cleanOK := app.Run(sc, nil)
		row := faultRow("clean", app.Name, cleanT, cleanT, cleanRT, cleanOK)
		rep.Runs = append(rep.Runs, row)
		printFaultRow(w, row)
		for i := range plans {
			t, rt, ok := app.Run(sc, &plans[i])
			row := faultRow(plans[i].Name, app.Name, t, cleanT, rt, ok)
			rep.Runs = append(rep.Runs, row)
			printFaultRow(w, row)
		}
	}
	return rep
}

func printFaultRow(w io.Writer, r FaultRun) {
	verdict := "ok"
	if !r.Verified {
		verdict = "FAILED"
	}
	fmt.Fprintf(w, "%-10s %-16s %12.3f %8.2fx %9d %8d %8.3f %6d  %s\n",
		r.App, r.Plan, float64(r.TimeNs)/1e6, r.Slowdown,
		r.InjectedFailures, r.Retries, float64(r.RetryStallNs)/1e6,
		r.Blacklists, verdict)
}
