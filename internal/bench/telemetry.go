// Live run telemetry: a periodic stderr heartbeat for long host runs
// (the 16K-rank scaling sweep, fleets, the perf suite), so a multi-minute
// point is no longer a silent wait. Each line reports the in-flight run's
// label and rank count, the simulation's live virtual-time watermark and
// event-dispatch rate (sim.Engine.LiveTime/LiveEvents — lock-free
// snapshots the engine publishes while running), and the host's resident
// set. Telemetry is host-side observability only: it reads the engine's
// atomics and never touches simulated state, so armed or not, simulated
// results are bit-identical.

package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ityr/internal/sim"
)

// hbWriter / hbEvery arm the heartbeat (cmd/itybench's -heartbeat flag);
// a zero interval — the default — disables it and keeps every run path at
// a single branch.
var (
	hbWriter io.Writer
	hbEvery  time.Duration
)

// SetHeartbeat arms the live-telemetry heartbeat for subsequent runs:
// progress lines go to w every interval. An interval <= 0 (or nil w)
// disarms it.
func SetHeartbeat(w io.Writer, every time.Duration) {
	if every <= 0 || w == nil {
		hbWriter, hbEvery = nil, 0
		return
	}
	hbWriter, hbEvery = w, every
}

// watchEngine starts the heartbeat for one in-flight simulation and
// returns its stop function (a no-op func when disarmed). The watcher
// polls the engine's live snapshots from its own goroutine; the engine
// publishes them at serial pop intervals and sharded round boundaries.
func watchEngine(label string, ranks int, eng *sim.Engine) func() {
	w, every := hbWriter, hbEvery
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(every)
		defer tick.Stop()
		lastEv := eng.LiveEvents()
		lastT := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				ev, now := eng.LiveEvents(), time.Now()
				rate := float64(ev-lastEv) / now.Sub(lastT).Seconds()
				fmt.Fprintf(w, "[hb] %-24s ranks=%d sim=%.3fms events=%d events/sec=%.0f rss=%.1fMB\n",
					label, ranks, float64(eng.LiveTime())/1e6, ev, rate,
					float64(hostRSSBytes())/1e6)
				lastEv, lastT = ev, now
			}
		}
	}()
	return func() { close(done); <-stopped }
}

// watchCounter is the fleet-mode heartbeat: progress is completed-member
// count rather than a single engine's clock. done is the fleet's shared
// completion counter.
func watchCounter(label string, total int, done *atomic.Uint64) func() {
	w, every := hbWriter, hbEvery
	if every <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				fmt.Fprintf(w, "[hb] %-24s done=%d/%d rss=%.1fMB\n",
					label, done.Load(), total, float64(hostRSSBytes())/1e6)
			}
		}
	}()
	return func() { close(quit); <-stopped }
}

// hostRSSBytes reads the process's resident set from /proc/self/statm
// (resident pages × page size), falling back to the Go heap size where
// procfs is unavailable.
func hostRSSBytes() uint64 {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		if f := strings.Fields(string(b)); len(f) >= 2 {
			if pages, err := strconv.ParseUint(f[1], 10, 64); err == nil {
				return pages * uint64(os.Getpagesize())
			}
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
