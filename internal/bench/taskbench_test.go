package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"reflect"
	"testing"

	"ityr"
	"ityr/internal/apps/taskbench"
)

// TestTaskbenchSuiteMatrix pins the shape of the matrix: every graph
// shape × task grain × scheduling policy produces exactly one cell, each
// with a live simulated time and nonzero wire traffic. A shape or policy
// added to the runtime without joining the gate shows up here.
func TestTaskbenchSuiteMatrix(t *testing.T) {
	rep := TaskbenchSuite(io.Discard, Smoke)
	if rep.Schema != TaskbenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, TaskbenchSchema)
	}
	if rep.Scale != Smoke.Name {
		t.Fatalf("scale = %q, want %q", rep.Scale, Smoke.Name)
	}
	want := len(taskbench.Shapes) * len(taskbenchGrains) * len(ityr.SchedPolicies)
	if len(rep.Experiments) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Experiments), want)
	}
	for _, shape := range taskbench.Shapes {
		for _, g := range taskbenchGrains {
			for _, pol := range ityr.SchedPolicies {
				name := fmt.Sprintf("%s/%s/%s", shape, g.name, pol)
				m, ok := rep.Experiments[name]
				if !ok {
					t.Errorf("matrix is missing cell %q", name)
					continue
				}
				if m.SimNs <= 0 || m.RMABytes == 0 {
					t.Errorf("%s: degenerate cell %+v", name, m)
				}
			}
		}
	}
}

// TestTaskbenchSuiteDeterministic is the contract perfgate's ±2% gate
// rests on: the whole matrix is bit-identical run-to-run, so any drift a
// CI compare reports is a code change, not noise.
func TestTaskbenchSuiteDeterministic(t *testing.T) {
	a := TaskbenchSuite(io.Discard, Smoke)
	b := TaskbenchSuite(io.Discard, Smoke)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("suite is not deterministic:\n  first:  %+v\n  second: %+v", a, b)
	}
}

// TestTaskbenchBaselineFresh requires the checked-in BENCH_taskbench.json
// to match what the current code produces, cell for cell. Because the
// simulator is deterministic this is an exact comparison, which makes a
// CI perfgate failure reproducible locally: if this test fails, the
// baseline is stale — regenerate it with `make taskbench-baseline` and
// review the diff as part of the change.
func TestTaskbenchBaselineFresh(t *testing.T) {
	f, err := os.Open("../../BENCH_taskbench.json")
	if err != nil {
		t.Fatalf("checked-in baseline missing: %v", err)
	}
	defer f.Close()
	base, err := ReadReport(f, TaskbenchSchema)
	if err != nil {
		t.Fatal(err)
	}
	cur := TaskbenchSuite(io.Discard, Smoke)
	if base.Coalesce != cur.Coalesce || base.Prefetch != cur.Prefetch || base.Scale != cur.Scale {
		t.Fatalf("baseline knobs (scale=%s coalesce=%v prefetch=%d) differ from suite defaults (scale=%s coalesce=%v prefetch=%d)",
			base.Scale, base.Coalesce, base.Prefetch, cur.Scale, cur.Coalesce, cur.Prefetch)
	}
	if len(base.Experiments) != len(cur.Experiments) {
		t.Errorf("baseline has %d cells, current suite %d — regenerate with `make taskbench-baseline`",
			len(base.Experiments), len(cur.Experiments))
	}
	for name, cm := range cur.Experiments {
		bm, ok := base.Experiments[name]
		if !ok {
			t.Errorf("cell %q absent from baseline — regenerate with `make taskbench-baseline`", name)
			continue
		}
		if bm != cm {
			t.Errorf("%s: baseline %+v != current %+v — regenerate with `make taskbench-baseline`", name, bm, cm)
		}
	}
}

// TestReadReportSchemaGuard pins that a taskbench report can never be
// compared against a perf baseline or vice versa: ReadReport (and the
// perf-flavored ReadPerfReport) reject a report carrying the other
// suite's schema.
func TestReadReportSchemaGuard(t *testing.T) {
	rep := PerfReport{
		Schema:      TaskbenchSchema,
		Scale:       "smoke",
		Experiments: map[string]PerfMetrics{"stencil/fine/childfirst": {SimNs: 1, RoundTrips: 2, RMABytes: 3}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadReport(bytes.NewReader(raw), TaskbenchSchema); err != nil {
		t.Fatalf("matching schema rejected: %v", err)
	}
	if _, err := ReadReport(bytes.NewReader(raw), PerfSchema); err == nil {
		t.Error("ReadReport accepted a taskbench report as a perf report")
	}
	if _, err := ReadPerfReport(bytes.NewReader(raw)); err == nil {
		t.Error("ReadPerfReport accepted a taskbench report")
	}
}

// TestExplicitChildFirstMatchesPinned is the scheduler-seam golden pin:
// selecting -sched childfirst explicitly (rather than by default) routes
// through the same SetSchedPolicy path itybench uses and must reproduce
// the pre-seam kernel digest bit for bit. Together with
// TestPinnedKernelDigests (which exercises the default), this pins that
// introducing the policy seam changed nothing about the paper's
// child-first schedule.
func TestExplicitChildFirstMatchesPinned(t *testing.T) {
	old := schedPolicy
	defer SetSchedPolicy(old)
	SetSchedPolicy(ityr.ChildFirst)
	pol := ityr.WriteBackLazy
	want := pinnedKernelDigests[pol.String()]
	if got := kernelDigest(t, Smoke, pol); got != want {
		t.Errorf("explicit childfirst diverged from the pre-seam capture:\n  pinned: %s\n  got:    %s", want, got)
	}
}
