// Host-performance microbenchmarks: how fast the *host* executes the
// simulation, as opposed to every other file in this package, which measures
// simulated time. The runner drives the same dispatch regimes as the
// internal/sim and internal/rma benchmarks and emits a machine-readable
// report (BENCH_sim.json) so the host-perf trajectory can be tracked across
// PRs. None of this affects simulated results.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"ityr"
	"ityr/internal/apps/halo"
	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// HostPerfBaseline holds the ns/op of the pre-fast-path event kernel
// (container/heap queue, one allocation and two channel handoffs per event),
// measured on the same regimes when the zero-handoff kernel landed. Future
// runs compare against these to report the cumulative speedup.
var HostPerfBaseline = map[string]float64{
	"SimEngine/AdvanceFast": 571.7,
	"SimEngine/AdvanceSelf": 573.8,
	"SimEngine/PingPong":    589.3,
	"SimEngine/ParkWake":    668.8,
	"SimEngine/Callbacks":   54.07,
	"SimEngine/Mixed":       625.7,
	"RMAOps/PutFlush":       1719.0,
	"RMAOps/GetBatch":       862.9,
	"RMAOps/FetchAndAdd":    675.1,
	"RMAOps/LocalPut":       760.3,
}

// HostPerfResult is one benchmark's outcome, in both ns/op and ops/sec of
// host wall-clock ("ops" are simulated events for the SimEngine group and
// one-sided operations for the RMAOps group).
type HostPerfResult struct {
	Name             string  `json:"name"`
	Metric           string  `json:"metric"`
	NsPerOp          float64 `json:"ns_per_op"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBase    float64 `json:"speedup_vs_baseline,omitempty"`
	RunsAveragedOver int     `json:"runs"`
}

// HostSpeedupResult is one (workload, host shard count) sample of the
// parallel host execution sweep: how long the host took to run the same
// simulation with that many engine shards, and whether the simulated
// digest stayed bit-identical to the serial run (it must — a false here
// is a determinism bug, and the speedup column would be meaningless).
type HostSpeedupResult struct {
	Workload  string  `json:"workload"`
	HostProcs int     `json:"host_procs"`
	HostMs    float64 `json:"host_ms"`
	// SpeedupVsSerial is serial host time / this host time. On a
	// single-core host this hovers around 1.0 regardless of HostProcs;
	// interpret it against HostCPUs in the enclosing report.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	DigestOK        bool    `json:"digest_matches_serial"`
}

// HostPerfReport is the BENCH_sim.json document.
type HostPerfReport struct {
	Schema string `json:"schema"`
	Count  int    `json:"count"`
	// HostCPUs is runtime.NumCPU() on the measuring host — the hard
	// ceiling on any host_speedup number below. A sweep run on a 1-CPU
	// container cannot show parallel speedup no matter how well the
	// sharded engine scales; record the denominator so readers can tell
	// "engine doesn't scale" apart from "host has no cores".
	HostCPUs    int                 `json:"host_cpus"`
	Benchmarks  []HostPerfResult    `json:"benchmarks"`
	HostSpeedup []HostSpeedupResult `json:"host_speedup,omitempty"`
	// Scaling is the 64→16K rank-count sweep (itybench -scaling).
	Scaling []ScalingPoint `json:"scaling,omitempty"`
	// Fleet is the concurrent-independent-simulations throughput
	// measurement (itybench -fleet N).
	Fleet *FleetResult `json:"fleet,omitempty"`
}

func hostPerfCases() []struct {
	name, metric string
	fn           func(b *testing.B)
} {
	return []struct {
		name, metric string
		fn           func(b *testing.B)
	}{
		{"SimEngine/AdvanceFast", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					p.Advance(10)
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/AdvanceSelf", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					p.Advance(0)
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/PingPong", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			for pi := 0; pi < 2; pi++ {
				e.Spawn("p", func(p *sim.Proc) {
					for i := 0; i < b.N/2; i++ {
						p.Advance(10)
					}
				})
			}
			runEngine(b, e)
		}},
		{"SimEngine/ParkWake", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			consumer := e.Spawn("consumer", func(p *sim.Proc) {
				for i := 0; i < b.N/2; i++ {
					p.Park()
				}
			})
			e.Spawn("producer", func(p *sim.Proc) {
				for i := 0; i < b.N/2; i++ {
					p.Advance(5)
					consumer.Wake()
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/Callbacks", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			n := 0
			var tick func()
			tick = func() {
				if n < b.N {
					n++
					e.After(10, tick)
				}
			}
			e.After(10, tick)
			runEngine(b, e)
		}},
		{"SimEngine/Mixed", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("poller", func(p *sim.Proc) {
				for i := 0; i < b.N/16; i++ {
					p.Advance(1000)
				}
			})
			e.Spawn("issuer", func(p *sim.Proc) {
				for i := 0; i < b.N-b.N/16; i++ {
					p.Advance(50)
				}
			})
			runEngine(b, e)
		}},
		{"RMAOps/PutFlush", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.Put(r, buf, 1, 0)
					r.Flush()
				}
			})
		}},
		{"RMAOps/GetBatch", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i += 8 {
					for j := 0; j < 8 && i+j < n; j++ {
						w.Get(r, 1, 0, buf)
					}
					r.Flush()
				}
			})
		}},
		{"RMAOps/FetchAndAdd", "ops/sec", func(b *testing.B) {
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.FetchAndAdd(r, 1, 0, 1)
				}
			})
		}},
		{"RMAOps/LocalPut", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.Put(r, buf, 0, 0)
				}
				r.Flush()
			})
		}},
	}
}

func runEngine(b *testing.B, e *sim.Engine) {
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func runRMA(b *testing.B, body func(r *rma.Rank, w *rma.Win, n int)) {
	e := sim.NewEngine()
	c := rma.New(e, 2, netmodel.Default(2))
	w := c.NewUniformWin(1 << 16)
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			if r.ID() == 0 {
				body(r, w, b.N)
			}
		})
	}
	runEngine(b, e)
}

// hostSpeedupWorkloads are the end-to-end simulations the -procs sweep
// times. Each returns a digest of every simulated observable so the sweep
// can verify bit-identical results across host shard counts.
var hostSpeedupWorkloads = []struct {
	name string
	run  func(procs int) string
}{
	// halo is pure SPMD: every rank lives on its own shard for the whole
	// run, so this is the workload on which host parallelism can pay.
	{"halo-spmd", func(procs int) string {
		res, err := halo.Run(halo.Config{
			Ranks:        32,
			CoresPerNode: 8,
			CellsPerRank: 4096,
			Steps:        50,
			HostProcs:    procs,
		})
		if err != nil {
			panic(err)
		}
		return res.Digest()
	}},
	// cilksort spends almost all its time inside a fork-join region,
	// which pins the engine to the global (serial) phase; expect ~1.0x
	// at any shard count. Included deliberately: it documents the limit
	// of the current sharding model, and its digest still must match.
	{"cilksort-forkjoin", func(procs int) string {
		prev := hostProcs
		SetHostProcs(procs)
		defer SetHostProcs(prev)
		elapsed, rt := CilksortRun(1<<18, 16<<10, 16, 8, ityr.WriteBackLazy, 11)
		return fmt.Sprintf("elapsed=%d rma=%+v", elapsed, rt.Comm().Stats())
	}},
}

// HostSpeedupSweep times each workload at host shard counts 1, 2, 4, ...
// up to maxProcs, checking digest parity against the serial run at every
// point. Results go into the report's host_speedup section.
func HostSpeedupSweep(w io.Writer, maxProcs int) []HostSpeedupResult {
	var out []HostSpeedupResult
	for _, wl := range hostSpeedupWorkloads {
		var serialDigest string
		var serialMs float64
		for procs := 1; procs <= maxProcs; procs *= 2 {
			t0 := time.Now()
			digest := wl.run(procs)
			hostMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			if procs == 1 {
				serialDigest, serialMs = digest, hostMs
			}
			res := HostSpeedupResult{
				Workload:        wl.name,
				HostProcs:       procs,
				HostMs:          hostMs,
				SpeedupVsSerial: serialMs / hostMs,
				DigestOK:        digest == serialDigest,
			}
			status := "digest ok"
			if !res.DigestOK {
				status = "DIGEST MISMATCH"
			}
			fmt.Fprintf(w, "%-20s procs=%-2d %10.1f ms  %5.2fx vs serial  (%s)\n",
				wl.name, procs, res.HostMs, res.SpeedupVsSerial, status)
			out = append(out, res)
		}
	}
	return out
}

// HostPerf runs every microbenchmark count times, keeps each one's best run
// (standard practice for throughput benchmarks: the minimum ns/op is the
// least-disturbed measurement), then runs the host-speedup sweep up to
// maxProcs engine shards, writes a human summary to w, and returns the
// report for serialization.
func HostPerf(w io.Writer, count, maxProcs int) HostPerfReport {
	if count < 1 {
		count = 1
	}
	if maxProcs < 1 {
		maxProcs = 1
	}
	rep := HostPerfReport{
		Schema:   "itoyori-hostperf/v3",
		Count:    count,
		HostCPUs: runtime.NumCPU(),
	}
	for _, c := range hostPerfCases() {
		best := 0.0 // ns/op; 0 = unset
		for i := 0; i < count; i++ {
			r := testing.Benchmark(c.fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		res := HostPerfResult{
			Name:             c.name,
			Metric:           c.metric,
			NsPerOp:          best,
			OpsPerSec:        1e9 / best,
			RunsAveragedOver: count,
		}
		if base, ok := HostPerfBaseline[c.name]; ok {
			res.BaselineNsPerOp = base
			res.SpeedupVsBase = base / best
		}
		fmt.Fprintf(w, "%-24s %10.2f ns/op  %14.0f %s  (%5.1fx vs pre-fast-path kernel)\n",
			c.name, res.NsPerOp, res.OpsPerSec, res.Metric, res.SpeedupVsBase)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	fmt.Fprintf(w, "host-speedup sweep (%d host CPU(s) available):\n", rep.HostCPUs)
	rep.HostSpeedup = HostSpeedupSweep(w, maxProcs)
	return rep
}

// WriteJSON serializes the report as indented JSON.
func (rep HostPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
