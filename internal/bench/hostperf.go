// Host-performance microbenchmarks: how fast the *host* executes the
// simulation, as opposed to every other file in this package, which measures
// simulated time. The runner drives the same dispatch regimes as the
// internal/sim and internal/rma benchmarks and emits a machine-readable
// report (BENCH_sim.json) so the host-perf trajectory can be tracked across
// PRs. None of this affects simulated results.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// HostPerfBaseline holds the ns/op of the pre-fast-path event kernel
// (container/heap queue, one allocation and two channel handoffs per event),
// measured on the same regimes when the zero-handoff kernel landed. Future
// runs compare against these to report the cumulative speedup.
var HostPerfBaseline = map[string]float64{
	"SimEngine/AdvanceFast": 571.7,
	"SimEngine/AdvanceSelf": 573.8,
	"SimEngine/PingPong":    589.3,
	"SimEngine/ParkWake":    668.8,
	"SimEngine/Callbacks":   54.07,
	"SimEngine/Mixed":       625.7,
	"RMAOps/PutFlush":       1719.0,
	"RMAOps/GetBatch":       862.9,
	"RMAOps/FetchAndAdd":    675.1,
	"RMAOps/LocalPut":       760.3,
}

// HostPerfResult is one benchmark's outcome, in both ns/op and ops/sec of
// host wall-clock ("ops" are simulated events for the SimEngine group and
// one-sided operations for the RMAOps group).
type HostPerfResult struct {
	Name             string  `json:"name"`
	Metric           string  `json:"metric"`
	NsPerOp          float64 `json:"ns_per_op"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBase    float64 `json:"speedup_vs_baseline,omitempty"`
	RunsAveragedOver int     `json:"runs"`
}

// HostPerfReport is the BENCH_sim.json document.
type HostPerfReport struct {
	Schema     string           `json:"schema"`
	Count      int              `json:"count"`
	Benchmarks []HostPerfResult `json:"benchmarks"`
}

func hostPerfCases() []struct {
	name, metric string
	fn           func(b *testing.B)
} {
	return []struct {
		name, metric string
		fn           func(b *testing.B)
	}{
		{"SimEngine/AdvanceFast", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					p.Advance(10)
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/AdvanceSelf", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					p.Advance(0)
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/PingPong", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			for pi := 0; pi < 2; pi++ {
				e.Spawn("p", func(p *sim.Proc) {
					for i := 0; i < b.N/2; i++ {
						p.Advance(10)
					}
				})
			}
			runEngine(b, e)
		}},
		{"SimEngine/ParkWake", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			consumer := e.Spawn("consumer", func(p *sim.Proc) {
				for i := 0; i < b.N/2; i++ {
					p.Park()
				}
			})
			e.Spawn("producer", func(p *sim.Proc) {
				for i := 0; i < b.N/2; i++ {
					p.Advance(5)
					consumer.Wake()
				}
			})
			runEngine(b, e)
		}},
		{"SimEngine/Callbacks", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			n := 0
			var tick func()
			tick = func() {
				if n < b.N {
					n++
					e.After(10, tick)
				}
			}
			e.After(10, tick)
			runEngine(b, e)
		}},
		{"SimEngine/Mixed", "events/sec", func(b *testing.B) {
			e := sim.NewEngine()
			e.Spawn("poller", func(p *sim.Proc) {
				for i := 0; i < b.N/16; i++ {
					p.Advance(1000)
				}
			})
			e.Spawn("issuer", func(p *sim.Proc) {
				for i := 0; i < b.N-b.N/16; i++ {
					p.Advance(50)
				}
			})
			runEngine(b, e)
		}},
		{"RMAOps/PutFlush", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.Put(r, buf, 1, 0)
					r.Flush()
				}
			})
		}},
		{"RMAOps/GetBatch", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i += 8 {
					for j := 0; j < 8 && i+j < n; j++ {
						w.Get(r, 1, 0, buf)
					}
					r.Flush()
				}
			})
		}},
		{"RMAOps/FetchAndAdd", "ops/sec", func(b *testing.B) {
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.FetchAndAdd(r, 1, 0, 1)
				}
			})
		}},
		{"RMAOps/LocalPut", "ops/sec", func(b *testing.B) {
			buf := make([]byte, 256)
			runRMA(b, func(r *rma.Rank, w *rma.Win, n int) {
				for i := 0; i < n; i++ {
					w.Put(r, buf, 0, 0)
				}
				r.Flush()
			})
		}},
	}
}

func runEngine(b *testing.B, e *sim.Engine) {
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func runRMA(b *testing.B, body func(r *rma.Rank, w *rma.Win, n int)) {
	e := sim.NewEngine()
	c := rma.New(e, 2, netmodel.Default(2))
	w := c.NewUniformWin(1 << 16)
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			if r.ID() == 0 {
				body(r, w, b.N)
			}
		})
	}
	runEngine(b, e)
}

// HostPerf runs every microbenchmark count times, keeps each one's best run
// (standard practice for throughput benchmarks: the minimum ns/op is the
// least-disturbed measurement), writes a human summary to w, and returns the
// report for serialization.
func HostPerf(w io.Writer, count int) HostPerfReport {
	if count < 1 {
		count = 1
	}
	rep := HostPerfReport{Schema: "itoyori-hostperf/v1", Count: count}
	for _, c := range hostPerfCases() {
		best := 0.0 // ns/op; 0 = unset
		for i := 0; i < count; i++ {
			r := testing.Benchmark(c.fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		res := HostPerfResult{
			Name:             c.name,
			Metric:           c.metric,
			NsPerOp:          best,
			OpsPerSec:        1e9 / best,
			RunsAveragedOver: count,
		}
		if base, ok := HostPerfBaseline[c.name]; ok {
			res.BaselineNsPerOp = base
			res.SpeedupVsBase = base / best
		}
		fmt.Fprintf(w, "%-24s %10.2f ns/op  %14.0f %s  (%5.1fx vs pre-fast-path kernel)\n",
			c.name, res.NsPerOp, res.OpsPerSec, res.Metric, res.SpeedupVsBase)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep
}

// WriteJSON serializes the report as indented JSON.
func (rep HostPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
