package bench

import (
	"fmt"
	"io"
	"testing"

	"ityr"
	"ityr/internal/fault"
)

// faultDigest is configDigest (the kernel-determinism digest: stats, prof
// breakdown, full trace stream, final clock) with a fault plan armed and
// victim blacklisting on.
func faultDigest(t *testing.T, plan *fault.Plan) string {
	t.Helper()
	cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
	if plan != nil {
		cfg.Faults = plan
		cfg.Sched.VictimBlacklist = true
	}
	return configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
}

// TestFaultDeterminismGolden pins the tentpole's core guarantee: the same
// plan (same seed) yields a bit-identical run — every injected failure,
// retry backoff, latency spike, straggler window and blacklist decision
// replays exactly. Each canned plan is run twice and the two digests must
// match.
func TestFaultDeterminismGolden(t *testing.T) {
	plans := fault.CannedPlans(11)
	for i := range plans {
		a := faultDigest(t, &plans[i])
		b := faultDigest(t, &plans[i])
		t.Logf("%-16s %s", plans[i].Name, a)
		if a != b {
			t.Errorf("%s: run-to-run digest mismatch:\n  first:  %s\n  second: %s",
				plans[i].Name, a, b)
		}
	}
}

// TestEmptyPlanMatchesNoPlan pins the zero-overhead-when-off property at
// the observable level: arming an empty plan (injector present, nothing
// to inject) must not move a single virtual timestamp or event relative
// to a run with no injector at all. Victim blacklisting stays off in both
// runs — it is a scheduling feature that legitimately reroutes steals
// (healthy runs hit the 20µs steal timeout too), not injector overhead.
func TestEmptyPlanMatchesNoPlan(t *testing.T) {
	cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
	none := configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	cfg.Faults = &fault.Plan{Name: "empty", Seed: 11}
	empty := configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	if none != empty {
		t.Errorf("empty plan perturbed the run:\n  no plan:    %s\n  empty plan: %s", none, empty)
	}
}

// TestFaultPlansAppsTerminate runs all three applications to completion
// under every canned plan with output verification — sortedness +
// checksum conservation for cilksort, host node count for UTS-Mem,
// bit-exact potentials for FMM.
func TestFaultPlansAppsTerminate(t *testing.T) {
	plans := fault.CannedPlans(11)
	for _, app := range faultApps {
		for i := range plans {
			t.Run(app.Name+"/"+plans[i].Name, func(t *testing.T) {
				_, rt, ok := app.Run(Smoke, &plans[i], 0)
				if !ok {
					t.Errorf("%s under %s: output verification failed", app.Name, plans[i].Name)
				}
				if inj := rt.Injector(); inj == nil {
					t.Errorf("injector not armed")
				}
			})
		}
	}
}

// TestFaultBenchSmoke exercises the whole itybench -faults path and
// asserts the resilience machinery visibly engaged: the flaky-rma plan
// must inject failures and cause retries, and the straggler plan must
// slow the run down versus clean.
func TestFaultBenchSmoke(t *testing.T) {
	rep := FaultBench(io.Discard, Smoke)
	if rep.Schema != "itoyori-faults/v2" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	wantRuns := len(faultApps) * (1 + len(fault.CannedPlans(11)) + len(SdcSweepFractions))
	if len(rep.Runs) != wantRuns {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), wantRuns)
	}
	byKey := map[string]FaultRun{}
	for _, r := range rep.Runs {
		if !r.OK {
			t.Errorf("%s under %s (replicate %.2f): verdict not OK (verified=%v escaped=%d)",
				r.App, r.Plan, r.Replicate, r.Verified, r.SdcEscaped)
		}
		key := r.App + "/" + r.Plan
		if r.Plan == "sdc-task" {
			key = fmt.Sprintf("%s/%s/%.2f", r.App, r.Plan, r.Replicate)
		}
		byKey[key] = r
	}
	// The sweep's negative control must demonstrate real corruption, and
	// the protected rows must show the machinery engaging.
	for _, app := range faultApps {
		ctl := byKey[app.Name+"/sdc-task/0.00"]
		if ctl.SdcInjected == 0 || ctl.SdcEscaped == 0 || ctl.Verified {
			t.Errorf("%s sdc negative control: injected=%d escaped=%d verified=%v; want flips, escapes, and failed verification",
				app.Name, ctl.SdcInjected, ctl.SdcEscaped, ctl.Verified)
		}
		prot := byKey[app.Name+"/sdc-task/0.50"]
		if prot.ReplicaTasks == 0 || prot.SdcDetected == 0 {
			t.Errorf("%s sdc at 50%% replication: replicas=%d detected=%d; want both > 0",
				app.Name, prot.ReplicaTasks, prot.SdcDetected)
		}
	}
	flaky := byKey["cilksort/flaky-rma"]
	if flaky.InjectedFailures == 0 || flaky.Retries == 0 {
		t.Errorf("flaky-rma plan injected %d failures, %d retries; want both > 0",
			flaky.InjectedFailures, flaky.Retries)
	}
	if flaky.RetryStallNs == 0 {
		t.Errorf("flaky-rma retries reported zero stall time")
	}
	strag := byKey["cilksort/straggler"]
	if strag.Slowdown <= 1.0 {
		t.Errorf("straggler plan slowdown %.2fx; want > 1x", strag.Slowdown)
	}
	clean := byKey["cilksort/clean"]
	if clean.InjectedFailures != 0 || clean.Retries != 0 || clean.Blacklists != 0 {
		t.Errorf("clean run shows resilience activity: %+v", clean)
	}
}
