package bench

import (
	"io"
	"strings"
	"testing"

	"ityr"
)

func TestFig7SmokeShape(t *testing.T) {
	var sb strings.Builder
	rows := Fig7(&sb, Smoke)
	if len(rows) != len(ityr.Policies)*len(Smoke.Cutoffs) {
		t.Fatalf("rows = %d", len(rows))
	}
	// At the smallest cutoff, No Cache must be the slowest policy.
	var noCache, lazy Row
	for _, r := range rows {
		if r.Param != Smoke.Cutoffs[0] {
			continue
		}
		switch r.Policy {
		case ityr.NoCache.String():
			noCache = r
		case ityr.WriteBackLazy.String():
			lazy = r
		}
	}
	if noCache.Time <= lazy.Time {
		t.Errorf("fine grain: no-cache (%d) should exceed lazy (%d)", noCache.Time, lazy.Time)
	}
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Error("missing header")
	}
}

func TestFig8SmokeShape(t *testing.T) {
	rows, _ := Fig8(io.Discard, Smoke)
	// More ranks must not be drastically slower for the big input with
	// caching.
	byRanks := map[int]Row{}
	for _, r := range rows {
		if r.Policy == ityr.WriteBackLazy.String() && r.Param == Smoke.CilksortBigN {
			byRanks[r.Ranks] = r
		}
	}
	lo, hi := byRanks[Smoke.Ranks[0]], byRanks[Smoke.Ranks[len(Smoke.Ranks)-1]]
	if hi.Time > lo.Time*2 {
		t.Errorf("scaling regressed: %d ranks %d ns vs %d ranks %d ns", lo.Ranks, lo.Time, hi.Ranks, hi.Time)
	}
}

func TestFig9SmokeBreakdownSums(t *testing.T) {
	rows := Fig9(io.Discard, Smoke)
	// Fractions for each (workload, ranks) group must sum to ~1.
	sums := map[string]float64{}
	for _, r := range rows {
		key := r.Workload + "/" + string(rune(r.Ranks))
		sums[key] += r.Value
	}
	for k, s := range sums {
		if s < 0.99 || s > 1.01 {
			t.Errorf("breakdown %q sums to %f", k, s)
		}
	}
}

func TestFig10SmokeShape(t *testing.T) {
	rows := Fig10(io.Discard, Smoke)
	// Caching must beat no-cache at the top rank count on the big tree.
	var nc, cz Row
	top := Smoke.Ranks[len(Smoke.Ranks)-1]
	for _, r := range rows {
		if r.Workload == Smoke.UTSBig.Name && r.Ranks == top {
			if r.Policy == ityr.NoCache.String() {
				nc = r
			} else {
				cz = r
			}
		}
	}
	if cz.Value <= nc.Value {
		t.Errorf("cached throughput %.0f <= no-cache %.0f", cz.Value, nc.Value)
	}
}

func TestFig11SmokeShape(t *testing.T) {
	rows := Fig11(io.Discard, Smoke)
	// Caching (lazy) must beat no-cache on the big input at top ranks.
	var nc, cz Row
	top := Smoke.Ranks[len(Smoke.Ranks)-1]
	for _, r := range rows {
		if r.Workload == "fmm-1200" && r.Ranks == top {
			switch r.Policy {
			case ityr.NoCache.String():
				nc = r
			case ityr.WriteBackLazy.String():
				cz = r
			}
		}
	}
	if nc.Time == 0 || cz.Time == 0 {
		t.Fatal("missing rows")
	}
	if cz.Time >= nc.Time {
		t.Errorf("cached FMM (%d) not faster than no-cache (%d)", cz.Time, nc.Time)
	}
}

func TestTable2SmokeShape(t *testing.T) {
	rows := Table2(io.Discard, Smoke)
	if rows[0].Value != 0 {
		t.Errorf("1-node idleness = %f", rows[0].Value)
	}
	last := rows[len(rows)-1]
	if last.Value < 0 || last.Value >= 1 {
		t.Errorf("idleness out of range: %f", last.Value)
	}
}

func TestTable1Prints(t *testing.T) {
	var sb strings.Builder
	Table1(&sb, Smoke)
	if !strings.Contains(sb.String(), "Tofu") {
		t.Error("environment table incomplete")
	}
}
