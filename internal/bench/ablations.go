package bench

import (
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/fmmmpi"
	"ityr/internal/apps/uts"
	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// Ablation experiments probing the design choices DESIGN.md calls out:
// sub-block size (§4.3.1), cache capacity (§3.3), distribution policy
// (§4.2), lazy release (§5.2), FMM θ, the node-shared cache (§3.2 future
// work) and locality-aware stealing (§8 future work).

// ablUTSTree returns the tree used by the UTS-based ablations at sc.
func ablUTSTree(sc Scale) uts.Tree {
	t := sc.UTSSmall
	t.Name = "abl-" + t.Name
	return t
}

// utsTraversalTime builds the tree and returns the traversal time plus the
// runtime for stats, under an explicit cache geometry.
func utsTraversalTime(tree uts.Tree, cfg ityr.Config) (sim.Time, *ityr.Runtime) {
	rt := ityr.NewRuntime(cfg)
	var trav sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		var root ityr.GPtr[uts.Node]
		s.RootExec(func(c *ityr.Ctx) { root, _ = uts.Build(c, tree) })
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { uts.Traverse(c, root) })
		if s.Rank() == 0 {
			trav = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return trav, rt
}

// cilksortSortTime generates and sorts, returning the sort time and the
// runtime for stats.
func cilksortSortTime(cfg ityr.Config, n, cutoff int64, d ityr.DistPolicy) (sim.Time, *ityr.Runtime) {
	rt := ityr.NewRuntime(cfg)
	var elapsed sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, d)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, d)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) { cilksort.Generate(c, a, 77) })
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { cilksort.Sort(c, a, b, cutoff) })
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt
}

// AblationSubBlock sweeps the remote-fetch granularity on the UTS-Mem
// traversal (§4.3.1).
func AblationSubBlock(w io.Writer, sc Scale) {
	tree := ablUTSTree(sc)
	fmt.Fprintf(w, "\n== Ablation: sub-block size (UTS traversal, %d ranks) ==\n", sc.FixedRanks)
	for _, sbs := range []int{256, 1 << 10, 4 << 10, 16 << 10} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
		cfg.Pgas.SubBlockSize = sbs
		trav, rt := utsTraversalTime(tree, cfg)
		fmt.Fprintf(w, "  sub-block %6d B: traverse %8.3f ms, fetched %6.2f MB in %d ops\n",
			sbs, ms(trav), float64(rt.Space().Stats.FetchBytes)/1e6, rt.Space().Stats.FetchOps)
	}
}

// AblationCacheSize sweeps the per-process cache capacity on Cilksort
// (§3.3).
func AblationCacheSize(w io.Writer, sc Scale) {
	n := sc.CilksortBigN
	fmt.Fprintf(w, "\n== Ablation: cache capacity (Cilksort %d elements, %d ranks, cutoff 4K) ==\n", n, sc.FixedRanks)
	for _, cache := range []int{512 << 10, 2 << 20, 16 << 20} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
		cfg.Pgas.CacheSize = cache
		t, rt := cilksortSortTime(cfg, n, 4<<10, ityr.BlockCyclicDist)
		fmt.Fprintf(w, "  cache %4d KiB: sort %8.3f ms, evictions %d, refetched %.2f MB\n",
			cache>>10, ms(t), rt.Space().Stats.Evictions, float64(rt.Space().Stats.FetchBytes)/1e6)
	}
}

// AblationDistribution compares block vs block-cyclic distribution (§4.2).
func AblationDistribution(w io.Writer, sc Scale) {
	n := sc.CilksortBigN
	// Narrow nodes (4 ranks each) sharpen the home-placement difference:
	// block distribution concentrates each merge phase's traffic on a few
	// home nodes, block-cyclic spreads it.
	fmt.Fprintf(w, "\n== Ablation: distribution policy (Cilksort %d elements, %d ranks, 4/node) ==\n", n, sc.FixedRanks)
	for _, d := range []ityr.DistPolicy{ityr.BlockDist, ityr.BlockCyclicDist} {
		cfg := runtimeConfig(sc.FixedRanks, 4, ityr.WriteBackLazy, 5)
		t, rt := cilksortSortTime(cfg, n, 16<<10, d)
		name := "block"
		if d == ityr.BlockCyclicDist {
			name = "block-cyclic"
		}
		fmt.Fprintf(w, "  %-14s sort %8.3f ms (fetched %.2f MB)\n",
			name, ms(t), float64(rt.Space().Stats.FetchBytes)/1e6)
	}
}

// AblationLazyRelease isolates §5.2 at fine task grain.
func AblationLazyRelease(w io.Writer, sc Scale) {
	n := sc.CilksortN
	fmt.Fprintf(w, "\n== Ablation: lazy release (Cilksort %d elements, cutoff 256, %d ranks) ==\n", n, sc.FixedRanks)
	for _, pol := range []ityr.Policy{ityr.WriteBack, ityr.WriteBackLazy} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, pol, 5)
		t, rt := cilksortSortTime(cfg, n, 256, ityr.BlockCyclicDist)
		fmt.Fprintf(w, "  %-20s sort %8.3f ms (lazy releases deferred: %d)\n",
			pol, ms(t), rt.Space().Stats.LazyReleases)
	}
}

// AblationFMMTheta sweeps the accuracy/cost tradeoff of the acceptance
// criterion.
func AblationFMMTheta(w io.Writer, sc Scale) {
	n := sc.FMMSmallN
	fmt.Fprintf(w, "\n== Ablation: FMM θ sweep (%d bodies, %d ranks) ==\n", n, sc.FixedRanks)
	for _, theta := range []float64{0.2, 0.3, 0.5} {
		p := fmm.Params{N: n, Theta: theta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 7}
		t, _ := FMMRun(p, sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 9)
		bodies := fmm.GenBodies(p.N, p.Seed)
		cells := fmm.BuildTree(bodies, p.NCrit)
		k := fmm.CountKernels(cells, theta)
		fmt.Fprintf(w, "  θ=%.2f: eval %8.3f ms (P2P pairs %9d, M2L %6d)\n",
			theta, ms(t), k.P2PPairs, k.M2L)
	}
}

// AblationSharedCache compares private and node-shared caches on UTS-Mem
// (§3.2 future work).
func AblationSharedCache(w io.Writer, sc Scale) {
	tree := ablUTSTree(sc)
	fmt.Fprintf(w, "\n== Ablation: node-shared cache (UTS traversal, %d ranks, %d/node) ==\n",
		sc.FixedRanks, sc.CoresPerNode)
	for _, shared := range []bool{false, true} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
		cfg.Pgas.SharedCache = shared
		trav, rt := utsTraversalTime(tree, cfg)
		name := "private caches"
		if shared {
			name = "node-shared cache"
		}
		fmt.Fprintf(w, "  %-18s traverse %8.3f ms, fetched %6.2f MB\n",
			name, ms(trav), float64(rt.Space().Stats.FetchBytes)/1e6)
	}
}

// AblationLocalitySteals compares random and locality-aware victim
// selection (§8 future work).
func AblationLocalitySteals(w io.Writer, sc Scale) {
	n := sc.CilksortN
	fmt.Fprintf(w, "\n== Ablation: victim selection (Cilksort %d elements, %d ranks, %d/node) ==\n",
		n, sc.FixedRanks, sc.CoresPerNode)
	for _, loc := range []bool{false, true} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
		cfg.Sched.LocalityAware = loc
		t, rt := cilksortSortTime(cfg, n, 4<<10, ityr.BlockCyclicDist)
		name := "random"
		if loc {
			name = "locality-aware"
		}
		st := rt.Sched().Stats
		fmt.Fprintf(w, "  %-15s sort %8.3f ms (steals %d, %.0f%% intra-node)\n",
			name, ms(t), st.Steals, 100*float64(st.IntraSteals)/float64(st.Steals+1))
	}
}

// AblationFMMDistribution compares particle distributions: clustered
// inputs widen the MPI baseline's static-partitioning imbalance while the
// work-stealing runtime absorbs them.
func AblationFMMDistribution(w io.Writer, sc Scale) {
	n := sc.FMMSmallN
	net := netmodel.Default(sc.CoresPerNode)
	nodes := sc.FixedRanks / sc.CoresPerNode
	if nodes < 2 {
		nodes = 2
	}
	fmt.Fprintf(w, "\n== Ablation: FMM particle distribution (%d bodies, %d ranks; MPI on %d nodes) ==\n",
		n, sc.FixedRanks, nodes)
	for _, d := range []fmm.Dist{fmm.Cube, fmm.Sphere, fmm.Plummer} {
		p := fmm.Params{N: n, Theta: sc.FMMTheta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 7, Dist: d}
		t, _ := FMMRun(p, sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 9)
		r := fmmmpi.Run(p, nodes, sc.CoresPerNode, net)
		fmt.Fprintf(w, "  %-8s itoyori %8.3f ms | MPI %8.3f ms (idleness %.3f)\n",
			d, ms(t), ms(r.Elapsed), r.Idleness)
	}
}

// AblationBatching quantifies the cache communication-batching layer
// (DESIGN.md §4.5): write-back coalescing and sequential prefetch,
// separately and at increasing lookahead depth, on a Cilksort whose merge
// phases stream sequentially through the distributed arrays — the pattern
// both mechanisms target. Two block geometries bracket the effect: the
// paper's 64 KiB blocks over block-cyclic arrays give the mechanisms
// almost nothing to merge (adjacent same-home blocks sit nranks apart and
// working sets span few blocks), so batching must be neutral there, while
// 4 KiB blocks over a block distribution — the perf gate's
// "communication microscope" geometry — expose the per-block structure
// the mechanisms batch. Round trips are the paper's cost driver.
// Coalescing only merges traffic the run would have issued anyway, so
// its time is never worse; prefetch is speculative — it trades extra
// fetched bytes (and occasionally a little time) for fewer round trips,
// which is why the depth sweep is here and why the perf gate pins the
// shipped depth.
func AblationBatching(w io.Writer, sc Scale) {
	n := sc.CilksortN
	variants := []struct {
		name     string
		coalesce bool
		prefetch int
	}{
		{"unbatched", false, 0},
		{"coalesce", true, 0},
		{"coalesce+pf1", true, 1},
		{"coalesce+pf2", true, 2},
		{"coalesce+pf4", true, 4},
		{"coalesce+pf8", true, 8},
	}
	geoms := []struct {
		name string
		fine bool
		dist ityr.DistPolicy
	}{
		{"paper geometry: 64 KiB blocks, block-cyclic", false, ityr.BlockCyclicDist},
		{"fine geometry: 4 KiB blocks, block dist", true, ityr.BlockDist},
	}
	fmt.Fprintf(w, "\n== Ablation: cache communication batching (Cilksort %d elements, cutoff %d, %d ranks) ==\n",
		n, sc.SortCutoff, sc.FixedRanks)
	for _, g := range geoms {
		fmt.Fprintf(w, " -- %s --\n", g.name)
		for _, v := range variants {
			cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
			if g.fine {
				cfg.Pgas.BlockSize = 4 << 10
				cfg.Pgas.SubBlockSize = 512
			}
			cfg.Pgas.CoalesceWriteBack = v.coalesce
			cfg.Pgas.PrefetchBlocks = v.prefetch
			t, rt := cilksortSortTime(cfg, n, sc.SortCutoff, g.dist)
			st := rt.Comm().Stats()
			b := rt.Space().Batch
			fmt.Fprintf(w, "  %-14s sort %8.3f ms: %7d round trips, %5d wb ops, prefetch %4d hits / %d evicted unused\n",
				v.name, ms(t), st.GetOps+st.PutOps+st.AtomicOps,
				rt.Space().Stats.WriteBackOps, b.PrefetchHits, b.PrefetchMisses)
		}
	}
}

// Ablations runs every ablation experiment.
func Ablations(w io.Writer, sc Scale) {
	AblationSubBlock(w, sc)
	AblationCacheSize(w, sc)
	AblationDistribution(w, sc)
	AblationLazyRelease(w, sc)
	AblationFMMTheta(w, sc)
	AblationSharedCache(w, sc)
	AblationLocalitySteals(w, sc)
	AblationFMMDistribution(w, sc)
	AblationOverlap(w, sc)
	AblationBatching(w, sc)
}

// AblationOverlap compares blocking checkout fetches with
// communication-computation overlap (§8 future work) on the UTS-Mem
// traversal, whose cache misses are frequent and latency-bound.
func AblationOverlap(w io.Writer, sc Scale) {
	tree := ablUTSTree(sc)
	fmt.Fprintf(w, "\n== Ablation: communication-computation overlap (UTS traversal, %d ranks) ==\n", sc.FixedRanks)
	for _, overlap := range []bool{false, true} {
		cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 5)
		cfg.Overlap = overlap
		trav, rt := utsTraversalTime(tree, cfg)
		name := "blocking fetches"
		if overlap {
			name = "overlapped fetches"
		}
		fmt.Fprintf(w, "  %-18s traverse %8.3f ms (comm waits overlapped: %d)\n",
			name, ms(trav), rt.Sched().Stats.CommWaits)
	}
}
