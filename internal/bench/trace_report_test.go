package bench

import (
	"bytes"
	"strings"
	"testing"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/trace"
)

// TestCilksortTraceReport is the end-to-end check on the observability
// pipeline: run cilksort on 16 ranks with tracing on, serialize the
// itytrace/v1 dump exactly as the -trace flag does, read it back, and
// require the analysis to produce the numbers cmd/itytrace reports —
// a positive critical path bounded by the work, a busy/steal/idle
// decomposition for all 16 ranks, and a steal-latency histogram whose
// population matches the scheduler's steal count.
func TestCilksortTraceReport(t *testing.T) {
	const nranks = 16
	cfg := runtimeConfig(nranks, 8, ityr.WriteBackLazy, 7)
	cfg.Trace = true
	rt := ityr.NewRuntime(cfg)
	n, cutoff := int64(1<<15), int64(1024)
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Generate(c, a, 7)
			cilksort.Sort(c, a, b, cutoff)
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	l, meta, err := trace.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Ranks != nranks {
		t.Errorf("meta.Ranks = %d, want %d", meta.Ranks, nranks)
	}
	if len(meta.Metrics) == 0 {
		t.Error("dump carries no embedded metrics snapshot")
	}

	a := trace.Analyze(l, meta.Ranks)
	if a.CritPath <= 0 {
		t.Fatalf("critical path = %d, want > 0", a.CritPath)
	}
	if a.Work < a.CritPath {
		t.Errorf("work %d < critical path %d", a.Work, a.CritPath)
	}
	if a.Parallelism <= 1 {
		t.Errorf("parallelism = %.2f, want > 1 for a 16-rank sort", a.Parallelism)
	}
	if a.LiveTasks != 0 {
		t.Errorf("LiveTasks = %d: unbounded trace should close every task", a.LiveTasks)
	}
	if len(a.Ranks) != nranks {
		t.Fatalf("len(Ranks) = %d, want %d", len(a.Ranks), nranks)
	}
	busyRanks := 0
	for _, r := range a.Ranks {
		if tot := r.Busy + r.Steal + r.Idle; tot > a.Elapsed {
			t.Errorf("rank %d: busy+steal+idle %d exceeds elapsed %d", r.Rank, tot, a.Elapsed)
		}
		if r.Busy > 0 {
			busyRanks++
		}
	}
	if busyRanks < 2 {
		t.Errorf("only %d ranks show busy time; work stealing did not spread", busyRanks)
	}
	if got, want := a.Steals, rt.Sched().Stats.Steals; got != int(want) {
		t.Errorf("analysis counts %d steals, scheduler counted %d", got, want)
	}
	if a.StealLatency.Count != uint64(a.Steals) {
		t.Errorf("steal-latency histogram has %d samples for %d steals", a.StealLatency.Count, a.Steals)
	}

	var rep strings.Builder
	a.WriteReport(&rep)
	if err := trace.CacheReport(&rep, meta.Policy, meta.Metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path", "parallelism", "steal latency", "hit rate"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}

// TestMetricsRunStable pins the promise made by `itybench -metrics`: the
// snapshot is deterministic, so two identical runs emit byte-identical
// JSON (stable key order included) that downstream diffing can rely on.
func TestMetricsRunStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := MetricsRun(&a, Smoke); err != nil {
		t.Fatal(err)
	}
	if err := MetricsRun(&b, Smoke); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("metrics snapshots differ between identical runs")
	}
	if !strings.Contains(a.String(), `"schema": "itoyori-metrics/v1"`) {
		t.Errorf("snapshot missing schema marker:\n%.400s", a.String())
	}
}
