package bench

import (
	"testing"

	"ityr"
	"ityr/internal/apps/halo"
	"ityr/internal/sim"
)

// kernelDigestProcs is kernelDigest with an explicit host shard count.
func kernelDigestProcs(t *testing.T, sc Scale, pol ityr.Policy, procs int) string {
	t.Helper()
	cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, pol, 11)
	cfg.HostProcs = procs
	return configDigest(t, cfg, sc.CilksortN, sc.Cutoffs[0])
}

// TestGoldenDigestHostProcsParity is the tentpole acceptance gate for
// parallel host execution: the full golden workload — SPMD allocation and
// barriers, two fork-join regions, tracing on — must produce bit-identical
// digests whether the host runs it on one shard or many. Everything
// simulated (timestamps, traffic stats, cache decisions, the trace stream)
// is covered by the digest; only host-side EngineStats may differ.
//
// Running this test under `go test -race` (the race-all CI job does) also
// makes it the data-race stress for the sharded engine: parallel rounds
// with 4 host workers exercise the mailbox merge, the keyed barrier, and
// the pin/unpin phase transitions under the race detector.
func TestGoldenDigestHostProcsParity(t *testing.T) {
	for _, pol := range ityr.Policies {
		want := kernelDigestProcs(t, Smoke, pol, 1)
		for _, procs := range []int{2, 4} {
			got := kernelDigestProcs(t, Smoke, pol, procs)
			if got != want {
				t.Errorf("%s: digest diverges at HostProcs=%d:\n  procs=1: %s\n  procs=%d: %s",
					pol, procs, want, procs, got)
			}
		}
	}
}

// haloDigest runs the halo-exchange benchmark — the workload whose SPMD
// phases genuinely shard across host workers — and digests it.
func haloDigest(t *testing.T, procs int) (string, sim.Time) {
	t.Helper()
	res, err := halo.Run(halo.Config{
		Ranks:        16,
		CoresPerNode: 8,
		CellsPerRank: 512,
		Steps:        25,
		HostProcs:    procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest(), res.Elapsed
}

// TestHaloHostProcsParity checks digest parity on a workload that spends
// its whole life in parallel rounds (no fork-join region at all): a 1D
// halo exchange over an RMA window, Put+Flush+Barrier per step. Unlike the
// golden workload, every rank's compute and communication here executes on
// its own shard, so this pins down the conservative protocol itself —
// shard clocks, mailbox merges, and the keyed barrier — rather than the
// global-phase fallback.
func TestHaloHostProcsParity(t *testing.T) {
	want, elapsed := haloDigest(t, 1)
	if elapsed <= 0 {
		t.Fatalf("halo run did not advance virtual time")
	}
	for _, procs := range []int{2, 4, 8} {
		got, _ := haloDigest(t, procs)
		if got != want {
			t.Errorf("halo digest diverges at HostProcs=%d:\n  procs=1: %s\n  procs=%d: %s",
				procs, want, procs, got)
		}
	}
}
