package bench

import (
	"testing"

	"ityr"
)

// seedDigests are the TestKernelDeterminismGolden digests of the Smoke
// cilksort configuration captured on the tree immediately before the cache
// communication-batching layer (write-back coalescing + prefetch) was
// added. They pin the layer's zero-cost-when-off contract.
var seedDigests = map[ityr.Policy]string{
	ityr.NoCache:       "elapsed=1072872 final=1155212 events=13515 fnv=f263a64ed20028ff",
	ityr.WriteThrough:  "elapsed=578327 final=661067 events=13769 fnv=65aac4844bbc1689",
	ityr.WriteBack:     "elapsed=590386 final=673126 events=13607 fnv=0a73ab85caa57462",
	ityr.WriteBackLazy: "elapsed=597253 final=679993 events=13415 fnv=a2fb3109db2cdbc4",
}

// TestBatchingOffMatchesSeed proves that with CoalesceWriteBack off and
// PrefetchBlocks zero the runtime reproduces the pre-batching seed digests
// bit-identically — every simulated timestamp, traffic counter, profiler
// bucket and trace event included. Any accidental cost or behaviour change
// on the knobs-off path shows up here as a digest mismatch.
func TestBatchingOffMatchesSeed(t *testing.T) {
	for _, pol := range ityr.Policies {
		cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, pol, 11)
		cfg.Pgas.CoalesceWriteBack = false
		cfg.Pgas.PrefetchBlocks = 0
		got := configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
		if want := seedDigests[pol]; got != want {
			t.Errorf("%s: knobs-off digest drifted from seed:\n  got:  %s\n  want: %s", pol, got, want)
		}
	}
}
