package bench

import (
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/fmmmpi"
	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// FMMRun evaluates the FMM and returns the evaluation time plus the
// runtime for traffic-counter access.
func FMMRun(p fmm.Params, ranks, coresPerNode int, pol ityr.Policy, seed int64) (sim.Time, *ityr.Runtime) {
	return fmmEvalTime(runtimeConfig(ranks, coresPerNode, pol, seed), p)
}

// fmmEvalTime evaluates the FMM under an explicit runtime configuration,
// returning the evaluation time and the runtime for stats.
func fmmEvalTime(cfg ityr.Config, p fmm.Params) (sim.Time, *ityr.Runtime) {
	rt := ityr.NewRuntime(cfg)
	var elapsed sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		var pr fmm.Problem
		if s.Rank() == 0 {
			pr = fmm.Setup(s, p)
		}
		s.Barrier()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			pr.Evaluate(c)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt
}

// Fig11 regenerates Figure 11: ExaFMM execution time, strong scaling for
// two body counts across the four cache policies plus the MPI baseline.
func Fig11(w io.Writer, sc Scale) []Row {
	fmt.Fprintf(w, "\n== Figure 11: FMM strong scaling (θ=%.2f, ncrit=32, nspawn=%d) ==\n",
		sc.FMMTheta, sc.FMMNSpawn)
	fmt.Fprintf(w, "%-10s %-20s %7s %12s %10s\n", "bodies", "policy", "ranks", "time (ms)", "speedup")
	var rows []Row
	net := netmodel.Default(sc.CoresPerNode)
	for _, n := range []int{sc.FMMSmallN, sc.FMMBigN} {
		p := fmm.Params{N: n, Theta: sc.FMMTheta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 21}
		// Serial model from the real kernel counts.
		bodies := fmm.GenBodies(n, p.Seed)
		cells := fmm.BuildTree(bodies, p.NCrit)
		serial := fmm.CountKernels(cells, p.Theta).SerialTime()
		fmt.Fprintf(w, "%-10d %-20s %7d %12.3f %10s\n", n, "(serial model)", 1, ms(serial), "1.0")
		for _, pol := range ityr.Policies {
			for _, ranks := range sc.Ranks {
				t, _ := FMMRun(p, ranks, sc.CoresPerNode, pol, 29)
				sp := float64(serial) / float64(t)
				fmt.Fprintf(w, "%-10d %-20s %7d %12.3f %10.1f\n", n, pol, ranks, ms(t), sp)
				rows = append(rows, Row{Fig: "11", Workload: fmt.Sprintf("fmm-%d", n),
					Policy: pol.String(), Ranks: ranks, Param: int64(n), Time: t, Value: sp})
			}
		}
		// MPI baseline at matching core counts.
		for _, ranks := range sc.Ranks {
			cores := sc.CoresPerNode
			if ranks < cores {
				cores = ranks // partially filled single node
			}
			nodes := (ranks + cores - 1) / cores
			r := fmmmpi.Run(p, nodes, cores, net)
			sp := float64(serial) / float64(r.Elapsed)
			fmt.Fprintf(w, "%-10d %-20s %7d %12.3f %10.1f\n", n, "MPI", ranks, ms(r.Elapsed), sp)
			rows = append(rows, Row{Fig: "11", Workload: fmt.Sprintf("fmm-%d", n),
				Policy: "MPI", Ranks: ranks, Param: int64(n), Time: r.Elapsed, Value: sp})
		}
	}
	return rows
}

// Table2 regenerates Table 2: the idleness of the MPI ExaFMM per node
// count.
func Table2(w io.Writer, sc Scale) []Row {
	fmt.Fprintf(w, "\n== Table 2: Load balance in ExaFMM (MPI), %d bodies ==\n", sc.FMMBigN)
	fmt.Fprintf(w, "%12s %12s\n", "# of nodes", "idleness")
	var rows []Row
	net := netmodel.Default(sc.CoresPerNode)
	p := fmm.Params{N: sc.FMMBigN, Theta: sc.FMMTheta, NCrit: 32, Seed: 21}
	for _, nodes := range sc.MPINodes {
		r := fmmmpi.Run(p, nodes, sc.CoresPerNode, net)
		fmt.Fprintf(w, "%12d %12.2f\n", nodes, r.Idleness)
		rows = append(rows, Row{Fig: "T2", Workload: "fmm-mpi", Policy: "MPI",
			Ranks: nodes * sc.CoresPerNode, Param: int64(nodes), Time: r.Elapsed, Value: r.Idleness})
	}
	return rows
}

// Table1 prints the simulated environment, the analogue of Table 1.
func Table1(w io.Writer, sc Scale) {
	net := netmodel.Default(sc.CoresPerNode)
	fmt.Fprintf(w, "\n== Table 1: simulated experimental environment ==\n")
	fmt.Fprintf(w, "  Processor        simulated cores, analytic cost models (A64FX-flavoured)\n")
	fmt.Fprintf(w, "  Topology         %d cores/node\n", sc.CoresPerNode)
	fmt.Fprintf(w, "  Network          latency %d ns, bandwidth %.1f GB/s/rank, atomic RTT %d ns (Tofu-D-flavoured)\n",
		net.Latency, net.Bandwidth, net.AtomicRTT)
	fmt.Fprintf(w, "  Intra-node       latency %d ns, bandwidth %.1f GB/s (shared memory)\n",
		net.IntraLatency, net.IntraBandwidth)
	fmt.Fprintf(w, "  Memory blocks    64 KiB (sub-blocks 4 KiB), cache 16 MiB/process\n")
	fmt.Fprintf(w, "  Distribution     block-cyclic for collective allocations\n")
}
