package bench

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/pgas"
	"ityr/internal/sim"
)

// kernelDigest runs the Fig. 7 cilksort configuration once under pol with
// tracing enabled and folds every kernel-visible observable into one
// printable digest: the final virtual clock, the measured sort time, the
// RMA traffic counters, the PGAS cache statistics, the scheduler
// statistics, the profiler breakdown, and the complete timestamped trace
// event stream. Any change to event ordering, to a single simulated
// timestamp, or to a single fence/cache decision changes the digest.
func kernelDigest(t *testing.T, sc Scale, pol ityr.Policy) string {
	t.Helper()
	cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, pol, 11)
	return configDigest(t, cfg, sc.CilksortN, sc.Cutoffs[0])
}

// configDigest is the digest body, parameterized over the full runtime
// config so the fault-injection golden (fault_test.go) can reuse it with
// an armed plan.
func configDigest(t *testing.T, cfg ityr.Config, n, cutoff int64) string {
	t.Helper()
	cfg.Trace = true
	rt := ityr.NewRuntime(cfg)
	var elapsed sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Generate(c, a, 11)
		})
		rt.Profiler().Reset()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Sort(c, a, b, cutoff)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "rma=%+v\n", rt.Comm().Stats())
	fmt.Fprintf(h, "pgas=%+v\n", rt.Space().Stats)
	// Batch stats join the digest only when nonzero, so digests of runs
	// with the batching knobs off stay comparable across versions that
	// predate the batching layer (pinned by TestBatchingOffMatchesSeed).
	if b := rt.Space().Batch; b != (pgas.BatchStats{}) {
		fmt.Fprintf(h, "batch=%+v\n", b)
	}
	fmt.Fprintf(h, "sched=%+v\n", rt.Sched().Stats)
	bd := rt.Profiler().Breakdown(elapsed)
	cats := make([]string, 0, len(bd))
	for k := range bd {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	for _, k := range cats {
		fmt.Fprintf(h, "prof %s=%d\n", k, bd[k])
	}
	for _, ev := range rt.Trace().Events() {
		fmt.Fprintf(h, "ev %d %d %d %d %d %d\n", ev.T, ev.Dur, ev.Rank, ev.Kind, ev.Arg, ev.Arg2)
	}
	fmt.Fprintf(h, "final=%d elapsed=%d\n", rt.Engine().Now(), elapsed)
	return fmt.Sprintf("elapsed=%d final=%d events=%d fnv=%016x",
		elapsed, rt.Engine().Now(), rt.Trace().Len(), h.Sum64())
}

// TestKernelDeterminismGolden is the safety net for the event-kernel fast
// path (zero-handoff Advance, coalesced resumes, the hand-rolled event
// queue) and for all future kernel work: it runs the Fig. 7 cilksort
// configuration twice per cache policy with a fixed seed and requires the
// two digests — simulated timestamps, Stats, prof breakdowns and trace
// streams included — to be bit-identical. The digests are also logged so a
// kernel change can be diffed against a pre-change run with `go test -run
// KernelDeterminismGolden -v`.
func TestKernelDeterminismGolden(t *testing.T) {
	for _, pol := range ityr.Policies {
		a := kernelDigest(t, Smoke, pol)
		b := kernelDigest(t, Smoke, pol)
		t.Logf("%-20s %s", pol, a)
		if a != b {
			t.Errorf("%s: run-to-run digest mismatch:\n  first:  %s\n  second: %s", pol, a, b)
		}
	}
}
