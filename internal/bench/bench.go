// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), each printing the same rows/series the
// paper reports and returning them for programmatic checks. The runners
// are shared by cmd/itybench (full-scale reproduction, EXPERIMENTS.md) and
// the root bench_test.go (reduced-scale regeneration under `go test
// -bench`).
package bench

import (
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/apps/uts"
	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// Scale selects experiment sizes. Full approximates the paper's regimes
// scaled to this simulator; Quick is for `go test -bench`; Smoke for unit
// tests of the harness itself.
type Scale struct {
	Name string

	CilksortN    int64
	CilksortBigN int64
	Cutoffs      []int64
	SortCutoff   int64 // cutoff for the scaling study (16K in the paper)

	UTSSmall uts.Tree
	UTSBig   uts.Tree

	FMMSmallN int
	FMMBigN   int
	FMMTheta  float64
	FMMNSpawn int

	Ranks        []int // rank counts for scaling studies
	FixedRanks   int   // rank count for the cutoff study (Fig. 7)
	CoresPerNode int
	MPINodes     []int // node counts for Table 2

	// Task Bench matrix (the -taskbench suite): tasks per step × steps,
	// the per-cell payload each dependency edge moves, and the
	// fine/coarse task-grain pair the suite sweeps.
	TBWidth, TBSteps           int
	TBEdgeBytes                int
	TBFineGrain, TBCoarseGrain sim.Time
}

// Smoke is a tiny scale for harness unit tests.
var Smoke = Scale{
	Name:         "smoke",
	CilksortN:    1 << 14,
	CilksortBigN: 1 << 15,
	Cutoffs:      []int64{256, 1024},
	SortCutoff:   1024,
	UTSSmall:     uts.Tree{Name: "S", Seed: 5, RootKids: 60, MeanKids: 0.9, MaxDepth: 100},
	UTSBig:       uts.Tree{Name: "B", Seed: 5, RootKids: 200, MeanKids: 0.9, MaxDepth: 100},
	FMMSmallN:    600,
	FMMBigN:      1200,
	FMMTheta:     0.4,
	FMMNSpawn:    64,
	Ranks:        []int{4, 8},
	FixedRanks:   8,
	CoresPerNode: 4,
	MPINodes:     []int{1, 2, 4},

	TBWidth: 48, TBSteps: 6, TBEdgeBytes: 256,
	TBFineGrain: 1 * sim.Microsecond, TBCoarseGrain: 20 * sim.Microsecond,
}

// Quick is the scale used by `go test -bench`.
var Quick = Scale{
	Name:         "quick",
	CilksortN:    1 << 18,
	CilksortBigN: 1 << 20,
	Cutoffs:      []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10},
	SortCutoff:   16 << 10,
	UTSSmall:     uts.Tree{Name: "T1S'", Seed: 19, RootKids: 300, MeanKids: 0.99, MaxDepth: 500},
	UTSBig:       uts.T1LPrime,
	FMMSmallN:    3000,
	FMMBigN:      10000,
	FMMTheta:     0.3,
	FMMNSpawn:    256,
	Ranks:        []int{4, 8, 16, 32},
	FixedRanks:   16,
	CoresPerNode: 8,
	MPINodes:     []int{1, 2, 4, 8},

	TBWidth: 128, TBSteps: 10, TBEdgeBytes: 1024,
	TBFineGrain: 1 * sim.Microsecond, TBCoarseGrain: 50 * sim.Microsecond,
}

// Full is the paper-regime scale used by cmd/itybench for EXPERIMENTS.md.
var Full = Scale{
	Name:         "full",
	CilksortN:    1 << 20, // "1G elements" analogue
	CilksortBigN: 1 << 23, // "10G elements" analogue
	Cutoffs:      []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10},
	SortCutoff:   16 << 10,
	UTSSmall:     uts.T1LPrime,  // "T1L" analogue
	UTSBig:       uts.T1XLPrime, // "T1XL" analogue
	FMMSmallN:    10000,         // "1M bodies" analogue
	FMMBigN:      50000,         // "10M bodies" analogue
	FMMTheta:     0.25,          // paper: 0.2; slightly relaxed for tractable P2P volume
	FMMNSpawn:    500,
	Ranks:        []int{4, 8, 16, 32, 64},
	FixedRanks:   32,
	CoresPerNode: 8,
	MPINodes:     []int{1, 2, 4, 8, 16},

	TBWidth: 256, TBSteps: 16, TBEdgeBytes: 4096,
	TBFineGrain: 1 * sim.Microsecond, TBCoarseGrain: 100 * sim.Microsecond,
}

// Row is one measured data point.
type Row struct {
	Fig      string
	Workload string
	Policy   string
	Ranks    int
	Param    int64 // cutoff / node count / tree size, by figure
	Time     sim.Time
	Value    float64 // figure-specific metric (speedup, nodes/s, idleness...)
}

// hostProcs is the engine shard count every experiment runtime uses.
// Simulated results are bit-identical for any value (the parallel host
// execution contract, see internal/sim); it only changes host wall-clock.
var hostProcs = 1

// SetHostProcs sets the host worker count for subsequent experiment runs
// (cmd/itybench's -procs flag). Values below 1 are clamped to 1.
func SetHostProcs(n int) {
	if n < 1 {
		n = 1
	}
	hostProcs = n
}

// cacheCoalesce / cachePrefetch are the cache communication-batching knobs
// every experiment runtime uses (cmd/itybench's -coalesce / -prefetch
// flags). Batching is on by default: the headline experiments report the
// batched cache, and AblationBatching quantifies each knob's contribution.
var (
	cacheCoalesce = true
	cachePrefetch = 2
)

// SetCacheBatching sets the write-back-coalescing and prefetch-depth knobs
// for subsequent experiment runs. Negative depths are clamped to 0 (off).
func SetCacheBatching(coalesce bool, prefetch int) {
	if prefetch < 0 {
		prefetch = 0
	}
	cacheCoalesce = coalesce
	cachePrefetch = prefetch
}

// schedPolicy is the scheduling-policy knob (the CLIs' shared -sched
// flag): the discipline every subsequent experiment runtime uses. The
// default is the paper's child-first policy, which keeps every golden
// digest valid. The taskbench suite ignores it — it always sweeps the
// full policy matrix.
var schedPolicy = ityr.ChildFirst

// SetSchedPolicy sets the scheduling policy for subsequent experiment
// runs.
func SetSchedPolicy(p ityr.SchedPolicy) { schedPolicy = p }

// racksNodes is the rack-topology knob (cmd/itybench's -racks flag):
// nodes per rack for the three-tier network model. 0 — the default —
// keeps the flat two-tier fabric, so existing experiment outputs are
// untouched unless the flag is given.
var racksNodes = 0

// SetRacks selects the three-tier rack topology (netmodel.RackDefault)
// for subsequent experiment runs: nodesPerRack nodes share a rack tier
// between intra-node and fabric. Values below 1 restore the flat fabric.
func SetRacks(nodesPerRack int) {
	if nodesPerRack < 0 {
		nodesPerRack = 0
	}
	racksNodes = nodesPerRack
}

// runtimeConfig assembles the paper-like machine configuration (Table 1,
// scaled): 64 KiB blocks, 4 KiB sub-blocks, 16 MiB private cache per
// process, block-cyclic collective distribution (chosen by the apps), with
// the communication-batching knobs applied.
func runtimeConfig(ranks, coresPerNode int, pol ityr.Policy, seed int64) ityr.Config {
	cfg := ityr.Config{
		Ranks:        ranks,
		CoresPerNode: coresPerNode,
		HostProcs:    hostProcs,
		Pgas: ityr.PgasConfig{
			BlockSize:         64 << 10,
			SubBlockSize:      4 << 10,
			CacheSize:         16 << 20,
			Policy:            pol,
			CoalesceWriteBack: cacheCoalesce,
			PrefetchBlocks:    cachePrefetch,
		},
		Sched: ityr.SchedConfig{Policy: schedPolicy},
		Seed:  seed,
	}
	if racksNodes > 0 {
		net := netmodel.RackDefault(coresPerNode, racksNodes)
		cfg.Net = &net
	}
	return cfg
}

// ms renders virtual nanoseconds as milliseconds.
func ms(t sim.Time) float64 { return float64(t) / 1e6 }

// CilksortRun sorts n elements at the given cutoff and returns the sorting
// time (generation excluded, as in the paper) and the runtime for profiler
// access.
func CilksortRun(n, cutoff int64, ranks, coresPerNode int, pol ityr.Policy, seed int64) (sim.Time, *ityr.Runtime) {
	rt := ityr.NewRuntime(runtimeConfig(ranks, coresPerNode, pol, seed))
	stopHB := watchEngine(fmt.Sprintf("cilksort n=%d", n), ranks, rt.Engine())
	defer stopHB()
	var elapsed sim.Time
	err := rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Generate(c, a, uint64(seed))
		})
		rt.Profiler().Reset()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			cilksort.Sort(c, a, b, cutoff)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, rt
}

// MetricsRun runs the canonical Fig. 7 cilksort configuration (the lazy
// write-back policy on the scale's fixed rank count) and writes the
// run's "itoyori-metrics/v1" snapshot — the machine-readable runtime
// counters that accompany the BENCH_sim.json host-perf report.
func MetricsRun(w io.Writer, sc Scale) error {
	_, rt := CilksortRun(sc.CilksortN, sc.SortCutoff, sc.FixedRanks, sc.CoresPerNode, ityr.WriteBackLazy, 11)
	return rt.WriteMetrics(w)
}

// Fig7 regenerates Figure 7: Cilksort execution time across task cutoffs
// for the four cache policies on a fixed rank count.
func Fig7(w io.Writer, sc Scale) []Row {
	fmt.Fprintf(w, "\n== Figure 7: Cilksort (%d elements) vs cutoff on %d ranks (%d/node) ==\n",
		sc.CilksortN, sc.FixedRanks, sc.CoresPerNode)
	fmt.Fprintf(w, "%-20s %10s %14s\n", "policy", "cutoff", "time (ms)")
	var rows []Row
	for _, pol := range ityr.Policies {
		for _, cutoff := range sc.Cutoffs {
			t, _ := CilksortRun(sc.CilksortN, cutoff, sc.FixedRanks, sc.CoresPerNode, pol, 11)
			fmt.Fprintf(w, "%-20s %10d %14.3f\n", pol, cutoff, ms(t))
			rows = append(rows, Row{Fig: "7", Workload: "cilksort", Policy: pol.String(),
				Ranks: sc.FixedRanks, Param: cutoff, Time: t})
		}
	}
	return rows
}

// Fig8 regenerates Figure 8: Cilksort strong scaling for two input sizes,
// No Cache vs Write-Back (Lazy), with speedups over the modelled serial
// execution. It returns the rows and the per-run runtimes of the lazy
// configuration for Fig. 9's breakdowns.
func Fig8(w io.Writer, sc Scale) ([]Row, map[string]*ityr.Runtime) {
	fmt.Fprintf(w, "\n== Figure 8: Cilksort strong scaling (cutoff %d) ==\n", sc.SortCutoff)
	fmt.Fprintf(w, "%-10s %-20s %7s %12s %10s\n", "size", "policy", "ranks", "time (ms)", "speedup")
	var rows []Row
	lazyRuntimes := make(map[string]*ityr.Runtime)
	for _, n := range []int64{sc.CilksortN, sc.CilksortBigN} {
		serial := cilksort.SerialTime(n)
		fmt.Fprintf(w, "%-10d %-20s %7d %12.3f %10s\n", n, "(serial model)", 1, ms(serial), "1.0")
		for _, pol := range []ityr.Policy{ityr.NoCache, ityr.WriteBackLazy} {
			for _, ranks := range sc.Ranks {
				t, rt := CilksortRun(n, sc.SortCutoff, ranks, sc.CoresPerNode, pol, 13)
				sp := float64(serial) / float64(t)
				fmt.Fprintf(w, "%-10d %-20s %7d %12.3f %10.1f\n", n, pol, ranks, ms(t), sp)
				rows = append(rows, Row{Fig: "8", Workload: fmt.Sprintf("cilksort-%d", n),
					Policy: pol.String(), Ranks: ranks, Param: n, Time: t, Value: sp})
				if pol == ityr.WriteBackLazy {
					lazyRuntimes[fmt.Sprintf("%d/%d", n, ranks)] = rt
				}
			}
		}
	}
	return rows, lazyRuntimes
}

// Fig9 regenerates Figure 9: the per-category performance breakdown of the
// Write-Back (Lazy) Cilksort runs, normalized per input size.
func Fig9(w io.Writer, sc Scale) []Row {
	fmt.Fprintf(w, "\n== Figure 9: Cilksort Write-Back (Lazy) breakdown ==\n")
	var rows []Row
	for _, n := range []int64{sc.CilksortN, sc.CilksortBigN} {
		for _, ranks := range sc.Ranks {
			t, rt := CilksortRun(n, sc.SortCutoff, ranks, sc.CoresPerNode, ityr.WriteBackLazy, 13)
			bd := rt.Profiler().Breakdown(t)
			fmt.Fprintf(w, "-- %d elements, %d ranks (total %0.3f ms x %d ranks) --\n", n, ranks, ms(t), ranks)
			var total sim.Time
			for _, v := range bd {
				total += v
			}
			for _, cat := range []string{
				cilksort.CatGet, "Checkout", "Checkin", "Release", "Lazy Release",
				"Acquire", cilksort.CatMerge, cilksort.CatQuicksort, "Others",
			} {
				v := bd[cat]
				frac := 0.0
				if total > 0 {
					frac = float64(v) / float64(total)
				}
				fmt.Fprintf(w, "   %-18s %10.3f ms  %5.1f%%\n", cat, ms(v), 100*frac)
				rows = append(rows, Row{Fig: "9", Workload: fmt.Sprintf("cilksort-%d", n),
					Policy: cat, Ranks: ranks, Time: v, Value: frac})
			}
		}
	}
	return rows
}

// UTSRun builds the tree, then measures traversal time and throughput,
// returning the runtime as well for traffic-counter access.
func UTSRun(tree uts.Tree, ranks, coresPerNode int, pol ityr.Policy, seed int64) (sim.Time, int64, *ityr.Runtime) {
	rt := ityr.NewRuntime(runtimeConfig(ranks, coresPerNode, pol, seed))
	stopHB := watchEngine("utsmem "+tree.Name, ranks, rt.Engine())
	defer stopHB()
	var elapsed sim.Time
	var nodes int64
	err := rt.Run(func(s *ityr.SPMD) {
		var root ityr.GPtr[uts.Node]
		s.RootExec(func(c *ityr.Ctx) {
			root, _ = uts.Build(c, tree)
		})
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) {
			nodes = uts.Traverse(c, root)
		})
		if s.Rank() == 0 {
			elapsed = s.Now() - t0
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed, nodes, rt
}

// Fig10 regenerates Figure 10: UTS-Mem traversal throughput (nodes/s) for
// the two trees, Cache (Write-Back, Lazy) vs No Cache, strong scaling.
func Fig10(w io.Writer, sc Scale) []Row {
	fmt.Fprintf(w, "\n== Figure 10: UTS-Mem traversal throughput ==\n")
	fmt.Fprintf(w, "%-8s %-20s %7s %12s %16s\n", "tree", "policy", "ranks", "time (ms)", "nodes/s")
	var rows []Row
	for _, tree := range []uts.Tree{sc.UTSSmall, sc.UTSBig} {
		for _, pol := range []ityr.Policy{ityr.NoCache, ityr.WriteBackLazy} {
			for _, ranks := range sc.Ranks {
				t, n, _ := UTSRun(tree, ranks, sc.CoresPerNode, pol, 17)
				tput := float64(n) / (float64(t) / 1e9)
				fmt.Fprintf(w, "%-8s %-20s %7d %12.3f %16.0f\n", tree.Name, pol, ranks, ms(t), tput)
				rows = append(rows, Row{Fig: "10", Workload: tree.Name, Policy: pol.String(),
					Ranks: ranks, Param: n, Time: t, Value: tput})
			}
		}
	}
	return rows
}
