package bench

import (
	"testing"

	"ityr"
	"ityr/internal/apps/halo"
)

// The digests below were captured on the commit preceding the per-rank
// memory diet and the three-tier network model. They pin the promise those
// changes make: with the default two-tier topology (NodesPerRack unset)
// the simulated schedule — every timestamp, every RMA counter, every trace
// event — is bit-identical to what the repo produced before. A mismatch
// here means the refactor changed simulated behaviour, not just host cost.
//
// kernelDigest covers the fork-join path (cilksort at the Smoke scale,
// tracing on); the halo digests cover the pure-SPMD path at two geometries,
// including the 64-rank config the fleet benchmark replicates. Each config
// is also run sharded (HostProcs > 1) to pin that parallel host execution
// still reproduces the exact same pre-PR schedule.

var pinnedKernelDigests = map[string]string{
	"No Cache":          "elapsed=1072872 final=1155212 events=13515 fnv=f263a64ed20028ff",
	"Write-Through":     "elapsed=578327 final=661067 events=13769 fnv=65aac4844bbc1689",
	"Write-Back":        "elapsed=590386 final=673126 events=13607 fnv=0a73ab85caa57462",
	"Write-Back (Lazy)": "elapsed=597253 final=679993 events=13415 fnv=c0b23cefbbe25faa",
}

func TestPinnedKernelDigests(t *testing.T) {
	for _, pol := range ityr.Policies {
		want, ok := pinnedKernelDigests[pol.String()]
		if !ok {
			t.Fatalf("no pinned digest for policy %q — capture one and add it", pol)
		}
		if got := kernelDigest(t, Smoke, pol); got != want {
			t.Errorf("%s: kernel digest diverged from pre-diet capture:\n  pinned: %s\n  got:    %s",
				pol, want, got)
		}
	}
}

var pinnedHaloDigests = []struct {
	cfg  halo.Config
	want string
}{
	// The host-speedup sweep's halo geometry (hostperf.go).
	{halo.Config{Ranks: 32, CoresPerNode: 8, CellsPerRank: 4096, Steps: 50},
		"elapsed=1089091 checksum=40ef4c5200201dca fnv=6d217bb135526c09"},
	// The fleet benchmark's per-member geometry (scaling.go).
	{halo.Config{Ranks: 64, CoresPerNode: 8, CellsPerRank: 256, Steps: 20},
		"elapsed=335701 checksum=40be660f44097649 fnv=1df8cbae82d9ef9b"},
}

func TestPinnedHaloDigests(t *testing.T) {
	for _, tc := range pinnedHaloDigests {
		for _, procs := range []int{1, 4} {
			cfg := tc.cfg
			cfg.HostProcs = procs
			res, err := halo.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Digest(); got != tc.want {
				t.Errorf("halo %dx%d steps=%d procs=%d diverged from pre-diet capture:\n  pinned: %s\n  got:    %s",
					cfg.Ranks, cfg.CellsPerRank, cfg.Steps, procs, tc.want, got)
			}
		}
	}
}
