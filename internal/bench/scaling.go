// Rank-count scaling sweep and fleet throughput: the paper-scale serving
// story. The paper evaluates Itoyori at 1,728 ranks (36 A64FX nodes); the
// sweep here runs the same two workload archetypes — halo (pure SPMD,
// shardable end to end) and cilksort (fork-join, globally serialized
// steals) — from 64 simulated ranks up to 16,384, recording how host cost
// and memory grow with rank count. Fleet mode answers the complementary
// question: how many *independent* deterministic simulations per second
// the host can serve when they run concurrently on separate goroutines,
// digest-verified against a serial reference. Like hostperf.go, everything
// in this file measures the host; simulated results are pinned elsewhere.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ityr"
	"ityr/internal/apps/halo"
)

// ScalingRanks is the rank-count curve the sweep measures: the paper's
// smallest evaluation points, its headline 1,728-rank machine, and the
// 16K target of ROADMAP item 1.
var ScalingRanks = []int{64, 512, 1728, 4096, 16384}

// ScalingPoint is one (workload, rank count) sample of the sweep.
type ScalingPoint struct {
	Workload string  `json:"workload"`
	Ranks    int     `json:"ranks"`
	HostMs   float64 `json:"host_ms"`
	SimMs    float64 `json:"sim_ms"`
	// Events is the number of simulation-kernel events the run dispatched;
	// EventsPerSec is the host's dispatch throughput on this workload.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"host_events_per_sec"`
	// AllocBytesPerRank is the run's total host heap allocation divided by
	// the rank count — the affordability metric that must stay flat as
	// ranks grow (the pre-diet per-rank state made it grow linearly with
	// n, i.e. O(n²) total).
	AllocBytesPerRank float64 `json:"alloc_bytes_per_rank"`
}

// scalingWorkloads are the sweep's workload archetypes. Each runs the
// workload at the given rank count (with the package-level hostProcs
// shard knob) and returns simulated ns and kernel events.
var scalingWorkloads = []struct {
	name string
	// maxRanks bounds the curve per workload (0 = no bound).
	maxRanks int
	run      func(ranks int) (simNs int64, events uint64)
}{
	{"halo-spmd", 0, func(ranks int) (int64, uint64) {
		res, err := runHaloWatched("halo-spmd", halo.Config{
			Ranks:        ranks,
			CoresPerNode: 8,
			CellsPerRank: 256,
			Steps:        10,
			HostProcs:    hostProcs,
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed, res.Events
	}},
	// halo on the three-tier rack topology (4 nodes/rack): same stencil,
	// but every ring neighbour pair is attributed to the self/node/rack/
	// fabric locality tier the profile's communication matrix reports.
	{"halo-racks", 0, func(ranks int) (int64, uint64) {
		res, err := runHaloWatched("halo-racks", halo.Config{
			Ranks:        ranks,
			CoresPerNode: 8,
			NodesPerRack: 4,
			CellsPerRank: 256,
			Steps:        10,
			HostProcs:    hostProcs,
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed, res.Events
	}},
	{"cilksort-forkjoin", 0, func(ranks int) (int64, uint64) {
		elapsed, rt := CilksortRun(1<<18, 16<<10, ranks, 8, ityr.WriteBackLazy, 11)
		return elapsed, rt.Engine().Stats().Events
	}},
}

// runHaloWatched runs halo with the live-telemetry heartbeat attached for
// the run's duration (a no-op when the heartbeat is disarmed).
func runHaloWatched(label string, cfg halo.Config) (halo.Result, error) {
	stop := func() {}
	cfg.Observe = func(rt *ityr.Runtime) {
		stop = watchEngine(label, cfg.Ranks, rt.Engine())
	}
	res, err := halo.Run(cfg)
	stop()
	return res, err
}

// ScalingSweep measures every workload at every rank count of curve
// (ScalingRanks when nil), writing a human-readable table to w and
// returning the points for the report's scaling section.
func ScalingSweep(w io.Writer, curve []int) []ScalingPoint {
	if curve == nil {
		curve = ScalingRanks
	}
	var out []ScalingPoint
	fmt.Fprintf(w, "%-20s %7s %10s %10s %12s %14s %12s\n",
		"workload", "ranks", "host ms", "sim ms", "events", "events/sec", "alloc/rank")
	for _, wl := range scalingWorkloads {
		for _, ranks := range curve {
			if wl.maxRanks > 0 && ranks > wl.maxRanks {
				continue
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			simNs, events := wl.run(ranks)
			hostNs := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			pt := ScalingPoint{
				Workload:          wl.name,
				Ranks:             ranks,
				HostMs:            float64(hostNs) / 1e6,
				SimMs:             float64(simNs) / 1e6,
				Events:            events,
				EventsPerSec:      float64(events) / (float64(hostNs) / 1e9),
				AllocBytesPerRank: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ranks),
			}
			fmt.Fprintf(w, "%-20s %7d %10.1f %10.3f %12d %14.0f %9.1fKB\n",
				pt.Workload, pt.Ranks, pt.HostMs, pt.SimMs, pt.Events,
				pt.EventsPerSec, pt.AllocBytesPerRank/1024)
			out = append(out, pt)
		}
	}
	return out
}

// FleetResult aggregates a fleet run: N independent copies of the same
// deterministic simulation executed concurrently across host goroutines.
type FleetResult struct {
	Sims    int `json:"sims"`
	Workers int `json:"host_workers"`
	// Ranks/Cells/Steps identify the per-member workload (one halo run).
	Ranks  int     `json:"ranks_per_sim"`
	HostMs float64 `json:"host_ms"`
	// SimsPerSec is the serving throughput: completed simulations per
	// host wall-clock second across the whole fleet.
	SimsPerSec float64 `json:"sims_per_sec"`
	// Events/EventsPerSec aggregate kernel dispatch over the fleet.
	Events       uint64  `json:"total_events"`
	EventsPerSec float64 `json:"host_events_per_sec"`
	// DigestOK reports that every member produced the identical digest —
	// engines running concurrently in one host process must not perturb
	// one another (a false here means shared mutable state leaked between
	// supposedly independent simulations).
	DigestOK bool `json:"digests_deterministic"`
}

// fleetConfig is the per-member workload: small enough that a fleet of
// hundreds finishes promptly, and identical across members so every
// digest must match bit for bit.
var fleetConfig = halo.Config{Ranks: 64, CoresPerNode: 8, CellsPerRank: 256, Steps: 20}

// FleetRun executes sims independent copies of fleetConfig across workers
// host goroutines (0 = GOMAXPROCS), each member on its own serial engine,
// verifies all digests agree, and returns aggregate throughput.
func FleetRun(w io.Writer, sims, workers int) FleetResult {
	if sims < 1 {
		sims = 1
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sims {
		workers = sims
	}
	digests := make([]string, sims)
	events := make([]uint64, sims)
	var completed atomic.Uint64
	stopHB := watchCounter(fmt.Sprintf("fleet x%d ranks=%d", sims, fleetConfig.Ranks), sims, &completed)
	var wg sync.WaitGroup
	next := make(chan int)
	t0 := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				res, err := halo.Run(fleetConfig)
				if err != nil {
					panic(err)
				}
				digests[idx] = res.Digest()
				events[idx] = res.Events
				completed.Add(1)
			}
		}()
	}
	for idx := 0; idx < sims; idx++ {
		next <- idx
	}
	close(next)
	wg.Wait()
	stopHB()
	hostNs := time.Since(t0).Nanoseconds()
	res := FleetResult{
		Sims:       sims,
		Workers:    workers,
		Ranks:      fleetConfig.Ranks,
		HostMs:     float64(hostNs) / 1e6,
		SimsPerSec: float64(sims) / (float64(hostNs) / 1e9),
		DigestOK:   true,
	}
	for i := 0; i < sims; i++ {
		res.Events += events[i]
		if digests[i] != digests[0] {
			res.DigestOK = false
		}
	}
	res.EventsPerSec = float64(res.Events) / (float64(hostNs) / 1e9)
	status := "digests ok"
	if !res.DigestOK {
		status = "DIGEST MISMATCH"
	}
	fmt.Fprintf(w, "fleet: %d sims x %d ranks on %d workers: %.1f ms, %.1f sims/sec, %.0f events/sec (%s)\n",
		res.Sims, res.Ranks, res.Workers, res.HostMs, res.SimsPerSec, res.EventsPerSec, status)
	return res
}
