package bench

import (
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/taskbench"
	"ityr/internal/sim"
)

// The taskbench suite is the workload-matrix counterpart of the perf
// suite: instead of three hand-picked apps, it sweeps the Task Bench
// dependency-graph generator over graph shape × task grain × scheduling
// policy, and gates every cell's simulated time and RMA traffic. A
// scheduler or cache change that helps stencils but hurts irregular
// graphs — or helps child-first but regresses help-first — shows up as a
// per-cell finding rather than averaging away.

// TaskbenchSchema identifies the BENCH_taskbench.json format.
const TaskbenchSchema = "itoyori-taskbench/v1"

// taskbenchGrains names the two task-grain columns of the matrix.
var taskbenchGrains = []struct {
	name  string
	grain func(Scale) sim.Time
}{
	{"fine", func(sc Scale) sim.Time { return sc.TBFineGrain }},
	{"coarse", func(sc Scale) sim.Time { return sc.TBCoarseGrain }},
}

// TaskbenchSuite runs the shape × grain × scheduler matrix at sc under
// the current batching knobs and returns the report (schema
// itoyori-taskbench/v1, gate it with perfgate -schema taskbench). Every
// cell is one taskbench.Run on the perf-suite machine geometry; cell
// names are shape/grain/policy. The suite deliberately ignores the
// -sched global: the matrix always covers all three policies, and the
// per-cell checksum is verified to be policy-invariant before any number
// is reported.
func TaskbenchSuite(w io.Writer, sc Scale) PerfReport {
	rep := PerfReport{
		Schema:      TaskbenchSchema,
		Scale:       sc.Name,
		Coalesce:    cacheCoalesce,
		Prefetch:    cachePrefetch,
		Experiments: map[string]PerfMetrics{},
	}
	fmt.Fprintf(w, "\n== Task Bench matrix (%s scale, %d ranks, W=%d S=%d edge=%dB) ==\n",
		sc.Name, sc.FixedRanks, sc.TBWidth, sc.TBSteps, sc.TBEdgeBytes)
	fmt.Fprintf(w, "%-28s %14s %12s %14s %8s\n", "cell", "sim time (ms)", "round trips", "rma bytes", "steals")
	for si, shape := range taskbench.Shapes {
		for _, g := range taskbenchGrains {
			// The checksum is a pure function of the graph; if a policy
			// disagrees, its schedule broke the program — fail loudly
			// rather than gating garbage numbers.
			var checksum uint64
			for pi, pol := range ityr.SchedPolicies {
				p := taskbench.Params{
					Shape:     shape,
					Width:     sc.TBWidth,
					Steps:     sc.TBSteps,
					GrainNs:   g.grain(sc),
					EdgeBytes: sc.TBEdgeBytes,
					Seed:      int64(100 + si),
				}
				cfg := perfConfig(sc, ityr.WriteBackLazy, int64(300+si))
				cfg.Sched.Policy = pol
				res, err := taskbench.Run(cfg, p)
				if err != nil {
					panic(fmt.Sprintf("taskbench %v/%s/%v: %v", shape, g.name, pol, err))
				}
				if pi == 0 {
					checksum = res.Checksum
				} else if res.Checksum != checksum {
					panic(fmt.Sprintf("taskbench %v/%s: %v checksum %016x != %016x — scheduler broke the program",
						shape, g.name, pol, res.Checksum, checksum))
				}
				name := fmt.Sprintf("%s/%s/%s", shape, g.name, pol)
				m := perfMetrics(res.Elapsed, res.Stats)
				rep.Experiments[name] = m
				fmt.Fprintf(w, "%-28s %14.3f %12d %14d %8d\n", name, ms(res.Elapsed), m.RoundTrips, m.RMABytes, res.Steals)
			}
		}
	}
	return rep
}
