package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/apps/halo"
	"ityr/internal/netmodel"
	"ityr/internal/profile"
)

// haloProfileConfig is the profile-equivalence workload: a 16-rank ring on
// the three-tier rack topology (4 cores/node, 2 nodes/rack), so the
// communication matrix must attribute self, node, rack AND fabric traffic.
func haloProfileConfig(procs int, prof bool) halo.Config {
	return halo.Config{
		Ranks:        16,
		CoresPerNode: 4,
		NodesPerRack: 2,
		CellsPerRank: 256,
		Steps:        15,
		HostProcs:    procs,
		Profile:      prof,
	}
}

func haloProfileRun(t *testing.T, procs int, prof bool) (string, []byte) {
	t.Helper()
	res, err := halo.Run(haloProfileConfig(procs, prof))
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	if prof {
		if res.Profile == nil {
			t.Fatal("profile armed but Result.Profile is nil")
		}
		if snap, err = json.Marshal(res.Profile); err != nil {
			t.Fatal(err)
		}
	}
	return res.Digest(), snap
}

// TestProfileShardedSerialEquivalence is the tentpole determinism gate for
// the streaming profile: per-rank accumulators recorded across 4 host
// shards must merge (rank-ordered fold) to the byte-identical snapshot the
// serial engine produces. Under `go test -race` (the race-all CI job) it
// doubles as the data-race stress for lock-free per-rank recording.
func TestProfileShardedSerialEquivalence(t *testing.T) {
	_, want := haloProfileRun(t, 1, true)
	for _, procs := range []int{2, 4} {
		_, got := haloProfileRun(t, procs, true)
		if !bytes.Equal(got, want) {
			t.Errorf("profile snapshot diverges at HostProcs=%d:\n  procs=1: %s\n  procs=%d: %s",
				procs, want, procs, got)
		}
	}
	var doc profile.Doc
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != profile.Schema || doc.Ranks != 16 {
		t.Errorf("snapshot header = %s/%d", doc.Schema, doc.Ranks)
	}
	if doc.Rollup.PutOps == 0 || doc.Rollup.BarrierNs == 0 || doc.Rollup.StallNs == 0 {
		t.Errorf("halo rollup missing expected activity: %+v", doc.Rollup)
	}
	// The ring topology on 4-rank nodes and 2-node racks crosses every
	// locality tier except self.
	byTier := map[string]uint64{}
	for _, ts := range doc.Tiers {
		byTier[ts.Tier] = ts.Ops
	}
	if byTier["node"] == 0 || byTier["rack"] == 0 || byTier["fabric"] == 0 {
		t.Errorf("rack-topology ring should touch node, rack and fabric tiers: %+v", doc.Tiers)
	}
	if doc.Matrix == nil {
		t.Error("16-rank run should carry the exact matrix")
	}
}

// TestProfileForkJoinEquivalence covers the other engine regime: cilksort
// lives in the globally serialized fork-join phase, where spans come from
// the scheduler (task/steal/idle) rather than SPMD barriers.
func TestProfileForkJoinEquivalence(t *testing.T) {
	run := func(procs int) []byte {
		cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
		cfg.HostProcs = procs
		cfg.Profile = true
		rt := ityr.NewRuntime(cfg)
		err := rt.Run(func(s *ityr.SPMD) {
			var a, b ityr.GSpan[cilksort.Elem]
			if s.Rank() == 0 {
				a = ityr.AllocArraySPMD[cilksort.Elem](s, Smoke.CilksortN, ityr.BlockCyclicDist)
				b = ityr.AllocArraySPMD[cilksort.Elem](s, Smoke.CilksortN, ityr.BlockCyclicDist)
			}
			s.Barrier()
			s.RootExec(func(c *ityr.Ctx) { cilksort.Generate(c, a, 11) })
			s.RootExec(func(c *ityr.Ctx) { cilksort.Sort(c, a, b, Smoke.Cutoffs[0]) })
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rt.WriteProfile(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	for _, procs := range []int{4} {
		if got := run(procs); !bytes.Equal(got, want) {
			t.Errorf("fork-join profile diverges at HostProcs=%d", procs)
		}
	}
	var doc profile.Doc
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Rollup.TaskNs == 0 || doc.Rollup.CheckoutCalls == 0 {
		t.Errorf("fork-join rollup missing task/checkout activity: %+v", doc.Rollup)
	}
}

// TestProfileDigestInert: arming the profile must not perturb a single
// simulated observable — golden digests are bit-identical with it on or
// off (recording reads the clock but never advances it).
func TestProfileDigestInert(t *testing.T) {
	off, _ := haloProfileRun(t, 1, false)
	on, _ := haloProfileRun(t, 1, true)
	if on != off {
		t.Errorf("profiling perturbed the digest:\n  off: %s\n  on:  %s", off, on)
	}
}

// Profile state budgets at the 16K-rank scale: O(buckets + top-K) per
// rank, never O(ranks²). The collector alone must stay within
// profileBudgetBytesPerRank, and a full runtime with profiling armed must
// still fit the PR-wide per-rank setup budget — the profile rides in the
// headroom the memory diet left.
const profileBudgetBytesPerRank = 3 * 1024

func retainedBytes(t *testing.T, f func() any) float64 {
	t.Helper()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	keep := f()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	ret := float64(int64(m1.HeapAlloc) - int64(m0.HeapAlloc))
	runtime.KeepAlive(keep)
	return ret
}

func TestProfileMemoryBudget16K(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-rank profile setup allocates ~30MB; skipped under -short")
	}
	net := netmodel.RackDefault(8, 4)
	small := retainedBytes(t, func() any { return profile.New(1024, net) }) / 1024
	big := retainedBytes(t, func() any { return profile.New(budgetRanks, net) }) / budgetRanks
	t.Logf("profile state: %.0f B/rank at 1K ranks, %.0f B/rank at %d ranks (budget %d)",
		small, big, budgetRanks, profileBudgetBytesPerRank)
	if big > profileBudgetBytesPerRank {
		t.Errorf("profile retains %.0f B/rank at 16K ranks, over the %d B/rank budget",
			big, profileBudgetBytesPerRank)
	}
	// Linearity: per-rank cost must not grow with the rank count (an
	// O(ranks²) matrix would make the 16K point ~16x the 1K point).
	if big > 2*small {
		t.Errorf("profile per-rank cost grew from %.0f B (1K ranks) to %.0f B (16K ranks) — superlinear state", small, big)
	}
	// Full runtime with profiling armed: still inside the setup budget.
	cfg := runtimeConfig(budgetRanks, 8, ityr.WriteBackLazy, 11)
	cfg.Profile = true
	perRank := retainedBytes(t, func() any { return ityr.NewRuntime(cfg) }) / budgetRanks
	t.Logf("runtime+profile setup: %.0f B/rank (budget %d)", perRank, budgetBytesPerRank)
	if perRank > budgetBytesPerRank {
		t.Errorf("runtime with profiling retains %.0f B/rank, over the %d B/rank budget",
			perRank, budgetBytesPerRank)
	}
}
