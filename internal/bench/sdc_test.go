package bench

import (
	"testing"

	"ityr"
	"ityr/internal/fault"
)

// TestSDCDisabledDigestInert pins the zero-overhead-when-off guarantee at
// the observable level, from both directions: a plan whose corruption
// config is the zero value must not move a single virtual timestamp or
// event relative to no plan at all, and arming the defenses with
// Replicate=0 (protector present, selection stream never consumed) must be
// equally invisible.
func TestSDCDisabledDigestInert(t *testing.T) {
	base := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
	none := configDigest(t, base, Smoke.CilksortN, Smoke.Cutoffs[0])

	cfg := base
	cfg.Faults = &fault.Plan{Name: "empty-corrupt", Seed: 11, Corrupt: fault.Corruption{}}
	emptyCorrupt := configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	if none != emptyCorrupt {
		t.Errorf("zero-valued corruption plan perturbed the run:\n  no plan: %s\n  empty:   %s",
			none, emptyCorrupt)
	}

	cfg = base
	cfg.SDC = &ityr.SDCConfig{Replicate: 0}
	repOff := configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	if none != repOff {
		t.Errorf("replication-off protector perturbed the run:\n  no sdc:      %s\n  replicate=0: %s",
			none, repOff)
	}
}

// TestSDCCorruptionDeterministic pins that a corruption plan plus
// replication replays bit-identically: same seed, same flips, same
// detections, same replica traffic, same final clock.
func TestSDCCorruptionDeterministic(t *testing.T) {
	run := func() string {
		cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
		plan := fault.PlanSDC(11)
		cfg.Faults = &plan
		cfg.Sched.VictimBlacklist = true
		cfg.SDC = &ityr.SDCConfig{Replicate: 0.5}
		return configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	}
	a, b := run(), run()
	t.Logf("sdc-task+replicate=0.5 %s", a)
	if a != b {
		t.Errorf("run-to-run digest mismatch:\n  first:  %s\n  second: %s", a, b)
	}
}

// TestSDCNegativeControl pins the sharp edge of the injection model: with
// corruption armed and the defenses down, every app must come out of the
// run with real escaped corruptions AND a failed output verification —
// otherwise the injector is flipping bits nothing can observe and the
// detection numbers elsewhere are meaningless.
func TestSDCNegativeControl(t *testing.T) {
	plan := fault.PlanSDC(11)
	for _, app := range faultApps {
		t.Run(app.Name, func(t *testing.T) {
			_, rt, verified := app.Run(Smoke, &plan, 0)
			if verified {
				t.Errorf("%s verified despite unprotected corruption", app.Name)
			}
			fs := rt.Injector().Stats()
			if fs.TaskFlips == 0 {
				t.Fatalf("plan injected no task flips")
			}
			p := rt.Protector()
			if p == nil {
				t.Fatalf("no protector for escape accounting")
			}
			if p.Stats.Escaped == 0 {
				t.Errorf("injected %d flips but recorded no escapes", fs.TaskFlips)
			}
			if p.Stats.Escaped != fs.TaskFlips {
				t.Errorf("escaped %d != injected %d: with replication off every flip must escape",
					p.Stats.Escaped, fs.TaskFlips)
			}
		})
	}
}

// TestSDCFullReplicationDetectsAll pins the acceptance criterion: at
// replication fraction 1.0 every injected task-result corruption is
// detected (zero escapes), recovery succeeds, and every app verifies its
// output.
func TestSDCFullReplicationDetectsAll(t *testing.T) {
	plan := fault.PlanSDC(11)
	for _, app := range faultApps {
		t.Run(app.Name, func(t *testing.T) {
			_, rt, verified := app.Run(Smoke, &plan, 1.0)
			if !verified {
				t.Errorf("%s failed verification with full replication", app.Name)
			}
			fs := rt.Injector().Stats()
			st := rt.Protector().Stats
			if fs.TaskFlips == 0 {
				t.Fatalf("plan injected no task flips")
			}
			if st.Escaped != 0 {
				t.Errorf("%d corruption(s) escaped full replication", st.Escaped)
			}
			if st.Detected == 0 || st.Detected < fs.TaskFlips {
				t.Errorf("detected %d < injected %d", st.Detected, fs.TaskFlips)
			}
			if st.Recovered == 0 {
				t.Errorf("no protocols recorded as recovered")
			}
		})
	}
}

// TestSDCCombinedFlakyRecovery runs cilksort under the storm plan — 50%
// task corruption stacked on the flaky-RMA failure plan — with full
// replication: the replication protocol and the RMA retry machinery must
// compose, every corruption must be caught exactly once per strike, and
// the output must still verify.
func TestSDCCombinedFlakyRecovery(t *testing.T) {
	plan := fault.PlanSDCStorm(11)
	_, rt, verified := FaultCilksortRun(Smoke, &plan, 1.0)
	if !verified {
		t.Errorf("cilksort failed verification under sdc-storm with full replication")
	}
	st := rt.Protector().Stats
	cs := rt.Comm().Stats()
	if rt.Injector().Stats().Injected == 0 || cs.Retries == 0 {
		t.Errorf("storm plan did not engage the RMA failure machinery (injected=%d retries=%d)",
			rt.Injector().Stats().Injected, cs.Retries)
	}
	if st.Detected == 0 || st.Recovered == 0 {
		t.Errorf("storm plan detected=%d recovered=%d; want both > 0", st.Detected, st.Recovered)
	}
	if st.Escaped != 0 {
		t.Errorf("%d corruption(s) escaped full replication", st.Escaped)
	}
}

// TestSDCShardedParity pins that replication without a fault plan keeps
// the sharded host engine digest-identical to the serial engine: the
// protector's per-rank streams are engine-schedule-independent, so arming
// heavy replication must not open a serial-vs-parallel divergence. (With a
// corruption plan armed the runtime pins shards=1 itself, so the
// fault-free case is exactly the one that must hold.) Run under -race this
// also proves the protector state is properly sharded.
func TestSDCShardedParity(t *testing.T) {
	digest := func(procs int) string {
		cfg := runtimeConfig(Smoke.FixedRanks, Smoke.CoresPerNode, ityr.WriteBackLazy, 11)
		cfg.HostProcs = procs
		cfg.SDC = &ityr.SDCConfig{Replicate: 0.5}
		return configDigest(t, cfg, Smoke.CilksortN, Smoke.Cutoffs[0])
	}
	serial := digest(0)
	for _, procs := range []int{2, 4} {
		if got := digest(procs); got != serial {
			t.Errorf("procs=%d digest diverged with replication armed:\n  serial: %s\n  procs:  %s",
				procs, serial, got)
		}
	}
}

// TestSDCWireCRC pins the wire-corruption side: under the sdc-wire plan
// the payload checksum (armed with the defenses) must catch and retransmit
// every in-flight flip so the run verifies, while the same plan with the
// defenses down must land corrupt bytes in the output.
func TestSDCWireCRC(t *testing.T) {
	plan := fault.PlanSDCWire(11)
	// The smoke-scale run issues only ~90 bulk transfers (many rank-local
	// and exempt), so the canned 2% rate can draw zero flips; crank the
	// probability to make the hooks' engagement certain.
	plan.Corrupt.WireProb = 0.25

	_, rt, verified := FaultCilksortRun(Smoke, &plan, 0.0001) // arms cfg.SDC (and the checksum) with negligible replication
	ws := rt.Comm().SdcWire()
	if ws.Flips == 0 {
		t.Fatalf("wire plan injected no flips")
	}
	if !verified {
		t.Errorf("cilksort failed verification with the wire checksum armed")
	}
	if ws.Detected != ws.Flips || ws.Escapes != 0 {
		t.Errorf("wire checksum: flips=%d detected=%d escapes=%d; want all detected",
			ws.Flips, ws.Detected, ws.Escapes)
	}
	if ws.Retrans == 0 {
		t.Errorf("wire checksum detected flips but recorded no retransmissions")
	}

	_, rt, verified = FaultCilksortRun(Smoke, &plan, 0) // defenses down
	ws = rt.Comm().SdcWire()
	if ws.Flips == 0 || ws.Escapes != ws.Flips {
		t.Errorf("unprotected wire: flips=%d escapes=%d; want every flip to escape", ws.Flips, ws.Escapes)
	}
	if verified {
		t.Errorf("cilksort verified despite unprotected wire corruption")
	}
}
