package bench

import (
	"runtime"
	"testing"

	"ityr"
)

// Per-rank budgets on the rank-setup path (ityr.NewRuntime at 16,384
// ranks): the guardrail for ROADMAP item 1's "memory footprint must stay
// affordable at 16K ranks". Measured after the diet: ~6.98 KB retained and
// ~7 heap objects per rank, flat from 1K to 16K ranks (the pre-diet
// per-rank maps and O(n²) communicator state blow straight through this).
// Budgets are pinned ~50% above the measurement so legitimate feature work
// has headroom while a reintroduced per-rank map or ragged slice fails.
const (
	budgetRanks           = 16384
	budgetBytesPerRank    = 10 * 1024
	budgetMallocsPerRank  = 16
	budgetSetupTotalBytes = budgetRanks * budgetBytesPerRank
)

// setupRuntime constructs (but does not run) a runtime at the canonical
// benchmark geometry — the allocation-heavy path every scaling-sweep and
// fleet member pays per simulation.
func setupRuntime(ranks int) *ityr.Runtime {
	return ityr.NewRuntime(runtimeConfig(ranks, 8, ityr.WriteBackLazy, 11))
}

func TestRankSetupMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-rank setup allocates ~115MB; skipped under -short")
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	rt := setupRuntime(budgetRanks)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	retained := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	mallocs := int64(m1.Mallocs) - int64(m0.Mallocs)
	runtime.KeepAlive(rt)

	perRank := float64(retained) / budgetRanks
	t.Logf("ranks=%d retained=%.1fMB (%.0f B/rank, budget %d), mallocs/rank=%.1f (budget %d)",
		budgetRanks, float64(retained)/1e6, perRank, budgetBytesPerRank,
		float64(mallocs)/budgetRanks, budgetMallocsPerRank)
	if retained > budgetSetupTotalBytes {
		t.Errorf("rank setup retains %.0f B/rank, over the %d B/rank budget — per-rank state grew",
			perRank, budgetBytesPerRank)
	}
	if mallocs > budgetMallocsPerRank*budgetRanks {
		t.Errorf("rank setup makes %.1f allocations/rank, over the %d/rank budget — a per-rank allocation crept back in",
			float64(mallocs)/budgetRanks, budgetMallocsPerRank)
	}
}

// BenchmarkRankSetup16K reports the setup path's cost per rank so the
// numbers behind the budget above are reproducible with `go test -bench`.
func BenchmarkRankSetup16K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := setupRuntime(budgetRanks)
		runtime.KeepAlive(rt)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/budgetRanks, "ns/rank")
}
