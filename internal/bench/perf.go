package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"ityr"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/halo"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// The perf suite measures what the deterministic simulator makes exactly
// reproducible: simulated time and RMA traffic for a fixed set of
// experiments. Because every number is bit-identical run-to-run on every
// host, a CI job can gate on the recorded baseline with a tiny tolerance
// (internal/tools/perfgate) instead of rerunning noisy wall-clock
// benchmarks: a regression in communication volume or simulated time is a
// code change, not a noisy neighbor.

// PerfSchema identifies the BENCH_perf.json format.
const PerfSchema = "itoyori-perf/v1"

// PerfMetrics are one experiment's gated numbers.
type PerfMetrics struct {
	// SimNs is the simulated elapsed time of the measured phase in
	// virtual nanoseconds.
	SimNs int64 `json:"sim_ns"`
	// RoundTrips counts RMA operations (gets + puts + atomics) across the
	// whole run — the number the cache-batching layer exists to shrink.
	RoundTrips uint64 `json:"round_trips"`
	// RMABytes is the total payload moved (get bytes + put bytes).
	RMABytes uint64 `json:"rma_bytes"`
}

func perfMetrics(t sim.Time, st rma.Stats) PerfMetrics {
	return PerfMetrics{
		SimNs:      int64(t),
		RoundTrips: st.GetOps + st.PutOps + st.AtomicOps,
		RMABytes:   st.GetBytes + st.PutBytes,
	}
}

// PerfReport is the machine-readable result of PerfSuite, the input to
// internal/tools/perfgate.
type PerfReport struct {
	Schema string `json:"schema"`
	Scale  string `json:"scale"`
	// Coalesce / Prefetch record the cache-batching knobs the suite ran
	// with; perfgate refuses to compare reports taken under different
	// knobs.
	Coalesce    bool                   `json:"coalesce"`
	Prefetch    int                    `json:"prefetch"`
	Experiments map[string]PerfMetrics `json:"experiments"`
}

// perfConfig is the runtime configuration the cached perf-suite
// experiments use: the standard machine with the block geometry scaled
// down to 4 KiB blocks / 512 B sub-blocks. Smoke-scale working sets span
// only a couple of the paper's 64 KiB blocks, which hides the per-block
// communication structure this gate exists to watch; shrinking the block
// keeps blocks-per-working-set near the full-scale ratio, so coalescing
// and prefetch exercise the same code paths they do at full scale.
func perfConfig(sc Scale, pol ityr.Policy, seed int64) ityr.Config {
	cfg := runtimeConfig(sc.FixedRanks, sc.CoresPerNode, pol, seed)
	cfg.Pgas.BlockSize = 4 << 10
	cfg.Pgas.SubBlockSize = 512
	return cfg
}

// PerfSuite runs the gated experiments at sc under the current batching
// knobs and returns the report. Each experiment is one representative
// configuration of an app the paper evaluates (§6), chosen for coverage of
// the access patterns that stress the cache differently: cilksort
// (streaming merges over a block distribution, the sequential-run regime
// prefetch targets), fmm (irregular tree walks whose releases stress the
// write-back path), uts (pointer chasing — batching should stay out of
// the way), halo (raw SPMD RMA that bypasses the cache entirely — a
// control whose numbers batching must not disturb).
func PerfSuite(w io.Writer, sc Scale) PerfReport {
	rep := PerfReport{
		Schema:      PerfSchema,
		Scale:       sc.Name,
		Coalesce:    cacheCoalesce,
		Prefetch:    cachePrefetch,
		Experiments: map[string]PerfMetrics{},
	}
	fmt.Fprintf(w, "\n== Perf suite (%s scale, %d ranks, coalesce=%v prefetch=%d) ==\n",
		sc.Name, sc.FixedRanks, cacheCoalesce, cachePrefetch)
	fmt.Fprintf(w, "%-10s %14s %12s %14s\n", "experiment", "sim time (ms)", "round trips", "rma bytes")
	add := func(name string, t sim.Time, st rma.Stats) {
		m := perfMetrics(t, st)
		rep.Experiments[name] = m
		fmt.Fprintf(w, "%-10s %14.3f %12d %14d\n", name, ms(t), m.RoundTrips, m.RMABytes)
	}

	t, rt := cilksortSortTime(perfConfig(sc, ityr.WriteBackLazy, 11), sc.CilksortN, sc.SortCutoff, ityr.BlockDist)
	add("cilksort", t, rt.Comm().Stats())

	tf, rtf := fmmEvalTime(perfConfig(sc, ityr.WriteBackLazy, 29),
		fmm.Params{N: sc.FMMSmallN, Theta: sc.FMMTheta, NCrit: 32, NSpawn: sc.FMMNSpawn, Seed: 21})
	add("fmm", tf, rtf.Comm().Stats())

	tu, rtu := utsTraversalTime(sc.UTSBig, perfConfig(sc, ityr.WriteBackLazy, 17))
	add("uts", tu, rtu.Comm().Stats())

	res, err := halo.Run(halo.Config{
		Ranks:        sc.FixedRanks,
		CoresPerNode: sc.CoresPerNode,
		CellsPerRank: 256,
		Steps:        20,
		HostProcs:    hostProcs,
	})
	if err != nil {
		panic(err)
	}
	add("halo", res.Elapsed, res.Stats)

	return rep
}

// WriteJSON serializes the report as indented JSON.
func (rep PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadPerfReport parses an itoyori-perf/v1 report written by WriteJSON.
func ReadPerfReport(r io.Reader) (PerfReport, error) {
	return ReadReport(r, PerfSchema)
}

// ReadReport parses a report written by WriteJSON and verifies it carries
// the expected schema (PerfSchema or TaskbenchSchema) — both suites share
// the report shape, but a perf baseline must never be compared against a
// taskbench run or vice versa.
func ReadReport(r io.Reader, schema string) (PerfReport, error) {
	var rep PerfReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return PerfReport{}, fmt.Errorf("bench: parsing perf report: %w", err)
	}
	if rep.Schema != schema {
		return PerfReport{}, fmt.Errorf("bench: perf report schema %q, want %q", rep.Schema, schema)
	}
	return rep, nil
}
