// Package prof implements the runtime profiler that attributes accumulated
// virtual time per rank to event categories, reproducing the performance
// breakdowns of Fig. 9 of the paper.
package prof

import (
	"fmt"
	"sort"
	"strings"

	"ityr/internal/sim"
)

// Standard runtime categories. Applications may register additional ones
// (e.g. "Serial Quicksort") with Category.
const (
	CatGet         = "Get"
	CatPut         = "Put"
	CatCheckout    = "Checkout"
	CatCheckin     = "Checkin"
	CatRelease     = "Release"
	CatLazyRelease = "Lazy Release"
	CatAcquire     = "Acquire"
	CatSteal       = "Steal"
	CatOthers      = "Others"
)

// Profiler accumulates per-rank virtual time per category with no locking.
// The safety contract under parallel host execution (sim.NewEngineShards):
// the accumulator matrix is indexed [category][rank] and each rank only
// ever adds to its own column, so concurrent shards never touch the same
// cell; the name/index maps, however, are mutated by Category, so new
// categories must be registered either before the run or from a globally
// pinned phase (fork-join regions — where the apps in fact register
// theirs). Registering a category from an unpinned SPMD phase is a data
// race.
type Profiler struct {
	nranks int
	names  []string
	index  map[string]int
	acc    [][]sim.Time // [category][rank]
}

// New creates a profiler for nranks ranks with the standard categories
// pre-registered.
func New(nranks int) *Profiler {
	p := &Profiler{nranks: nranks, index: make(map[string]int)}
	for _, c := range []string{
		CatGet, CatPut, CatCheckout, CatCheckin,
		CatRelease, CatLazyRelease, CatAcquire, CatSteal,
	} {
		p.Category(c)
	}
	return p
}

// Category returns the index for a category name, registering it if new.
func (p *Profiler) Category(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	i := len(p.names)
	p.index[name] = i
	p.names = append(p.names, name)
	p.acc = append(p.acc, make([]sim.Time, p.nranks))
	return i
}

// Add charges d nanoseconds on rank to the category with index cat.
func (p *Profiler) Add(cat, rank int, d sim.Time) {
	p.acc[cat][rank] += d
}

// AddName charges d nanoseconds on rank to the named category.
func (p *Profiler) AddName(name string, rank int, d sim.Time) {
	p.Add(p.Category(name), rank, d)
}

// Total returns the accumulated time over all ranks for a category name
// (zero for unknown categories).
func (p *Profiler) Total(name string) sim.Time {
	i, ok := p.index[name]
	if !ok {
		return 0
	}
	var t sim.Time
	for _, v := range p.acc[i] {
		t += v
	}
	return t
}

// Breakdown returns, for an execution that took elapsed virtual time on
// nranks ranks, the accumulated time per category plus an "Others" entry
// holding the unattributed remainder (elapsed × ranks − Σ categories),
// clamped at zero. Categories with zero time are omitted.
func (p *Profiler) Breakdown(elapsed sim.Time) map[string]sim.Time {
	out := make(map[string]sim.Time)
	var sum sim.Time
	for i, name := range p.names {
		var t sim.Time
		for _, v := range p.acc[i] {
			t += v
		}
		if t > 0 {
			out[name] = t
		}
		sum += t
	}
	others := elapsed*sim.Time(p.nranks) - sum
	if others < 0 {
		others = 0
	}
	out[CatOthers] = others
	return out
}

// Reset clears all accumulated time.
func (p *Profiler) Reset() {
	for _, row := range p.acc {
		for i := range row {
			row[i] = 0
		}
	}
}

// Format renders a normalized breakdown table (largest share first).
func (p *Profiler) Format(elapsed sim.Time) string {
	bd := p.Breakdown(elapsed)
	type kv struct {
		k string
		v sim.Time
	}
	var rows []kv
	var total sim.Time
	for k, v := range bd {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	for _, r := range rows {
		frac := 0.0
		if total > 0 {
			frac = float64(r.v) / float64(total)
		}
		fmt.Fprintf(&b, "  %-18s %12.3f ms  %5.1f%%\n", r.k, float64(r.v)/1e6, 100*frac)
	}
	return b.String()
}
