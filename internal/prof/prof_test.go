package prof

import (
	"strings"
	"testing"
)

func TestAccumulationAndTotals(t *testing.T) {
	p := New(4)
	p.AddName(CatGet, 0, 100)
	p.AddName(CatGet, 1, 50)
	p.AddName(CatCheckout, 2, 30)
	if got := p.Total(CatGet); got != 150 {
		t.Fatalf("Get total = %d, want 150", got)
	}
	if got := p.Total(CatCheckout); got != 30 {
		t.Fatalf("Checkout total = %d", got)
	}
	if got := p.Total("never-registered"); got != 0 {
		t.Fatalf("unknown category total = %d", got)
	}
}

func TestCategoryRegistrationIdempotent(t *testing.T) {
	p := New(2)
	a := p.Category("Custom")
	b := p.Category("Custom")
	if a != b {
		t.Fatalf("category indices differ: %d vs %d", a, b)
	}
	p.Add(a, 0, 10)
	p.Add(b, 1, 20)
	if p.Total("Custom") != 30 {
		t.Fatalf("custom total = %d", p.Total("Custom"))
	}
}

func TestBreakdownOthers(t *testing.T) {
	p := New(2)
	p.AddName(CatGet, 0, 400)
	p.AddName(CatPut, 1, 100)
	bd := p.Breakdown(1000) // 1000 ns elapsed × 2 ranks = 2000 total
	if bd[CatGet] != 400 || bd[CatPut] != 100 {
		t.Fatalf("breakdown = %v", bd)
	}
	if bd[CatOthers] != 1500 {
		t.Fatalf("others = %d, want 1500", bd[CatOthers])
	}
}

func TestBreakdownOthersClampedAtZero(t *testing.T) {
	p := New(1)
	p.AddName(CatGet, 0, 5000)
	bd := p.Breakdown(1000) // categories exceed elapsed: clamp
	if bd[CatOthers] != 0 {
		t.Fatalf("others = %d, want 0", bd[CatOthers])
	}
}

// Zero elapsed time (e.g. a region that completed instantly, or Format
// called before any region ran) must not divide by zero or go negative:
// the breakdown degrades to the raw category times with Others at 0, and
// Format reports 0% shares when nothing at all accumulated.
func TestBreakdownZeroElapsed(t *testing.T) {
	p := New(2)
	p.AddName(CatGet, 0, 40)
	bd := p.Breakdown(0)
	if bd[CatGet] != 40 || bd[CatOthers] != 0 {
		t.Fatalf("breakdown at zero elapsed = %v", bd)
	}
	empty := New(2)
	s := empty.Format(0)
	if !strings.Contains(s, "0.0%") {
		t.Fatalf("zero-elapsed format has no 0%% share:\n%s", s)
	}
}

// Charging an unregistered category by name must register it on the fly
// and survive a Reset (registration persists, totals clear).
func TestUnregisteredCategoryByName(t *testing.T) {
	p := New(2)
	p.AddName("Serial Quicksort", 1, 77)
	if p.Total("Serial Quicksort") != 77 {
		t.Fatalf("total = %d, want 77", p.Total("Serial Quicksort"))
	}
	p.Reset()
	if p.Total("Serial Quicksort") != 0 {
		t.Fatal("reset did not clear late-registered category")
	}
	p.AddName("Serial Quicksort", 0, 5)
	if p.Total("Serial Quicksort") != 5 {
		t.Fatal("category lost after reset")
	}
}

// Breakdown omits zero-time categories but always includes Others, so
// the map never reports noise from the pre-registered standard set.
func TestBreakdownOmitsZeroCategories(t *testing.T) {
	p := New(1)
	p.AddName(CatSteal, 0, 10)
	bd := p.Breakdown(100)
	if len(bd) != 2 {
		t.Fatalf("breakdown = %v, want only Steal and Others", bd)
	}
	if _, ok := bd[CatGet]; ok {
		t.Fatal("zero-time category present in breakdown")
	}
}

func TestReset(t *testing.T) {
	p := New(2)
	p.AddName(CatGet, 0, 100)
	p.Reset()
	if p.Total(CatGet) != 0 {
		t.Fatal("reset did not clear totals")
	}
}

func TestFormatOrdersByShare(t *testing.T) {
	p := New(1)
	p.AddName("Small", 0, 10)
	p.AddName("Large", 0, 1000)
	s := p.Format(1010)
	if !strings.Contains(s, "Large") || !strings.Contains(s, "Small") {
		t.Fatalf("format missing categories: %s", s)
	}
	if strings.Index(s, "Large") > strings.Index(s, "Small") {
		t.Fatalf("largest category not first:\n%s", s)
	}
}
