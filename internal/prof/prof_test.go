package prof

import (
	"strings"
	"testing"
)

func TestAccumulationAndTotals(t *testing.T) {
	p := New(4)
	p.AddName(CatGet, 0, 100)
	p.AddName(CatGet, 1, 50)
	p.AddName(CatCheckout, 2, 30)
	if got := p.Total(CatGet); got != 150 {
		t.Fatalf("Get total = %d, want 150", got)
	}
	if got := p.Total(CatCheckout); got != 30 {
		t.Fatalf("Checkout total = %d", got)
	}
	if got := p.Total("never-registered"); got != 0 {
		t.Fatalf("unknown category total = %d", got)
	}
}

func TestCategoryRegistrationIdempotent(t *testing.T) {
	p := New(2)
	a := p.Category("Custom")
	b := p.Category("Custom")
	if a != b {
		t.Fatalf("category indices differ: %d vs %d", a, b)
	}
	p.Add(a, 0, 10)
	p.Add(b, 1, 20)
	if p.Total("Custom") != 30 {
		t.Fatalf("custom total = %d", p.Total("Custom"))
	}
}

func TestBreakdownOthers(t *testing.T) {
	p := New(2)
	p.AddName(CatGet, 0, 400)
	p.AddName(CatPut, 1, 100)
	bd := p.Breakdown(1000) // 1000 ns elapsed × 2 ranks = 2000 total
	if bd[CatGet] != 400 || bd[CatPut] != 100 {
		t.Fatalf("breakdown = %v", bd)
	}
	if bd[CatOthers] != 1500 {
		t.Fatalf("others = %d, want 1500", bd[CatOthers])
	}
}

func TestBreakdownOthersClampedAtZero(t *testing.T) {
	p := New(1)
	p.AddName(CatGet, 0, 5000)
	bd := p.Breakdown(1000) // categories exceed elapsed: clamp
	if bd[CatOthers] != 0 {
		t.Fatalf("others = %d, want 0", bd[CatOthers])
	}
}

func TestReset(t *testing.T) {
	p := New(2)
	p.AddName(CatGet, 0, 100)
	p.Reset()
	if p.Total(CatGet) != 0 {
		t.Fatal("reset did not clear totals")
	}
}

func TestFormatOrdersByShare(t *testing.T) {
	p := New(1)
	p.AddName("Small", 0, 10)
	p.AddName("Large", 0, 1000)
	s := p.Format(1010)
	if !strings.Contains(s, "Large") || !strings.Contains(s, "Small") {
		t.Fatalf("format missing categories: %s", s)
	}
	if strings.Index(s, "Large") > strings.Index(s, "Small") {
		t.Fatalf("largest category not first:\n%s", s)
	}
}
