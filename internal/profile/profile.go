// Package profile is the constant-memory streaming profile layer: the
// scale-friendly companion to the full span tracer in internal/trace.
//
// At 16K+ ranks, per-rank span rings either blow the per-rank memory
// budget or silently truncate, so this package folds observability into
// fixed-size per-rank accumulators as events happen instead of keeping the
// events themselves:
//
//   - Rollups: busy/steal/idle/stall/barrier virtual time, checkout
//     hit/miss traffic and RMA op counts/bytes, summed online.
//   - Communication matrix: per-locality-tier (self/node/rack/fabric)
//     op and byte totals attributed via netmodel.Tier, plus a per-rank
//     top-K heavy-hitter table of hot targets (space-saving sketch), so a
//     rank×rank matrix never materializes at scale. At or below
//     MatrixMaxRanks the exact matrix is kept instead — it is tiny there.
//   - Timeline: a fixed number of buckets over simulated time with
//     per-kind occupancy; bucket width starts at timelineBaseNs and
//     doubles (folding pairs of buckets, exactly) whenever a span lands
//     past the end, so any run length fits the same storage.
//
// Everything is per rank: each rank mutates only its own accumulator, so
// recording is lock-free under parallel host execution (the same argument
// as the rma per-rank counters), and the snapshot merge — a rank-ordered
// fold — is deterministic regardless of shard count. Recording never
// advances virtual time, so profiles are digest-inert. A nil *Profile is
// the off switch: every method is nil-safe and allocation-free, matching
// the trace/metrics discipline.
package profile

import (
	"encoding/json"
	"io"
	"sort"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// Schema identifies the snapshot JSON layout.
const Schema = "itoyori-profile/v1"

// Sizing knobs. All are O(1) per rank — the whole point.
const (
	// TimelineBuckets is the fixed number of timeline buckets per rank.
	TimelineBuckets = 32
	// timelineBaseNs is the initial bucket width; widths are always
	// timelineBaseNs << k, which makes cross-rank rebinning exact.
	timelineBaseNs = sim.Time(1) << 14 // ~16.4 simulated µs
	// TopKPerRank bounds the per-rank hot-target sketch above the matrix
	// threshold.
	TopKPerRank = 8
	// HotPairsMax bounds the hot-pair list in the snapshot.
	HotPairsMax = 16
	// MatrixMaxRanks is the largest rank count for which the exact
	// rank×rank byte matrix is kept (64² uint64 = 32 KiB total).
	MatrixMaxRanks = 64
)

// SpanKind classifies a recorded span for rollups and the timeline.
type SpanKind uint8

// Span kinds, in timeline column order.
const (
	SpanTask    SpanKind = iota // useful work inside a task segment
	SpanSteal                   // steal attempts (successful or not)
	SpanIdle                    // scheduler idle backoff
	SpanStall                   // RMA flush stalls (waiting on the NIC pipeline)
	SpanBarrier                 // SPMD barrier wait
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{"task", "steal", "idle", "stall", "barrier"}

// Op classifies an RMA operation for the communication matrix.
type Op uint8

// RMA operation kinds.
const (
	OpGet Op = iota
	OpPut
	OpAtomic
)

// rec is one rank's accumulator. Fixed size by construction (the matrix
// row is only allocated at or below MatrixMaxRanks); each rank writes only
// its own rec, which keeps recording lock-free under sharded execution.
type rec struct {
	spanNs [numSpanKinds]uint64

	checkoutCalls, hitBytes, missOps, missBytes uint64

	getOps, putOps, atomicOps uint64
	getBytes, putBytes        uint64

	tierOps   [netmodel.NumTiers]uint64
	tierBytes [netmodel.NumTiers]uint64

	// Space-saving heavy-hitter sketch of hot targets (used above
	// MatrixMaxRanks). Slots fill in first-touch order; once full, the
	// minimum-byte slot is usurped with its count inherited, the classic
	// space-saving overestimate that never undercounts a true heavy
	// hitter.
	hotTo    [TopKPerRank]int32
	hotOps   [TopKPerRank]uint32
	hotBytes [TopKPerRank]uint64
	hotN     int32

	// Exact matrix row (bytes, ops), nil above MatrixMaxRanks.
	rowBytes []uint64
	rowOps   []uint32

	tl timeline
}

// timeline is the per-rank time-sliced occupancy histogram. The bucket
// width doubles (folding pairs exactly) whenever a span lands beyond the
// covered range, so TimelineBuckets buckets span any run length.
type timeline struct {
	width sim.Time
	occ   [TimelineBuckets][numSpanKinds]uint64
}

func (tl *timeline) grow() {
	for i := 0; i < TimelineBuckets/2; i++ {
		for k := range tl.occ[i] {
			tl.occ[i][k] = tl.occ[2*i][k] + tl.occ[2*i+1][k]
		}
	}
	for i := TimelineBuckets / 2; i < TimelineBuckets; i++ {
		tl.occ[i] = [numSpanKinds]uint64{}
	}
	tl.width *= 2
}

// add smears the span [t0, t0+d) across the buckets it overlaps.
func (tl *timeline) add(k SpanKind, t0, d sim.Time) {
	if d <= 0 {
		return
	}
	if tl.width == 0 {
		tl.width = timelineBaseNs // first span: lazy init, keeps rec zero-valued
	}
	end := t0 + d
	for end > tl.width*TimelineBuckets {
		tl.grow()
	}
	b := int(t0 / tl.width)
	for t0 < end {
		bEnd := sim.Time(b+1) * tl.width
		seg := end
		if bEnd < seg {
			seg = bEnd
		}
		tl.occ[b][k] += uint64(seg - t0)
		t0 = bEnd
		b++
	}
}

// rebin returns the timeline's occupancy at the (coarser or equal) target
// width. Widths are power-of-two multiples of each other, so the fold is
// exact.
func (tl *timeline) rebin(width sim.Time) [TimelineBuckets][numSpanKinds]uint64 {
	out := tl.occ
	for w := tl.width; w < width; w *= 2 {
		var folded [TimelineBuckets][numSpanKinds]uint64
		for i := 0; i < TimelineBuckets/2; i++ {
			for k := range folded[i] {
				folded[i][k] = out[2*i][k] + out[2*i+1][k]
			}
		}
		out = folded
	}
	return out
}

// Profile is the streaming profile collector for one run. The zero value
// is not used; create with New. A nil *Profile is a valid disabled
// profile: every recording method is a nil-safe no-op.
type Profile struct {
	net   netmodel.Params
	ranks []rec
}

// New returns a collector for the given rank count, attributing
// communication locality with net. Memory is O(ranks · (buckets + top-K)):
// roughly 1.6 KiB per rank, independent of the rank² pair space.
func New(ranks int, net netmodel.Params) *Profile {
	p := &Profile{net: net, ranks: make([]rec, ranks)}
	if ranks <= MatrixMaxRanks {
		bytes := make([]uint64, ranks*ranks)
		ops := make([]uint32, ranks*ranks)
		for i := range p.ranks {
			p.ranks[i].rowBytes = bytes[i*ranks : (i+1)*ranks : (i+1)*ranks]
			p.ranks[i].rowOps = ops[i*ranks : (i+1)*ranks : (i+1)*ranks]
		}
	}
	return p
}

// Span folds a closed span of kind k covering [t0, t0+d) into rank's
// rollup and timeline. Nil-safe, allocation-free, never advances time.
func (p *Profile) Span(rank int, k SpanKind, t0, d sim.Time) {
	if p == nil || d <= 0 {
		return
	}
	r := &p.ranks[rank]
	r.spanNs[k] += uint64(d)
	r.tl.add(k, t0, d)
}

// RMA folds one one-sided operation from rank to target into the
// communication matrix. Nil-safe and allocation-free.
func (p *Profile) RMA(rank, target int, op Op, nbytes int) {
	if p == nil {
		return
	}
	r := &p.ranks[rank]
	n := uint64(nbytes)
	switch op {
	case OpGet:
		r.getOps++
		r.getBytes += n
	case OpPut:
		r.putOps++
		r.putBytes += n
	case OpAtomic:
		r.atomicOps++
	}
	t := p.net.Tier(rank, target)
	r.tierOps[t]++
	r.tierBytes[t] += n
	if r.rowBytes != nil {
		r.rowBytes[target] += n
		r.rowOps[target]++
		return
	}
	r.noteHot(int32(target), n)
}

// noteHot updates the space-saving hot-target sketch.
func (r *rec) noteHot(target int32, nbytes uint64) {
	for i := int32(0); i < r.hotN; i++ {
		if r.hotTo[i] == target {
			r.hotOps[i]++
			r.hotBytes[i] += nbytes
			return
		}
	}
	if r.hotN < TopKPerRank {
		i := r.hotN
		r.hotN++
		r.hotTo[i] = target
		r.hotOps[i] = 1
		r.hotBytes[i] = nbytes
		return
	}
	min := 0
	for i := 1; i < TopKPerRank; i++ {
		if r.hotBytes[i] < r.hotBytes[min] {
			min = i
		}
	}
	r.hotTo[min] = target
	r.hotOps[min] = 1
	r.hotBytes[min] += nbytes
}

// CheckoutCall counts one cache checkout on rank. Nil-safe.
func (p *Profile) CheckoutCall(rank int) {
	if p == nil {
		return
	}
	p.ranks[rank].checkoutCalls++
}

// CheckoutHit folds bytes served from the local cache (or home memory)
// into rank's rollup. Nil-safe.
func (p *Profile) CheckoutHit(rank int, bytes uint64) {
	if p == nil {
		return
	}
	p.ranks[rank].hitBytes += bytes
}

// CheckoutMiss folds one remote fetch of the given size into rank's
// rollup. Nil-safe.
func (p *Profile) CheckoutMiss(rank int, bytes uint64) {
	if p == nil {
		return
	}
	r := &p.ranks[rank]
	r.missOps++
	r.missBytes += bytes
}

// Rollup is the cross-rank sum of every scalar accumulator.
type Rollup struct {
	// Virtual-time rollups by span kind, in nanoseconds.
	TaskNs    uint64 `json:"task_ns"`
	StealNs   uint64 `json:"steal_ns"`
	IdleNs    uint64 `json:"idle_ns"`
	StallNs   uint64 `json:"stall_ns"`
	BarrierNs uint64 `json:"barrier_ns"`
	// Cache checkout traffic.
	CheckoutCalls     uint64 `json:"checkout_calls"`
	CheckoutHitBytes  uint64 `json:"checkout_hit_bytes"`
	CheckoutMissOps   uint64 `json:"checkout_miss_ops"`
	CheckoutMissBytes uint64 `json:"checkout_miss_bytes"`
	// One-sided operation totals.
	GetOps    uint64 `json:"rma_get_ops"`
	PutOps    uint64 `json:"rma_put_ops"`
	AtomicOps uint64 `json:"rma_atomic_ops"`
	GetBytes  uint64 `json:"rma_get_bytes"`
	PutBytes  uint64 `json:"rma_put_bytes"`
}

// TierStat is one locality tier's share of the communication matrix.
type TierStat struct {
	// Tier is the locality tier name (self/node/rack/fabric).
	Tier string `json:"tier"`
	// Ops counts one-sided operations on this tier.
	Ops uint64 `json:"ops"`
	// Bytes counts payload bytes moved on this tier.
	Bytes uint64 `json:"bytes"`
}

// HotPair is one origin→target communication pair.
type HotPair struct {
	// From and To are the origin and target ranks.
	From int `json:"from"`
	To   int `json:"to"`
	// Ops and Bytes total the pair's one-sided traffic. Above
	// MatrixMaxRanks these come from the space-saving sketch and may
	// overestimate (never underestimate) a pair that displaced another.
	Ops   uint64 `json:"ops"`
	Bytes uint64 `json:"bytes"`
}

// Timeline is the merged time-sliced occupancy histogram.
type Timeline struct {
	// BucketNs is the bucket width in simulated nanoseconds.
	BucketNs sim.Time `json:"bucket_ns"`
	// Kinds names the columns of Occupancy.
	Kinds []string `json:"kinds"`
	// Occupancy[b][k] is the summed virtual time of kind Kinds[k] spans
	// overlapping bucket b, across all ranks.
	Occupancy [][]uint64 `json:"occupancy"`
}

// Doc is the self-describing "itoyori-profile/v1" snapshot.
type Doc struct {
	// Schema is always the package Schema constant.
	Schema string `json:"schema"`
	// Ranks is the simulated rank count.
	Ranks int `json:"ranks"`
	// Rollup sums every scalar accumulator across ranks.
	Rollup Rollup `json:"rollup"`
	// Tiers splits communication by locality tier, nearest first.
	Tiers []TierStat `json:"tiers"`
	// HotPairs lists the heaviest origin→target pairs, by bytes.
	HotPairs []HotPair `json:"hot_pairs"`
	// HotPairsApprox marks HotPairs as sketch-derived (see HotPair).
	HotPairsApprox bool `json:"hot_pairs_approx,omitempty"`
	// Matrix is the exact rank×rank byte matrix, present only at or
	// below MatrixMaxRanks ranks.
	Matrix [][]uint64 `json:"matrix,omitempty"`
	// Timeline is the merged per-kind occupancy over simulated time.
	Timeline Timeline `json:"timeline"`
}

// Snapshot merges the per-rank accumulators into a Doc. The merge is a
// rank-ordered fold over state that is itself independent of host
// execution, so the result is bit-identical across host shard counts.
// Safe to call only when the simulation is idle.
func (p *Profile) Snapshot() *Doc {
	doc := &Doc{Schema: Schema, Ranks: len(p.ranks)}

	var tiers [netmodel.NumTiers]TierStat
	width := timelineBaseNs
	for i := range p.ranks {
		r := &p.ranks[i]
		doc.Rollup.TaskNs += r.spanNs[SpanTask]
		doc.Rollup.StealNs += r.spanNs[SpanSteal]
		doc.Rollup.IdleNs += r.spanNs[SpanIdle]
		doc.Rollup.StallNs += r.spanNs[SpanStall]
		doc.Rollup.BarrierNs += r.spanNs[SpanBarrier]
		doc.Rollup.CheckoutCalls += r.checkoutCalls
		doc.Rollup.CheckoutHitBytes += r.hitBytes
		doc.Rollup.CheckoutMissOps += r.missOps
		doc.Rollup.CheckoutMissBytes += r.missBytes
		doc.Rollup.GetOps += r.getOps
		doc.Rollup.PutOps += r.putOps
		doc.Rollup.AtomicOps += r.atomicOps
		doc.Rollup.GetBytes += r.getBytes
		doc.Rollup.PutBytes += r.putBytes
		for t := 0; t < netmodel.NumTiers; t++ {
			tiers[t].Ops += r.tierOps[t]
			tiers[t].Bytes += r.tierBytes[t]
		}
		if r.tl.width > width {
			width = r.tl.width
		}
	}
	for t := 0; t < netmodel.NumTiers; t++ {
		tiers[t].Tier = netmodel.TierName[t]
	}
	doc.Tiers = tiers[:]

	doc.HotPairs, doc.HotPairsApprox = p.hotPairs()
	if len(p.ranks) > 0 && p.ranks[0].rowBytes != nil {
		doc.Matrix = make([][]uint64, len(p.ranks))
		for i := range p.ranks {
			doc.Matrix[i] = p.ranks[i].rowBytes
		}
	}

	doc.Timeline = Timeline{BucketNs: width, Kinds: spanKindNames[:]}
	occ := make([][]uint64, TimelineBuckets)
	cells := make([]uint64, TimelineBuckets*int(numSpanKinds))
	for b := range occ {
		occ[b] = cells[b*int(numSpanKinds) : (b+1)*int(numSpanKinds)]
	}
	for i := range p.ranks {
		r := &p.ranks[i]
		if r.tl.width == 0 {
			continue
		}
		binned := r.tl.rebin(width)
		for b := 0; b < TimelineBuckets; b++ {
			for k := 0; k < int(numSpanKinds); k++ {
				occ[b][k] += binned[b][k]
			}
		}
	}
	doc.Timeline.Occupancy = occ
	return doc
}

// hotPairs extracts the global top pairs: exact (from the matrix) at small
// rank counts, sketch-derived above the threshold.
func (p *Profile) hotPairs() ([]HotPair, bool) {
	pairs := []HotPair{}
	approx := false
	if len(p.ranks) > 0 && p.ranks[0].rowBytes != nil {
		for i := range p.ranks {
			r := &p.ranks[i]
			for j, b := range r.rowBytes {
				if r.rowOps[j] > 0 {
					pairs = append(pairs, HotPair{From: i, To: j, Ops: uint64(r.rowOps[j]), Bytes: b})
				}
			}
		}
	} else {
		approx = true
		for i := range p.ranks {
			r := &p.ranks[i]
			for s := int32(0); s < r.hotN; s++ {
				pairs = append(pairs, HotPair{From: i, To: int(r.hotTo[s]), Ops: uint64(r.hotOps[s]), Bytes: r.hotBytes[s]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Bytes != pairs[b].Bytes {
			return pairs[a].Bytes > pairs[b].Bytes
		}
		if pairs[a].From != pairs[b].From {
			return pairs[a].From < pairs[b].From
		}
		return pairs[a].To < pairs[b].To
	})
	if len(pairs) > HotPairsMax {
		pairs = pairs[:HotPairsMax]
	}
	return pairs, approx
}

// WriteJSON writes the snapshot as indented JSON. Field order is fixed by
// the Doc struct and every merge is rank-ordered, so the bytes are stable
// across runs and host shard counts.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}
