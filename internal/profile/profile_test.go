package profile

import (
	"bytes"
	"strings"
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

func sumKind(doc *Doc, kind string) uint64 {
	col := -1
	for k, name := range doc.Timeline.Kinds {
		if name == kind {
			col = k
		}
	}
	if col < 0 {
		return 0
	}
	var total uint64
	for _, bucket := range doc.Timeline.Occupancy {
		total += bucket[col]
	}
	return total
}

func TestSpanRollupAndTimeline(t *testing.T) {
	p := New(2, netmodel.Default(8))
	p.Span(0, SpanTask, 0, 100)
	p.Span(0, SpanTask, 200, 50)
	p.Span(1, SpanIdle, 40, 60)
	p.Span(1, SpanBarrier, 100, 0) // zero-length: must be ignored
	doc := p.Snapshot()
	if doc.Rollup.TaskNs != 150 || doc.Rollup.IdleNs != 60 || doc.Rollup.BarrierNs != 0 {
		t.Errorf("rollup = %+v", doc.Rollup)
	}
	if got := sumKind(doc, "task"); got != 150 {
		t.Errorf("timeline task occupancy = %d, want 150", got)
	}
	if got := sumKind(doc, "idle"); got != 60 {
		t.Errorf("timeline idle occupancy = %d, want 60", got)
	}
}

// The timeline's bucket width doubles by folding pairs, and the snapshot
// rebins every rank to the coarsest width — both folds must preserve the
// total occupancy exactly, for spans far beyond the initial coverage and
// for ranks whose timelines grew by different amounts.
func TestTimelineGrowthPreservesTotals(t *testing.T) {
	p := New(2, netmodel.Default(8))
	p.Span(0, SpanTask, 0, 128)
	p.Span(0, SpanTask, 1000*timelineBaseNs, 12345) // forces many doublings on rank 0
	p.Span(1, SpanSteal, 3, 77)                     // rank 1 stays at the base width
	r0 := &p.ranks[0]
	if r0.tl.width <= timelineBaseNs {
		t.Fatalf("rank 0 timeline did not grow: width=%d", r0.tl.width)
	}
	if end := r0.tl.width * TimelineBuckets; 1000*timelineBaseNs+12345 > end {
		t.Fatalf("span end beyond grown coverage %d", end)
	}
	doc := p.Snapshot()
	if got := sumKind(doc, "task"); got != 128+12345 {
		t.Errorf("task occupancy after growth = %d, want %d", got, 128+12345)
	}
	if got := sumKind(doc, "steal"); got != 77 {
		t.Errorf("steal occupancy after cross-rank rebin = %d, want 77", got)
	}
	if doc.Timeline.BucketNs != r0.tl.width {
		t.Errorf("snapshot width %d, want the coarsest rank width %d", doc.Timeline.BucketNs, r0.tl.width)
	}
}

func TestExactMatrixSmallRanks(t *testing.T) {
	p := New(4, netmodel.Default(2))
	p.RMA(0, 1, OpGet, 100)
	p.RMA(0, 1, OpGet, 28)
	p.RMA(1, 3, OpPut, 64)
	p.RMA(2, 2, OpAtomic, 8)
	doc := p.Snapshot()
	if doc.Matrix == nil {
		t.Fatal("matrix missing at small rank count")
	}
	if doc.Matrix[0][1] != 128 || doc.Matrix[1][3] != 64 {
		t.Errorf("matrix = %v", doc.Matrix)
	}
	if doc.HotPairsApprox {
		t.Error("exact matrix marked approximate")
	}
	if doc.Rollup.GetOps != 2 || doc.Rollup.GetBytes != 128 ||
		doc.Rollup.PutOps != 1 || doc.Rollup.PutBytes != 64 || doc.Rollup.AtomicOps != 1 {
		t.Errorf("rollup = %+v", doc.Rollup)
	}
	// Tier attribution with 2 cores/node, flat fabric: (0,1) same node,
	// (1,3) cross node, (2,2) self.
	byTier := map[string]uint64{}
	for _, ts := range doc.Tiers {
		byTier[ts.Tier] = ts.Bytes
	}
	if byTier["node"] != 128 || byTier["fabric"] != 64 || byTier["self"] != 8 || byTier["rack"] != 0 {
		t.Errorf("tier split = %v", byTier)
	}
	if len(doc.HotPairs) == 0 || doc.HotPairs[0].From != 0 || doc.HotPairs[0].To != 1 || doc.HotPairs[0].Bytes != 128 {
		t.Errorf("hot pairs = %+v", doc.HotPairs)
	}
}

// Above MatrixMaxRanks the per-rank sketch takes over. The space-saving
// property: a target heavier than every sketch slot can be overestimated
// but never undercounted, and the slot table stays at TopKPerRank.
func TestHotTargetSketchNeverUndercounts(t *testing.T) {
	ranks := MatrixMaxRanks + 4
	p := New(ranks, netmodel.Default(8))
	const heavyTarget, heavyBytes = 1, 1 << 20
	p.RMA(0, heavyTarget, OpGet, heavyBytes)
	for target := 2; target < 2+2*TopKPerRank; target++ { // churn the slots
		p.RMA(0, target, OpGet, 64)
	}
	r := &p.ranks[0]
	if r.rowBytes != nil {
		t.Fatal("exact matrix present above the threshold")
	}
	if r.hotN != TopKPerRank {
		t.Fatalf("sketch slots = %d, want %d", r.hotN, TopKPerRank)
	}
	doc := p.Snapshot()
	if !doc.HotPairsApprox {
		t.Error("sketch-derived hot pairs not marked approximate")
	}
	if doc.Matrix != nil {
		t.Error("snapshot materialized a matrix above the threshold")
	}
	found := false
	for _, hp := range doc.HotPairs {
		if hp.From == 0 && hp.To == heavyTarget {
			found = true
			if hp.Bytes < heavyBytes {
				t.Errorf("heavy pair undercounted: %d < %d", hp.Bytes, heavyBytes)
			}
		}
	}
	if !found {
		t.Errorf("heavy hitter evicted from the sketch: %+v", doc.HotPairs)
	}
}

// The snapshot is a deterministic rank-ordered fold: identical recording
// sequences must serialize to identical bytes, and an idle profile must
// emit [] (not null) for hot_pairs so consumers can range unconditionally.
func TestSnapshotBytesDeterministic(t *testing.T) {
	build := func() *Profile {
		p := New(8, netmodel.RackDefault(2, 2))
		for r := 0; r < 8; r++ {
			p.Span(r, SpanTask, sim.Time(r)*10, 100)
			p.RMA(r, (r+1)%8, OpPut, 256)
			p.CheckoutCall(r)
			p.CheckoutHit(r, 64)
			p.CheckoutMiss(r, 192)
		}
		return p
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recordings serialized differently")
	}
	if !strings.Contains(a.String(), `"schema": "`+Schema+`"`) {
		t.Errorf("snapshot missing schema:\n%s", a.String())
	}
	var idle bytes.Buffer
	if err := New(2, netmodel.Default(8)).WriteJSON(&idle); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(idle.String(), `"hot_pairs": []`) {
		t.Errorf("idle profile hot_pairs not []:\n%s", idle.String())
	}
}

// The off-switch discipline: a nil *Profile records nothing and allocates
// nothing, and an armed profile's hot recording paths are allocation-free
// too (all state is fixed-size by construction).
func TestProfileZeroAllocs(t *testing.T) {
	var off *Profile
	if n := testing.AllocsPerRun(100, func() {
		off.Span(0, SpanTask, 0, 10)
		off.RMA(0, 1, OpGet, 64)
		off.CheckoutCall(0)
		off.CheckoutHit(0, 64)
		off.CheckoutMiss(0, 64)
	}); n != 0 {
		t.Errorf("disabled profile allocates %v per record, want 0", n)
	}
	on := New(4, netmodel.Default(2))
	if n := testing.AllocsPerRun(100, func() {
		on.Span(0, SpanTask, 0, 10)
		on.RMA(0, 1, OpGet, 64)
		on.CheckoutCall(0)
		on.CheckoutHit(0, 64)
		on.CheckoutMiss(0, 64)
	}); n != 0 {
		t.Errorf("armed profile allocates %v per record, want 0", n)
	}
}
