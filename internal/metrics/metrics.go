// Package metrics is the runtime's metrics registry: named counters,
// gauges and fixed-bucket histograms that the simulation layers (sim, rma,
// pgas, uth, core) update as a run progresses, snapshotted into a stable
// JSON document ("itoyori-metrics/v1") for tooling.
//
// Design constraints, in order:
//
//   - Determinism: metrics never touch simulated time. Observing a value is
//     a pure host-side bookkeeping operation, so enabling or reading
//     metrics cannot change a single simulated timestamp.
//   - Near-zero overhead: a nil *Counter/*Gauge/*Histogram is valid and
//     records nothing, so instrumentation sites need no enabled-checks, and
//     a live update is an integer add (histograms: one short linear scan
//     over the bucket bounds).
//   - Stable output: Snapshot marshals to JSON with sorted keys (Go maps
//     marshal in key order), so two identical runs produce byte-identical
//     documents.
//
// The simulator is single-threaded by construction (exactly one simulated
// goroutine runs at a time), so no atomics or locking are needed.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the snapshot document format.
const Schema = "itoyori-metrics/v1"

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter records nothing.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Set overwrites the value — used to mirror externally accumulated
// statistics (e.g. rma.Stats) into the registry at snapshot time.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time int64 value. A nil Gauge records nothing.
type Gauge struct{ v int64 }

// Set overwrites the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over int64 observations (virtual
// nanoseconds, bytes, ...). Bucket i counts observations v <= Bounds[i];
// the final implicit bucket counts everything larger. A nil Histogram
// records nothing.
type Histogram struct {
	bounds []int64
	counts []uint64
	sum    int64
	n      uint64
	min    int64
	max    int64
}

// NewHistogram creates a histogram with the given strictly increasing
// upper bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Snap returns the histogram's snapshot form.
func (h *Histogram) Snap() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// first, each factor times the previous (rounded up to stay strictly
// increasing).
func ExpBuckets(first int64, factor float64, n int) []int64 {
	if first < 1 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs first >= 1, factor > 1, n >= 1")
	}
	out := make([]int64, n)
	v := float64(first)
	for i := 0; i < n; i++ {
		b := int64(v)
		if i > 0 && b <= out[i-1] {
			b = out[i-1] + 1
		}
		out[i] = b
		v *= factor
	}
	return out
}

// Registry holds named metrics. Names are unique per kind lookup:
// requesting an existing name returns the existing instrument; requesting
// it as a different kind panics (a wiring bug).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]string),
	}
}

func (r *Registry) checkFresh(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// if new (bounds are ignored for an existing histogram).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name)
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Label sets a string label (run metadata: policy name, workload, ...).
func (r *Registry) Label(name, value string) { r.labels[name] = value }

// HistogramSnapshot is the serialized form of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1 entries,
	// the last counting observations above the final bound.
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
}

// Snapshot is the stable serialized form of a registry — the
// "itoyori-metrics/v1" document.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Labels     map[string]string            `json:"labels,omitempty"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     Schema,
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Labels:     make(map[string]string, len(r.labels)),
	}
	for k, v := range r.labels {
		s.Labels[k] = v
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snap()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Map keys marshal sorted,
// so the output is byte-stable for identical runs.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SortedCounterNames returns the counter names in sorted order, for stable
// text reports.
func (s Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
