package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	c.Set(7)
	g.Set(3)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	if s := h.Snap(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Fatalf("nil histogram snapshot must be empty, got %+v", s)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	c.Set(3)
	if c.Value() != 3 {
		t.Fatalf("counter after Set = %d, want 3", c.Value())
	}
	if r.Counter("x") != c {
		t.Fatalf("re-registering a counter must return the same instance")
	}
	g := r.Gauge("y")
	g.Set(-4)
	if g.Value() != -4 {
		t.Fatalf("gauge = %d, want -4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snap()
	want := []uint64{2, 2, 2, 2} // <=10, <=100, <=1000, >1000
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 8 || s.Min != 1 || s.Max != 5000 {
		t.Fatalf("count/min/max = %d/%d/%d, want 8/1/5000", s.Count, s.Min, s.Max)
	}
	if h.Mean() != float64(s.Sum)/8 {
		t.Fatalf("mean mismatch")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(500, 2, 5)
	want := []int64{500, 1000, 2000, 4000, 8000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// A factor close to 1 must still produce strictly increasing bounds.
	b = ExpBuckets(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic registering %q as a gauge after counter", "dup")
		}
	}()
	r.Gauge("dup")
}

func TestSnapshotJSONStable(t *testing.T) {
	mk := func() Snapshot {
		r := NewRegistry()
		r.Label("policy", "writeback")
		r.Counter("b_ops").Add(2)
		r.Counter("a_ops").Add(1)
		r.Gauge("ranks").Set(16)
		r.Histogram("lat", []int64{10, 20}).Observe(15)
		return r.Snapshot()
	}
	var w1, w2 bytes.Buffer
	if err := mk().WriteJSON(&w1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("snapshot JSON not byte-stable:\n%s\nvs\n%s", w1.String(), w2.String())
	}
	out := w1.String()
	if !strings.Contains(out, `"schema": "itoyori-metrics/v1"`) {
		t.Fatalf("missing schema marker in %s", out)
	}
	// Sorted keys: a_ops must appear before b_ops.
	if strings.Index(out, "a_ops") > strings.Index(out, "b_ops") {
		t.Fatalf("counters not sorted in JSON output:\n%s", out)
	}
	names := mk().SortedCounterNames()
	if len(names) != 2 || names[0] != "a_ops" || names[1] != "b_ops" {
		t.Fatalf("SortedCounterNames = %v", names)
	}
}
