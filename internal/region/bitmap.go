package region

import (
	"math/bits"
)

// Bitmap is the alternative representation §4.3.1 of the paper mentions
// for the valid-region tracking ("this is currently implemented as a
// linked list of byte-granularity intervals, although a bitmap would be
// another option"): one bit per byte over a fixed window [Base, Base+Size).
//
// Compared with Set, Bitmap has O(n/64) worst-case operations independent
// of fragmentation, at a fixed 1/8 space overhead per tracked block; Set
// is O(fragments) and nearly free for the common whole-block patterns.
// The benchmarks in bitmap_test.go quantify the tradeoff; the cache uses
// Set, matching the paper's implementation.
type Bitmap struct {
	base  uint64
	size  uint64
	words []uint64
}

// NewBitmap creates an empty bitmap tracking [base, base+size).
func NewBitmap(base, size uint64) *Bitmap {
	return &Bitmap{base: base, size: size, words: make([]uint64, (size+63)/64)}
}

func (b *Bitmap) clamp(iv Interval) (lo, hi uint64, ok bool) {
	if iv.Lo < b.base {
		iv.Lo = b.base
	}
	if iv.Hi > b.base+b.size {
		iv.Hi = b.base + b.size
	}
	if iv.Lo >= iv.Hi {
		return 0, 0, false
	}
	return iv.Lo - b.base, iv.Hi - b.base, true
}

// forWords visits the word-aligned pieces of [lo,hi): fn(wordIdx, mask).
func (b *Bitmap) forWords(lo, hi uint64, fn func(w int, mask uint64)) {
	for lo < hi {
		w := lo / 64
		start := lo % 64
		end := uint64(64)
		if w == (hi-1)/64 {
			end = (hi-1)%64 + 1
		}
		var mask uint64
		if end-start == 64 {
			mask = ^uint64(0)
		} else {
			mask = ((uint64(1) << (end - start)) - 1) << start
		}
		fn(int(w), mask)
		lo = (w + 1) * 64
	}
}

// Add marks iv present.
func (b *Bitmap) Add(iv Interval) {
	if lo, hi, ok := b.clamp(iv); ok {
		b.forWords(lo, hi, func(w int, m uint64) { b.words[w] |= m })
	}
}

// Subtract marks iv absent.
func (b *Bitmap) Subtract(iv Interval) {
	if lo, hi, ok := b.clamp(iv); ok {
		b.forWords(lo, hi, func(w int, m uint64) { b.words[w] &^= m })
	}
}

// Contains reports whether all of iv is present. Bytes outside the
// tracked window are never contained; the empty interval always is.
func (b *Bitmap) Contains(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	if iv.Lo < b.base || iv.Hi > b.base+b.size {
		return false
	}
	ok := true
	b.forWords(iv.Lo-b.base, iv.Hi-b.base, func(w int, m uint64) {
		if b.words[w]&m != m {
			ok = false
		}
	})
	return ok
}

// Clear removes everything.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Empty reports whether nothing is present.
func (b *Bitmap) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bytes counts the present bytes.
func (b *Bitmap) Bytes() uint64 {
	var n int
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return uint64(n)
}

// Missing returns the absent sub-intervals of iv within the window, in
// ascending order.
func (b *Bitmap) Missing(iv Interval) []Interval {
	lo, hi, ok := b.clamp(iv)
	if !ok {
		return nil
	}
	var out []Interval
	runStart := int64(-1)
	for i := lo; i < hi; i++ {
		present := b.words[i/64]&(1<<(i%64)) != 0
		if !present && runStart < 0 {
			runStart = int64(i)
		}
		if present && runStart >= 0 {
			out = append(out, Interval{uint64(runStart) + b.base, i + b.base})
			runStart = -1
		}
	}
	if runStart >= 0 {
		out = append(out, Interval{uint64(runStart) + b.base, hi + b.base})
	}
	return out
}

// Intervals returns the present intervals in ascending order (for
// diagnostics and write-back iteration).
func (b *Bitmap) Intervals() []Interval {
	var out []Interval
	runStart := int64(-1)
	for i := uint64(0); i < b.size; i++ {
		present := b.words[i/64]&(1<<(i%64)) != 0
		if present && runStart < 0 {
			runStart = int64(i)
		}
		if !present && runStart >= 0 {
			out = append(out, Interval{uint64(runStart) + b.base, i + b.base})
			runStart = -1
		}
	}
	if runStart >= 0 {
		out = append(out, Interval{uint64(runStart) + b.base, b.size + b.base})
	}
	return out
}
