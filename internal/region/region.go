// Package region implements byte-granularity interval sets, the data
// structure behind the software cache's valid-region and dirty-region
// tracking (mb.validRegions in Fig. 4 of the paper).
//
// A Set holds a normalized (sorted, disjoint, non-adjacent) list of
// half-open intervals [Lo, Hi). All operations preserve normalization.
package region

import (
	"fmt"
	"strings"
)

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains no bytes.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Len returns the number of bytes in the interval.
func (iv Interval) Len() uint64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)
	if lo >= hi {
		return Interval{}
	}
	return Interval{lo, hi}
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Set is a normalized set of byte intervals. The zero value is an empty set
// ready to use.
type Set struct {
	ivs []Interval
}

// Clear removes all intervals, retaining capacity.
func (s *Set) Clear() { s.ivs = s.ivs[:0] }

// Empty reports whether the set contains no bytes.
func (s *Set) Empty() bool { return len(s.ivs) == 0 }

// NumIntervals returns the number of maximal intervals in the set.
func (s *Set) NumIntervals() int { return len(s.ivs) }

// Bytes returns the total number of bytes covered.
func (s *Set) Bytes() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns the intervals in ascending order. The returned slice
// aliases internal storage and must not be modified or retained across
// mutations.
func (s *Set) Intervals() []Interval { return s.ivs }

// Add unions iv into the set, merging adjacent and overlapping intervals.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all intervals that overlap or touch iv.
	i := 0
	for i < len(s.ivs) && s.ivs[i].Hi < iv.Lo {
		i++
	}
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= iv.Hi {
		j++
	}
	if i < j {
		iv.Lo = min64(iv.Lo, s.ivs[i].Lo)
		iv.Hi = max64(iv.Hi, s.ivs[j-1].Hi)
	}
	s.ivs = append(s.ivs[:i], append([]Interval{iv}, s.ivs[j:]...)...)
}

// Subtract removes iv from the set, splitting intervals as needed.
func (s *Set) Subtract(iv Interval) {
	if iv.Empty() || len(s.ivs) == 0 {
		return
	}
	out := s.ivs[:0]
	var extra []Interval
	for _, cur := range s.ivs {
		ov := cur.Intersect(iv)
		if ov.Empty() {
			extra = append(extra, cur)
			continue
		}
		if cur.Lo < ov.Lo {
			extra = append(extra, Interval{cur.Lo, ov.Lo})
		}
		if ov.Hi < cur.Hi {
			extra = append(extra, Interval{ov.Hi, cur.Hi})
		}
	}
	s.ivs = append(out, extra...)
}

// Contains reports whether the whole of iv is covered by the set. The empty
// interval is always contained.
func (s *Set) Contains(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	for _, cur := range s.ivs {
		if cur.Lo <= iv.Lo && iv.Hi <= cur.Hi {
			return true
		}
	}
	return false
}

// ContainsByte reports whether byte b is in the set.
func (s *Set) ContainsByte(b uint64) bool {
	return s.Contains(Interval{b, b + 1})
}

// Missing returns the parts of iv not covered by the set, in ascending
// order: iv \ s. This is the fetch-region computation of Fig. 4 line 19.
func (s *Set) Missing(iv Interval) []Interval {
	if iv.Empty() {
		return nil
	}
	var out []Interval
	lo := iv.Lo
	for _, cur := range s.ivs {
		if cur.Hi <= lo {
			continue
		}
		if cur.Lo >= iv.Hi {
			break
		}
		if cur.Lo > lo {
			out = append(out, Interval{lo, min64(cur.Lo, iv.Hi)})
		}
		lo = max64(lo, cur.Hi)
		if lo >= iv.Hi {
			return out
		}
	}
	if lo < iv.Hi {
		out = append(out, Interval{lo, iv.Hi})
	}
	return out
}

// FirstMissing returns the lowest part of iv not covered by the set, and
// whether one exists. Equivalent to Missing(iv)[0] without allocating: the
// software cache's fetch loop re-resolves its next missing interval against
// the block's current valid set before every transfer, because issuing a
// transfer advances virtual time, during which a node-mate sharing the
// cache may validate bytes of the same block.
func (s *Set) FirstMissing(iv Interval) (Interval, bool) {
	if iv.Empty() {
		return Interval{}, false
	}
	lo := iv.Lo
	for _, cur := range s.ivs {
		if cur.Hi <= lo {
			continue
		}
		if cur.Lo >= iv.Hi {
			break
		}
		if cur.Lo > lo {
			return Interval{lo, min64(cur.Lo, iv.Hi)}, true
		}
		lo = max64(lo, cur.Hi)
		if lo >= iv.Hi {
			return Interval{}, false
		}
	}
	if lo < iv.Hi {
		return Interval{lo, iv.Hi}, true
	}
	return Interval{}, false
}

// Overlap returns the parts of iv covered by the set, in ascending order:
// iv ∩ s.
func (s *Set) Overlap(iv Interval) []Interval {
	var out []Interval
	for _, cur := range s.ivs {
		ov := cur.Intersect(iv)
		if !ov.Empty() {
			out = append(out, ov)
		}
	}
	return out
}

// AddSet unions another set into this one.
func (s *Set) AddSet(o *Set) {
	for _, iv := range o.ivs {
		s.Add(iv)
	}
}

func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}
