package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddMergesAdjacent(t *testing.T) {
	var s Set
	s.Add(Interval{0, 10})
	s.Add(Interval{10, 20}) // adjacent: must merge
	if s.NumIntervals() != 1 {
		t.Fatalf("set = %v, want single interval", s.String())
	}
	if !s.Contains(Interval{0, 20}) {
		t.Fatalf("set %v should contain [0,20)", s.String())
	}
}

func TestAddMergesOverlapping(t *testing.T) {
	var s Set
	s.Add(Interval{5, 15})
	s.Add(Interval{0, 10})
	s.Add(Interval{12, 30})
	if s.NumIntervals() != 1 || s.Bytes() != 30 {
		t.Fatalf("set = %v, want {[0,30)}", s.String())
	}
}

func TestAddDisjointKeepsOrder(t *testing.T) {
	var s Set
	s.Add(Interval{20, 30})
	s.Add(Interval{0, 5})
	s.Add(Interval{40, 45})
	ivs := s.Intervals()
	if len(ivs) != 3 || ivs[0].Lo != 0 || ivs[1].Lo != 20 || ivs[2].Lo != 40 {
		t.Fatalf("set = %v", s.String())
	}
}

func TestSubtractSplits(t *testing.T) {
	var s Set
	s.Add(Interval{0, 100})
	s.Subtract(Interval{40, 60})
	if s.NumIntervals() != 2 || s.Bytes() != 80 {
		t.Fatalf("set = %v", s.String())
	}
	if s.Contains(Interval{40, 41}) || !s.Contains(Interval{0, 40}) || !s.Contains(Interval{60, 100}) {
		t.Fatalf("wrong coverage: %v", s.String())
	}
}

func TestMissing(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})
	miss := s.Missing(Interval{0, 50})
	want := []Interval{{0, 10}, {20, 30}, {40, 50}}
	if len(miss) != len(want) {
		t.Fatalf("missing = %v, want %v", miss, want)
	}
	for i := range want {
		if miss[i] != want[i] {
			t.Fatalf("missing = %v, want %v", miss, want)
		}
	}
	if got := s.Missing(Interval{12, 18}); len(got) != 0 {
		t.Fatalf("fully covered interval reported missing: %v", got)
	}
}

func TestOverlap(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})
	ov := s.Overlap(Interval{15, 35})
	want := []Interval{{15, 20}, {30, 35}}
	if len(ov) != 2 || ov[0] != want[0] || ov[1] != want[1] {
		t.Fatalf("overlap = %v, want %v", ov, want)
	}
}

func TestEmptyIntervalNoOps(t *testing.T) {
	var s Set
	s.Add(Interval{5, 5})
	if !s.Empty() {
		t.Fatal("adding empty interval changed set")
	}
	s.Add(Interval{0, 10})
	s.Subtract(Interval{7, 7})
	if s.Bytes() != 10 {
		t.Fatal("subtracting empty interval changed set")
	}
	if !s.Contains(Interval{3, 3}) {
		t.Fatal("empty interval must always be contained")
	}
}

// refSet is a bitmap reference implementation over a small universe.
type refSet [256]bool

func (r *refSet) add(iv Interval)      { r.apply(iv, true) }
func (r *refSet) subtract(iv Interval) { r.apply(iv, false) }
func (r *refSet) apply(iv Interval, v bool) {
	for b := iv.Lo; b < iv.Hi && b < 256; b++ {
		r[b] = v
	}
}
func (r *refSet) contains(iv Interval) bool {
	for b := iv.Lo; b < iv.Hi && b < 256; b++ {
		if !r[b] {
			return false
		}
	}
	return true
}
func (r *refSet) bytes() uint64 {
	var n uint64
	for _, v := range r {
		if v {
			n++
		}
	}
	return n
}

// TestQuickAgainstBitmap drives random Add/Subtract sequences and checks
// the interval set against the bitmap reference, including normalization
// invariants.
func TestQuickAgainstBitmap(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		var ref refSet
		for op := 0; op < int(nops)+5; op++ {
			lo := uint64(rng.Intn(256))
			hi := lo + uint64(rng.Intn(64))
			if hi > 256 {
				hi = 256
			}
			iv := Interval{lo, hi}
			if rng.Intn(3) == 0 {
				s.Subtract(iv)
				ref.subtract(iv)
			} else {
				s.Add(iv)
				ref.add(iv)
			}
			// Invariant: normalized (sorted, disjoint, non-adjacent, non-empty).
			ivs := s.Intervals()
			for i, cur := range ivs {
				if cur.Empty() {
					t.Logf("empty interval in set %v", s.String())
					return false
				}
				if i > 0 && ivs[i-1].Hi >= cur.Lo {
					t.Logf("unnormalized set %v", s.String())
					return false
				}
			}
			if s.Bytes() != ref.bytes() {
				t.Logf("byte count %d != ref %d (set %v)", s.Bytes(), ref.bytes(), s.String())
				return false
			}
		}
		// Probe random containment and missing queries.
		for q := 0; q < 30; q++ {
			lo := uint64(rng.Intn(256))
			hi := lo + uint64(rng.Intn(64))
			if hi > 256 {
				hi = 256
			}
			iv := Interval{lo, hi}
			if s.Contains(iv) != ref.contains(iv) {
				t.Logf("contains(%v) mismatch on %v", iv, s.String())
				return false
			}
			// Missing ∪ Overlap must exactly tile iv.
			parts := append(append([]Interval{}, s.Missing(iv)...), s.Overlap(iv)...)
			var total uint64
			for _, p := range parts {
				total += p.Len()
			}
			if total != iv.Len() {
				t.Logf("missing+overlap of %v covers %d bytes, want %d", iv, total, iv.Len())
				return false
			}
			for _, m := range s.Missing(iv) {
				for b := m.Lo; b < m.Hi; b++ {
					if ref[b] {
						t.Logf("missing region %v contains present byte %d", m, b)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddFragmented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Set
		for k := 0; k < 128; k++ {
			s.Add(Interval{uint64(k * 8), uint64(k*8 + 4)})
		}
	}
}

// TestFirstMissing checks the allocation-free single-gap query against the
// full Missing list across random sets: FirstMissing must return exactly
// Missing(iv)[0], and report ok=false iff the list is empty.
func TestFirstMissing(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})
	cases := []Interval{{0, 50}, {12, 18}, {0, 10}, {20, 30}, {15, 35}, {40, 45}, {5, 5}}
	for _, iv := range cases {
		miss := s.Missing(iv)
		got, ok := s.FirstMissing(iv)
		if ok != (len(miss) > 0) {
			t.Fatalf("FirstMissing(%v) ok=%v, Missing=%v", iv, ok, miss)
		}
		if ok && got != miss[0] {
			t.Fatalf("FirstMissing(%v) = %v, want %v", iv, got, miss[0])
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var r Set
		for k := 0; k < rng.Intn(6); k++ {
			lo := uint64(rng.Intn(128))
			r.Add(Interval{lo, lo + uint64(rng.Intn(32))})
		}
		lo := uint64(rng.Intn(128))
		iv := Interval{lo, lo + uint64(rng.Intn(48))}
		miss := r.Missing(iv)
		got, ok := r.FirstMissing(iv)
		if ok != (len(miss) > 0) || (ok && got != miss[0]) {
			t.Fatalf("set %v FirstMissing(%v) = %v,%v; Missing = %v", r.String(), iv, got, ok, miss)
		}
	}
}
