package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(1000, 256)
	b.Add(Interval{1010, 1020})
	if !b.Contains(Interval{1012, 1018}) || b.Contains(Interval{1005, 1015}) {
		t.Fatal("containment wrong")
	}
	if b.Bytes() != 10 {
		t.Fatalf("bytes = %d", b.Bytes())
	}
	b.Subtract(Interval{1014, 1016})
	if b.Bytes() != 8 || b.Contains(Interval{1010, 1020}) {
		t.Fatal("subtract wrong")
	}
	miss := b.Missing(Interval{1010, 1020})
	if len(miss) != 1 || miss[0] != (Interval{1014, 1016}) {
		t.Fatalf("missing = %v", miss)
	}
}

func TestBitmapWindowClamping(t *testing.T) {
	b := NewBitmap(100, 64)
	b.Add(Interval{0, 1000}) // covers the whole window and beyond
	if b.Bytes() != 64 {
		t.Fatalf("bytes = %d, want 64", b.Bytes())
	}
	if !b.Contains(Interval{100, 164}) {
		t.Fatal("window not fully present")
	}
	if b.Contains(Interval{99, 101}) || b.Contains(Interval{163, 165}) {
		t.Fatal("outside-window bytes reported present")
	}
}

func TestBitmapWordBoundaries(t *testing.T) {
	b := NewBitmap(0, 256)
	// Exactly at 64-bit word boundaries.
	b.Add(Interval{63, 65})
	b.Add(Interval{128, 192})
	if !b.Contains(Interval{63, 65}) || !b.Contains(Interval{128, 192}) {
		t.Fatal("boundary adds lost")
	}
	if b.Bytes() != 2+64 {
		t.Fatalf("bytes = %d", b.Bytes())
	}
	ivs := b.Intervals()
	if len(ivs) != 2 || ivs[0] != (Interval{63, 65}) || ivs[1] != (Interval{128, 192}) {
		t.Fatalf("intervals = %v", ivs)
	}
}

// TestBitmapMatchesSet drives identical random operations through Bitmap
// and Set and requires identical observable behaviour within the window.
func TestBitmapMatchesSet(t *testing.T) {
	const base, size = 4096, 512
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := NewBitmap(base, size)
		var st Set
		for op := 0; op < int(nops)+10; op++ {
			lo := base + uint64(rng.Intn(size))
			hi := lo + uint64(rng.Intn(96))
			if hi > base+size {
				hi = base + size
			}
			iv := Interval{lo, hi}
			if rng.Intn(3) == 0 {
				bm.Subtract(iv)
				st.Subtract(iv)
			} else {
				bm.Add(iv)
				st.Add(iv)
			}
			if bm.Bytes() != st.Bytes() {
				t.Logf("bytes diverge: bitmap %d vs set %d", bm.Bytes(), st.Bytes())
				return false
			}
		}
		for q := 0; q < 20; q++ {
			lo := base + uint64(rng.Intn(size))
			hi := lo + uint64(rng.Intn(96))
			if hi > base+size {
				hi = base + size
			}
			iv := Interval{lo, hi}
			if bm.Contains(iv) != st.Contains(iv) {
				t.Logf("contains(%v) diverges", iv)
				return false
			}
			bMiss, sMiss := bm.Missing(iv), st.Missing(iv)
			if len(bMiss) != len(sMiss) {
				t.Logf("missing(%v): %v vs %v", iv, bMiss, sMiss)
				return false
			}
			for i := range bMiss {
				if bMiss[i] != sMiss[i] {
					t.Logf("missing(%v): %v vs %v", iv, bMiss, sMiss)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Comparison benchmarks: the fragmentation tradeoff the paper alludes to.

func BenchmarkSetFragmentedAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Set
		for k := uint64(0); k < 512; k += 8 {
			s.Add(Interval{k, k + 4})
		}
	}
}

func BenchmarkBitmapFragmentedAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bm := NewBitmap(0, 512)
		for k := uint64(0); k < 512; k += 8 {
			bm.Add(Interval{k, k + 4})
		}
	}
}

func BenchmarkSetWholeBlockPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Set
		s.Add(Interval{0, 65536})
		_ = s.Contains(Interval{4096, 8192})
		s.Clear()
	}
}

func BenchmarkBitmapWholeBlockPattern(b *testing.B) {
	bm := NewBitmap(0, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Add(Interval{0, 65536})
		_ = bm.Contains(Interval{4096, 8192})
		bm.Clear()
	}
}
