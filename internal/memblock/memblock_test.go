package memblock

import (
	"testing"

	"ityr/internal/region"
)

func TestAcquireAssignsAndReuses(t *testing.T) {
	tb := NewTable(4, 64, false)
	b1, ev, err := tb.Acquire(10)
	if err != nil || ev != nil {
		t.Fatalf("acquire: %v, evicted %v", err, ev)
	}
	if b1.ID != 10 || len(b1.Data) != 64 {
		t.Fatalf("block = %+v", b1)
	}
	b2, _, err := tb.Acquire(10)
	if err != nil || b2 != b1 {
		t.Fatalf("second acquire returned different block")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	tb := NewTable(2, 64, false)
	a, _, _ := tb.Acquire(1)
	b, _, _ := tb.Acquire(2)
	tb.Lookup(1) // touch 1: now 2 is LRU
	c, ev, err := tb.Acquire(3)
	if err != nil {
		t.Fatal(err)
	}
	if ev != b {
		t.Fatalf("evicted %v, want block for id 2", ev)
	}
	if c.ID != 3 || tb.Peek(2) != nil || tb.Peek(1) != a {
		t.Fatal("table state wrong after eviction")
	}
	if tb.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Evictions)
	}
}

func TestPinnedBlocksNotEvicted(t *testing.T) {
	tb := NewTable(2, 64, false)
	a, _, _ := tb.Acquire(1)
	b, _, _ := tb.Acquire(2)
	a.Ref++ // pin the LRU block
	c, ev, err := tb.Acquire(3)
	if err != nil {
		t.Fatal(err)
	}
	if ev != b || c.ID != 3 {
		t.Fatalf("evicted %+v, want unpinned block 2", ev)
	}
}

func TestAllPinnedReturnsTooMuchCheckout(t *testing.T) {
	tb := NewTable(2, 64, false)
	a, _, _ := tb.Acquire(1)
	b, _, _ := tb.Acquire(2)
	a.Ref++
	b.Ref++
	if _, _, err := tb.Acquire(3); err != ErrTooMuchCheckout {
		t.Fatalf("err = %v, want ErrTooMuchCheckout", err)
	}
}

func TestDirtyBlocksNotEvictable(t *testing.T) {
	tb := NewTable(2, 64, false)
	a, _, _ := tb.Acquire(1)
	b, _, _ := tb.Acquire(2)
	a.Dirty.Add(region.Interval{Lo: 0, Hi: 8})
	b.Dirty.Add(region.Interval{Lo: 0, Hi: 8})
	if _, _, err := tb.Acquire(3); err != ErrNoEvictable {
		t.Fatalf("err = %v, want ErrNoEvictable", err)
	}
	// After "writing back" (clearing dirty), acquisition succeeds.
	a.Dirty.Clear()
	b.Dirty.Clear()
	if _, _, err := tb.Acquire(3); err != nil {
		t.Fatalf("acquire after writeback: %v", err)
	}
}

func TestMappedAccounting(t *testing.T) {
	tb := NewTable(3, 64, false)
	a, _, _ := tb.Acquire(1)
	if !tb.SetMapped(a, true) {
		t.Fatal("first map should report a change")
	}
	if tb.SetMapped(a, true) {
		t.Fatal("re-map of mapped block should be a no-op")
	}
	if tb.MappedCount() != 1 {
		t.Fatalf("mapped = %d, want 1", tb.MappedCount())
	}
	tb.SetMapped(a, false)
	if tb.MappedCount() != 0 {
		t.Fatalf("mapped = %d, want 0", tb.MappedCount())
	}
}

func TestEvictionClearsMapping(t *testing.T) {
	tb := NewTable(1, 64, false)
	a, _, _ := tb.Acquire(1)
	tb.SetMapped(a, true)
	_, ev, err := tb.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Mapped || tb.MappedCount() != 0 {
		t.Fatalf("eviction did not unmap: evicted=%v mapped=%d", ev, tb.MappedCount())
	}
}

func TestAcquireClearsStaleState(t *testing.T) {
	tb := NewTable(1, 64, false)
	a, _, _ := tb.Acquire(1)
	a.Valid.Add(region.Interval{Lo: 0, Hi: 64})
	a.Data[0] = 0xFF
	b, ev, err := tb.Acquire(2)
	if err != nil || ev == nil {
		t.Fatalf("acquire: %v", err)
	}
	if !b.Valid.Empty() || !b.Dirty.Empty() || b.Ref != 0 {
		t.Fatal("reused block carries stale metadata")
	}
}

func TestInvalidateAll(t *testing.T) {
	tb := NewTable(4, 64, false)
	for id := int64(0); id < 4; id++ {
		b, _, _ := tb.Acquire(id)
		b.Valid.Add(region.Interval{Lo: uint64(id) * 64, Hi: uint64(id)*64 + 64})
	}
	tb.InvalidateAll()
	tb.ForEach(func(b *Block) {
		if !b.Valid.Empty() {
			t.Fatalf("block %d still valid after invalidate", b.ID)
		}
	})
}

func TestDirtyBlocksListing(t *testing.T) {
	tb := NewTable(4, 64, false)
	b0, _, _ := tb.Acquire(0)
	tb.Acquire(1)
	b2, _, _ := tb.Acquire(2)
	b0.Dirty.Add(region.Interval{Lo: 0, Hi: 4})
	b2.Dirty.Add(region.Interval{Lo: 128, Hi: 132})
	d := tb.DirtyBlocks()
	if len(d) != 2 {
		t.Fatalf("dirty blocks = %d, want 2", len(d))
	}
}

func TestLazyAllocation(t *testing.T) {
	tb := NewTable(1000000, 65536, false) // 64 GB if eagerly allocated
	tb.Acquire(42)
	if tb.allocated != 1 {
		t.Fatalf("allocated = %d, want 1", tb.allocated)
	}
}

func TestHomeTableHasNoBacking(t *testing.T) {
	tb := NewTable(2, 64, true)
	b, _, _ := tb.Acquire(7)
	if b.Data != nil {
		t.Fatal("home table must not allocate backing storage")
	}
}
