// Package memblock manages the per-process physical memory blocks of the
// software cache: fixed pools of home and cache blocks, the blockID → block
// hash table, LRU eviction with reference counts, and the memory-mapping
// entry accounting of §4.3.2 of the paper.
package memblock

import (
	"errors"
	"fmt"

	"ityr/internal/region"
)

// Errors reported by Acquire.
var (
	// ErrNoEvictable means every block is pinned or dirty; the caller
	// should write back all dirty blocks and retry (§4.4).
	ErrNoEvictable = errors.New("memblock: no evictable block (all pinned or dirty)")
	// ErrTooMuchCheckout means every block is pinned by outstanding
	// checkouts — the fixed-size cache cannot satisfy the request
	// (the too-much-checkout exception of §4.3.1).
	ErrTooMuchCheckout = errors.New("memblock: too much checked-out memory for cache capacity")
)

// Block is one physical memory block (home or cache).
type Block struct {
	// ID is the global block number currently associated with this
	// physical block, or -1 when free.
	ID int64
	// Data is the backing storage. For cache blocks it is owned by the
	// block; for home blocks it aliases the rank's home segment.
	Data []byte
	// Valid tracks the up-to-date byte regions within the block, in
	// absolute global addresses (cache blocks only; home blocks are
	// authoritative and have no Valid set).
	Valid region.Set
	// Dirty tracks locally modified regions awaiting write-back, in
	// absolute global addresses.
	Dirty region.Set
	// Ref counts outstanding checkouts (Fig. 4 refCount).
	Ref int
	// Mapped records whether the block is currently mapped into the
	// process's global view (mb.addr == mb.mappedAddr).
	Mapped bool
	// Home distinguishes home blocks from cache blocks.
	Home bool
	// Prefetched marks a cache block whose bytes were speculatively
	// fetched by the pgas prefetcher and not yet touched by a demand
	// checkout. The table never modifies it — Acquire deliberately leaves
	// it alone when recycling a block, so the pgas layer can still read
	// the evicted identity's flag (an eviction of a still-set flag is a
	// wasted prefetch) before resetting it for the new identity.
	Prefetched bool

	prev, next *Block
	table      *Table
}

// Pinned reports whether the block is held by outstanding checkouts.
func (b *Block) Pinned() bool { return b.Ref > 0 }

// Evictable implements the paper's rule: a block is evictable iff it is not
// dirty and its reference count is zero.
func (b *Block) Evictable() bool { return b.Ref == 0 && b.Dirty.Empty() }

// Table is a fixed pool of physical blocks with an LRU replacement policy.
type Table struct {
	blockSize int
	home      bool
	byID      map[int64]*Block
	// LRU list with sentinel: head.next is least recently used.
	head, tail Block
	nblocks    int
	allocated  int // physical blocks lazily allocated so far
	mapped     int // blocks currently mapped into the global view

	// Evictions counts completed evictions, for tests and the profiler.
	Evictions uint64
}

// NewTable creates a table of nblocks physical blocks of blockSize bytes.
// Backing storage is allocated lazily, so a large configured cache costs
// host memory only for blocks actually touched. If home is true the blocks
// are home blocks (no Valid tracking, storage supplied by the caller).
func NewTable(nblocks, blockSize int, home bool) *Table {
	if nblocks <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("memblock: invalid table %d x %d", nblocks, blockSize))
	}
	t := &Table{
		blockSize: blockSize,
		home:      home,
		byID:      make(map[int64]*Block),
		nblocks:   nblocks,
	}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

// BlockSize returns the block size in bytes.
func (t *Table) BlockSize() int { return t.blockSize }

// Capacity returns the number of physical blocks in the pool.
func (t *Table) Capacity() int { return t.nblocks }

// MappedCount returns how many blocks are currently mapped into the global
// view (memory-mapping entries consumed, §4.3.2).
func (t *Table) MappedCount() int { return t.mapped }

// Lookup returns the block currently holding global block id, or nil. It
// refreshes the block's LRU position.
func (t *Table) Lookup(id int64) *Block {
	b := t.byID[id]
	if b != nil {
		t.touch(b)
	}
	return b
}

// Peek returns the block holding id without touching LRU state.
func (t *Table) Peek(id int64) *Block { return t.byID[id] }

// Acquire returns the block for global block id, assigning a free or
// evicted physical block if necessary (GetMemBlock in Fig. 4). The second
// result is the evicted victim (nil if none): the caller must unmap it and
// discard any cached state before reusing the returned block, whose Valid
// and Dirty sets are cleared and Mapped is false when newly assigned.
//
// Acquire fails with ErrNoEvictable if the pool is full and every block is
// pinned or dirty, and with ErrTooMuchCheckout if every block is pinned.
func (t *Table) Acquire(id int64) (blk *Block, evicted *Block, err error) {
	if b := t.byID[id]; b != nil {
		t.touch(b)
		return b, nil, nil
	}
	var b *Block
	if t.allocated < t.nblocks {
		b = &Block{ID: -1, table: t}
		if !t.home {
			b.Data = make([]byte, t.blockSize)
		}
		t.allocated++
		t.insertTail(b)
	} else {
		// Walk the LRU list head→tail for an evictable block (Fig. 4).
		allPinned := true
		for cur := t.head.next; cur != &t.tail; cur = cur.next {
			if !cur.Pinned() {
				allPinned = false
			}
			if cur.Evictable() {
				b = cur
				break
			}
		}
		if b == nil {
			if allPinned {
				return nil, nil, ErrTooMuchCheckout
			}
			return nil, nil, ErrNoEvictable
		}
		delete(t.byID, b.ID)
		evicted = b
		t.Evictions++
		if b.Mapped {
			t.mapped--
			b.Mapped = false
		}
		t.touch(b)
	}
	b.ID = id
	b.Valid.Clear()
	b.Dirty.Clear()
	b.Ref = 0
	t.byID[id] = b
	return b, evicted, nil
}

// SetMapped updates the mapping state of a block, maintaining the
// mapping-entry count. It reports whether the state changed (i.e. whether
// an mmap call would have been issued).
func (t *Table) SetMapped(b *Block, mapped bool) bool {
	if b.Mapped == mapped {
		return false
	}
	b.Mapped = mapped
	if mapped {
		t.mapped++
	} else {
		t.mapped--
	}
	return true
}

// ForEach calls fn for every block currently assigned an ID, in LRU order
// (least recently used first).
func (t *Table) ForEach(fn func(*Block)) {
	for cur := t.head.next; cur != &t.tail; cur = cur.next {
		if cur.ID >= 0 {
			fn(cur)
		}
	}
}

// DirtyBlocks returns the blocks that have dirty regions, LRU order.
func (t *Table) DirtyBlocks() []*Block {
	var out []*Block
	t.ForEach(func(b *Block) {
		if !b.Dirty.Empty() {
			out = append(out, b)
		}
	})
	return out
}

// InvalidateAll clears the valid regions of every block (acquire fence
// self-invalidation, §4.4). Dirty state is untouched — the protocol writes
// dirty data back before or during an acquire as required.
func (t *Table) InvalidateAll() {
	t.ForEach(func(b *Block) { b.Valid.Clear() })
}

// InvalidateAllExceptDirty clears valid regions but keeps dirty bytes
// valid. Dirty bytes are this cache's own unreleased writes — under
// data-race-freedom no other rank can have released a conflicting write,
// so they are always at least as fresh as home memory, and clearing their
// valid bits would let a later fetch overwrite them (the invariant of
// Fig. 4 line 19: dirty ⊆ valid). This matters when a cache is shared by
// a node's processes: one rank's acquire may interleave with another
// rank's in-flight access in virtual time.
func (t *Table) InvalidateAllExceptDirty() {
	t.ForEach(func(b *Block) {
		b.Valid.Clear()
		if !b.Dirty.Empty() {
			b.Valid.AddSet(&b.Dirty)
		}
	})
}

func (t *Table) touch(b *Block) {
	if b.prev != nil {
		b.prev.next = b.next
		b.next.prev = b.prev
	}
	t.insertTail(b)
}

func (t *Table) insertTail(b *Block) {
	b.prev = t.tail.prev
	b.next = &t.tail
	t.tail.prev.next = b
	t.tail.prev = b
}
