package main

import (
	"strings"
	"testing"

	"ityr/internal/bench"
)

func sampleReport() bench.PerfReport {
	return bench.PerfReport{
		Schema:   bench.PerfSchema,
		Scale:    "smoke",
		Coalesce: true,
		Prefetch: 2,
		Experiments: map[string]bench.PerfMetrics{
			"cilksort": {SimNs: 484333, RoundTrips: 387, RMABytes: 495988},
			"halo":     {SimNs: 188101, RoundTrips: 336, RMABytes: 2688},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	if f := compare(sampleReport(), sampleReport(), 0.02); len(f) != 0 {
		t.Fatalf("identical reports produced findings: %v", f)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	cur := sampleReport()
	m := cur.Experiments["cilksort"]
	m.SimNs = m.SimNs + m.SimNs/100 // +1% < 2% tolerance
	cur.Experiments["cilksort"] = m
	if f := compare(sampleReport(), cur, 0.02); len(f) != 0 {
		t.Fatalf("1%% drift under 2%% tolerance produced findings: %v", f)
	}
}

// TestComparePerturbedMetricFails is the gate's reason to exist: take the
// baseline, hand-perturb one metric past the tolerance, and the gate must
// fail naming the experiment and metric.
func TestComparePerturbedMetricFails(t *testing.T) {
	cases := []struct {
		name    string
		perturb func(*bench.PerfMetrics)
		want    string
	}{
		{"sim time regression", func(m *bench.PerfMetrics) { m.SimNs = m.SimNs * 11 / 10 }, "sim_ns regressed"},
		{"round trips regression", func(m *bench.PerfMetrics) { m.RoundTrips += 100 }, "round_trips regressed"},
		{"rma bytes regression", func(m *bench.PerfMetrics) { m.RMABytes *= 2 }, "rma_bytes regressed"},
		{"unre-baselined improvement", func(m *bench.PerfMetrics) { m.RoundTrips /= 2 }, "round_trips improved past tolerance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := sampleReport()
			m := cur.Experiments["cilksort"]
			tc.perturb(&m)
			cur.Experiments["cilksort"] = m
			f := compare(sampleReport(), cur, 0.02)
			if len(f) != 1 {
				t.Fatalf("want exactly 1 finding, got %d: %v", len(f), f)
			}
			if !strings.Contains(f[0], "cilksort") || !strings.Contains(f[0], tc.want) {
				t.Fatalf("finding %q does not name cilksort + %q", f[0], tc.want)
			}
		})
	}
}

func TestCompareExperimentSetMismatch(t *testing.T) {
	cur := sampleReport()
	delete(cur.Experiments, "halo")
	cur.Experiments["uts"] = bench.PerfMetrics{SimNs: 1, RoundTrips: 1, RMABytes: 1}
	f := compare(sampleReport(), cur, 0.02)
	if len(f) != 2 {
		t.Fatalf("want 2 findings (missing halo, extra uts), got %d: %v", len(f), f)
	}
	if !strings.Contains(f[0], `"halo"`) || !strings.Contains(f[0], "missing") {
		t.Errorf("first finding should report missing halo, got %q", f[0])
	}
	if !strings.Contains(f[1], `"uts"`) || !strings.Contains(f[1], "re-baseline") {
		t.Errorf("second finding should report unbaselined uts, got %q", f[1])
	}
}

func TestCompareKnobOrScaleMismatch(t *testing.T) {
	cur := sampleReport()
	cur.Prefetch = 0
	f := compare(sampleReport(), cur, 0.02)
	if len(f) != 1 || !strings.Contains(f[0], "batching knobs mismatch") {
		t.Fatalf("want a single knob-mismatch finding, got %v", f)
	}

	cur = sampleReport()
	cur.Scale = "quick"
	f = compare(sampleReport(), cur, 0.02)
	if len(f) != 1 || !strings.Contains(f[0], "scale mismatch") {
		t.Fatalf("want a single scale-mismatch finding, got %v", f)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := sampleReport()
	m := base.Experiments["halo"]
	m.RMABytes = 0
	base.Experiments["halo"] = m

	if f := compare(base, base, 0.02); len(f) != 0 {
		t.Fatalf("zero-vs-zero produced findings: %v", f)
	}
	cur := sampleReport() // halo rma_bytes back to 2688
	f := compare(base, cur, 0.02)
	if len(f) != 1 || !strings.Contains(f[0], "baseline 0") {
		t.Fatalf("nonzero against zero baseline should fail, got %v", f)
	}
}
