// Command perfgate is the deterministic perf-regression gate: it compares
// a freshly generated perf report (`itybench -perf BENCH_perf.json -scale
// smoke`) against the checked-in baseline (BENCH_baseline.json) and exits
// nonzero on any drift beyond a small tolerance.
//
// Because the simulator is bit-deterministic, every gated number —
// simulated time, RMA round trips, RMA bytes — is exactly reproducible on
// any host, so drift is always a code change, never noise. The gate is
// two-sided on purpose: a regression fails outright, and an improvement
// beyond the tolerance also fails until the baseline is regenerated (`make
// perf-baseline`), so the checked-in numbers always describe the current
// code and the next regression is measured from the right floor. The
// tolerance exists only to absorb intentional micro-churn (a few events
// moved by an unrelated change) without a re-baseline ceremony.
//
// Usage:
//
//	perfgate -baseline BENCH_baseline.json -current BENCH_perf.json [-tol 0.02]
//	perfgate -schema taskbench -baseline BENCH_taskbench.json -current BENCH_taskbench.current.json
//
// The -schema flag selects which report family is being gated: "perf"
// (itoyori-perf/v1, the app suite) or "taskbench" (itoyori-taskbench/v1,
// the shape × grain × scheduler matrix). Reports of the wrong schema are
// rejected before any comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"ityr/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
	current := flag.String("current", "BENCH_perf.json", "freshly generated report to gate")
	tol := flag.Float64("tol", 0.02, "relative tolerance per metric (0.02 = ±2%)")
	schemaName := flag.String("schema", "perf", "report family to gate: perf (itoyori-perf/v1) or taskbench (itoyori-taskbench/v1)")
	flag.Parse()

	var schema string
	switch *schemaName {
	case "perf":
		schema = bench.PerfSchema
	case "taskbench":
		schema = bench.TaskbenchSchema
	default:
		fmt.Fprintf(os.Stderr, "perfgate: unknown -schema %q (valid: perf, taskbench)\n", *schemaName)
		os.Exit(2)
	}

	base, err := readReport(*baseline, schema)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
	cur, err := readReport(*current, schema)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}

	findings := compare(base, cur, *tol)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "perfgate:", f)
		}
		fmt.Fprintf(os.Stderr, "perfgate: FAIL (%d finding(s); if the change is intentional, regenerate the baseline with `make perf-baseline` and commit it)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("perfgate: OK — %d experiment(s) within ±%.1f%% of baseline (%s scale)\n",
		len(base.Experiments), 100**tol, base.Scale)
}

func readReport(path, schema string) (bench.PerfReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.PerfReport{}, err
	}
	defer f.Close()
	rep, err := bench.ReadReport(f, schema)
	if err != nil {
		return bench.PerfReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
