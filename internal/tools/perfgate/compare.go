package main

import (
	"fmt"
	"sort"

	"ityr/internal/bench"
)

// compare returns one human-readable finding per gated discrepancy between
// the baseline and the current report; an empty slice means the gate
// passes. Findings are deterministic: experiments are visited in sorted
// order, metrics in a fixed order.
//
// A metric fails when it drifts beyond tol relatively in either direction:
// above the baseline is a regression, below it is an improvement that
// must be re-baselined so future regressions are measured from the new
// floor. Reports are only comparable like-for-like, so mismatched scale
// or batching knobs, and missing or extra experiments, are findings too.
func compare(base, cur bench.PerfReport, tol float64) []string {
	var findings []string
	if cur.Scale != base.Scale {
		findings = append(findings, fmt.Sprintf(
			"scale mismatch: baseline %q, current %q", base.Scale, cur.Scale))
	}
	if cur.Coalesce != base.Coalesce || cur.Prefetch != base.Prefetch {
		findings = append(findings, fmt.Sprintf(
			"batching knobs mismatch: baseline coalesce=%v prefetch=%d, current coalesce=%v prefetch=%d",
			base.Coalesce, base.Prefetch, cur.Coalesce, cur.Prefetch))
	}
	if len(findings) > 0 {
		// Differently configured runs aren't comparable; metric deltas
		// against them would only be noise on top of the real finding.
		return findings
	}

	names := make([]string, 0, len(base.Experiments))
	for name := range base.Experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Experiments[name]
		c, ok := cur.Experiments[name]
		if !ok {
			findings = append(findings, fmt.Sprintf(
				"experiment %q in baseline but missing from current report", name))
			continue
		}
		findings = append(findings, compareMetric(name, "sim_ns", float64(b.SimNs), float64(c.SimNs), tol)...)
		findings = append(findings, compareMetric(name, "round_trips", float64(b.RoundTrips), float64(c.RoundTrips), tol)...)
		findings = append(findings, compareMetric(name, "rma_bytes", float64(b.RMABytes), float64(c.RMABytes), tol)...)
	}

	extras := make([]string, 0)
	for name := range cur.Experiments {
		if _, ok := base.Experiments[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		findings = append(findings, fmt.Sprintf(
			"experiment %q not in baseline: re-baseline to start gating it", name))
	}
	return findings
}

// compareMetric gates one number. The tolerance band is relative to the
// baseline; a zero baseline only accepts an exact zero (relative drift
// from zero is undefined, and the deterministic simulator reproduces true
// zeros exactly).
func compareMetric(exp, metric string, base, cur, tol float64) []string {
	if base == 0 {
		if cur != 0 {
			return []string{fmt.Sprintf(
				"%s %s regressed: baseline 0, current %.0f", exp, metric, cur)}
		}
		return nil
	}
	switch {
	case cur > base*(1+tol):
		return []string{fmt.Sprintf(
			"%s %s regressed: baseline %.0f, current %.0f (+%.1f%%, tolerance ±%.1f%%)",
			exp, metric, base, cur, 100*(cur-base)/base, 100*tol)}
	case cur < base*(1-tol):
		return []string{fmt.Sprintf(
			"%s %s improved past tolerance: baseline %.0f, current %.0f (%.1f%%, tolerance ±%.1f%%) — re-baseline to lock in the win",
			exp, metric, base, cur, 100*(cur-base)/base, 100*tol)}
	}
	return nil
}
