// Command docscheck enforces the repo's godoc floor: every Go package must
// have a package comment, and every exported top-level identifier of the
// public API — the root ityr package, plus internal/pgas, whose policy and
// validator identifiers are the memory-model contract surface DESIGN.md §5
// and PITFALLS.md reference by name — must have a doc comment. It walks the
// module from the current directory with go/parser — no build, no network —
// and exits nonzero listing every violation, so `make docscheck` (and CI)
// fail when documentation regresses.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// dir -> package has a package comment in at least one file.
	pkgDoc := map[string]bool{}
	pkgName := map[string]string{}
	var bad []string

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		pkgName[dir] = f.Name.Name
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			pkgDoc[dir] = true
		}
		// The root package is the public API: exported decls need docs. So
		// does internal/pgas — its exported policy/validator identifiers
		// are the names the documented memory-model contract is written in —
		// and internal/uth and internal/apps/taskbench, whose scheduler-
		// policy and workload-matrix identifiers DESIGN.md §10 and
		// EXPERIMENTS.md reference by name.
		docedAPI := dir == root && f.Name.Name != "main" ||
			dir == filepath.Join(root, "internal", "pgas") ||
			dir == filepath.Join(root, "internal", "uth") ||
			dir == filepath.Join(root, "internal", "apps", "taskbench")
		if docedAPI {
			bad = append(bad, undocumentedExports(fset, f)...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}

	var dirs []string
	for dir := range pkgName {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if !pkgDoc[dir] {
			bad = append(bad, fmt.Sprintf("%s: package %s has no package comment", dir, pkgName[dir]))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented\n", len(dirs))
}

// undocumentedExports lists exported top-level identifiers in f that lack a
// doc comment.
func undocumentedExports(fset *token.FileSet, f *ast.File) []string {
	var bad []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods included: an exported method on an exported type is
			// API surface too.
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc on the grouped decl ("// Policies ...") or the
					// spec or a trailing line comment all count.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}
