// Command linkcheck validates the repo's markdown: every intra-repo link
// target must exist (files and same-document heading anchors), and code
// fences must be balanced. External http(s) links are skipped — the check
// runs offline and must stay deterministic. Exits nonzero listing every
// broken link so `make linkcheck` (and CI) catch doc rot.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links and autolinks are rare in this repo and intentionally out of scope.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}
	}
	bad := 0
	for _, file := range files {
		for _, msg := range checkFile(file) {
			fmt.Fprintln(os.Stderr, msg)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

func checkFile(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	lines := strings.Split(string(data), "\n")
	anchors := headingAnchors(lines)

	var bad []string
	inFence := false
	fenceLine := 0
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if inFence {
				inFence = false
			} else {
				inFence = true
				fenceLine = i + 1
			}
			continue
		}
		if inFence {
			continue // links inside code blocks are examples, not references
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(file, target, anchors); msg != "" {
				bad = append(bad, fmt.Sprintf("%s:%d: %s", file, i+1, msg))
			}
		}
	}
	if inFence {
		bad = append(bad, fmt.Sprintf("%s:%d: unclosed code fence (``` opened here never closes)", file, fenceLine))
	}
	return bad
}

func checkTarget(file, target string, anchors map[string]bool) string {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external: skipped, the check runs offline
	case strings.HasPrefix(target, "#"):
		if !anchors[strings.ToLower(target[1:])] {
			return fmt.Sprintf("anchor %q has no matching heading", target)
		}
		return ""
	}
	path := target
	if i := strings.IndexByte(path, '#'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return ""
	}
	resolved := filepath.Join(filepath.Dir(file), path)
	if _, err := os.Stat(resolved); err != nil {
		return fmt.Sprintf("link target %q does not exist (resolved %s)", target, resolved)
	}
	return ""
}

// headingAnchors maps every markdown heading to its GitHub-style anchor:
// lowercase, spaces and punctuation collapsed to hyphens.
func headingAnchors(lines []string) map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		text = strings.TrimSpace(text)
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				b.WriteRune(r)
			case r == ' ', r == '-':
				b.WriteByte('-')
			}
		}
		anchors[b.String()] = true
	}
	return anchors
}
