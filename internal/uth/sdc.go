package uth

// This file implements selective task replication: the detection-and-
// recovery half of the silent-data-corruption subsystem (the injection
// half lives in internal/fault, the write-digest primitive in
// internal/pgas).
//
// A Protector re-executes a seeded fraction of protected task segments
// and compares a cheap streaming digest of each execution's committed
// writes and return value. The redundant execution is modelled as
// shipping the task to a replica rank and back — a deque CAS plus a
// stack transfer, the same protocol traffic as a steal — while the
// re-execution itself runs inline on the owning thread (the simulated
// cost is what matters; the host needs no second goroutine). On a digest
// mismatch the task re-runs with a strike counter and fail-stops past
// MaxReplays, the replication policy of Reitz & Fohry's SDC protection
// for fork-join task parallelism.
//
// The Protector's selection stream is deliberately independent of the
// fault injector: replication can be armed without any fault plan (the
// overhead rows of the coverage sweep), in which case runs stay
// shard-parallel and digest-identical to unprotected runs except for the
// replica traffic itself.

import (
	"errors"
	"fmt"

	"ityr/internal/profile"
	"ityr/internal/trace"
)

// ErrSdcReplaysExhausted reports a protected task whose executions kept
// disagreeing past the replay bound (fail-stop).
var ErrSdcReplaysExhausted = errors.New("uth: task result corruption persisted past replay bound")

// SDCConfig tunes selective task replication.
type SDCConfig struct {
	// Replicate is the fraction of protected task segments that
	// re-execute for comparison (0 = none, 1 = all).
	Replicate float64
	// MaxReplays is the fail-stop bound on digest-mismatch strikes within
	// one protected segment. Acceptance needs two consecutive executions
	// to agree, so with per-execution corruption probability p a protocol
	// survives a strike chain with probability ~(1-(1-p)²) per comparison;
	// the default of 32 makes bound exhaustion vanishingly unlikely even
	// under the 50%-corruption storm plan while still fail-stopping a
	// genuinely divergent (buggy, non-replay-stable) segment quickly.
	MaxReplays int
	// Seed seeds the selection and victim streams (the runtime defaults
	// it to the run seed).
	Seed int64
}

// ProtStats aggregates replication activity.
type ProtStats struct {
	Protected uint64 // protected segments selected for replication
	Replicas  uint64 // redundant executions performed
	Detected  uint64 // digest mismatches caught
	Recovered uint64 // protocols that struck at least once and converged
	Escaped   uint64 // corruptions applied to unreplicated segments
}

// Protector implements selective task replication over a scheduler.
// Like the scheduler itself it is driven only from simulation
// goroutines; per-rank state keeps it race-free under sharded hosts.
type Protector struct {
	s   *Sched
	cfg SDCConfig

	seq        []uint64 // per-rank selection stream position
	detectedBy []uint64 // per-rank digest mismatches (itytrace table)
	escapedBy  []uint64 // per-rank unprotected corruptions (itytrace table)

	// Stats holds cumulative replication counters.
	Stats ProtStats
}

// NewProtector builds a protector for s with the given config.
func NewProtector(s *Sched, cfg SDCConfig) *Protector {
	if cfg.MaxReplays == 0 {
		cfg.MaxReplays = 32
	}
	n := s.comm.Size()
	return &Protector{
		s:          s,
		cfg:        cfg,
		seq:        make([]uint64, n),
		detectedBy: make([]uint64, n),
		escapedBy:  make([]uint64, n),
	}
}

// Config returns the protector's configuration (defaults applied).
func (p *Protector) Config() SDCConfig { return p.cfg }

// DetectedByRank returns each rank's digest-mismatch count.
func (p *Protector) DetectedByRank() []uint64 {
	return append([]uint64(nil), p.detectedBy...)
}

// EscapedByRank returns each rank's unprotected-corruption count.
func (p *Protector) EscapedByRank() []uint64 {
	return append([]uint64(nil), p.escapedBy...)
}

// NoteEscape records a corruption that was applied to an unreplicated
// segment on rank — a real silent error the run will carry to its output.
func (p *Protector) NoteEscape(rank int) {
	p.Stats.Escaped++
	p.escapedBy[rank]++
}

// splitmixP is the splitmix64 finalizer (same mix as internal/fault's,
// on an independent seed so selection never correlates with injection).
func splitmixP(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Pick decides whether rank's next protected segment is replicated and,
// if so, on which replica (victim) rank. Each call with replication
// armed consumes one step of rank's selection stream; with Replicate <= 0
// it consumes nothing, keeping a replication-off protector digest-inert.
func (p *Protector) Pick(rank int) (victim int, selected bool) {
	if p.cfg.Replicate <= 0 {
		return rank, false
	}
	seq := p.seq[rank]
	p.seq[rank] = seq + 1
	h := splitmixP(uint64(p.cfg.Seed) ^ 0x5DC)
	h = splitmixP(h + uint64(rank))
	h = splitmixP(h + seq)
	if float64(h>>11)/(1<<53) >= p.cfg.Replicate {
		return rank, false
	}
	victim = rank
	if n := p.s.comm.Size(); n > 1 {
		victim = int(splitmixP(h) % uint64(n-1))
		if victim >= rank {
			victim++
		}
	}
	return victim, true
}

// Replicate runs one selected protected segment: execute, re-execute on
// the replica, and accept only when two consecutive executions agree.
// exec runs the segment once and returns (result, digest) — the caller
// arms the PGAS write digest around the user function, so the digest
// covers every byte the segment commits plus its return value. Each
// redundant execution charges the ship-to-replica protocol (deque CAS +
// stack transfer toward the victim, the same cost model as a steal) and
// appears as a KReplica span; each mismatch is a KSdcDetect event and a
// strike, and a protocol still disagreeing past MaxReplays strikes
// fail-stops with ErrSdcReplaysExhausted.
func (p *Protector) Replicate(tb *TB, victim int, exec func() (uint64, uint64)) uint64 {
	s := p.s
	me := tb.RankID()
	p.Stats.Protected++
	ret, dig := exec()
	execN := int64(1)
	strikes := 0
	for {
		t0 := tb.th.proc.Now()
		tb.w.rank.ChargeAtomic(victim)
		tb.w.rank.ChargeTransfer(victim, s.cfg.StackBytes)
		execN++
		ret2, dig2 := exec()
		p.Stats.Replicas++
		d := tb.th.proc.Now() - t0
		if s.tracer != nil {
			s.tracer.RecSpan(t0, d, me, trace.KReplica, int64(victim), execN)
		}
		s.Profile.Span(me, profile.SpanSteal, t0, d)
		if ret2 == ret && dig2 == dig {
			if strikes > 0 {
				p.Stats.Recovered++
			}
			return ret2
		}
		strikes++
		p.Stats.Detected++
		p.detectedBy[me]++
		if s.tracer != nil {
			s.tracer.Rec2(tb.th.proc.Now(), me, trace.KSdcDetect, int64(victim), int64(strikes))
		}
		if strikes > p.cfg.MaxReplays {
			panic(fmt.Errorf("%w: rank %d protected segment disagreed %d times",
				ErrSdcReplaysExhausted, me, strikes))
		}
		ret, dig = ret2, dig2
	}
}
