// Scheduling-policy seam: the child-first discipline the paper evaluates
// plus two alternatives from the Task Bench study (help-first spawning and
// finish-based coordination), selectable per run without touching the
// child-first fast paths.

package uth

import (
	"fmt"

	"ityr/internal/sim"
	"ityr/internal/trace"
)

// SchedPolicy selects the scheduling discipline. The zero value is
// ChildFirst, the paper's discipline; every pre-existing schedule (and
// golden digest) corresponds to it.
type SchedPolicy int

const (
	// ChildFirst is the paper's work-first discipline (§2.1): Fork
	// suspends the parent, pushes its continuation on the local deque,
	// and runs the child immediately. Thieves steal parent continuations
	// (a uni-address stack transfer); joins migrate the blocked parent to
	// the completing child's rank.
	ChildFirst SchedPolicy = iota
	// HelpFirst pushes the child task's descriptor on the deque and lets
	// the parent keep running. Thieves steal not-yet-started tasks (a
	// descriptor transfer, Config.TaskBytes), never live stacks; joins
	// still migrate the blocked parent to the completing child's rank.
	HelpFirst
	// FBC is finish-based coordination (the ItoyoriFBC variant of the
	// Task Bench study): help-first spawning, but a blocked parent never
	// migrates — the completing child posts a completion notification (a
	// remote atomic to the join counter on the waiter's rank) and the
	// waiter resumes in place on its own rank.
	FBC
)

// SchedPolicies lists every selectable policy, in the order the -sched
// flag documents them.
var SchedPolicies = []SchedPolicy{ChildFirst, HelpFirst, FBC}

// String returns the policy's flag spelling (childfirst, helpfirst, fbc).
func (p SchedPolicy) String() string {
	switch p {
	case ChildFirst:
		return "childfirst"
	case HelpFirst:
		return "helpfirst"
	case FBC:
		return "fbc"
	}
	return fmt.Sprintf("SchedPolicy(%d)", int(p))
}

// ParseSchedPolicy maps a flag spelling to its policy, failing fast with
// the valid set listed for anything unknown.
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	for _, p := range SchedPolicies {
		if s == p.String() {
			return p, nil
		}
	}
	return ChildFirst, fmt.Errorf("unknown scheduler %q (valid: %s, %s, %s)",
		s, ChildFirst, HelpFirst, FBC)
}

// PolicyStats aggregates events specific to the non-default policies. It
// is deliberately separate from Stats: the golden digests fold Stats via
// %+v, and under ChildFirst every PolicyStats counter stays zero, so the
// pinned schedules cannot move.
type PolicyStats struct {
	// PendingRuns counts pending (not-yet-started) tasks started by the
	// rank that forked them.
	PendingRuns uint64
	// PendingSteals counts pending tasks stolen before they started —
	// descriptor transfers of Config.TaskBytes, not stack transfers.
	PendingSteals uint64
	// FBCWakes counts join waiters woken in place by a completion
	// notification under FBC.
	FBCWakes uint64
}

// runPending starts a pending child task on this rank: it spawns the
// thread's process, hands it the rank token, and parks the scheduler until
// the token comes back (exactly the handoff discipline of Fork and
// WorkerMain's root). The entry's closure is consumed; the thread then
// finishes through the normal finish path.
func (w *Worker) runPending(e *entry) {
	s := w.sched
	child := e.th
	child.worker = w
	fn := e.fn
	e.fn = nil
	w.proc.Engine().Spawn("thread", func(p *sim.Proc) {
		child.proc = p
		s.threadOf[p] = child
		defer delete(s.threadOf, p)
		cw := child.worker
		cw.rank.Attach(p)
		child.segStart = p.Now()
		cb := &TB{w: cw, th: child}
		fn(cb)
		s.traceEnd(child, cb.w.rank.ID(), p.Now())
		child.finish(cb.w)
	})
	w.proc.Park() // until the child's finish (or a suspend) hands the token back
	w.rank.Attach(w.proc)
}

// forkHelpFirst is Fork under HelpFirst and FBC: push the child's
// descriptor, keep running the parent. The release fence and trace edge
// match the child-first fork exactly; only who runs next differs.
func (tb *TB) forkHelpFirst(fn func(*TB)) *Thread {
	w := tb.w
	s := w.sched
	s.hooks.Poll(w.rank.ID())
	tb.th.proc.Advance(costFork)
	s.Stats.Forks++

	// Release #1: publish the parent's writes so whoever runs the child —
	// this rank later, or a thief — can acquire against the handler.
	h := s.hooks.OnFork(w.rank.ID())

	s.nextTID++
	child := &thread{worker: w, ptid: tb.th.tid, tid: s.nextTID}
	e := &entry{th: child, handler: h, fn: fn}
	w.deque = append(w.deque, e)
	if s.tracer != nil || s.Profile != nil {
		now := tb.th.proc.Now()
		s.traceSeg(tb.th, w.rank.ID(), now)
		s.tracer.Rec2(now, w.rank.ID(), trace.KFork, child.tid, tb.th.tid)
	}
	return &Thread{th: child}
}

// popRunnable removes the oldest thread woken in place by an FBC
// completion notification. Always empty under the other policies.
func (w *Worker) popRunnable() *thread {
	if len(w.runnable) == 0 {
		return nil
	}
	th := w.runnable[0]
	w.runnable = w.runnable[1:]
	return th
}
