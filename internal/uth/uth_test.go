package uth

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// runRegion executes body as the root thread of a fork-join region over
// nranks ranks and returns the scheduler and the elapsed virtual time.
func runRegion(t *testing.T, nranks int, hooks Hooks, body func(*TB)) (*Sched, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	c := rma.New(e, nranks, netmodel.Default(4))
	s := NewSched(c, Config{Seed: 42}, hooks)
	var elapsed sim.Time
	for i := 0; i < nranks; i++ {
		i := i
		r := c.Rank(i)
		e.Spawn("spmd", func(p *sim.Proc) {
			r.Attach(p)
			start := p.Now()
			s.WorkerMain(i, body)
			if i == 0 {
				elapsed = p.Now() - start
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s, elapsed
}

func TestSingleRankForkJoin(t *testing.T) {
	sum := 0
	s, _ := runRegion(t, 1, nil, func(tb *TB) {
		var results [4]int
		var ths [4]*Thread
		for i := 0; i < 4; i++ {
			i := i
			ths[i] = tb.Fork(func(tb *TB) {
				tb.Proc().Advance(100)
				results[i] = i + 1
			})
		}
		for _, th := range ths {
			tb.Join(th)
		}
		for _, r := range results {
			sum += r
		}
	})
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
	if s.Stats.Steals != 0 {
		t.Fatalf("steals on single rank = %d", s.Stats.Steals)
	}
	if s.Stats.Forks != 4 {
		t.Fatalf("forks = %d, want 4", s.Stats.Forks)
	}
}

// fib computes fibonacci with fork-join, charging compute time per call.
func fib(tb *TB, n int) int {
	tb.Proc().Advance(3 * sim.Microsecond)
	if n < 2 {
		return n
	}
	var a int
	th := tb.Fork(func(tb *TB) { a = fib(tb, n-1) })
	b := fib(tb, n-2)
	tb.Join(th)
	return a + b
}

func TestDistributedFibCorrect(t *testing.T) {
	var got int
	s, _ := runRegion(t, 4, nil, func(tb *TB) {
		got = fib(tb, 13)
	})
	if got != 233 {
		t.Fatalf("fib(13) = %d, want 233", got)
	}
	if s.Stats.Steals == 0 {
		t.Fatal("expected at least one steal on 4 ranks")
	}
}

func TestParallelSpeedup(t *testing.T) {
	// 64 independent 100 µs tasks forked in a binary tree on 8 ranks.
	const taskTime = 100 * sim.Microsecond
	var spawn func(tb *TB, n int)
	spawn = func(tb *TB, n int) {
		if n == 1 {
			tb.Proc().Advance(taskTime)
			return
		}
		th := tb.Fork(func(tb *TB) { spawn(tb, n/2) })
		spawn(tb, n-n/2)
		tb.Join(th)
	}
	_, elapsed1 := runRegion(t, 1, nil, func(tb *TB) { spawn(tb, 64) })
	_, elapsed8 := runRegion(t, 8, nil, func(tb *TB) { spawn(tb, 64) })
	if elapsed1 < 64*taskTime {
		t.Fatalf("serial run too fast: %d < %d", elapsed1, 64*taskTime)
	}
	speedup := float64(elapsed1) / float64(elapsed8)
	if speedup < 3 {
		t.Fatalf("8-rank speedup = %.2f, want >= 3 (e1=%v e8=%v)", speedup, elapsed1, elapsed8)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() (Stats, sim.Time) {
		s, el := runRegion(t, 4, nil, func(tb *TB) { fib(tb, 12) })
		return s.Stats, el
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("nondeterministic: %+v @%d vs %+v @%d", s1, e1, s2, e2)
	}
}

func TestThreadMigrationObservable(t *testing.T) {
	ranksSeen := map[int]bool{}
	var rec func(tb *TB, depth int)
	rec = func(tb *TB, depth int) {
		ranksSeen[tb.RankID()] = true
		tb.Proc().Advance(20 * sim.Microsecond)
		if depth == 0 {
			return
		}
		th := tb.Fork(func(tb *TB) { rec(tb, depth-1) })
		rec(tb, depth-1)
		tb.Join(th)
		ranksSeen[tb.RankID()] = true
	}
	s, _ := runRegion(t, 8, nil, func(tb *TB) { rec(tb, 7) })
	if s.Stats.Steals == 0 {
		t.Skip("no steals occurred; migration unobservable")
	}
	if len(ranksSeen) < 2 {
		t.Fatalf("work never left rank 0 despite %d steals", s.Stats.Steals)
	}
}

// traceHooks records the sequence of hook invocations.
type traceHooks struct {
	forks, steals, suspends, childDone, migrates, polls int
	handedOut                                           []any
	handedBack                                          []any
}

func (h *traceHooks) Poll(int) { h.polls++ }
func (h *traceHooks) OnFork(rank int) any {
	h.forks++
	v := h.forks
	h.handedOut = append(h.handedOut, v)
	return v
}
func (h *traceHooks) OnSteal(rank int, handler any) {
	h.steals++
	h.handedBack = append(h.handedBack, handler)
}
func (h *traceHooks) OnSuspend(int)         { h.suspends++ }
func (h *traceHooks) OnChildStolenDone(int) { h.childDone++ }
func (h *traceHooks) OnMigrateArrive(int)   { h.migrates++ }

func TestHooksWiredCorrectly(t *testing.T) {
	h := &traceHooks{}
	s, _ := runRegion(t, 4, h, func(tb *TB) { fib(tb, 12) })
	if h.forks == 0 || h.polls == 0 {
		t.Fatal("fork/poll hooks never fired")
	}
	if uint64(h.steals) != s.Stats.Steals {
		t.Fatalf("OnSteal fired %d times for %d steals", h.steals, s.Stats.Steals)
	}
	// Every handler passed to OnSteal must be one that OnFork handed out.
	out := map[any]bool{}
	for _, v := range h.handedOut {
		out[v] = true
	}
	for _, v := range h.handedBack {
		if !out[v] {
			t.Fatalf("OnSteal received handler %v never issued by OnFork", v)
		}
	}
	if s.Stats.Steals > 0 && h.childDone == 0 {
		t.Fatal("steals occurred but Release #2 (OnChildStolenDone) never fired")
	}
}

func TestSequentialRegions(t *testing.T) {
	e := sim.NewEngine()
	c := rma.New(e, 2, netmodel.Default(2))
	s := NewSched(c, Config{Seed: 1}, nil)
	total := 0
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		i := i
		e.Spawn("spmd", func(p *sim.Proc) {
			r.Attach(p)
			for region := 0; region < 3; region++ {
				s.WorkerMain(i, func(tb *TB) {
					th := tb.Fork(func(tb *TB) { tb.Proc().Advance(50); total++ })
					tb.Join(th)
					total++
				})
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6 across 3 regions", total)
	}
}

func TestNestedJoinAfterBlockedParent(t *testing.T) {
	// A join that genuinely blocks: the child sleeps far longer than the
	// parent's remaining work, so the parent must suspend and be migrated
	// to the child's completion.
	order := []string{}
	s, _ := runRegion(t, 2, nil, func(tb *TB) {
		th := tb.Fork(func(tb *TB) {
			tb.Proc().Advance(5 * sim.Millisecond)
			order = append(order, "child")
		})
		// If the continuation was stolen, this runs on rank 1 while the
		// child still computes on rank 0.
		tb.Proc().Advance(10 * sim.Microsecond)
		order = append(order, "parent-before-join")
		tb.Join(th)
		order = append(order, "parent-after-join")
	})
	want := []string{"parent-before-join", "child", "parent-after-join"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v (steals=%d)", order, want, s.Stats.Steals)
	}
}

func TestManyTasksStress(t *testing.T) {
	count := 0
	var spawn func(tb *TB, n int)
	spawn = func(tb *TB, n int) {
		if n == 0 {
			tb.Proc().Advance(1 * sim.Microsecond)
			count++
			return
		}
		l := tb.Fork(func(tb *TB) { spawn(tb, n-1) })
		r := tb.Fork(func(tb *TB) { spawn(tb, n-1) })
		tb.Join(l)
		tb.Join(r)
	}
	s, _ := runRegion(t, 6, nil, func(tb *TB) { spawn(tb, 10) })
	if count != 1024 {
		t.Fatalf("leaf count = %d, want 1024", count)
	}
	if s.Stats.Forks != 2*1024-2 {
		t.Fatalf("forks = %d, want %d", s.Stats.Forks, 2*1024-2)
	}
}
