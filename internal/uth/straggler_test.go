package uth

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// runStragglerRegion is runRegion with rank 1 slowed 10× and the given
// scheduler config.
func runStragglerRegion(t *testing.T, nranks int, cfg Config, body func(*TB)) (*Sched, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	c := rma.New(e, nranks, netmodel.Default(4))
	s := NewSched(c, cfg, nil)
	var elapsed sim.Time
	for i := 0; i < nranks; i++ {
		i := i
		r := c.Rank(i)
		e.Spawn("spmd", func(p *sim.Proc) {
			if i == 1 {
				r.SetSlowdown(10, 1)
			}
			r.Attach(p)
			start := p.Now()
			s.WorkerMain(i, body)
			if i == 0 {
				elapsed = p.Now() - start
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s, elapsed
}

// TestTerminationUnderStraggler: the fork-join region terminates with the
// correct result when rank 1 computes 10× slower than the others, both
// with and without victim blacklisting (satellite: straggler tolerance).
func TestTerminationUnderStraggler(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 42},
		{Seed: 42, VictimBlacklist: true},
	} {
		cfg := cfg
		name := "plain"
		if cfg.VictimBlacklist {
			name = "blacklist"
		}
		t.Run(name, func(t *testing.T) {
			var got int
			s, _ := runStragglerRegion(t, 4, cfg, func(tb *TB) {
				got = fib(tb, 13)
			})
			if got != 233 {
				t.Fatalf("fib(13) = %d under straggler, want 233", got)
			}
			if s.Stats.Steals == 0 {
				t.Fatalf("no steals on 4 ranks — straggler test exercised nothing")
			}
			if !cfg.VictimBlacklist && (s.Stats.Blacklists != 0 || s.Stats.StealTimeouts != 0) {
				t.Errorf("blacklist stats nonzero with the feature off: %+v", s.Stats)
			}
		})
	}
}

// TestBlacklistEngagesOnStraggler: with blacklisting on and an aggressive
// timeout, workers stealing from the 10×-slow rank must eventually strike
// it out, and the run still completes correctly.
func TestBlacklistEngagesOnStraggler(t *testing.T) {
	cfg := Config{
		Seed:            42,
		VictimBlacklist: true,
		StealTimeout:    5 * sim.Microsecond,
		BlacklistAfter:  2,
	}
	var got int
	s, _ := runStragglerRegion(t, 4, cfg, func(tb *TB) {
		got = fib(tb, 14)
	})
	if got != 377 {
		t.Fatalf("fib(14) = %d, want 377", got)
	}
	if s.Stats.StealTimeouts == 0 {
		t.Errorf("no steal attempts exceeded the 5µs timeout despite a 10× straggler")
	}
	if s.Stats.Blacklists == 0 {
		t.Errorf("straggler never blacklisted (timeouts %d)", s.Stats.StealTimeouts)
	}
}
