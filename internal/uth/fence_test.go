package uth

import (
	"fmt"
	"testing"

	"ityr/internal/sim"
)

// orderHooks records the exact fence sequence with rank annotations.
type orderHooks struct {
	events []string
	nextID int
}

func (h *orderHooks) rec(s string) { h.events = append(h.events, s) }

func (h *orderHooks) Poll(int) {}
func (h *orderHooks) OnFork(rank int) any {
	h.nextID++
	h.rec(fmt.Sprintf("release1@%d#%d", rank, h.nextID))
	return h.nextID
}
func (h *orderHooks) OnSteal(rank int, handler any) {
	h.rec(fmt.Sprintf("acquire2@%d#%v", rank, handler))
}
func (h *orderHooks) OnSuspend(rank int)         { h.rec(fmt.Sprintf("release3@%d", rank)) }
func (h *orderHooks) OnChildStolenDone(rank int) { h.rec(fmt.Sprintf("release2@%d", rank)) }
func (h *orderHooks) OnMigrateArrive(rank int)   { h.rec(fmt.Sprintf("acquire1@%d", rank)) }

// TestForcedStealFenceSequence builds a schedule where the steal is
// certain — a two-rank region whose root forks one long child — and checks
// the Fig. 5 fence placement end to end:
//
//  1. Release #1 on the victim at the fork.
//  2. Acquire #2 on the thief with that same handler.
//  3. Release #2 on the rank where the child completes (parent stolen).
//  4. Acquire #1 when the parent, blocked at join, migrates to the child's
//     rank.
func TestForcedStealFenceSequence(t *testing.T) {
	h := &orderHooks{}
	s := runRegion2(t, 2, h, func(tb *TB) {
		th := tb.Fork(func(tb *TB) {
			tb.Proc().Advance(10 * sim.Millisecond) // long child: steal certain
		})
		tb.Proc().Advance(10 * sim.Microsecond) // runs on the thief
		tb.Join(th)                             // must block and migrate back
	})
	if s.Stats.Steals != 1 {
		t.Fatalf("steals = %d, want exactly 1 (events: %v)", s.Stats.Steals, h.events)
	}
	// Filter the events of interest in order.
	var seq []string
	for _, e := range h.events {
		switch e[:8] {
		case "release1", "acquire2", "release2", "acquire1":
			seq = append(seq, e[:8])
		case "release3":
			seq = append(seq, e[:8])
		}
	}
	want := []string{
		"release1", // victim's fork (rank 0)
		"acquire2", // thief takes the continuation (rank 1)
		"release3", // parent blocks at join on rank 1
		"release2", // child completes on rank 0, parent stolen
		"acquire1", // parent migrates to rank 0
	}
	// The final region-exit release/acquire pairs follow; check the prefix.
	if len(seq) < len(want) {
		t.Fatalf("sequence too short: %v", seq)
	}
	for i, w := range want {
		if seq[i] != w {
			t.Fatalf("fence %d = %s, want %s (full: %v)", i, seq[i], w, seq)
		}
	}
	// The handler passed to Acquire #2 must be the one Release #1 produced.
	var rel1, acq2 string
	for _, e := range h.events {
		if rel1 == "" && e[:8] == "release1" {
			rel1 = e
		}
		if acq2 == "" && e[:8] == "acquire2" {
			acq2 = e
		}
	}
	if rel1 != "release1@0#1" || acq2 != "acquire2@1#1" {
		t.Fatalf("handler mismatch: %q vs %q", rel1, acq2)
	}
}

// TestNoFencesOnFastPath checks the complementary property: with a single
// rank (no thief can exist), no Release #2/#3 or Acquire #1/#2 fires
// during execution — the work-first principle's fast path (§5.1). Only the
// region-exit release/acquire remains.
func TestNoFencesOnFastPath(t *testing.T) {
	h := &orderHooks{}
	runRegion2(t, 1, h, func(tb *TB) {
		for i := 0; i < 5; i++ {
			th := tb.Fork(func(tb *TB) { tb.Proc().Advance(100) })
			tb.Join(th)
		}
	})
	for _, e := range h.events {
		switch e[:8] {
		case "acquire2", "release2":
			t.Fatalf("unexpected fence %s on single-rank fast path (events %v)", e, h.events)
		}
	}
}

// runRegion2 is runRegion without elapsed-time capture (avoids name clash).
func runRegion2(t *testing.T, nranks int, hooks Hooks, body func(*TB)) *Sched {
	t.Helper()
	s, _ := runRegion(t, nranks, hooks, body)
	return s
}
