package uth

import (
	"strings"
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// runRegionCfg is runRegion with an explicit scheduler Config.
func runRegionCfg(t *testing.T, nranks int, cfg Config, hooks Hooks, body func(*TB)) (*Sched, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	c := rma.New(e, nranks, netmodel.Default(4))
	s := NewSched(c, cfg, hooks)
	var elapsed sim.Time
	for i := 0; i < nranks; i++ {
		i := i
		r := c.Rank(i)
		e.Spawn("spmd", func(p *sim.Proc) {
			r.Attach(p)
			start := p.Now()
			s.WorkerMain(i, body)
			if i == 0 {
				elapsed = p.Now() - start
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s, elapsed
}

func TestSchedPolicyParseRoundTrip(t *testing.T) {
	for _, p := range SchedPolicies {
		got, err := ParseSchedPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseSchedPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseSchedPolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	_, err := ParseSchedPolicy("bogus")
	if err == nil {
		t.Fatal("ParseSchedPolicy(bogus) succeeded")
	}
	for _, want := range []string{"childfirst", "helpfirst", "fbc"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid policy %q", err, want)
		}
	}
}

func TestFibCorrectUnderEachPolicy(t *testing.T) {
	for _, pol := range SchedPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			var got int
			s, _ := runRegionCfg(t, 4, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) {
				got = fib(tb, 13)
			})
			if got != 233 {
				t.Fatalf("fib(13) = %d, want 233", got)
			}
			if s.Stats.Forks == 0 {
				t.Fatal("no forks recorded")
			}
		})
	}
}

func TestPolicyDeterministicSchedule(t *testing.T) {
	for _, pol := range []SchedPolicy{HelpFirst, FBC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func() (Stats, PolicyStats, sim.Time) {
				s, el := runRegionCfg(t, 4, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) { fib(tb, 12) })
				return s.Stats, s.PolicyStats, el
			}
			s1, p1, e1 := run()
			s2, p2, e2 := run()
			if s1 != s2 || p1 != p2 || e1 != e2 {
				t.Fatalf("nondeterministic: %+v %+v @%d vs %+v %+v @%d", s1, p1, e1, s2, p2, e2)
			}
		})
	}
}

// TestChildFirstPolicyStatsZero pins the digest-safety property the golden
// tests rely on: the default policy never touches PolicyStats, and pending
// entries never appear, so pre-PR schedules cannot have moved.
func TestChildFirstPolicyStatsZero(t *testing.T) {
	s, _ := runRegion(t, 4, nil, func(tb *TB) { fib(tb, 12) })
	if s.PolicyStats != (PolicyStats{}) {
		t.Fatalf("child-first run touched PolicyStats: %+v", s.PolicyStats)
	}
}

// TestFBCNoMigrations checks finish-based coordination's defining property:
// blocked parents never migrate — they are woken in place by completion
// notifications — and thieves only ever move task descriptors, so the
// stack-migration counter stays at zero.
func TestFBCNoMigrations(t *testing.T) {
	s, _ := runRegionCfg(t, 4, Config{Seed: 42, Policy: FBC}, nil, func(tb *TB) { fib(tb, 13) })
	if s.Stats.Migrations != 0 {
		t.Fatalf("FBC migrated %d threads, want 0", s.Stats.Migrations)
	}
	if s.PolicyStats.PendingSteals == 0 {
		t.Fatal("expected pending-task steals on 4 ranks")
	}
	if s.PolicyStats.FBCWakes == 0 {
		t.Fatal("expected at least one in-place join wake")
	}
}

// TestHelpFirstParentRunsBeforeChild checks help-first's defining property
// on a single rank: Fork returns immediately and the parent keeps running;
// the child only starts when the parent blocks (or the scheduler drains the
// deque). Under child-first the same program runs the child first.
func TestHelpFirstParentRunsBeforeChild(t *testing.T) {
	order := func(pol SchedPolicy) []string {
		var got []string
		runRegionCfg(t, 1, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) {
			th := tb.Fork(func(tb *TB) { got = append(got, "child") })
			got = append(got, "parent")
			tb.Join(th)
		})
		return got
	}
	if o := order(HelpFirst); o[0] != "parent" {
		t.Fatalf("help-first order = %v, want parent first", o)
	}
	if o := order(ChildFirst); o[0] != "child" {
		t.Fatalf("child-first order = %v, want child first", o)
	}
}

// TestHelpFirstHooksPairing re-runs the hook-pairing invariant under the
// help-first policies: every handler OnSteal acquires against must have
// been issued by OnFork's release, and steals of pending tasks must still
// fence (a thief may read the forker's prior writes).
func TestHelpFirstHooksPairing(t *testing.T) {
	for _, pol := range []SchedPolicy{HelpFirst, FBC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			h := &traceHooks{}
			s, _ := runRegionCfg(t, 4, Config{Seed: 42, Policy: pol}, h, func(tb *TB) { fib(tb, 12) })
			if uint64(h.steals) != s.Stats.Steals {
				t.Fatalf("OnSteal fired %d times for %d steals", h.steals, s.Stats.Steals)
			}
			out := map[any]bool{}
			for _, v := range h.handedOut {
				out[v] = true
			}
			for _, v := range h.handedBack {
				if !out[v] {
					t.Fatalf("OnSteal received handler %v never issued by OnFork", v)
				}
			}
			if s.Stats.Steals > 0 && h.childDone == 0 {
				t.Fatal("steals occurred but Release #2 never fired")
			}
		})
	}
}

// TestPolicySpeedup: both alternative policies must still parallelize a
// flat task tree across 8 ranks.
func TestPolicySpeedup(t *testing.T) {
	const taskTime = 100 * sim.Microsecond
	var spawn func(tb *TB, n int)
	spawn = func(tb *TB, n int) {
		if n == 1 {
			tb.Proc().Advance(taskTime)
			return
		}
		th := tb.Fork(func(tb *TB) { spawn(tb, n/2) })
		spawn(tb, n-n/2)
		tb.Join(th)
	}
	for _, pol := range []SchedPolicy{HelpFirst, FBC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			_, e1 := runRegionCfg(t, 1, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) { spawn(tb, 64) })
			_, e8 := runRegionCfg(t, 8, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) { spawn(tb, 64) })
			speedup := float64(e1) / float64(e8)
			if speedup < 3 {
				t.Fatalf("8-rank speedup = %.2f, want >= 3 (e1=%v e8=%v)", speedup, e1, e8)
			}
		})
	}
}

// TestPolicyNestedStress: deep nested fork-join (1024 leaves) completes and
// counts every leaf exactly once under every policy.
func TestPolicyNestedStress(t *testing.T) {
	for _, pol := range SchedPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			count := 0
			var spawn func(tb *TB, n int)
			spawn = func(tb *TB, n int) {
				if n == 0 {
					tb.Proc().Advance(1 * sim.Microsecond)
					count++
					return
				}
				l := tb.Fork(func(tb *TB) { spawn(tb, n-1) })
				r := tb.Fork(func(tb *TB) { spawn(tb, n-1) })
				tb.Join(l)
				tb.Join(r)
			}
			s, _ := runRegionCfg(t, 6, Config{Seed: 42, Policy: pol}, nil, func(tb *TB) { spawn(tb, 10) })
			if count != 1024 {
				t.Fatalf("leaf count = %d, want 1024", count)
			}
			if s.Stats.Forks != 2*1024-2 {
				t.Fatalf("forks = %d, want %d", s.Stats.Forks, 2*1024-2)
			}
		})
	}
}
