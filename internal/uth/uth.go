// Package uth is the threading layer: user-level threads with child-first
// (work-first) work stealing across ranks, the simulated equivalent of the
// uni-address scheme's distributed continuation stealing (§2.1, §3.1).
//
// Each rank runs one worker. A Fork suspends the calling thread, makes its
// continuation stealable on the local deque, and runs the child
// immediately. If nobody steals the continuation, the child's completion
// resumes the parent with no coherence actions (the serialized fast path);
// if a thief takes it, the parent resumes on the thief's rank after the
// appropriate release/acquire fences (Fig. 5), which the memory layer
// supplies through the Hooks interface. Joins migrate the blocked parent to
// the completing child's rank.
//
// Host-level concurrency note: every thread is a sim.Proc (its own
// goroutine), but the engine runs exactly one at a time, and a per-rank
// token — held by either the worker's scheduler process or the one thread
// currently executing on the rank — keeps per-rank execution serial in
// virtual time.
package uth

import (
	"fmt"
	"math/rand"

	"ityr/internal/metrics"
	"ityr/internal/profile"
	"ityr/internal/rma"
	"ityr/internal/sim"
	"ityr/internal/trace"
)

// Hooks connects the scheduler to the memory consistency layer. The rank
// argument is always the rank on which the action occurs. Handlers are
// opaque to the scheduler (pgas.ReleaseHandler in the full runtime).
type Hooks interface {
	// Poll runs deferred work (DoReleaseIfReqested of Fig. 6) — called at
	// every fork, join and idle-loop iteration.
	Poll(rank int)
	// OnFork performs Release #1 (lazily under the lazy policy) and
	// returns the handler the eventual thief must acquire against.
	OnFork(rank int) any
	// OnSteal performs Acquire #2 on the thief with the victim's handler,
	// including the cache self-invalidation.
	OnSteal(thiefRank int, handler any)
	// OnSuspend performs Release #3 before a thread blocks at a join (and
	// at region exit, to publish locally cached writes).
	OnSuspend(rank int)
	// OnChildStolenDone performs Release #2 when a child completes and
	// its parent's continuation was stolen.
	OnChildStolenDone(rank int)
	// OnMigrateArrive performs Acquire #1 when a thread resumes on a
	// different rank than the one where the writes it must observe were
	// released.
	OnMigrateArrive(rank int)
}

// NopHooks is a Hooks implementation that does nothing, for scheduler-only
// tests and memory-free workloads.
type NopHooks struct{}

// Poll does nothing.
func (NopHooks) Poll(int) {}

// OnFork returns a nil handler.
func (NopHooks) OnFork(int) any { return nil }

// OnSteal does nothing.
func (NopHooks) OnSteal(int, any) {}

// OnSuspend does nothing.
func (NopHooks) OnSuspend(int) {}

// OnChildStolenDone does nothing.
func (NopHooks) OnChildStolenDone(int) {}

// OnMigrateArrive does nothing.
func (NopHooks) OnMigrateArrive(int) {}

// Config tunes the scheduler.
type Config struct {
	// Policy selects the scheduling discipline. The zero value is
	// ChildFirst — the paper's child-first (work-first) work stealing,
	// and the policy every golden digest is pinned against. See
	// SchedPolicy for HelpFirst and FBC.
	Policy SchedPolicy
	// StackBytes models the call-stack payload moved by a steal
	// (uni-address stack transfer).
	StackBytes int
	// TaskBytes models the descriptor payload moved when a thief steals
	// a pending (not-yet-started) task under HelpFirst and FBC (default
	// 256). Child-first steals always move live stacks (StackBytes).
	TaskBytes int
	// Seed seeds the per-worker victim-selection PRNGs.
	Seed int64
	// LocalityAware makes thieves try same-node victims (cheap steals,
	// shared home memory) before stealing across nodes — a simple
	// hierarchical scheduler in the direction of the locality-aware
	// schedulers §8 of the paper names as future work. The default is the
	// paper's purely random victim selection.
	LocalityAware bool

	// VictimBlacklist enables steal-victim backoff: a victim whose
	// attempts repeatedly fail or exceed StealTimeout is skipped for a
	// penalty window (doubling per repeat up to BlacklistMax, decaying on
	// a healthy probe), so a steal storm against a straggler does not
	// serialize the cluster. Off by default: clean runs keep the paper's
	// purely random victim selection, and the golden digest.
	VictimBlacklist bool
	// StealTimeout is the attempt latency beyond which a victim earns a
	// strike even if the steal succeeded (default 20µs).
	StealTimeout sim.Time
	// BlacklistAfter is the consecutive-strike count that blacklists a
	// victim (default 3).
	BlacklistAfter int
	// BlacklistBase and BlacklistMax bound the doubling penalty window
	// (defaults 50µs and 2ms).
	BlacklistBase, BlacklistMax sim.Time
}

func (c Config) withDefaults() Config {
	if c.StackBytes == 0 {
		c.StackBytes = 2048
	}
	if c.TaskBytes == 0 {
		c.TaskBytes = 256
	}
	if c.StealTimeout == 0 {
		c.StealTimeout = 20 * sim.Microsecond
	}
	if c.BlacklistAfter == 0 {
		c.BlacklistAfter = 3
	}
	if c.BlacklistBase == 0 {
		c.BlacklistBase = 50 * sim.Microsecond
	}
	if c.BlacklistMax == 0 {
		c.BlacklistMax = 2 * sim.Millisecond
	}
	return c
}

// Local scheduling costs (virtual time).
const (
	costFork      = 120 * sim.Nanosecond // thread record + deque push
	costJoinFast  = 50 * sim.Nanosecond
	costSchedIter = 40 * sim.Nanosecond
	// Failed steals are paced mostly by the remote CAS itself (as in the
	// RDMA-based uni-address scheduler); the explicit backoff only damps
	// event volume when the whole machine is idle.
	backoffMin = 500 * sim.Nanosecond
	backoffMax = 10 * sim.Microsecond
)

// Stats aggregates scheduler events.
type Stats struct {
	Forks        uint64
	Steals       uint64
	IntraSteals  uint64 // steals whose victim shared the thief's node
	CommWaits    uint64 // checkouts that overlapped their fetch with other work
	FailedSteals uint64
	Migrations   uint64 // resumes on a rank other than where the thread suspended

	StealTimeouts  uint64 // attempts slower than Config.StealTimeout
	Blacklists     uint64 // victim blacklisting episodes
	BlacklistSkips uint64 // picks redirected away from a blacklisted victim
}

// Sched is the cluster-wide work-stealing scheduler.
type Sched struct {
	comm    *rma.Comm
	cfg     Config
	hooks   Hooks
	workers []*Worker
	done    bool

	// threadOf maps a live thread's process to its record, so layers that
	// only know "the currently executing process" (e.g. the PGAS layer's
	// communication-overlap hook) can find the thread.
	threadOf map[*sim.Proc]*thread

	// Stats holds cumulative scheduler statistics.
	Stats Stats

	// PolicyStats holds counters specific to the non-default scheduling
	// policies; always zero under ChildFirst (see PolicyStats).
	PolicyStats PolicyStats

	// tracer, when non-nil, receives the fork-join DAG: KTaskRun spans for
	// executed task segments, KFork/KJoin/KTaskEnd edges carrying thread
	// IDs, and KSteal/KFailedSteal latency spans. Set via SetTrace.
	tracer  *trace.Log
	nextTID int64

	// StealLatency / FailedStealLatency, when non-nil, receive the
	// virtual-time cost of each steal attempt (nil-safe histograms).
	StealLatency       *metrics.Histogram
	FailedStealLatency *metrics.Histogram

	// Profile, when non-nil, receives streaming rollups — task-segment
	// (busy), steal-attempt and idle-backoff spans — folded into per-rank
	// accumulators. It works with or without the tracer: task segments are
	// closed at the same points either way, so profile aggregates match
	// what a full trace would sum to. Recording only reads the clock;
	// schedules are bit-identical with it on or off.
	Profile *profile.Profile
}

// SetTrace attaches an event log. Call before the first fork-join region;
// a nil log (the default) disables DAG tracing entirely.
func (s *Sched) SetTrace(tl *trace.Log) { s.tracer = tl }

// CurrentTID returns the trace DAG thread ID of the fork-join thread
// currently executing on p, or 0 when p is not running one (SPMD mode or
// scheduler internals). The checkout-discipline validator uses it to name
// the task segment that owns a global-memory access.
func (s *Sched) CurrentTID(p *sim.Proc) int64 {
	if th, ok := s.threadOf[p]; ok {
		return th.tid
	}
	return 0
}

// traceSeg closes the thread's currently open execution segment — as a
// KTaskRun span when tracing, as a busy-time rollup when profiling — and
// opens the next one. No-op without either sink.
func (s *Sched) traceSeg(th *thread, rank int, now sim.Time) {
	if s.tracer == nil && s.Profile == nil {
		return
	}
	if d := now - th.segStart; d > 0 {
		if s.tracer != nil {
			s.tracer.RecSpan(th.segStart, d, rank, trace.KTaskRun, th.tid, 0)
		}
		s.Profile.Span(rank, profile.SpanTask, th.segStart, d)
	}
	th.segStart = now
}

// traceEnd records a thread's final segment and its KTaskEnd marker
// (Arg2 = parent thread ID, 0 for the root).
func (s *Sched) traceEnd(th *thread, rank int, now sim.Time) {
	if s.tracer == nil && s.Profile == nil {
		return
	}
	s.traceSeg(th, rank, now)
	if s.tracer == nil {
		return
	}
	s.tracer.Rec2(now, rank, trace.KTaskEnd, th.tid, th.ptid)
}

// NewSched creates the scheduler over comm.
func NewSched(comm *rma.Comm, cfg Config, hooks Hooks) *Sched {
	cfg = cfg.withDefaults()
	if hooks == nil {
		hooks = NopHooks{}
	}
	s := &Sched{comm: comm, cfg: cfg, hooks: hooks, threadOf: make(map[*sim.Proc]*thread)}
	s.workers = make([]*Worker, comm.Size())
	for i := range s.workers {
		w := &Worker{
			sched: s,
			rank:  comm.Rank(i),
			rng:   rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x5DEECE66D)),
		}
		if cfg.VictimBlacklist {
			w.strikes = make([]int, comm.Size())
			w.blackUntil = make([]sim.Time, comm.Size())
			w.blackDur = make([]sim.Time, comm.Size())
		}
		s.workers[i] = w
	}
	return s
}

// Worker is one rank's scheduler state.
type Worker struct {
	sched *Sched
	rank  *rma.Rank
	proc  *sim.Proc // the rank's SPMD/scheduler process
	deque []*entry
	rng   *rand.Rand

	// ready holds threads paused on in-flight communication (overlap):
	// each becomes runnable on this rank at its wake time.
	ready []timedThread

	// runnable holds join waiters woken in place by FBC completion
	// notifications; always empty under the other policies.
	runnable []*thread

	// Victim-blacklist state (allocated only under Config.VictimBlacklist):
	// consecutive strikes, the time until which each victim is skipped,
	// and its current doubling penalty duration.
	strikes    []int
	blackUntil []sim.Time
	blackDur   []sim.Time
}

// timedThread is a thread waiting for its communication to complete.
type timedThread struct {
	th    *thread
	until sim.Time
}

// entry is a stealable deque item: under ChildFirst a parent continuation
// parked at a fork point; under HelpFirst/FBC a pending child task whose
// body has not started yet (fn non-nil until it runs).
type entry struct {
	th      *thread
	handler any       // Release #1 handler for the eventual thief
	fn      func(*TB) // pending task body; nil once started (and always under ChildFirst)
	taken   bool
}

// thread is a user-level thread.
type thread struct {
	proc   *sim.Proc
	worker *Worker // rank the thread is (or will next be) running on
	parent *entry  // this thread's parent's continuation entry (nil for root)

	fenceOnResume bool // run Acquire #1 when the thread next resumes

	done       bool
	doneRank   int
	joinWaiter *thread
	waiterRank int

	// tid is the thread's stable ID in the trace DAG (root = 1), ptid its
	// parent's (0 for the root); segStart is where the currently open
	// KTaskRun segment began.
	tid      int64
	ptid     int64
	segStart sim.Time
}

// TB is the thread binding passed to every thread body: the interface
// through which running code forks, joins and observes its current rank.
// A TB is only valid on the goroutine of the thread it was created for.
type TB struct {
	w  *Worker
	th *thread
}

// RankID returns the rank currently executing the thread. It may change
// across Fork and Join calls (thread migration).
func (tb *TB) RankID() int { return tb.w.rank.ID() }

// Proc returns the thread's simulated process, for charging compute time.
func (tb *TB) Proc() *sim.Proc { return tb.th.proc }

// Sched returns the scheduler.
func (tb *TB) Sched() *Sched { return tb.w.sched }

// Thread is an opaque handle to a forked child, used to join it.
type Thread struct{ th *thread }

// Done reports whether the child has completed.
func (t *Thread) Done() bool { return t.th.done }

// WorkerMain enters a fork-join region: rank 0 spawns the root thread
// running body; all ranks participate in work stealing until the root
// completes. It must be called from every rank's SPMD process with the same
// body, and returns on every rank when the region ends, with all global
// memory writes from the region visible everywhere (a release on every
// rank, a barrier, then an acquire on every rank). Multiple regions may run
// in sequence.
func (s *Sched) WorkerMain(rankID int, body func(*TB)) {
	w := s.workers[rankID]
	w.proc = w.rank.Proc()
	// A fork-join region interacts across ranks at sub-lookahead
	// granularity (steals CAS into victim deques and read them directly,
	// with zero-latency local reply hops), so it cannot run in the sharded
	// engine's parallel rounds. Pin the engine into its globally
	// serialized phase for the whole region; the pin is released after the
	// final barrier below, when every rank has left the region.
	w.proc.PinGlobal()
	w.rank.Barrier()
	s.done = false
	w.rank.Barrier()
	if rankID == 0 {
		s.nextTID++
		root := &thread{worker: w, tid: s.nextTID}
		w.proc.Engine().Spawn("root", func(p *sim.Proc) {
			root.proc = p
			s.threadOf[p] = root
			defer delete(s.threadOf, p)
			w.rank.Attach(p)
			root.segStart = p.Now()
			tb := &TB{w: w, th: root}
			body(tb)
			// Publish the root's final writes, end the region, and hand
			// the token of whatever rank the root ended on back to its
			// scheduler.
			cur := tb.w
			s.traceEnd(root, cur.rank.ID(), p.Now())
			s.hooks.OnSuspend(cur.rank.ID())
			s.done = true
			cur.rank.Attach(cur.proc)
			cur.proc.Wake()
		})
		w.proc.Park() // until a thread hands rank 0's token back
		w.rank.Attach(w.proc)
	}
	w.schedLoop()
	// Region exit: flush local caches so the SPMD code (and the next
	// region) sees a consistent global view.
	s.hooks.OnSuspend(rankID)
	w.rank.Barrier()
	s.hooks.OnMigrateArrive(rankID)
	w.rank.Barrier()
	w.proc.UnpinGlobal()
}

// schedLoop runs scheduling: resume local continuations, else steal.
func (w *Worker) schedLoop() {
	s := w.sched
	backoff := backoffMin
	for !s.done {
		s.hooks.Poll(w.rank.ID())
		w.proc.Advance(costSchedIter)
		// Threads whose communication completed take priority: they hold
		// pinned cache blocks and their continuations are on the critical
		// path.
		if th, ok := w.popReadyDue(); ok {
			w.resumeHere(th, false)
			backoff = backoffMin
			continue
		}
		// FBC completion notifications wake blocked joins in place; the
		// queue is always empty under the other policies.
		if th := w.popRunnable(); th != nil {
			s.PolicyStats.FBCWakes++
			w.resumeHere(th, th.fenceOnResume)
			backoff = backoffMin
			continue
		}
		if e := w.popBottom(); e != nil {
			if e.fn != nil {
				// A pending child we forked (help-first): start it here.
				// Same rank as the forker ⇒ no fences.
				s.PolicyStats.PendingRuns++
				w.runPending(e)
				backoff = backoffMin
				continue
			}
			// A blocked thread left this continuation behind: run it
			// locally. Same rank ⇒ no fences (§5.1).
			w.resumeHere(e.th, false)
			backoff = backoffMin
			continue
		}
		if s.done {
			break
		}
		if w.trySteal() {
			backoff = backoffMin
			continue
		}
		d := backoff
		// Never sleep past a comm-waiting thread's wake time.
		if wake, ok := w.minReadyWait(); ok && wake < d {
			d = wake
		}
		if d < 1 {
			d = 1
		}
		// This Advance is the hottest line in most runs (every idle worker,
		// every backoff iteration). It almost always hits the kernel's
		// zero-handoff fast path: no queued event is due before now+d, so
		// the clock bumps in place with no heap or channel traffic. The
		// profile branch is outside the common path so disabled runs pay
		// only the nil-check.
		if s.Profile != nil {
			t0 := w.proc.Now()
			w.proc.Advance(d)
			s.Profile.Span(w.rank.ID(), profile.SpanIdle, t0, w.proc.Now()-t0)
		} else {
			w.proc.Advance(d)
		}
		if backoff < backoffMax {
			backoff *= 2
		}
	}
}

// resumeHere hands the rank token to th and parks the scheduler until a
// thread hands it back.
func (w *Worker) resumeHere(th *thread, fence bool) {
	th.worker = w
	th.fenceOnResume = fence
	w.rank.Attach(th.proc)
	th.proc.Wake()
	w.proc.Park()
	w.rank.Attach(w.proc)
}

// popBottom pops the newest entry from the local deque.
func (w *Worker) popBottom() *entry {
	if len(w.deque) == 0 {
		return nil
	}
	e := w.deque[len(w.deque)-1]
	w.deque = w.deque[:len(w.deque)-1]
	return e
}

// trySteal attempts one steal, charging the one-sided costs of the
// uni-address protocol (remote CAS on the deque, then fetching the
// continuation's call stack). Victims are chosen uniformly at random, or
// same-node-first under Config.LocalityAware.
func (w *Worker) trySteal() bool {
	s := w.sched
	n := len(s.workers)
	if n == 1 {
		return false
	}
	t0 := w.proc.Now()
	vID := w.pickVictim()
	v := s.workers[vID]
	net := s.comm.Net()
	me := w.rank.ID()
	// Remote CAS claiming the victim deque's top. The charge includes any
	// fault-injected retries and link perturbation toward the victim; with
	// no fault plan it is exactly the base AtomicTime.
	w.rank.ChargeAtomic(vID)
	if len(v.deque) == 0 {
		s.Stats.FailedSteals++
		d := w.proc.Now() - t0
		s.FailedStealLatency.Observe(d)
		if s.tracer != nil {
			s.tracer.RecSpan(t0, d, me, trace.KFailedSteal, int64(vID), 0)
		}
		s.Profile.Span(me, profile.SpanSteal, t0, d)
		w.noteStealOutcome(vID, d, false)
		return false
	}
	// Take the oldest entry and fetch the suspended thread's stack.
	e := v.deque[0]
	v.deque = v.deque[1:]
	e.taken = true
	s.Stats.Steals++
	if net.SameNode(me, vID) {
		s.Stats.IntraSteals++
	}
	// A started continuation migrates its live stack; a pending task
	// (help-first/FBC) moves only its descriptor and migrates nothing —
	// the thread has never run anywhere yet.
	bytes := s.cfg.StackBytes
	if e.fn != nil {
		bytes = s.cfg.TaskBytes
		s.PolicyStats.PendingSteals++
	} else {
		s.Stats.Migrations++
	}
	w.rank.ChargeTransfer(vID, bytes)
	// Acquire #2 (with the victim's Release #1 handler) happens here on
	// the thief; the resumed thread needs no further fence.
	s.hooks.OnSteal(me, e.handler)
	// The latency span covers CAS + stack transfer + Acquire #2: the full
	// cost from deciding to steal to being able to run the continuation.
	d := w.proc.Now() - t0
	s.StealLatency.Observe(d)
	if s.tracer != nil {
		s.tracer.RecSpan(t0, d, me, trace.KSteal, int64(vID), e.th.tid)
	}
	s.Profile.Span(me, profile.SpanSteal, t0, d)
	w.noteStealOutcome(vID, d, true)
	if e.fn != nil {
		w.runPending(e)
		return true
	}
	w.resumeHere(e.th, false)
	return true
}

// noteStealOutcome updates the victim-blacklist state after one attempt
// against v that took latency d. A failure or an over-StealTimeout attempt
// is a strike; BlacklistAfter consecutive strikes blacklist the victim for
// a doubling penalty window. A healthy attempt clears the strikes and
// halves the victim's penalty (the decay that re-probes recovered ranks
// quickly). No-op unless Config.VictimBlacklist armed the state.
func (w *Worker) noteStealOutcome(v int, d sim.Time, ok bool) {
	if w.strikes == nil {
		return
	}
	s := w.sched
	slow := d > s.cfg.StealTimeout
	if slow {
		s.Stats.StealTimeouts++
	}
	if ok && !slow {
		w.strikes[v] = 0
		w.blackDur[v] /= 2
		return
	}
	w.strikes[v]++
	if w.strikes[v] < s.cfg.BlacklistAfter {
		return
	}
	w.strikes[v] = 0
	dur := w.blackDur[v] * 2
	if dur < s.cfg.BlacklistBase {
		dur = s.cfg.BlacklistBase
	}
	if dur > s.cfg.BlacklistMax {
		dur = s.cfg.BlacklistMax
	}
	w.blackDur[v] = dur
	now := w.proc.Now()
	w.blackUntil[v] = now + dur
	s.Stats.Blacklists++
	if s.tracer != nil {
		s.tracer.RecSpan(now, dur, w.rank.ID(), trace.KBlacklist, int64(v), int64(w.blackDur[v]))
	}
}

// pickVictim selects a steal victim. The purely random policy picks any
// other rank uniformly; the locality-aware policy prefers a same-node
// victim whose deque is visibly non-empty, falling back to uniform random
// when the node looks empty.
func (w *Worker) pickVictim() int {
	s := w.sched
	n := len(s.workers)
	me := w.rank.ID()
	if s.cfg.LocalityAware {
		net := s.comm.Net()
		cpn := net.CoresPerNode
		if cpn > 1 {
			base := (me / cpn) * cpn
			off := w.rng.Intn(cpn)
			for k := 0; k < cpn; k++ {
				cand := base + (off+k)%cpn
				if cand == me || cand >= n {
					continue
				}
				if w.blackUntil != nil && w.blackUntil[cand] > w.proc.Now() {
					continue
				}
				if len(s.workers[cand].deque) > 0 {
					return cand
				}
			}
		}
	}
	vID := w.rng.Intn(n - 1)
	if vID >= me {
		vID++
	}
	if w.blackUntil == nil || w.blackUntil[vID] <= w.proc.Now() {
		return vID
	}
	// The pick is blacklisted: deterministically probe the next non-
	// blacklisted rank. If every other rank is blacklisted, probe the
	// original pick anyway — the scheduler must never stop stealing
	// entirely (termination detection relies on eventual probes).
	now := w.proc.Now()
	for k := 1; k < n; k++ {
		cand := (vID + k) % n
		if cand == me {
			continue
		}
		if w.blackUntil[cand] <= now {
			w.sched.Stats.BlacklistSkips++
			return cand
		}
	}
	return vID
}

// Fork creates a child thread running fn and executes it immediately,
// making the caller's continuation stealable (child-first policy). It
// returns when the caller is next scheduled — on this rank if the
// continuation was not stolen, on the thief's rank otherwise.
func (tb *TB) Fork(fn func(*TB)) *Thread {
	if tb.w.sched.cfg.Policy != ChildFirst {
		return tb.forkHelpFirst(fn)
	}
	w := tb.w
	s := w.sched
	s.hooks.Poll(w.rank.ID())
	tb.th.proc.Advance(costFork)
	s.Stats.Forks++

	h := s.hooks.OnFork(w.rank.ID()) // Release #1

	e := &entry{th: tb.th, handler: h}
	w.deque = append(w.deque, e)

	s.nextTID++
	child := &thread{worker: w, parent: e, ptid: tb.th.tid, tid: s.nextTID}
	if s.tracer != nil || s.Profile != nil {
		// Close the parent's segment first so its path length is current
		// at the fork edge, then record the edge itself (the edge is a
		// trace-only record; Rec2 on a nil tracer is a no-op).
		now := tb.th.proc.Now()
		s.traceSeg(tb.th, w.rank.ID(), now)
		s.tracer.Rec2(now, w.rank.ID(), trace.KFork, child.tid, tb.th.tid)
	}
	w.proc.Engine().Spawn("thread", func(p *sim.Proc) {
		child.proc = p
		s.threadOf[p] = child
		defer delete(s.threadOf, p)
		cw := child.worker
		cw.rank.Attach(p)
		child.segStart = p.Now()
		cb := &TB{w: cw, th: child}
		fn(cb)
		s.traceEnd(child, cb.w.rank.ID(), p.Now())
		child.finish(cb.w)
	})
	// The child takes the rank token; the parent parks at the fork point.
	// No time passes between the deque push and the park, so a thief
	// cannot observe a pushed entry whose thread is still running.
	tb.suspendAndResume()
	return &Thread{th: child}
}

// finish handles thread completion on worker w (the rank that executed the
// final part of the thread).
func (th *thread) finish(w *Worker) {
	s := w.sched
	th.done = true
	th.doneRank = w.rank.ID()
	pe := th.parent
	if pe != nil && !pe.taken && len(w.deque) > 0 && w.deque[len(w.deque)-1] == pe {
		// Fast path: the parent's continuation is still at the bottom of
		// our deque — resume it as a serialized call, no fences (§5.1).
		w.deque = w.deque[:len(w.deque)-1]
		th.proc.Advance(costJoinFast) // charged on the completing thread
		pe.th.worker = w
		pe.th.fenceOnResume = false
		w.rank.Attach(pe.th.proc)
		pe.th.proc.Wake()
		return
	}
	// Slow path: the parent was stolen (or, under help-first spawning,
	// never parked at a fork point at all). Publish our writes
	// (Release #2).
	s.hooks.OnChildStolenDone(w.rank.ID())
	if th.joinWaiter != nil {
		waiter := th.joinWaiter
		th.joinWaiter = nil
		if s.cfg.Policy == FBC {
			// Finish-based coordination: the waiter never migrates. Post
			// a completion notification — a remote atomic on the join
			// counter living on the waiter's rank — and let its own
			// scheduler resume it in place. It still owes Acquire #1
			// unless our writes were released on its rank.
			w.rank.ChargeAtomic(th.waiterRank)
			waiter.worker = s.workers[th.waiterRank]
			waiter.fenceOnResume = th.waiterRank != w.rank.ID()
			s.workers[th.waiterRank].runnable = append(s.workers[th.waiterRank].runnable, waiter)
			w.rank.Attach(w.proc)
			w.proc.Wake()
			return
		}
		// The parent is blocked at Join: migrate it here. It needs
		// Acquire #1 on arrival unless it suspended on this very rank.
		waiter.worker = w
		waiter.fenceOnResume = th.waiterRank != w.rank.ID()
		if waiter.fenceOnResume {
			s.Stats.Migrations++
		}
		w.rank.Attach(waiter.proc)
		waiter.proc.Wake()
		return
	}
	// Nobody waiting yet: give the rank token back to its scheduler.
	w.rank.Attach(w.proc)
	w.proc.Wake()
}

// suspendAndResume parks the calling thread and, upon resumption, rebinds
// it to its (possibly new) worker and runs the migration acquire fence if
// one is owed.
func (tb *TB) suspendAndResume() {
	th := tb.th
	th.proc.Park()
	tb.w = th.worker
	// The next execution segment starts here; any resume-time fence below
	// is charged to it (the thread cannot proceed without the fence, so it
	// belongs on its path).
	th.segStart = th.proc.Now()
	if th.fenceOnResume {
		th.fenceOnResume = false
		tb.w.sched.hooks.OnMigrateArrive(tb.w.rank.ID())
	}
}

// Join waits for a previously forked child. On the fast path (child already
// complete on this rank) it returns immediately with no coherence actions.
// Otherwise the caller releases its writes, blocks, and resumes on the rank
// where the child completes, running an acquire fence on arrival.
func (tb *TB) Join(t *Thread) {
	w := tb.w
	s := w.sched
	s.hooks.Poll(w.rank.ID())
	c := t.th
	if c.done {
		tb.th.proc.Advance(costJoinFast)
		if c.doneRank != w.rank.ID() {
			// Acquire #1: the child's writes were released on another rank.
			s.hooks.OnMigrateArrive(w.rank.ID())
		}
		if s.tracer != nil {
			s.tracer.Rec2(tb.th.proc.Now(), w.rank.ID(), trace.KJoin, c.tid, tb.th.tid)
		}
		return
	}
	// The child is still running somewhere; block. The waiter registration
	// must precede the release fence: the child may complete while the
	// fence advances time, and must find us.
	c.joinWaiter = tb.th
	c.waiterRank = w.rank.ID()
	s.hooks.OnSuspend(w.rank.ID()) // Release #3
	s.traceSeg(tb.th, w.rank.ID(), tb.th.proc.Now())
	// Give this rank's token back to its scheduler and park; the
	// completing child will hand us its rank's token.
	w.rank.Attach(w.proc)
	w.proc.Wake()
	tb.suspendAndResume()
	if s.tracer != nil {
		// The join edge is recorded after the child's final events (we
		// resumed only once it completed), so the analysis sees the
		// child's full path when it folds it into ours.
		s.tracer.Rec2(tb.th.proc.Now(), tb.w.rank.ID(), trace.KJoin, c.tid, tb.th.tid)
	}
}

// Yield lets long-running leaf code service deferred runtime work
// (lazy-release polls) without a fork/join point.
func (tb *TB) Yield() {
	tb.w.sched.hooks.Poll(tb.w.rank.ID())
}

// String summarizes the scheduler counters for log lines.
func (s *Sched) String() string {
	return fmt.Sprintf("sched{forks=%d steals=%d failed=%d migrations=%d}",
		s.Stats.Forks, s.Stats.Steals, s.Stats.FailedSteals, s.Stats.Migrations)
}

// popReadyDue removes and returns a comm-waiting thread whose wake time
// has arrived.
func (w *Worker) popReadyDue() (*thread, bool) {
	now := w.proc.Now()
	for i, tt := range w.ready {
		if tt.until <= now {
			w.ready = append(w.ready[:i], w.ready[i+1:]...)
			return tt.th, true
		}
	}
	return nil, false
}

// minReadyWait returns the shortest time until a comm-waiting thread wakes.
func (w *Worker) minReadyWait() (sim.Time, bool) {
	if len(w.ready) == 0 {
		return 0, false
	}
	now := w.proc.Now()
	min := w.ready[0].until - now
	for _, tt := range w.ready[1:] {
		if d := tt.until - now; d < min {
			min = d
		}
	}
	if min < 0 {
		min = 0
	}
	return min, true
}

// CommWait implements communication-computation overlap (§8 future work):
// the thread currently executing (identified through the engine) parks
// until the given virtual time, handing its rank's token back to the
// scheduler so other tasks can run during the wait. It returns false —
// having done nothing — when the caller is not a registered user-level
// thread (e.g. SPMD-mode code), in which case the caller must block
// conventionally.
func (s *Sched) CommWait(until sim.Time) bool {
	cur := s.comm.Engine().Current()
	th := s.threadOf[cur]
	if th == nil {
		return false
	}
	if until <= cur.Now() {
		return true // already complete: nothing to overlap
	}
	w := th.worker
	s.Stats.CommWaits++
	s.traceSeg(th, w.rank.ID(), cur.Now())
	w.ready = append(w.ready, timedThread{th: th, until: until})
	w.rank.Attach(w.proc)
	w.proc.Wake()
	th.proc.Park()
	// Resumed by the scheduler at or after `until`, on the same rank.
	th.segStart = th.proc.Now()
	return true
}
