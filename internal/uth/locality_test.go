package uth

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// runWithCfg is runRegion with a custom scheduler config.
func runWithCfg(t *testing.T, nranks, coresPerNode int, cfg Config, body func(*TB)) *Sched {
	t.Helper()
	e := sim.NewEngine()
	c := rma.New(e, nranks, netmodel.Default(coresPerNode))
	s := NewSched(c, cfg, nil)
	for i := 0; i < nranks; i++ {
		i := i
		r := c.Rank(i)
		e.Spawn("spmd", func(p *sim.Proc) {
			r.Attach(p)
			s.WorkerMain(i, body)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocalityAwareCorrectness(t *testing.T) {
	var got int
	s := runWithCfg(t, 8, 4, Config{Seed: 3, LocalityAware: true}, func(tb *TB) {
		got = fib(tb, 14)
	})
	if got != 377 {
		t.Fatalf("fib(14) = %d, want 377", got)
	}
	if s.Stats.Steals == 0 {
		t.Fatal("no steals under locality-aware policy")
	}
}

func TestLocalityAwareRaisesIntraNodeShare(t *testing.T) {
	body := func(tb *TB) { fib(tb, 15) }
	random := runWithCfg(t, 16, 4, Config{Seed: 5}, body)
	local := runWithCfg(t, 16, 4, Config{Seed: 5, LocalityAware: true}, body)
	if random.Stats.Steals == 0 || local.Stats.Steals == 0 {
		t.Skip("not enough steals to compare")
	}
	rShare := float64(random.Stats.IntraSteals) / float64(random.Stats.Steals)
	lShare := float64(local.Stats.IntraSteals) / float64(local.Stats.Steals)
	t.Logf("intra-node steal share: random %.2f vs locality-aware %.2f", rShare, lShare)
	if lShare <= rShare {
		t.Errorf("locality-aware policy did not raise intra-node share: %.2f vs %.2f", lShare, rShare)
	}
}

func TestLocalityAwareSingleCorePerNode(t *testing.T) {
	// Degenerate topology (1 core/node): must behave like pure random and
	// never self-steal.
	s := runWithCfg(t, 4, 1, Config{Seed: 9, LocalityAware: true}, func(tb *TB) {
		fib(tb, 12)
	})
	if s.Stats.IntraSteals != 0 {
		t.Fatalf("intra-node steals with 1 core/node: %d", s.Stats.IntraSteals)
	}
}
