package rma

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// BenchmarkRMAOps measures host-side throughput of the one-sided layer —
// how many simulated RMA operations per second of wall-clock the kernel can
// push through. Each sub-benchmark reports ops/sec.

func benchRMA(b *testing.B, body func(r *Rank, w *Win, n int)) {
	b.Helper()
	e := sim.NewEngine()
	c := New(e, 2, netmodel.Default(2))
	w := c.NewUniformWin(1 << 16)
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			if r.ID() == 0 {
				body(r, w, b.N)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// put-flush: nonblocking remote Puts with a Flush per op — the checkout
// write-back pattern.
func BenchmarkRMAOpsPutFlush(b *testing.B) {
	buf := make([]byte, 256)
	benchRMA(b, func(r *Rank, w *Win, n int) {
		for i := 0; i < n; i++ {
			w.Put(r, buf, 1, 0)
			r.Flush()
		}
	})
}

// get-batch: batches of nonblocking Gets amortizing one Flush — the cache
// fetch pattern.
func BenchmarkRMAOpsGetBatch(b *testing.B) {
	buf := make([]byte, 256)
	benchRMA(b, func(r *Rank, w *Win, n int) {
		for i := 0; i < n; i += 8 {
			for j := 0; j < 8 && i+j < n; j++ {
				w.Get(r, 1, 0, buf)
			}
			r.Flush()
		}
	})
}

// atomics: blocking remote fetch-and-add — the steal/epoch pattern.
func BenchmarkRMAOpsFetchAndAdd(b *testing.B) {
	benchRMA(b, func(r *Rank, w *Win, n int) {
		for i := 0; i < n; i++ {
			w.FetchAndAdd(r, 1, 0, 1)
		}
	})
}

// local: self-targeted Puts, the NIC-free fast case.
func BenchmarkRMAOpsLocalPut(b *testing.B) {
	buf := make([]byte, 256)
	benchRMA(b, func(r *Rank, w *Win, n int) {
		for i := 0; i < n; i++ {
			w.Put(r, buf, 0, 0)
		}
		r.Flush()
	})
}
