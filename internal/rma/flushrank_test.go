package rma

import (
	"testing"

	"ityr/internal/netmodel"
)

// TestFlushRankWaitsOnlyOneTarget pins the targeted-flush semantics the
// pgas write-back batching relies on: FlushRank(t) drains only the ops
// bound for t, leaving traffic to other ranks outstanding, and a full
// Flush afterwards still waits for the rest.
func TestFlushRankWaitsOnlyOneTarget(t *testing.T) {
	net := netmodel.Default(1) // every rank its own node
	harness(t, 3, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			small := make([]byte, 8)
			big := make([]byte, 1<<15)
			w.Put(r, small, 1, 0)
			w.Put(r, big, 2, 0)
			r.FlushRank(1)
			if r.proc.Now() < r.pendingToTime(1) {
				t.Errorf("FlushRank(1) returned at %d before target-1 completion %d", r.proc.Now(), r.pendingToTime(1))
			}
			if r.PendingTime() <= r.proc.Now() {
				t.Errorf("FlushRank(1) waited for the big target-2 put too (now=%d pending=%d)", r.proc.Now(), r.PendingTime())
			}
			r.Flush()
			if r.proc.Now() < r.pendingToTime(2) {
				t.Errorf("Flush returned at %d before target-2 completion %d", r.proc.Now(), r.pendingToTime(2))
			}
			// A FlushRank with nothing outstanding is free.
			before := r.flushWaits
			r.FlushRank(2)
			if r.flushWaits != before {
				t.Errorf("idle FlushRank counted a wait")
			}
		}
		r.Barrier()
	})
}

// TestFlushRankSelfOps checks self-targeted ops complete at issue and
// never make FlushRank wait.
func TestFlushRankSelfOps(t *testing.T) {
	net := netmodel.Default(1)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.Put(r, make([]byte, 64), 0, 0)
			before := r.flushWaits
			r.FlushRank(0)
			if r.flushWaits != before {
				t.Errorf("self-op FlushRank waited")
			}
		}
		r.Barrier()
	})
}
