package rma

import (
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// TestNICSerialization checks the bandwidth model: k back-to-back messages
// must serialize on the origin NIC (total ≈ k·size/bw + one latency), not
// complete in parallel.
func TestNICSerialization(t *testing.T) {
	net := netmodel.Default(1)
	const k, size = 8, 60000
	var batched sim.Time
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			start := r.Proc().Now()
			buf := make([]byte, size)
			for i := 0; i < k; i++ {
				w.Get(r, 1, 0, buf) // same source region; only timing matters
			}
			r.Flush()
			batched = r.Proc().Now() - start
		}
		r.Barrier()
	})
	wire := sim.Time(float64(k*size) / net.Bandwidth)
	min := wire + net.Latency
	if batched < min {
		t.Fatalf("batched gets took %d, below serialized minimum %d", batched, min)
	}
	// But pipelining must save the per-message latency: far less than
	// k × (latency + size/bw).
	max := sim.Time(k)*(net.Latency+sim.Time(float64(size)/net.Bandwidth)) + sim.Time(k)*net.MsgOverhead
	if batched >= max {
		t.Fatalf("batched gets took %d, not pipelined (unpipelined would be %d)", batched, max)
	}
}

// TestFlushIsIdempotent checks repeated flushes don't double-charge.
func TestFlushIsIdempotent(t *testing.T) {
	net := netmodel.Default(1)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.Get(r, 1, 0, make([]byte, 1000))
			r.Flush()
			after := r.Proc().Now()
			r.Flush()
			r.Flush()
			if r.Proc().Now() != after {
				t.Error("idle flush advanced time")
			}
		}
		r.Barrier()
	})
}

// TestGrowPreservesContents checks the dynamic window extension.
func TestGrowPreservesContents(t *testing.T) {
	net := netmodel.Default(1)
	harness(t, 2, net, func(r *Rank) {
		if r.ID() != 0 {
			r.Barrier()
			return
		}
		c := r.Comm()
		w := c.NewUniformWin(16)
		w.Put(r, []byte{1, 2, 3, 4}, 1, 0)
		r.Flush()
		w.Grow(1, 1<<20)
		got := make([]byte, 4)
		w.Get(r, 1, 0, got)
		r.Flush()
		if got[0] != 1 || got[3] != 4 {
			t.Errorf("grow lost data: %v", got)
		}
		if len(w.Seg(1)) != 1<<20 {
			t.Errorf("segment size %d after grow", len(w.Seg(1)))
		}
		if len(w.Seg(0)) != 16 {
			t.Errorf("grow affected other rank's segment")
		}
		r.Barrier()
	})
}
