// Package rma provides the one-sided communication layer Itoyori builds on:
// a simulated equivalent of MPI-3 RMA (MPI_WIN_UNIFIED).
//
// A Comm groups a fixed set of ranks, each driven by one simulated process.
// Windows expose per-rank memory segments for one-sided Get/Put (nonblocking
// until Flush) and remote atomics (blocking, as when offloaded to RDMA).
// All costs are charged in virtual time through the netmodel parameters;
// payload movement itself happens eagerly in host memory, which is sound
// because Itoyori requires data-race-free programs — no conflicting access
// can overlap an in-flight transfer.
package rma

import (
	"encoding/binary"
	"fmt"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	eng   *sim.Engine
	net   netmodel.Params
	ranks []*Rank

	barrierWaiting int
	barrierProcs   []*sim.Proc

	// Stats
	getBytes, putBytes uint64
	getOps, putOps     uint64
	atomicOps          uint64
	flushWaits         uint64
	barriers           uint64
}

// New creates a communicator with n ranks on engine e using network model p.
func New(e *sim.Engine, n int, p netmodel.Params) *Comm {
	c := &Comm{eng: e, net: p}
	c.ranks = make([]*Rank, n)
	for i := range c.ranks {
		c.ranks[i] = &Rank{id: i, c: c}
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Net returns the network parameters.
func (c *Comm) Net() netmodel.Params { return c.net }

// Engine returns the simulation engine.
func (c *Comm) Engine() *sim.Engine { return c.eng }

// Rank returns rank i.
func (c *Comm) Rank(i int) *Rank { return c.ranks[i] }

// Stats reports cumulative one-sided traffic.
type Stats struct {
	GetOps, PutOps, AtomicOps uint64
	GetBytes, PutBytes        uint64
	FlushWaits                uint64 // flushes that actually waited on outstanding ops
	Barriers                  uint64 // completed barrier episodes
}

// Stats returns cumulative traffic counters.
func (c *Comm) Stats() Stats {
	return Stats{
		GetOps: c.getOps, PutOps: c.putOps, AtomicOps: c.atomicOps,
		GetBytes: c.getBytes, PutBytes: c.putBytes,
		FlushWaits: c.flushWaits, Barriers: c.barriers,
	}
}

// Rank is one simulated process's endpoint. Exactly one simulated process
// must drive a given rank (Attach), mirroring Itoyori's one-process-per-core
// design.
type Rank struct {
	id   int
	c    *Comm
	proc *sim.Proc

	nicFree sim.Time // when the NIC finishes serializing already-issued messages
	pending sim.Time // completion time of the latest outstanding nonblocking op
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Comm returns the communicator.
func (r *Rank) Comm() *Comm { return r.c }

// Attach binds the simulated process that drives this rank. It must be
// called before any communication from the rank.
func (r *Rank) Attach(p *sim.Proc) { r.proc = p }

// Proc returns the driving process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Node returns the node hosting this rank.
func (r *Rank) Node() int { return r.c.net.Node(r.id) }

// issue models the origin-side cost and NIC serialization of a one-sided
// data transfer to target, returning nothing; completion time is folded
// into r.pending for the next Flush.
func (r *Rank) issue(target, nbytes int) {
	r.proc.Advance(r.c.net.MsgOverhead)
	now := r.proc.Now()
	if target == r.id {
		// Local window access: completes at issue time and never touches
		// the NIC, so it must not occupy the serialization pipeline (a
		// local op squeezed between two remote ops must not delay the
		// second one).
		if now > r.pending {
			r.pending = now
		}
		return
	}
	if r.nicFree < now {
		r.nicFree = now
	}
	r.nicFree += r.c.net.SerializationTime(r.id, target, nbytes)
	done := r.nicFree + r.c.net.TransferTime(r.id, target, 0)
	if done > r.pending {
		r.pending = done
	}
}

// Flush blocks until all nonblocking operations issued by this rank have
// completed, like MPI_Win_flush_all. The wait is a plain Advance, so when no
// other rank has an event due first it rides the kernel's zero-handoff fast
// path — a flush-heavy rank costs the host nothing per wait.
func (r *Rank) Flush() {
	if d := r.pending - r.proc.Now(); d > 0 {
		r.c.flushWaits++
		r.proc.Advance(d)
	}
}

// PendingTime returns the virtual time at which all currently outstanding
// nonblocking operations will have completed — the earliest instant a
// Flush issued now could return. Used by communication-computation
// overlap to schedule work during the wait.
func (r *Rank) PendingTime() sim.Time { return r.pending }

// Barrier synchronizes all ranks in the communicator (SPMD regions only).
func (r *Rank) Barrier() {
	c := r.c
	c.barrierWaiting++
	if c.barrierWaiting < len(c.ranks) {
		c.barrierProcs = append(c.barrierProcs, r.proc)
		r.proc.Park()
		return
	}
	// Last arriver releases everyone after a dissemination-style cost.
	c.barriers++
	steps := 0
	for n := 1; n < len(c.ranks); n *= 2 {
		steps++
	}
	r.proc.Advance(sim.Time(steps) * c.net.Latency)
	waiters := c.barrierProcs
	c.barrierProcs = nil
	c.barrierWaiting = 0
	for _, p := range waiters {
		p.Wake()
	}
}

// Win is a one-sided memory window: one segment of bytes per rank.
type Win struct {
	c    *Comm
	segs [][]byte
}

// NewWin creates a window where rank i exposes sizes[i] bytes. It is a
// setup-time (SPMD) operation.
func (c *Comm) NewWin(sizes []int) *Win {
	if len(sizes) != len(c.ranks) {
		panic(fmt.Sprintf("rma: NewWin got %d sizes for %d ranks", len(sizes), len(c.ranks)))
	}
	w := &Win{c: c}
	w.segs = make([][]byte, len(sizes))
	for i, s := range sizes {
		w.segs[i] = make([]byte, s)
	}
	return w
}

// NewUniformWin creates a window with the same segment size on every rank.
func (c *Comm) NewUniformWin(size int) *Win {
	sizes := make([]int, len(c.ranks))
	for i := range sizes {
		sizes[i] = size
	}
	return c.NewWin(sizes)
}

// Seg returns rank i's raw segment. Direct access is only legitimate from
// rank i itself or for setup/verification outside the simulation.
func (w *Win) Seg(i int) []byte { return w.segs[i] }

// Grow extends rank's segment to at least size bytes, preserving contents —
// the equivalent of MPI_Win_create_dynamic + MPI_Win_attach for a heap that
// grows on demand. Callers must not hold slices from Seg across a Grow.
func (w *Win) Grow(rank, size int) {
	if len(w.segs[rank]) >= size {
		return
	}
	ns := make([]byte, size)
	copy(ns, w.segs[rank])
	w.segs[rank] = ns
}

func (w *Win) check(target, off, n int) {
	if target < 0 || target >= len(w.segs) {
		panic(fmt.Sprintf("rma: target rank %d out of range", target))
	}
	if off < 0 || n < 0 || off+n > len(w.segs[target]) {
		panic(fmt.Sprintf("rma: access [%d,%d) outside segment of %d bytes on rank %d",
			off, off+n, len(w.segs[target]), target))
	}
}

// Get starts a nonblocking read of len(dst) bytes from target's segment at
// off into dst. The data is guaranteed valid after the next Flush.
func (w *Win) Get(r *Rank, target, off int, dst []byte) {
	w.check(target, off, len(dst))
	copy(dst, w.segs[target][off:])
	r.issue(target, len(dst))
	w.c.getOps++
	w.c.getBytes += uint64(len(dst))
}

// Put starts a nonblocking write of src into target's segment at off.
// Completion (remote visibility) is guaranteed after the next Flush.
func (w *Win) Put(r *Rank, src []byte, target, off int) {
	w.check(target, off, len(src))
	copy(w.segs[target][off:], src)
	r.issue(target, len(src))
	w.c.putOps++
	w.c.putBytes += uint64(len(src))
}

// GetUint64 is a blocking 8-byte read (issue + flush), as used for polling
// remote scalars such as epochs.
func (w *Win) GetUint64(r *Rank, target, off int) uint64 {
	w.check(target, off, 8)
	v := binary.LittleEndian.Uint64(w.segs[target][off:])
	r.issue(target, 8)
	r.Flush()
	return v
}

// PutUint64 is a nonblocking 8-byte write.
func (w *Win) PutUint64(r *Rank, v uint64, target, off int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Put(r, b[:], target, off)
}

// LocalUint64 reads an 8-byte value from the rank's own segment without
// any communication cost (local variables readable thanks to
// MPI_WIN_UNIFIED, as exploited by the lazy-release polling path).
func (w *Win) LocalUint64(r *Rank, off int) uint64 {
	w.check(r.id, off, 8)
	return binary.LittleEndian.Uint64(w.segs[r.id][off:])
}

// StoreLocalUint64 writes an 8-byte value into the rank's own segment.
func (w *Win) StoreLocalUint64(r *Rank, v uint64, off int) {
	w.check(r.id, off, 8)
	binary.LittleEndian.PutUint64(w.segs[r.id][off:], v)
}

// CompareAndSwap atomically replaces the uint64 at (target, off) with new if
// it equals old, returning the previous value. Blocking, like an RDMA
// atomic followed by a flush.
func (w *Win) CompareAndSwap(r *Rank, target, off int, old, new uint64) uint64 {
	w.check(target, off, 8)
	r.proc.Advance(w.c.net.AtomicTime(r.id, target))
	prev := binary.LittleEndian.Uint64(w.segs[target][off:])
	if prev == old {
		binary.LittleEndian.PutUint64(w.segs[target][off:], new)
	}
	w.c.atomicOps++
	return prev
}

// FetchAndAdd atomically adds delta to the uint64 at (target, off) and
// returns the previous value. Blocking.
func (w *Win) FetchAndAdd(r *Rank, target, off int, delta uint64) uint64 {
	w.check(target, off, 8)
	r.proc.Advance(w.c.net.AtomicTime(r.id, target))
	prev := binary.LittleEndian.Uint64(w.segs[target][off:])
	binary.LittleEndian.PutUint64(w.segs[target][off:], prev+delta)
	w.c.atomicOps++
	return prev
}

// MaxUint64 atomically raises the value at (target, off) to at least v,
// emulating MPI_Fetch_and_op(MPI_MAX) with a compare-and-swap loop as the
// paper does (footnote 6). It returns the value observed before the update.
func (w *Win) MaxUint64(r *Rank, target, off int, v uint64) uint64 {
	for {
		cur := binary.LittleEndian.Uint64(w.segs[target][off:])
		if cur >= v {
			r.proc.Advance(w.c.net.AtomicTime(r.id, target))
			return cur
		}
		if prev := w.CompareAndSwap(r, target, off, cur, v); prev == cur {
			return prev
		}
	}
}
