// Package rma provides the one-sided communication layer Itoyori builds on:
// a simulated equivalent of MPI-3 RMA (MPI_WIN_UNIFIED).
//
// A Comm groups a fixed set of ranks, each driven by one simulated process.
// Windows expose per-rank memory segments for one-sided Get/Put (nonblocking
// until Flush) and remote atomics (blocking, as when offloaded to RDMA).
// All costs are charged in virtual time through the netmodel parameters;
// payload movement itself happens eagerly in host memory, which is sound
// because Itoyori requires data-race-free programs — no conflicting access
// can overlap an in-flight transfer.
//
// # Errors versus panics
//
// Window access validation distinguishes two cases. Programmer-error
// invariants — a rank index or byte range that no correct program can
// produce, because the layers above (pgas) validate user input before any
// window op — panic, but they panic with a typed error value wrapped
// around ErrRankOutOfRange or ErrOutOfRange, so a recover() (or a direct
// CheckAccess call) can classify the failure with errors.Is. Runtime
// conditions a correct program can hit (a fault plan exhausting an op's
// retry attempts) also surface as wrapped typed errors, via panic at the
// fail-stop point — the simulated equivalent of a fatal MPI error.
//
// # Fault injection
//
// When a fault.Injector is armed (SetFaults), one-sided ops may fail
// transiently before taking effect: the origin is charged a timeout plus a
// capped exponential backoff with seeded jitter, then retries. Because the
// failure is injected before the memory effect, a retried Get/Put/
// CompareAndSwap/FetchAndAdd applies its effect exactly once — callers
// need no idempotence of their own, only tolerance of the added latency.
// With no injector armed every fault path is a single nil-check and the
// charged costs are bit-identical to the fault-free model (pinned by the
// golden digest and an allocs test).
package rma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"ityr/internal/fault"
	"ityr/internal/netmodel"
	"ityr/internal/profile"
	"ityr/internal/sim"
	"ityr/internal/trace"
)

// Typed validation and failure errors. Panics raised by window ops wrap
// these, so both errors.Is on a CheckAccess result and a recover() at a
// test boundary can classify them.
var (
	// ErrRankOutOfRange reports a target rank outside the communicator.
	ErrRankOutOfRange = errors.New("rma: target rank out of range")
	// ErrOutOfRange reports a byte range outside the target's segment.
	ErrOutOfRange = errors.New("rma: access outside window segment")
	// ErrRetriesExhausted reports an op that kept failing past the fault
	// plan's MaxAttempts fail-stop bound.
	ErrRetriesExhausted = errors.New("rma: retries exhausted")
	// ErrSdcUnrecoverable reports a transfer whose payload kept arriving
	// corrupted past the SDC replay bound (fail-stop).
	ErrSdcUnrecoverable = errors.New("rma: payload corruption persisted past replay bound")
)

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	eng *sim.Engine
	net netmodel.Params

	// ranks is one contiguous slab rather than n separate heap objects:
	// at paper scale (16K+ ranks) per-rank allocations dominate setup cost
	// and fragment the heap, so endpoints are indexed, not pointer-chased.
	ranks []Rank

	inj    *fault.Injector  // nil = no fault injection
	tracer *trace.Log       // nil = no retry spans
	prof   *profile.Profile // nil = no streaming profile

	// sdcReplays > 0 arms the end-to-end payload checksum: a corrupted
	// bulk transfer is detected and retransmitted up to sdcReplays times
	// before fail-stop. 0 (the default) lets wire flips land silently.
	sdcReplays int

	// Barrier state: per-rank virtual arrival times plus an atomic arrival
	// counter. Writing the slot before the Add and reading all slots only
	// after observing the final Add is the release/acquire pattern that
	// makes the last arriver's max-over-slots read race-free even when
	// ranks arrive from different host shards.
	barSlots   []atomic.Int64
	barArrived atomic.Int32

	// barriers counts completed episodes. Only the releaser of an episode
	// touches it, and consecutive releasers are ordered by the barrier
	// itself, so no synchronization is needed.
	barriers uint64

	// nwins numbers windows in creation order. Window creation is a
	// setup-time or globally serialized operation, so a plain counter is
	// race-free; the resulting IDs give callers a deterministic sort key
	// (sorting by *Win pointer would depend on the host allocator).
	nwins int
}

// New creates a communicator with n ranks on engine e using network model p.
// Setup is O(n) in both time and memory: per-rank state that used to be
// sized by the communicator (the per-target pending table) is now a pruned
// pair list that grows only with each rank's live communication fan-out.
func New(e *sim.Engine, n int, p netmodel.Params) *Comm {
	c := &Comm{eng: e, net: p, barSlots: make([]atomic.Int64, n)}
	c.ranks = make([]Rank, n)
	for i := range c.ranks {
		c.ranks[i].id = i
		c.ranks[i].c = c
	}
	return c
}

// SetFaults arms fault injection: one-sided ops may transiently fail and
// retry per the injector's plan. Call before the simulation starts; a nil
// injector (the default) keeps every fault path to a single nil-check.
func (c *Comm) SetFaults(in *fault.Injector) { c.inj = in }

// Faults returns the armed injector (nil without fault injection).
func (c *Comm) Faults() *fault.Injector { return c.inj }

// SetTrace attaches an event log so retries appear as KRetry spans.
func (c *Comm) SetTrace(tl *trace.Log) { c.tracer = tl }

// SetSDCVerify arms the end-to-end payload checksum: every corrupted bulk
// Put/Get payload is detected on arrival and retransmitted (each
// retransmission re-charging the full origin-side issue cost), failing
// stop with ErrSdcUnrecoverable after maxReplays retransmissions of one
// transfer. maxReplays <= 0 disarms verification, in which case injected
// wire flips corrupt memory silently (counted as escapes).
func (c *Comm) SetSDCVerify(maxReplays int) { c.sdcReplays = maxReplays }

// SetProfile attaches the streaming profile collector: one-sided ops feed
// the communication matrix and flush/barrier waits feed the stall rollups.
// A nil profile (the default) keeps every hook to a single nil-check.
// Recording only ever reads the virtual clock, so the simulated schedule —
// and with it every golden digest — is bit-identical with or without it.
func (c *Comm) SetProfile(p *profile.Profile) { c.prof = p }

// RetriesByRank returns a copy of the per-origin-rank retry counts.
func (c *Comm) RetriesByRank() []uint64 {
	out := make([]uint64, len(c.ranks))
	for i := range c.ranks {
		out[i] = c.ranks[i].retries
	}
	return out
}

// SdcWireDetectedByRank returns each origin rank's count of wire flips
// caught by the end-to-end payload checksum (the detection side of the
// injector's WireFlipsByRank audit trail).
func (c *Comm) SdcWireDetectedByRank() []uint64 {
	out := make([]uint64, len(c.ranks))
	for i := range c.ranks {
		out[i] = c.ranks[i].sdcDetected
	}
	return out
}

// SdcWireEscapesByRank returns each origin rank's count of wire flips
// that landed silently (checksum not armed).
func (c *Comm) SdcWireEscapesByRank() []uint64 {
	out := make([]uint64, len(c.ranks))
	for i := range c.ranks {
		out[i] = c.ranks[i].sdcEscapes
	}
	return out
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Net returns the network parameters.
func (c *Comm) Net() netmodel.Params { return c.net }

// Engine returns the simulation engine.
func (c *Comm) Engine() *sim.Engine { return c.eng }

// Rank returns rank i.
func (c *Comm) Rank(i int) *Rank { return &c.ranks[i] }

// Stats reports cumulative one-sided traffic.
type Stats struct {
	GetOps, PutOps, AtomicOps uint64
	GetBytes, PutBytes        uint64
	FlushWaits                uint64 // flushes that actually waited on outstanding ops
	Barriers                  uint64 // completed barrier episodes
	Retries                   uint64 // transient failures retried (fault injection)
	RetryNs                   uint64 // virtual time lost to retry timeouts + backoff
}

// SdcWireStats reports silent-data-corruption activity on bulk payloads.
// Kept out of Stats so digests that fold Stats verbatim stay comparable
// across versions that predate the SDC subsystem (the same rule that
// keeps pgas.BatchStats separate).
type SdcWireStats struct {
	Flips    uint64 // bit flips injected into bulk payloads
	Detected uint64 // flips caught by the end-to-end checksum
	Retrans  uint64 // retransmissions issued to recover them
	Escapes  uint64 // flips that landed silently (checksum off)
}

// SdcWire returns cumulative wire-corruption counters (sum over ranks).
func (c *Comm) SdcWire() SdcWireStats {
	var s SdcWireStats
	for i := range c.ranks {
		r := &c.ranks[i]
		s.Flips += r.sdcFlips
		s.Detected += r.sdcDetected
		s.Retrans += r.sdcRetrans
		s.Escapes += r.sdcEscapes
	}
	return s
}

// Stats returns cumulative traffic counters: the sum of every rank's
// per-rank counters. Keeping the counters per rank (each rank only ever
// increments its own) is what lets window ops run concurrently on
// different host shards without locks; call Stats from outside the
// simulation, or from a globally serialized section.
func (c *Comm) Stats() Stats {
	s := Stats{Barriers: c.barriers}
	for i := range c.ranks {
		r := &c.ranks[i]
		s.GetOps += r.getOps
		s.PutOps += r.putOps
		s.AtomicOps += r.atomicOps
		s.GetBytes += r.getBytes
		s.PutBytes += r.putBytes
		s.FlushWaits += r.flushWaits
		s.Retries += r.retries
		s.RetryNs += r.retryNs
	}
	return s
}

// Rank is one simulated process's endpoint. Exactly one simulated process
// must drive a given rank (Attach), mirroring Itoyori's one-process-per-core
// design.
//
// # Failure semantics
//
// Every one-sided operation a rank originates (Get, Put, the atomics, and
// the Charge* helpers) first passes through the fault-injection gate. With
// no injector armed the gate is a single nil-check and operations never
// fail. With an injector armed, an operation may fail transiently any
// number of times before it takes effect: each failed attempt charges the
// plan's detection timeout plus a capped, seeded exponential backoff to
// this rank's virtual clock and increments its retry counters, and then
// the operation is re-attempted from scratch. Because failures are always
// injected before the memory effect, the effect of a retried operation is
// applied exactly once — callers never observe a duplicated Put or a
// double-applied FetchAndAdd, and need no idempotence of their own. An
// operation that is still failing after the plan's MaxAttempts fail-stops:
// it panics with an error wrapping ErrRetriesExhausted (classify with
// errors.Is, as the simulated equivalent of MPI_ERRORS_ARE_FATAL).
// Validation failures — a rank or byte range no correct program can
// produce — panic with errors wrapping ErrRankOutOfRange or ErrOutOfRange
// instead; CheckAccess performs the same classification without the panic.
//
// All mutable per-operation state (NIC serialization watermark, pending
// completion time, traffic and retry counters) is private to the rank, so
// ranks on different host shards may drive their endpoints concurrently
// during parallel execution; cross-rank synchronization happens only
// through Barrier.
type Rank struct {
	id   int
	c    *Comm
	proc *sim.Proc

	nicFree sim.Time // when the NIC finishes serializing already-issued messages
	pending sim.Time // completion time of the latest outstanding nonblocking op

	// pendingTo tracks the completion time of the latest outstanding
	// nonblocking op per target rank, so FlushRank can wait on one target
	// without stalling on unrelated traffic. It is a pruned pair list, not
	// a communicator-sized table: an entry whose time is not in the
	// rank's future is dead (a FlushRank on it would not wait) and is
	// dropped on the next update, so the list length follows the rank's
	// live fan-out — a handful of neighbors for stencils, the steal set
	// for fork-join — instead of n. That turns per-rank state from O(n)
	// into O(fan-out) and total communicator memory from O(n²) into O(n),
	// the difference between 2 GB and a few MB at 16K ranks.
	pendingTo []pendingEntry

	// slowNum/slowDen is the rank's straggler time scale (0 = nominal),
	// propagated to whichever process currently drives the rank.
	slowNum, slowDen int64

	// Per-rank traffic counters (summed by Comm.Stats). Each rank only
	// increments its own, which keeps window ops lock-free under parallel
	// host execution.
	getBytes, putBytes uint64
	getOps, putOps     uint64
	atomicOps          uint64
	flushWaits         uint64
	retries            uint64
	retryNs            uint64

	// Silent-data-corruption counters for bulk payloads this rank
	// originated (summed by Comm.Stats, like the traffic counters).
	sdcFlips    uint64
	sdcDetected uint64
	sdcRetrans  uint64
	sdcEscapes  uint64
}

// pendingEntry records the completion time of the latest outstanding
// nonblocking op bound for one target rank.
type pendingEntry struct {
	target int32
	t      sim.Time
}

// notePending folds completion time t for ops to target into the pending
// pair list, keeping the per-target maximum and pruning entries that are
// no longer in the rank's future. A rank's virtual clock is monotonic, so
// a pruned entry can never become waitable again; dropping it leaves every
// future FlushRank's behavior exactly unchanged.
func (r *Rank) notePending(target int, t, now sim.Time) {
	out := r.pendingTo[:0]
	for _, e := range r.pendingTo {
		if int(e.target) == target {
			if e.t > t {
				t = e.t
			}
			continue
		}
		if e.t > now {
			out = append(out, e)
		}
	}
	if t > now {
		out = append(out, pendingEntry{target: int32(target), t: t})
	}
	r.pendingTo = out
}

// pendingToTime returns the completion time of the latest outstanding op
// to target, or zero when nothing to target is outstanding.
func (r *Rank) pendingToTime(target int) sim.Time {
	for _, e := range r.pendingTo {
		if int(e.target) == target {
			return e.t
		}
	}
	return 0
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Comm returns the communicator.
func (r *Rank) Comm() *Comm { return r.c }

// Attach binds the simulated process that drives this rank. It must be
// called before any communication from the rank. The rank's straggler
// scale (if any) follows the binding: a thread migrating onto a slow rank
// slows down, and sheds the scale when it next attaches elsewhere.
func (r *Rank) Attach(p *sim.Proc) {
	r.proc = p
	p.SetTimeScale(r.slowNum, r.slowDen)
}

// SetSlowdown makes every duration charged on this rank advance num/den
// times slower (10/1 = a 10× straggler); num <= 0 restores nominal speed.
// Safe to call from engine callbacks at fault-window boundaries.
func (r *Rank) SetSlowdown(num, den int64) {
	r.slowNum, r.slowDen = num, den
	if r.proc != nil {
		r.proc.SetTimeScale(num, den)
	}
}

// Proc returns the driving process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Node returns the node hosting this rank.
func (r *Rank) Node() int { return r.c.net.Node(r.id) }

// retryFaults injects transient failures for a one-sided op from this
// rank to target, per the armed fault plan. Each failed attempt charges
// the plan's timeout plus a capped, seeded exponential backoff, records a
// KRetry span and the retry counters, and tries again. Failures are
// injected before the op's memory effect, so the caller applies its
// effect exactly once. An op still failing after MaxAttempts panics with
// a wrapped ErrRetriesExhausted (fail-stop). Without an injector this is
// a single nil-check.
func (r *Rank) retryFaults(target int) {
	in := r.c.inj
	if in == nil || target == r.id {
		return
	}
	attempt := 0
	for in.FailRMA(r.proc.Now(), r.id, target) {
		attempt++
		t0 := r.proc.Now()
		wait := in.Timeout() + in.Backoff(r.id, attempt)
		r.proc.Advance(wait)
		d := r.proc.Now() - t0 // straggler scaling may stretch the wait
		r.retries++
		r.retryNs += uint64(d)
		if r.c.tracer != nil {
			r.c.tracer.RecSpan(t0, d, r.id, trace.KRetry, int64(target), int64(attempt))
		}
		if attempt >= in.MaxAttempts() {
			panic(fmt.Errorf("%w: rank %d op to rank %d failed %d attempts under plan %q",
				ErrRetriesExhausted, r.id, target, attempt, in.Plan().Name))
		}
	}
}

// sdcWire models silent wire corruption of one bulk transfer and, when
// the end-to-end payload checksum is armed (SetSDCVerify), the
// detect-and-retransmit recovery loop. src is the intact source of the
// payload and landed the bytes the transfer materialized (the window
// segment for a Put, the caller's dst for a Get); the two alias distinct
// memory, so src always holds clean bytes to retransmit from. Each
// retransmission draws a fresh corruption decision — a retransmit can
// itself be corrupted — and re-charges the full issue cost (including
// transient-failure retries). Without an armed wire-corruption stream
// this is two cheap checks, keeping an SDC-free plan digest-identical to
// one with no Corruption at all.
func (r *Rank) sdcWire(src, landed []byte, target int) {
	in := r.c.inj
	if in == nil || target == r.id || !in.WireArmed() {
		return
	}
	for attempt := 1; ; attempt++ {
		bit, ok := in.CorruptWire(r.proc.Now(), r.id, target, len(landed))
		if !ok {
			return
		}
		r.sdcFlips++
		landed[bit>>3] ^= 1 << (bit & 7)
		if r.c.sdcReplays <= 0 {
			// No checksum armed: the flip lands silently and the program
			// computes on corrupted bytes.
			r.sdcEscapes++
			return
		}
		r.sdcDetected++
		r.c.tracer.Rec2(r.proc.Now(), r.id, trace.KSdcDetect, int64(target), int64(attempt))
		if attempt > r.c.sdcReplays {
			panic(fmt.Errorf("%w: rank %d transfer to rank %d corrupted %d times under plan %q",
				ErrSdcUnrecoverable, r.id, target, attempt, in.Plan().Name))
		}
		copy(landed, src)
		r.issue(target, len(landed))
		r.sdcRetrans++
	}
}

// ChargeAtomic charges the full origin-side cost of one remote atomic to
// target: fault-injected retries, then the (possibly perturbed) atomic
// round trip. Exported for the threading layer, whose steal protocol
// performs its own deque compare-and-swap outside any window.
func (r *Rank) ChargeAtomic(target int) {
	r.retryFaults(target)
	r.proc.Advance(r.c.net.AtomicTimeAt(r.proc.Now(), r.id, target))
	r.c.prof.RMA(r.id, target, profile.OpAtomic, 8)
}

// ChargeTransfer charges the cost of a blocking nbytes transfer from
// target (fault-injected retries, then the perturbed wire time). Exported
// for the threading layer's stack fetch on a successful steal.
func (r *Rank) ChargeTransfer(target, nbytes int) {
	r.retryFaults(target)
	r.proc.Advance(r.c.net.TransferTimeAt(r.proc.Now(), r.id, target, nbytes))
	r.c.prof.RMA(r.id, target, profile.OpGet, nbytes)
}

// issue models the origin-side cost and NIC serialization of a one-sided
// data transfer to target, returning nothing; completion time is folded
// into r.pending for the next Flush.
func (r *Rank) issue(target, nbytes int) {
	r.retryFaults(target)
	r.proc.Advance(r.c.net.MsgOverhead)
	now := r.proc.Now()
	if target == r.id {
		// Local window access: completes at issue time and never touches
		// the NIC, so it must not occupy the serialization pipeline (a
		// local op squeezed between two remote ops must not delay the
		// second one).
		if now > r.pending {
			r.pending = now
		}
		r.notePending(target, now, now)
		return
	}
	if r.nicFree < now {
		r.nicFree = now
	}
	ser := r.c.net.SerializationTime(r.id, target, nbytes)
	r.nicFree += ser
	wire := r.c.net.TransferTime(r.id, target, 0)
	// Link-degradation windows see the whole unperturbed wire occupancy
	// (serialization + latency) as their base.
	wire += r.c.net.TransferExtraAt(now, r.id, target, nbytes, ser+wire)
	done := r.nicFree + wire
	if done > r.pending {
		r.pending = done
	}
	r.notePending(target, done, now)
}

// Flush blocks until all nonblocking operations issued by this rank have
// completed, like MPI_Win_flush_all. The wait is a plain Advance, so when no
// other rank has an event due first it rides the kernel's zero-handoff fast
// path — a flush-heavy rank costs the host nothing per wait.
func (r *Rank) Flush() {
	if d := r.pending - r.proc.Now(); d > 0 {
		r.flushWaits++
		t0 := r.pending - d // == Now() before the wait
		r.proc.Advance(d)
		r.c.prof.Span(r.id, profile.SpanStall, t0, r.proc.Now()-t0)
	}
}

// FlushRank blocks until all nonblocking operations this rank issued to
// target have completed, like MPI_Win_flush: a targeted wait that lets a
// release fence drain each written home rank without stalling on traffic
// bound elsewhere. A FlushRank that has nothing to wait for is free.
func (r *Rank) FlushRank(target int) {
	if d := r.pendingToTime(target) - r.proc.Now(); d > 0 {
		r.flushWaits++
		t0 := r.proc.Now()
		r.proc.Advance(d)
		r.c.prof.Span(r.id, profile.SpanStall, t0, r.proc.Now()-t0)
	}
}

// PendingTime returns the virtual time at which all currently outstanding
// nonblocking operations will have completed — the earliest instant a
// Flush issued now could return. Used by communication-computation
// overlap to schedule work during the wait.
func (r *Rank) PendingTime() sim.Time { return r.pending }

// Barrier synchronizes all ranks in the communicator (SPMD regions only).
//
// Every rank records its virtual arrival time and parks; the last arriver
// computes the release instant — the maximum arrival time plus a
// dissemination cost of ceil(log2 n) one-way latencies — and schedules a
// keyed wake for every rank (itself included) at that instant, keyed by
// rank number. The release time and the wake order are therefore pure
// functions of the arrival times: which host goroutine happens to arrive
// last has no observable effect, which is what keeps barrier-paced phases
// bit-identical between serial and parallel host execution. The release
// offset is at least one link latency, satisfying the sharded engine's
// cross-shard lookahead contract.
func (r *Rank) Barrier() {
	c := r.c
	n := len(c.ranks)
	if n == 1 {
		c.barriers++
		return
	}
	arrive := r.proc.Now()
	c.barSlots[r.id].Store(arrive)
	if int(c.barArrived.Add(1)) == n {
		rel := sim.Time(0)
		for i := range c.barSlots {
			if t := sim.Time(c.barSlots[i].Load()); t > rel {
				rel = t
			}
		}
		steps := 0
		for m := 1; m < n; m *= 2 {
			steps++
		}
		rel += sim.Time(steps) * c.net.Latency
		c.barriers++
		c.barArrived.Store(0)
		for i := range c.ranks {
			r.proc.ScheduleWake(c.ranks[i].proc, rel, uint64(i))
		}
	}
	r.proc.Park()
	r.c.prof.Span(r.id, profile.SpanBarrier, arrive, r.proc.Now()-arrive)
}

// Win is a one-sided memory window: one segment of bytes per rank.
type Win struct {
	c    *Comm
	id   int // creation-order number, a deterministic sort key
	segs [][]byte
	gens []uint64 // bumped when a Grow reallocates a segment's backing array
}

// ID returns the window's creation-order number within its communicator.
// Windows are created in a deterministic order (setup or globally
// serialized allocation), so the ID is stable across runs and usable as a
// sort key where a pointer comparison would not be.
func (w *Win) ID() int { return w.id }

// NewWin creates a window where rank i exposes sizes[i] bytes. It is a
// setup-time (SPMD) operation.
//
// All segments are carved from one backing slab: at 16K ranks the
// alternative — one allocation per rank per window — costs tens of
// thousands of small heap objects before the first timestep runs. Each
// segment is a full-slice-expression subslice (capacity pinned to its
// length) so Grow's in-place extension path can never bleed into the next
// rank's bytes; growing past a segment's capacity reallocates just that
// segment, exactly as before.
func (c *Comm) NewWin(sizes []int) *Win {
	if len(sizes) != len(c.ranks) {
		panic(fmt.Sprintf("rma: NewWin got %d sizes for %d ranks", len(sizes), len(c.ranks)))
	}
	w := &Win{c: c, id: c.nwins, gens: make([]uint64, len(sizes))}
	c.nwins++
	w.segs = make([][]byte, len(sizes))
	total := 0
	for _, s := range sizes {
		total += s
	}
	slab := make([]byte, total)
	off := 0
	for i, s := range sizes {
		w.segs[i] = slab[off : off+s : off+s]
		off += s
	}
	return w
}

// NewUniformWin creates a window with the same segment size on every rank.
func (c *Comm) NewUniformWin(size int) *Win {
	sizes := make([]int, len(c.ranks))
	for i := range sizes {
		sizes[i] = size
	}
	return c.NewWin(sizes)
}

// Seg returns rank i's raw segment. Direct access is only legitimate from
// rank i itself or for setup/verification outside the simulation. Re-fetch
// the segment rather than caching it across a Grow: a beyond-capacity Grow
// reallocates the backing array, after which a cached slice still reads
// the pre-Grow contents but no longer aliases the window (Generation
// detects this).
func (w *Win) Seg(i int) []byte { return w.segs[i] }

// Generation returns how many times rank's segment has been reallocated
// by Grow. A slice taken from Seg remains an alias of the live segment
// exactly as long as the generation is unchanged — the regression handle
// for stale-slice bugs.
func (w *Win) Generation(rank int) uint64 { return w.gens[rank] }

// Grow extends rank's segment to at least size bytes, preserving contents —
// the equivalent of MPI_Win_create_dynamic + MPI_Win_attach for a heap that
// grows on demand.
//
// Concurrent-epoch safety: window ops move payload eagerly at issue time,
// so no in-flight transfer ever reads or writes the segment after Grow
// returns — growing mid-flight cannot corrupt an outstanding op. Reads of
// a just-grown segment by other ranks in the same epoch are well-defined
// under the kernel's baton discipline (global, or per-shard with Grows
// confined to globally serialized or barrier-separated phases): either the Grow fits
// within the existing capacity, in which case the segment is extended in
// place and every previously taken slice still aliases the same backing
// array, or the backing array is reallocated (with doubled capacity, so
// this is rare) and the generation counter is bumped; ops that re-resolve
// the segment through Seg — as all window ops do — always see the live
// array.
func (w *Win) Grow(rank, size int) {
	cur := w.segs[rank]
	if len(cur) >= size {
		return
	}
	if size <= cap(cur) {
		w.segs[rank] = cur[:size]
		return
	}
	newCap := 2 * cap(cur)
	if newCap < size {
		newCap = size
	}
	ns := make([]byte, size, newCap)
	copy(ns, cur)
	w.segs[rank] = ns
	w.gens[rank]++
}

// CheckAccess validates a window access without performing it, returning
// nil or an error wrapping ErrRankOutOfRange / ErrOutOfRange (test with
// errors.Is). The window ops call it internally and panic with the
// returned error: an invalid access is a programmer error by the time it
// reaches this layer (pgas validates user input first), but the typed
// value keeps the failure classifiable.
func (w *Win) CheckAccess(target, off, n int) error {
	if target < 0 || target >= len(w.segs) {
		return fmt.Errorf("%w: rank %d of %d", ErrRankOutOfRange, target, len(w.segs))
	}
	if off < 0 || n < 0 || off+n > len(w.segs[target]) {
		return fmt.Errorf("%w: [%d,%d) in %d-byte segment on rank %d",
			ErrOutOfRange, off, off+n, len(w.segs[target]), target)
	}
	return nil
}

func (w *Win) check(target, off, n int) {
	if err := w.CheckAccess(target, off, n); err != nil {
		panic(err)
	}
}

// Get starts a nonblocking read of len(dst) bytes from target's segment at
// off into dst. The data is guaranteed valid after the next Flush. Bulk
// payloads are subject to wire corruption under an armed Corruption plan
// (the segment stays intact; only dst is flipped, and the checksum
// retransmits from the segment).
func (w *Win) Get(r *Rank, target, off int, dst []byte) {
	w.check(target, off, len(dst))
	copy(dst, w.segs[target][off:])
	r.issue(target, len(dst))
	r.sdcWire(w.segs[target][off:off+len(dst)], dst, target)
	r.getOps++
	r.getBytes += uint64(len(dst))
	r.c.prof.RMA(r.id, target, profile.OpGet, len(dst))
}

// Put starts a nonblocking write of src into target's segment at off.
// Completion (remote visibility) is guaranteed after the next Flush. Bulk
// payloads are subject to wire corruption under an armed Corruption plan
// (the landed segment bytes are flipped; src stays intact, so the
// checksum retransmits from it).
func (w *Win) Put(r *Rank, src []byte, target, off int) {
	w.put(r, src, target, off, true)
}

func (w *Win) put(r *Rank, src []byte, target, off int, corruptible bool) {
	w.check(target, off, len(src))
	copy(w.segs[target][off:], src)
	r.issue(target, len(src))
	if corruptible {
		r.sdcWire(src, w.segs[target][off:off+len(src)], target)
	}
	r.putOps++
	r.putBytes += uint64(len(src))
	r.c.prof.RMA(r.id, target, profile.OpPut, len(src))
}

// GetUint64 is a blocking 8-byte read (issue + flush), as used for polling
// remote scalars such as epochs.
func (w *Win) GetUint64(r *Rank, target, off int) uint64 {
	w.check(target, off, 8)
	v := binary.LittleEndian.Uint64(w.segs[target][off:])
	r.issue(target, 8)
	r.c.prof.RMA(r.id, target, profile.OpGet, 8)
	r.Flush()
	return v
}

// PutUint64 is a nonblocking 8-byte write. Like GetUint64 and the
// atomics, scalar control words are assumed header-checksummed by the
// transport and are never corrupted (only bulk payloads are).
func (w *Win) PutUint64(r *Rank, v uint64, target, off int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.put(r, b[:], target, off, false)
}

// LocalUint64 reads an 8-byte value from the rank's own segment without
// any communication cost (local variables readable thanks to
// MPI_WIN_UNIFIED, as exploited by the lazy-release polling path).
func (w *Win) LocalUint64(r *Rank, off int) uint64 {
	w.check(r.id, off, 8)
	return binary.LittleEndian.Uint64(w.segs[r.id][off:])
}

// StoreLocalUint64 writes an 8-byte value into the rank's own segment.
func (w *Win) StoreLocalUint64(r *Rank, v uint64, off int) {
	w.check(r.id, off, 8)
	binary.LittleEndian.PutUint64(w.segs[r.id][off:], v)
}

// CompareAndSwap atomically replaces the uint64 at (target, off) with new if
// it equals old, returning the previous value. Blocking, like an RDMA
// atomic followed by a flush.
func (w *Win) CompareAndSwap(r *Rank, target, off int, old, new uint64) uint64 {
	w.check(target, off, 8)
	r.ChargeAtomic(target)
	prev := binary.LittleEndian.Uint64(w.segs[target][off:])
	if prev == old {
		binary.LittleEndian.PutUint64(w.segs[target][off:], new)
	}
	r.atomicOps++
	return prev
}

// FetchAndAdd atomically adds delta to the uint64 at (target, off) and
// returns the previous value. Blocking.
func (w *Win) FetchAndAdd(r *Rank, target, off int, delta uint64) uint64 {
	w.check(target, off, 8)
	r.ChargeAtomic(target)
	prev := binary.LittleEndian.Uint64(w.segs[target][off:])
	binary.LittleEndian.PutUint64(w.segs[target][off:], prev+delta)
	r.atomicOps++
	return prev
}

// MaxUint64 atomically raises the value at (target, off) to at least v,
// emulating MPI_Fetch_and_op(MPI_MAX) with a compare-and-swap loop as the
// paper does (footnote 6). It returns the value observed before the update.
func (w *Win) MaxUint64(r *Rank, target, off int, v uint64) uint64 {
	for {
		cur := binary.LittleEndian.Uint64(w.segs[target][off:])
		if cur >= v {
			r.ChargeAtomic(target)
			return cur
		}
		if prev := w.CompareAndSwap(r, target, off, cur, v); prev == cur {
			return prev
		}
	}
}
