package rma

import (
	"bytes"
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// harness spawns one proc per rank running body and runs the engine.
func harness(t *testing.T, n int, net netmodel.Params, body func(r *Rank)) *Comm {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, n, net)
	for i := 0; i < n; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			body(r)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetPutRoundTrip(t *testing.T) {
	net := netmodel.Default(2)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			src := []byte{1, 2, 3, 4, 5}
			w.Put(r, src, 1, 10)
			r.Flush()
			dst := make([]byte, 5)
			w.Get(r, 1, 10, dst)
			r.Flush()
			if !bytes.Equal(dst, src) {
				t.Errorf("got %v, want %v", dst, src)
			}
		}
		r.Barrier()
	})
}

// winFor lazily creates one shared window per communicator for tests.
var testWins = map[*Comm]*Win{}

func winFor(r *Rank) *Win {
	if w, ok := testWins[r.Comm()]; ok {
		return w
	}
	w := r.Comm().NewUniformWin(1 << 16)
	testWins[r.Comm()] = w
	return w
}

func TestFlushChargesTransferTime(t *testing.T) {
	net := netmodel.Default(1) // every rank on its own node: inter-node costs
	var elapsed sim.Time
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			start := r.Proc().Now()
			buf := make([]byte, 60000) // 60 KB: 10 µs at 6 B/ns
			w.Get(r, 1, 0, buf)
			r.Flush()
			elapsed = r.Proc().Now() - start
		}
		r.Barrier()
	})
	min := net.Latency + sim.Time(60000/net.Bandwidth)
	if elapsed < min {
		t.Errorf("flush took %d ns, want >= %d", elapsed, min)
	}
	if elapsed > 3*min {
		t.Errorf("flush took %d ns, unreasonably over %d", elapsed, min)
	}
}

func TestLocalAccessIsCheap(t *testing.T) {
	net := netmodel.Default(1)
	var local, remote sim.Time
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			buf := make([]byte, 4096)
			start := r.Proc().Now()
			w.Get(r, 0, 0, buf)
			r.Flush()
			local = r.Proc().Now() - start
			start = r.Proc().Now()
			w.Get(r, 1, 0, buf)
			r.Flush()
			remote = r.Proc().Now() - start
		}
		r.Barrier()
	})
	if local >= remote {
		t.Errorf("local access (%d) should be cheaper than remote (%d)", local, remote)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	net := netmodel.Default(2) // ranks 0,1 on node 0; rank 2 on node 1
	var intra, inter sim.Time
	harness(t, 3, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			buf := make([]byte, 4096)
			start := r.Proc().Now()
			w.Get(r, 1, 0, buf)
			r.Flush()
			intra = r.Proc().Now() - start
			start = r.Proc().Now()
			w.Get(r, 2, 0, buf)
			r.Flush()
			inter = r.Proc().Now() - start
		}
		r.Barrier()
	})
	if intra >= inter {
		t.Errorf("intra-node (%d) should be cheaper than inter-node (%d)", intra, inter)
	}
}

func TestCompareAndSwap(t *testing.T) {
	net := netmodel.Default(2)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.PutUint64(r, 7, 1, 0)
			r.Flush()
			if prev := w.CompareAndSwap(r, 1, 0, 7, 9); prev != 7 {
				t.Errorf("CAS prev = %d, want 7", prev)
			}
			if prev := w.CompareAndSwap(r, 1, 0, 7, 11); prev != 9 {
				t.Errorf("failed CAS prev = %d, want 9", prev)
			}
			if got := w.GetUint64(r, 1, 0); got != 9 {
				t.Errorf("value after failed CAS = %d, want 9", got)
			}
		}
		r.Barrier()
	})
}

func TestFetchAndAddSerializesAcrossRanks(t *testing.T) {
	net := netmodel.Default(4)
	c := harness(t, 4, net, func(r *Rank) {
		w := winFor(r)
		for i := 0; i < 10; i++ {
			w.FetchAndAdd(r, 0, 8, 1)
		}
		r.Barrier()
		if r.ID() == 0 {
			if got := w.LocalUint64(r, 8); got != 40 {
				t.Errorf("counter = %d, want 40", got)
			}
		}
	})
	if c.Stats().AtomicOps != 40 {
		t.Errorf("atomic ops = %d, want 40", c.Stats().AtomicOps)
	}
}

func TestMaxUint64(t *testing.T) {
	net := netmodel.Default(2)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.MaxUint64(r, 1, 16, 5)
			w.MaxUint64(r, 1, 16, 3) // must not lower the value
			if got := w.GetUint64(r, 1, 16); got != 5 {
				t.Errorf("max = %d, want 5", got)
			}
			w.MaxUint64(r, 1, 16, 12)
			if got := w.GetUint64(r, 1, 16); got != 12 {
				t.Errorf("max = %d, want 12", got)
			}
		}
		r.Barrier()
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	net := netmodel.Default(4)
	var maxBefore, minAfter sim.Time
	minAfter = 1 << 62
	harness(t, 4, net, func(r *Rank) {
		d := sim.Time(r.ID()) * 1000
		r.Proc().Advance(d)
		if now := r.Proc().Now(); now > maxBefore {
			maxBefore = now
		}
		r.Barrier()
		if now := r.Proc().Now(); now < minAfter {
			minAfter = now
		}
	})
	if minAfter < maxBefore {
		t.Errorf("some rank left the barrier at %d before the last arrived at %d", minAfter, maxBefore)
	}
}

func TestNonUniformWindowSizes(t *testing.T) {
	net := netmodel.Default(2)
	harness(t, 2, net, func(r *Rank) {
		c := r.Comm()
		w, ok := testNUWins[c]
		if !ok {
			w = c.NewWin([]int{100, 200})
			testNUWins[c] = w
		}
		if r.ID() == 1 {
			buf := make([]byte, 200)
			w.Get(r, 1, 0, buf) // full local segment is fine
			r.Flush()
			defer func() {
				if recover() == nil {
					t.Error("expected panic reading past rank 0's 100-byte segment")
				}
				r.Barrier()
			}()
			w.Get(r, 0, 50, buf) // 50+200 > 100: out of range
			return
		}
		r.Barrier()
	})
}

var testNUWins = map[*Comm]*Win{}

func TestTrafficStats(t *testing.T) {
	net := netmodel.Default(2)
	c := harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.Put(r, make([]byte, 100), 1, 0)
			w.Get(r, 1, 0, make([]byte, 40))
			r.Flush()
		}
		r.Barrier()
	})
	s := c.Stats()
	if s.PutBytes != 100 || s.GetBytes != 40 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLocalOpDoesNotOccupyNIC pins the fix for local window accesses
// charging NIC serialization: a local Put squeezed between two remote Gets
// must not shift the second Get's completion time. The reference schedule
// replaces the local Put with a bare Advance of the same CPU cost
// (MsgOverhead), which by construction cannot touch the NIC pipeline.
func TestLocalOpDoesNotOccupyNIC(t *testing.T) {
	net := netmodel.Default(2)
	const n = 1 << 16 // large enough that serialization time is visible

	run := func(localPutBetween bool) sim.Time {
		var flushed sim.Time
		harness(t, 2, net, func(r *Rank) {
			w := winFor(r)
			if r.ID() == 0 {
				buf := make([]byte, n)
				w.Get(r, 1, 0, buf)
				if localPutBetween {
					w.Put(r, buf, 0, 0) // local: must be NIC-free
				} else {
					r.Proc().Advance(net.MsgOverhead) // same CPU cost, no op
				}
				w.Get(r, 1, 0, buf)
				r.Flush()
				flushed = r.Proc().Now()
			}
			r.Barrier()
		})
		return flushed
	}

	with := run(true)
	without := run(false)
	if with != without {
		t.Errorf("second Get completed at %d with a local Put in between, %d without", with, without)
	}
}

// TestLocalOpCompletesAtIssueTime checks that a lone local Put is complete
// the moment issue returns: the subsequent Flush must not advance the clock.
func TestLocalOpCompletesAtIssueTime(t *testing.T) {
	net := netmodel.Default(2)
	harness(t, 2, net, func(r *Rank) {
		w := winFor(r)
		if r.ID() == 0 {
			w.Put(r, make([]byte, 1<<16), 0, 0)
			before := r.Proc().Now()
			r.Flush()
			if after := r.Proc().Now(); after != before {
				t.Errorf("Flush advanced the clock %d -> %d after a purely local Put", before, after)
			}
		}
		r.Barrier()
	})
}
