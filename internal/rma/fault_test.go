package rma

import (
	"errors"
	"testing"

	"ityr/internal/fault"
	"ityr/internal/netmodel"
	"ityr/internal/sim"
)

// faultHarness is harness with an injector armed on the communicator.
func faultHarness(t *testing.T, n int, plan fault.Plan, body func(r *Rank)) (*Comm, *fault.Injector) {
	t.Helper()
	e := sim.NewEngine()
	net := netmodel.Default(2)
	in := fault.NewInjector(plan, n)
	net.Perturb = in
	c := New(e, n, net)
	c.SetFaults(in)
	for i := 0; i < n; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			body(r)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return c, in
}

// TestTypedErrors: CheckAccess returns wrapped sentinel errors matchable
// with errors.Is, and check's panic value is the same error.
func TestTypedErrors(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, 2, netmodel.Default(2))
	w := c.NewUniformWin(64)
	if err := w.CheckAccess(5, 0, 8); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("bad rank: err = %v, want ErrRankOutOfRange", err)
	}
	if err := w.CheckAccess(-1, 0, 8); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("negative rank: err = %v, want ErrRankOutOfRange", err)
	}
	if err := w.CheckAccess(1, 60, 8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overrun: err = %v, want ErrOutOfRange", err)
	}
	if err := w.CheckAccess(1, 0, 64); err != nil {
		t.Errorf("in-range access: err = %v, want nil", err)
	}
	func() {
		defer func() {
			err, ok := recover().(error)
			if !ok || !errors.Is(err, ErrOutOfRange) {
				t.Errorf("check panic value = %v, want error wrapping ErrOutOfRange", err)
			}
		}()
		w.check(0, 1000, 8)
	}()
}

// TestRetryDeterminism: two engines running the same flaky plan finish at
// the same virtual time with identical retry counters.
func TestRetryDeterminism(t *testing.T) {
	plan := fault.PlanFlakyRMA(9)
	plan.RMA.FailProb = 0.2
	run := func() (sim.Time, Stats) {
		buf := make([]byte, 64)
		c, _ := faultHarness(t, 2, plan, func(r *Rank) {
			w := winFor(r)
			if r.ID() == 0 {
				for i := 0; i < 200; i++ {
					w.Put(r, buf, 1, 0)
					r.Flush()
				}
			}
			r.Barrier()
		})
		delete(testWins, c)
		return c.Engine().Now(), c.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1.Retries == 0 {
		t.Fatalf("20%% FailProb caused no retries over 200 flushed Puts")
	}
	if t1 != t2 || s1 != s2 {
		t.Errorf("runs diverged: t=%d/%d stats=%+v/%+v", t1, t2, s1, s2)
	}
}

// TestFetchAndAddExactlyOnce: failures are injected before the memory
// effect, so each retried FetchAndAdd lands exactly once even at a high
// failure rate.
func TestFetchAndAddExactlyOnce(t *testing.T) {
	plan := fault.PlanFlakyRMA(9)
	plan.RMA.FailProb = 0.5
	const perRank = 50
	c, in := faultHarness(t, 4, plan, func(r *Rank) {
		w := winFor(r)
		for i := 0; i < perRank; i++ {
			w.FetchAndAdd(r, 0, 0, 1)
		}
		r.Barrier()
	})
	w := testWins[c]
	delete(testWins, c) // winFor caches per-Comm; don't leak across tests
	if in.Stats().Injected == 0 {
		t.Fatalf("50%% FailProb injected nothing")
	}
	// Rank 0's window segment holds the counter; all 4 ranks added perRank.
	if n := le64(w.Seg(0)); n != 4*perRank {
		t.Errorf("counter = %d after retried FAAs, want %d (exactly-once violated)", n, 4*perRank)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// TestRetriesExhaustedPanics: an op that cannot stop failing hits the
// MaxAttempts fail-stop bound with a typed, errors.Is-able panic.
func TestRetriesExhaustedPanics(t *testing.T) {
	plan := fault.Plan{Name: "always-fail", Seed: 1, RMA: fault.RMAFaults{
		FailProb: 1, Timeout: sim.Microsecond, MaxAttempts: 3,
	}}
	e := sim.NewEngine()
	net := netmodel.Default(2)
	in := fault.NewInjector(plan, 2)
	net.Perturb = in
	c := New(e, 2, net)
	c.SetFaults(in)
	w := c.NewUniformWin(64)
	var recovered error
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			if r.ID() == 0 {
				defer func() {
					if err, ok := recover().(error); ok {
						recovered = err
					}
				}()
				w.GetUint64(r, 1, 0)
			}
		})
	}
	_ = e.Run() // rank 1 just exits; rank 0 recovers its own panic
	if !errors.Is(recovered, ErrRetriesExhausted) {
		t.Errorf("recovered %v, want error wrapping ErrRetriesExhausted", recovered)
	}
}

// TestGrowMidFlight is the regression for the Grow rewrite: a Put issued
// before a concurrent-epoch Grow must land in the grown segment, for both
// the in-place (within capacity) and reallocating paths, and Generation
// must advance only when the payload moves.
func TestGrowMidFlight(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, 2, netmodel.Default(2))
	w := c.NewWin([]int{64, 64})
	gen0 := w.Generation(1)
	for i := 0; i < 2; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			r.Attach(p)
			if r.ID() == 0 {
				src := []byte{0xAB, 0xCD}
				w.Put(r, src, 1, 10) // issued against the original segment
				// Grow before the flush: within capacity first (cap is at
				// least 64), then far past it to force reallocation.
				w.Grow(1, 64)
				w.Put(r, src, 1, 62)
				w.Grow(1, 4096)
				if w.Generation(1) == gen0 {
					t.Errorf("reallocating Grow did not bump the generation")
				}
				w.Put(r, []byte{0xEE}, 1, 4000) // lands in the new segment
				r.Flush()
			}
			r.Barrier()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	seg := w.Seg(1)
	if len(seg) != 4096 {
		t.Fatalf("grown segment length = %d, want 4096", len(seg))
	}
	if seg[10] != 0xAB || seg[11] != 0xCD {
		t.Errorf("pre-Grow Put lost: seg[10:12] = %x", seg[10:12])
	}
	if seg[62] != 0xAB || seg[63] != 0xCD {
		t.Errorf("post-in-place-Grow Put lost: seg[62:64] = %x", seg[62:64])
	}
	if seg[4000] != 0xEE {
		t.Errorf("post-realloc Put lost: seg[4000] = %x", seg[4000])
	}
	if w.Generation(0) != 0 {
		t.Errorf("untouched rank's generation moved")
	}
}

// TestGrowShrinkRequestIgnored: Grow to a smaller size is a no-op.
func TestGrowShrinkRequestIgnored(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, 1, netmodel.Default(1))
	w := c.NewUniformWin(128)
	w.Grow(0, 16)
	if len(w.Seg(0)) != 128 {
		t.Errorf("Grow shrank the segment to %d", len(w.Seg(0)))
	}
}

// TestBarrierWithStraggler: Barrier completes when one rank runs 10×
// slower, and the fast ranks wait for it (satellite: straggler-tolerant
// collective).
func TestBarrierWithStraggler(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, 4, netmodel.Default(2))
	work := 100 * sim.Microsecond
	var after [4]sim.Time
	for i := 0; i < 4; i++ {
		r := c.Rank(i)
		e.Spawn("rank", func(p *sim.Proc) {
			if r.ID() == 1 {
				r.SetSlowdown(10, 1)
			}
			r.Attach(p)
			p.Advance(work)
			r.Barrier()
			after[r.ID()] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ts := range after {
		if ts < 10*work {
			t.Errorf("rank %d left the barrier at %d, before the straggler's %d of compute",
				i, ts, 10*work)
		}
	}
}

// TestFaultFreeHotPathZeroAllocs pins the zero-overhead-when-off claim at
// the allocation level: with no injector armed, the retry/perturbation
// hooks on Put/Flush and the atomics are single nil-checks and must not
// allocate per operation.
func TestFaultFreeHotPathZeroAllocs(t *testing.T) {
	run := func(ops int) {
		e := sim.NewEngine()
		c := New(e, 2, netmodel.Default(2))
		w := c.NewUniformWin(1 << 12)
		buf := make([]byte, 64)
		for i := 0; i < 2; i++ {
			r := c.Rank(i)
			e.Spawn("rank", func(p *sim.Proc) {
				r.Attach(p)
				if r.ID() == 0 {
					for j := 0; j < ops; j++ {
						w.Put(r, buf, 1, 0)
						r.Flush()
						w.FetchAndAdd(r, 1, 128, 1)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	}
	const extra = 2048
	small := testing.AllocsPerRun(5, func() { run(64) })
	big := testing.AllocsPerRun(5, func() { run(64 + extra) })
	perOp := (big - small) / extra
	if perOp > 0.01 {
		t.Fatalf("%.4f allocations per RMA op with faults off (small %.1f, big %.1f), want 0",
			perOp, small, big)
	}
}
