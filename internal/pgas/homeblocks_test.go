package pgas

import (
	"testing"
)

// TestHomeBlockEvictionUnderMapBudget exercises §4.3.2: home blocks are
// dynamically mapped with reference counts and evicted under the
// memory-mapping-entry budget, so a process can access far more home
// memory than it can keep mapped.
func TestHomeBlockEvictionUnderMapBudget(t *testing.T) {
	cfg := Config{
		BlockSize:     256,
		SubBlockSize:  64,
		CacheSize:     4096,
		MaxHomeBlocks: 4, // only 4 home blocks mappable at once
		Policy:        WriteBack,
	}
	s := testCluster(t, 1, 1, cfg, func(l *Local) {
		// 16 blocks of local home memory, all accessed round-robin twice.
		base := l.AllocCollective(16*256, BlockDist)
		for pass := 0; pass < 2; pass++ {
			for b := 0; b < 16; b++ {
				addr := base + Addr(b*256)
				if pass == 0 {
					v, err := l.Checkout(addr, 256, Write)
					if err != nil {
						t.Fatalf("block %d: %v", b, err)
					}
					for i := range v {
						v[i] = byte(b)
					}
					l.Checkin(addr, 256, Write)
				} else {
					v, err := l.Checkout(addr, 256, Read)
					if err != nil {
						t.Fatalf("block %d pass 2: %v", b, err)
					}
					if v[0] != byte(b) || v[255] != byte(b) {
						t.Fatalf("block %d corrupted after home eviction", b)
					}
					l.Checkin(addr, 256, Read)
				}
			}
		}
	})
	// 32 block accesses through a 4-entry table must have evicted.
	if s.Stats.Mmaps < 16 {
		t.Fatalf("only %d mmaps; home blocks were not remapped under pressure", s.Stats.Mmaps)
	}
}

// TestHomeBlocksPinnedWhileCheckedOut verifies the too-much-checkout
// exception also applies to the home-block table (footnote path of §4.3.2).
func TestHomeBlocksPinnedWhileCheckedOut(t *testing.T) {
	cfg := Config{
		BlockSize:     256,
		SubBlockSize:  64,
		CacheSize:     4096,
		MaxHomeBlocks: 2,
		Policy:        WriteBack,
	}
	testCluster(t, 1, 1, cfg, func(l *Local) {
		base := l.AllocCollective(8*256, BlockDist)
		// Pin both home blocks.
		if _, err := l.Checkout(base, 256, Read); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Checkout(base+256, 256, Read); err != nil {
			t.Fatal(err)
		}
		// A third mapping cannot be made while both are pinned.
		if _, err := l.Checkout(base+512, 256, Read); err == nil {
			t.Fatal("checkout beyond the home-block budget succeeded while pinned")
		}
		l.Checkin(base, 256, Read)
		// Now one entry is evictable.
		if _, err := l.Checkout(base+512, 256, Read); err != nil {
			t.Fatalf("checkout after unpin failed: %v", err)
		}
		l.Checkin(base+512, 256, Read)
		l.Checkin(base+256, 256, Read)
	})
}
