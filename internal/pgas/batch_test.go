package pgas

import (
	"bytes"
	"testing"
)

// runCoalesceBody drives the write-back pattern shared by the coalescing
// tests: rank 0 writes one region spanning the boundary between rank 1's
// first two home blocks plus a second, hole-separated region in the second
// block, then release-fences. The home chunk is pre-filled with a sentinel
// so a put that illegally bridged the hole would destroy it.
func runCoalesceBody(t *testing.T, coalesce bool) *Space {
	t.Helper()
	cfg := smallCfg(WriteBack) // 256-byte blocks, 64-byte sub-blocks
	cfg.CoalesceWriteBack = coalesce
	return testCluster(t, 2, 1, cfg, func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockDist) // 2048-byte chunk per rank
		chunk := base + 2048                       // rank 1's home: blocks at +2048 and +2304
		sentinel := make([]byte, 2048)
		for i := range sentinel {
			sentinel[i] = 0xAB
		}
		if err := l.Put(sentinel, chunk); err != nil {
			t.Errorf("put sentinel: %v", err)
		}

		write := func(addr Addr, size uint64, fill byte) {
			v, err := l.Checkout(addr, size, Write)
			if err != nil {
				t.Errorf("checkout(%#x,%d): %v", addr, size, err)
				return
			}
			for i := range v {
				v[i] = fill
			}
			if err := l.Checkin(addr, size, Write); err != nil {
				t.Errorf("checkin(%#x,%d): %v", addr, size, err)
			}
		}
		// [chunk+200, chunk+300): 56 bytes in block 0, 44 in block 1 —
		// adjacent in rank 1's segment, mergeable into one Put.
		write(chunk+200, 100, 0x11)
		// [chunk+400, chunk+450): same block 1, but a hole at [300,400)
		// separates it — must remain its own Put.
		write(chunk+400, 50, 0x22)
		l.ReleaseFence()

		check := func(addr Addr, size uint64, want byte) {
			got, err := l.Get(addr, size)
			if err != nil {
				t.Errorf("get(%#x,%d): %v", addr, size, err)
				return
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{want}, int(size))) {
				t.Errorf("[%#x,%d): got %x.., want all %02x", addr, size, got[:4], want)
			}
		}
		check(chunk+200, 100, 0x11)
		check(chunk+400, 50, 0x22)
		check(chunk+300, 100, 0xAB) // the hole keeps its sentinel
		l.Rank().Barrier()
	})
}

// TestCoalesceAcrossBlockBoundaryWithHole checks that two dirty regions
// adjacent across a block boundary merge into one Put while a
// hole-separated region does not, with byte-identical home contents and
// traffic volume versus the unbatched path.
func TestCoalesceAcrossBlockBoundaryWithHole(t *testing.T) {
	off := runCoalesceBody(t, false)
	on := runCoalesceBody(t, true)

	if off.Stats.WriteBackOps != 3 {
		t.Errorf("unbatched WriteBackOps = %d, want 3", off.Stats.WriteBackOps)
	}
	if off.Batch != (BatchStats{}) {
		t.Errorf("unbatched run has nonzero batch stats: %+v", off.Batch)
	}
	if on.Stats.WriteBackOps != 2 {
		t.Errorf("coalesced WriteBackOps = %d, want 2 (merged boundary + separate hole run)", on.Stats.WriteBackOps)
	}
	if on.Stats.WriteBackBytes != off.Stats.WriteBackBytes {
		t.Errorf("coalescing changed write-back volume: %d vs %d bytes",
			on.Stats.WriteBackBytes, off.Stats.WriteBackBytes)
	}
	if on.Batch.WBRunsMerged != 1 || on.Batch.WBCoalescedBytes != 100 {
		t.Errorf("batch stats = %+v, want 1 run merged / 100 coalesced bytes", on.Batch)
	}
}

// streamRead sequentially reads n 256-byte blocks of rank 1's home chunk
// through the cache on rank 0, verifying each view against the pattern.
func streamRead(t *testing.T, l *Local, chunk Addr, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		addr := chunk + Addr(k*256)
		v, err := l.Checkout(addr, 256, Read)
		if err != nil {
			t.Errorf("checkout block %d: %v", k, err)
			return
		}
		for i, b := range v {
			if want := byte((int(addr-chunk) + i) % 251); b != want {
				t.Errorf("block %d byte %d = %#x, want %#x", k, i, b, want)
				break
			}
		}
		if err := l.Checkin(addr, 256, Read); err != nil {
			t.Errorf("checkin block %d: %v", k, err)
		}
	}
}

func fillChunk(t *testing.T, l *Local, chunk Addr) {
	t.Helper()
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := l.Put(data, chunk); err != nil {
		t.Errorf("fill: %v", err)
	}
}

// TestPrefetchClampedAtSpaceEnd checks that an 8-deep prefetch triggered
// near the end of the allocation stops at the boundary: the second demand
// miss prefetches exactly the six remaining blocks in one batched Get, and
// every subsequent read is a prefetch hit.
func TestPrefetchClampedAtSpaceEnd(t *testing.T) {
	cfg := smallCfg(WriteBack)
	cfg.PrefetchBlocks = 8
	s := testCluster(t, 2, 1, cfg, func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockDist)
		chunk := base + 2048 // rank 1's home: 8 blocks of 256 bytes
		fillChunk(t, l, chunk)
		streamRead(t, l, chunk, 8)
		l.Rank().Barrier()
	})
	if s.Batch.PrefetchOps != 1 || s.Batch.PrefetchedBlocks != 6 || s.Batch.PrefetchBytes != 6*256 {
		t.Errorf("prefetch stats = %+v, want 1 op / 6 blocks / %d bytes (clamped at space end)",
			s.Batch, 6*256)
	}
	if s.Stats.FetchOps != 2 {
		t.Errorf("FetchOps = %d, want 2 demand fetches (rest prefetched)", s.Stats.FetchOps)
	}
	if s.Batch.PrefetchHits != 6 || s.Batch.PrefetchMisses != 0 {
		t.Errorf("prefetch hits/misses = %d/%d, want 6/0", s.Batch.PrefetchHits, s.Batch.PrefetchMisses)
	}
}

// TestPrefetchUnderTinyCache streams through a cache holding only 4 blocks
// with an 8-deep prefetcher: speculation must survive evicting its own
// blocks (and never pinning or writing anything back) while every read
// still returns correct data.
func TestPrefetchUnderTinyCache(t *testing.T) {
	cfg := smallCfg(WriteBack)
	cfg.CacheSize = 4 * 256 // 4 cache blocks
	cfg.MaxHomeBlocks = 2   // tiny home-mapping budget on the side
	cfg.PrefetchBlocks = 8
	s := testCluster(t, 2, 1, cfg, func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockDist)
		chunk := base + 2048
		fillChunk(t, l, chunk)
		streamRead(t, l, chunk, 8)
		l.Rank().Barrier()
	})
	if s.Batch.PrefetchOps == 0 {
		t.Errorf("expected at least one prefetch under the tiny cache")
	}
	if s.Batch.PrefetchMisses == 0 {
		t.Errorf("an 8-deep prefetch into a 4-block cache must evict some of its own blocks unused: %+v", s.Batch)
	}
	if s.Stats.WriteBackOps != 0 {
		t.Errorf("read-only prefetch stream wrote back %d times", s.Stats.WriteBackOps)
	}
}
