package pgas

// The checkout-discipline validator (Config.Validate): deterministic,
// opt-in tracking of the access rights every checked-out view carries —
// byte interval, mode, owning task segment and rank, and the
// release/acquire epochs that order it against remote writes. The
// validator is pure host-side bookkeeping: it never advances virtual
// time, so a validated run follows the exact schedule of an unvalidated
// one up to the first violation, and with no violations the two runs are
// bit-identical (Space.Stats, traces, digests).
//
// Four rules are enforced, each named by a stable string that appears in
// the fail-fast error, the KViolation trace span, and the itytrace
// "validator" report section:
//
//   - write-under-read: a Write or ReadWrite checkout overlaps a region a
//     different task segment holds checked out (or the symmetric case: a
//     Read checkout overlaps an outstanding writable view). The writer's
//     checkin would clobber bytes the reader is entitled to, or the
//     reader copies bytes mid-update.
//   - conflicting-checkouts: two writable checkouts of overlapping
//     regions are outstanding at once from different task segments; the
//     later checkin silently overwrites the earlier one.
//   - use-after-checkin: a Checkin that matches no outstanding checkout
//     but does match a recently retired one — the task kept using rights
//     it had already returned (double checkin).
//   - unreleased-write: a readable checkout observes bytes whose last
//     writer is a task on another rank, and those bytes did not reach
//     home memory before the reader's most recent acquire fence. Under
//     the SC-for-DRF protocol such a read returns home bytes or stale
//     cache bytes nondeterministically — exactly the lost-update family
//     once tracked as a ROADMAP known bug.
//
// The happens-before ledger behind unreleased-write tracks, per written
// byte interval, the virtual time the bytes became home-visible — set at
// the instant of whatever operation puts them home: a release fence's
// write-back, a coalesced write-back run, a write-through or no-cache
// checkin, a cache-pressure flush, or a home-local checkin that stores
// straight into the home segment (rma.Put copies host bytes at the call
// instant, so the put's call time IS the visibility time). Each rank
// records the virtual time of its last completed acquire fence (which
// self-invalidates its cache). A remote write is proven visible iff it
// was home before the reader's last acquire: only then is every stale
// copy of it provably gone from the reader's cache. Virtual times are
// bit-identical across host shardings, so the verdicts are too. Any true
// release→acquire chain (fork handlers, steal acquires, migration
// fences) homes the writes before the dependent acquire completes, so
// data-race-free programs never trip the rule — including tasks reading
// their own writes after migrating, whose bytes were homed by the
// fork-time release handler or by earlier eviction.

import (
	"fmt"
	"sync"

	"ityr/internal/sim"
	"ityr/internal/trace"
)

// ViolationRule identifies a checkout-discipline rule (see the package
// comment of this file for semantics).
type ViolationRule int

// The validator's rules, in detection-priority order.
const (
	// VWriteUnderRead: writable checkout overlapping an outstanding
	// read-only view of another task (or the symmetric read-side case).
	VWriteUnderRead ViolationRule = iota
	// VConflictingCheckouts: two writable checkouts of overlapping
	// regions outstanding at once from different tasks.
	VConflictingCheckouts
	// VUseAfterCheckin: a checkin matching only an already-retired
	// checkout record (double checkin).
	VUseAfterCheckin
	// VUnreleasedWrite: a read observing a remote write no completed
	// release fence covers as of the reader's last acquire.
	VUnreleasedWrite
)

var ruleNames = [...]string{
	"write-under-read", "conflicting-checkouts", "use-after-checkin", "unreleased-write",
}

// String returns the rule's stable name — the string diagnostics, trace
// reports, and the DESIGN.md §5 rule table all use (e.g.
// "write-under-read").
func (r ViolationRule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// valRec is one outstanding (or recently retired) checkout's access right.
type valRec struct {
	lo, hi uint64
	mode   Mode
	rank   int
	task   int64
	t0     sim.Time // checkout time (retirement time once retired)
}

// writeRec is the last writer of one byte interval: who wrote it, when the
// write committed (checkin), and when its bytes reached home memory
// (homed < 0 while they are still only in the writer's cache).
type writeRec struct {
	lo, hi uint64
	rank   int
	task   int64
	t      sim.Time
	homed  sim.Time // virtual time the bytes became home-visible; -1 = not yet
}

// retiredRing bounds the use-after-checkin lookback window.
const retiredRing = 128

// validator holds the space-global discipline state. All methods are
// mutex-guarded: checkout/checkin traffic is serialized by the engine's
// fork-join phase, but SPMD-phase accesses may run on parallel host
// shards and the reports must stay identical (and race-free) either way.
type validator struct {
	space *Space

	mu      sync.Mutex
	out     []valRec // outstanding checkouts, all ranks, append order
	retired []valRec // ring of recently retired checkouts
	retPos  int
	writes  []writeRec
	acqT    []sim.Time // virtual time of each rank's last completed acquire fence
	viol    []trace.ViolationRecord
}

func newValidator(s *Space, nranks int) *validator {
	return &validator{space: s, acqT: make([]sim.Time, nranks)}
}

// winOf resolves a global range's start to (window ID, home-segment
// offset) for the diagnostics; (-1, 0) when the range is unresolvable
// (e.g. the allocation was freed between the access and the report).
func (v *validator) winOf(lo, hi uint64) (int, int64) {
	a, err := v.space.findAlloc(lo, hi-lo)
	if err != nil {
		return -1, 0
	}
	_, win, off := v.space.blockHome(a, lo)
	return win.ID(), int64(off)
}

// record logs one violation: full ViolationRecord for the report, a
// KViolation span on the trace timeline, and the fail-fast error the
// triggering call returns. t0 is the conflicting earlier event's time,
// now the access that tripped the rule.
func (v *validator) record(rule ViolationRule, lo, hi uint64, rank int, task int64,
	otherRank int, otherTask int64, t0, now sim.Time, detail string) error {
	win, off := v.winOf(lo, hi)
	rec := trace.ViolationRecord{
		Time: int64(t0), Dur: int64(now - t0),
		Rank: rank, Task: task, OtherRank: otherRank, OtherTask: otherTask,
		Rule: rule.String(), Lo: lo, Hi: hi, Win: win, Off: off,
		Detail: detail,
	}
	v.viol = append(v.viol, rec)
	v.space.TraceLog.RecSpan(t0, now-t0, rank, trace.KViolation, int64(rule), task)
	return fmt.Errorf("%w [%s]: %s", ErrViolation, rule, detail)
}

func overlap(aLo, aHi, bLo, bHi uint64) (uint64, uint64, bool) {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	return lo, hi, lo < hi
}

// onCheckout validates a checkout of [lo, hi) before any cache state
// changes. A violation fails the checkout fast. Clean checkouts are
// registered separately (registerCheckout) once the checkout succeeds, so
// capacity/range failures leave no ghost rights.
func (v *validator) onCheckout(l *Local, lo, hi uint64, mode Mode) error {
	now := l.rank.Proc().Now()
	rank := l.rank.ID()
	task := v.space.taskOf(rank)
	v.mu.Lock()
	defer v.mu.Unlock()

	// Concurrent-checkout rules: scan the outstanding rights of other
	// task segments for overlap.
	for i := range v.out {
		o := &v.out[i]
		if o.task == task && o.rank == rank {
			continue
		}
		oLo, oHi, ok := overlap(lo, hi, o.lo, o.hi)
		if !ok {
			continue
		}
		bothWrite := mode != Read && o.mode != Read
		rule := VWriteUnderRead
		if bothWrite {
			rule = VConflictingCheckouts
		} else if mode == Read && o.mode == Read {
			continue // concurrent readers are the contract's happy path
		}
		detail := fmt.Sprintf(
			"task %d on rank %d checked out [%#x,%#x) for %v while task %d on rank %d holds [%#x,%#x) for %v (overlap [%#x,%#x))",
			task, rank, lo, hi, mode, o.task, o.rank, o.lo, o.hi, o.mode, oLo, oHi)
		return v.record(rule, oLo, oHi, rank, task, o.rank, o.task, o.t0, now, detail)
	}

	// Unreleased-write rule: a readable checkout must only observe remote
	// writes that were home-visible before this rank's last acquire fence
	// invalidated its cache.
	if mode != Write {
		for i := range v.writes {
			w := &v.writes[i]
			if w.rank == rank {
				continue // own cache: a rank always sees its own writes
			}
			oLo, oHi, ok := overlap(lo, hi, w.lo, w.hi)
			if !ok {
				continue
			}
			if w.homed >= 0 && w.homed <= v.acqT[rank] {
				continue // homed before our acquire: properly synchronized
			}
			why := fmt.Sprintf("the write reached home at %d ns, after the reader's last acquire fence at %d ns", w.homed, v.acqT[rank])
			if w.homed < 0 {
				why = "the write is still unflushed in the writer's cache"
			}
			detail := fmt.Sprintf(
				"task %d on rank %d checked out [%#x,%#x) for %v, observing [%#x,%#x) written by task %d on rank %d with no release covering the write before the reader's last acquire (%s)",
				task, rank, lo, hi, mode, oLo, oHi, w.task, w.rank, why)
			return v.record(VUnreleasedWrite, oLo, oHi, rank, task, w.rank, w.task, w.t, now, detail)
		}
	}

	return nil
}

// registerCheckout records a successful checkout as an outstanding access
// right. t0 is the time Checkout began.
func (v *validator) registerCheckout(l *Local, lo, hi uint64, mode Mode, t0 sim.Time) {
	rank := l.rank.ID()
	task := v.space.taskOf(rank)
	v.mu.Lock()
	v.out = append(v.out, valRec{lo: lo, hi: hi, mode: mode, rank: rank, task: task, t0: t0})
	v.mu.Unlock()
}

// onCheckin retires the matching outstanding right and, for written
// modes, records the interval's new last writer.
func (v *validator) onCheckin(l *Local, lo, hi uint64, mode Mode) {
	now := l.rank.Proc().Now()
	rank := l.rank.ID()
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.out) - 1; i >= 0; i-- {
		o := v.out[i]
		if o.rank != rank || o.lo != lo || o.hi != hi || o.mode != mode {
			continue
		}
		v.out = append(v.out[:i], v.out[i+1:]...)
		o.t0 = now
		if len(v.retired) < retiredRing {
			v.retired = append(v.retired, o)
		} else {
			v.retired[v.retPos] = o
			v.retPos = (v.retPos + 1) % retiredRing
		}
		if mode != Read {
			v.noteWrite(lo, hi, rank, o.task, now)
		}
		return
	}
}

// noteWrite installs [lo, hi) as last-written by (rank, task), splitting
// any previous writers' records around it.
func (v *validator) noteWrite(lo, hi uint64, rank int, task int64, t sim.Time) {
	keep := make([]writeRec, 0, len(v.writes)+2)
	for _, w := range v.writes {
		if w.hi <= lo || w.lo >= hi {
			keep = append(keep, w)
			continue
		}
		if w.lo < lo {
			c := w
			c.hi = lo
			keep = append(keep, c)
		}
		if w.hi > hi {
			c := w
			c.lo = hi
			keep = append(keep, c)
		}
	}
	keep = append(keep, writeRec{lo: lo, hi: hi, rank: rank, task: task, t: t, homed: -1})
	v.writes = keep
}

// markHomed records that the bytes of [lo, hi) reached home memory at
// virtual time now: any write record overlapping the range becomes
// home-visible (splitting records homed only in part). The first homing
// wins — re-putting already-homed bytes cannot make them less visible.
func (v *validator) markHomed(lo, hi uint64, now sim.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keep := make([]writeRec, 0, len(v.writes)+2)
	for _, w := range v.writes {
		if w.homed >= 0 || w.hi <= lo || w.lo >= hi {
			keep = append(keep, w)
			continue
		}
		if w.lo < lo {
			c := w
			c.hi = lo
			keep = append(keep, c)
		}
		mid := w
		if lo > mid.lo {
			mid.lo = lo
		}
		if hi < mid.hi {
			mid.hi = hi
		}
		mid.homed = now
		keep = append(keep, mid)
		if w.hi > hi {
			c := w
			c.lo = hi
			keep = append(keep, c)
		}
	}
	v.writes = keep
}

// onMissingCheckin classifies a checkin with no outstanding match: if the
// same right was recently retired this is a double checkin
// (use-after-checkin); otherwise the caller falls back to the plain
// unmatched-checkin error.
func (v *validator) onMissingCheckin(l *Local, lo, hi uint64, mode Mode) error {
	now := l.rank.Proc().Now()
	rank := l.rank.ID()
	task := v.space.taskOf(rank)
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.retired) - 1; i >= 0; i-- {
		o := v.retired[(v.retPos+i)%len(v.retired)]
		if o.rank != rank || o.lo != lo || o.hi != hi || o.mode != mode {
			continue
		}
		detail := fmt.Sprintf(
			"task %d on rank %d checked in [%#x,%#x) %v again: task %d already checked it in; the view's rights were returned and may have been recycled",
			task, rank, lo, hi, mode, o.task)
		return v.record(VUseAfterCheckin, lo, hi, rank, task, o.rank, o.task, o.t0, now, detail)
	}
	return nil
}

// onAcquire records the completion time of rank's acquire fence (whose
// self-invalidation purged every stale copy from its cache). Soundness
// note (no false positives): a true release→acquire chain homes the
// writes at a virtual time no later than the dependent acquire — the
// lazy-release poll loop waits for the write-back, and migration fences
// release on the old rank before the thread resumes — so the comparison
// homed <= acqT always admits properly synchronized reads.
func (v *validator) onAcquire(rank int, now sim.Time) {
	v.mu.Lock()
	v.acqT[rank] = now
	v.mu.Unlock()
}

// Violations returns the violations recorded so far, ordered by the time
// the rule tripped (ties by rank, then global offset) so serial and
// host-sharded runs of the same program report identically.
func (v *validator) Violations() []trace.ViolationRecord {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := append([]trace.ViolationRecord(nil), v.viol...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(&out[j], &out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b *trace.ViolationRecord) bool {
	ae, be := a.Time+a.Dur, b.Time+b.Dur
	if ae != be {
		return ae < be
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Lo < b.Lo
}
