package pgas

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// TestRandomGeometryMatchesReference fuzzes the cache configuration itself:
// random block sizes, sub-block sizes, cache capacities, rank counts,
// policies and distributions, each driven through a random DRF access
// sequence against a host-side reference array. This catches geometry
// arithmetic bugs (block/sub-block boundary handling, padding clipping,
// eviction under odd capacities) that fixed-geometry tests cannot.
func TestRandomGeometryMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random geometry.
		blockSize := 64 << rng.Intn(5) // 64..1024
		sub := blockSize >> rng.Intn(3)
		if sub < 16 {
			sub = 16
		}
		for blockSize%sub != 0 {
			sub /= 2
		}
		nblocks := 2 + rng.Intn(30)
		cfg := Config{
			BlockSize:    blockSize,
			SubBlockSize: sub,
			CacheSize:    nblocks * blockSize,
			Policy:       Policies[rng.Intn(len(Policies))],
			SharedCache:  rng.Intn(2) == 0,
		}
		nranks := 1 + rng.Intn(6)
		cpn := 1 + rng.Intn(3)
		dist := DistPolicy(rng.Intn(2))
		size := 1 + rng.Intn(4096)
		maxChunk := nblocks * blockSize / 2 // keep checkouts well inside capacity
		if maxChunk > size {
			maxChunk = size
		}

		ref := make([]byte, size)
		failed := ""

		e := sim.NewEngine()
		c := rma.New(e, nranks, netmodel.Default(cpn))
		s := New(c, cfg, nil)
		for i := 0; i < nranks; i++ {
			l := s.Local(i)
			e.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
				l.Rank().Attach(p)
				if l.Rank().ID() != 0 {
					l.Rank().Barrier()
					return
				}
				base := l.AllocCollective(uint64(size), dist)
				for op := 0; op < 200 && failed == ""; op++ {
					off := rng.Intn(size)
					n := 1 + rng.Intn(maxChunk)
					if off+n > size {
						n = size - off
					}
					mode := Mode(rng.Intn(3))
					v, err := l.Checkout(base+Addr(off), uint64(n), mode)
					if err != nil {
						failed = fmt.Sprintf("op %d: checkout(%d,%d,%v): %v", op, off, n, mode, err)
						return
					}
					switch mode {
					case Read:
						for i := range v {
							if v[i] != ref[off+i] {
								failed = fmt.Sprintf("op %d: read byte %d = %d, want %d (geom b=%d sb=%d cap=%d pol=%v shared=%v dist=%v)",
									op, off+i, v[i], ref[off+i], blockSize, sub, nblocks, cfg.Policy, cfg.SharedCache, dist)
								return
							}
						}
					case Write, ReadWrite:
						if mode == ReadWrite {
							for i := range v {
								if v[i] != ref[off+i] {
									failed = fmt.Sprintf("op %d: RMW byte %d = %d, want %d", op, off+i, v[i], ref[off+i])
									return
								}
							}
						}
						for i := range v {
							v[i] = byte(rng.Intn(256))
							ref[off+i] = v[i]
						}
					}
					if err := l.Checkin(base+Addr(off), uint64(n), mode); err != nil {
						failed = fmt.Sprintf("op %d: checkin: %v", op, err)
						return
					}
					if rng.Intn(8) == 0 {
						l.ReleaseFence()
						l.AcquireFence()
					}
				}
				l.Rank().Barrier()
			})
		}
		if err := e.Run(); err != nil {
			if failed == "" {
				failed = err.Error()
			}
		}
		if failed != "" {
			t.Logf("seed %d: %s", seed, failed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
