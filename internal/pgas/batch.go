package pgas

// Communication batching for the software cache (Config.CoalesceWriteBack
// and Config.PrefetchBlocks): the paper's observation (§4, Fig. 6) is that
// the checkout/checkin cache wins by turning many fine-grained transfers
// into few large one-sided ops. Two mechanisms implement that here:
//
//   - Write-back coalescing: dirty regions are gathered over all dirty
//     blocks, resolved to (window, home rank, segment offset), and runs
//     that land contiguously in the same home segment — which includes
//     consecutive blocks of the same home, since a home's blocks occupy
//     consecutive segment offsets under every distribution policy — are
//     shipped as a single rma.Put. Holes are never bridged: merging only
//     exactly-adjacent runs writes the same bytes with fewer messages,
//     so simulated time can only improve. Adjacent dirty regions within
//     one block are already merged by region.Set; the gather adds the
//     cross-block dimension. Release fences then flush once per written
//     target rank (rma.FlushRank) instead of waiting on all traffic.
//
//   - Sequential prefetch: when a cache miss extends a run of ascending
//     same-home block accesses, up to PrefetchBlocks lookahead blocks of
//     that home are fetched in one batched rma.Get issued alongside the
//     demand fetch (the checkout's existing flush covers it). Prefetched
//     blocks are unpinned and evict normally; under cache pressure the
//     prefetcher simply stops rather than writing back or evicting
//     anything on behalf of speculation.
//
// Prefetch is additionally gated by a per-rank confidence counter, the
// classic throttle on hardware stream prefetchers: a demand hit on a
// prefetched block earns pfHitCredit, a prefetched block discarded
// unread (evicted or invalidated) costs one, and speculation pauses at
// zero credit. Accuracy depends on geometry — under a block-cyclic
// distribution the same-home lookahead sits nranks blocks away, which
// pays off for long streams and is pure waste for short ones — and the
// counter lets one binary default (prefetch on) serve both: inaccurate
// regimes drain the credit within a few wasted batches and the
// prefetcher goes quiet, while any late hit on a leftover speculative
// block re-opens it for another probe. All bookkeeping is per-rank
// integers, so runs stay deterministic.

import (
	"fmt"
	"sort"

	"ityr/internal/memblock"
	"ityr/internal/region"
	"ityr/internal/rma"
	"ityr/internal/trace"
)

// Prefetch confidence-counter parameters. The initial grant bounds the
// waste a never-accurate workload can incur (a few lookahead batches);
// the hit reward keeps the prefetcher open whenever accuracy stays above
// ~1/(1+pfHitCredit); the cap bounds how long a workload that turns
// inaccurate keeps speculating on past glory.
const (
	pfInitCredit = 4
	pfHitCredit  = 2
	pfMaxCredit  = 64
)

// pfHit credits a demand hit on a prefetched block.
func (l *Local) pfHit() {
	l.space.Batch.PrefetchHits++
	if l.pfCredit += pfHitCredit; l.pfCredit > pfMaxCredit {
		l.pfCredit = pfMaxCredit
	}
}

// pfMiss debits a prefetched block discarded before any demand access.
func (l *Local) pfMiss() {
	l.space.Batch.PrefetchMisses++
	if l.pfCredit > 0 {
		l.pfCredit--
	}
}

// wbRun is one contiguous dirty byte run resolved to its home location.
// iv is a snapshot: issuing the puts advances virtual time, during which a
// node-mate sharing the cache may register new dirty regions, so only the
// snapshot is flushed and cleared.
type wbRun struct {
	cb     *memblock.Block
	iv     region.Interval // global addresses
	win    *rma.Win
	winID  int // win.ID(): the deterministic sort key
	home   int
	segOff int // iv.Lo's offset in the home's window segment
}

// gatherRun records one dirty interval of cb for the next issueRuns.
func (l *Local) gatherRun(cb *memblock.Block, iv region.Interval) {
	s := l.space
	bs := uint64(s.cfg.BlockSize)
	g0 := Addr(uint64(cb.ID) * bs)
	a, err := s.findAlloc(Addr(iv.Lo), iv.Len())
	if err != nil {
		panic(fmt.Sprintf("pgas: dirty interval %v outside allocations: %v", iv, err))
	}
	home, win, segOff0 := s.blockHome(a, g0)
	l.wbRuns = append(l.wbRuns, wbRun{
		cb: cb, iv: iv, win: win, winID: win.ID(), home: home,
		segOff: segOff0 + int(iv.Lo-uint64(g0)),
	})
}

// issueRuns sorts the gathered runs by (window, home, segment offset),
// merges exactly-adjacent runs into single Puts, and issues them. It
// returns the sorted, deduplicated list of written target ranks (aliasing
// internal scratch — consume before the next gather). The runs themselves
// are left in place so the caller can clear the flushed intervals.
func (l *Local) issueRuns() []int {
	runs := l.wbRuns
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].winID != runs[j].winID {
			return runs[i].winID < runs[j].winID
		}
		if runs[i].home != runs[j].home {
			return runs[i].home < runs[j].home
		}
		return runs[i].segOff < runs[j].segOff
	})
	l.wbTargets = l.wbTargets[:0]
	for i := 0; i < len(runs); {
		j, n := i+1, int(runs[i].iv.Len())
		for j < len(runs) && runs[j].winID == runs[i].winID &&
			runs[j].home == runs[i].home && runs[j].segOff == runs[i].segOff+n {
			n += int(runs[j].iv.Len())
			j++
		}
		l.putRuns(runs[i:j], n)
		l.wbTargets = append(l.wbTargets, runs[i].home)
		i = j
	}
	sort.Ints(l.wbTargets)
	out := l.wbTargets[:0]
	for _, t := range l.wbTargets {
		if len(out) == 0 || out[len(out)-1] != t {
			out = append(out, t)
		}
	}
	l.wbTargets = out
	return out
}

// putRuns writes one merged group of adjacent runs (n total bytes) home as
// a single nonblocking Put. Multi-run groups stage through a reusable
// host-side buffer; the copy is bookkeeping, not simulated work. Each
// run's dirty interval is cleared here, at the Put's copy instant (rma.Put
// copies host bytes before charging time): a node-mate sharing the cache
// can check in new dirty bytes while the Put's time charge runs, and a
// deferred subtract of the stale gathered intervals would silently clear
// — and so lose — that newer data.
func (l *Local) putRuns(group []wbRun, n int) {
	s := l.space
	bs := uint64(s.cfg.BlockSize)
	win := group[0].win
	var src []byte
	if len(group) == 1 {
		r := group[0]
		b0 := uint64(r.cb.ID) * bs
		src = r.cb.Data[r.iv.Lo-b0 : r.iv.Hi-b0]
	} else {
		if cap(l.wbStage) < n {
			l.wbStage = make([]byte, n)
		}
		src = l.wbStage[:n]
		off := 0
		for _, r := range group {
			b0 := uint64(r.cb.ID) * bs
			off += copy(src[off:], r.cb.Data[r.iv.Lo-b0:r.iv.Hi-b0])
		}
		s.Batch.WBRunsMerged += uint64(len(group) - 1)
		s.Batch.WBCoalescedBytes += uint64(n)
	}
	for _, r := range group {
		r.cb.Dirty.Subtract(r.iv)
	}
	win.Put(l.rank, src, group[0].home, group[0].segOff)
	s.Stats.WriteBackOps++
	s.Stats.WriteBackBytes += uint64(n)
	s.TraceLog.Rec(l.rank.Proc().Now(), l.rank.ID(), trace.KWriteBack, int64(n))
	// Home-visible from the Put's copy instant (validator ledger).
	if v := s.val; v != nil {
		now := l.rank.Proc().Now()
		for _, r := range group {
			v.markHomed(r.iv.Lo, r.iv.Hi, now)
		}
	}
}

// resetRuns retires the gathered runs, dropping block references.
func (l *Local) resetRuns() {
	for i := range l.wbRuns {
		l.wbRuns[i] = wbRun{}
	}
	l.wbRuns = l.wbRuns[:0]
}

// writeBackCoalesced is the batched body of writeBackAll: it gathers every
// dirty interval of every cache block, issues them as coalesced Puts, and
// flushes each written target rank. Reports whether anything was written.
func (l *Local) writeBackCoalesced() bool {
	for _, cb := range l.cache.DirtyBlocks() {
		for _, iv := range cb.Dirty.Intervals() {
			l.gatherRun(cb, iv)
		}
	}
	if len(l.wbRuns) == 0 {
		return false
	}
	// putRuns clears each run's dirty interval at its Put's copy
	// instant, so dirty data a node-mate checks in mid-flush survives.
	targets := l.issueRuns()
	for _, t := range targets {
		l.rank.FlushRank(t)
	}
	l.resetRuns()
	return true
}

// pfBlock is one cache block filled by a batched prefetch Get.
type pfBlock struct {
	cb *memblock.Block
	n  uint64
}

// prefetch speculatively fetches up to Config.PrefetchBlocks lookahead
// blocks of the sequential run ending at the just-missed block g0 — all
// from homeRank, whose blocks occupy consecutive window-segment offsets —
// in a single batched Get. The Get completes under the calling checkout's
// flush. The lookahead is clamped at the end of the allocation (and, for
// noncollective memory, at the currently grown segment), stops at
// distribution-chunk boundaries, at already-cached blocks (keeping the Get
// contiguous), and at any cache-pressure Acquire failure.
func (l *Local) prefetch(a *allocation, g0 Addr, homeRank int, win *rma.Win, segOff0 int) {
	s := l.space
	bs := uint64(s.cfg.BlockSize)
	stride := Addr(bs)
	if a.base < ncBase && a.policy == BlockCyclicDist {
		stride = Addr(a.nranks * bs)
	}
	limit := a.end()
	if a.base >= ncBase {
		if ncLimit := a.base + Addr(len(win.Seg(homeRank))); ncLimit < limit {
			limit = ncLimit
		}
	}
	l.pfBlks = l.pfBlks[:0]
	total := 0
	for k := 1; k <= s.cfg.PrefetchBlocks; k++ {
		g := g0 + Addr(uint64(k))*stride
		if g >= limit {
			break // clamped at the end of the space
		}
		if a.base < ncBase {
			if hr, _ := a.homeOf(g, bs); hr != homeRank {
				break // distribution chunk boundary: the run leaves this home
			}
		}
		hi := g + Addr(bs)
		if hi > limit {
			hi = limit
		}
		bid := int64(uint64(g) / bs)
		if l.cache.Peek(bid) != nil {
			break // already cached: keep the batched Get contiguous
		}
		if s.cfg.SharedCache {
			l.rank.Proc().Advance(costSharedLock)
		}
		cb, evicted, err := l.cache.Acquire(bid)
		if err != nil {
			break // cache pressure: speculation never forces a write-back
		}
		if evicted != nil {
			if cb.Prefetched {
				l.pfMiss()
			}
			l.rank.Proc().Advance(costMmap)
			s.Stats.Mmaps++
			s.Stats.Evictions++
			s.TraceLog.Rec(l.rank.Proc().Now(), l.rank.ID(), trace.KEviction, evicted.ID)
		}
		if l.cache.SetMapped(cb, true) {
			l.rank.Proc().Advance(costMmap)
			s.Stats.Mmaps++
		}
		l.rank.Proc().Advance(costCheckoutBlock)
		cb.Prefetched = true
		cb.Valid.Add(region.Interval{Lo: uint64(g), Hi: uint64(hi)})
		l.pfBlks = append(l.pfBlks, pfBlock{cb: cb, n: uint64(hi - g)})
		total += int(hi - g)
		if hi < g+Addr(bs) {
			break // partial tail block ends the run
		}
	}
	if total == 0 {
		return
	}
	if cap(l.pfStage) < total {
		l.pfStage = make([]byte, total)
	}
	stage := l.pfStage[:total]
	win.Get(l.rank, homeRank, segOff0+int(bs), stage)
	off := 0
	for _, pb := range l.pfBlks {
		off += copy(pb.cb.Data[:pb.n], stage[off:])
	}
	s.Batch.PrefetchOps++
	s.Batch.PrefetchedBlocks += uint64(len(l.pfBlks))
	s.Batch.PrefetchBytes += uint64(total)
	s.TraceLog.Rec(l.rank.Proc().Now(), l.rank.ID(), trace.KPrefetch, int64(total))
}
