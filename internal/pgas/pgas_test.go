package pgas

import (
	"bytes"
	"math/rand"
	"testing"

	"ityr/internal/netmodel"
	"ityr/internal/rma"
	"ityr/internal/sim"
)

// testCluster runs body once per rank under the simulator.
func testCluster(t *testing.T, nranks, coresPerNode int, cfg Config, body func(l *Local)) *Space {
	t.Helper()
	e := sim.NewEngine()
	c := rma.New(e, nranks, netmodel.Default(coresPerNode))
	s := New(c, cfg, nil)
	for i := 0; i < nranks; i++ {
		l := s.Local(i)
		e.Spawn("rank", func(p *sim.Proc) {
			l.Rank().Attach(p)
			body(l)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func smallCfg(p Policy) Config {
	return Config{BlockSize: 256, SubBlockSize: 64, CacheSize: 4096, Policy: p}
}

func TestBlockDistributionHomes(t *testing.T) {
	testCluster(t, 4, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockDist)
		// chunk = align(1024, 256) = 1024 bytes per rank
		for r := 0; r < 4; r++ {
			h, err := l.Space().HomeRank(base + Addr(r*1024))
			if err != nil || h != r {
				t.Errorf("home of chunk %d = %d (%v), want %d", r, h, err, r)
			}
		}
		l.Rank().Barrier()
	})
}

func TestBlockCyclicDistributionHomes(t *testing.T) {
	testCluster(t, 4, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockCyclicDist)
		// blocks of 256 bytes round-robin over 4 ranks
		for b := 0; b < 16; b++ {
			h, err := l.Space().HomeRank(base + Addr(b*256))
			if err != nil || h != b%4 {
				t.Errorf("home of block %d = %d (%v), want %d", b, h, err, b%4)
			}
		}
		l.Rank().Barrier()
	})
}

func TestGetPutSpanHomeBoundaries(t *testing.T) {
	testCluster(t, 4, 1, smallCfg(NoCache), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(4096, BlockCyclicDist)
		src := make([]byte, 1000)
		for i := range src {
			src[i] = byte(i * 7)
		}
		if err := l.Put(src, base+100); err != nil { // spans 5 home blocks
			t.Fatal(err)
		}
		got, err := l.Get(base+100, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("Get after Put mismatch across home boundaries")
		}
		l.Rank().Barrier()
	})
}

func TestCheckoutRoundTripAllPolicies(t *testing.T) {
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			testCluster(t, 4, 1, smallCfg(pol), func(l *Local) {
				if l.Rank().ID() != 0 {
					l.Rank().Barrier()
					return
				}
				base := l.AllocCollective(2048, BlockCyclicDist)
				v, err := l.Checkout(base, 2048, Write)
				if err != nil {
					t.Fatal(err)
				}
				for i := range v {
					v[i] = byte(i)
				}
				if err := l.Checkin(base, 2048, Write); err != nil {
					t.Fatal(err)
				}
				l.ReleaseFence()
				l.AcquireFence()
				v, err = l.Checkout(base, 2048, Read)
				if err != nil {
					t.Fatal(err)
				}
				for i := range v {
					if v[i] != byte(i) {
						t.Fatalf("policy %v: byte %d = %d, want %d", pol, i, v[i], byte(i))
					}
				}
				if err := l.Checkin(base, 2048, Read); err != nil {
					t.Fatal(err)
				}
				l.Rank().Barrier()
			})
		})
	}
}

func TestCacheHitAvoidsRefetch(t *testing.T) {
	s := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 1 {
			l.Rank().Barrier()
			return
		}
		base := ncBase // rank 0's noncollective region
		_ = base
		l.Rank().Barrier()
	})
	_ = s
	// A more direct version: rank 1 reads rank 0's memory twice.
	var fetchesAfterFirst, fetchesAfterSecond uint64
	s2 := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			addr := l.AllocLocal(512)
			v, _ := l.Checkout(addr, 512, Write)
			for i := range v {
				v[i] = 42
			}
			l.Checkin(addr, 512, Write)
			l.ReleaseFence()
			shared[0] = addr
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		addr := shared[0]
		l.AcquireFence()
		if _, err := l.Checkout(addr, 512, Read); err != nil {
			t.Fatal(err)
		}
		l.Checkin(addr, 512, Read)
		fetchesAfterFirst = l.Space().Stats.FetchOps
		if _, err := l.Checkout(addr, 512, Read); err != nil {
			t.Fatal(err)
		}
		l.Checkin(addr, 512, Read)
		fetchesAfterSecond = l.Space().Stats.FetchOps
		l.Rank().Barrier()
	})
	_ = s2
	if fetchesAfterFirst == 0 {
		t.Fatal("first remote checkout did not fetch")
	}
	if fetchesAfterSecond != fetchesAfterFirst {
		t.Fatalf("second checkout fetched again: %d -> %d", fetchesAfterFirst, fetchesAfterSecond)
	}
}

// shared passes addresses between ranks in tests (engine-global state).
var shared [8]Addr

func TestWriteBackInvisibleUntilRelease(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(256, BlockDist) // homed on rank 0
			shared[0] = base
			// Write via rank 0's cache? Rank 0 is the home: writes are
			// direct. Use rank 1 as the writer instead below.
			l.Rank().Barrier() // A: alloc ready
			l.Rank().Barrier() // B: rank 1 wrote (no release)
			got, _ := l.Checkout(base, 1, Read)
			if got[0] != 0 {
				t.Error("dirty write leaked to home before release")
			}
			l.Checkin(base, 1, Read)
			l.Rank().Barrier() // C: let rank 1 release
			l.Rank().Barrier() // D: release done
			l.AcquireFence()
			got, _ = l.Checkout(base, 1, Read)
			if got[0] != 99 {
				t.Errorf("after release+acquire got %d, want 99", got[0])
			}
			l.Checkin(base, 1, Read)
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier() // A
		base := shared[0]
		v, err := l.Checkout(base, 1, ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		v[0] = 99
		l.Checkin(base, 1, ReadWrite)
		l.Rank().Barrier() // B
		l.Rank().Barrier() // C
		l.ReleaseFence()
		l.Rank().Barrier() // D
		l.Rank().Barrier()
	})
}

func TestWriteThroughVisibleAfterCheckin(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteThrough), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(256, BlockDist)
			shared[0] = base
			l.Rank().Barrier() // alloc ready
			l.Rank().Barrier() // rank 1 checked in
			got, _ := l.Checkout(base, 1, Read)
			if got[0] != 7 {
				t.Errorf("write-through data not at home: got %d, want 7", got[0])
			}
			l.Checkin(base, 1, Read)
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		v, _ := l.Checkout(shared[0], 1, ReadWrite)
		v[0] = 7
		l.Checkin(shared[0], 1, ReadWrite)
		l.Rank().Barrier()
		l.Rank().Barrier()
	})
}

func TestSubBlockFetchGranularity(t *testing.T) {
	s := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(1024, BlockDist) // all homed on rank 0
			shared[0] = base
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		// Read a single byte: the fetch should be one 64-byte sub-block.
		l.Checkout(shared[0]+3, 1, Read)
		l.Checkin(shared[0]+3, 1, Read)
		l.Rank().Barrier()
	})
	if s.Stats.FetchOps != 1 || s.Stats.FetchBytes != 64 {
		t.Fatalf("fetched %d ops / %d bytes, want 1 op / 64 bytes", s.Stats.FetchOps, s.Stats.FetchBytes)
	}
}

func TestEvictionUnderPressureKeepsData(t *testing.T) {
	// Cache of 4 KiB (16 blocks of 256); sweep a 16 KiB remote array.
	s := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(16384, BlockDist)
			// Fill via the uncached PUT API (a checkout of the remote half
			// would exceed the 4 KiB cache by design).
			src := make([]byte, 16384)
			for i := range src {
				src[i] = byte(i % 251)
			}
			if err := l.Put(src, base); err != nil {
				t.Fatal(err)
			}
			shared[0] = base
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		l.AcquireFence()
		base := shared[0]
		for off := 0; off < 16384; off += 256 {
			v, err := l.Checkout(base+Addr(off), 256, Read)
			if err != nil {
				t.Fatal(err)
			}
			for i := range v {
				if v[i] != byte((off+i)%251) {
					t.Fatalf("byte %d wrong after eviction sweep", off+i)
				}
			}
			l.Checkin(base+Addr(off), 256, Read)
		}
		l.Rank().Barrier()
	})
	if s.Stats.Evictions == 0 {
		t.Fatal("sweep of 4x-cache-size array caused no evictions")
	}
}

func TestTooMuchCheckout(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(16384, BlockDist)
			shared[0] = base
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		// 16 KiB checkout > 4 KiB cache on a remote region must fail.
		_, err := l.Checkout(shared[0], 16384, Read)
		if err == nil {
			t.Fatal("oversized checkout unexpectedly succeeded")
		}
		// The cache must remain usable afterwards.
		if _, err := l.Checkout(shared[0], 256, Read); err != nil {
			t.Fatalf("small checkout after failure: %v", err)
		}
		l.Checkin(shared[0], 256, Read)
		if l.OutstandingCheckouts() != 0 {
			t.Fatalf("outstanding = %d, want 0", l.OutstandingCheckouts())
		}
		l.Rank().Barrier()
	})
}

func TestNoncollectiveAllocFree(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			a := l.AllocLocal(100)
			b := l.AllocLocal(100)
			if a == b {
				t.Fatal("distinct allocations share an address")
			}
			if err := l.FreeLocal(a, 100); err != nil {
				t.Fatal(err)
			}
			c := l.AllocLocal(100)
			if c != a {
				t.Errorf("free list not reused: %#x vs %#x", c, a)
			}
			h, err := l.Space().HomeRank(a)
			if err != nil || h != 0 {
				t.Errorf("noncollective home = %d (%v), want 0", h, err)
			}
			shared[0] = b
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		// Remote rank writes to rank 0's noncollective memory and frees it.
		v, err := l.Checkout(shared[0], 100, Write)
		if err != nil {
			t.Fatal(err)
		}
		v[0] = 1
		l.Checkin(shared[0], 100, Write)
		l.ReleaseFence()
		if err := l.FreeLocal(shared[0], 100); err != nil {
			t.Fatalf("remote free: %v", err)
		}
		l.Rank().Barrier()
	})
}

func TestUnmatchedCheckinFails(t *testing.T) {
	testCluster(t, 1, 1, smallCfg(WriteBack), func(l *Local) {
		base := l.AllocCollective(256, BlockDist)
		if err := l.Checkin(base, 256, Read); err == nil {
			t.Error("checkin without checkout succeeded")
		}
		l.Checkout(base, 256, Read)
		if err := l.Checkin(base, 256, ReadWrite); err == nil {
			t.Error("checkin with wrong mode succeeded")
		}
		if err := l.Checkin(base, 256, Read); err != nil {
			t.Errorf("correct checkin failed: %v", err)
		}
	})
}

func TestWriteModeDoesNotFetch(t *testing.T) {
	s := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(512, BlockDist)
			shared[0] = base
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		v, err := l.Checkout(shared[0], 512, Write)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			v[i] = 5
		}
		l.Checkin(shared[0], 512, Write)
		l.Rank().Barrier()
	})
	if s.Stats.FetchOps != 0 {
		t.Fatalf("write-only checkout fetched %d times", s.Stats.FetchOps)
	}
}

func TestLazyReleaseProtocol(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBackLazy), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(256, BlockCyclicDist)
			shared[0] = base
			l.Rank().Barrier() // alloc ready

			// Write remotely-homed data (block 0 of block-cyclic with 2
			// ranks: block 0 → rank 0... use block 1 at offset 256? size
			// is 256 = 1 block homed on rank 0. Write to rank 1's nc
			// memory instead.
			l.Rank().Barrier() // rank 1 allocated
			tgt := shared[1]
			v, err := l.Checkout(tgt, 64, ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			v[0] = 123
			l.Checkin(tgt, 64, ReadWrite)
			// Lazy release: no write-back yet.
			h := l.ReleaseLazy()
			if !h.Needed {
				t.Fatal("lazy release with dirty cache returned Unneeded")
			}
			if l.DirtyBytes() == 0 {
				t.Fatal("dirty bytes flushed eagerly under lazy policy")
			}
			shared[2] = Addr(h.Epoch)
			l.Rank().Barrier() // handler published

			// Emulate the victim polling at fork/join until requested.
			for i := 0; i < 1000; i++ {
				l.Poll()
				if l.DirtyBytes() == 0 {
					break
				}
				l.Rank().Proc().Advance(1 * sim.Microsecond)
			}
			l.Rank().Barrier() // all done
			return
		}
		// Rank 1: the "thief" acquiring against rank 0's lazy release.
		l.Rank().Barrier()
		addr := l.AllocLocal(64)
		v, _ := l.Checkout(addr, 64, Write)
		v[0] = 0
		l.Checkin(addr, 64, Write)
		l.ReleaseFence()
		shared[1] = addr
		l.Rank().Barrier() // published our address
		l.Rank().Barrier() // rank 0 wrote + lazy-released
		h := ReleaseHandler{Rank: 0, Epoch: uint64(shared[2]), Needed: true}
		l.AcquireWith(h) // must force rank 0's write-back via its Poll
		got, err := l.Checkout(shared[1], 64, Read)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 123 {
			t.Errorf("after lazy acquire got %d, want 123", got[0])
		}
		l.Checkin(shared[1], 64, Read)
		l.Rank().Barrier()
	})
}

func TestRandomAccessMatchesReference(t *testing.T) {
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			const size = 8192
			ref := make([]byte, size)
			rng := rand.New(rand.NewSource(7))
			testCluster(t, 4, 2, smallCfg(pol), func(l *Local) {
				if l.Rank().ID() != 0 {
					l.Rank().Barrier()
					return
				}
				base := l.AllocCollective(size, BlockCyclicDist)
				// Single-rank random reads/writes against a host-side
				// reference array: catches stale-cache and lost-write bugs
				// in the single-process protocol paths.
				for op := 0; op < 400; op++ {
					off := rng.Intn(size - 64)
					n := 1 + rng.Intn(64)
					switch rng.Intn(3) {
					case 0: // write
						v, err := l.Checkout(base+Addr(off), uint64(n), Write)
						if err != nil {
							t.Fatal(err)
						}
						for i := range v {
							v[i] = byte(rng.Intn(256))
							ref[off+i] = v[i]
						}
						l.Checkin(base+Addr(off), uint64(n), Write)
					case 1: // read-modify-write
						v, err := l.Checkout(base+Addr(off), uint64(n), ReadWrite)
						if err != nil {
							t.Fatal(err)
						}
						for i := range v {
							if v[i] != ref[off+i] {
								t.Fatalf("op %d: RMW read byte %d = %d, want %d", op, off+i, v[i], ref[off+i])
							}
							v[i]++
							ref[off+i]++
						}
						l.Checkin(base+Addr(off), uint64(n), ReadWrite)
					case 2: // read
						v, err := l.Checkout(base+Addr(off), uint64(n), Read)
						if err != nil {
							t.Fatal(err)
						}
						for i := range v {
							if v[i] != ref[off+i] {
								t.Fatalf("op %d: read byte %d = %d, want %d", op, off+i, v[i], ref[off+i])
							}
						}
						l.Checkin(base+Addr(off), uint64(n), Read)
					}
					if rng.Intn(10) == 0 {
						l.ReleaseFence()
						l.AcquireFence()
					}
				}
				l.Rank().Barrier()
			})
		})
	}
}

func TestMmapCostsCharged(t *testing.T) {
	s := testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			base := l.AllocCollective(1024, BlockDist)
			shared[0] = base
			l.Rank().Barrier()
			l.Rank().Barrier()
			return
		}
		l.Rank().Barrier()
		l.Checkout(shared[0], 256, Read)
		l.Checkin(shared[0], 256, Read)
		l.Rank().Barrier()
	})
	if s.Stats.Mmaps == 0 {
		t.Fatal("no mmap charged for first-time cache block mapping")
	}
}
