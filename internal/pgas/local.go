package pgas

import (
	"fmt"
	"unsafe"

	"ityr/internal/memblock"
	"ityr/internal/prof"
	"ityr/internal/region"
	"ityr/internal/rma"
	"ityr/internal/trace"
)

// alignedBytes returns an n-byte slice whose backing array is 8-byte
// aligned, so checkout views can be reinterpreted as typed slices.
func alignedBytes(n uint64) []byte {
	if n == 0 {
		return nil
	}
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// Local is one rank's handle on the global address space. All cache state
// (cache blocks, home-block mappings, outstanding checkouts, epochs) is
// private to the rank, mirroring Itoyori's one-process-per-core design.
type Local struct {
	space *Space
	rank  *rma.Rank
	cache *memblock.Table
	home  *memblock.Table

	outstanding []checkoutRec

	// viewPool and piecePool recycle checkout view buffers and piece lists
	// retired by Checkin. Purely a host-allocation optimization: pooling
	// never touches simulated time, and a view's contents are either
	// undefined (Write) or fully overwritten from backing (Read modes), so
	// reuse is invisible to callers who honour the checkout contract.
	viewPool  [][]byte
	piecePool [][]piece

	// Write-back coalescing scratch (Config.CoalesceWriteBack): gathered
	// dirty runs, the staging buffer merged multi-run Puts ship from, and
	// the written-target list a release flushes rank by rank. Reused
	// across write-backs; all host-side bookkeeping.
	wbRuns    []wbRun
	wbStage   []byte
	wbTargets []int

	// Prefetch state (Config.PrefetchBlocks): the last block ID this rank
	// checked out through the cache path and the length of the current
	// ascending run, plus scratch for the blocks and bytes of one batched
	// lookahead Get. pfCredit is the confidence counter gating
	// speculation (see the constants in batch.go).
	lastBid  int64
	runLen   int
	pfCredit int
	pfBlks   []pfBlock
	pfStage  []byte

	// ProfCategory, when non-empty, redirects the time of subsequent
	// checkout/checkin calls to the named profiler category instead of
	// "Checkout"/"Checkin". The paper uses this to attribute the
	// single-element loads of Cilksort's binary search to "Get".
	ProfCategory string

	// SDC instrumentation (silent-data-corruption subsystem), driven by
	// the runtime's Protected wrapper around fork-free task segments.
	// While sdcDigestArmed, every view this rank commits at a written
	// checkin is folded into a streaming FNV-1a digest — the cheap
	// result fingerprint task replication compares. While sdcFlipArmed,
	// one deferred bit flip is applied to the first such view before it
	// commits, corrupting memory the way a real SDC would. Both are
	// host-side only (no simulated time), and the unarmed hot path is
	// two bool checks.
	sdcDigestArmed bool
	sdcDigest      uint64
	sdcFlipArmed   bool
	sdcFlipSel     uint64
	sdcFlipDone    bool
}

// FNV-1a parameters for the SDC write digest.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// SdcArmDigest starts streaming a digest over the bytes committed by this
// rank's subsequent written checkins.
func (l *Local) SdcArmDigest() {
	l.sdcDigestArmed = true
	l.sdcDigest = fnvOffset64
}

// SdcTakeDigest disarms the write digest and returns its value.
func (l *Local) SdcTakeDigest() uint64 {
	l.sdcDigestArmed = false
	return l.sdcDigest
}

// SdcArmFlip arms one deferred bit flip: the first view committed by a
// subsequent written checkin has bit (sel mod its size) flipped before it
// reaches backing memory.
func (l *Local) SdcArmFlip(sel uint64) {
	l.sdcFlipArmed = true
	l.sdcFlipSel = sel
	l.sdcFlipDone = false
}

// SdcTakeFlip disarms the deferred flip and reports whether it was
// applied (false means the protected segment committed no writes, so the
// caller must corrupt the task's return value instead).
func (l *Local) SdcTakeFlip() bool {
	l.sdcFlipArmed = false
	return l.sdcFlipDone
}

// sdcOnCheckin applies the armed deferred flip and/or folds the committed
// view into the streaming digest. Only called for non-empty written
// checkins while armed.
func (l *Local) sdcOnCheckin(view []byte) {
	if l.sdcFlipArmed && !l.sdcFlipDone && len(view) > 0 {
		bit := l.sdcFlipSel % uint64(len(view)*8)
		view[bit>>3] ^= 1 << (bit & 7)
		l.sdcFlipDone = true
	}
	if l.sdcDigestArmed {
		d := l.sdcDigest
		for _, b := range view {
			d = (d ^ uint64(b)) * fnvPrime64
		}
		l.sdcDigest = d
	}
}

// poolLimit bounds the per-rank recycling pools.
const poolLimit = 32

// getView returns an n-byte 8-aligned buffer, reusing a retired view when
// one is large enough.
func (l *Local) getView(n uint64) []byte {
	for i := len(l.viewPool) - 1; i >= 0; i-- {
		if b := l.viewPool[i]; uint64(cap(b)) >= n {
			last := len(l.viewPool) - 1
			l.viewPool[i] = l.viewPool[last]
			l.viewPool[last] = nil
			l.viewPool = l.viewPool[:last]
			return b[:n]
		}
	}
	return alignedBytes(n)
}

// putView retires a view buffer for reuse.
func (l *Local) putView(b []byte) {
	if cap(b) == 0 || len(l.viewPool) >= poolLimit {
		return
	}
	l.viewPool = append(l.viewPool, b[:0])
}

// getPieces returns an empty piece list with recycled capacity.
func (l *Local) getPieces() []piece {
	if n := len(l.piecePool); n > 0 {
		p := l.piecePool[n-1]
		l.piecePool[n-1] = nil
		l.piecePool = l.piecePool[:n-1]
		return p
	}
	return nil
}

// putPieces retires a piece list for reuse, dropping block references.
func (l *Local) putPieces(p []piece) {
	if cap(p) == 0 || len(l.piecePool) >= poolLimit {
		return
	}
	clear(p[:cap(p)])
	l.piecePool = append(l.piecePool, p[:0])
}

// piece describes where one contiguous part of a checked-out region lives.
type piece struct {
	g Addr // global address of the piece start
	n int  // length in bytes

	// Cache path: cb holds the bytes at cb.Data[g - blockBase].
	cb        *memblock.Block
	blockBase Addr

	// Home path: the bytes live in win.Seg(homeRank)[segOff:].
	hb       *memblock.Block
	homeRank int
	win      *rma.Win
	segOff   int
}

type checkoutRec struct {
	addr   Addr
	size   uint64
	mode   Mode
	view   []byte
	pieces []piece
}

// Rank returns the underlying communication endpoint.
func (l *Local) Rank() *rma.Rank { return l.rank }

// Space returns the global address space.
func (l *Local) Space() *Space { return l.space }

// blockHome resolves the home of the block starting at g0 within a.
func (s *Space) blockHome(a *allocation, g0 Addr) (rank int, win *rma.Win, off int) {
	if a.base >= ncBase {
		return int((a.base - ncBase) / ncSpan), a.win, int(g0 - a.base)
	}
	r, o := a.homeOf(g0, uint64(s.cfg.BlockSize))
	return r, a.win, o
}

func (l *Local) profAs(def string) int {
	if l.ProfCategory != "" {
		return l.space.prof.Category(l.ProfCategory)
	}
	return l.space.prof.Category(def)
}

// Checkout claims access to the global region [addr, addr+size) in the
// given mode and returns a view of it (§3.3). The view's contents are the
// up-to-date global data for Read and ReadWrite, and undefined for Write.
// Every Checkout must be paired with exactly one Checkin carrying the same
// arguments. Checkout fails with ErrTooMuchCheckout when the region cannot
// be pinned within the fixed-size cache; callers should then split the
// access into smaller chunks.
func (l *Local) Checkout(addr Addr, size uint64, mode Mode) ([]byte, error) {
	s := l.space
	t0 := l.rank.Proc().Now()
	cat := l.profAs(prof.CatCheckout)
	s.Stats.CheckoutCalls++
	s.Profile.CheckoutCall(l.rank.ID())

	if size == 0 {
		l.outstanding = append(l.outstanding, checkoutRec{addr: addr, size: 0, mode: mode})
		return nil, nil
	}

	// Discipline check before any cache state changes: a violating
	// checkout fails fast and leaves caches untouched. Registration of the
	// new access right happens at the success exits below, so failed
	// checkouts (capacity, range) leave no ghost rights behind.
	if v := s.val; v != nil {
		if err := v.onCheckout(l, addr, addr+size, mode); err != nil {
			return nil, err
		}
	}

	if s.cfg.Policy == NoCache {
		// The paper's baseline: checkout/checkin become GET/PUT on a
		// freshly allocated user buffer (§6.1).
		view := l.getView(size)
		if mode != Write {
			if err := l.getInto(addr, view); err != nil {
				return nil, err
			}
		}
		l.outstanding = append(l.outstanding, checkoutRec{addr: addr, size: size, mode: mode, view: view})
		if v := s.val; v != nil {
			v.registerCheckout(l, addr, addr+size, mode, t0)
		}
		d := l.rank.Proc().Now() - t0
		s.prof.Add(cat, l.rank.ID(), d)
		s.MetricCheckoutBytes.Observe(int64(size))
		s.TraceLog.RecSpan(t0, d, l.rank.ID(), trace.KCheckout, int64(size), 0)
		return view, nil
	}

	a, err := s.findAlloc(addr, size)
	if err != nil {
		return nil, err
	}
	bs := uint64(s.cfg.BlockSize)
	sbs := uint64(s.cfg.SubBlockSize)
	me := l.rank.ID()
	net := s.comm.Net()

	rec := checkoutRec{addr: addr, size: size, mode: mode, pieces: l.getPieces()}
	undo := func() {
		for _, p := range rec.pieces {
			if p.cb != nil {
				p.cb.Ref--
			} else {
				p.hb.Ref--
			}
		}
	}

	first := addr / bs
	last := (addr + size - 1) / bs
	for bid := first; bid <= last; bid++ {
		g0 := Addr(bid * bs)
		req := region.Interval{Lo: uint64(maxAddr(g0, addr)), Hi: uint64(minAddr(g0+Addr(bs), addr+Addr(size)))}
		homeRank, win, segOff0 := s.blockHome(a, g0)
		l.rank.Proc().Advance(costCheckoutBlock)

		if net.SameNode(homeRank, me) {
			// Home path: the block is (intra-node) shared memory, mapped
			// directly into the global view (§4.1). Home blocks are still
			// dynamically mapped and reference-counted (§4.3.2).
			hb, evicted, herr := l.home.Acquire(int64(bid))
			if herr != nil {
				undo()
				return nil, fmt.Errorf("%w: home blocks: %v", ErrTooMuchCheckout, herr)
			}
			if evicted != nil {
				l.rank.Proc().Advance(costMmap) // unmap the evicted mapping
				s.Stats.Mmaps++
			}
			if l.home.SetMapped(hb, true) {
				l.rank.Proc().Advance(costMmap)
				s.Stats.Mmaps++
			}
			hb.Ref++
			s.Stats.HitBytes += req.Len()
			s.Profile.CheckoutHit(me, req.Len())
			rec.pieces = append(rec.pieces, piece{
				g: Addr(req.Lo), n: int(req.Len()),
				hb: hb, homeRank: homeRank, win: win,
				segOff: segOff0 + int(Addr(req.Lo)-g0),
			})
			continue
		}

		// Cache path (Fig. 4).
		if s.cfg.SharedCache {
			// Concurrent processes contend on the shared table.
			l.rank.Proc().Advance(costSharedLock)
		}
		cb, err := l.acquireCacheBlock(int64(bid))
		if err != nil {
			undo()
			return nil, err
		}
		cb.Ref++
		wasPrefetched := cb.Prefetched
		cb.Prefetched = false
		var fetched uint64
		if mode == Write {
			cb.Valid.Add(req)
			s.Stats.HitBytes += req.Len()
			s.Profile.CheckoutHit(me, req.Len())
		} else if !cb.Valid.Contains(req) {
			// Fetch missing sub-blocks from the home (Fig. 4 lines 17-21).
			padded := region.Interval{
				Lo: req.Lo / sbs * sbs,
				Hi: (req.Hi + sbs - 1) / sbs * sbs,
			}
			if padded.Lo < uint64(g0) {
				padded.Lo = uint64(g0)
			}
			limit := uint64(g0) + bs
			if ncLimit := uint64(a.base) + uint64(len(win.Seg(homeRank))); a.base >= ncBase && ncLimit < limit {
				limit = ncLimit
			}
			if padded.Hi > limit {
				padded.Hi = limit
			}
			// Each Get advances virtual time (the rma issue cost), and
			// under a node-shared cache another rank can run inside that
			// window and check out, write, and check in bytes of this very
			// block. A missing-list snapshot taken once would then fetch
			// stale home bytes over the node-mate's freshly checked-in
			// dirty data — the shared-cache lost write once tracked as a ROADMAP known bug.
			// So the next missing interval is re-resolved against the
			// block's *current* valid set immediately before every fetch,
			// and marked valid at the copy instant: rma.Get copies host
			// bytes before charging time, so Add-then-Get validates the
			// bytes atomically in virtual time, and a concurrent
			// invalidation during the Get's time charge correctly strips
			// the just-added validity again.
			for {
				m, ok := cb.Valid.FirstMissing(padded)
				if !ok {
					break
				}
				dst := cb.Data[m.Lo-uint64(g0) : m.Hi-uint64(g0)]
				cb.Valid.Add(m)
				win.Get(l.rank, homeRank, segOff0+int(m.Lo-uint64(g0)), dst)
				s.Stats.FetchOps++
				s.Stats.FetchBytes += m.Len()
				s.Profile.CheckoutMiss(me, m.Len())
				fetched += m.Len()
				s.TraceLog.Rec(l.rank.Proc().Now(), me, trace.KCacheMiss, int64(m.Len()))
			}
			if ov := req.Len(); ov > fetched {
				s.Stats.HitBytes += ov - fetched
				s.Profile.CheckoutHit(me, ov-fetched)
			}
		} else {
			s.Stats.HitBytes += req.Len()
			s.Profile.CheckoutHit(me, req.Len())
			if wasPrefetched {
				l.pfHit()
			}
		}
		rec.pieces = append(rec.pieces, piece{
			g: Addr(req.Lo), n: int(req.Len()),
			cb: cb, blockBase: g0,
		})
		if s.cfg.PrefetchBlocks > 0 {
			// Sequential-run detection: a run extends when the block ID
			// advances by at most one home stride (1, or nranks under a
			// block-cyclic distribution, where a rank streaming the whole
			// array still steps block IDs by 1). A demand miss that
			// extends a run of length >= 2 triggers the lookahead fetch.
			strideBlocks := int64(1)
			if a.base < ncBase && a.policy == BlockCyclicDist {
				strideBlocks = int64(a.nranks)
			}
			switch d := int64(bid) - l.lastBid; {
			case d == 0:
				// Same block as last time: the run is unchanged.
			case d >= 1 && d <= strideBlocks:
				l.runLen++
			default:
				l.runLen = 1
			}
			l.lastBid = int64(bid)
			if fetched > 0 && l.runLen >= 2 && l.pfCredit > 0 {
				l.prefetch(a, g0, homeRank, win, segOff0)
			}
		}
	}

	// Wait for all fetches (MPI_Win_flush_all at Fig. 4 line 30). With
	// overlap enabled, the scheduler may run other tasks during the wait.
	if s.CommWait != nil {
		s.CommWait(l)
	} else {
		l.rank.Flush()
	}

	view := l.getView(size)
	if mode != Write {
		l.copyPieces(rec.pieces, view, addr, false)
	}
	rec.view = view
	l.outstanding = append(l.outstanding, rec)
	if v := s.val; v != nil {
		v.registerCheckout(l, addr, addr+size, mode, t0)
	}
	d := l.rank.Proc().Now() - t0
	s.prof.Add(cat, l.rank.ID(), d)
	s.MetricCheckoutBytes.Observe(int64(size))
	s.TraceLog.RecSpan(t0, d, me, trace.KCheckout, int64(size), 0)
	return view, nil
}

// acquireCacheBlock gets a cache block for bid, writing back all dirty data
// and retrying once if the cache is full of dirty blocks (§4.4).
func (l *Local) acquireCacheBlock(bid int64) (*memblock.Block, error) {
	cb, evicted, err := l.cache.Acquire(bid)
	if err == memblock.ErrNoEvictable {
		l.writeBackAll(prof.CatRelease)
		cb, evicted, err = l.cache.Acquire(bid)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTooMuchCheckout, err)
	}
	if evicted != nil {
		// The evicted identity's prefetch flag survives Acquire's reset
		// (see memblock.Block.Prefetched): still set means the speculative
		// bytes were evicted unused.
		if cb.Prefetched {
			l.pfMiss()
			cb.Prefetched = false
		}
		l.rank.Proc().Advance(costMmap)
		l.space.Stats.Mmaps++
		l.space.Stats.Evictions++
		l.space.TraceLog.Rec(l.rank.Proc().Now(), l.rank.ID(), trace.KEviction, evicted.ID)
	}
	if l.cache.SetMapped(cb, true) {
		l.rank.Proc().Advance(costMmap)
		l.space.Stats.Mmaps++
	}
	return cb, nil
}

// copyPieces moves bytes between the view and the backing blocks/segments.
// toBacking=false copies backing→view (checkout); true copies view→backing
// (checkin).
func (l *Local) copyPieces(pieces []piece, view []byte, addr Addr, toBacking bool) {
	for _, p := range pieces {
		v := view[p.g-addr : Addr(int(p.g-addr)+p.n)]
		var backing []byte
		if p.cb != nil {
			backing = p.cb.Data[p.g-p.blockBase : Addr(int(p.g-p.blockBase)+p.n)]
		} else {
			backing = p.win.Seg(p.homeRank)[p.segOff : p.segOff+p.n]
		}
		if toBacking {
			copy(backing, v)
		} else {
			copy(v, backing)
		}
	}
}

// Checkin completes a prior Checkout with identical arguments (§3.3). In
// Write or ReadWrite mode the whole region is considered written: it is
// propagated to its home immediately (write-through) or recorded dirty for
// the next release fence (write-back).
func (l *Local) Checkin(addr Addr, size uint64, mode Mode) error {
	s := l.space
	t0 := l.rank.Proc().Now()
	cat := l.profAs(prof.CatCheckin)
	s.Stats.CheckinCalls++

	idx := -1
	for i := len(l.outstanding) - 1; i >= 0; i-- {
		r := &l.outstanding[i]
		if r.addr == addr && r.size == size && r.mode == mode {
			idx = i
			break
		}
	}
	if idx < 0 {
		// The validator can upgrade this to a use-after-checkin diagnostic
		// when the same right was recently retired (double checkin).
		if v := s.val; v != nil && size > 0 {
			if err := v.onMissingCheckin(l, addr, addr+size, mode); err != nil {
				return err
			}
		}
		return fmt.Errorf("%w: (%#x, %d, %v)", ErrUnmatchedCheckin, addr, size, mode)
	}
	rec := l.outstanding[idx]
	l.outstanding = append(l.outstanding[:idx], l.outstanding[idx+1:]...)
	if v := s.val; v != nil && size > 0 {
		v.onCheckin(l, addr, addr+size, mode)
	}

	// SDC hook: both the NoCache and the cached path below commit
	// rec.view verbatim, so flipping/folding the view here covers every
	// write this rank publishes.
	if (l.sdcDigestArmed || l.sdcFlipArmed) && mode != Read && size > 0 {
		l.sdcOnCheckin(rec.view)
	}

	if s.cfg.Policy == NoCache {
		if mode != Read {
			if err := l.putFrom(rec.view, addr); err != nil {
				return err
			}
			// Uncached writes land in home memory right here.
			if v := s.val; v != nil && size > 0 {
				v.markHomed(addr, addr+size, l.rank.Proc().Now())
			}
		}
		l.putView(rec.view)
		s.prof.Add(cat, l.rank.ID(), l.rank.Proc().Now()-t0)
		return nil
	}

	if mode != Read {
		l.copyPieces(rec.pieces, rec.view, addr, true)
	}
	flush := false
	for _, p := range rec.pieces {
		l.rank.Proc().Advance(costCheckinBlock)
		if p.cb != nil {
			if mode != Read {
				iv := region.Interval{Lo: uint64(p.g), Hi: uint64(p.g) + uint64(p.n)}
				if s.cfg.Policy == WriteThrough {
					// Write dirty bytes home immediately, forgetting them.
					// With coalescing the pieces are gathered first, so a
					// checkin spanning consecutive same-home blocks ships
					// one Put instead of one per block.
					if s.cfg.CoalesceWriteBack {
						l.gatherRun(p.cb, iv)
					} else {
						l.putDirtyInterval(p.cb, iv)
						flush = true
					}
				} else {
					p.cb.Dirty.Add(iv)
				}
				// Re-validate the written region: the block now holds the
				// freshest bytes even if a fence invalidated it between
				// checkout and checkin (possible with a node-shared cache),
				// and dirty ⊆ valid must hold so fetches never overwrite
				// dirty data (Fig. 4 line 19).
				p.cb.Valid.Add(iv)
			}
			p.cb.Ref--
		} else {
			// Home path: the copy above already updated home memory, so a
			// written piece is home-visible as of this checkin — without
			// ever being cache-dirty or touching a fence.
			if v := s.val; v != nil && mode != Read {
				v.markHomed(uint64(p.g), uint64(p.g)+uint64(p.n), l.rank.Proc().Now())
			}
			p.hb.Ref--
		}
	}
	if len(l.wbRuns) > 0 {
		for _, t := range l.issueRuns() {
			l.rank.FlushRank(t)
		}
		l.resetRuns()
	}
	if flush {
		l.rank.Flush()
	}
	l.putView(rec.view)
	l.putPieces(rec.pieces)
	s.prof.Add(cat, l.rank.ID(), l.rank.Proc().Now()-t0)
	return nil
}

// putDirtyInterval writes the bytes of iv (global addresses, within cb's
// block) from the cache block to their home. Nonblocking; callers flush.
func (l *Local) putDirtyInterval(cb *memblock.Block, iv region.Interval) {
	s := l.space
	bs := uint64(s.cfg.BlockSize)
	g0 := Addr(uint64(cb.ID) * bs)
	a, err := s.findAlloc(Addr(iv.Lo), iv.Len())
	if err != nil {
		panic(fmt.Sprintf("pgas: dirty interval %v outside allocations: %v", iv, err))
	}
	homeRank, win, segOff0 := s.blockHome(a, g0)
	src := cb.Data[iv.Lo-uint64(g0) : iv.Hi-uint64(g0)]
	win.Put(l.rank, src, homeRank, segOff0+int(iv.Lo-uint64(g0)))
	s.Stats.WriteBackOps++
	s.Stats.WriteBackBytes += iv.Len()
	s.TraceLog.Rec(l.rank.Proc().Now(), l.rank.ID(), trace.KWriteBack, int64(iv.Len()))
	// The put copied the bytes into home memory at the call instant: for
	// the validator's ledger they are home-visible from now on, whether
	// this flush came from a fence, cache pressure, or write-through.
	if v := s.val; v != nil {
		v.markHomed(iv.Lo, iv.Hi, l.rank.Proc().Now())
	}
}

// getInto reads [addr, addr+len(dst)) from home memory into dst — the
// conventional GET API (§2.2), a thin wrapper over one-sided reads with no
// caching.
func (l *Local) getInto(addr Addr, dst []byte) error {
	err := l.space.forEachHomeSeg(addr, uint64(len(dst)), func(home int, win *rma.Win, off int, g Addr, n int) error {
		win.Get(l.rank, home, off, dst[g-addr:Addr(int(g-addr)+n)])
		return nil
	})
	if err != nil {
		return err
	}
	l.rank.Flush()
	return nil
}

// putFrom writes src to [addr, addr+len(src)) in home memory — the
// conventional PUT API, uncached.
func (l *Local) putFrom(src []byte, addr Addr) error {
	err := l.space.forEachHomeSeg(addr, uint64(len(src)), func(home int, win *rma.Win, off int, g Addr, n int) error {
		win.Put(l.rank, src[g-addr:Addr(int(g-addr)+n)], home, off)
		return nil
	})
	if err != nil {
		return err
	}
	l.rank.Flush()
	return nil
}

// Get is the public uncached GET API: it copies size bytes from global
// memory to a fresh local buffer.
func (l *Local) Get(addr Addr, size uint64) ([]byte, error) {
	t0 := l.rank.Proc().Now()
	dst := alignedBytes(size)
	if err := l.getInto(addr, dst); err != nil {
		return nil, err
	}
	l.space.prof.AddName(prof.CatGet, l.rank.ID(), l.rank.Proc().Now()-t0)
	return dst, nil
}

// Put is the public uncached PUT API: it copies src to global memory.
func (l *Local) Put(src []byte, addr Addr) error {
	t0 := l.rank.Proc().Now()
	if err := l.putFrom(src, addr); err != nil {
		return err
	}
	l.space.prof.AddName(prof.CatPut, l.rank.ID(), l.rank.Proc().Now()-t0)
	return nil
}

// OutstandingCheckouts returns the number of unmatched checkouts, used to
// verify checkout/checkin pairing at thread switch points.
func (l *Local) OutstandingCheckouts() int { return len(l.outstanding) }

func maxAddr(a, b Addr) Addr {
	if a > b {
		return a
	}
	return b
}

func minAddr(a, b Addr) Addr {
	if a < b {
		return a
	}
	return b
}
