package pgas

import (
	"testing"
)

func sharedCfg() Config {
	c := smallCfg(WriteBackLazy)
	c.SharedCache = true
	return c
}

func TestSharedCacheHitAcrossRanks(t *testing.T) {
	// Ranks 0,1 on node 0; rank 2 alone on node 1 is the home. Rank 0
	// fetches a region; rank 1's subsequent checkout must hit the shared
	// node cache without refetching.
	var fetchesAfterA, fetchesAfterB uint64
	testCluster(t, 3, 2, sharedCfg(), func(l *Local) {
		switch l.Rank().ID() {
		case 2:
			shared[0] = l.AllocLocal(512)
			v, err := l.Checkout(shared[0], 512, Write)
			if err != nil {
				t.Error(err)
			} else {
				for i := range v {
					v[i] = 9
				}
				l.Checkin(shared[0], 512, Write)
				l.ReleaseFence()
			}
			l.Rank().Barrier()
			l.Rank().Barrier() // wait for readers
		case 0:
			l.Rank().Barrier()
			if _, err := l.Checkout(shared[0], 512, Read); err != nil {
				t.Error(err)
			} else {
				l.Checkin(shared[0], 512, Read)
			}
			fetchesAfterA = l.Space().Stats.FetchOps
			l.Rank().Barrier()
		case 1:
			l.Rank().Barrier()
			// Run strictly after rank 0 by advancing past its access.
			l.Rank().Proc().Advance(1 << 20)
			v, err := l.Checkout(shared[0], 512, Read)
			if err != nil {
				t.Error(err)
			} else {
				if v[0] != 9 {
					t.Errorf("shared cache returned %d, want 9", v[0])
				}
				l.Checkin(shared[0], 512, Read)
			}
			fetchesAfterB = l.Space().Stats.FetchOps
			l.Rank().Barrier()
		}
	})
	if fetchesAfterA == 0 {
		t.Fatal("rank 0 never fetched")
	}
	if fetchesAfterB != fetchesAfterA {
		t.Fatalf("rank 1 refetched despite shared cache: %d -> %d", fetchesAfterA, fetchesAfterB)
	}
}

func TestPrivateCacheRefetchesAcrossRanks(t *testing.T) {
	// Same scenario without SharedCache: rank 1 must fetch again.
	var fetchesAfterA, fetchesAfterB uint64
	testCluster(t, 3, 2, smallCfg(WriteBackLazy), func(l *Local) {
		switch l.Rank().ID() {
		case 2:
			shared[0] = l.AllocLocal(512)
			v, _ := l.Checkout(shared[0], 512, Write)
			for i := range v {
				v[i] = 9
			}
			l.Checkin(shared[0], 512, Write)
			l.ReleaseFence()
			l.Rank().Barrier()
			l.Rank().Barrier()
		case 0:
			l.Rank().Barrier()
			l.Checkout(shared[0], 512, Read)
			l.Checkin(shared[0], 512, Read)
			fetchesAfterA = l.Space().Stats.FetchOps
			l.Rank().Barrier()
		case 1:
			l.Rank().Barrier()
			l.Rank().Proc().Advance(1 << 20)
			l.Checkout(shared[0], 512, Read)
			l.Checkin(shared[0], 512, Read)
			fetchesAfterB = l.Space().Stats.FetchOps
			l.Rank().Barrier()
		}
	})
	if fetchesAfterB <= fetchesAfterA {
		t.Fatalf("private caches should refetch: %d -> %d", fetchesAfterA, fetchesAfterB)
	}
}

func TestSharedCacheWriteReadRoundTrip(t *testing.T) {
	// A writer and a (later) reader on the same node, data homed remotely:
	// the reader must observe the write through the shared cache after the
	// writer's release and its own acquire.
	testCluster(t, 4, 2, sharedCfg(), func(l *Local) {
		switch l.Rank().ID() {
		case 2:
			shared[1] = l.AllocLocal(64)
			v, _ := l.Checkout(shared[1], 64, Write)
			v[0] = 0
			l.Checkin(shared[1], 64, Write)
			l.ReleaseFence()
			l.Rank().Barrier() // A: published
			l.Rank().Barrier() // B: done
		case 0:
			l.Rank().Barrier() // A
			v, _ := l.Checkout(shared[1], 64, ReadWrite)
			v[0] = 77
			l.Checkin(shared[1], 64, ReadWrite)
			l.ReleaseFence()
			l.Rank().Barrier() // B
		case 1:
			l.Rank().Barrier() // A
			l.Rank().Proc().Advance(1 << 20)
			l.AcquireFence()
			v, _ := l.Checkout(shared[1], 64, Read)
			if v[0] != 77 {
				t.Errorf("read %d through shared cache, want 77", v[0])
			}
			l.Checkin(shared[1], 64, Read)
			l.Rank().Barrier() // B
		default:
			l.Rank().Barrier()
			l.Rank().Barrier()
		}
	})
}
