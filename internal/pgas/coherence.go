package pgas

import (
	"ityr/internal/memblock"
	"ityr/internal/prof"
	"ityr/internal/region"
	"ityr/internal/sim"
)

// Epoch-window layout: 16 bytes per rank.
const (
	offCurrentEpoch = 0
	offRequestEpoch = 8
)

// CurrentEpoch returns this rank's write-back epoch (Fig. 6 currentEpoch).
func (l *Local) CurrentEpoch() uint64 {
	return l.space.epochWin.LocalUint64(l.rank, offCurrentEpoch)
}

func (l *Local) requestEpoch() uint64 {
	return l.space.epochWin.LocalUint64(l.rank, offRequestEpoch)
}

// writeBackAll writes every dirty region of every cache block to its home,
// then advances the epoch. Called for release fences, lazy-release polls,
// and cache-pressure flushes; cat selects the profiler category charged.
// With Config.CoalesceWriteBack the dirty regions are shipped as merged
// per-home Puts and each written target rank is flushed individually
// (batch.go); otherwise every region is its own Put and one Flush waits on
// everything.
func (l *Local) writeBackAll(cat string) {
	t0 := l.rank.Proc().Now()
	wrote := false
	if l.space.cfg.CoalesceWriteBack {
		wrote = l.writeBackCoalesced()
	} else {
		for _, cb := range l.cache.DirtyBlocks() {
			// Snapshot the intervals: issuing the puts advances virtual
			// time, during which a node-mate sharing this cache may
			// register new dirty regions. Each interval is cleared at its
			// put's copy instant — rma.Put copies host bytes before
			// charging time — so a node-mate checkin landing during the
			// put's time charge re-dirties the block with its newer bytes
			// and survives to the next write-back, instead of being
			// silently cleared by a deferred subtract of stale intervals.
			ivs := append([]region.Interval(nil), cb.Dirty.Intervals()...)
			for _, iv := range ivs {
				cb.Dirty.Subtract(iv)
				l.putDirtyInterval(cb, iv)
				wrote = true
			}
		}
		if wrote {
			l.rank.Flush()
		}
	}
	// No explicit validator hook here: the put paths above already marked
	// every flushed interval home-visible at its put's copy instant, which
	// is all the happens-before ledger needs from a release.
	cur, req := l.CurrentEpoch(), l.requestEpoch()
	if wrote || cur < req {
		l.space.epochWin.StoreLocalUint64(l.rank, cur+1, offCurrentEpoch)
		l.rank.Proc().Advance(costEpoch)
	}
	d := l.rank.Proc().Now() - t0
	l.space.prof.AddName(cat, l.rank.ID(), d)
	l.space.MetricReleaseNs.Observe(d)
}

// ReleaseFence executes an eager release fence (§4.4): all dirty data is
// written back to its home before the fence returns. Under NoCache and
// WriteThrough there is never pending dirty data, so this is (nearly) free.
func (l *Local) ReleaseFence() {
	if l.space.cfg.Policy == NoCache {
		// No cache means nothing to flush (uncached checkins already wrote
		// home, and the validator marked them home-visible there).
		return
	}
	l.writeBackAll(prof.CatRelease)
}

// ReleaseLazy is the fork-time release of Fig. 6 (ReleaseLazy): instead of
// writing back, it returns a handler naming the epoch whose completion will
// prove this rank's dirty data reached its home. If the cache is clean the
// handler is Unneeded.
func (l *Local) ReleaseLazy() ReleaseHandler {
	if l.space.cfg.Policy != WriteBackLazy {
		// Eager policies run the release fence right here (Release #1).
		l.ReleaseFence()
		return Unneeded
	}
	l.rank.Proc().Advance(costEpoch)
	if len(l.cache.DirtyBlocks()) == 0 {
		return Unneeded
	}
	l.space.Stats.LazyReleases++
	return ReleaseHandler{Rank: l.rank.ID(), Epoch: l.CurrentEpoch() + 1, Needed: true}
}

// AcquireWith executes an acquire fence paired with the given release
// handler (Fig. 6 Acquire): it waits until the releaser's epoch reaches the
// handler's epoch — requesting a write-back with a remote atomic max on the
// first poll — and then self-invalidates the local cache.
func (l *Local) AcquireWith(h ReleaseHandler) {
	s := l.space
	t0 := l.rank.Proc().Now()
	if h.Needed && s.cfg.Policy != NoCache {
		if h.Rank == l.rank.ID() {
			// The continuation came back to the releasing rank itself;
			// its dirty data is local, so just complete the write-back.
			if l.CurrentEpoch() < h.Epoch {
				l.writeBackAll(prof.CatLazyRelease)
			}
		} else {
			// Fault-injection audit: this polling loop is the coherence
			// protocol's only remote-atomic sequence, and it stays correct
			// under retried one-sided ops. GetUint64 is a read — re-issuing
			// it only re-samples the epoch, and the loop already tolerates
			// stale values by polling again. MaxUint64 is monotonic: applying
			// it once after injected failures (the RMA layer retries before
			// the memory effect, so effects land exactly once) or even twice
			// would leave requestEpoch at the same max. Retries here only
			// stretch virtual time, which this backoff loop absorbs.
			first := true
			backoff := s.comm.Net().AtomicRTT
			for {
				cur := s.epochWin.GetUint64(l.rank, h.Rank, offCurrentEpoch)
				if cur >= h.Epoch {
					break
				}
				if first {
					s.epochWin.MaxUint64(l.rank, h.Rank, offRequestEpoch, h.Epoch)
					first = false
				}
				l.rank.Proc().Advance(backoff)
				if backoff < 20*sim.Microsecond {
					backoff *= 2
				}
			}
		}
	}
	l.invalidateAll()
	d := l.rank.Proc().Now() - t0
	s.prof.AddName(prof.CatAcquire, l.rank.ID(), d)
	s.MetricAcquireNs.Observe(d)
	// Record after the poll loop: any lazy write-back this acquire waited
	// for was homed at an earlier virtual time than this completion.
	if v := s.val; v != nil {
		v.onAcquire(l.rank.ID(), l.rank.Proc().Now())
	}
}

// AcquireFence executes a plain acquire fence: self-invalidate the cache so
// subsequent checkouts fetch fresh data. Used on thread migration arrival
// when the matching releases were eager.
func (l *Local) AcquireFence() {
	t0 := l.rank.Proc().Now()
	l.invalidateAll()
	d := l.rank.Proc().Now() - t0
	l.space.prof.AddName(prof.CatAcquire, l.rank.ID(), d)
	l.space.MetricAcquireNs.Observe(d)
	if v := l.space.val; v != nil {
		v.onAcquire(l.rank.ID(), l.rank.Proc().Now())
	}
}

func (l *Local) invalidateAll() {
	if l.space.cfg.Policy == NoCache {
		return
	}
	// The fence protocol guarantees a worker's cache is clean whenever an
	// acquire runs (every suspension/steal path executed a release first).
	// Write back defensively anyway: when the invariant holds this is
	// free, and it makes invalidation safe under any schedule — clearing
	// a dirty region's valid bit would let a later fetch overwrite it.
	if len(l.cache.DirtyBlocks()) > 0 {
		l.writeBackAll(prof.CatRelease)
	}
	if l.space.cfg.PrefetchBlocks > 0 {
		// Invalidation discards speculative bytes nothing ever read:
		// count them as wasted prefetches before the valid bits go.
		l.cache.ForEach(func(b *memblock.Block) {
			if b.Prefetched {
				b.Prefetched = false
				l.pfMiss()
			}
		})
		// The access-run detector's history predates the invalidation, so
		// a run it reports would span the epoch boundary — exactly the
		// speculation the invalidation just proved worthless. Reset it so
		// prefetching resumes only once a fresh run forms.
		l.lastBid = -1
		l.runLen = 0
	}
	l.cache.InvalidateAllExceptDirty()
	l.rank.Proc().Advance(costInvalidate)
	l.space.Stats.Invalidations++
}

// Poll is DoReleaseIfReqested of Fig. 6: if another rank requested a
// write-back (requestEpoch > currentEpoch), perform it now. The threading
// layer calls Poll at every fork, join and idle-loop iteration.
func (l *Local) Poll() {
	if l.space.cfg.Policy != WriteBackLazy {
		return
	}
	if l.CurrentEpoch() < l.requestEpoch() {
		l.writeBackAll(prof.CatLazyRelease)
	}
}

// DirtyBytes reports the number of dirty bytes awaiting write-back.
func (l *Local) DirtyBytes() uint64 {
	var n uint64
	for _, cb := range l.cache.DirtyBlocks() {
		n += cb.Dirty.Bytes()
	}
	return n
}
