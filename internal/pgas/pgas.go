// Package pgas implements Itoyori's cached partitioned global address
// space: a global heap with block / block-cyclic / noncollective memory
// distribution (§4.2), the checkout/checkin software cache (§3, §4.3), the
// SC-for-DRF coherence protocol with write-through, write-back and lazy
// write-back policies (§4.4), and the epoch-based lazy release protocol
// (§5.2, Fig. 6).
//
// A Space is the cluster-wide address space; each rank drives it through
// its Local handle. All methods must be called from simulation context.
package pgas

import (
	"errors"
	"fmt"

	"ityr/internal/sim"
)

// Addr is a global virtual address. Global addresses are unified: the same
// value refers to the same global byte on every rank (§3.2).
type Addr = uint64

// Address-space layout. These are virtual positions only; host memory is
// allocated lazily per rank segment.
const (
	collBase Addr = 1 << 32 // collective heap
	ncBase   Addr = 1 << 44 // noncollective heap
	ncSpan   Addr = 1 << 36 // virtual span per rank in the noncollective heap
)

// Mode is a checkout access mode (§3.3).
type Mode int

const (
	// Read grants read-only access; concurrent Read checkouts of the same
	// region by multiple processes are allowed.
	Read Mode = iota
	// Write grants write-only access; the checked-out region may be
	// uninitialized and every byte is considered written at checkin.
	Write
	// ReadWrite grants read-write access; every byte is considered both
	// read at checkout and written at checkin.
	ReadWrite
)

// String renders the mode name as it appears in diagnostics ("Read",
// "Write", "ReadWrite").
func (m Mode) String() string {
	switch m {
	case Read:
		return "Read"
	case Write:
		return "Write"
	case ReadWrite:
		return "ReadWrite"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Policy selects how global memory accesses are cached (§4.4, §6.1).
type Policy int

const (
	// NoCache bypasses the software cache entirely: checkout/checkin
	// degenerate to GET/PUT into a private user buffer (the paper's
	// baseline for the naive PGAS + fork-join integration).
	NoCache Policy = iota
	// WriteThrough caches reads but writes dirty data to its home
	// immediately on each checkin.
	WriteThrough
	// WriteBack caches reads and delays flushing dirty data until the
	// next release fence.
	WriteBack
	// WriteBackLazy additionally delays the release fence before a fork
	// until the continuation is actually stolen (Fig. 6).
	WriteBackLazy
)

// String renders the policy name as the paper's figures label it (e.g.
// "Write-Back (Lazy)").
func (p Policy) String() string {
	switch p {
	case NoCache:
		return "No Cache"
	case WriteThrough:
		return "Write-Through"
	case WriteBack:
		return "Write-Back"
	case WriteBackLazy:
		return "Write-Back (Lazy)"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies lists all cache policies in the order the paper plots them.
var Policies = []Policy{NoCache, WriteThrough, WriteBack, WriteBackLazy}

// DistPolicy is a memory distribution policy for collective allocation.
type DistPolicy int

const (
	// BlockDist distributes memory evenly so each rank's share is one
	// contiguous chunk.
	BlockDist DistPolicy = iota
	// BlockCyclicDist distributes fixed-size blocks round-robin across
	// ranks (the policy used in the paper's evaluation).
	BlockCyclicDist
)

// Config tunes the cache system. Zero fields take defaults.
type Config struct {
	// BlockSize is the memory-block granularity (64 KiB in the paper).
	BlockSize int
	// SubBlockSize is the remote-fetch granularity (4 KiB in the paper).
	SubBlockSize int
	// CacheSize is the per-process software cache capacity in bytes
	// (128 MiB in the paper; scaled down by default here).
	CacheSize int
	// MaxHomeBlocks bounds simultaneously mapped home blocks (§4.3.2).
	MaxHomeBlocks int
	// MaxMapEntries bounds memory-mapping entries per process
	// (vm.max_map_count; 65530 in the paper's environment).
	MaxMapEntries int
	// Policy selects the cache policy.
	Policy Policy
	// SharedCache shares one cache (of CacheSize bytes) among all
	// processes of a node instead of giving each process a private one —
	// the extension §3.2 of the paper leaves as future work ("a cache can
	// be shared among multiple processes within the same node"). The
	// checkout/checkin API makes this possible because the runtime owns
	// the cache memory; coherence stays correct because fences
	// conservatively act on the whole node cache.
	SharedCache bool
	// CoalesceWriteBack enables communication batching on the write-back
	// path (the paper's Fig. 6 motivation: few large transfers instead of
	// many small ones): dirty regions that land contiguously in the same
	// home segment — adjacent regions within a block, or consecutive
	// blocks of the same home — are merged into a single rma.Put, and a
	// release fence flushes once per written target rank instead of once
	// for everything. Off (false, the default) reproduces the unbatched
	// seed behaviour bit-identically.
	CoalesceWriteBack bool
	// PrefetchBlocks enables sequential-access block prefetch on checkout:
	// when a cache miss extends a detected run of ascending same-home
	// block accesses, up to PrefetchBlocks lookahead blocks from that home
	// are fetched in one batched rma.Get alongside the demand fetch.
	// Prefetched blocks are unpinned and evict normally, and the prefetch
	// never forces a write-back: under cache pressure it simply stops.
	// 0 (the default) disables prefetching.
	PrefetchBlocks int
	// Validate enables the checkout-discipline validator (see validate.go):
	// every checkout carries tracked access rights, and accesses breaking
	// the memory-model contract (write-under-read, conflicting-checkouts,
	// use-after-checkin, unreleased-write) fail fast with ErrViolation,
	// emit a KViolation trace span, and appear in the itytrace "validator"
	// report. Validation is pure host-side bookkeeping: it advances no
	// virtual time, so violation-free validated runs are bit-identical to
	// unvalidated ones. Off (false, the default) costs one nil check per
	// checkout/checkin.
	Validate bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.SubBlockSize == 0 {
		c.SubBlockSize = 4 << 10
	}
	if c.CacheSize == 0 {
		c.CacheSize = 16 << 20
	}
	if c.MaxHomeBlocks == 0 {
		c.MaxHomeBlocks = 4096
	}
	if c.MaxMapEntries == 0 {
		c.MaxMapEntries = 65530
	}
	if c.SubBlockSize > c.BlockSize || c.BlockSize%c.SubBlockSize != 0 {
		panic(fmt.Sprintf("pgas: sub-block size %d must divide block size %d", c.SubBlockSize, c.BlockSize))
	}
	return c
}

// Operation cost constants (virtual time). These model the local CPU cost
// of cache bookkeeping; communication costs come from the network model.
const (
	costCheckoutBlock = 90 * sim.Nanosecond  // per-block table lookup + region check
	costCheckinBlock  = 60 * sim.Nanosecond  // per-block dirty registration
	costMmap          = 900 * sim.Nanosecond // one mmap() call (§4.3.1)
	costInvalidate    = 400 * sim.Nanosecond // acquire fence self-invalidation
	costAllocLocal    = 150 * sim.Nanosecond // noncollective allocation
	costEpoch         = 40 * sim.Nanosecond  // local epoch bookkeeping
	costSharedLock    = 35 * sim.Nanosecond  // per-block lock on a node-shared cache table
)

// Errors.
var (
	// ErrTooMuchCheckout reports that a checkout exceeded the fixed cache
	// capacity (§3.3): the caller must split the request into chunks.
	ErrTooMuchCheckout = errors.New("pgas: too much checked-out memory for the cache size")
	// ErrBadFree reports freeing an address that is not allocated.
	ErrBadFree = errors.New("pgas: free of unallocated address")
	// ErrUnmatchedCheckin reports a checkin with no matching checkout.
	ErrUnmatchedCheckin = errors.New("pgas: checkin does not match any outstanding checkout")
	// ErrOutOfRange reports access outside any live allocation.
	ErrOutOfRange = errors.New("pgas: address range not within a live global allocation")
	// ErrViolation reports a checkout-discipline violation detected by the
	// validator (Config.Validate). The wrapped message names the broken
	// rule; the full diagnostics are in Space.Violations and, when tracing,
	// in the dump's validator section.
	ErrViolation = errors.New("pgas: checkout-discipline violation")
	// ErrNotQuiescent reports a runtime reconfiguration (Space.SetPolicy,
	// Space.SetPrefetchBlocks) attempted while some rank still holds
	// outstanding checkouts or unflushed dirty cache data.
	ErrNotQuiescent = errors.New("pgas: reconfiguration requires quiescence (no outstanding checkouts or dirty blocks)")
)

// ReleaseHandler identifies a pending lazy release (Fig. 6): the rank whose
// dirty data must reach its home, and the epoch whose completion proves it.
type ReleaseHandler struct {
	Rank   int
	Epoch  uint64
	Needed bool
}

// Unneeded is the release handler meaning "no write-back required".
var Unneeded = ReleaseHandler{}
