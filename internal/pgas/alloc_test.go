package pgas

import (
	"errors"
	"testing"
)

func TestCollectiveAllocNonDivisibleSizes(t *testing.T) {
	testCluster(t, 3, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		// 1000 bytes over 3 ranks with 256-byte blocks: chunk = 512.
		base := l.AllocCollective(1000, BlockDist)
		for off := uint64(0); off < 1000; off += 100 {
			if _, err := l.Space().HomeRank(base + Addr(off)); err != nil {
				t.Errorf("offset %d unresolvable: %v", off, err)
			}
		}
		// Every byte of the requested size must be writable.
		v, err := l.Checkout(base, 1000, Write)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			v[i] = byte(i)
		}
		l.Checkin(base, 1000, Write)
		l.Rank().Barrier()
	})
}

func TestFreeCollective(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(512, BlockCyclicDist)
		if err := l.FreeCollective(base); err != nil {
			t.Fatal(err)
		}
		// Access after free must fail.
		if _, err := l.Checkout(base, 16, Read); err == nil {
			t.Error("checkout of freed allocation succeeded")
		}
		// Double free and bogus free must fail.
		if err := l.FreeCollective(base); err == nil {
			t.Error("double free succeeded")
		}
		if err := l.FreeCollective(0xDEAD); err == nil {
			t.Error("bogus free succeeded")
		}
		l.Rank().Barrier()
	})
}

func TestOutOfRangeAccess(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		if _, err := l.Checkout(0x1234, 16, Read); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("unmapped checkout: %v", err)
		}
		base := l.AllocCollective(256, BlockDist)
		// Reading past the (block-padded) end of an allocation fails.
		if _, err := l.Checkout(base, 1<<20, Read); err == nil {
			t.Error("oversized checkout succeeded")
		}
		if _, err := l.Space().HomeRank(7); !errors.Is(err, ErrOutOfRange) {
			t.Error("HomeRank of garbage succeeded")
		}
		l.Rank().Barrier()
	})
}

func TestFreeLocalBadAddr(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() == 0 {
			if err := l.FreeLocal(0x100, 16); !errors.Is(err, ErrBadFree) {
				t.Errorf("free of collective-range addr: %v", err)
			}
		}
		l.Rank().Barrier()
	})
}

func TestManyAllocationsResolveCorrectly(t *testing.T) {
	// Interleave collective and noncollective allocations and verify that
	// address resolution never confuses them.
	testCluster(t, 4, 2, smallCfg(WriteBackLazy), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		var colls []Addr
		var locals []Addr
		for i := 0; i < 10; i++ {
			colls = append(colls, l.AllocCollective(uint64(100+i*37), BlockCyclicDist))
			locals = append(locals, l.AllocLocal(uint64(50+i*13)))
		}
		for i, a := range colls {
			v, err := l.Checkout(a, uint64(100+i*37), Write)
			if err != nil {
				t.Fatalf("collective %d: %v", i, err)
			}
			for j := range v {
				v[j] = byte(i)
			}
			l.Checkin(a, uint64(100+i*37), Write)
		}
		for i, a := range locals {
			v, err := l.Checkout(a, uint64(50+i*13), Write)
			if err != nil {
				t.Fatalf("local %d: %v", i, err)
			}
			for j := range v {
				v[j] = byte(100 + i)
			}
			l.Checkin(a, uint64(50+i*13), Write)
		}
		// Verify nothing overwrote anything else.
		for i, a := range colls {
			v, _ := l.Checkout(a, uint64(100+i*37), Read)
			for j := range v {
				if v[j] != byte(i) {
					t.Fatalf("collective %d corrupted at %d", i, j)
				}
			}
			l.Checkin(a, uint64(100+i*37), Read)
		}
		for i, a := range locals {
			v, _ := l.Checkout(a, uint64(50+i*13), Read)
			for j := range v {
				if v[j] != byte(100+i) {
					t.Fatalf("local %d corrupted at %d", i, j)
				}
			}
			l.Checkin(a, uint64(50+i*13), Read)
		}
		l.Rank().Barrier()
	})
}

func TestOverlappingReadCheckoutsSameRank(t *testing.T) {
	// §3.3: within one process, multiple simultaneous checkouts of the
	// same region are allowed.
	testCluster(t, 2, 1, smallCfg(WriteBack), func(l *Local) {
		if l.Rank().ID() != 0 {
			l.Rank().Barrier()
			return
		}
		base := l.AllocCollective(512, BlockDist)
		v, _ := l.Checkout(base, 512, Write)
		for i := range v {
			v[i] = 9
		}
		l.Checkin(base, 512, Write)

		a, err1 := l.Checkout(base, 256, Read)
		b, err2 := l.Checkout(base+128, 256, Read) // overlapping
		if err1 != nil || err2 != nil {
			t.Fatalf("overlapping reads failed: %v %v", err1, err2)
		}
		if a[200] != 9 || b[0] != 9 {
			t.Error("overlapping views differ from written data")
		}
		l.Checkin(base+128, 256, Read)
		l.Checkin(base, 256, Read)
		if l.OutstandingCheckouts() != 0 {
			t.Errorf("outstanding = %d", l.OutstandingCheckouts())
		}
		l.Rank().Barrier()
	})
}

func TestEpochMonotonicity(t *testing.T) {
	testCluster(t, 2, 1, smallCfg(WriteBackLazy), func(l *Local) {
		if l.Rank().ID() == 0 {
			shared[0] = l.AllocCollective(256, BlockDist)
		}
		l.Rank().Barrier()
		if l.Rank().ID() == 1 {
			prev := l.CurrentEpoch()
			for i := 0; i < 5; i++ {
				v, _ := l.Checkout(shared[0], 16, ReadWrite)
				v[0]++
				l.Checkin(shared[0], 16, ReadWrite)
				l.ReleaseFence()
				cur := l.CurrentEpoch()
				if cur <= prev {
					t.Errorf("epoch not monotone: %d -> %d", prev, cur)
				}
				prev = cur
			}
		}
		l.Rank().Barrier()
	})
}
