package pgas

import (
	"fmt"
	"sort"

	"ityr/internal/memblock"
	"ityr/internal/metrics"
	"ityr/internal/prof"
	"ityr/internal/profile"
	"ityr/internal/rma"
	"ityr/internal/sim"
	"ityr/internal/trace"
)

// allocation is one live global-heap allocation.
type allocation struct {
	base   Addr
	size   uint64 // rounded up to whole blocks
	req    uint64 // requested size
	policy DistPolicy
	win    *rma.Win
	chunk  uint64 // per-rank contiguous bytes (BlockDist)
	nranks uint64
	freed  bool
}

func (a *allocation) end() Addr { return a.base + a.size }

// homeOf resolves a global address within this allocation to its home rank
// and the offset within that rank's window segment.
func (a *allocation) homeOf(addr Addr, blockSize uint64) (rank int, off int) {
	rel := addr - a.base
	switch a.policy {
	case BlockDist:
		return int(rel / a.chunk), int(rel % a.chunk)
	case BlockCyclicDist:
		b := rel / blockSize
		return int(b % a.nranks), int((b/a.nranks)*blockSize + rel%blockSize)
	}
	panic("pgas: bad policy")
}

// homeSpan returns the number of bytes from addr to the end of addr's
// contiguous home region within the allocation.
func (a *allocation) homeSpan(addr Addr, blockSize uint64) uint64 {
	rel := addr - a.base
	switch a.policy {
	case BlockDist:
		return a.chunk - rel%a.chunk
	case BlockCyclicDist:
		return blockSize - rel%blockSize
	}
	panic("pgas: bad policy")
}

// Space is the cluster-wide global address space.
type Space struct {
	cfg  Config
	comm *rma.Comm
	prof *prof.Profiler

	allocs   []*allocation // sorted by base; includes per-rank noncollective pseudo-allocations
	collNext Addr

	ncWin  *rma.Win
	ncNext []Addr // bump pointer per rank
	// ncFree holds per-rank size-class free lists. Maps are created
	// lazily on the first FreeLocal to a rank: most ranks in a large run
	// never free noncollective memory, and 16K eagerly allocated empty
	// maps cost more than every other piece of per-rank pgas state
	// combined. AllocLocal reads through nil maps for free.
	ncFree []map[uint64][]Addr

	epochWin *rma.Win // 16 bytes per rank: [0]=currentEpoch, [8]=requestEpoch

	// locals is one contiguous slab (like rma.Comm.ranks): per-rank
	// handles are indexed, not individually heap-allocated.
	locals []Local

	// Stats aggregates cache behaviour over the whole space.
	Stats SpaceStats
	// Batch aggregates communication-batching behaviour (write-back
	// coalescing and prefetch). Kept separate from Stats so runs with the
	// batching knobs off leave it zero — golden digests fold Batch in only
	// when it is nonzero, which keeps knobs-off digests bit-identical to
	// runs that predate the batching layer.
	Batch BatchStats
	// TraceLog, when non-nil, receives cache events (misses, write-backs,
	// evictions) with virtual timestamps.
	TraceLog *trace.Log
	// Profile, when non-nil, receives streaming checkout hit/miss rollups.
	// Unlike Stats (space-global, mutated only from serialized phases) the
	// profile folds into per-rank accumulators, so the hooks are safe from
	// any phase. Nil-safe like TraceLog.
	Profile *profile.Profile
	// MetricAcquireNs / MetricReleaseNs / MetricCheckoutBytes, when
	// non-nil, receive per-event observations: acquire-fence and
	// release/write-back durations (virtual ns) and checked-out sizes
	// (bytes). All three are nil-safe histograms, so no guards appear at
	// the observation sites.
	MetricAcquireNs     *metrics.Histogram
	MetricReleaseNs     *metrics.Histogram
	MetricCheckoutBytes *metrics.Histogram
	// CommWait, when non-nil, replaces the blocking flush at the end of a
	// cache-miss checkout: it is called with the issuing Local and must
	// not return before the rank's outstanding transfers complete. The
	// runtime uses it for communication-computation overlap (§8 future
	// work): the scheduler runs other tasks while the fetch is in flight.
	CommWait func(l *Local)
	// TaskOf, when non-nil, maps a rank to the trace DAG thread ID of the
	// task segment it is currently executing (0 = SPMD context). The
	// runtime wires it so validator diagnostics name task segments; it is
	// only consulted when Config.Validate is set.
	TaskOf func(rank int) int64

	val *validator
}

// BatchStats counts communication-batching events across all ranks. All
// fields stay zero unless Config.CoalesceWriteBack or
// Config.PrefetchBlocks is set.
type BatchStats struct {
	// WBRunsMerged counts dirty runs folded into a preceding run's Put
	// (k runs merged into one Put add k-1 here).
	WBRunsMerged uint64
	// WBCoalescedBytes counts bytes shipped in merged (multi-run) Puts.
	WBCoalescedBytes uint64
	// PrefetchOps counts batched prefetch Gets issued.
	PrefetchOps uint64
	// PrefetchedBlocks counts cache blocks filled by prefetch.
	PrefetchedBlocks uint64
	// PrefetchBytes counts bytes moved by prefetch Gets.
	PrefetchBytes uint64
	// PrefetchHits counts checkouts fully satisfied by a prefetched block.
	PrefetchHits uint64
	// PrefetchMisses counts prefetched blocks evicted or invalidated
	// before any demand checkout touched them (wasted prefetches).
	PrefetchMisses uint64
}

// SpaceStats counts cache events across all ranks.
type SpaceStats struct {
	CheckoutCalls  uint64
	CheckinCalls   uint64
	FetchOps       uint64
	FetchBytes     uint64
	HitBytes       uint64 // requested bytes already valid or home-local
	WriteBackOps   uint64
	WriteBackBytes uint64
	Invalidations  uint64
	Mmaps          uint64
	Evictions      uint64
	LazyReleases   uint64
}

// New creates a Space over comm. The profiler may be nil.
func New(comm *rma.Comm, cfg Config, pr *prof.Profiler) *Space {
	cfg = cfg.withDefaults()
	n := comm.Size()
	if pr == nil {
		pr = prof.New(n)
	}
	s := &Space{
		cfg:      cfg,
		comm:     comm,
		prof:     pr,
		collNext: collBase,
		ncWin:    comm.NewUniformWin(0),
		ncNext:   make([]Addr, n),
		ncFree:   make([]map[uint64][]Addr, n),
		epochWin: comm.NewUniformWin(16),
	}
	cacheBlocks := cfg.CacheSize / cfg.BlockSize
	if cacheBlocks < 1 {
		cacheBlocks = 1
	}
	if need := 2*cacheBlocks + 2*cfg.MaxHomeBlocks + 1; need > cfg.MaxMapEntries {
		panic(fmt.Sprintf("pgas: cache of %d blocks + %d home blocks needs %d mapping entries > limit %d (§4.3.2)",
			cacheBlocks, cfg.MaxHomeBlocks, need, cfg.MaxMapEntries))
	}
	s.locals = make([]Local, n)
	// The per-rank noncollective pseudo-allocations come out of one slab
	// too; only the pointers land in the sorted alloc list.
	ncAllocs := make([]allocation, n)
	nodeCaches := make(map[int]*memblock.Table)
	for i := 0; i < n; i++ {
		s.ncNext[i] = ncBase + Addr(i)*ncSpan
		cache := memblock.NewTable(cacheBlocks, cfg.BlockSize, false)
		if cfg.SharedCache {
			node := comm.Net().Node(i)
			if t, ok := nodeCaches[node]; ok {
				cache = t
			} else {
				nodeCaches[node] = cache
			}
		}
		s.locals[i] = Local{
			space:    s,
			rank:     comm.Rank(i),
			cache:    cache,
			home:     memblock.NewTable(cfg.MaxHomeBlocks, cfg.BlockSize, true),
			pfCredit: pfInitCredit,
		}
		// A pseudo-allocation per rank describing its noncollective region
		// keeps address resolution uniform.
		ncAllocs[i] = allocation{
			base:   ncBase + Addr(i)*ncSpan,
			size:   uint64(ncSpan),
			req:    uint64(ncSpan),
			policy: BlockDist,
			win:    s.ncWin,
			chunk:  uint64(ncSpan),
			nranks: 1,
		}
		s.allocs = append(s.allocs, &ncAllocs[i])
	}
	// Keep allocs sorted (noncollective bases ascend by construction).
	if cfg.Validate {
		s.val = newValidator(s, n)
	}
	return s
}

// taskOf resolves the task segment currently running on rank for
// validator diagnostics; 0 when the runtime wired no resolver.
func (s *Space) taskOf(rank int) int64 {
	if s.TaskOf != nil {
		return s.TaskOf(rank)
	}
	return 0
}

// Validating reports whether the checkout-discipline validator is active.
func (s *Space) Validating() bool { return s.val != nil }

// Violations returns the checkout-discipline violations recorded so far,
// deterministically ordered (by detection time, then rank, then address).
// Nil when Config.Validate is off.
func (s *Space) Violations() []trace.ViolationRecord {
	if s.val == nil {
		return nil
	}
	return s.val.Violations()
}

// quiescent reports whether the space can be reconfigured: no rank holds
// an outstanding checkout and no cache block is dirty.
func (s *Space) quiescent() error {
	seen := make(map[*memblock.Table]bool)
	for i := range s.locals {
		l := &s.locals[i]
		if n := len(l.outstanding); n > 0 {
			return fmt.Errorf("%w: rank %d holds %d outstanding checkout(s)", ErrNotQuiescent, i, n)
		}
		if seen[l.cache] {
			continue // node-shared table already inspected
		}
		seen[l.cache] = true
		if db := l.cache.DirtyBlocks(); len(db) > 0 {
			return fmt.Errorf("%w: rank %d's cache holds %d dirty block(s); release first", ErrNotQuiescent, i, len(db))
		}
	}
	return nil
}

// SetPolicy switches the cache policy at runtime. The space must be
// quiescent — no outstanding checkouts anywhere and no unflushed dirty
// data (callers: finish a fork-join region or run release fences first;
// under WriteBackLazy also ensure no lazy release handler is still
// pending, since a later AcquireWith would write back under the new
// policy's assumptions). All caches are invalidated so no valid bytes
// carry over an assumption the new policy does not make, and each rank's
// epoch window is reset so stale lazy-release requests cannot leak into
// the new regime.
func (s *Space) SetPolicy(p Policy) error {
	if p == s.cfg.Policy {
		return nil
	}
	if err := s.quiescent(); err != nil {
		return fmt.Errorf("set policy %v: %w", p, err)
	}
	seen := make(map[*memblock.Table]bool)
	for i := range s.locals {
		if t := s.locals[i].cache; !seen[t] {
			seen[t] = true
			t.InvalidateAll()
		}
		// Forget prefetch run state: policy-dependent access patterns
		// should not seed speculation across the switch.
		s.locals[i].lastBid = -1
		s.locals[i].runLen = 0
	}
	s.cfg.Policy = p
	return nil
}

// SetPrefetchBlocks changes the sequential-prefetch lookahead depth at
// runtime. Unlike SetPolicy this needs no quiescence — prefetched blocks
// are plain unpinned valid cache blocks under every depth — but run
// detection restarts so a stale run cannot trigger an outsized fetch.
func (s *Space) SetPrefetchBlocks(n int) error {
	if n < 0 {
		return fmt.Errorf("pgas: negative prefetch depth %d", n)
	}
	if n == s.cfg.PrefetchBlocks {
		return nil
	}
	s.cfg.PrefetchBlocks = n
	for i := range s.locals {
		s.locals[i].lastBid = -1
		s.locals[i].runLen = 0
		s.locals[i].pfCredit = pfInitCredit
	}
	return nil
}

// PrefetchBlocks returns the active sequential-prefetch lookahead depth.
func (s *Space) PrefetchBlocks() int { return s.cfg.PrefetchBlocks }

// Config returns the active configuration.
func (s *Space) Config() Config { return s.cfg }

// Policy returns the cache policy.
func (s *Space) Policy() Policy { return s.cfg.Policy }

// Profiler returns the profiler attached to the space.
func (s *Space) Profiler() *prof.Profiler { return s.prof }

// Local returns rank i's handle.
func (s *Space) Local(i int) *Local { return &s.locals[i] }

// BlockSize returns the memory-block size.
func (s *Space) BlockSize() int { return s.cfg.BlockSize }

// findAlloc locates the live allocation containing [addr, addr+size).
func (s *Space) findAlloc(addr Addr, size uint64) (*allocation, error) {
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base > addr })
	if i == 0 {
		return nil, ErrOutOfRange
	}
	a := s.allocs[i-1]
	if a.freed || addr+size > a.end() {
		return nil, fmt.Errorf("%w: [%#x,%#x)", ErrOutOfRange, addr, addr+size)
	}
	return a, nil
}

// insertAlloc adds a to the sorted allocation list.
func (s *Space) insertAlloc(a *allocation) {
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].base > a.base })
	s.allocs = append(s.allocs, nil)
	copy(s.allocs[i+1:], s.allocs[i:])
	s.allocs[i] = a
}

func align(v, to uint64) uint64 { return (v + to - 1) / to * to }

// AllocCollective allocates size bytes of global memory distributed across
// all ranks with the given policy. It must be called from the SPMD region
// or the root thread (it is a collective operation: every rank pays a
// barrier plus window-creation cost). The caller rank drives the cost
// accounting.
func (l *Local) AllocCollective(size uint64, policy DistPolicy) Addr {
	s := l.space
	if size == 0 {
		size = 1
	}
	bs := uint64(s.cfg.BlockSize)
	n := uint64(s.comm.Size())
	a := &allocation{policy: policy, req: size, nranks: n}
	sizes := make([]int, n)
	switch policy {
	case BlockDist:
		a.chunk = align(align(size, n)/n, bs)
		a.size = a.chunk * n
		for i := range sizes {
			sizes[i] = int(a.chunk)
		}
	case BlockCyclicDist:
		nblocks := align(size, bs) / bs
		perRank := (nblocks + n - 1) / n
		a.size = align(size, bs)
		for i := range sizes {
			sizes[i] = int(perRank * bs)
		}
	default:
		panic("pgas: bad distribution policy")
	}
	a.base = s.collNext
	s.collNext += Addr(align(a.size, bs)) + Addr(bs) // guard block between allocations
	a.win = s.comm.NewWin(sizes)
	s.insertAlloc(a)
	// Collective cost: window creation is roughly a barrier plus an
	// exchange of window descriptors.
	l.rank.Proc().Advance(2 * s.comm.Net().Latency * sim.Time(log2ceil(int(n))+1))
	return a.base
}

// FreeCollective releases a collective allocation. The host memory backing
// the allocation is dropped; the virtual range is never reused.
func (l *Local) FreeCollective(addr Addr) error {
	a, err := l.space.findAlloc(addr, 1)
	if err != nil || a.base != addr {
		return ErrBadFree
	}
	a.freed = true
	a.win = nil
	return nil
}

// AllocLocal allocates size bytes from the calling rank's noncollective
// heap (§4.2). It involves no other rank, so it may be called from any
// thread in the fork-join region. The result is remotely accessible and
// freeable from any rank.
func (l *Local) AllocLocal(size uint64) Addr {
	s := l.space
	me := l.rank.ID()
	if size == 0 {
		size = 1
	}
	size = align(size, 16)
	l.rank.Proc().Advance(costAllocLocal)
	if lst := s.ncFree[me][size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		s.ncFree[me][size] = lst[:len(lst)-1]
		return addr
	}
	addr := s.ncNext[me]
	s.ncNext[me] += Addr(size)
	regionBase := ncBase + Addr(me)*ncSpan
	if used := s.ncNext[me] - regionBase; used > Addr(len(s.ncWin.Seg(me))) {
		grow := align(uint64(used), 1<<20) * 2 // grow in MiB steps, doubling
		s.ncWin.Grow(me, int(grow))
		l.rank.Proc().Advance(2 * sim.Microsecond) // MPI_Win_attach
	}
	return addr
}

// FreeLocal returns a noncollective allocation of the given size to its
// owner's free list. Remote frees pay one atomic round trip.
func (l *Local) FreeLocal(addr Addr, size uint64) error {
	s := l.space
	if addr < ncBase {
		return ErrBadFree
	}
	owner := int((addr - ncBase) / ncSpan)
	if owner >= s.comm.Size() {
		return ErrBadFree
	}
	size = align(size, 16)
	if owner != l.rank.ID() {
		l.rank.Proc().Advance(s.comm.Net().AtomicTime(l.rank.ID(), owner))
	} else {
		l.rank.Proc().Advance(costAllocLocal)
	}
	if s.ncFree[owner] == nil {
		s.ncFree[owner] = make(map[uint64][]Addr)
	}
	s.ncFree[owner][size] = append(s.ncFree[owner][size], addr)
	return nil
}

// HomeRank returns the rank owning the home of addr, for locality-aware
// callers and tests.
func (s *Space) HomeRank(addr Addr) (int, error) {
	a, err := s.findAlloc(addr, 1)
	if err != nil {
		return 0, err
	}
	r, _ := a.homeOf(addr, uint64(s.cfg.BlockSize))
	if a.base >= ncBase {
		return int((a.base - ncBase) / ncSpan), nil
	}
	return r, nil
}

// forEachHomeSeg walks the home segments overlapping [addr, addr+size):
// contiguous pieces that live on a single rank, invoking fn(homeRank, win,
// segOff, gaddr, n). The range must lie within one allocation.
func (s *Space) forEachHomeSeg(addr Addr, size uint64, fn func(home int, win *rma.Win, off int, g Addr, n int) error) error {
	a, err := s.findAlloc(addr, size)
	if err != nil {
		return err
	}
	bs := uint64(s.cfg.BlockSize)
	g := addr
	remaining := size
	for remaining > 0 {
		span := a.homeSpan(g, bs)
		if span > remaining {
			span = remaining
		}
		rank, off := a.homeOf(g, bs)
		if a.base >= ncBase {
			rank = int((a.base - ncBase) / ncSpan)
			off = int(g - a.base)
		}
		if err := fn(rank, a.win, off, g, int(span)); err != nil {
			return err
		}
		g += Addr(span)
		remaining -= span
	}
	return nil
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}
