// Package trace records timestamped runtime events (scheduler actions,
// fences, cache misses) for debugging and performance analysis — the
// simulator's equivalent of Itoyori's execution tracer. Since PR 2 it
// records both instant events and *spans* (events with a duration), kept
// in per-rank ring buffers so long runs can bound memory to the most
// recent events per rank. Logs can be dumped as text, summarized per
// rank, serialized to a self-describing JSON dump ("itytrace/v1") for
// offline analysis with cmd/itytrace, or exported in the Chrome tracing
// JSON format for visual timelines (spans become "X" complete events,
// grouped by simulated node via the PID field).
//
// All timestamps are virtual (sim.Time); recording never advances the
// clock, so enabling tracing cannot change simulated behavior. A nil *Log
// records nothing, which is the off-switch: call sites need no
// enabled-checks and the off path does zero allocations.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ityr/internal/sim"
)

// Kind labels an event.
type Kind uint8

// Event kinds. KFork..KRegionExit predate span support; the kinds after
// KRegionExit were added with it (KTaskRun/KTaskEnd/KJoin carry the
// thread IDs the critical-path analysis needs).
const (
	KFork Kind = iota
	KSteal
	KFailedSteal
	KMigrate
	KRelease
	KLazyRelease
	KAcquire
	KCacheMiss
	KWriteBack
	KEviction
	KRegionEnter
	KRegionExit
	KCheckout
	KTaskRun
	KTaskEnd
	KJoin
	// KRetry and KBlacklist were added with the fault-injection subsystem
	// (PR 3); the enum stays append-only so dumped kind values keep their
	// meaning across versions.
	KRetry
	KBlacklist
	// KPrefetch was added with the cache communication-batching layer
	// (sequential-access block prefetch), appended per the same rule.
	KPrefetch
	// KReplica and KSdcDetect were added with the silent-data-corruption
	// subsystem (task replication + wire checksums), appended per the
	// same rule.
	KReplica
	KSdcDetect
	// KViolation was added with the checkout-discipline validator
	// (pgas.Config.Validate), appended per the same rule.
	KViolation
	numKinds
)

var kindNames = [numKinds]string{
	"fork", "steal", "failed-steal", "migrate", "release", "lazy-release",
	"acquire", "cache-miss", "write-back", "eviction", "region-enter", "region-exit",
	"checkout", "task", "task-end", "join", "retry", "blacklist", "prefetch",
	"replica", "sdc-detect", "violation",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence. Dur == 0 means an instant event; a
// span covers [T, T+Dur). Arg and Arg2 are kind-specific:
//
//	KFork        Arg = child thread ID,  Arg2 = parent thread ID
//	KTaskRun     Arg = thread ID (span: one executed segment of the task)
//	KTaskEnd     Arg = thread ID,        Arg2 = parent thread ID (0 = root)
//	KJoin        Arg = child thread ID,  Arg2 = parent thread ID
//	KSteal       Arg = victim rank (span: steal latency on the thief)
//	KFailedSteal Arg = victim rank (span: wasted attempt latency)
//	KCheckout    Arg = bytes            (span: checkout call duration)
//	KRetry       Arg = target rank,     Arg2 = attempt number (span: the
//	             timeout + backoff one transient RMA failure cost its origin)
//	KBlacklist   Arg = victim rank      (span: the penalty window during
//	             which the recording rank skips the victim for steals)
//	KCacheMiss   Arg = bytes fetched
//	KWriteBack   Arg = bytes written back
//	KPrefetch    Arg = bytes prefetched in one batched lookahead Get
//	KReplica     Arg = victim rank,     Arg2 = execution number ≥ 2 (span:
//	             one redundant execution of a protected task segment)
//	KSdcDetect   Arg = target/victim rank, Arg2 = attempt/replay number
//	             (instant: a digest or checksum mismatch caught a flip)
//	KViolation   Arg = validator rule code, Arg2 = offending task ID (span:
//	             from the conflicting earlier event — the overlapped
//	             checkout, the retired checkin, or the unreleased write —
//	             to the access that tripped the rule; full diagnostics
//	             travel in the dump's validator section)
//	KEviction    Arg = bytes evicted
//	KAcquire / KRelease / KMigrate: span over the fence / migration fence
type Event struct {
	T    sim.Time
	Dur  sim.Time
	Rank int
	Kind Kind
	Arg  int64
	Arg2 int64
}

// entry pairs an event with its global sequence number so per-rank rings
// can be merged back into deterministic recording order.
type entry struct {
	seq uint64
	ev  Event
}

// ring is one rank's buffer. With no capacity limit it is a plain append
// log; with a limit it overwrites the oldest entry once full.
type ring struct {
	buf     []entry
	start   int
	dropped uint64
}

func (rg *ring) add(e entry, capPerRank int) {
	if capPerRank <= 0 || len(rg.buf) < capPerRank {
		rg.buf = append(rg.buf, e)
		return
	}
	rg.buf[rg.start] = e
	rg.start++
	if rg.start == capPerRank {
		rg.start = 0
	}
	rg.dropped++
}

// Log is an event recorder. A nil *Log is valid and records nothing, so
// callers need no enabled-checks.
type Log struct {
	rings      []ring
	seq        uint64
	capPerRank int

	// CoresPerNode, when set, lets exports map a rank to its simulated
	// node (node = rank / CoresPerNode) so Perfetto groups timelines by
	// node (PID) instead of lumping every rank under PID 0.
	CoresPerNode int
}

// New creates an empty, unbounded log.
func New() *Log { return &Log{} }

// NewRing creates a log that keeps at most capPerRank most-recent events
// per rank, overwriting the oldest once full. capPerRank <= 0 means
// unbounded.
func NewRing(capPerRank int) *Log { return &Log{capPerRank: capPerRank} }

func (l *Log) rec(ev Event) {
	r := ev.Rank
	if r < 0 {
		r = 0
	}
	for r >= len(l.rings) {
		l.rings = append(l.rings, ring{})
	}
	l.seq++
	l.rings[r].add(entry{seq: l.seq, ev: ev}, l.capPerRank)
}

// Rec appends an instant event. No-op on a nil log.
func (l *Log) Rec(t sim.Time, rank int, kind Kind, arg int64) {
	if l == nil {
		return
	}
	l.rec(Event{T: t, Rank: rank, Kind: kind, Arg: arg})
}

// Rec2 appends an instant event with two arguments. No-op on a nil log.
func (l *Log) Rec2(t sim.Time, rank int, kind Kind, arg, arg2 int64) {
	if l == nil {
		return
	}
	l.rec(Event{T: t, Rank: rank, Kind: kind, Arg: arg, Arg2: arg2})
}

// RecSpan appends a span covering [t, t+dur). No-op on a nil log.
func (l *Log) RecSpan(t, dur sim.Time, rank int, kind Kind, arg, arg2 int64) {
	if l == nil {
		return
	}
	l.rec(Event{T: t, Dur: dur, Rank: rank, Kind: kind, Arg: arg, Arg2: arg2})
}

// Len returns the number of retained events (0 for nil).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.rings {
		n += len(l.rings[i].buf)
	}
	return n
}

// Dropped returns how many events were overwritten across all rings.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	var n uint64
	for i := range l.rings {
		n += l.rings[i].dropped
	}
	return n
}

// DroppedByRank returns the per-rank overwrite counts (index = rank), or
// nil when no ring has dropped anything — truncation is an exceptional
// condition and the clean path should not allocate.
func (l *Log) DroppedByRank() []uint64 {
	if l == nil || l.Dropped() == 0 {
		return nil
	}
	out := make([]uint64, len(l.rings))
	for i := range l.rings {
		out[i] = l.rings[i].dropped
	}
	return out
}

// Events returns the retained events merged across ranks in recording
// order (the deterministic global sequence, not timestamp order — ranks
// record interleaved but each at monotonically nondecreasing times).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	total := l.Len()
	if total == 0 {
		return nil
	}
	ents := make([]entry, 0, total)
	for i := range l.rings {
		ents = append(ents, l.rings[i].buf...)
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].seq < ents[b].seq })
	out := make([]Event, total)
	for i := range ents {
		out[i] = ents[i].ev
	}
	return out
}

// Count returns how many retained events have the given kind.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.rings {
		for _, e := range l.rings[i].buf {
			if e.ev.Kind == kind {
				n++
			}
		}
	}
	return n
}

// Span returns the [min start, max end] of all retained events, or (0, 0)
// when empty. The end accounts for span durations.
func (l *Log) Span() (first, last sim.Time) {
	if l.Len() == 0 {
		return 0, 0
	}
	started := false
	for i := range l.rings {
		for _, e := range l.rings[i].buf {
			if !started || e.ev.T < first {
				first = e.ev.T
			}
			if end := e.ev.T + e.ev.Dur; !started || end > last {
				last = end
			}
			started = true
		}
	}
	return first, last
}

// Dump writes one line per event in recording order.
func (l *Log) Dump(w io.Writer) {
	for _, e := range l.Events() {
		if e.Dur > 0 {
			fmt.Fprintf(w, "%12d ns  rank %3d  %-13s dur %d arg %d %d\n",
				e.T, e.Rank, e.Kind, e.Dur, e.Arg, e.Arg2)
		} else {
			fmt.Fprintf(w, "%12d ns  rank %3d  %-13s %d\n", e.T, e.Rank, e.Kind, e.Arg)
		}
	}
}

// Summary writes per-kind totals and the overall time range. Events are
// recorded per rank, so the log is not globally time-sorted: the range is
// computed from min/max timestamps, not first/last entries.
func (l *Log) Summary(w io.Writer) {
	if l.Len() == 0 {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	totals := map[Kind]int{}
	ranks := map[int]bool{}
	for _, e := range l.Events() {
		totals[e.Kind]++
		ranks[e.Rank] = true
	}
	kinds := make([]Kind, 0, len(totals))
	for k := range totals {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if totals[kinds[i]] != totals[kinds[j]] {
			return totals[kinds[i]] > totals[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	first, last := l.Span()
	fmt.Fprintf(w, "trace: %d events on %d ranks over %d ns\n",
		l.Len(), len(ranks), last-first)
	if d := l.Dropped(); d > 0 {
		fmt.Fprintf(w, "  (%d older events dropped by ring buffers)\n", d)
	}
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-13s %8d\n", k, totals[k])
	}
}

// node maps a rank to its simulated node for timeline grouping.
func (l *Log) node(rank int) int {
	if l != nil && l.CoresPerNode > 0 {
		return rank / l.CoresPerNode
	}
	return 0
}

// chromeEvent is the Chrome tracing event schema (instant and complete).
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// ChromeJSON writes the log in the Chrome tracing (about://tracing /
// Perfetto) JSON array format: spans as "X" complete events, the rest as
// instants, with one "thread" (TID) per rank grouped into "processes"
// (PID) by simulated node.
func (l *Log) ChromeJSON(w io.Writer) error {
	out := make([]chromeEvent, 0, l.Len())
	for _, e := range l.Events() {
		ce := chromeEvent{
			Name: e.Kind.String(),
			TS:   float64(e.T) / 1000,
			PID:  l.node(e.Rank),
			TID:  e.Rank,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1000
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		if e.Arg != 0 || e.Arg2 != 0 {
			ce.Args = map[string]int64{"arg": e.Arg, "arg2": e.Arg2}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DumpSchema identifies the trace dump document format.
const DumpSchema = "itytrace/v1"

// Meta is run metadata carried alongside a trace dump so offline analysis
// does not need the original configuration.
type Meta struct {
	Ranks        int             `json:"ranks"`
	CoresPerNode int             `json:"cores_per_node,omitempty"`
	Policy       string          `json:"policy,omitempty"`
	Metrics      json.RawMessage `json:"metrics,omitempty"`
	// Profile, when present, is the run's embedded streaming-profile
	// snapshot (an "itoyori-profile/v1" document, see internal/profile).
	Profile json.RawMessage `json:"profile,omitempty"`
	// Validator, when present, is the run's embedded checkout-discipline
	// validator snapshot (an "ityr-validator/v1" document; present iff the
	// run had pgas.Config.Validate on, even when it recorded nothing).
	Validator json.RawMessage `json:"validator,omitempty"`
	// Dropped and DroppedByRank surface ring-buffer truncation: the total
	// overwritten events and the per-rank breakdown (nil when clean).
	// Filled by ReadDump; WriteDump computes them from the log itself.
	Dropped       uint64   `json:"-"`
	DroppedByRank []uint64 `json:"-"`
}

// dumpDoc is the on-disk form: events as compact [t, dur, rank, kind,
// arg, arg2] tuples in recording order.
type dumpDoc struct {
	Schema        string          `json:"schema"`
	Ranks         int             `json:"ranks"`
	CoresPerNode  int             `json:"cores_per_node,omitempty"`
	Policy        string          `json:"policy,omitempty"`
	Dropped       uint64          `json:"dropped,omitempty"`
	DroppedByRank []uint64        `json:"dropped_by_rank,omitempty"`
	Metrics       json.RawMessage `json:"metrics,omitempty"`
	Profile       json.RawMessage `json:"profile,omitempty"`
	Validator     json.RawMessage `json:"validator,omitempty"`
	Events        [][6]int64      `json:"events"`
}

// WriteDump serializes the log and metadata as an "itytrace/v1" JSON
// document for cmd/itytrace.
func (l *Log) WriteDump(w io.Writer, m Meta) error {
	doc := dumpDoc{
		Schema:        DumpSchema,
		Ranks:         m.Ranks,
		CoresPerNode:  m.CoresPerNode,
		Policy:        m.Policy,
		Dropped:       l.Dropped(),
		DroppedByRank: l.DroppedByRank(),
		Metrics:       m.Metrics,
		Profile:       m.Profile,
		Validator:     m.Validator,
		Events:        make([][6]int64, 0, l.Len()),
	}
	if doc.CoresPerNode == 0 && l != nil {
		doc.CoresPerNode = l.CoresPerNode
	}
	for _, e := range l.Events() {
		doc.Events = append(doc.Events,
			[6]int64{int64(e.T), int64(e.Dur), int64(e.Rank), int64(e.Kind), e.Arg, e.Arg2})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadDump parses an "itytrace/v1" document back into a Log and its Meta.
func ReadDump(r io.Reader) (*Log, Meta, error) {
	var doc dumpDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, Meta{}, fmt.Errorf("trace: reading dump: %w", err)
	}
	if doc.Schema != DumpSchema {
		return nil, Meta{}, fmt.Errorf("trace: unsupported dump schema %q (want %q)", doc.Schema, DumpSchema)
	}
	l := New()
	l.CoresPerNode = doc.CoresPerNode
	for _, t := range doc.Events {
		l.rec(Event{
			T:    sim.Time(t[0]),
			Dur:  sim.Time(t[1]),
			Rank: int(t[2]),
			Kind: Kind(t[3]),
			Arg:  t[4],
			Arg2: t[5],
		})
	}
	m := Meta{
		Ranks:         doc.Ranks,
		CoresPerNode:  doc.CoresPerNode,
		Policy:        doc.Policy,
		Metrics:       doc.Metrics,
		Profile:       doc.Profile,
		Validator:     doc.Validator,
		Dropped:       doc.Dropped,
		DroppedByRank: doc.DroppedByRank,
	}
	return l, m, nil
}
