// Package trace records timestamped runtime events (scheduler actions,
// fences, cache misses) for debugging and performance analysis — the
// simulator's equivalent of Itoyori's execution tracer. Logs can be
// dumped as text, summarized per rank, or exported in the Chrome tracing
// JSON format for visual timelines.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ityr/internal/sim"
)

// Kind labels an event.
type Kind uint8

// Event kinds.
const (
	KFork Kind = iota
	KSteal
	KFailedSteal
	KMigrate
	KRelease
	KLazyRelease
	KAcquire
	KCacheMiss
	KWriteBack
	KEviction
	KRegionEnter
	KRegionExit
	numKinds
)

var kindNames = [numKinds]string{
	"fork", "steal", "failed-steal", "migrate", "release", "lazy-release",
	"acquire", "cache-miss", "write-back", "eviction", "region-enter", "region-exit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence. Arg is kind-specific (bytes for cache
// events, victim rank for steals, ...).
type Event struct {
	T    sim.Time
	Rank int
	Kind Kind
	Arg  int64
}

// Log is an event recorder. A nil *Log is valid and records nothing, so
// callers need no enabled-checks.
type Log struct {
	events []Event
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Rec appends an event. No-op on a nil log.
func (l *Log) Rec(t sim.Time, rank int, kind Kind, arg int64) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{T: t, Rank: rank, Kind: kind, Arg: arg})
}

// Len returns the number of recorded events (0 for nil).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Count returns how many events of the given kind were recorded.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dump writes one line per event.
func (l *Log) Dump(w io.Writer) {
	for _, e := range l.Events() {
		fmt.Fprintf(w, "%12d ns  rank %3d  %-13s %d\n", e.T, e.Rank, e.Kind, e.Arg)
	}
}

// Summary writes per-kind totals and per-rank counts for the busiest kinds.
func (l *Log) Summary(w io.Writer) {
	if l.Len() == 0 {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	totals := map[Kind]int{}
	ranks := map[int]bool{}
	for _, e := range l.events {
		totals[e.Kind]++
		ranks[e.Rank] = true
	}
	kinds := make([]Kind, 0, len(totals))
	for k := range totals {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return totals[kinds[i]] > totals[kinds[j]] })
	fmt.Fprintf(w, "trace: %d events on %d ranks over %d ns\n",
		len(l.events), len(ranks), l.events[len(l.events)-1].T-l.events[0].T)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-13s %8d\n", k, totals[k])
	}
}

// chromeEvent is the Chrome tracing "instant event" schema.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	S    string  `json:"s"`
}

// ChromeJSON writes the log in the Chrome tracing (about://tracing /
// Perfetto) JSON array format, one instant event per record, with one
// "thread" per rank.
func (l *Log) ChromeJSON(w io.Writer) error {
	out := make([]chromeEvent, 0, l.Len())
	for _, e := range l.Events() {
		out = append(out, chromeEvent{
			Name: e.Kind.String(),
			Ph:   "i",
			TS:   float64(e.T) / 1000,
			PID:  0,
			TID:  e.Rank,
			S:    "t",
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
