package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixtureLog builds a tiny two-rank fork-join trace by hand:
//
//	rank 0, tid 1 (root): runs [0,200), forks tid 2, runs [200,300),
//	                      joins at 450, ends (root).
//	rank 1:               steals tid 2 over [200,250), runs it [250,450),
//	                      tid 2 ends into parent tid 1.
//
// Hand-computed ground truth: work 500, critical path 400 (root's 200
// pre-fork + child's 200, which exceeds the root continuation's 100),
// elapsed 450, rank 0 busy 300/idle 150, rank 1 busy 200 + steal 50 +
// idle 200.
func fixtureLog() *Log {
	l := New()
	l.RecSpan(0, 200, 0, KTaskRun, 1, 0)
	l.Rec2(200, 0, KFork, 2, 1)
	l.RecSpan(200, 100, 0, KTaskRun, 1, 0)
	l.RecSpan(200, 50, 1, KSteal, 0, 2)
	l.RecSpan(250, 200, 1, KTaskRun, 2, 0)
	l.Rec2(450, 1, KTaskEnd, 2, 1)
	l.Rec2(450, 0, KJoin, 2, 1)
	l.Rec2(450, 0, KTaskEnd, 1, 0)
	return l
}

func TestAnalyzeFixture(t *testing.T) {
	a := Analyze(fixtureLog(), 2)
	if a.Work != 500 {
		t.Errorf("Work = %d, want 500", a.Work)
	}
	if a.CritPath != 400 {
		t.Errorf("CritPath = %d, want 400", a.CritPath)
	}
	if a.Elapsed != 450 {
		t.Errorf("Elapsed = %d, want 450", a.Elapsed)
	}
	if a.Parallelism != 1.25 {
		t.Errorf("Parallelism = %v, want 1.25", a.Parallelism)
	}
	if a.Steals != 1 || a.FailedSteals != 0 {
		t.Errorf("Steals = %d/%d failed, want 1/0", a.Steals, a.FailedSteals)
	}
	if a.LiveTasks != 0 {
		t.Errorf("LiveTasks = %d, want 0", a.LiveTasks)
	}
	want := []RankActivity{
		{Rank: 0, Busy: 300, Steal: 0, Idle: 150},
		{Rank: 1, Busy: 200, Steal: 50, Idle: 200},
	}
	if len(a.Ranks) != len(want) {
		t.Fatalf("len(Ranks) = %d, want %d", len(a.Ranks), len(want))
	}
	for i, w := range want {
		if a.Ranks[i] != w {
			t.Errorf("Ranks[%d] = %+v, want %+v", i, a.Ranks[i], w)
		}
	}
	if a.StealLatency.Count != 1 || a.StealLatency.Sum != 50 {
		t.Errorf("StealLatency = %+v, want count 1 sum 50", a.StealLatency)
	}
	// 50ns lands in the first bucket (<= 500).
	if a.StealLatency.Counts[0] != 1 {
		t.Errorf("StealLatency.Counts[0] = %d, want 1", a.StealLatency.Counts[0])
	}
}

// A truncated trace (missing join/end events) must be flagged rather than
// silently reporting a too-short critical path.
func TestAnalyzeTruncated(t *testing.T) {
	l := New()
	l.RecSpan(0, 200, 0, KTaskRun, 1, 0)
	l.Rec2(200, 0, KFork, 2, 1)
	a := Analyze(l, 1)
	if a.LiveTasks != 2 {
		t.Errorf("LiveTasks = %d, want 2 (root + unjoined child)", a.LiveTasks)
	}
	var b strings.Builder
	a.WriteReport(&b)
	if !strings.Contains(b.String(), "truncated") {
		t.Errorf("report does not flag truncation:\n%s", b.String())
	}
}

// Extra ranks that recorded nothing still get an all-idle row.
func TestAnalyzeIdleRanks(t *testing.T) {
	a := Analyze(fixtureLog(), 4)
	if len(a.Ranks) != 4 {
		t.Fatalf("len(Ranks) = %d, want 4", len(a.Ranks))
	}
	if r := a.Ranks[3]; r.Busy != 0 || r.Steal != 0 || r.Idle != a.Elapsed {
		t.Errorf("Ranks[3] = %+v, want all-idle over %d", r, a.Elapsed)
	}
}

func TestWriteReportContents(t *testing.T) {
	var b strings.Builder
	Analyze(fixtureLog(), 2).WriteReport(&b)
	out := b.String()
	for _, want := range []string{"critical path", "parallelism", "1.25", "busy", "steal latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCacheReport(t *testing.T) {
	raw := json.RawMessage(`{
		"schema": "itoyori-metrics/v1",
		"labels": {"policy": "Write-Back"},
		"counters": {
			"pgas_hit_bytes": 300, "pgas_fetch_bytes": 100,
			"pgas_checkout_calls": 7, "pgas_evictions": 2,
			"pgas_writeback_ops": 3, "pgas_writeback_bytes": 64
		}
	}`)
	var b strings.Builder
	if err := CacheReport(&b, "", raw); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Write-Back", "75.0%", "checkouts  7", "evictions 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("cache report missing %q:\n%s", want, out)
		}
	}
	// No metrics embedded: report nothing, no error.
	b.Reset()
	if err := CacheReport(&b, "x", nil); err != nil || b.Len() != 0 {
		t.Errorf("empty metrics: got err %v, output %q", err, b.String())
	}
	if err := CacheReport(&b, "x", json.RawMessage(`{bad`)); err == nil {
		t.Error("malformed metrics snapshot did not error")
	}
}
