// Trace analysis: Cilkview-style work/span accounting and per-rank
// activity breakdowns computed from a recorded log. This is the engine
// behind cmd/itytrace; it lives here so it can be unit-tested against
// hand-built fixtures and reused by benchmarks.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"ityr/internal/metrics"
	"ityr/internal/sim"
)

// RankActivity is one rank's share of the elapsed time.
type RankActivity struct {
	Rank  int
	Busy  sim.Time // executing task segments (KTaskRun spans)
	Steal sim.Time // inside steal attempts, successful or not
	Idle  sim.Time // the remainder of the elapsed window
}

// Analysis is the result of analyzing one trace.
type Analysis struct {
	Elapsed     sim.Time // max span end - min event time
	Work        sim.Time // total task execution time across ranks
	CritPath    sim.Time // longest dependence chain (the span, T_inf)
	Parallelism float64  // Work / CritPath

	Ranks []RankActivity

	Steals       int
	FailedSteals int
	// StealLatency / FailedStealLatency bucket the durations of KSteal /
	// KFailedSteal spans (thief-side latency, in virtual ns).
	StealLatency       metrics.HistogramSnapshot
	FailedStealLatency metrics.HistogramSnapshot

	// LiveTasks is the number of forked-but-unjoined threads left at the
	// end of the trace. Nonzero means the trace is truncated (ring
	// overwrote fork/join events) and CritPath is a lower bound.
	LiveTasks int

	// Resilience activity (all zero for fault-free runs): RMA retries and
	// the virtual time their timeouts + backoff cost, and steal-victim
	// blacklisting episodes with their total penalty-window time.
	Retries       int
	RetryTime     sim.Time
	Blacklists    int
	BlacklistTime sim.Time
}

// StealLatencyBounds are the histogram bucket bounds (virtual ns) used
// for steal latency: 500ns .. ~16ms, doubling.
var StealLatencyBounds = metrics.ExpBuckets(500, 2, 16)

// Analyze computes work/span and per-rank activity from a log. nranks is
// the total rank count of the run (ranks that recorded nothing still get
// an all-idle row); nranks <= 0 infers the count from the events.
//
// The critical path follows the fork-join DAG recorded by the scheduler:
// a KFork copies the parent's accumulated path length to the child, each
// KTaskRun span extends its thread's path, and a KJoin folds the child's
// path back into the parent with max(). The root thread's final path
// length is the span (T_inf); Work/Span is the available parallelism, as
// in Cilkview.
func Analyze(l *Log, nranks int) Analysis {
	events := l.Events()
	var a Analysis
	stealLat := metrics.NewHistogram(StealLatencyBounds)
	failedLat := metrics.NewHistogram(StealLatencyBounds)

	cp := map[int64]sim.Time{}  // thread ID -> accumulated path length
	busy := map[int]sim.Time{}  // rank -> busy time
	steal := map[int]sim.Time{} // rank -> steal-attempt time
	maxRank := -1
	var first, last sim.Time
	started := false

	for _, e := range events {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
		if !started || e.T < first {
			first = e.T
		}
		if end := e.T + e.Dur; !started || end > last {
			last = end
		}
		started = true

		switch e.Kind {
		case KTaskRun:
			cp[e.Arg] += e.Dur
			busy[e.Rank] += e.Dur
			a.Work += e.Dur
		case KFork:
			cp[e.Arg] = cp[e.Arg2]
		case KJoin:
			if c := cp[e.Arg]; c > cp[e.Arg2] {
				cp[e.Arg2] = c
			}
			delete(cp, e.Arg)
		case KTaskEnd:
			if e.Arg2 == 0 {
				// A root task finished: its path length is that region's
				// span. Regions run sequentially, so spans add up.
				a.CritPath += cp[e.Arg]
				delete(cp, e.Arg)
			}
		case KSteal:
			a.Steals++
			steal[e.Rank] += e.Dur
			stealLat.Observe(int64(e.Dur))
		case KFailedSteal:
			a.FailedSteals++
			steal[e.Rank] += e.Dur
			failedLat.Observe(int64(e.Dur))
		case KRetry:
			a.Retries++
			a.RetryTime += e.Dur
		case KBlacklist:
			a.Blacklists++
			a.BlacklistTime += e.Dur
		}
	}

	a.Elapsed = last - first
	a.LiveTasks = len(cp)
	if a.CritPath > 0 {
		a.Parallelism = float64(a.Work) / float64(a.CritPath)
	}
	a.StealLatency = stealLat.Snap()
	a.FailedStealLatency = failedLat.Snap()

	if nranks <= 0 {
		nranks = maxRank + 1
	}
	a.Ranks = make([]RankActivity, nranks)
	for r := 0; r < nranks; r++ {
		ra := RankActivity{Rank: r, Busy: busy[r], Steal: steal[r]}
		if idle := a.Elapsed - ra.Busy - ra.Steal; idle > 0 {
			ra.Idle = idle
		}
		a.Ranks[r] = ra
	}
	return a
}

func pct(part, whole sim.Time) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteReport writes the analysis as a human-readable text report.
func (a Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "elapsed       %12d ns\n", a.Elapsed)
	fmt.Fprintf(w, "work          %12d ns\n", a.Work)
	fmt.Fprintf(w, "critical path %12d ns\n", a.CritPath)
	fmt.Fprintf(w, "parallelism   %15.2f\n", a.Parallelism)
	if a.LiveTasks > 0 {
		fmt.Fprintf(w, "  (trace truncated: %d unjoined tasks; critical path is a lower bound)\n", a.LiveTasks)
	}
	fmt.Fprintf(w, "steals        %8d ok, %d failed\n", a.Steals, a.FailedSteals)
	fmt.Fprintf(w, "\nper-rank activity (%% of elapsed):\n")
	fmt.Fprintf(w, "  rank        busy       steal        idle\n")
	for _, r := range a.Ranks {
		fmt.Fprintf(w, "  %4d     %6.1f%%     %6.1f%%     %6.1f%%\n",
			r.Rank, pct(r.Busy, a.Elapsed), pct(r.Steal, a.Elapsed), pct(r.Idle, a.Elapsed))
	}
	if a.StealLatency.Count > 0 {
		fmt.Fprintf(w, "\nsteal latency (ns): count %d  mean %.0f  min %d  max %d\n",
			a.StealLatency.Count,
			float64(a.StealLatency.Sum)/float64(a.StealLatency.Count),
			a.StealLatency.Min, a.StealLatency.Max)
		writeHistBars(w, a.StealLatency)
	}
	if a.FailedStealLatency.Count > 0 {
		fmt.Fprintf(w, "\nfailed-steal latency (ns): count %d  mean %.0f\n",
			a.FailedStealLatency.Count,
			float64(a.FailedStealLatency.Sum)/float64(a.FailedStealLatency.Count))
	}
	if a.Retries > 0 || a.Blacklists > 0 {
		fmt.Fprintf(w, "\nresilience:\n")
		fmt.Fprintf(w, "  rma retries        %8d  (%d ns timeout+backoff, %.1f%% of elapsed)\n",
			a.Retries, a.RetryTime, pct(a.RetryTime, a.Elapsed))
		fmt.Fprintf(w, "  victim blacklists  %8d  (%d ns of penalty windows)\n",
			a.Blacklists, a.BlacklistTime)
	}
}

// writeHistBars prints the non-empty buckets of a histogram with
// proportional bars.
func writeHistBars(w io.Writer, h metrics.HistogramSnapshot) {
	var maxCount uint64
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		var label string
		if i < len(h.Bounds) {
			label = fmt.Sprintf("<= %d", h.Bounds[i])
		} else {
			label = fmt.Sprintf(" > %d", h.Bounds[len(h.Bounds)-1])
		}
		bar := int(40 * c / maxCount)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %-12s %8d  %s\n", label, c, bars[:bar])
	}
}

const bars = "########################################"

// CacheReport summarizes the PGAS cache behavior recorded in a metrics
// snapshot (as embedded in a dump's Meta.Metrics). It reports the
// hit rate by bytes: HitBytes / (HitBytes + FetchBytes).
func CacheReport(w io.Writer, policy string, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("trace: parsing metrics snapshot: %w", err)
	}
	if policy == "" {
		policy = snap.Labels["policy"]
	}
	hit := snap.Counters["pgas_hit_bytes"]
	fetch := snap.Counters["pgas_fetch_bytes"]
	fmt.Fprintf(w, "\ncache (policy %s):\n", policy)
	total := hit + fetch
	if total > 0 {
		fmt.Fprintf(w, "  hit rate   %6.1f%%  (%d hit / %d fetched bytes)\n",
			100*float64(hit)/float64(total), hit, fetch)
	} else {
		fmt.Fprintf(w, "  no cached accesses recorded\n")
	}
	fmt.Fprintf(w, "  checkouts  %d  evictions %d  write-backs %d ops / %d bytes\n",
		snap.Counters["pgas_checkout_calls"],
		snap.Counters["pgas_evictions"],
		snap.Counters["pgas_writeback_ops"],
		snap.Counters["pgas_writeback_bytes"])
	// Communication-batching lines appear only when the knobs were on.
	if merged := snap.Counters["pgas_wb_runs_merged"]; merged > 0 {
		fmt.Fprintf(w, "  coalesced  %d dirty runs merged into larger puts (%d bytes shipped merged)\n",
			merged, snap.Counters["pgas_wb_coalesced_bytes"])
	}
	if ops := snap.Counters["pgas_prefetch_ops"]; ops > 0 {
		fmt.Fprintf(w, "  prefetch   %d batched gets / %d blocks / %d bytes: %d hits, %d evicted unused\n",
			ops,
			snap.Counters["pgas_prefetch_blocks"],
			snap.Counters["pgas_prefetch_bytes"],
			snap.Counters["pgas_prefetch_hits"],
			snap.Counters["pgas_prefetch_misses"])
	}
	return nil
}

// ResilienceReport summarizes fault-injection and recovery activity from a
// metrics snapshot: retry/timeout/backoff counters from the RMA layer and
// steal-blacklist counters from the scheduler. Unlike the span-based
// section of WriteReport it survives ring truncation, because the counters
// cover the whole run. Silent when the run saw no resilience activity.
func ResilienceReport(w io.Writer, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("trace: parsing metrics snapshot: %w", err)
	}
	retries := snap.Counters["rma_retries"]
	blacklists := snap.Counters["uth_steal_blacklists"]
	injected := snap.Counters["fault_injected_failures"]
	sdcActive := snap.Counters["sdc_protected_tasks"] != 0 ||
		snap.Counters["sdc_injected_flips"] != 0 ||
		snap.Counters["replica_tasks"] != 0
	if retries == 0 && blacklists == 0 && injected == 0 && !sdcActive {
		return nil
	}
	fmt.Fprintf(w, "\nresilience (whole-run counters):\n")
	if retries != 0 || blacklists != 0 || injected != 0 {
		fmt.Fprintf(w, "  injected failures   %d  (budget exhausted on %d rank(s))\n",
			injected, snap.Counters["fault_budget_exhausted_ranks"])
		fmt.Fprintf(w, "  rma retries         %d  (%d ns of timeout+backoff stall)\n",
			retries, snap.Counters["rma_retry_stall_ns"])
		fmt.Fprintf(w, "  steal timeouts      %d   blacklists %d   redirected picks %d\n",
			snap.Counters["uth_steal_timeouts"],
			snap.Counters["uth_steal_blacklists"],
			snap.Counters["uth_blacklist_skips"])
	}
	if sdcActive {
		sdcReport(w, &snap)
	}
	return nil
}

// sdcReport prints the silent-data-corruption section of the resilience
// report: whole-run counters plus a per-rank injected-vs-detected table.
// Escapes — corruptions that reached neither the replication digest nor the
// wire checksum — are the dangerous quantity, so they are flagged
// explicitly rather than left as a column the reader must scan.
func sdcReport(w io.Writer, snap *metrics.Snapshot) {
	escaped := snap.Counters["sdc_escaped"]
	fmt.Fprintf(w, "  sdc: protected %d  replicas %d  detected %d  recovered %d  injected flips %d (wire %d)\n",
		snap.Counters["sdc_protected_tasks"],
		snap.Counters["replica_tasks"],
		snap.Counters["sdc_detected"],
		snap.Counters["sdc_recovered"],
		snap.Counters["sdc_injected_flips"],
		snap.Counters["sdc_wire_flips"])
	if escaped > 0 {
		fmt.Fprintf(w, "  sdc: *** %d UNDETECTED ESCAPE(S) — output may be silently corrupt ***\n", escaped)
	} else if snap.Counters["sdc_injected_flips"] > 0 {
		fmt.Fprintf(w, "  sdc: no undetected escapes\n")
	}
	// Per-rank table, present only when a corruption plan was armed.
	if _, ok := snap.Counters["sdc_injected_rank_00"]; !ok {
		return
	}
	fmt.Fprintf(w, "  sdc per-rank corruption (injected / detected / escaped):\n")
	for i := 0; ; i++ {
		inj, ok := snap.Counters[fmt.Sprintf("sdc_injected_rank_%02d", i)]
		if !ok {
			break
		}
		det := snap.Counters[fmt.Sprintf("sdc_detected_rank_%02d", i)]
		esc := snap.Counters[fmt.Sprintf("sdc_escaped_rank_%02d", i)]
		if inj == 0 && det == 0 && esc == 0 {
			continue
		}
		flag := ""
		if esc > 0 {
			flag = "  <-- UNDETECTED"
		}
		fmt.Fprintf(w, "    rank %2d   %6d %9d %8d%s\n", i, inj, det, esc, flag)
	}
}
