package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ityr/internal/metrics"
	"ityr/internal/sim"
)

func TestDumpRoundtrip(t *testing.T) {
	l := fixtureLog()
	l.CoresPerNode = 2
	meta := Meta{
		Ranks:        2,
		CoresPerNode: 2,
		Policy:       "Write-Back",
		Metrics:      json.RawMessage(`{"schema":"itoyori-metrics/v1"}`),
	}
	var b bytes.Buffer
	if err := l.WriteDump(&b, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadDump(&b)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Ranks != 2 || gotMeta.CoresPerNode != 2 || gotMeta.Policy != "Write-Back" {
		t.Errorf("meta = %+v", gotMeta)
	}
	if string(gotMeta.Metrics) != `{"schema":"itoyori-metrics/v1"}` {
		t.Errorf("metrics payload = %s", gotMeta.Metrics)
	}
	if got.CoresPerNode != 2 {
		t.Errorf("CoresPerNode = %d, want 2", got.CoresPerNode)
	}
	want, have := l.Events(), got.Events()
	if len(want) != len(have) {
		t.Fatalf("event count %d != %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Errorf("event %d: %+v != %+v", i, have[i], want[i])
		}
	}
	// The analysis of the round-tripped log must match the original.
	if a, b := Analyze(l, 2), Analyze(got, 2); a.CritPath != b.CritPath || a.Work != b.Work {
		t.Errorf("analysis drift after roundtrip: %+v vs %+v", a, b)
	}
}

func TestReadDumpRejectsUnknownSchema(t *testing.T) {
	if _, _, err := ReadDump(strings.NewReader(`{"schema":"bogus/v9","events":[]}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, _, err := ReadDump(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed input accepted")
	}
}

// Satellite regression: Summary must report the min..max time range even
// when ranks record out of timestamp order (per-rank rings are only
// locally sorted), and must account span durations in the range end.
func TestSummaryOutOfOrderRanks(t *testing.T) {
	l := New()
	l.Rec(100, 0, KFork, 1)               // recorded first, but not the earliest
	l.Rec(10, 1, KAcquire, 0)             // earliest event, later rank
	l.RecSpan(20, 500, 1, KTaskRun, 1, 0) // ends at 520: the true max
	l.Rec(110, 0, KRelease, 0)            // recorded last, not the latest
	if first, last := l.Span(); first != 10 || last != 520 {
		t.Fatalf("Span() = (%d, %d), want (10, 520)", first, last)
	}
	var b strings.Builder
	l.Summary(&b)
	if !strings.Contains(b.String(), "over 510 ns") {
		t.Errorf("summary range wrong (want 'over 510 ns'):\n%s", b.String())
	}
}

// Satellite regression: Chrome export groups ranks into nodes via PID and
// emits spans as complete ("X") events with microsecond durations.
func TestChromeJSONSpansAndNodePID(t *testing.T) {
	l := New()
	l.CoresPerNode = 2
	l.RecSpan(1000, 2000, 3, KTaskRun, 7, 0) // rank 3 -> node 1
	l.Rec(500, 0, KFork, 1)                  // rank 0 -> node 0
	var b bytes.Buffer
	if err := l.ChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(b.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	span, inst := evs[0], evs[1] // export preserves recording order
	if span["ph"] != "X" || span["dur"] != 2.0 || span["ts"] != 1.0 {
		t.Errorf("span event = %v, want ph X dur 2 ts 1", span)
	}
	if span["pid"] != 1.0 || span["tid"] != 3.0 {
		t.Errorf("span pid/tid = %v/%v, want node 1 / rank 3", span["pid"], span["tid"])
	}
	if inst["ph"] != "i" || inst["pid"] != 0.0 {
		t.Errorf("instant event = %v, want ph i pid 0", inst)
	}
}

func TestRingDropsOldest(t *testing.T) {
	l := NewRing(2)
	for i := int64(1); i <= 5; i++ {
		l.Rec(sim.Time(i*10), 0, KFork, i)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
	evs := l.Events()
	if evs[0].Arg != 4 || evs[1].Arg != 5 {
		t.Errorf("retained args %d,%d, want 4,5", evs[0].Arg, evs[1].Arg)
	}
	var b strings.Builder
	l.Summary(&b)
	if !strings.Contains(b.String(), "3 older events dropped") {
		t.Errorf("summary does not mention drops:\n%s", b.String())
	}
}

// The off-switch must be free: a nil log and nil metrics instruments do
// no work and no allocation per event — this is what lets every call
// site record unconditionally.
func TestDisabledInstrumentationZeroAllocs(t *testing.T) {
	var l *Log
	var h *metrics.Histogram
	var c *metrics.Counter
	if n := testing.AllocsPerRun(100, func() {
		l.Rec(1, 0, KFork, 1)
		l.Rec2(1, 0, KFork, 1, 2)
		l.RecSpan(1, 2, 0, KTaskRun, 1, 0)
		h.Observe(42)
		c.Inc()
	}); n != 0 {
		t.Errorf("disabled instrumentation allocates %v per event, want 0", n)
	}
}

// The profile snapshot and per-rank drop totals ride the dump as opaque
// metadata: WriteDump computes drops from the live rings, ReadDump hands
// both back so offline reports can warn and render without the runtime.
func TestDumpProfileAndDropsRoundtrip(t *testing.T) {
	l := NewRing(2)
	for i := int64(1); i <= 5; i++ {
		l.Rec(sim.Time(i*10), 1, KFork, i) // rank 1 drops 3
	}
	l.Rec(60, 0, KFork, 9) // rank 0 drops none
	prof := json.RawMessage(`{"schema":"itoyori-profile/v1","ranks":2}`)
	var b bytes.Buffer
	if err := l.WriteDump(&b, Meta{Ranks: 2, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	_, meta, err := ReadDump(&b)
	if err != nil {
		t.Fatal(err)
	}
	if string(meta.Profile) != string(prof) {
		t.Errorf("profile payload = %s", meta.Profile)
	}
	if meta.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", meta.Dropped)
	}
	if len(meta.DroppedByRank) != 2 || meta.DroppedByRank[0] != 0 || meta.DroppedByRank[1] != 3 {
		t.Errorf("DroppedByRank = %v, want [0 3]", meta.DroppedByRank)
	}

	var w strings.Builder
	if !DropWarning(&w, meta) {
		t.Fatal("DropWarning did not fire on a truncated dump")
	}
	if !strings.HasPrefix(w.String(), "WARNING:") || !strings.Contains(w.String(), "rank 1: 3") {
		t.Errorf("warning line = %q", w.String())
	}
	if DropWarning(&strings.Builder{}, Meta{Ranks: 2}) {
		t.Error("DropWarning fired on a clean dump")
	}

	var rep strings.Builder
	if err := ProfileReport(&rep, meta.Profile); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "streaming profile") {
		t.Errorf("profile report missing header:\n%s", rep.String())
	}
	if err := ProfileReport(&rep, nil); err != nil {
		t.Errorf("empty profile payload should be silent, got %v", err)
	}
	if err := ProfileReport(&rep, json.RawMessage(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("unknown profile schema accepted")
	}
}
