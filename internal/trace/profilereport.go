// Streaming-profile report sections for cmd/itytrace: offline renderers
// for the "itoyori-profile/v1" snapshot a dump may embed (Meta.Profile)
// and for the ring-truncation warning every report must lead with.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ityr/internal/profile"
)

// DropWarning writes the one-line ring-truncation warning when the dump
// lost events, listing the heaviest per-rank drop totals, and reports
// whether it warned. Reports print it first: every span-derived number
// below it is a lower bound once rings truncated.
func DropWarning(w io.Writer, m Meta) bool {
	if m.Dropped == 0 {
		return false
	}
	type rankDrops struct {
		rank int
		n    uint64
	}
	var rds []rankDrops
	for r, n := range m.DroppedByRank {
		if n > 0 {
			rds = append(rds, rankDrops{rank: r, n: n})
		}
	}
	sort.Slice(rds, func(i, j int) bool {
		if rds[i].n != rds[j].n {
			return rds[i].n > rds[j].n
		}
		return rds[i].rank < rds[j].rank
	})
	detail := ""
	const show = 8
	for i, e := range rds {
		if i == show {
			detail += ", ..."
			break
		}
		if i > 0 {
			detail += ", "
		}
		detail += fmt.Sprintf("rank %d: %d", e.rank, e.n)
	}
	if detail != "" {
		detail = " (" + detail + ")"
	}
	fmt.Fprintf(w, "WARNING: span rings dropped %d events on %d rank(s)%s — span-derived numbers are lower bounds\n",
		m.Dropped, len(rds), detail)
	return true
}

// reportShades maps intensity 0..9 to a heat character.
const reportShades = " .:-=+*#%@"

func shade(v, max uint64) byte {
	if v == 0 || max == 0 {
		return reportShades[0]
	}
	idx := 1 + int(v*8/max)
	return reportShades[idx]
}

// ProfileReport renders the streaming-profile snapshot embedded in a dump:
// the whole-run rollup, the communication tier split, the hottest
// origin→target pairs (with the exact matrix as a heat grid at small rank
// counts), and the per-kind occupancy timeline. Silent when the dump
// carries no profile section.
func ProfileReport(w io.Writer, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var doc profile.Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("trace: parsing profile snapshot: %w", err)
	}
	if doc.Schema != profile.Schema {
		return fmt.Errorf("trace: unsupported profile schema %q (want %q)", doc.Schema, profile.Schema)
	}
	fmt.Fprintf(w, "\nstreaming profile (%s, %d ranks):\n", doc.Schema, doc.Ranks)
	ru := doc.Rollup
	fmt.Fprintf(w, "  time (ns)  task %d  steal %d  idle %d  stall %d  barrier %d\n",
		ru.TaskNs, ru.StealNs, ru.IdleNs, ru.StallNs, ru.BarrierNs)
	fmt.Fprintf(w, "  rma        %d gets / %d bytes   %d puts / %d bytes   %d atomics\n",
		ru.GetOps, ru.GetBytes, ru.PutOps, ru.PutBytes, ru.AtomicOps)
	if total := ru.CheckoutHitBytes + ru.CheckoutMissBytes; total > 0 {
		fmt.Fprintf(w, "  checkout   %d calls, hit rate %.1f%% (%d hit / %d fetched bytes in %d fetches)\n",
			ru.CheckoutCalls, 100*float64(ru.CheckoutHitBytes)/float64(total),
			ru.CheckoutHitBytes, ru.CheckoutMissBytes, ru.CheckoutMissOps)
	}

	var tierBytes, tierOps uint64
	for _, t := range doc.Tiers {
		tierBytes += t.Bytes
		tierOps += t.Ops
	}
	if tierOps > 0 {
		fmt.Fprintf(w, "\ncomm tier split:\n")
		var maxB uint64
		for _, t := range doc.Tiers {
			if t.Bytes > maxB {
				maxB = t.Bytes
			}
		}
		for _, t := range doc.Tiers {
			if t.Ops == 0 {
				continue
			}
			sharePct := 0.0
			if tierBytes > 0 {
				sharePct = 100 * float64(t.Bytes) / float64(tierBytes)
			}
			bar := 0
			if maxB > 0 {
				bar = int(40 * t.Bytes / maxB)
			}
			if bar == 0 && t.Bytes > 0 {
				bar = 1
			}
			fmt.Fprintf(w, "  %-7s %10d ops %14d bytes %6.1f%%  %s\n",
				t.Tier, t.Ops, t.Bytes, sharePct, bars[:bar])
		}
	}

	if len(doc.HotPairs) > 0 {
		note := ""
		if doc.HotPairsApprox {
			note = " (sketch-derived: byte totals are upper bounds)"
		}
		fmt.Fprintf(w, "\nhot pairs%s:\n", note)
		for _, p := range doc.HotPairs {
			fmt.Fprintf(w, "  %5d -> %-5d %10d ops %14d bytes\n", p.From, p.To, p.Ops, p.Bytes)
		}
	}

	if doc.Matrix != nil && doc.Ranks <= 32 {
		var maxCell uint64
		for _, row := range doc.Matrix {
			for _, b := range row {
				if b > maxCell {
					maxCell = b
				}
			}
		}
		if maxCell > 0 {
			fmt.Fprintf(w, "\ncomm matrix heat (rows = origin, cols = target, bytes):\n")
			for i, row := range doc.Matrix {
				cells := make([]byte, len(row))
				for j, b := range row {
					cells[j] = shade(b, maxCell)
				}
				fmt.Fprintf(w, "  %4d |%s|\n", i, cells)
			}
		}
	}

	tl := doc.Timeline
	if len(tl.Occupancy) > 0 && len(tl.Kinds) > 0 {
		var maxCell uint64
		totals := make([]uint64, len(tl.Kinds))
		for _, bucket := range tl.Occupancy {
			for k, v := range bucket {
				totals[k] += v
				if v > maxCell {
					maxCell = v
				}
			}
		}
		if maxCell > 0 {
			fmt.Fprintf(w, "\ntimeline (%d buckets × %d ns, occupancy heat per kind):\n",
				len(tl.Occupancy), tl.BucketNs)
			for k, name := range tl.Kinds {
				if totals[k] == 0 {
					continue
				}
				cells := make([]byte, len(tl.Occupancy))
				for b := range tl.Occupancy {
					cells[b] = shade(tl.Occupancy[b][k], maxCell)
				}
				fmt.Fprintf(w, "  %-8s |%s| %d ns\n", name, cells, totals[k])
			}
		}
	}
	return nil
}
