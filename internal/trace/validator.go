package trace

// Checkout-discipline validator interchange: internal/pgas detects the
// violations and builds ViolationRecord values; this file owns the shared
// schema so the records can travel inside an itytrace/v1 dump
// (Meta.Validator) and be rendered identically by cmd/itytrace's
// "validator" report section and by app binaries failing fast. The record
// type lives here rather than in pgas because pgas already imports trace;
// the reverse import would cycle.

import (
	"encoding/json"
	"fmt"
	"io"
)

// ValidatorSchema identifies the embedded validator snapshot document.
const ValidatorSchema = "ityr-validator/v1"

// ViolationRecord is one checkout-discipline violation: which rule an
// access broke, where (global offset range plus the rma window and
// segment-offset range it resolves to), by whom (rank and task segment),
// and against whom. Time/Dur mirror the KViolation span: the span starts
// at the conflicting earlier event and ends at the access that tripped
// the rule.
type ViolationRecord struct {
	// Time is the virtual start of the violation span (the conflicting
	// earlier event: the overlapped checkout, the retired checkin, or the
	// unreleased write). Time+Dur is when the rule tripped.
	Time int64 `json:"t"`
	// Dur is the span length in virtual ns.
	Dur int64 `json:"dur"`
	// Rank is the rank whose access tripped the rule.
	Rank int `json:"rank"`
	// Task is the trace DAG thread ID of the offending task segment
	// (0 = outside the fork-join region, i.e. SPMD context).
	Task int64 `json:"task"`
	// OtherRank / OtherTask identify the conflicting party (the holder of
	// the overlapped checkout, the earlier checkin, or the unreleased
	// writer). OtherRank is -1 when there is no second party.
	OtherRank int   `json:"other_rank"`
	OtherTask int64 `json:"other_task"`
	// Rule is the broken rule's stable name (e.g. "write-under-read").
	Rule string `json:"rule"`
	// Lo/Hi is the violating overlap as a global address range [Lo, Hi).
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	// Win is the rma window ID holding the range (-1 if unresolvable) and
	// Off is Lo's byte offset within the home's window segment, so the
	// report names window and offset range alongside global addresses.
	Win int   `json:"win"`
	Off int64 `json:"off"`
	// Detail is the full human-readable diagnostic sentence.
	Detail string `json:"detail"`
}

// validatorDoc is the embedded snapshot document.
type validatorDoc struct {
	Schema     string            `json:"schema"`
	Violations []ViolationRecord `json:"violations"`
}

// MarshalValidator encodes violation records as an "ityr-validator/v1"
// document for embedding in a trace dump.
func MarshalValidator(recs []ViolationRecord) (json.RawMessage, error) {
	return json.Marshal(validatorDoc{Schema: ValidatorSchema, Violations: recs})
}

// WriteViolations renders the "validator" report section: one header line
// plus, per violation, a summary line (time window, rank, task, rule,
// offsets) and the full diagnostic sentence.
func WriteViolations(w io.Writer, recs []ViolationRecord) {
	if len(recs) == 0 {
		fmt.Fprintf(w, "validator: clean (no checkout-discipline violations)\n")
		return
	}
	fmt.Fprintf(w, "validator: %d checkout-discipline violation(s)\n", len(recs))
	for _, v := range recs {
		fmt.Fprintf(w, "  [%d..%d ns] rank %d task %d  %-22s [%#x,%#x) win %d off %d..%d\n",
			v.Time, v.Time+v.Dur, v.Rank, v.Task, v.Rule, v.Lo, v.Hi,
			v.Win, v.Off, v.Off+int64(v.Hi-v.Lo))
		fmt.Fprintf(w, "      %s\n", v.Detail)
	}
}

// ValidatorReport parses an embedded validator snapshot and renders it via
// WriteViolations. An empty raw message (the run did not validate) prints
// nothing and returns nil.
func ValidatorReport(w io.Writer, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var doc validatorDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("trace: parsing validator snapshot: %w", err)
	}
	if doc.Schema != ValidatorSchema {
		return fmt.Errorf("trace: unsupported validator schema %q (want %q)", doc.Schema, ValidatorSchema)
	}
	fmt.Fprintln(w)
	WriteViolations(w, doc.Violations)
	return nil
}
