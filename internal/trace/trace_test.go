package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Rec(10, 0, KFork, 0) // must not panic
	if l.Len() != 0 || l.Count(KFork) != 0 || l.Events() != nil {
		t.Fatal("nil log misbehaved")
	}
	var sb strings.Builder
	l.Dump(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil dump wrote output")
	}
}

func TestRecordAndQuery(t *testing.T) {
	l := New()
	l.Rec(100, 0, KFork, 0)
	l.Rec(200, 1, KSteal, 0)
	l.Rec(300, 1, KCacheMiss, 4096)
	l.Rec(400, 0, KFork, 0)
	if l.Len() != 4 || l.Count(KFork) != 2 || l.Count(KSteal) != 1 {
		t.Fatalf("counts wrong: %d events, %d forks", l.Len(), l.Count(KFork))
	}
	if l.Events()[2].Arg != 4096 {
		t.Fatal("arg lost")
	}
}

func TestSummaryAndDump(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Rec(int64(i*100), i%2, KFork, 0)
	}
	l.Rec(600, 1, KSteal, 0)
	var sb strings.Builder
	l.Summary(&sb)
	if !strings.Contains(sb.String(), "fork") || !strings.Contains(sb.String(), "steal") {
		t.Fatalf("summary missing kinds:\n%s", sb.String())
	}
	sb.Reset()
	l.Dump(&sb)
	if lines := strings.Count(sb.String(), "\n"); lines != 6 {
		t.Fatalf("dump has %d lines, want 6", lines)
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	l := New()
	l.Rec(1500, 2, KAcquire, 0)
	l.Rec(2500, 3, KRelease, 0)
	var sb strings.Builder
	if err := l.ChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 2 || parsed[0]["name"] != "acquire" || parsed[0]["tid"] != float64(2) {
		t.Fatalf("chrome events wrong: %v", parsed)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Fatal("unknown kind should fall back")
	}
}
