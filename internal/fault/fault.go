// Package fault provides seeded, deterministic fault injection for the
// simulated Itoyori runtime.
//
// A Plan describes every fault a run will experience: link-degradation
// windows (latency spikes, jitter, bandwidth collapse), transient one-sided
// operation failures (timeout + retry), straggler windows (a rank's
// compute advancing slower than nominal), and silent data corruption
// (seeded bit flips in RMA payloads and task results). An Injector
// executes a plan.
// Every decision the injector makes — does this op fail, how much jitter
// does this transfer get — is a pure function of the plan's seed and a
// per-rank operation sequence number, never of host state. Because the
// simulation kernel itself is deterministic, the per-rank call order is
// reproducible, so two runs with the same plan produce bit-identical
// virtual schedules (pinned by the seeded-fault golden test in
// internal/bench).
//
// The package deliberately imports only internal/sim. The communication
// layers reach it the other way around: netmodel declares a Perturber
// interface that *Injector satisfies (link faults), and rma holds a
// *Injector directly (transient-failure faults). Stragglers are armed by
// internal/core as engine callbacks at window boundaries.
package fault

import "ityr/internal/sim"

// LinkWindow degrades communication on matching rank pairs during a window
// of virtual time.
type LinkWindow struct {
	// From and To bound the active window [From, To). To <= 0 means the
	// window never closes.
	From, To sim.Time
	// Src and Dst filter the origin and target rank; -1 matches any rank.
	Src, Dst int
	// ExtraLatency is added to every matching transfer or atomic.
	ExtraLatency sim.Time
	// Jitter adds a deterministic pseudo-random extra in [0, Jitter].
	Jitter sim.Time
	// SlowFactor multiplies the base wire time when > 1 (bandwidth
	// collapse: 4 means the link runs at a quarter of nominal speed).
	SlowFactor float64
}

// RMAFaults makes one-sided operations (Get/Put/atomics) fail transiently.
// A failed attempt costs the origin a deadline expiry (Timeout) plus a
// capped exponential backoff with seeded jitter, and is then retried by
// the RMA layer. Failures are injected before the operation takes effect,
// so a retried operation applies its memory effect exactly once.
type RMAFaults struct {
	// FailProb is the per-attempt failure probability (0 disables).
	FailProb float64
	// From and To bound the active window [From, To); To <= 0 = open.
	From, To sim.Time
	// Timeout is the deadline charged per failed attempt.
	Timeout sim.Time
	// BackoffMin and BackoffMax bound the exponential backoff.
	BackoffMin, BackoffMax sim.Time
	// MaxAttempts is the fail-stop bound: an op still failing after this
	// many attempts panics (the simulated equivalent of a fatal MPI error).
	MaxAttempts int
	// RetryBudget bounds injected failures per origin rank; once a rank
	// exhausts its budget the injector stops failing its ops (and counts
	// the exhaustion), guaranteeing forward progress under any FailProb.
	// 0 means unlimited.
	RetryBudget uint64
}

// StragglerWindow slows one rank's compute during a window: every duration
// the rank's processes charge is stretched by Num/Den (10/1 = 10× slower).
type StragglerWindow struct {
	Rank     int
	From, To sim.Time // [From, To); To <= 0 = until the end of the run
	Num, Den int64
}

// Corruption injects silent data corruption: seeded single-bit flips in
// bulk RMA payloads at the wire boundary (WireProb, per Put/Get) and in
// task results (TaskProb, per protected task execution). Unlike RMAFaults,
// corrupted operations succeed — nothing times out, no error surfaces —
// which is exactly what makes SDC dangerous. Detection and recovery are
// the job of the layers above: the RMA layer's end-to-end payload
// checksum (armed with the SDC config) and the scheduler's selective task
// replication (internal/uth Protector).
type Corruption struct {
	// WireProb is the per-transfer probability that one bit of a bulk
	// Put/Get payload flips in flight (0 disables). Scalar window ops
	// (GetUint64, atomics) are assumed header-checksummed by the
	// transport and are never corrupted.
	WireProb float64
	// TaskProb is the per-execution probability that a protected task's
	// result is corrupted: one bit of its committed writes (or of its
	// return value when it writes nothing) flips (0 disables).
	TaskProb float64
	// From and To bound the active window [From, To); To <= 0 = open.
	From, To sim.Time
	// MaxFlips bounds injected flips per rank across both streams;
	// 0 means unlimited.
	MaxFlips uint64
}

// Plan is a complete, reproducible fault schedule.
type Plan struct {
	Name       string
	Seed       int64
	Links      []LinkWindow
	RMA        RMAFaults
	Stragglers []StragglerWindow
	Corrupt    Corruption
}

func (p Plan) withDefaults() Plan {
	if p.RMA.Timeout == 0 {
		p.RMA.Timeout = 8 * sim.Microsecond
	}
	if p.RMA.BackoffMin == 0 {
		p.RMA.BackoffMin = 2 * sim.Microsecond
	}
	if p.RMA.BackoffMax == 0 {
		p.RMA.BackoffMax = 128 * sim.Microsecond
	}
	if p.RMA.MaxAttempts == 0 {
		p.RMA.MaxAttempts = 64
	}
	return p
}

// Stats counts injector activity (host-side bookkeeping only).
type Stats struct {
	// Injected is the number of transient failures injected.
	Injected uint64
	// BudgetExhausted is the number of ranks whose retry budget ran out.
	BudgetExhausted uint64
	// WireFlips is the number of bit flips injected into RMA payloads.
	WireFlips uint64
	// TaskFlips is the number of task-result corruptions injected.
	TaskFlips uint64
}

// Injector executes a Plan for a fixed number of ranks. It must only be
// used from simulation goroutines (the kernel's one-goroutine-at-a-time
// invariant makes its state single-threaded).
type Injector struct {
	plan      Plan
	rmaSeq    []uint64 // per-origin failure-decision counter
	linkSeq   []uint64 // per-origin jitter counter
	wireSeq   []uint64 // per-origin wire-corruption decision counter
	taskSeq   []uint64 // per-rank task-corruption decision counter
	injected  []uint64 // per-origin injected failures (budget accounting)
	wireFlips []uint64 // per-origin injected wire flips (audit trail)
	taskFlips []uint64 // per-rank injected task flips (audit trail)
	exhausted []bool
	stats     Stats
}

// NewInjector builds an injector for a plan over the given rank count,
// applying plan defaults (timeout 8µs, backoff 2µs..128µs, 64 attempts).
func NewInjector(p Plan, ranks int) *Injector {
	return &Injector{
		plan:      p.withDefaults(),
		rmaSeq:    make([]uint64, ranks),
		linkSeq:   make([]uint64, ranks),
		wireSeq:   make([]uint64, ranks),
		taskSeq:   make([]uint64, ranks),
		injected:  make([]uint64, ranks),
		wireFlips: make([]uint64, ranks),
		taskFlips: make([]uint64, ranks),
		exhausted: make([]bool, ranks),
	}
}

// Plan returns the plan (with defaults applied).
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns cumulative injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// InjectedByRank returns each origin rank's injected-failure count.
func (in *Injector) InjectedByRank() []uint64 {
	return append([]uint64(nil), in.injected...)
}

// WireFlipsByRank returns each origin rank's injected wire-flip count.
func (in *Injector) WireFlipsByRank() []uint64 {
	return append([]uint64(nil), in.wireFlips...)
}

// TaskFlipsByRank returns each rank's injected task-corruption count.
func (in *Injector) TaskFlipsByRank() []uint64 {
	return append([]uint64(nil), in.taskFlips...)
}

func inWindow(now, from, to sim.Time) bool {
	return now >= from && (to <= 0 || now < to)
}

// splitmix is the splitmix64 finalizer: a cheap, well-mixed hash.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hash derives a deterministic 64-bit value from the plan seed, a stream
// discriminator and three inputs. No allocation: it sits on hot paths.
func (in *Injector) hash(stream, a, b, seq uint64) uint64 {
	h := splitmix(uint64(in.plan.Seed) ^ stream)
	h = splitmix(h + a)
	h = splitmix(h + b)
	return splitmix(h + seq)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// FailRMA decides whether the next one-sided op from origin to target
// fails transiently at virtual time now. Each call consumes one step of
// origin's decision stream, so the outcome depends only on the seed and
// the (deterministic) per-rank operation order.
func (in *Injector) FailRMA(now sim.Time, origin, target int) bool {
	r := &in.plan.RMA
	if r.FailProb <= 0 || !inWindow(now, r.From, r.To) {
		return false
	}
	seq := in.rmaSeq[origin]
	in.rmaSeq[origin] = seq + 1
	if r.RetryBudget > 0 && in.injected[origin] >= r.RetryBudget {
		if !in.exhausted[origin] {
			in.exhausted[origin] = true
			in.stats.BudgetExhausted++
		}
		return false
	}
	if unit(in.hash(1, uint64(origin), uint64(target), seq)) >= r.FailProb {
		return false
	}
	in.injected[origin]++
	in.stats.Injected++
	return true
}

// WireArmed reports whether the plan can corrupt RMA payloads. The RMA
// layer checks this single bool on its hot path; when false the
// corruption stream is never touched, keeping an SDC-free plan
// digest-identical to one with no Corruption at all.
func (in *Injector) WireArmed() bool { return in.plan.Corrupt.WireProb > 0 }

// TaskArmed reports whether the plan can corrupt task results.
func (in *Injector) TaskArmed() bool { return in.plan.Corrupt.TaskProb > 0 }

// corruptBudget reports whether rank's per-rank flip budget is exhausted.
func (in *Injector) corruptBudget(rank int) bool {
	m := in.plan.Corrupt.MaxFlips
	return m > 0 && in.wireFlips[rank]+in.taskFlips[rank] >= m
}

// CorruptWire decides whether the payload of the next bulk Put/Get from
// origin to target (nbytes long) is corrupted in flight at virtual time
// now. On ok it returns the flipped bit's index in [0, nbytes*8), derived
// from the same hash as the decision so placement is as reproducible as
// the decision itself. Each armed call consumes one step of origin's
// wire stream; a disarmed or out-of-window call consumes nothing.
func (in *Injector) CorruptWire(now sim.Time, origin, target, nbytes int) (bit uint64, ok bool) {
	c := &in.plan.Corrupt
	if c.WireProb <= 0 || nbytes <= 0 || !inWindow(now, c.From, c.To) {
		return 0, false
	}
	seq := in.wireSeq[origin]
	in.wireSeq[origin] = seq + 1
	if in.corruptBudget(origin) {
		return 0, false
	}
	h := in.hash(4, uint64(origin), uint64(target), seq)
	if unit(h) >= c.WireProb {
		return 0, false
	}
	in.wireFlips[origin]++
	in.stats.WireFlips++
	return splitmix(h) % uint64(nbytes*8), true
}

// CorruptTask decides whether rank's next protected task execution is
// corrupted at virtual time now. On ok it returns a 64-bit flip signature
// the caller maps onto the task's writes (one bit of the committed view)
// or return value. Each armed call consumes one step of rank's task
// stream — including replica executions, so two executions of the same
// task draw independent decisions.
func (in *Injector) CorruptTask(now sim.Time, rank int) (sig uint64, ok bool) {
	c := &in.plan.Corrupt
	if c.TaskProb <= 0 || !inWindow(now, c.From, c.To) {
		return 0, false
	}
	seq := in.taskSeq[rank]
	in.taskSeq[rank] = seq + 1
	if in.corruptBudget(rank) {
		return 0, false
	}
	h := in.hash(5, uint64(rank), 0, seq)
	if unit(h) >= c.TaskProb {
		return 0, false
	}
	in.taskFlips[rank]++
	in.stats.TaskFlips++
	sig = splitmix(h)
	if sig == 0 { // a zero signature would be an invisible flip
		sig = 1
	}
	return sig, true
}

// Timeout returns the deadline charged per failed attempt.
func (in *Injector) Timeout() sim.Time { return in.plan.RMA.Timeout }

// MaxAttempts returns the fail-stop attempt bound.
func (in *Injector) MaxAttempts() int { return in.plan.RMA.MaxAttempts }

// Backoff returns the backoff for the attempt-th consecutive failure
// (attempt counts from 1): capped exponential growth from BackoffMin to
// BackoffMax plus a deterministic jitter of up to a quarter of the base.
func (in *Injector) Backoff(origin, attempt int) sim.Time {
	r := &in.plan.RMA
	d := r.BackoffMin
	for i := 1; i < attempt && d < r.BackoffMax; i++ {
		d *= 2
	}
	if d > r.BackoffMax {
		d = r.BackoffMax
	}
	if jmax := uint64(d / 4); jmax > 0 {
		h := in.hash(2, uint64(origin), uint64(attempt), in.rmaSeq[origin])
		d += sim.Time(h % (jmax + 1))
	}
	return d
}

// TransferExtra implements netmodel.Perturber: the extra wire time a
// transfer of n bytes from a to b issued at now suffers under the plan's
// link windows. base is the unperturbed wire time (so SlowFactor can
// scale it without knowing the bandwidth model).
func (in *Injector) TransferExtra(now sim.Time, a, b, n int, base sim.Time) sim.Time {
	_ = n // reserved for size-dependent faults
	return in.linkExtra(now, a, b, base)
}

// AtomicExtra implements netmodel.Perturber for remote atomics.
func (in *Injector) AtomicExtra(now sim.Time, a, b int, base sim.Time) sim.Time {
	return in.linkExtra(now, a, b, base)
}

func (in *Injector) linkExtra(now sim.Time, a, b int, base sim.Time) sim.Time {
	var extra sim.Time
	for i := range in.plan.Links {
		lw := &in.plan.Links[i]
		if !inWindow(now, lw.From, lw.To) {
			continue
		}
		if lw.Src >= 0 && lw.Src != a {
			continue
		}
		if lw.Dst >= 0 && lw.Dst != b {
			continue
		}
		extra += lw.ExtraLatency
		if lw.SlowFactor > 1 {
			extra += sim.Time(float64(base) * (lw.SlowFactor - 1))
		}
		if lw.Jitter > 0 {
			seq := in.linkSeq[a]
			in.linkSeq[a] = seq + 1
			h := in.hash(3, uint64(a), uint64(b), seq)
			extra += sim.Time(h % uint64(lw.Jitter+1))
		}
	}
	return extra
}

// Canned plans: the three fault scenarios `itybench -faults` and the fault
// test suite run. Windows are wide or open-ended so the plans bite at
// every benchmark scale.

// PlanLinkDegraded injects cluster-wide link degradation: an early
// latency-spike window with jitter, then an open-ended bandwidth collapse.
func PlanLinkDegraded(seed int64) Plan {
	return Plan{
		Name: "link-degraded",
		Seed: seed,
		Links: []LinkWindow{
			{From: 50 * sim.Microsecond, To: 2 * sim.Millisecond, Src: -1, Dst: -1,
				ExtraLatency: 4 * sim.Microsecond, Jitter: 2 * sim.Microsecond},
			{From: 2 * sim.Millisecond, To: 0, Src: -1, Dst: -1,
				SlowFactor: 4, Jitter: 500 * sim.Nanosecond},
		},
	}
}

// PlanFlakyRMA makes 2% of one-sided operations time out and retry.
func PlanFlakyRMA(seed int64) Plan {
	return Plan{
		Name: "flaky-rma",
		Seed: seed,
		RMA: RMAFaults{
			FailProb:   0.02,
			Timeout:    8 * sim.Microsecond,
			BackoffMin: 2 * sim.Microsecond,
			BackoffMax: 64 * sim.Microsecond,
		},
	}
}

// PlanStraggler slows rank 1 to a tenth of nominal speed for the whole
// run and adds latency toward it (its NIC backs up), the scenario the
// scheduler's steal-victim blacklisting exists for.
func PlanStraggler(seed int64) Plan {
	return Plan{
		Name: "straggler",
		Seed: seed,
		Stragglers: []StragglerWindow{
			{Rank: 1, From: 0, To: 0, Num: 10, Den: 1},
		},
		Links: []LinkWindow{
			{From: 0, To: 0, Src: -1, Dst: 1, ExtraLatency: 3 * sim.Microsecond},
		},
	}
}

// PlanSDC corrupts 10% of protected task results for the whole run. Task
// corruption only — wire flips land in arbitrary application data
// (pointers, tree digests) where they can crash rather than silently
// corrupt, so the wire stream has its own plan below. 10% keeps the
// chance of a replication protocol exhausting its replay budget
// (consecutive independently-corrupted executions) negligible while
// guaranteeing several flips per app at every benchmark scale.
func PlanSDC(seed int64) Plan {
	return Plan{
		Name:    "sdc-task",
		Seed:    seed,
		Corrupt: Corruption{TaskProb: 0.1},
	}
}

// PlanSDCWire corrupts 2% of bulk RMA payloads in flight. Used by the
// wire-checksum tests and cilksort (whose payloads are plain data);
// not part of the app sweep because flipped bits in UTS/FMM metadata
// (child pointers, node digests) change control flow rather than just
// results.
func PlanSDCWire(seed int64) Plan {
	return Plan{
		Name:    "sdc-wire",
		Seed:    seed,
		Corrupt: Corruption{WireProb: 0.02},
	}
}

// PlanSDCStorm combines heavy task corruption (50%) with the flaky-RMA
// scenario: every protected task is a coin flip away from a bad result
// while one-sided ops time out and retry underneath. The combined-plan
// recovery test pins that replication still recovers every corruption
// exactly once on top of the retry machinery.
func PlanSDCStorm(seed int64) Plan {
	p := PlanFlakyRMA(seed)
	p.Name = "sdc-storm"
	p.Corrupt = Corruption{TaskProb: 0.5}
	return p
}

// CannedPlans returns the three standard plans, all derived from seed.
func CannedPlans(seed int64) []Plan {
	return []Plan{PlanLinkDegraded(seed), PlanFlakyRMA(seed), PlanStraggler(seed)}
}
