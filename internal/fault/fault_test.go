package fault

import (
	"testing"

	"ityr/internal/sim"
)

// TestFailRMADeterministic: two injectors over the same plan replay the
// same decision stream; a different seed gives a different stream.
func TestFailRMADeterministic(t *testing.T) {
	mk := func(seed int64) []bool {
		in := NewInjector(PlanFlakyRMA(seed), 4)
		var out []bool
		for i := 0; i < 2000; i++ {
			out = append(out, in.FailRMA(sim.Time(i), i%4, (i+1)%4))
		}
		return out
	}
	a, b := mk(7), mk(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical-seed injectors", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 {
		t.Fatalf("2%% FailProb injected nothing in 2000 ops")
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("seed change did not change the decision stream")
	}
}

// TestFailRMAWindow: no failures outside [From, To).
func TestFailRMAWindow(t *testing.T) {
	p := PlanFlakyRMA(7)
	p.RMA.FailProb = 1
	p.RMA.From = 100
	p.RMA.To = 200
	in := NewInjector(p, 2)
	for _, tc := range []struct {
		now  sim.Time
		want bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}} {
		if got := in.FailRMA(tc.now, 0, 1); got != tc.want {
			t.Errorf("FailRMA at t=%d = %v, want %v", tc.now, got, tc.want)
		}
	}
}

// TestRetryBudget: per-origin budgets stop injection and count exhaustion
// exactly once per rank.
func TestRetryBudget(t *testing.T) {
	p := PlanFlakyRMA(7)
	p.RMA.FailProb = 1
	p.RMA.RetryBudget = 3
	in := NewInjector(p, 2)
	fails := 0
	for i := 0; i < 10; i++ {
		if in.FailRMA(0, 0, 1) {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("rank 0 injected %d failures, want budget 3", fails)
	}
	if got := in.Stats().BudgetExhausted; got != 1 {
		t.Errorf("BudgetExhausted = %d, want 1", got)
	}
	if !in.FailRMA(0, 1, 0) {
		t.Errorf("rank 1's budget should be untouched")
	}
	if got := in.InjectedByRank(); got[0] != 3 || got[1] != 1 {
		t.Errorf("InjectedByRank = %v, want [3 1]", got)
	}
}

// TestBackoffBounds: exponential growth from BackoffMin, capped at
// BackoffMax plus a quarter of jitter, never below BackoffMin.
func TestBackoffBounds(t *testing.T) {
	in := NewInjector(PlanFlakyRMA(7), 2) // backoff 2µs .. 64µs
	min, max := 2*sim.Microsecond, 64*sim.Microsecond
	prevBase := sim.Time(0)
	for attempt := 1; attempt <= 12; attempt++ {
		d := in.Backoff(0, attempt)
		if d < min {
			t.Errorf("attempt %d: backoff %d below min %d", attempt, d, min)
		}
		if lim := max + max/4; d > lim {
			t.Errorf("attempt %d: backoff %d above cap+jitter %d", attempt, d, lim)
		}
		base := min << (attempt - 1)
		if base > max {
			base = max
		}
		if d < base {
			t.Errorf("attempt %d: backoff %d below exponential base %d", attempt, d, base)
		}
		if base < prevBase {
			t.Errorf("exponential base decreased")
		}
		prevBase = base
	}
}

// TestLinkExtraWindows: latency, slow-factor and pair filters compose, and
// nothing applies outside the window.
func TestLinkExtraWindows(t *testing.T) {
	p := Plan{Seed: 7, Links: []LinkWindow{
		{From: 100, To: 200, Src: -1, Dst: -1, ExtraLatency: 10},
		{From: 0, To: 0, Src: 2, Dst: 3, SlowFactor: 3},
	}}
	in := NewInjector(p, 4)
	if got := in.TransferExtra(50, 0, 1, 64, 1000); got != 0 {
		t.Errorf("before window: extra = %d, want 0", got)
	}
	if got := in.TransferExtra(150, 0, 1, 64, 1000); got != 10 {
		t.Errorf("inside latency window: extra = %d, want 10", got)
	}
	// 2→3 matches the open-ended slow link: base*(3-1) = 2000, plus the
	// latency window when inside it.
	if got := in.TransferExtra(150, 2, 3, 64, 1000); got != 2010 {
		t.Errorf("slow link inside window: extra = %d, want 2010", got)
	}
	if got := in.TransferExtra(500, 2, 3, 64, 1000); got != 2000 {
		t.Errorf("slow link after window: extra = %d, want 2000", got)
	}
	if got := in.AtomicExtra(500, 3, 2, 1000); got != 0 {
		t.Errorf("reverse direction should not match Src/Dst filter: got %d", got)
	}
}

// TestCorruptDeterministic: the wire and task corruption streams replay
// bit-for-bit — same decisions AND same flip placements — across
// identical-seed injectors, and move with the seed.
func TestCorruptDeterministic(t *testing.T) {
	type flip struct {
		val uint64
		ok  bool
	}
	mk := func(seed int64) (wire, task []flip) {
		p := Plan{Seed: seed, Corrupt: Corruption{WireProb: 0.05, TaskProb: 0.1}}
		in := NewInjector(p, 4)
		for i := 0; i < 2000; i++ {
			b, ok := in.CorruptWire(sim.Time(i), i%4, (i+1)%4, 256)
			wire = append(wire, flip{b, ok})
			s, ok := in.CorruptTask(sim.Time(i), i%4)
			task = append(task, flip{s, ok})
		}
		return wire, task
	}
	w1, t1 := mk(7)
	w2, t2 := mk(7)
	wireHits, taskHits := 0, 0
	for i := range w1 {
		if w1[i] != w2[i] || t1[i] != t2[i] {
			t.Fatalf("decision %d differs across identical-seed injectors", i)
		}
		if w1[i].ok {
			wireHits++
			if w1[i].val >= 256*8 {
				t.Fatalf("wire flip bit %d out of payload range", w1[i].val)
			}
		}
		if t1[i].ok {
			taskHits++
			if t1[i].val == 0 {
				t.Fatalf("task flip signature must be nonzero")
			}
		}
	}
	if wireHits == 0 || taskHits == 0 {
		t.Fatalf("corruption injected nothing in 2000 ops (wire=%d task=%d)", wireHits, taskHits)
	}
	w3, t3 := mk(8)
	same := 0
	for i := range w1 {
		if w1[i] == w3[i] && t1[i] == t3[i] {
			same++
		}
	}
	if same == len(w1) {
		t.Fatalf("seed change did not change the corruption streams")
	}
}

// TestCorruptWindowAndBudget: nothing flips outside [From, To); MaxFlips
// caps the combined per-rank flip count; the audit trails record where
// flips landed.
func TestCorruptWindowAndBudget(t *testing.T) {
	p := Plan{Seed: 7, Corrupt: Corruption{
		WireProb: 1, TaskProb: 1, From: 100, To: 200, MaxFlips: 3,
	}}
	in := NewInjector(p, 2)
	if _, ok := in.CorruptWire(50, 0, 1, 64); ok {
		t.Errorf("wire flip before window")
	}
	if _, ok := in.CorruptTask(200, 0); ok {
		t.Errorf("task flip at window close")
	}
	flips := 0
	for i := 0; i < 10; i++ {
		if _, ok := in.CorruptWire(150, 0, 1, 64); ok {
			flips++
		}
		if _, ok := in.CorruptTask(150, 0); ok {
			flips++
		}
	}
	if flips != 3 {
		t.Errorf("rank 0 injected %d flips, want budget 3", flips)
	}
	if _, ok := in.CorruptTask(150, 1); !ok {
		t.Errorf("rank 1's flip budget should be untouched")
	}
	wf, tf := in.WireFlipsByRank(), in.TaskFlipsByRank()
	if wf[0]+tf[0] != 3 || wf[1]+tf[1] != 1 {
		t.Errorf("audit trails = wire %v task %v, want rank sums [3 1]", wf, tf)
	}
	st := in.Stats()
	if st.WireFlips+st.TaskFlips != 4 {
		t.Errorf("Stats flips = %d+%d, want 4 total", st.WireFlips, st.TaskFlips)
	}
}

// TestCorruptDisabledZeroAlloc: the disarmed corruption path allocates
// nothing and consumes no stream state, so arming an empty Corruption is
// observably identical to no corruption at all.
func TestCorruptDisabledZeroAlloc(t *testing.T) {
	in := NewInjector(PlanFlakyRMA(7), 2)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := in.CorruptWire(100, 0, 1, 4096); ok {
			t.Fatalf("disarmed wire stream injected a flip")
		}
		if _, ok := in.CorruptTask(100, 0); ok {
			t.Fatalf("disarmed task stream injected a flip")
		}
	})
	if allocs != 0 {
		t.Errorf("disarmed corruption path allocates %.1f/op, want 0", allocs)
	}
	if in.wireSeq[0] != 0 || in.taskSeq[0] != 0 {
		t.Errorf("disarmed calls consumed stream state")
	}
}

// TestLinkJitterDeterministic: jitter is bounded by the window's Jitter
// and replays identically for identical injectors.
func TestLinkJitterDeterministic(t *testing.T) {
	p := Plan{Seed: 7, Links: []LinkWindow{
		{From: 0, To: 0, Src: -1, Dst: -1, Jitter: 100},
	}}
	a, b := NewInjector(p, 2), NewInjector(p, 2)
	varied := false
	var prev sim.Time = -1
	for i := 0; i < 100; i++ {
		ea := a.TransferExtra(sim.Time(i), 0, 1, 64, 1000)
		eb := b.TransferExtra(sim.Time(i), 0, 1, 64, 1000)
		if ea != eb {
			t.Fatalf("op %d: jitter differs across identical injectors (%d vs %d)", i, ea, eb)
		}
		if ea < 0 || ea > 100 {
			t.Fatalf("op %d: jitter %d outside [0, 100]", i, ea)
		}
		if prev >= 0 && ea != prev {
			varied = true
		}
		prev = ea
	}
	if !varied {
		t.Errorf("jitter never varied over 100 ops")
	}
}
