// Package obs is the shared command-line plumbing for the example
// binaries (cilksort, fmm, utsmem): the -trace/-metrics observability
// flags and the -coalesce/-prefetch cache communication-batching knobs.
// Each binary registers the flags, applies them to its Config, and calls
// Write after the run. Keeping this here means every command emits the
// same file formats (itytrace/v1 and itoyori-metrics/v1) that
// cmd/itytrace consumes, and exposes the same batching defaults that
// cmd/itybench uses.
package obs

import (
	"flag"
	"fmt"
	"os"

	"ityr/internal/core"
	"ityr/internal/pgas"
)

// Flags registers -trace and -metrics on the default flag set and
// returns pointers to their values.
func Flags() (traceFile, metricsFile *string) {
	traceFile = flag.String("trace", "",
		"write an itytrace/v1 dump (analyze with itytrace) to this file")
	metricsFile = flag.String("metrics", "",
		"write an itoyori-metrics/v1 JSON snapshot to this file ('-' for stdout)")
	return traceFile, metricsFile
}

// BatchFlags registers the cache communication-batching knobs -coalesce
// and -prefetch on the default flag set, with the same defaults as
// cmd/itybench (both mechanisms on), and returns pointers to their
// values. Apply the parsed values to Config.Pgas via ApplyBatch.
func BatchFlags() (coalesce *bool, prefetch *int) {
	coalesce = flag.Bool("coalesce", true,
		"coalesce adjacent dirty regions into merged write-back puts")
	prefetch = flag.Int("prefetch", 2,
		"sequential-access prefetch depth in blocks (0 disables)")
	return coalesce, prefetch
}

// ApplyBatch applies the BatchFlags values to a PgasConfig. Negative
// prefetch depths are clamped to 0 (off).
func ApplyBatch(cfg *pgas.Config, coalesce bool, prefetch int) {
	if prefetch < 0 {
		prefetch = 0
	}
	cfg.CoalesceWriteBack = coalesce
	cfg.PrefetchBlocks = prefetch
}

// Write emits the dump files requested by the flags. rt must have been
// built with Config.Trace set when traceFile is nonempty.
func Write(rt *core.Runtime, traceFile, metricsFile string) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		werr := rt.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", traceFile, werr)
		}
	}
	if metricsFile != "" {
		w := os.Stdout
		if metricsFile != "-" {
			f, err := os.Create(metricsFile)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rt.WriteMetrics(w); err != nil {
			return fmt.Errorf("writing metrics %s: %w", metricsFile, err)
		}
	}
	return nil
}
