// Package obs is the shared -trace/-metrics command-line plumbing for
// the example binaries (cilksort, fmm, utsmem): each registers the two
// flags, enables tracing in its Config when a trace dump was requested,
// and calls Write after the run. Keeping this here means every command
// emits the same file formats (itytrace/v1 and itoyori-metrics/v1) that
// cmd/itytrace consumes.
package obs

import (
	"flag"
	"fmt"
	"os"

	"ityr/internal/core"
)

// Flags registers -trace and -metrics on the default flag set and
// returns pointers to their values.
func Flags() (traceFile, metricsFile *string) {
	traceFile = flag.String("trace", "",
		"write an itytrace/v1 dump (analyze with itytrace) to this file")
	metricsFile = flag.String("metrics", "",
		"write an itoyori-metrics/v1 JSON snapshot to this file ('-' for stdout)")
	return traceFile, metricsFile
}

// Write emits the dump files requested by the flags. rt must have been
// built with Config.Trace set when traceFile is nonempty.
func Write(rt *core.Runtime, traceFile, metricsFile string) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		werr := rt.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", traceFile, werr)
		}
	}
	if metricsFile != "" {
		w := os.Stdout
		if metricsFile != "-" {
			f, err := os.Create(metricsFile)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rt.WriteMetrics(w); err != nil {
			return fmt.Errorf("writing metrics %s: %w", metricsFile, err)
		}
	}
	return nil
}
