// Package obs is the shared command-line plumbing for the example
// binaries (cilksort, fmm, utsmem): the -trace/-metrics/-profile
// observability flags, the -coalesce/-prefetch cache
// communication-batching knobs, the -sched scheduling-policy selector,
// and the -sdc/-replicate silent-data-corruption knobs.
// Each binary registers the flags, applies them to its Config, and calls
// Write after the run. Keeping this here means every command emits the
// same file formats (itytrace/v1 and itoyori-metrics/v1) that
// cmd/itytrace consumes, and exposes the same batching defaults that
// cmd/itybench uses.
package obs

import (
	"flag"
	"fmt"
	"os"

	"ityr/internal/core"
	"ityr/internal/fault"
	"ityr/internal/pgas"
	"ityr/internal/trace"
	"ityr/internal/uth"
)

// Flags registers -trace, -metrics and -profile on the default flag set
// and returns pointers to their values. A nonempty -profile should set
// Config.Profile so the streaming collector is armed for the run.
func Flags() (traceFile, metricsFile, profileFile *string) {
	traceFile = flag.String("trace", "",
		"write an itytrace/v1 dump (analyze with itytrace) to this file")
	metricsFile = flag.String("metrics", "",
		"write an itoyori-metrics/v1 JSON snapshot to this file ('-' for stdout)")
	profileFile = flag.String("profile", "",
		"write an itoyori-profile/v1 streaming-profile snapshot to this file ('-' for stdout)")
	return traceFile, metricsFile, profileFile
}

// RingFlag registers -tracering, the per-rank span ring bound
// (Config.TraceRing). Truncated runs are flagged by itytrace's WARNING
// line and the trace_dropped_spans metric; the streaming profile (whose
// rollups never truncate) is the graceful-degradation companion.
func RingFlag() *int {
	return flag.Int("tracering", 0,
		"bound the trace to the most recent N events per rank (ring buffer); 0 keeps everything")
}

// ProcsFlag registers -procs, the host-side engine shard count
// (Config.HostProcs). 0 keeps the serial engine; sharded runs produce
// the same digests, metrics and profile snapshots bit-for-bit.
func ProcsFlag() *int {
	return flag.Int("procs", 0,
		"host engine shards for parallel execution (0 = serial; results are identical either way)")
}

// ValidateFlag registers -validate, the checkout-discipline validator
// (Config.Pgas.Validate). Violating runs fail fast with a diagnostic
// naming the broken rule; clean validated runs are bit-identical to
// unvalidated ones. Print the report with ReportViolations, or read it
// from the trace dump's "validator" section via itytrace.
func ValidateFlag() *bool {
	return flag.Bool("validate", false,
		"enforce the checkout-discipline memory-model contract (see PITFALLS.md); violations abort with a diagnostic")
}

// ReportViolations prints the validator report to stderr and reports
// whether any violation was recorded. Call it when a run aborts with
// pgas.ErrViolation (and at the end of validated runs for the clean
// confirmation line).
func ReportViolations(rt *core.Runtime) bool {
	recs := rt.Space().Violations()
	trace.WriteViolations(os.Stderr, recs)
	return len(recs) > 0
}

// SchedFlag registers -sched, the scheduling-policy selector
// (Config.Sched.Policy), on the default flag set. Registering it here —
// once, for every CLI — keeps itybench, cilksort, fmm and utsmem
// flag-consistent: same name, same default, same valid set. Apply the
// parsed value via ApplySched, which fails fast on unknown spellings.
func SchedFlag() *string {
	return flag.String("sched", uth.ChildFirst.String(),
		"scheduling policy: childfirst (the paper's work-first stealing, default), helpfirst, or fbc (finish-based coordination)")
}

// ApplySched parses the SchedFlag value into cfg. Unknown values return
// the parse error listing the valid set; callers should treat it as a
// usage error (exit 2).
func ApplySched(cfg *core.Config, s string) error {
	pol, err := uth.ParseSchedPolicy(s)
	if err != nil {
		return err
	}
	cfg.Sched.Policy = pol
	return nil
}

// BatchFlags registers the cache communication-batching knobs -coalesce
// and -prefetch on the default flag set, with the same defaults as
// cmd/itybench (both mechanisms on), and returns pointers to their
// values. Apply the parsed values to Config.Pgas via ApplyBatch.
func BatchFlags() (coalesce *bool, prefetch *int) {
	coalesce = flag.Bool("coalesce", true,
		"coalesce adjacent dirty regions into merged write-back puts")
	prefetch = flag.Int("prefetch", 2,
		"sequential-access prefetch depth in blocks (0 disables)")
	return coalesce, prefetch
}

// ApplyBatch applies the BatchFlags values to a PgasConfig. Negative
// prefetch depths are clamped to 0 (off).
func ApplyBatch(cfg *pgas.Config, coalesce bool, prefetch int) {
	if prefetch < 0 {
		prefetch = 0
	}
	cfg.CoalesceWriteBack = coalesce
	cfg.PrefetchBlocks = prefetch
}

// SDCFlags registers the silent-data-corruption knobs -sdc and -replicate
// on the default flag set. -sdc arms the canned sdc-task bit-flip plan
// (deterministic from the run seed); -replicate FRAC enables selective
// task replication with digest compare on FRAC of protected task
// segments. Combine them to watch detection and recovery; use -sdc alone
// for the negative control (the run reports undetected escapes and
// usually fails verification); use -replicate alone to measure the pure
// replication overhead. Apply the parsed values via ApplySDC.
func SDCFlags() (sdc *bool, replicate *float64) {
	sdc = flag.Bool("sdc", false,
		"inject deterministic silent bit flips into task results (canned sdc-task plan, seeded from -seed)")
	replicate = flag.Float64("replicate", 0,
		"re-execute this fraction of protected task segments and compare result digests (0 = off, 1 = all)")
	return sdc, replicate
}

// ApplySDC applies the SDCFlags values to a Config. Corruption injection
// forces the serial engine (fault plans pin shards=1); replication alone
// keeps sharded runs digest-identical.
func ApplySDC(cfg *core.Config, sdc bool, replicate float64) {
	if sdc {
		plan := fault.PlanSDC(cfg.Seed)
		cfg.Faults = &plan
	}
	if replicate > 0 {
		cfg.SDC = &uth.SDCConfig{Replicate: replicate}
	}
}

// Write emits the dump files requested by the flags. rt must have been
// built with Config.Trace set when traceFile is nonempty, and with
// Config.Profile set when profileFile is nonempty.
func Write(rt *core.Runtime, traceFile, metricsFile, profileFile string) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		werr := rt.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", traceFile, werr)
		}
	}
	if metricsFile != "" {
		w := os.Stdout
		if metricsFile != "-" {
			f, err := os.Create(metricsFile)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rt.WriteMetrics(w); err != nil {
			return fmt.Errorf("writing metrics %s: %w", metricsFile, err)
		}
	}
	if profileFile != "" {
		w := os.Stdout
		if profileFile != "-" {
			f, err := os.Create(profileFile)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rt.WriteProfile(w); err != nil {
			return fmt.Errorf("writing profile %s: %w", profileFile, err)
		}
	}
	return nil
}
