package ityr

import "fmt"

// GVector is a growable vector stored entirely in global memory: a header
// (length, capacity, data pointer) plus a separately allocated element
// buffer, both in the noncollective heap.
//
// This is the container §3.2 of the paper motivates: under GET/PUT
// semantics only trivially copyable objects can live in global memory, so
// an octree node holding a std::vector is illegal (the ExaFMM case study
// hits exactly this). With checkout/checkin, objects keep their (global)
// addresses across accesses, so a vector whose header embeds a global
// data pointer works from any rank — the header itself is plain old data
// and can be embedded in other global structures.
//
// Concurrency follows the usual rule: Append/Reserve are writer
// operations on the header (exclusive); Len/At/ReadAll are readers and may
// run concurrently on many ranks once properly synchronized via fork-join.
type GVector[T any] struct {
	hdr GPtr[GVecHdr]
}

// GVecHdr is a GVector's global header block, exported so vectors can be
// embedded (by header pointer) in user-defined global structures. It is
// plain old data — the buffer is referenced by global address — so GVector
// values and headers may be stored inside other global objects.
type GVecHdr struct {
	Len, Cap int64
	Data     Addr
	DataCap  int64 // allocation size of Data, for freeing
}

// NewGVector allocates an empty vector with the given initial capacity in
// the executing rank's noncollective heap.
func NewGVector[T any](c *Ctx, capacity int64) GVector[T] {
	if capacity < 4 {
		capacity = 4
	}
	h := New[GVecHdr](c)
	data := c.AllocLocal(uint64(capacity) * SizeOf[T]())
	PutVal(c, h, GVecHdr{Len: 0, Cap: capacity, Data: data, DataCap: capacity})
	return GVector[T]{hdr: h}
}

// GVectorAt reinterprets a header pointer (e.g. one embedded in another
// global structure) as a typed vector handle.
func GVectorAt[T any](h GPtr[GVecHdr]) GVector[T] { return GVector[T]{hdr: h} }

// Header returns the header pointer for embedding the vector in other
// global objects.
func (v GVector[T]) Header() GPtr[GVecHdr] { return v.hdr }

// IsNil reports whether the vector handle is null.
func (v GVector[T]) IsNil() bool { return v.hdr.IsNil() }

// Len returns the current length.
func (v GVector[T]) Len(c *Ctx) int64 {
	return GetVal(c, v.hdr).Len
}

// Span returns the span of current elements for bulk access (Checkout,
// patterns, ...). The span is invalidated by any subsequent Append that
// reallocates.
func (v GVector[T]) Span(c *Ctx) GSpan[T] {
	h := GetVal(c, v.hdr)
	return GSpan[T]{Ptr: PtrAt[T](h.Data), Len: h.Len}
}

// At reads element i.
func (v GVector[T]) At(c *Ctx, i int64) T {
	h := GetVal(c, v.hdr)
	if i < 0 || i >= h.Len {
		panic(fmt.Sprintf("ityr: GVector index %d of %d", i, h.Len))
	}
	return GetVal(c, PtrAt[T](h.Data).Add(i))
}

// Set writes element i.
func (v GVector[T]) Set(c *Ctx, i int64, val T) {
	h := GetVal(c, v.hdr)
	if i < 0 || i >= h.Len {
		panic(fmt.Sprintf("ityr: GVector index %d of %d", i, h.Len))
	}
	PutVal(c, PtrAt[T](h.Data).Add(i), val)
}

// Append appends values, growing the buffer geometrically if needed. It is
// a writer operation: the caller must hold exclusive access to the vector
// under the program's fork-join synchronization. The new buffer (when
// growing) is allocated from the executing rank's heap — objects migrate
// toward their writers, as with any noncollective allocation.
func (v GVector[T]) Append(c *Ctx, values ...T) {
	if len(values) == 0 {
		return
	}
	h := GetVal(c, v.hdr)
	need := h.Len + int64(len(values))
	if need > h.Cap {
		newCap := h.Cap * 2
		for newCap < need {
			newCap *= 2
		}
		newData := c.AllocLocal(uint64(newCap) * SizeOf[T]())
		if h.Len > 0 {
			// Bulk copy through the cache.
			src := GSpan[T]{Ptr: PtrAt[T](h.Data), Len: h.Len}
			dst := GSpan[T]{Ptr: PtrAt[T](newData), Len: h.Len}
			sv := Checkout(c, src, Read)
			dv := Checkout(c, dst, Write)
			copy(dv, sv)
			Checkin(c, src, Read)
			Checkin(c, dst, Write)
		}
		c.FreeLocal(h.Data, uint64(h.DataCap)*SizeOf[T]())
		h.Data, h.Cap, h.DataCap = newData, newCap, newCap
	}
	dst := GSpan[T]{Ptr: PtrAt[T](h.Data).Add(h.Len), Len: int64(len(values))}
	dv := Checkout(c, dst, Write)
	copy(dv, values)
	Checkin(c, dst, Write)
	h.Len = need
	PutVal(c, v.hdr, h)
}

// ReadAll copies the whole vector into a host slice (reader operation).
func (v GVector[T]) ReadAll(c *Ctx) []T {
	h := GetVal(c, v.hdr)
	if h.Len == 0 {
		return nil
	}
	span := GSpan[T]{Ptr: PtrAt[T](h.Data), Len: h.Len}
	view := Checkout(c, span, Read)
	out := make([]T, h.Len)
	copy(out, view)
	Checkin(c, span, Read)
	return out
}

// Free releases the vector's buffer and header.
func (v GVector[T]) Free(c *Ctx) {
	h := GetVal(c, v.hdr)
	if h.DataCap > 0 {
		c.FreeLocal(h.Data, uint64(h.DataCap)*SizeOf[T]())
	}
	Free(c, v.hdr)
}
