package ityr

import "ityr/internal/sim"

// High-level parallel patterns for range-based algorithms, analogous to
// Itoyori's TBB/parallel-STL-like layer (§3.1). Each pattern recursively
// splits its input span into parallel leaf tasks and performs the
// checkout/checkin calls itself, picking chunk sizes small enough that a
// leaf's working set fits comfortably within the fixed-size software cache
// (§3.3: "the system can automatically determine proper chunk sizes").

// patternCPU is the modelled per-element compute cost of pattern leaves,
// on top of the user function's own work (which runs on the host).
const patternCPU = 2 * sim.Nanosecond

// autoGrain returns a leaf chunk length such that `spans` simultaneous
// checkouts of elemSize-byte elements use at most a small fraction of the
// cache.
func autoGrain(c *Ctx, elemSize uint64, spans int) int64 {
	if elemSize == 0 {
		elemSize = 1 // zero-sized element types
	}
	budget := uint64(c.Runtime().Config().Pgas.CacheSize)
	if budget == 0 {
		budget = 16 << 20
	}
	g := int64(budget / 8 / uint64(spans) / elemSize)
	if g < 1 {
		return 1
	}
	if g > 1<<16 {
		return 1 << 16 // keep enough tasks for load balancing
	}
	return g
}

// ForEach applies fn to every element of s in parallel. The mode governs
// the checkout: use Read for pure observation, ReadWrite to mutate in
// place. fn receives the global index and a pointer into the checked-out
// view.
func ForEach[T any](c *Ctx, s GSpan[T], mode Mode, fn func(i int64, v *T)) {
	grain := autoGrain(c, SizeOf[T](), 1)
	c.ParallelFor(0, s.Len, grain, func(c *Ctx, lo, hi int64) {
		part := s.Slice(lo, hi)
		v := Checkout(c, part, mode)
		for i := range v {
			fn(lo+int64(i), &v[i])
		}
		c.Charge(sim.Time(hi-lo) * patternCPU)
		Checkin(c, part, mode)
	})
}

// Fill sets every element of s to val in parallel (write-only: no data is
// fetched).
func Fill[T any](c *Ctx, s GSpan[T], val T) {
	grain := autoGrain(c, SizeOf[T](), 1)
	c.ParallelFor(0, s.Len, grain, func(c *Ctx, lo, hi int64) {
		part := s.Slice(lo, hi)
		v := Checkout(c, part, Write)
		for i := range v {
			v[i] = val
		}
		c.Charge(sim.Time(hi-lo) * patternCPU)
		Checkin(c, part, Write)
	})
}

// Generate fills s with fn(i) in parallel (write-only).
func Generate[T any](c *Ctx, s GSpan[T], fn func(i int64) T) {
	grain := autoGrain(c, SizeOf[T](), 1)
	c.ParallelFor(0, s.Len, grain, func(c *Ctx, lo, hi int64) {
		part := s.Slice(lo, hi)
		v := Checkout(c, part, Write)
		for i := range v {
			v[i] = fn(lo + int64(i))
		}
		c.Charge(sim.Time(hi-lo) * patternCPU)
		Checkin(c, part, Write)
	})
}

// Transform writes fn(src[i]) into dst[i] in parallel. src and dst must
// not overlap and must have equal length.
func Transform[S, D any](c *Ctx, src GSpan[S], dst GSpan[D], fn func(S) D) {
	if src.Len != dst.Len {
		panic("ityr: Transform length mismatch")
	}
	grain := autoGrain(c, SizeOf[S]()+SizeOf[D](), 2)
	c.ParallelFor(0, src.Len, grain, func(c *Ctx, lo, hi int64) {
		sp, dp := src.Slice(lo, hi), dst.Slice(lo, hi)
		sv := Checkout(c, sp, Read)
		dv := Checkout(c, dp, Write)
		for i := range sv {
			dv[i] = fn(sv[i])
		}
		c.Charge(sim.Time(hi-lo) * patternCPU)
		Checkin(c, sp, Read)
		Checkin(c, dp, Write)
	})
}

// Copy copies src into dst in parallel.
func Copy[T any](c *Ctx, src, dst GSpan[T]) {
	Transform(c, src, dst, func(v T) T { return v })
}

// Reduce folds s into an accumulator in parallel: acc is applied
// left-to-right within each leaf chunk, and combine merges chunk results
// (combine must be associative; id is its identity).
func Reduce[T, A any](c *Ctx, s GSpan[T], id A, combine func(A, A) A, acc func(A, T) A) A {
	grain := autoGrain(c, SizeOf[T](), 1)
	var rec func(c *Ctx, span GSpan[T]) A
	rec = func(c *Ctx, span GSpan[T]) A {
		if span.Len <= grain {
			v := Checkout(c, span, Read)
			a := id
			for _, x := range v {
				a = acc(a, x)
			}
			c.Charge(sim.Time(span.Len) * patternCPU)
			Checkin(c, span, Read)
			return a
		}
		l, r := span.SplitTwo()
		var la, ra A
		c.ParallelInvoke(
			func(c *Ctx) { la = rec(c, l) },
			func(c *Ctx) { ra = rec(c, r) },
		)
		return combine(la, ra)
	}
	return rec(c, s)
}

// Sum reduces a span of numeric values.
func Sum[T int8 | int16 | int32 | int64 | int | uint8 | uint16 | uint32 | uint64 | uint | float32 | float64](c *Ctx, s GSpan[T]) T {
	return Reduce(c, s, T(0), func(a, b T) T { return a + b }, func(a T, v T) T { return a + v })
}

// Count returns the number of elements satisfying pred.
func Count[T any](c *Ctx, s GSpan[T], pred func(T) bool) int64 {
	return Reduce(c, s, int64(0),
		func(a, b int64) int64 { return a + b },
		func(a int64, v T) int64 {
			if pred(v) {
				return a + 1
			}
			return a
		})
}

// InclusiveScan writes the running combine of src into dst (dst[i] =
// src[0] ⊕ … ⊕ src[i]) using the classic three-phase parallel scan:
// per-chunk reductions, a serial exclusive scan over the (few) chunk sums,
// and a parallel sweep applying the offsets. combine must be associative
// with identity id.
func InclusiveScan[T any](c *Ctx, src, dst GSpan[T], id T, combine func(T, T) T) {
	if src.Len != dst.Len {
		panic("ityr: InclusiveScan length mismatch")
	}
	if src.Len == 0 {
		return
	}
	grain := autoGrain(c, 2*SizeOf[T](), 2)
	nchunks := (src.Len + grain - 1) / grain
	sums := make([]T, nchunks)

	// Phase 1: reduce each chunk.
	c.ParallelFor(0, nchunks, 1, func(c *Ctx, clo, chi int64) {
		for ci := clo; ci < chi; ci++ {
			lo, hi := ci*grain, min64(src.Len, (ci+1)*grain)
			sp := src.Slice(lo, hi)
			v := Checkout(c, sp, Read)
			a := id
			for _, x := range v {
				a = combine(a, x)
			}
			c.Charge(sim.Time(hi-lo) * patternCPU)
			Checkin(c, sp, Read)
			sums[ci] = a
		}
	})

	// Phase 2: serial exclusive scan over chunk sums (root task).
	offsets := make([]T, nchunks)
	run := id
	for i := range sums {
		offsets[i] = run
		run = combine(run, sums[i])
	}
	c.Charge(sim.Time(nchunks) * patternCPU)

	// Phase 3: apply the offsets in parallel.
	c.ParallelFor(0, nchunks, 1, func(c *Ctx, clo, chi int64) {
		for ci := clo; ci < chi; ci++ {
			lo, hi := ci*grain, min64(src.Len, (ci+1)*grain)
			sp, dp := src.Slice(lo, hi), dst.Slice(lo, hi)
			sv := Checkout(c, sp, Read)
			dv := Checkout(c, dp, Write)
			a := offsets[ci]
			for i := range sv {
				a = combine(a, sv[i])
				dv[i] = a
			}
			c.Charge(sim.Time(hi-lo) * 2 * patternCPU)
			Checkin(c, sp, Read)
			Checkin(c, dp, Write)
		}
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
