package ityr

import (
	"cmp"
	"slices"

	"ityr/internal/sim"
)

// Sort-related cost model (matches the cilksort benchmark's).
const (
	sortPerElemLog = 3 * sim.Nanosecond
	mergePerElem   = 4 * sim.Nanosecond
)

// SortSpan sorts a global span in parallel with the Cilksort algorithm
// (Fig. 1 of the paper) for any ordered element type: 4-way recursive
// splitting, parallel merges with binary-search partitioning, and a serial
// sort below an automatically chosen cutoff that keeps each leaf's
// checkouts within the cache. A temporary buffer of equal size is
// allocated collectively and freed afterwards.
func SortSpan[T cmp.Ordered](c *Ctx, a GSpan[T]) {
	if a.Len < 2 {
		return
	}
	tmp := AllocArray[T](c, a.Len, BlockCyclicDist)
	cutoff := autoGrain(c, SizeOf[T](), 3)
	gsort(c, a, tmp, cutoff)
	c.Local().FreeCollective(tmp.Ptr.Addr())
}

// SortSpanWith sorts using a caller-provided temporary buffer and cutoff —
// the building block SortSpan wraps.
func SortSpanWith[T cmp.Ordered](c *Ctx, a, tmp GSpan[T], cutoff int64) {
	if a.Len != tmp.Len {
		panic("ityr: SortSpanWith buffer length mismatch")
	}
	if cutoff < 4 {
		cutoff = 4
	}
	gsort(c, a, tmp, cutoff)
}

func glog2(n int64) sim.Time {
	var k sim.Time
	for v := int64(1); v < n; v *= 2 {
		k++
	}
	return k
}

func gsort[T cmp.Ordered](c *Ctx, a, b GSpan[T], cutoff int64) {
	if a.Len < cutoff {
		v := Checkout(c, a, ReadWrite)
		slices.Sort(v)
		c.Charge(sim.Time(a.Len) * sortPerElemLog * glog2(a.Len))
		Checkin(c, a, ReadWrite)
		return
	}
	a12, a34 := a.SplitTwo()
	a1, a2 := a12.SplitTwo()
	a3, a4 := a34.SplitTwo()
	b12, b34 := b.SplitTwo()
	b1, b2 := b12.SplitTwo()
	b3, b4 := b34.SplitTwo()
	c.ParallelInvoke(
		func(c *Ctx) { gsort(c, a1, b1, cutoff) },
		func(c *Ctx) { gsort(c, a2, b2, cutoff) },
		func(c *Ctx) { gsort(c, a3, b3, cutoff) },
		func(c *Ctx) { gsort(c, a4, b4, cutoff) },
	)
	c.ParallelInvoke(
		func(c *Ctx) { gmerge(c, a1, a2, b12, cutoff) },
		func(c *Ctx) { gmerge(c, a3, a4, b34, cutoff) },
	)
	gmerge(c, b12, b34, a, cutoff)
}

func gmerge[T cmp.Ordered](c *Ctx, s1, s2, d GSpan[T], cutoff int64) {
	if s1.Len < s2.Len {
		s1, s2 = s2, s1
	}
	if s2.Len == 0 {
		Copy(c, s1, d)
		return
	}
	if d.Len < cutoff {
		v1 := Checkout(c, s1, Read)
		v2 := Checkout(c, s2, Read)
		vd := Checkout(c, d, Write)
		i, j := 0, 0
		for k := range vd {
			if j >= len(v2) || (i < len(v1) && v1[i] <= v2[j]) {
				vd[k] = v1[i]
				i++
			} else {
				vd[k] = v2[j]
				j++
			}
		}
		c.Charge(sim.Time(d.Len) * mergePerElem)
		Checkin(c, s1, Read)
		Checkin(c, s2, Read)
		Checkin(c, d, Write)
		return
	}
	p1 := (s1.Len + 1) / 2
	pivot := GetVal(c, s1.At(p1-1))
	p2 := LowerBound(c, s2, pivot)
	s11, s12 := s1.SplitAt(p1)
	s21, s22 := s2.SplitAt(p2)
	d1, d2 := d.SplitAt(p1 + p2)
	c.ParallelInvoke(
		func(c *Ctx) { gmerge(c, s11, s21, d1, cutoff) },
		func(c *Ctx) { gmerge(c, s12, s22, d2, cutoff) },
	)
}

// LowerBound returns the first index i in the sorted span with s[i] >= x,
// probing global memory element by element (a sparse access pattern that
// exercises the cache's sub-block fetching).
func LowerBound[T cmp.Ordered](c *Ctx, s GSpan[T], x T) int64 {
	lo, hi := int64(0), s.Len
	for lo < hi {
		mid := (lo + hi) / 2
		if GetVal(c, s.At(mid)) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IsSortedSpan reports whether the span is sorted, checking seams between
// parallel chunks.
func IsSortedSpan[T cmp.Ordered](c *Ctx, a GSpan[T]) bool {
	if a.Len < 2 {
		return true
	}
	ok := true
	grain := autoGrain(c, SizeOf[T](), 1)
	c.ParallelFor(0, a.Len-1, grain, func(c *Ctx, lo, hi int64) {
		v := Checkout(c, a.Slice(lo, hi+1), Read)
		for i := 0; i+1 < len(v); i++ {
			if v[i] > v[i+1] {
				ok = false
			}
		}
		c.Charge(sim.Time(hi - lo))
		Checkin(c, a.Slice(lo, hi+1), Read)
	})
	return ok
}
