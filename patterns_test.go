package ityr_test

import (
	"fmt"
	"testing"

	"ityr"
)

func TestFillAndSum(t *testing.T) {
	const n = 50000
	var sum int64
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, n, ityr.BlockCyclicDist)
		ityr.Fill(c, a, 3)
		sum = ityr.Sum(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3*n {
		t.Fatalf("sum = %d, want %d", sum, 3*n)
	}
}

func TestGenerateTransformReduce(t *testing.T) {
	const n = 20000
	var total int64
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBack), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int32](c, n, ityr.BlockCyclicDist)
		b := ityr.AllocArray[int64](c, n, ityr.BlockCyclicDist)
		ityr.Generate(c, a, func(i int64) int32 { return int32(i % 100) })
		ityr.Transform(c, a, b, func(v int32) int64 { return int64(v) * 2 })
		total = ityr.Sum(c, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := int64(0); i < n; i++ {
		want += (i % 100) * 2
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestForEachMutatesInPlace(t *testing.T) {
	const n = 10000
	var sum int64
	_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, n, ityr.BlockDist)
		ityr.Generate(c, a, func(i int64) int64 { return i })
		ityr.ForEach(c, a, ityr.ReadWrite, func(i int64, v *int64) {
			if *v != i {
				t.Errorf("element %d = %d before mutation", i, *v)
			}
			*v++
		})
		sum = ityr.Sum(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n)*(n-1)/2 + n; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestCount(t *testing.T) {
	const n = 30000
	var odd int64
	_, err := ityr.LaunchRoot(testCfg(8, ityr.NoCache), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int32](c, n, ityr.BlockCyclicDist)
		ityr.Generate(c, a, func(i int64) int32 { return int32(i) })
		odd = ityr.Count(c, a, func(v int32) bool { return v%2 == 1 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if odd != n/2 {
		t.Fatalf("odd count = %d, want %d", odd, n/2)
	}
}

func TestCopy(t *testing.T) {
	const n = 8000
	ok := true
	_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteThrough), func(c *ityr.Ctx) {
		a := ityr.AllocArray[float64](c, n, ityr.BlockCyclicDist)
		b := ityr.AllocArray[float64](c, n, ityr.BlockDist) // different distribution
		ityr.Generate(c, a, func(i int64) float64 { return float64(i) * 0.25 })
		ityr.Copy(c, a, b)
		ityr.ForEach(c, b, ityr.Read, func(i int64, v *float64) {
			if *v != float64(i)*0.25 {
				ok = false
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("copy mismatch")
	}
}

func TestInclusiveScan(t *testing.T) {
	for _, n := range []int64{1, 7, 1000, 40000} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			var last int64
			okAll := true
			_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
				src := ityr.AllocArray[int64](c, n, ityr.BlockCyclicDist)
				dst := ityr.AllocArray[int64](c, n, ityr.BlockCyclicDist)
				ityr.Fill(c, src, 1)
				ityr.InclusiveScan(c, src, dst, 0, func(a, b int64) int64 { return a + b })
				// dst[i] must be i+1.
				ityr.ForEach(c, dst, ityr.Read, func(i int64, v *int64) {
					if *v != i+1 {
						okAll = false
					}
				})
				last = ityr.GetVal(c, dst.At(n-1))
			})
			if err != nil {
				t.Fatal(err)
			}
			if !okAll || last != n {
				t.Fatalf("scan wrong: last=%d want %d", last, n)
			}
		})
	}
}

func TestReduceNonCommutativeOrder(t *testing.T) {
	// String-like fold via an associative but non-commutative combine
	// (matrix-ish composition encoded in pairs): checks Reduce preserves
	// left-to-right order across parallel splits.
	type aff struct{ A, B int64 } // x → A·x + B (mod a prime), composition is associative
	const p = 1000003
	compose := func(f, g aff) aff { // apply f then g
		return aff{A: g.A * f.A % p, B: (g.A*f.B + g.B) % p}
	}
	const n = 5000
	var got aff
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBack), func(c *ityr.Ctx) {
		fs := ityr.AllocArray[aff](c, n, ityr.BlockCyclicDist)
		ityr.Generate(c, fs, func(i int64) aff { return aff{A: (i%7 + 1), B: i % 11} })
		got = ityr.Reduce(c, fs, aff{A: 1, B: 0}, compose,
			func(a aff, v aff) aff { return compose(a, v) })
	})
	if err != nil {
		t.Fatal(err)
	}
	want := aff{A: 1, B: 0}
	for i := int64(0); i < n; i++ {
		want = compose(want, aff{A: (i%7 + 1), B: i % 11})
	}
	if got != want {
		t.Fatalf("reduce = %+v, want %+v", got, want)
	}
}

func TestPatternsRespectCacheLimit(t *testing.T) {
	// A tiny cache forces small auto-grains; the pattern must still work.
	cfg := testCfg(4, ityr.WriteBackLazy)
	cfg.Pgas.CacheSize = 64 << 10
	cfg.Pgas.BlockSize = 4 << 10
	cfg.Pgas.SubBlockSize = 512
	var sum int64
	_, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 20000, ityr.BlockCyclicDist)
		ityr.Fill(c, a, 2)
		sum = ityr.Sum(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 40000 {
		t.Fatalf("sum = %d", sum)
	}
}
