// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark runs the corresponding experiment of
// internal/bench at the Quick scale and prints the same rows/series the
// paper reports on the first iteration; cmd/itybench runs the same
// experiments at the Full scale for EXPERIMENTS.md.
//
// Ablation benchmarks at the bottom probe the design choices DESIGN.md
// calls out: sub-block size (§4.3.1), cache capacity (§3.3), distribution
// policy (§4.2), lazy release (§5.2), FMM θ and particle distribution,
// plus the three implemented future-work extensions (node-shared cache,
// locality-aware stealing, communication-computation overlap).
package ityr_test

import (
	"io"
	"os"
	"testing"

	"ityr/internal/bench"
)

// out returns the writer for figure rows: stdout on the first iteration of
// a benchmark, discarded afterwards.
func out(i int) io.Writer {
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkFig7CilksortGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7(out(i), bench.Quick)
	}
}

func BenchmarkFig8CilksortScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(out(i), bench.Quick)
	}
}

func BenchmarkFig9CilksortBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(out(i), bench.Quick)
	}
}

func BenchmarkFig10UTSMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(out(i), bench.Quick)
	}
}

func BenchmarkFig11FMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(out(i), bench.Quick)
	}
}

func BenchmarkTable2MPIIdleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(out(i), bench.Quick)
	}
}

// --- Ablations ---
// Each ablation probes a design choice DESIGN.md calls out; the runners
// live in internal/bench so cmd/itybench can reproduce them too.

func BenchmarkAblationSubBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationSubBlock(out(i), bench.Quick)
	}
}

func BenchmarkAblationCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationCacheSize(out(i), bench.Quick)
	}
}

func BenchmarkAblationDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationDistribution(out(i), bench.Quick)
	}
}

func BenchmarkAblationLazyRelease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationLazyRelease(out(i), bench.Quick)
	}
}

func BenchmarkAblationFMMTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationFMMTheta(out(i), bench.Quick)
	}
}

func BenchmarkAblationSharedCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationSharedCache(out(i), bench.Quick)
	}
}

func BenchmarkAblationLocalitySteals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationLocalitySteals(out(i), bench.Quick)
	}
}

func BenchmarkAblationFMMDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationFMMDistribution(out(i), bench.Quick)
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationOverlap(out(i), bench.Quick)
	}
}
