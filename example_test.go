package ityr_test

// Runnable documentation examples for the public API (rendered by godoc,
// executed by go test).

import (
	"fmt"

	"ityr"
)

func exampleCfg() ityr.Config {
	return ityr.Config{Ranks: 4, CoresPerNode: 2, Seed: 7}
}

// Checkout/Checkin is the fundamental global-memory access pair: claim a
// region in an access mode, use the returned typed view, release it.
func ExampleCheckout() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int32](c, 100, ityr.BlockCyclicDist)

		v := ityr.Checkout(c, a.Slice(0, 10), ityr.Write)
		for i := range v {
			v[i] = int32(i * i)
		}
		ityr.Checkin(c, a.Slice(0, 10), ityr.Write)

		r := ityr.Checkout(c, a.Slice(3, 5), ityr.Read)
		fmt.Println(r[0], r[1])
		ityr.Checkin(c, a.Slice(3, 5), ityr.Read)
	})
	fmt.Println("err:", err)
	// Output:
	// 9 16
	// err: <nil>
}

// Async/Await fork a typed computation; the child starts immediately and
// the caller's continuation becomes stealable (child-first scheduling).
func ExampleAsync() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		f := ityr.Async(c, func(c *ityr.Ctx) int {
			c.Charge(1000)
			return 21
		})
		g := ityr.Async(c, func(c *ityr.Ctx) int {
			c.Charge(1000)
			return 21
		})
		fmt.Println(f.Await(c) + g.Await(c))
	})
	fmt.Println("err:", err)
	// Output:
	// 42
	// err: <nil>
}

// SortSpan sorts a global span in parallel with the Cilksort algorithm.
func ExampleSortSpan() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 1000, ityr.BlockCyclicDist)
		ityr.Generate(c, a, func(i int64) int64 { return (i * 7919) % 1000 })
		ityr.SortSpan(c, a)
		fmt.Println(ityr.IsSortedSpan(c, a), ityr.GetVal(c, a.At(0)), ityr.GetVal(c, a.At(999)))
	})
	fmt.Println("err:", err)
	// Output:
	// true 0 999
	// err: <nil>
}

// InclusiveScan computes parallel prefix sums over global memory.
func ExampleInclusiveScan() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		src := ityr.AllocArray[int32](c, 6, ityr.BlockDist)
		dst := ityr.AllocArray[int32](c, 6, ityr.BlockDist)
		ityr.Generate(c, src, func(i int64) int32 { return int32(i + 1) })
		ityr.InclusiveScan(c, src, dst, 0, func(a, b int32) int32 { return a + b })
		out := ityr.Checkout(c, dst, ityr.Read)
		fmt.Println(out)
		ityr.Checkin(c, dst, ityr.Read)
	})
	fmt.Println("err:", err)
	// Output:
	// [1 3 6 10 15 21]
	// err: <nil>
}

// NewGVector builds a growable container in global memory; its header can
// be embedded in other global objects (§3.2's nontrivially-copyable case).
func ExampleNewGVector() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		v := ityr.NewGVector[int32](c, 2)
		v.Append(c, 10, 20, 30)
		v.Append(c, 40)
		fmt.Println(v.Len(c), v.ReadAll(c))
	})
	fmt.Println("err:", err)
	// Output:
	// 4 [10 20 30 40]
	// err: <nil>
}

// Reduce folds a distributed array with an associative combiner.
func ExampleReduce() {
	_, err := ityr.LaunchRoot(exampleCfg(), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 10000, ityr.BlockCyclicDist)
		ityr.Fill(c, a, 2)
		max := ityr.Reduce(c, a, int64(0),
			func(x, y int64) int64 { return x + y },
			func(acc int64, v int64) int64 { return acc + v })
		fmt.Println(max)
	})
	fmt.Println("err:", err)
	// Output:
	// 20000
	// err: <nil>
}
