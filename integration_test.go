package ityr_test

// End-to-end integration tests exercising multiple runtime subsystems
// together: multi-region programs, cross-region coherence, and
// halo-exchange-style neighbour access through the cache.

import (
	"math"
	"testing"

	"ityr"
)

// TestJacobiIterationsAcrossRegions runs a 1-D heat diffusion stencil:
// each sweep is its own fork-join region (like a time-stepped application
// alternating SPMD control with parallel regions), with double buffering.
// Every sweep reads neighbour elements across task boundaries, so stale
// caches or missing region-exit fences produce wrong physics.
func TestJacobiIterationsAcrossRegions(t *testing.T) {
	const (
		n      = 4096
		sweeps = 10
	)
	cfg := testCfg(8, ityr.WriteBackLazy)
	rt := ityr.NewRuntime(cfg)
	var result []float64
	err := rt.Run(func(s *ityr.SPMD) {
		var bufs [2]ityr.GSpan[float64]
		if s.Rank() == 0 {
			bufs[0] = ityr.AllocArraySPMD[float64](s, n, ityr.BlockCyclicDist)
			bufs[1] = ityr.AllocArraySPMD[float64](s, n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		// Initial condition: a spike in the middle.
		s.RootExec(func(c *ityr.Ctx) {
			ityr.Fill(c, bufs[0], 0)
			ityr.PutVal(c, bufs[0].At(n/2), 1000)
		})
		for it := 0; it < sweeps; it++ {
			src, dst := bufs[it%2], bufs[(it+1)%2]
			s.RootExec(func(c *ityr.Ctx) {
				c.ParallelFor(1, n-1, 256, func(c *ityr.Ctx, lo, hi int64) {
					// Read [lo-1, hi+1) to get the halo.
					in := ityr.Checkout(c, src.Slice(lo-1, hi+1), ityr.Read)
					out := ityr.Checkout(c, dst.Slice(lo, hi), ityr.Write)
					for i := range out {
						out[i] = (in[i] + in[i+1] + in[i+2]) / 3
					}
					c.Charge(ityr.Time(hi-lo) * 3)
					ityr.Checkin(c, src.Slice(lo-1, hi+1), ityr.Read)
					ityr.Checkin(c, dst.Slice(lo, hi), ityr.Write)
				})
			})
		}
		if s.Rank() == 0 {
			out, err := ityr.GetSlice(s, bufs[sweeps%2])
			if err != nil {
				t.Error(err)
			}
			result = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Host reference.
	ref := make([]float64, n)
	tmp := make([]float64, n)
	ref[n/2] = 1000
	for it := 0; it < sweeps; it++ {
		for i := 1; i < n-1; i++ {
			tmp[i] = (ref[i-1] + ref[i] + ref[i+1]) / 3
		}
		tmp[0], tmp[n-1] = ref[0], ref[n-1]
		ref, tmp = tmp, ref
	}
	var sumGot, sumRef float64
	for i := range result {
		if math.Abs(result[i]-ref[i]) > 1e-9 {
			t.Fatalf("cell %d = %g, want %g", i, result[i], ref[i])
		}
		sumGot += result[i]
		sumRef += ref[i]
	}
	if math.Abs(sumGot-sumRef) > 1e-6 {
		t.Fatalf("heat not conserved: %g vs %g", sumGot, sumRef)
	}
}

// TestMatMulBlocked multiplies two small global matrices with a blocked
// parallel algorithm and checks against the host product — wide reuse of
// the A and B tiles stresses cache hits and evictions together.
func TestMatMulBlocked(t *testing.T) {
	const n = 96 // n×n matrices
	cfg := testCfg(8, ityr.WriteBack)
	var got []float64
	_, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		A := ityr.AllocArray[float64](c, n*n, ityr.BlockCyclicDist)
		B := ityr.AllocArray[float64](c, n*n, ityr.BlockCyclicDist)
		C := ityr.AllocArray[float64](c, n*n, ityr.BlockCyclicDist)
		ityr.Generate(c, A, func(i int64) float64 { return float64(i%7) - 3 })
		ityr.Generate(c, B, func(i int64) float64 { return float64(i%5) - 2 })
		// One task per row band.
		c.ParallelFor(0, n, 8, func(c *ityr.Ctx, lo, hi int64) {
			av := ityr.Checkout(c, A.Slice(lo*n, hi*n), ityr.Read)
			bv := ityr.Checkout(c, B, ityr.Read) // whole B, reused by every task
			cv := ityr.Checkout(c, C.Slice(lo*n, hi*n), ityr.Write)
			rows := int(hi - lo)
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					var s float64
					for k := 0; k < n; k++ {
						s += av[i*n+k] * bv[k*n+j]
					}
					cv[i*n+j] = s
				}
			}
			c.Charge(ityr.Time(rows) * n * n)
			ityr.Checkin(c, A.Slice(lo*n, hi*n), ityr.Read)
			ityr.Checkin(c, B, ityr.Read)
			ityr.Checkin(c, C.Slice(lo*n, hi*n), ityr.Write)
		})
		// Read back inside the region.
		v := ityr.Checkout(c, C, ityr.Read)
		got = append([]float64(nil), v...)
		ityr.Checkin(c, C, ityr.Read)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Host reference.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%5) - 2
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			if got[i*n+j] != s {
				t.Fatalf("C[%d,%d] = %g, want %g", i, j, got[i*n+j], s)
			}
		}
	}
}

// TestManySmallRegions stresses region entry/exit overhead and cross-region
// visibility with a counter incremented once per region.
func TestManySmallRegions(t *testing.T) {
	cfg := testCfg(4, ityr.WriteBackLazy)
	rt := ityr.NewRuntime(cfg)
	err := rt.Run(func(s *ityr.SPMD) {
		var cnt ityr.GSpan[int64]
		if s.Rank() == 0 {
			cnt = ityr.AllocArraySPMD[int64](s, 1, ityr.BlockDist)
		}
		s.Barrier()
		for i := 0; i < 20; i++ {
			s.RootExec(func(c *ityr.Ctx) {
				v := ityr.GetVal(c, cnt.At(0))
				if v != int64(i) {
					t.Errorf("region %d sees counter %d", i, v)
				}
				ityr.PutVal(c, cnt.At(0), v+1)
			})
		}
		if s.Rank() == 0 {
			out, err := ityr.GetSlice(s, cnt)
			if err != nil || out[0] != 20 {
				t.Errorf("final counter %v (%v)", out, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
