// Command itytrace analyzes an "itytrace/v1" dump produced by the
// example binaries' -trace flag (or core.Runtime.WriteTrace). The
// default report shows critical-path vs. total work (the available
// parallelism, as in Cilkview), a per-rank busy/idle/steal breakdown,
// the steal-latency histogram, and the cache hit rate for the run's
// policy from the embedded metrics snapshot.
//
//	cilksort -ranks 16 -trace cilksort.trace
//	itytrace cilksort.trace
//	itytrace -chrome timeline.json cilksort.trace   # re-export for Perfetto
package main

import (
	"flag"
	"fmt"
	"os"

	"ityr/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "itytrace:", err)
	os.Exit(1)
}

func main() {
	chrome := flag.String("chrome", "", "also re-export the events as Chrome tracing JSON (load in Perfetto) to this file")
	metricsOut := flag.String("metrics", "", "also extract the embedded metrics snapshot to this file ('-' for stdout)")
	profileOut := flag.String("profile", "", "also extract the embedded itoyori-profile/v1 snapshot to this file ('-' for stdout)")
	events := flag.Bool("events", false, "print the raw event stream instead of the report")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: itytrace [flags] DUMP\nanalyzes an itytrace/v1 dump written by -trace\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	l, meta, err := trace.ReadDump(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	if *events {
		l.Dump(os.Stdout)
		return
	}

	fmt.Printf("trace %s: %d events, %d ranks", flag.Arg(0), l.Len(), meta.Ranks)
	if meta.Policy != "" {
		fmt.Printf(", policy %s", meta.Policy)
	}
	fmt.Println()
	if trace.DropWarning(os.Stdout, meta) {
		fmt.Println()
	}
	fmt.Println()

	a := trace.Analyze(l, meta.Ranks)
	a.WriteReport(os.Stdout)
	if err := trace.CacheReport(os.Stdout, meta.Policy, meta.Metrics); err != nil {
		fail(err)
	}
	if err := trace.ResilienceReport(os.Stdout, meta.Metrics); err != nil {
		fail(err)
	}
	if err := trace.ProfileReport(os.Stdout, meta.Profile); err != nil {
		fail(err)
	}
	if err := trace.ValidatorReport(os.Stdout, meta.Validator); err != nil {
		fail(err)
	}

	if *chrome != "" {
		cf, err := os.Create(*chrome)
		if err != nil {
			fail(err)
		}
		werr := l.ChromeJSON(cf)
		if cerr := cf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(werr)
		}
		fmt.Printf("\nchrome trace -> %s (open in https://ui.perfetto.dev)\n", *chrome)
	}
	if *metricsOut != "" {
		w := os.Stdout
		if *metricsOut != "-" {
			mf, err := os.Create(*metricsOut)
			if err != nil {
				fail(err)
			}
			defer mf.Close()
			w = mf
		}
		if len(meta.Metrics) == 0 {
			fail(fmt.Errorf("dump carries no metrics snapshot"))
		}
		if _, err := w.Write(append(meta.Metrics, '\n')); err != nil {
			fail(err)
		}
	}
	if *profileOut != "" {
		w := os.Stdout
		if *profileOut != "-" {
			pf, err := os.Create(*profileOut)
			if err != nil {
				fail(err)
			}
			defer pf.Close()
			w = pf
		}
		if len(meta.Profile) == 0 {
			fail(fmt.Errorf("dump carries no profile snapshot (run with -profile)"))
		}
		if _, err := w.Write(append(meta.Profile, '\n')); err != nil {
			fail(err)
		}
	}
}
