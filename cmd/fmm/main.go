// Command fmm runs the ExaFMM-style N-body benchmark (§6.4) on the
// simulated cluster, optionally verifying against direct summation and
// comparing with the static MPI baseline.
//
//	fmm -n 10000 -theta 0.25 -ranks 32 -policy lazy -mpi
package main

import (
	"flag"
	"fmt"
	"os"

	"ityr"
	"ityr/internal/apps/fmm"
	"ityr/internal/apps/fmmmpi"
	"ityr/internal/netmodel"
	"ityr/internal/obs"
)

func main() {
	n := flag.Int("n", 10000, "number of bodies")
	theta := flag.Float64("theta", 0.25, "multipole acceptance parameter")
	ncrit := flag.Int("ncrit", 32, "max bodies per leaf")
	nspawn := flag.Int("nspawn", 500, "task spawn threshold (bodies)")
	ranks := flag.Int("ranks", 32, "number of simulated ranks")
	cores := flag.Int("cores", 8, "cores (ranks) per node")
	policy := flag.String("policy", "lazy", "cache policy: nocache|wt|wb|lazy")
	seed := flag.Int64("seed", 42, "workload seed")
	dist := flag.String("dist", "cube", "particle distribution: cube|sphere|plummer")
	verify := flag.Bool("verify", false, "verify against direct summation (O(N²) on the host)")
	mpi := flag.Bool("mpi", false, "also run the static MPI baseline model")
	traceDump, metricsFile, profileFile := obs.Flags()
	traceRing := obs.RingFlag()
	hostProcs := obs.ProcsFlag()
	coalesce, prefetch := obs.BatchFlags()
	sdc, replicate := obs.SDCFlags()
	sched := obs.SchedFlag()
	validate := obs.ValidateFlag()
	flag.Parse()

	var pol ityr.Policy
	switch *policy {
	case "nocache":
		pol = ityr.NoCache
	case "wt":
		pol = ityr.WriteThrough
	case "wb":
		pol = ityr.WriteBack
	case "lazy":
		pol = ityr.WriteBackLazy
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}
	var d fmm.Dist
	switch *dist {
	case "cube":
		d = fmm.Cube
	case "sphere":
		d = fmm.Sphere
	case "plummer":
		d = fmm.Plummer
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	p := fmm.Params{N: *n, Theta: *theta, NCrit: *ncrit, NSpawn: *nspawn, Seed: *seed, Dist: d}

	cfg := ityr.Config{
		Ranks: *ranks, CoresPerNode: *cores,
		Pgas:      ityr.PgasConfig{Policy: pol},
		Seed:      *seed,
		Trace:     *traceDump != "",
		Profile:   *profileFile != "",
		TraceRing: *traceRing,
		HostProcs: *hostProcs,
	}
	obs.ApplyBatch(&cfg.Pgas, *coalesce, *prefetch)
	obs.ApplySDC(&cfg, *sdc, *replicate)
	if err := obs.ApplySched(&cfg, *sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Pgas.Validate = *validate
	rt := ityr.NewRuntime(cfg)
	var evalTime ityr.Time
	var result []fmm.Body
	err := rt.Run(func(s *ityr.SPMD) {
		var pr fmm.Problem
		if s.Rank() == 0 {
			pr = fmm.Setup(s, p)
		}
		s.Barrier()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { pr.Evaluate(c) })
		if s.Rank() == 0 {
			evalTime = s.Now() - t0
			if *verify {
				b, err := ityr.GetSlice(s, pr.Bodies)
				if err != nil {
					panic(err)
				}
				result = b
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	bodies := fmm.GenBodiesDist(p.N, p.Seed, p.Dist)
	cells := fmm.BuildTree(bodies, p.NCrit)
	k := fmm.CountKernels(cells, p.Theta)
	serial := k.SerialTime()
	fmt.Printf("fmm: n=%d θ=%.2f ncrit=%d ranks=%d policy=%v\n", *n, *theta, *ncrit, *ranks, pol)
	fmt.Printf("  cells=%d  P2P pairs=%d  M2L=%d\n", len(cells), k.P2PPairs, k.M2L)
	fmt.Printf("  evaluate   %.3f ms (virtual), serial model %.3f ms -> speedup %.1fx\n",
		float64(evalTime)/1e6, float64(serial)/1e6, float64(serial)/float64(evalTime))
	fmt.Printf("  steals=%d cache: fetched %.2f MB, written back %.2f MB\n",
		rt.Sched().Stats.Steals,
		float64(rt.Space().Stats.FetchBytes)/1e6, float64(rt.Space().Stats.WriteBackBytes)/1e6)
	if p := rt.Protector(); p != nil {
		st := p.Stats
		fmt.Printf("  sdc        protected=%d replicas=%d detected=%d recovered=%d escaped=%d\n",
			st.Protected, st.Replicas, st.Detected, st.Recovered, st.Escaped)
	}

	if *verify {
		ref := fmm.DirectHost(bodies)
		fmt.Printf("  accuracy   potential rel-RMS %.2e, accel rel-RMS %.2e\n",
			fmm.PotentialError(result, ref), fmm.AccelError(result, ref))
	}
	if *mpi {
		nodes := (*ranks + *cores - 1) / *cores
		r := fmmmpi.Run(p, nodes, *cores, netmodel.Default(*cores))
		fmt.Printf("  MPI model  %.3f ms on %d nodes (idleness %.2f)\n",
			float64(r.Elapsed)/1e6, nodes, r.Idleness)
	}
	if err := obs.Write(rt, *traceDump, *metricsFile, *profileFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *validate && obs.ReportViolations(rt) {
		os.Exit(1)
	}
}
