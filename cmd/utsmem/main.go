// Command utsmem runs the UTS-Mem benchmark (§6.3): build an unbalanced
// tree in global memory, then measure the pointer-chasing traversal.
//
//	utsmem -tree t1l -ranks 32 -policy lazy
package main

import (
	"flag"
	"fmt"
	"os"

	"ityr"
	"ityr/internal/apps/uts"
	"ityr/internal/obs"
)

func main() {
	treeName := flag.String("tree", "t1l", "workload tree: t1l | t1xl")
	ranks := flag.Int("ranks", 32, "number of simulated ranks")
	cores := flag.Int("cores", 8, "cores (ranks) per node")
	policy := flag.String("policy", "lazy", "cache policy: nocache|wt|wb|lazy")
	seed := flag.Int64("seed", 1, "scheduler seed")
	classic := flag.Bool("classic", false, "run the original memory-free UTS instead of UTS-Mem")
	traceDump, metricsFile, profileFile := obs.Flags()
	traceRing := obs.RingFlag()
	hostProcs := obs.ProcsFlag()
	coalesce, prefetch := obs.BatchFlags()
	sdc, replicate := obs.SDCFlags()
	sched := obs.SchedFlag()
	validate := obs.ValidateFlag()
	flag.Parse()

	var tree uts.Tree
	switch *treeName {
	case "t1l":
		tree = uts.T1LPrime
	case "t1xl":
		tree = uts.T1XLPrime
	default:
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *treeName)
		os.Exit(2)
	}
	var pol ityr.Policy
	switch *policy {
	case "nocache":
		pol = ityr.NoCache
	case "wt":
		pol = ityr.WriteThrough
	case "wb":
		pol = ityr.WriteBack
	case "lazy":
		pol = ityr.WriteBackLazy
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	cfg := ityr.Config{
		Ranks: *ranks, CoresPerNode: *cores,
		Pgas:      ityr.PgasConfig{Policy: pol},
		Seed:      *seed,
		Trace:     *traceDump != "",
		Profile:   *profileFile != "",
		TraceRing: *traceRing,
		HostProcs: *hostProcs,
	}
	obs.ApplyBatch(&cfg.Pgas, *coalesce, *prefetch)
	obs.ApplySDC(&cfg, *sdc, *replicate)
	if err := obs.ApplySched(&cfg, *sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Pgas.Validate = *validate
	rt := ityr.NewRuntime(cfg)
	var buildTime, travTime ityr.Time
	var built, counted int64
	err := rt.Run(func(s *ityr.SPMD) {
		if *classic {
			t0 := s.Now()
			s.RootExec(func(c *ityr.Ctx) { counted = uts.CountParallel(c, tree) })
			if s.Rank() == 0 {
				travTime = s.Now() - t0
			}
			built = counted
			return
		}
		var root ityr.GPtr[uts.Node]
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { root, built = uts.Build(c, tree) })
		t1 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { counted = uts.Traverse(c, root) })
		if s.Rank() == 0 {
			buildTime, travTime = t1-t0, s.Now()-t1
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := "uts-mem"
	if *classic {
		name = "uts-classic"
	}
	fmt.Printf("%s: tree=%s (%d nodes) ranks=%d policy=%v\n", name, tree.Name, built, *ranks, pol)
	fmt.Printf("  build      %.3f ms\n", float64(buildTime)/1e6)
	fmt.Printf("  traverse   %.3f ms  -> %.0f nodes/s\n",
		float64(travTime)/1e6, float64(counted)/(float64(travTime)/1e9))
	fmt.Printf("  steals=%d cache: fetched %.2f MB (%.0f%% hit by bytes)\n",
		rt.Sched().Stats.Steals, float64(rt.Space().Stats.FetchBytes)/1e6,
		100*float64(rt.Space().Stats.HitBytes)/float64(rt.Space().Stats.HitBytes+rt.Space().Stats.FetchBytes+1))
	if p := rt.Protector(); p != nil {
		st := p.Stats
		fmt.Printf("  sdc        protected=%d replicas=%d detected=%d recovered=%d escaped=%d\n",
			st.Protected, st.Replicas, st.Detected, st.Recovered, st.Escaped)
	}
	exitCode := 0
	if counted != built {
		// Still write the requested dumps: a corrupted count (e.g. the
		// -sdc negative control) is exactly the run worth inspecting.
		fmt.Fprintf(os.Stderr, "MISMATCH: built %d, traversed %d\n", built, counted)
		exitCode = 1
	}
	if err := obs.Write(rt, *traceDump, *metricsFile, *profileFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *validate && obs.ReportViolations(rt) && exitCode == 0 {
		exitCode = 1
	}
	os.Exit(exitCode)
}
