// Command cilksort runs the Cilksort benchmark (Fig. 1 / §6.2) on the
// simulated cluster.
//
//	cilksort -n 1048576 -cutoff 16384 -ranks 32 -policy lazy
package main

import (
	"flag"
	"fmt"
	"os"

	"ityr"
	"ityr/internal/apps/cilksort"
	"ityr/internal/obs"
)

func parsePolicy(s string) (ityr.Policy, error) {
	switch s {
	case "nocache":
		return ityr.NoCache, nil
	case "wt", "writethrough":
		return ityr.WriteThrough, nil
	case "wb", "writeback":
		return ityr.WriteBack, nil
	case "lazy", "wbl":
		return ityr.WriteBackLazy, nil
	}
	return 0, fmt.Errorf("unknown policy %q (nocache|wt|wb|lazy)", s)
}

func main() {
	n := flag.Int64("n", 1<<20, "number of 4-byte elements")
	cutoff := flag.Int64("cutoff", 16<<10, "serial cutoff")
	ranks := flag.Int("ranks", 32, "number of simulated ranks")
	cores := flag.Int("cores", 8, "cores (ranks) per node")
	policy := flag.String("policy", "lazy", "cache policy: nocache|wt|wb|lazy")
	seed := flag.Int64("seed", 1, "workload seed")
	verify := flag.Bool("verify", true, "verify sortedness and checksum")
	profBreakdown := flag.Bool("prof", false, "print the profiler category breakdown (Fig. 9)")
	traceFile := flag.String("tracefile", "", "write a Chrome-tracing JSON event log to this file")
	traceDump, metricsFile, profileFile := obs.Flags()
	traceRing := obs.RingFlag()
	hostProcs := obs.ProcsFlag()
	coalesce, prefetch := obs.BatchFlags()
	sdc, replicate := obs.SDCFlags()
	sched := obs.SchedFlag()
	validate := obs.ValidateFlag()
	violate := flag.Bool("violate", false,
		"deliberately break the checkout discipline (write-under-read) instead of sorting — a demo workload for -validate; see EXPERIMENTS.md")
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := ityr.Config{
		Ranks:        *ranks,
		CoresPerNode: *cores,
		Pgas:         ityr.PgasConfig{Policy: pol},
		Seed:         *seed,
		Trace:        *traceFile != "" || *traceDump != "",
		Profile:      *profileFile != "",
		TraceRing:    *traceRing,
		HostProcs:    *hostProcs,
	}
	obs.ApplyBatch(&cfg.Pgas, *coalesce, *prefetch)
	obs.ApplySDC(&cfg, *sdc, *replicate)
	if err := obs.ApplySched(&cfg, *sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Pgas.Validate = *validate || *violate
	rt := ityr.NewRuntime(cfg)
	var sortTime ityr.Time
	ok := true
	var vioErr error
	err = rt.Run(func(s *ityr.SPMD) {
		var a, b ityr.GSpan[cilksort.Elem]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[cilksort.Elem](s, *n, ityr.BlockCyclicDist)
			b = ityr.AllocArraySPMD[cilksort.Elem](s, *n, ityr.BlockCyclicDist)
		}
		s.Barrier()
		if *violate {
			// Staged write-under-read on a[0:16) (64 bytes): the forked
			// child checks the range out read-only and holds the view for
			// 100 µs of virtual compute; the parent's continuation is
			// stolen by an idle rank (child-first scheduling) and checks
			// the same bytes out for writing while the child still reads
			// them — exactly the overlap the validator exists to catch.
			s.RootExec(func(c *ityr.Ctx) {
				base := a.Ptr.Addr()
				child := c.Fork(func(c *ityr.Ctx) {
					if _, cerr := c.Checkout(base, 64, ityr.Read); cerr != nil {
						vioErr = cerr
						return
					}
					c.Charge(100 * 1000) // "compute" on the view for 100 µs
					c.Checkin(base, 64, ityr.Read)
				})
				if _, cerr := c.Checkout(base, 64, ityr.ReadWrite); cerr != nil {
					vioErr = cerr
				} else {
					c.Checkin(base, 64, ityr.ReadWrite)
				}
				c.Join(child)
			})
			return
		}
		var before, after int64
		s.RootExec(func(c *ityr.Ctx) { cilksort.Generate(c, a, uint64(*seed)) })
		if *verify {
			s.RootExec(func(c *ityr.Ctx) { before = cilksort.Checksum(c, a) })
		}
		rt.Profiler().Reset()
		t0 := s.Now()
		s.RootExec(func(c *ityr.Ctx) { cilksort.Sort(c, a, b, *cutoff) })
		if s.Rank() == 0 {
			sortTime = s.Now() - t0
		}
		if *verify {
			s.RootExec(func(c *ityr.Ctx) {
				after = cilksort.Checksum(c, a)
				if !cilksort.IsSorted(c, a) || before != after {
					ok = false
				}
			})
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *violate {
		// The run aborted at the injected violation: print the diagnostic
		// and the validator report, still write any requested dumps (the
		// trace embeds the same report for itytrace), and fail the run.
		if vioErr != nil {
			fmt.Fprintln(os.Stderr, vioErr)
		}
		caught := obs.ReportViolations(rt)
		if werr := obs.Write(rt, *traceDump, *metricsFile, *profileFile); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
		}
		if caught {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "cilksort: -violate tripped no violation (validator bug?)")
		os.Exit(2)
	}
	fmt.Printf("cilksort: n=%d cutoff=%d ranks=%d policy=%v\n", *n, *cutoff, *ranks, pol)
	fmt.Printf("  sort time      %.3f ms (virtual)\n", float64(sortTime)/1e6)
	fmt.Printf("  serial model   %.3f ms  -> speedup %.1fx\n",
		float64(cilksort.SerialTime(*n))/1e6, float64(cilksort.SerialTime(*n))/float64(sortTime))
	fmt.Printf("  steals=%d forks=%d cache: fetched %.2f MB, written back %.2f MB\n",
		rt.Sched().Stats.Steals, rt.Sched().Stats.Forks,
		float64(rt.Space().Stats.FetchBytes)/1e6, float64(rt.Space().Stats.WriteBackBytes)/1e6)
	if p := rt.Protector(); p != nil {
		st := p.Stats
		fmt.Printf("  sdc            protected=%d replicas=%d detected=%d recovered=%d escaped=%d\n",
			st.Protected, st.Replicas, st.Detected, st.Recovered, st.Escaped)
	}
	exitCode := 0
	if *verify {
		fmt.Printf("  verify         %v\n", ok)
		if !ok {
			// Still write the requested dumps below: a corrupted run (e.g.
			// the -sdc negative control) is exactly the one whose trace and
			// metrics are worth inspecting.
			exitCode = 1
		}
	}
	if *profBreakdown {
		fmt.Print(rt.Profiler().Format(sortTime))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rt.Trace().ChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace          %d events -> %s\n", rt.Trace().Len(), *traceFile)
	}
	if err := obs.Write(rt, *traceDump, *metricsFile, *profileFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *validate && obs.ReportViolations(rt) && exitCode == 0 {
		exitCode = 1
	}
	os.Exit(exitCode)
}
