// Command itybench reproduces the paper's evaluation: it runs the
// experiment behind every figure and table of §6 on the simulated cluster
// and prints the corresponding rows/series.
//
// Usage:
//
//	itybench                 # all experiments at the default (full) scale
//	itybench -fig 7          # only Figure 7
//	itybench -scale quick    # reduced sizes
//	itybench -env            # print the simulated environment (Table 1)
//	itybench -hostperf BENCH_sim.json -count 3 -procs 8
//	                         # host-side kernel microbenchmarks (events/sec,
//	                         # RMA ops/sec), best of -count runs, plus the
//	                         # host-speedup sweep over 1..-procs engine
//	                         # shards, written as machine-readable JSON
//	itybench -fig 9 -procs 4 # any experiment with the engine sharded over
//	                         # 4 host workers (same simulated results)
//	itybench -faults BENCH_faults.json -scale quick
//	                         # the apps under the canned fault plans
//	                         # (link degradation, flaky RMA, straggler),
//	                         # outputs verified, written as JSON
//	itybench -perf BENCH_perf.json -scale smoke
//	                         # deterministic perf suite: simulated time, RMA
//	                         # round trips and bytes per experiment, written
//	                         # as JSON for the perfgate CI job
//	itybench -taskbench BENCH_taskbench.current.json -scale smoke
//	                         # Task Bench matrix: graph shape × task grain ×
//	                         # scheduling policy, one gated cell each, for
//	                         # the perfgate -schema taskbench CI job
//	itybench -sched helpfirst -fig 7
//	                         # any experiment under an alternative scheduling
//	                         # policy (childfirst | helpfirst | fbc)
//	itybench -coalesce=false -prefetch 0
//	                         # run any experiment with the cache
//	                         # communication batching disabled
//	itybench -scaling        # 64 → 16,384 simulated-rank scaling sweep
//	                         # (halo + cilksort); -scalingmax 1728 caps the
//	                         # curve for smoke runs
//	itybench -fleet 64       # run 64 independent deterministic simulations
//	                         # concurrently across host cores, verify their
//	                         # digests agree, report sims/sec
//	itybench -hostperf BENCH_sim.json -scaling -fleet 64
//	                         # fold both new sections into the JSON report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ityr"
	"ityr/internal/bench"
	"ityr/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: 7, 8, 9, 10, 11, t2, abl, or all")
	scaleName := flag.String("scale", "full", "experiment scale: smoke, quick, or full")
	env := flag.Bool("env", false, "print the simulated environment (Table 1) and exit")
	hostperf := flag.String("hostperf", "", "run host-perf microbenchmarks and write JSON report to this file ('-' for stdout)")
	count := flag.Int("count", 3, "with -hostperf: runs per benchmark (best is kept)")
	procs := flag.Int("procs", 1, "host worker shards for the engine; with -hostperf, the sweep's upper bound (1,2,4,... up to N). Simulated results are identical for any value")
	metricsFile := flag.String("metrics", "", "run the canonical cilksort config and write its runtime-metrics JSON snapshot to this file ('-' for stdout)")
	faultsFile := flag.String("faults", "", "run the apps under the canned fault plans and write the JSON report to this file ('-' for stdout)")
	perfFile := flag.String("perf", "", "run the deterministic perf suite (simulated time, round trips, RMA bytes per experiment) and write the JSON report to this file ('-' for stdout); gate it with internal/tools/perfgate")
	taskbenchFile := flag.String("taskbench", "", "run the Task Bench matrix (graph shape × task grain × scheduling policy) and write the itoyori-taskbench/v1 JSON report to this file ('-' for stdout); gate it with perfgate -schema taskbench")
	sched := obs.SchedFlag()
	coalesce := flag.Bool("coalesce", true, "coalesce adjacent dirty regions into merged write-back puts (cache communication batching)")
	prefetch := flag.Int("prefetch", 2, "sequential-access prefetch depth in blocks, 0 to disable (cache communication batching)")
	scaling := flag.Bool("scaling", false, "run the 64→16K rank-count scaling sweep (halo + cilksort); with -hostperf, adds the 'scaling' section to the JSON report")
	scalingMax := flag.Int("scalingmax", 0, "with -scaling: cap the sweep's rank counts (0 = full curve to 16384); CI smoke uses 1728")
	fleet := flag.Int("fleet", 0, "run N independent deterministic simulations concurrently across host cores and report sims/sec; with -hostperf, adds the 'fleet' section to the JSON report")
	fleetWorkers := flag.Int("fleetworkers", 0, "with -fleet: concurrent host workers (0 = GOMAXPROCS)")
	racks := flag.Int("racks", 0, "nodes per rack for the three-tier network model (rack latency/bandwidth between intra-node and fabric); 0 keeps the flat fabric")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "live-telemetry interval for long host runs (-scaling, -fleet, -perf, -hostperf): periodic stderr lines with sim-time watermark, events/sec and host RSS; 0 disables")
	flag.Parse()

	// Shard the simulation engine across host workers. Every experiment's
	// simulated output is bit-identical for any -procs value; this only
	// changes how fast the host gets there.
	bench.SetHostProcs(*procs)
	bench.SetCacheBatching(*coalesce, *prefetch)
	bench.SetRacks(*racks)
	pol, err := ityr.ParseSchedPolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bench.SetSchedPolicy(pol)
	if *scaling || *fleet > 0 || *perfFile != "" || *taskbenchFile != "" || *hostperf != "" {
		bench.SetHeartbeat(os.Stderr, *heartbeat)
	}

	// scalingCurve trims the sweep to rank counts <= -scalingmax.
	scalingCurve := func() []int {
		if *scalingMax <= 0 {
			return nil // full curve
		}
		var c []int
		for _, r := range bench.ScalingRanks {
			if r <= *scalingMax {
				c = append(c, r)
			}
		}
		return c
	}

	if *hostperf != "" {
		// Human summary goes to stderr when the JSON itself claims stdout,
		// so `-hostperf - | jq` stays parseable.
		summary := io.Writer(os.Stdout)
		out := os.Stdout
		if *hostperf == "-" {
			summary = os.Stderr
		} else {
			f, err := os.Create(*hostperf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep := bench.HostPerf(summary, *count, *procs)
		if *scaling {
			fmt.Fprintln(summary, "rank-count scaling sweep:")
			rep.Scaling = bench.ScalingSweep(summary, scalingCurve())
		}
		if *fleet > 0 {
			fl := bench.FleetRun(summary, *fleet, *fleetWorkers)
			rep.Fleet = &fl
			if !fl.DigestOK {
				fmt.Fprintln(os.Stderr, "fleet members diverged: concurrent simulations are not independent")
				os.Exit(1)
			}
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Standalone -scaling / -fleet: human-readable output, no JSON.
	if *scaling || *fleet > 0 {
		if *scaling {
			fmt.Println("rank-count scaling sweep:")
			bench.ScalingSweep(os.Stdout, scalingCurve())
		}
		if *fleet > 0 {
			fl := bench.FleetRun(os.Stdout, *fleet, *fleetWorkers)
			if !fl.DigestOK {
				fmt.Fprintln(os.Stderr, "fleet members diverged: concurrent simulations are not independent")
				os.Exit(1)
			}
		}
		return
	}

	var sc bench.Scale
	switch *scaleName {
	case "smoke":
		sc = bench.Smoke
	case "quick":
		sc = bench.Quick
	case "full":
		sc = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	if *env {
		bench.Table1(os.Stdout, sc)
		return
	}

	if *faultsFile != "" {
		summary := io.Writer(os.Stdout)
		out := os.Stdout
		if *faultsFile == "-" {
			summary = os.Stderr
		} else {
			f, err := os.Create(*faultsFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep := bench.FaultBench(summary, sc)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bad := 0
		for _, r := range rep.Runs {
			// OK, not Verified: the sdc-task negative-control rows
			// (replication off) are REQUIRED to fail verification — the
			// injected flips must reach the output.
			if !r.OK {
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "%d run(s) failed the fault-report verdict\n", bad)
			os.Exit(1)
		}
		return
	}

	if *perfFile != "" {
		summary := io.Writer(os.Stdout)
		out := os.Stdout
		if *perfFile == "-" {
			summary = os.Stderr
		} else {
			f, err := os.Create(*perfFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep := bench.PerfSuite(summary, sc)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *taskbenchFile != "" {
		summary := io.Writer(os.Stdout)
		out := os.Stdout
		if *taskbenchFile == "-" {
			summary = os.Stderr
		} else {
			f, err := os.Create(*taskbenchFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep := bench.TaskbenchSuite(summary, sc)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *metricsFile != "" {
		out := os.Stdout
		if *metricsFile != "-" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.MetricsRun(out, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		fmt.Printf("   [%s: %.1fs host time]\n", name, time.Since(t0).Seconds())
	}

	switch *fig {
	case "7":
		run("fig7", func() { bench.Fig7(os.Stdout, sc) })
	case "8":
		run("fig8", func() { bench.Fig8(os.Stdout, sc) })
	case "9":
		run("fig9", func() { bench.Fig9(os.Stdout, sc) })
	case "10":
		run("fig10", func() { bench.Fig10(os.Stdout, sc) })
	case "11":
		run("fig11", func() { bench.Fig11(os.Stdout, sc) })
	case "t2":
		run("table2", func() { bench.Table2(os.Stdout, sc) })
	case "abl":
		run("ablations", func() { bench.Ablations(os.Stdout, sc) })
	case "all":
		bench.Table1(os.Stdout, sc)
		run("fig7", func() { bench.Fig7(os.Stdout, sc) })
		run("fig8", func() { bench.Fig8(os.Stdout, sc) })
		run("fig9", func() { bench.Fig9(os.Stdout, sc) })
		run("fig10", func() { bench.Fig10(os.Stdout, sc) })
		run("fig11", func() { bench.Fig11(os.Stdout, sc) })
		run("table2", func() { bench.Table2(os.Stdout, sc) })
		run("ablations", func() { bench.Ablations(os.Stdout, sc) })
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
