package ityr

// Future is a handle to a value being computed by a forked thread — the
// low-level threading primitive §3.1 mentions ("Itoyori can dynamically
// spawn user-level threads by using low-level threading primitives such as
// futures"). ParallelInvoke and the patterns are built from the same
// fork/join pairs; Future adds a typed result channel for irregular code.
type Future[T any] struct {
	th  *Thread
	val *T
}

// Async forks fn as a child thread (child-first: it starts running
// immediately, and the caller's continuation becomes stealable). The
// result is delivered through the future at Await.
func Async[T any](c *Ctx, fn func(*Ctx) T) Future[T] {
	f := Future[T]{val: new(T)}
	v := f.val
	f.th = c.Fork(func(c *Ctx) {
		*v = fn(c)
	})
	return f
}

// Await joins the forked thread and returns its result. As with any join,
// the calling thread may resume on a different rank. Await must be called
// exactly once, from the thread that called Async.
func (f Future[T]) Await(c *Ctx) T {
	c.Join(f.th)
	return *f.val
}
