package ityr_test

import (
	"fmt"
	"testing"

	"ityr"
)

func testCfg(ranks int, pol ityr.Policy) ityr.Config {
	return ityr.Config{
		Ranks:        ranks,
		CoresPerNode: 4,
		Pgas:         ityr.PgasConfig{BlockSize: 8 << 10, SubBlockSize: 1 << 10, CacheSize: 1 << 20, Policy: pol},
		Seed:         1,
	}
}

func TestTypedArrayRoundTrip(t *testing.T) {
	const n = 4096
	for _, pol := range ityr.Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			var sum int64
			_, err := ityr.LaunchRoot(testCfg(8, pol), func(c *ityr.Ctx) {
				a := ityr.AllocArray[int32](c, n, ityr.BlockCyclicDist)
				c.ParallelFor(0, n, 256, func(c *ityr.Ctx, lo, hi int64) {
					v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
					for i := range v {
						v[i] = int32(lo) + int32(i)
					}
					ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
				})
				// Parallel reduce.
				sum = reduceSum(c, a)
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(n) * (n - 1) / 2; sum != want {
				t.Fatalf("sum = %d, want %d", sum, want)
			}
		})
	}
}

func reduceSum(c *ityr.Ctx, a ityr.GSpan[int32]) int64 {
	if a.Len <= 512 {
		v := ityr.Checkout(c, a, ityr.Read)
		var s int64
		for _, x := range v {
			s += int64(x)
		}
		ityr.Checkin(c, a, ityr.Read)
		return s
	}
	l, r := a.SplitTwo()
	var sl, sr int64
	c.ParallelInvoke(
		func(c *ityr.Ctx) { sl = reduceSum(c, l) },
		func(c *ityr.Ctx) { sr = reduceSum(c, r) },
	)
	return sl + sr
}

type nodeT struct {
	Value    int64
	Children [2]ityr.GPtr[nodeT]
}

func TestGlobalPointerChasing(t *testing.T) {
	// Build a binary tree of global objects with noncollective allocation
	// in parallel, then traverse it: UTS-Mem in miniature.
	const depth = 8
	var total int64
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		root := buildTree(c, depth)
		total = countTree(c, root)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1<<(depth+1)) - 1; total != want {
		t.Fatalf("counted %d nodes, want %d", total, want)
	}
}

func buildTree(c *ityr.Ctx, depth int) ityr.GPtr[nodeT] {
	p := ityr.New[nodeT](c)
	var n nodeT
	n.Value = 1
	if depth > 0 {
		c.ParallelInvoke(
			func(c *ityr.Ctx) { n.Children[0] = buildTree(c, depth-1) },
			func(c *ityr.Ctx) { n.Children[1] = buildTree(c, depth-1) },
		)
	}
	ityr.PutVal(c, p, n)
	return p
}

func countTree(c *ityr.Ctx, p ityr.GPtr[nodeT]) int64 {
	if p.IsNil() {
		return 0
	}
	n := ityr.GetVal(c, p)
	var a, b int64
	if n.Children[0].IsNil() && n.Children[1].IsNil() {
		return n.Value
	}
	c.ParallelInvoke(
		func(c *ityr.Ctx) { a = countTree(c, n.Children[0]) },
		func(c *ityr.Ctx) { b = countTree(c, n.Children[1]) },
	)
	return n.Value + a + b
}

func TestSPMDInitAndReadback(t *testing.T) {
	const n = 1000
	err := ityr.Launch(testCfg(4, ityr.WriteBack), func(s *ityr.SPMD) {
		var a ityr.GSpan[float64]
		if s.Rank() == 0 {
			a = ityr.AllocArraySPMD[float64](s, n, ityr.BlockDist)
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i) * 0.5
			}
			if err := ityr.PutSlice(s, src, a); err != nil {
				t.Error(err)
			}
		}
		s.Barrier()
		s.RootExec(func(c *ityr.Ctx) {
			v := ityr.Checkout(c, a.Slice(10, 20), ityr.Read)
			for i, x := range v {
				if x != float64(10+i)*0.5 {
					t.Errorf("a[%d] = %v", 10+i, x)
				}
			}
			ityr.Checkin(c, a.Slice(10, 20), ityr.Read)
		})
		if s.Rank() == 0 {
			got, err := ityr.GetSlice(s, a.Slice(0, 4))
			if err != nil {
				t.Error(err)
			}
			if got[3] != 1.5 {
				t.Errorf("GetSlice[3] = %v, want 1.5", got[3])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpanSplitters(t *testing.T) {
	s := ityr.GSpan[int32]{Ptr: ityr.PtrAt[int32](0x1000), Len: 10}
	a, b := s.SplitTwo()
	if a.Len != 5 || b.Len != 5 {
		t.Fatalf("split lens %d,%d", a.Len, b.Len)
	}
	if b.Ptr.Addr() != 0x1000+5*4 {
		t.Fatalf("second half at %#x", b.Ptr.Addr())
	}
	if s.At(3).Addr() != 0x1000+12 {
		t.Fatalf("At(3) = %#x", s.At(3).Addr())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	s.Slice(4, 11)
}

func TestStructuredTypesThroughCache(t *testing.T) {
	type particle struct {
		X, Y, Z    float64
		VX, VY, VZ float64
		Mass       float64
		ID         int64
	}
	const n = 512
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		ps := ityr.AllocArray[particle](c, n, ityr.BlockCyclicDist)
		c.ParallelFor(0, n, 64, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, ps.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = particle{X: float64(lo) + float64(i), Mass: 2, ID: lo + int64(i)}
			}
			ityr.Checkin(c, ps.Slice(lo, hi), ityr.Write)
		})
		c.ParallelFor(0, n, 64, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, ps.Slice(lo, hi), ityr.ReadWrite)
			for i := range v {
				if v[i].ID != lo+int64(i) || v[i].Mass != 2 {
					t.Errorf("particle %d corrupted: %+v", lo+int64(i), v[i])
				}
				v[i].VX = v[i].X * 2
			}
			ityr.Checkin(c, ps.Slice(lo, hi), ityr.ReadWrite)
		})
		v := ityr.Checkout(c, ps.Slice(100, 101), ityr.Read)
		if v[0].VX != 200 {
			t.Errorf("VX = %v, want 200", v[0].VX)
		}
		ityr.Checkin(c, ps.Slice(100, 101), ityr.Read)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleLaunchRoot() {
	cfg := ityr.Config{Ranks: 4, CoresPerNode: 2, Seed: 1}
	elapsed, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 1024, ityr.BlockCyclicDist)
		c.ParallelFor(0, a.Len, 128, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = 1
			}
			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
		})
	})
	fmt.Println(err == nil, elapsed > 0)
	// Output: true true
}
