# Checks every PR must pass. `make check` is the full gate; the individual
# targets exist so CI can fan them out. The race target covers the event
# kernel and the one-sided layer, whose no-host-races-by-construction claim
# (one simulated goroutine per engine shard runs at a time, handoffs through
# channel edges; cross-shard traffic through the conservative merge protocol
# of DESIGN.md §8) is what the whole deterministic simulation rests on.

GO ?= go

.PHONY: check fmt vet build test shuffle race race-all golden faults sdc validate bench hostperf docscheck linkcheck perf perfgate perf-baseline taskbench taskbench-baseline

check: fmt vet build test shuffle race golden faults sdc validate docscheck linkcheck perfgate taskbench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Same suite in a shuffled order to flush test-order dependencies.
# -count=1 defeats the cache (a cached run would reuse the ordered pass).
shuffle:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./internal/sim ./internal/rma

# Whole-module race run (CI's second job; slower than `race`).
race-all:
	$(GO) test -race ./...

# Determinism gate: the golden digest must be bit-identical run-to-run
# with tracing ON, and the trace->dump->analyze pipeline must hold up on
# a 16-rank run. -count=1 defeats the test cache so CI really re-runs it.
golden:
	$(GO) test -count=1 -run 'KernelDeterminismGolden|CilksortTraceReport|MetricsRunStable' ./internal/bench

# Fault suite: the seeded-fault golden (same plan -> bit-identical run),
# the zero-overhead-when-off digest, and every app terminating correctly
# under every canned plan.
faults:
	$(GO) test -count=1 -run 'FaultDeterminismGolden|EmptyPlanMatchesNoPlan|FaultPlansAppsTerminate|FaultBenchSmoke' ./internal/bench
	$(GO) test -count=1 ./internal/fault

# Silent-data-corruption suite: disabled-path digest inertness, seeded
# corruption determinism, the negative control (defenses down -> output
# provably corrupt), zero escapes at full replication, combined
# corruption+flaky-RMA recovery, the wire checksum, and serial/sharded
# digest parity with replication armed (the parity case also runs under
# the race detector to prove the protector state is properly sharded).
sdc:
	$(GO) test -count=1 -run 'SDC' ./internal/bench
	$(GO) test -count=1 -race -run 'SDCShardedParity' ./internal/bench

# Checkout-discipline validator suite: every documented memory-model rule
# has a failing program whose diagnostic names the rule, window, offset
# range and task segments; clean DAG runs stay silent; the validator-off
# hot path allocates nothing; and the serial/sharded violation reports are
# bit-identical (that parity case also runs under the race detector, since
# SPMD-phase checkouts reach the validator from parallel host shards).
validate:
	$(GO) test -count=1 -run 'TestValidator|TestSetPolicy' ./internal/core
	$(GO) test -count=1 -race -run 'TestValidatorShardParity' ./internal/core

# Host-side kernel throughput (not part of check: timing-sensitive).
bench:
	$(GO) test -bench BenchmarkSimEngine -run xxx ./internal/sim
	$(GO) test -bench BenchmarkRMAOps -run xxx ./internal/rma

hostperf:
	$(GO) run ./cmd/itybench -hostperf BENCH_sim.json -count 3 -procs 8 -scaling -fleet 64

# Deterministic perf suite: simulated time, RMA round trips and bytes per
# experiment at smoke scale. Bit-identical on every host, so perfgate can
# hold the numbers to the checked-in BENCH_baseline.json within ±2%.
perf:
	$(GO) run ./cmd/itybench -perf BENCH_perf.json -scale smoke

perfgate: perf
	$(GO) run ./internal/tools/perfgate -baseline BENCH_baseline.json -current BENCH_perf.json

# Regenerate the checked-in baseline after an intentional perf change
# (perfgate fails on unre-baselined improvements too); commit the result.
perf-baseline:
	$(GO) run ./cmd/itybench -perf BENCH_baseline.json -scale smoke

# Task Bench workload matrix: graph shape × task grain × scheduling policy
# at smoke scale, every cell gated against the checked-in
# BENCH_taskbench.json within ±2% (like perf, the numbers are simulated
# and bit-identical on every host). The -race parity test then re-runs
# one cell per scheduler serial vs 4 engine shards and requires identical
# digests — the sharded-host gate for the scheduler seam.
taskbench:
	$(GO) run ./cmd/itybench -taskbench BENCH_taskbench.current.json -scale smoke
	$(GO) run ./internal/tools/perfgate -schema taskbench -baseline BENCH_taskbench.json -current BENCH_taskbench.current.json
	$(GO) test -count=1 -race -run 'TestHostProcsParity' ./internal/apps/taskbench

# Regenerate the checked-in matrix baseline after an intentional change;
# commit the result (TestTaskbenchBaselineFresh fails until you do).
taskbench-baseline:
	$(GO) run ./cmd/itybench -taskbench BENCH_taskbench.json -scale smoke

# Documentation gates: every package keeps a package comment (and the public
# ityr package plus internal/pgas — the memory-model contract surface —
# keep per-identifier docs); markdown links and code fences in the
# top-level docs stay valid.
docscheck:
	$(GO) run ./internal/tools/docscheck

linkcheck:
	$(GO) run ./internal/tools/linkcheck README.md DESIGN.md EXPERIMENTS.md PITFALLS.md
