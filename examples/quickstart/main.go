// Quickstart: allocate a distributed global array, initialize it in
// parallel with checkout/checkin, and reduce it — the smallest complete
// Itoyori program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ityr"
)

func main() {
	cfg := ityr.Config{
		Ranks:        16, // 2 simulated nodes x 8 cores
		CoresPerNode: 8,
		Seed:         1,
	}

	const n = 1 << 20
	var sum int64
	elapsed, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		// A global array distributed block-cyclically over all ranks.
		a := ityr.AllocArray[int64](c, n, ityr.BlockCyclicDist)

		// Parallel initialization. ParallelFor splits the range into
		// tasks; the runtime load-balances them across ranks, and each
		// task accesses global memory through a checkout/checkin pair.
		c.ParallelFor(0, n, 8192, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
			for i := range v {
				v[i] = lo + int64(i)
			}
			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
		})

		// Parallel reduction by divide and conquer.
		sum = reduce(c, a)
	})
	if err != nil {
		log.Fatal(err)
	}

	want := int64(n) * (n - 1) / 2
	fmt.Printf("sum = %d (want %d, match=%v)\n", sum, want, sum == want)
	fmt.Printf("virtual execution time: %.3f ms on %d ranks\n", float64(elapsed)/1e6, cfg.Ranks)
}

func reduce(c *ityr.Ctx, a ityr.GSpan[int64]) int64 {
	if a.Len <= 8192 {
		v := ityr.Checkout(c, a, ityr.Read)
		var s int64
		for _, x := range v {
			s += x
		}
		ityr.Checkin(c, a, ityr.Read)
		c.Charge(ityr.Time(a.Len)) // ~1ns per element of compute
		return s
	}
	l, r := a.SplitTwo()
	var sl, sr int64
	c.ParallelInvoke(
		func(c *ityr.Ctx) { sl = reduce(c, l) },
		func(c *ityr.Ctx) { sr = reduce(c, r) },
	)
	return sl + sr
}
