// N-body example: the paper's flagship case study (§6.4). Runs the
// ExaFMM-style Fast Multipole Method on a simulated cluster, verifies the
// result against direct summation, and compares cache policies — the
// global-view fork-join code is identical for every policy and rank count.
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"log"

	"ityr"
	"ityr/internal/apps/fmm"
)

func main() {
	params := fmm.Params{N: 4000, Theta: 0.3, NCrit: 32, NSpawn: 200, Seed: 7}

	fmt.Printf("FMM with %d bodies, θ=%.2f on 32 simulated ranks\n", params.N, params.Theta)
	for _, pol := range ityr.Policies {
		cfg := ityr.Config{
			Ranks:        32,
			CoresPerNode: 8,
			Pgas:         ityr.PgasConfig{Policy: pol},
			Seed:         3,
		}
		rt := ityr.NewRuntime(cfg)
		var elapsed ityr.Time
		var result []fmm.Body
		err := rt.Run(func(s *ityr.SPMD) {
			var pr fmm.Problem
			if s.Rank() == 0 {
				pr = fmm.Setup(s, params)
			}
			s.Barrier()
			t0 := s.Now()
			s.RootExec(func(c *ityr.Ctx) {
				pr.Evaluate(c)
			})
			if s.Rank() == 0 {
				elapsed = s.Now() - t0
				b, err := ityr.GetSlice(s, pr.Bodies)
				if err != nil {
					panic(err)
				}
				result = b
			}
		})
		if err != nil {
			log.Fatal(err)
		}

		// Accuracy against O(N²) direct summation on the host.
		bodies := fmm.GenBodies(params.N, params.Seed)
		fmm.BuildTree(bodies, params.NCrit) // same tree ordering as the run
		ref := fmm.DirectHost(bodies)
		fmt.Printf("  %-18s %9.3f ms   potential err %.1e\n",
			pol, float64(elapsed)/1e6, fmm.PotentialError(result, ref))
	}
}
