// Histogram example: a two-phase global-view computation. Phase one fills
// a distributed array with values; phase two builds per-task private
// histograms and combines them by parallel reduction — the idiomatic way
// to express commutative aggregation under SC-for-DRF, where concurrent
// tasks must not checkout the same region for writing.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"ityr"
)

const (
	nValues = 1 << 19
	nBins   = 64
)

func main() {
	cfg := ityr.Config{
		Ranks:        24,
		CoresPerNode: 8,
		Seed:         4,
	}
	var hist [nBins]int64
	elapsed, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		data := ityr.AllocArray[uint32](c, nValues, ityr.BlockCyclicDist)

		// Phase 1: deterministic pseudo-random fill.
		c.ParallelFor(0, nValues, 8192, func(c *ityr.Ctx, lo, hi int64) {
			v := ityr.Checkout(c, data.Slice(lo, hi), ityr.Write)
			x := uint32(lo)*2654435761 + 12345
			for i := range v {
				x ^= x << 13
				x ^= x >> 17
				x ^= x << 5
				v[i] = x
			}
			c.Charge(ityr.Time(hi - lo)) // 1 ns/element
			ityr.Checkin(c, data.Slice(lo, hi), ityr.Write)
		})

		// Phase 2: histogram by divide-and-conquer reduction.
		hist = histogram(c, data)
	})
	if err != nil {
		log.Fatal(err)
	}

	var total int64
	max := int64(0)
	for _, h := range hist {
		total += h
		if h > max {
			max = h
		}
	}
	fmt.Printf("histogram of %d values into %d bins in %.3f ms (virtual)\n",
		total, nBins, float64(elapsed)/1e6)
	for b := 0; b < 8; b++ { // print the first few bins as a bar chart
		bar := int(hist[b] * 40 / max)
		fmt.Printf("  bin %2d %8d ", b, hist[b])
		for i := 0; i < bar; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
	if total != nValues {
		log.Fatalf("histogram lost values: %d != %d", total, nValues)
	}
}

func histogram(c *ityr.Ctx, data ityr.GSpan[uint32]) [nBins]int64 {
	if data.Len <= 16384 {
		var h [nBins]int64
		v := ityr.Checkout(c, data, ityr.Read)
		for _, x := range v {
			h[x%nBins]++
		}
		c.Charge(ityr.Time(data.Len) * 2)
		ityr.Checkin(c, data, ityr.Read)
		return h
	}
	l, r := data.SplitTwo()
	var hl, hr [nBins]int64
	c.ParallelInvoke(
		func(c *ityr.Ctx) { hl = histogram(c, l) },
		func(c *ityr.Ctx) { hr = histogram(c, r) },
	)
	for i := range hl {
		hl[i] += hr[i]
	}
	return hl
}
