// Tree search example: builds an unbalanced tree of linked objects in the
// global heap (noncollective allocation from whatever rank runs each task)
// and then searches it in parallel by chasing global pointers — the
// UTS-Mem access pattern of §6.3, where the software cache turns scattered
// fine-grained remote reads into block-granularity fetches.
//
//	go run ./examples/treesearch
package main

import (
	"fmt"
	"log"

	"ityr"
	"ityr/internal/apps/uts"
)

func main() {
	tree := uts.Tree{Name: "demo", Seed: 11, RootKids: 500, MeanKids: 0.97, MaxDepth: 500}
	fmt.Printf("unbalanced tree with %d nodes on 16 simulated ranks\n", uts.CountHost(tree))

	for _, pol := range []ityr.Policy{ityr.NoCache, ityr.WriteBackLazy} {
		cfg := ityr.Config{
			Ranks:        16,
			CoresPerNode: 4, // 4 nodes x 4 cores: most memory is remote
			Pgas:         ityr.PgasConfig{Policy: pol},
			Seed:         2,
		}
		rt := ityr.NewRuntime(cfg)
		var buildMS, travMS float64
		var count int64
		err := rt.Run(func(s *ityr.SPMD) {
			var root ityr.GPtr[uts.Node]
			t0 := s.Now()
			s.RootExec(func(c *ityr.Ctx) {
				root, _ = uts.Build(c, tree)
			})
			t1 := s.Now()
			s.RootExec(func(c *ityr.Ctx) {
				count = uts.Traverse(c, root)
			})
			if s.Rank() == 0 {
				buildMS = float64(t1-t0) / 1e6
				travMS = float64(s.Now()-t1) / 1e6
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		st := rt.Space().Stats
		fmt.Printf("  %-18s build %8.3f ms, traverse %8.3f ms (%d nodes, %.2f MB fetched, %d steals)\n",
			pol, buildMS, travMS, count, float64(st.FetchBytes)/1e6, rt.Sched().Stats.Steals)
	}
}
