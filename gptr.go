package ityr

import (
	"fmt"
	"unsafe"
)

// GPtr is a typed global pointer: a unified 64-bit global virtual address
// (§3.2) that refers to the same object on every rank. T must be a
// plain-old-data type containing no Go pointers — store GPtr values, not
// native pointers, inside global objects.
type GPtr[T any] struct{ addr Addr }

// PtrAt wraps a raw global address as a typed pointer.
func PtrAt[T any](a Addr) GPtr[T] { return GPtr[T]{addr: a} }

// Addr returns the raw global address.
func (p GPtr[T]) Addr() Addr { return p.addr }

// IsNil reports whether the pointer is the zero (null) global pointer.
func (p GPtr[T]) IsNil() bool { return p.addr == 0 }

// Add returns the pointer displaced by n elements.
func (p GPtr[T]) Add(n int64) GPtr[T] {
	return GPtr[T]{addr: Addr(int64(p.addr) + n*int64(SizeOf[T]()))}
}

// Span returns the n-element span starting at p.
func (p GPtr[T]) Span(n int64) GSpan[T] { return GSpan[T]{Ptr: p, Len: n} }

// String renders the pointer as gptr[T](0xADDR) for debugging output.
func (p GPtr[T]) String() string {
	var z T
	return fmt.Sprintf("gptr[%T](%#x)", z, p.addr)
}

// SizeOf returns the in-memory size of T in bytes.
func SizeOf[T any]() uint64 {
	var z T
	return uint64(unsafe.Sizeof(z))
}

// GSpan is a typed contiguous global memory region — the span<T> of the
// paper's program examples (Fig. 1).
type GSpan[T any] struct {
	Ptr GPtr[T]
	Len int64
}

// Bytes returns the span's size in bytes.
func (s GSpan[T]) Bytes() uint64 { return uint64(s.Len) * SizeOf[T]() }

// Slice returns the sub-span of elements [lo, hi).
func (s GSpan[T]) Slice(lo, hi int64) GSpan[T] {
	if lo < 0 || hi < lo || hi > s.Len {
		panic(fmt.Sprintf("ityr: slice [%d,%d) of span of %d", lo, hi, s.Len))
	}
	return GSpan[T]{Ptr: s.Ptr.Add(lo), Len: hi - lo}
}

// SplitAt divides the span into [0,at) and [at,Len).
func (s GSpan[T]) SplitAt(at int64) (GSpan[T], GSpan[T]) {
	return s.Slice(0, at), s.Slice(at, s.Len)
}

// SplitTwo divides the span into two halves (the split_two of Fig. 1).
func (s GSpan[T]) SplitTwo() (GSpan[T], GSpan[T]) {
	return s.SplitAt(s.Len / 2)
}

// At returns a pointer to element i.
func (s GSpan[T]) At(i int64) GPtr[T] {
	if i < 0 || i >= s.Len {
		panic(fmt.Sprintf("ityr: index %d of span of %d", i, s.Len))
	}
	return s.Ptr.Add(i)
}

// viewToSlice reinterprets a checkout byte view as a typed slice.
func viewToSlice[T any](view []byte, n int64) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&view[0])), n)
}

// Checkout claims the span in the given mode and returns a typed view of
// it, valid until the matching Checkin (§3.3). For Read and ReadWrite the
// view holds the current global data; for Write it is uninitialized.
func Checkout[T any](c *Ctx, s GSpan[T], mode Mode) []T {
	view := c.MustCheckout(s.Ptr.addr, s.Bytes(), mode)
	return viewToSlice[T](view, s.Len)
}

// Checkin completes the matching Checkout of the same span and mode. In
// Write/ReadWrite mode every element of the span is considered written.
func Checkin[T any](c *Ctx, s GSpan[T], mode Mode) {
	c.Checkin(s.Ptr.addr, s.Bytes(), mode)
}

// GetVal reads one element by value (checkout Read + checkin).
func GetVal[T any](c *Ctx, p GPtr[T]) T {
	view := c.MustCheckout(p.addr, SizeOf[T](), Read)
	v := *(*T)(unsafe.Pointer(&view[0]))
	c.Checkin(p.addr, SizeOf[T](), Read)
	return v
}

// PutVal writes one element by value (checkout Write + checkin).
func PutVal[T any](c *Ctx, p GPtr[T], v T) {
	view := c.MustCheckout(p.addr, SizeOf[T](), Write)
	*(*T)(unsafe.Pointer(&view[0])) = v
	c.Checkin(p.addr, SizeOf[T](), Write)
}

// AllocArray collectively allocates an n-element global array with the
// given distribution. Call from the root thread (or the SPMD region via
// AllocArraySPMD).
func AllocArray[T any](c *Ctx, n int64, d DistPolicy) GSpan[T] {
	base := c.Local().AllocCollective(uint64(n)*SizeOf[T](), d)
	return GSpan[T]{Ptr: PtrAt[T](base), Len: n}
}

// AllocArraySPMD collectively allocates an n-element global array from the
// SPMD region (rank 0 drives the collective).
func AllocArraySPMD[T any](s *SPMD, n int64, d DistPolicy) GSpan[T] {
	base := s.AllocCollective(uint64(n)*SizeOf[T](), d)
	return GSpan[T]{Ptr: PtrAt[T](base), Len: n}
}

// New allocates a T from the executing rank's noncollective heap (§4.2)
// and returns a typed global pointer. The object is remotely accessible
// and freeable from any rank.
func New[T any](c *Ctx) GPtr[T] {
	return PtrAt[T](c.AllocLocal(SizeOf[T]()))
}

// NewArrayLocal allocates an n-element array from the executing rank's
// noncollective heap.
func NewArrayLocal[T any](c *Ctx, n int64) GSpan[T] {
	return GSpan[T]{Ptr: PtrAt[T](c.AllocLocal(uint64(n) * SizeOf[T]())), Len: n}
}

// Free returns a noncollective allocation to its owner's heap.
func Free[T any](c *Ctx, p GPtr[T]) { c.FreeLocal(p.addr, SizeOf[T]()) }

// FreeArrayLocal frees a noncollective array allocation.
func FreeArrayLocal[T any](c *Ctx, s GSpan[T]) { c.FreeLocal(s.Ptr.addr, s.Bytes()) }

// PutSlice initializes global memory from the SPMD region with the
// uncached PUT API.
func PutSlice[T any](s *SPMD, src []T, dst GSpan[T]) error {
	if int64(len(src)) != dst.Len {
		return fmt.Errorf("ityr: PutSlice of %d elements into span of %d", len(src), dst.Len)
	}
	if dst.Len == 0 {
		return nil
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), dst.Bytes())
	return s.Local().Put(b, dst.Ptr.addr)
}

// GetSlice reads global memory from the SPMD region with the uncached GET
// API.
func GetSlice[T any](s *SPMD, src GSpan[T]) ([]T, error) {
	b, err := s.Local().Get(src.Ptr.addr, src.Bytes())
	if err != nil {
		return nil, err
	}
	return viewToSlice[T](b, src.Len), nil
}
