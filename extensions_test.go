package ityr_test

// Tests for the two implemented extensions the paper lists as future work:
// the node-shared software cache (§3.2) and locality-aware victim
// selection (§8). Both must preserve the memory model under every policy.

import (
	"fmt"
	"testing"

	"ityr"
	tr "ityr/internal/trace"
)

func extCfg(ranks int, pol ityr.Policy, shared, locality bool) ityr.Config {
	cfg := testCfg(ranks, pol)
	cfg.Pgas.SharedCache = shared
	cfg.Sched.LocalityAware = locality
	return cfg
}

// TestExtensionsPreserveResults runs the typed array round trip under all
// combinations of the extension knobs.
func TestExtensionsPreserveResults(t *testing.T) {
	const n = 4096
	for _, shared := range []bool{false, true} {
		for _, locality := range []bool{false, true} {
			shared, locality := shared, locality
			t.Run(fmt.Sprintf("shared=%v/locality=%v", shared, locality), func(t *testing.T) {
				var sum int64
				_, err := ityr.LaunchRoot(extCfg(8, ityr.WriteBackLazy, shared, locality), func(c *ityr.Ctx) {
					a := ityr.AllocArray[int32](c, n, ityr.BlockCyclicDist)
					ityr.Generate(c, a, func(i int64) int32 { return int32(i) })
					ityr.ForEach(c, a, ityr.ReadWrite, func(i int64, v *int32) { *v *= 2 })
					s := ityr.Sum(c, ityr.GSpan[int32]{Ptr: a.Ptr, Len: a.Len})
					sum = int64(s)
				})
				if err != nil {
					t.Fatal(err)
				}
				// Sum of 2i for i<4096 truncated to int32 accumulation.
				var want int32
				for i := int64(0); i < n; i++ {
					want += int32(2 * i)
				}
				if sum != int64(want) {
					t.Fatalf("sum = %d, want %d", sum, want)
				}
			})
		}
	}
}

// TestSharedCacheTreeTraversal exercises the pointer-chasing workload with
// a node-shared cache: correctness plus reduced fetch traffic vs private
// caches.
func TestSharedCacheTreeTraversal(t *testing.T) {
	run := func(shared bool) (int64, uint64) {
		cfg := extCfg(8, ityr.WriteBackLazy, shared, false)
		cfg.CoresPerNode = 4
		rt := ityr.NewRuntime(cfg)
		var count int64
		err := rt.Run(func(s *ityr.SPMD) {
			s.RootExec(func(c *ityr.Ctx) {
				root := buildTree(c, 9)
				count = countTree(c, root)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return count, rt.Space().Stats.FetchBytes
	}
	privCount, privBytes := run(false)
	sharCount, sharBytes := run(true)
	if privCount != sharCount {
		t.Fatalf("counts differ: %d vs %d", privCount, sharCount)
	}
	// Traffic is schedule-dependent and cuts both ways: sharing removes
	// per-rank refetches of the same block but makes every acquire
	// invalidate the whole node's cache. Assert correctness; log traffic.
	t.Logf("fetch bytes: private %d vs shared %d", privBytes, sharBytes)
}

// TestLocalityAwareEndToEnd checks the whole runtime under hierarchical
// stealing on a memory-heavy workload.
func TestLocalityAwareEndToEnd(t *testing.T) {
	var sum int64
	cfg := extCfg(16, ityr.WriteBackLazy, false, true)
	cfg.CoresPerNode = 4
	_, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 20000, ityr.BlockCyclicDist)
		ityr.Generate(c, a, func(i int64) int64 { return i % 13 })
		sum = ityr.Sum(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := int64(0); i < 20000; i++ {
		want += i % 13
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestTracing runs a traced execution and checks the log captured the
// scheduler and cache events.
func TestTracing(t *testing.T) {
	cfg := testCfg(8, ityr.WriteBackLazy)
	cfg.Trace = true
	rt := ityr.NewRuntime(cfg)
	err := rt.Run(func(s *ityr.SPMD) {
		s.RootExec(func(c *ityr.Ctx) {
			a := ityr.AllocArray[int64](c, 8192, ityr.BlockCyclicDist)
			c.ParallelFor(0, a.Len, 256, func(c *ityr.Ctx, lo, hi int64) {
				v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
				for i := range v {
					v[i] = 7
				}
				c.Charge(ityr.Time(hi-lo) * 100)
				ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := rt.Trace()
	if tl.Len() == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if tl.Count(tr.KFork) == 0 {
		t.Error("no fork events")
	}
	// Untraced runtime must have a nil log.
	rt2 := ityr.NewRuntime(testCfg(2, ityr.WriteBack))
	if rt2.Trace() != nil {
		t.Error("trace log present without Config.Trace")
	}
}
