package ityr_test

import (
	"testing"

	"ityr"
)

func TestGVectorAppendAndRead(t *testing.T) {
	_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		v := ityr.NewGVector[int64](c, 4)
		for i := int64(0); i < 100; i++ { // forces several reallocations
			v.Append(c, i)
		}
		if got := v.Len(c); got != 100 {
			t.Errorf("len = %d, want 100", got)
		}
		all := v.ReadAll(c)
		for i, x := range all {
			if x != int64(i) {
				t.Fatalf("element %d = %d", i, x)
			}
		}
		if got := v.At(c, 42); got != 42 {
			t.Errorf("At(42) = %d", got)
		}
		v.Set(c, 42, -1)
		if got := v.At(c, 42); got != -1 {
			t.Errorf("after Set, At(42) = %d", got)
		}
		v.Free(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGVectorBulkAppend(t *testing.T) {
	_, err := ityr.LaunchRoot(testCfg(2, ityr.WriteBack), func(c *ityr.Ctx) {
		v := ityr.NewGVector[int32](c, 4)
		batch := make([]int32, 1000)
		for i := range batch {
			batch[i] = int32(i)
		}
		v.Append(c, batch...)
		v.Append(c, batch...)
		if v.Len(c) != 2000 {
			t.Errorf("len = %d", v.Len(c))
		}
		if v.At(c, 1500) != 500 {
			t.Errorf("At(1500) = %d", v.At(c, 1500))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// nodeWithVec is the ExaFMM §3.2 scenario: a global structure embedding a
// vector header — illegal under GET/PUT semantics, natural here.
type nodeWithVec struct {
	ID  int64
	Vec ityr.GPtr[ityr.GVecHdr]
}

func TestGVectorEmbeddedInGlobalStruct(t *testing.T) {
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		// Build nodes in parallel tasks; each node owns a vector filled
		// where the task ran.
		const nNodes = 16
		nodes := ityr.AllocArray[nodeWithVec](c, nNodes, ityr.BlockCyclicDist)
		c.ParallelFor(0, nNodes, 1, func(c *ityr.Ctx, lo, hi int64) {
			for i := lo; i < hi; i++ {
				vec := ityr.NewGVector[int64](c, 4)
				for k := int64(0); k <= i; k++ {
					vec.Append(c, i*100+k)
				}
				w := ityr.Checkout(c, nodes.Slice(i, i+1), ityr.Write)
				w[0] = nodeWithVec{ID: i, Vec: vec.Header()}
				ityr.Checkin(c, nodes.Slice(i, i+1), ityr.Write)
			}
		})
		// Read them all back from (potentially) different ranks.
		var total int64
		c.ParallelFor(0, nNodes, 1, func(c *ityr.Ctx, lo, hi int64) {
			for i := lo; i < hi; i++ {
				r := ityr.Checkout(c, nodes.Slice(i, i+1), ityr.Read)
				n := r[0]
				ityr.Checkin(c, nodes.Slice(i, i+1), ityr.Read)
				vec := ityr.GVectorAt[int64](n.Vec)
				vals := vec.ReadAll(c)
				if int64(len(vals)) != n.ID+1 {
					t.Errorf("node %d has %d values, want %d", n.ID, len(vals), n.ID+1)
				}
				for k, x := range vals {
					if x != n.ID*100+int64(k) {
						t.Errorf("node %d value %d = %d", n.ID, k, x)
					}
				}
				total += int64(len(vals))
			}
		})
		if total != nNodes*(nNodes+1)/2 {
			t.Errorf("total values = %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
