// Package ityr is a Go implementation of Itoyori (Shiina & Taura, SC '23):
// a global-view fork-join task-parallel runtime over a software-cached
// partitioned global address space, running on a deterministic simulated
// cluster.
//
// Programs look like shared-memory nested fork-join code: tasks are forked
// and joined freely, the runtime load-balances them across ranks with
// child-first work stealing, and global memory is accessed through
// checkout/checkin pairs that the runtime caches and keeps coherent
// (sequential consistency for data-race-free programs, synchronized at
// fork-join points).
//
// A minimal program:
//
//	cfg := ityr.Config{Ranks: 16, CoresPerNode: 4}
//	elapsed, err := ityr.LaunchRoot(cfg, func(c *ityr.Ctx) {
//		a := ityr.AllocArray[int32](c, 1<<20, ityr.BlockCyclicDist)
//		c.ParallelFor(0, a.Len, 8192, func(c *ityr.Ctx, lo, hi int64) {
//			v := ityr.Checkout(c, a.Slice(lo, hi), ityr.Write)
//			for i := range v {
//				v[i] = int32(lo) + int32(i)
//			}
//			ityr.Checkin(c, a.Slice(lo, hi), ityr.Write)
//		})
//	})
//
// See DESIGN.md for how the simulated substrate maps onto the paper's
// MPI-3 RMA + RDMA environment.
package ityr

import (
	"ityr/internal/core"
	"ityr/internal/netmodel"
	"ityr/internal/pgas"
	"ityr/internal/sim"
	"ityr/internal/uth"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Config assembles the simulated machine and runtime parameters.
	Config = core.Config
	// Runtime is one simulated Itoyori instance.
	Runtime = core.Runtime
	// SPMD is a rank's handle in the SPMD region.
	SPMD = core.SPMD
	// Ctx is a thread's handle in the fork-join region.
	Ctx = core.Ctx
	// Thread is a forked child handle.
	Thread = core.Thread
	// Addr is a unified global virtual address.
	Addr = pgas.Addr
	// Mode is a checkout access mode.
	Mode = pgas.Mode
	// Policy selects the cache policy.
	Policy = pgas.Policy
	// DistPolicy is a collective memory distribution policy.
	DistPolicy = pgas.DistPolicy
	// PgasConfig tunes the cache system.
	PgasConfig = pgas.Config
	// SchedConfig tunes the work-stealing scheduler.
	SchedConfig = uth.Config
	// SchedPolicy selects the scheduling discipline (Config.Sched.Policy).
	SchedPolicy = uth.SchedPolicy
	// SDCConfig tunes selective task replication (silent-data-corruption
	// detection); set Config.SDC to enable it.
	SDCConfig = uth.SDCConfig
	// NetParams is the interconnect cost model.
	NetParams = netmodel.Params
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Access modes (§3.3 of the paper).
const (
	Read      = pgas.Read
	Write     = pgas.Write
	ReadWrite = pgas.ReadWrite
)

// Cache policies (§4.4, §6.1).
const (
	NoCache       = pgas.NoCache
	WriteThrough  = pgas.WriteThrough
	WriteBack     = pgas.WriteBack
	WriteBackLazy = pgas.WriteBackLazy
)

// Distribution policies (§4.2).
const (
	BlockDist       = pgas.BlockDist
	BlockCyclicDist = pgas.BlockCyclicDist
)

// Policies lists all cache policies in the paper's plotting order.
var Policies = pgas.Policies

// Scheduling policies (Config.Sched.Policy). ChildFirst is the paper's
// discipline and the default; HelpFirst and FBC are the Task Bench study's
// alternatives.
const (
	ChildFirst = uth.ChildFirst
	HelpFirst  = uth.HelpFirst
	FBC        = uth.FBC
)

// SchedPolicies lists all scheduling policies in -sched flag order.
var SchedPolicies = uth.SchedPolicies

// ParseSchedPolicy maps a -sched flag spelling to its policy, listing the
// valid set on error.
func ParseSchedPolicy(s string) (SchedPolicy, error) { return uth.ParseSchedPolicy(s) }

// NewRuntime builds a runtime from cfg.
func NewRuntime(cfg Config) *Runtime { return core.NewRuntime(cfg) }

// Launch runs spmd once per rank and drives the simulation to completion —
// the equivalent of mpiexec'ing an Itoyori program.
func Launch(cfg Config, spmd func(*SPMD)) error {
	return core.NewRuntime(cfg).Run(spmd)
}

// LaunchRoot runs body as the root thread of a fork-join region spanning
// all ranks, returning the virtual time the region took on rank 0.
func LaunchRoot(cfg Config, body func(*Ctx)) (Time, error) {
	return core.NewRuntime(cfg).RunRoot(body)
}
