module ityr

go 1.22
