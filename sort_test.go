package ityr_test

import (
	"fmt"
	"testing"

	"ityr"
)

func TestSortSpanTypes(t *testing.T) {
	const n = 20000
	t.Run("float64", func(t *testing.T) {
		var ok bool
		_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
			a := ityr.AllocArray[float64](c, n, ityr.BlockCyclicDist)
			ityr.Generate(c, a, func(i int64) float64 {
				x := uint64(i)*0x9E3779B97F4A7C15 + 1
				x ^= x >> 31
				return float64(x%1000000) / 7
			})
			ityr.SortSpan(c, a)
			ok = ityr.IsSortedSpan(c, a)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("float64 span not sorted")
		}
	})
	t.Run("uint64", func(t *testing.T) {
		var ok bool
		var before, after uint64
		_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteBack), func(c *ityr.Ctx) {
			a := ityr.AllocArray[uint64](c, n, ityr.BlockCyclicDist)
			ityr.Generate(c, a, func(i int64) uint64 {
				x := uint64(i) * 0xBF58476D1CE4E5B9
				return x ^ (x >> 27)
			})
			before = ityr.Reduce(c, a, uint64(0), func(x, y uint64) uint64 { return x + y },
				func(acc, v uint64) uint64 { return acc + v })
			ityr.SortSpan(c, a)
			after = ityr.Reduce(c, a, uint64(0), func(x, y uint64) uint64 { return x + y },
				func(acc, v uint64) uint64 { return acc + v })
			ok = ityr.IsSortedSpan(c, a)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || before != after {
			t.Fatalf("ok=%v checksum %d -> %d", ok, before, after)
		}
	})
}

func TestSortSpanEdgeSizes(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 5, 63} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			var ok bool
			_, err := ityr.LaunchRoot(testCfg(2, ityr.WriteBackLazy), func(c *ityr.Ctx) {
				a := ityr.AllocArray[int32](c, n+1, ityr.BlockDist) // +1: nonzero alloc
				s := a.Slice(0, n)
				ityr.Generate(c, a, func(i int64) int32 { return int32(1000 - i) })
				ityr.SortSpan(c, s)
				ok = ityr.IsSortedSpan(c, s)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("not sorted")
			}
		})
	}
}

func TestLowerBound(t *testing.T) {
	_, err := ityr.LaunchRoot(testCfg(2, ityr.WriteBack), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int32](c, 100, ityr.BlockDist)
		ityr.Generate(c, a, func(i int64) int32 { return int32(i) * 2 }) // 0,2,4,...
		for _, tc := range []struct{ x, want int32 }{
			{-5, 0}, {0, 0}, {1, 1}, {2, 1}, {3, 2}, {198, 99}, {199, 100}, {500, 100},
		} {
			if got := ityr.LowerBound(c, a, tc.x); got != int64(tc.want) {
				t.Errorf("LowerBound(%d) = %d, want %d", tc.x, got, tc.want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
