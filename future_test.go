package ityr_test

import (
	"testing"

	"ityr"
)

func fibFut(c *ityr.Ctx, n int) int {
	c.Charge(2 * 1000) // 2 µs per call
	if n < 2 {
		return n
	}
	f := ityr.Async(c, func(c *ityr.Ctx) int { return fibFut(c, n-1) })
	b := fibFut(c, n-2)
	return f.Await(c) + b
}

func TestFutureFib(t *testing.T) {
	var got int
	_, err := ityr.LaunchRoot(testCfg(8, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		got = fibFut(c, 15)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestFutureWithGlobalMemory(t *testing.T) {
	_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteBack), func(c *ityr.Ctx) {
		a := ityr.AllocArray[int64](c, 1000, ityr.BlockCyclicDist)
		ityr.Generate(c, a, func(i int64) int64 { return i })
		l, r := a.SplitTwo()
		fl := ityr.Async(c, func(c *ityr.Ctx) int64 { return ityr.Sum(c, l) })
		sr := ityr.Sum(c, r)
		total := fl.Await(c) + sr
		if want := int64(1000 * 999 / 2); total != want {
			t.Errorf("total = %d, want %d", total, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFutureStructResult(t *testing.T) {
	type stats struct{ Min, Max int64 }
	_, err := ityr.LaunchRoot(testCfg(4, ityr.WriteBackLazy), func(c *ityr.Ctx) {
		f := ityr.Async(c, func(c *ityr.Ctx) stats {
			c.Charge(1000)
			return stats{Min: -5, Max: 42}
		})
		s := f.Await(c)
		if s.Min != -5 || s.Max != 42 {
			t.Errorf("stats = %+v", s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
